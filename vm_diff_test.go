package discopop

import (
	"fmt"
	"strings"
	"testing"
)

// rankingOf runs the full pipeline — profile, CU construction, discovery,
// ranking — on the named workload with the chosen execution engine, and
// renders the ranked suggestion list field by field.
func rankingOf(name string, treeWalk bool) string {
	opt := Options{}
	opt.Profiler.TreeWalk = treeWalk
	rep := Analyze(Workload(name, 1).M, opt)
	var sb strings.Builder
	for i, s := range rep.Ranked {
		fmt.Fprintf(&sb, "%d %s %s cov=%.9f spd=%.9f imb=%.9f score=%.9f iters=%d weight=%.3f blocking=%d notes=%q\n",
			i, s.Kind, s.Loc, s.Coverage, s.LocalSpeedup, s.Imbalance, s.Score,
			s.Iters, s.Weight, len(s.Blocking), s.Notes)
	}
	fmt.Fprintf(&sb, "instrs=%d deps=%d", rep.Instrs, rep.NumDeps())
	return sb.String()
}

// TestVMRankingsMatchTreeWalk: the end of the pipeline — the ranked
// parallelization suggestions a user actually reads — is identical
// whether the target ran on the bytecode VM or the reference tree
// walker, down to every score digit and blocking-dependence count.
// Workloads span sequential kernels, reductions, pipelines, and
// multi-threaded targets.
func TestVMRankingsMatchTreeWalk(t *testing.T) {
	for _, name := range []string{"CG", "EP", "kmeans", "mandelbrot", "gzip", "histogram", "md5-mt", "rgbyuv-mt", "fib"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			walk := rankingOf(name, true)
			vm := rankingOf(name, false)
			if walk != vm {
				t.Errorf("rankings diverged between engines\nwalker:\n%s\n\nvm:\n%s", walk, vm)
			}
		})
	}
}
