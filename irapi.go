package discopop

import (
	"discopop/internal/ir"
	"discopop/internal/remote"
)

// Re-exported IR construction API, so that downstream users can assemble
// analyzable programs without importing internal packages. The builder
// assigns realistic <fileID:lineID> locations and maintains the control
// region tree automatically.
type (
	// Builder constructs a Module.
	Builder = ir.Builder
	// FuncBuilder emits statements into one function.
	FuncBuilder = ir.FuncBuilder
	// Var is a scalar or array variable.
	Var = ir.Var
	// Expr is an expression node.
	Expr = ir.Expr
	// Func is a function definition.
	Func = ir.Func
	// Loc is a <fileID:lineID> source location.
	Loc = ir.Loc
)

// Scalar types.
const (
	I64 = ir.I64
	F64 = ir.F64
)

// Construction entry point and expression constructors, re-exported.
var (
	// NewBuilder starts a new module.
	NewBuilder = ir.NewBuilder

	// V reads a scalar variable; At reads an array element.
	V  = ir.V
	At = ir.At
	// CI and CF are integer and floating-point constants.
	CI = ir.CI
	CF = ir.CF

	// Arithmetic.
	Add   = ir.Add
	Sub   = ir.Sub
	Mul   = ir.Mul
	Div   = ir.Div
	ModE  = ir.Mod
	Min   = ir.Min
	Max   = ir.Max
	Neg   = ir.Neg
	Abs   = ir.Abs
	SqrtE = ir.Sqrt
	Floor = ir.Floor

	// Comparisons.
	Lt = ir.Lt
	Le = ir.Le
	Gt = ir.Gt
	Ge = ir.Ge
	Eq = ir.Eq
	Ne = ir.Ne

	// Rnd is a deterministic pseudo-random source.
	Rnd = ir.Rnd
)

// Serialized modules: the versioned, deterministic wire format used to
// ship modules between dp-serve nodes (and accepted by POST /v1/analyze
// as the "module" body kind). EncodeModule is a pure function of the
// module structure; DecodeModule validates strictly under default limits
// and never panics on malformed input.
var (
	// EncodeModule serializes a module into the wire format.
	EncodeModule = remote.Encode
	// DecodeModule parses a wire-format module under default limits.
	DecodeModule = remote.Decode
)
