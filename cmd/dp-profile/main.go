// Command dp-profile runs the DiscoPoP-Go data-dependence profiler on a
// bundled workload and writes the dependence file (the Figure 2.1/2.3
// format) to stdout or a file, together with profiling statistics.
//
// Usage:
//
//	dp-profile -workload kmeans [-scale 1] [-store sig|perfect]
//	           [-slots N] [-workers N] [-skip] [-mt] [-o deps.txt] [-pet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"discopop/internal/interp"
	"discopop/internal/pet"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name (see -list)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		store    = flag.String("store", "perfect", "status store: sig | perfect")
		slots    = flag.Int("slots", 1<<20, "total signature slots (sig store)")
		workers  = flag.Int("workers", 0, "parallel profiling workers (0 = serial)")
		skip     = flag.Bool("skip", false, "enable loop-skipping optimization (§2.4)")
		mt       = flag.Bool("mt", false, "multi-threaded-target pipeline (§2.3.4)")
		out      = flag.String("o", "", "output file (default stdout)")
		withPET  = flag.Bool("pet", false, "also print the program execution tree")
		list     = flag.Bool("list", false, "list available workloads")
	)
	flag.Parse()
	if *list || *workload == "" {
		fmt.Println("available workloads:")
		for _, suite := range workloads.Suites() {
			fmt.Printf("  %-14s %s\n", suite+":", strings.Join(workloads.Names(suite), " "))
		}
		if *workload == "" {
			os.Exit(0)
		}
	}
	prog, err := workloads.Build(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := profiler.Options{Slots: *slots, Skip: *skip, Workers: *workers, MT: *mt}
	if *store == "sig" {
		opt.Store = profiler.StoreSignature
	}
	prof := profiler.New(prog.M, opt)
	petB := pet.NewBuilder()
	in := interp.New(prog.M, &pet.Multi{Tracers: []interp.Tracer{prof, petB}})
	start := time.Now()
	instrs := in.Run()
	elapsed := time.Since(start)
	res := prof.Result()

	var sb strings.Builder
	res.WriteDepFile(&sb, *mt)
	output := sb.String()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(output), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(output)
	}
	fmt.Fprintf(os.Stderr,
		"profiled %s: %d statements, %d accesses, %d merged deps, %d races, store %.1f MB, %.0f ms\n",
		prog.Name, instrs, res.Accesses, len(res.Deps), res.Races,
		float64(res.StoreBytes)/(1<<20), elapsed.Seconds()*1000)
	if *skip {
		s := res.Skip
		fmt.Fprintf(os.Stderr, "skip: %d/%d reads, %d/%d writes skipped\n",
			s.SkippedReads, s.Reads, s.SkippedWrite, s.Writes)
	}
	if *withPET {
		fmt.Fprint(os.Stderr, petB.Tree(instrs).Render())
	}
}
