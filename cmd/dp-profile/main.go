// Command dp-profile runs the DiscoPoP-Go data-dependence profiler on one
// or more bundled workloads and writes the dependence file (the Figure
// 2.1/2.3 format) to stdout or a file, together with profiling statistics.
// It drives the Profile+BuildPET stages of the analysis pipeline; multiple
// workloads (comma-separated) are profiled concurrently on the batch
// engine.
//
// Usage:
//
//	dp-profile -workload kmeans [-scale 1] [-store sig|perfect]
//	           [-slots N] [-workers N] [-skip] [-mt] [-o deps.txt] [-pet]
//	dp-profile -workload kmeans,CG,EP -jobs 4
//	dp-profile -workload CG -cpuprofile cpu.pprof -memprofile mem.pprof
//	dp-profile -workload CG -pprof cg.pb.gz && go tool pprof -top cg.pb.gz
//
// -pprof exports the workload's per-line execution effort (interpreted
// statements per source line) as a gzipped pprof profile readable by
// `go tool pprof` — the profiled program's hot lines, not this process's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"discopop/internal/obs"
	"discopop/internal/pipeline"
	"discopop/internal/profflag"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

// main defers to run so that deferred cleanups — notably the pprof Stop —
// fire before the exit code is surrendered to os.Exit.
func main() { os.Exit(run()) }

func run() int {
	var (
		workload = flag.String("workload", "", "workload name(s), comma-separated, or \"all\" (see -list)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		store    = flag.String("store", "perfect", "status store: sig | perfect")
		slots    = flag.Int("slots", 1<<20, "total signature slots (sig store)")
		workers  = flag.Int("workers", 0, "parallel profiling workers per job (0 = serial)")
		jobs     = flag.Int("jobs", 0, "concurrent profiling jobs (0 = auto: CPUs, divided by -workers+1 when parallel profiling)")
		skip     = flag.Bool("skip", false, "enable loop-skipping optimization (§2.4)")
		mt       = flag.Bool("mt", false, "multi-threaded-target pipeline (§2.3.4)")
		out      = flag.String("o", "", "output file (default stdout)")
		withPET  = flag.Bool("pet", false, "also print the program execution tree")
		pprofOut = flag.String("pprof", "", "write per-line execution effort as a gzipped pprof profile (single workload only)")
		list     = flag.Bool("list", false, "list available workloads")
	)
	pf := profflag.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer pf.Stop()
	if *list || *workload == "" {
		fmt.Println("available workloads:")
		for _, suite := range workloads.Suites() {
			fmt.Printf("  %-14s %s\n", suite+":", strings.Join(workloads.Names(suite), " "))
		}
		if *workload == "" {
			return 0
		}
	}
	popt := profiler.Options{Slots: *slots, Skip: *skip, Workers: *workers, MT: *mt}
	if *store == "sig" {
		popt.Store = profiler.StoreSignature
	}

	progs, err := workloads.BuildBatch(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var batch []pipeline.Job
	for _, prog := range progs {
		batch = append(batch, pipeline.Job{Name: prog.Name, Mod: prog.M})
	}
	results := pipeline.ProfileAll(batch, pipeline.Options{
		Profiler: popt, BatchWorkers: *jobs,
	})

	var sb strings.Builder
	failed := false
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Name, jr.Err)
			failed = true
			continue
		}
		rep := jr.Report
		res := rep.Profile
		if len(results) > 1 {
			fmt.Fprintf(&sb, "=== %s ===\n", jr.Name)
		}
		res.WriteDepFile(&sb, *mt)
		// Report the instrumented execution's wall time, not whole-job
		// time: the ms figure feeds slowdown comparisons and must exclude
		// profiler setup, PET finalization, and result merging.
		fmt.Fprintf(os.Stderr,
			"profiled %s: %d statements, %d accesses, %d merged deps, %d races, store %.1f MB, %.0f ms\n",
			jr.Name, rep.Instrs, res.Accesses, len(res.Deps), res.Races,
			float64(res.StoreBytes)/(1<<20), rep.ExecTime.Seconds()*1000)
		if *skip {
			s := res.Skip
			fmt.Fprintf(os.Stderr, "skip: %d/%d reads, %d/%d writes skipped\n",
				s.SkippedReads, s.Reads, s.SkippedWrite, s.Writes)
		}
		if *withPET {
			fmt.Fprint(os.Stderr, rep.PET.Render())
		}
	}
	output := sb.String()
	if failed {
		// Leave any existing -o file untouched on failure: a partial
		// batch must not clobber a good dependence file from a prior run.
		fmt.Fprintln(os.Stderr, "dp-profile: some jobs failed; output not written")
		return 1
	}
	if *pprofOut != "" {
		if len(results) != 1 {
			fmt.Fprintln(os.Stderr, "dp-profile: -pprof takes exactly one workload")
			return 1
		}
		data, err := obs.EncodeLineProfile("instructions", "count",
			obs.ModuleLineSamples(progs[0].M, results[0].Report.Profile.Lines),
			time.Now().UnixNano())
		if err == nil {
			err = os.WriteFile(*pprofOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dp-profile: -pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote pprof profile to %s (%d bytes)\n", *pprofOut, len(data))
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(output), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		fmt.Print(output)
	}
	return 0
}
