// Command dp-discover runs the full three-phase DiscoPoP-Go pipeline —
// profiling, CU construction, parallelism discovery, ranking — on one or
// more bundled workloads and prints the ranked parallelization suggestions.
// Multiple workloads (comma-separated, or "all") are analyzed concurrently
// on the batch engine.
//
// Usage:
//
//	dp-discover -workload CG [-scale 1] [-threads 16] [-bottomup] [-cus] [-v]
//	dp-discover -workload CG,EP,kmeans -jobs 4
//	dp-discover -workload CG -cpuprofile cpu.pprof -memprofile mem.pprof
//	dp-discover -workload CG -trace
//	dp-discover -workload all -stats
//	dp-discover -workload all -remote http://10.0.0.7:8080,http://10.0.0.8:8080
//
// With -remote the modules are serialized and shipped to the named
// dp-serve workers instead of being analyzed in-process; the printed
// ranking comes from the workers' wire reports (CU-graph options like
// -cus and -dot need the in-process products and are unavailable).
// Wire reports are summaries: workers send only the positive-score
// suggestions, capped at 100 best-first, so zero-score rows a local
// `-v` run would print do not appear with -remote.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"discopop"
	"discopop/internal/ir"
	"discopop/internal/pipeline"
	"discopop/internal/profflag"
	"discopop/internal/remote"
	"discopop/internal/workloads"
)

// main defers to run so that deferred cleanups — notably the pprof Stop —
// fire before the exit code is surrendered to os.Exit.
func main() { os.Exit(run()) }

func run() int {
	var (
		workload = flag.String("workload", "", "workload name(s), comma-separated, or \"all\"")
		scale    = flag.Int("scale", 1, "workload scale factor")
		threads  = flag.Int("threads", 16, "thread count for local-speedup ranking")
		jobs     = flag.Int("jobs", 0, "concurrent analysis jobs (0 = auto: one per CPU)")
		bottomUp = flag.Bool("bottomup", false, "use bottom-up CU construction (§3.2.3)")
		showCUs  = flag.Bool("cus", false, "print the CU graph")
		stats    = flag.Bool("stats", false, "print fleet-level engine stats")
		dot      = flag.String("dot", "", "write the CU graph in Graphviz format (raw|clustered)")
		verbose  = flag.Bool("v", false, "print blocking dependences per loop")
		remotes  = flag.String("remote", "", "comma-separated dp-serve worker URLs; analyze on the fleet")
		noBC     = flag.Bool("no-bytecode", false, "run targets on the reference tree-walking engine instead of the bytecode VM")
		trace    = flag.Bool("trace", false, "print each job's span tree (stage timings; includes worker spans with -remote)")
	)
	pf := profflag.Register()
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "usage: dp-discover -workload <name>[,<name>...] (dp-profile -list shows names)")
		return 2
	}
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer pf.Stop()
	progs, err := workloads.BuildBatch(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var batch []discopop.Job
	for _, prog := range progs {
		batch = append(batch, discopop.Job{Name: prog.Name, Mod: prog.M})
	}
	if *dot != "" && len(batch) > 1 {
		fmt.Fprintln(os.Stderr, "dp-discover: -dot supports a single workload (stdout is one Graphviz document)")
		return 2
	}
	if *remotes != "" && (*dot != "" || *showCUs) {
		fmt.Fprintln(os.Stderr, "dp-discover: -cus/-dot need the in-process CU graph and cannot combine with -remote")
		return 2
	}
	opt := discopop.Options{
		Threads:      *threads,
		BottomUpCUs:  *bottomUp,
		BatchWorkers: *jobs,
	}
	opt.Profiler.TreeWalk = *noBC
	var results []*pipeline.JobResult
	var fleet pipeline.FleetStats
	if *remotes != "" {
		results, fleet = analyzeRemote(batch, opt, strings.Split(*remotes, ","))
	} else {
		results, fleet = discopop.AnalyzeAllStats(batch, opt)
	}
	failed := false
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", jr.Name, jr.Err)
			failed = true
			continue
		}
		report(jr.Name, jr.Report, *verbose, *showCUs, *dot)
		if *trace && jr.Trace != nil {
			fmt.Println()
			jr.Trace.WriteText(os.Stdout)
		}
	}
	if *stats {
		fmt.Printf("\nfleet: %d jobs (%d failed), %d instrs, %d deps, %d accesses, store %.1f MB, busy %s\n",
			fleet.Jobs, fleet.Failed, fleet.Instrs, fleet.Deps, fleet.Accesses,
			float64(fleet.StoreBytes)/(1<<20), fleet.Busy.Round(1e6))
		stages := make([]string, 0, len(fleet.StageTime))
		for s := range fleet.StageTime {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			fmt.Printf("  stage %-10s %s\n", s, fleet.StageTime[s].Round(1e6))
		}
		if q := fleet.QueueLat; q.Count > 0 {
			fmt.Printf("  queue latency: min %s  p50~%s  max %s  (mean %s over %d jobs)\n",
				q.Min, q.Median(), q.Max, q.Mean(), q.Count)
			fmt.Printf("    histogram: %s\n", q.String())
		}
		if fleet.CacheHits > 0 || fleet.CacheEvictions > 0 {
			fmt.Printf("  profile cache: %d hits, %d evictions\n",
				fleet.CacheHits, fleet.CacheEvictions)
		}
		if p := fleet.Pool; p.Gets > 0 {
			fmt.Printf("  arena pool: %d gets, %d puts, %d fresh allocations (%d recycled)\n",
				p.Gets, p.Puts, p.Fresh, p.Gets-p.Fresh)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// analyzeRemote fans the batch out over dp-serve workers: the engine's
// only stage serializes each module and ships it to the fleet, with
// failover between peers and local fallback when every peer is down.
func analyzeRemote(batch []discopop.Job, opt discopop.Options, peers []string) ([]*pipeline.JobResult, pipeline.FleetStats) {
	stage := &remote.Stage{Client: remote.NewClient(peers, remote.ClientOptions{})}
	out, fleet := pipeline.AnalyzeAllWith(
		&pipeline.Pipeline{Stages: []pipeline.Stage{stage}}, batch, opt)
	if n := stage.Fallbacks(); n > 0 {
		fmt.Fprintf(os.Stderr, "dp-discover: %d job(s) fell back to local analysis (no peer available)\n", n)
	}
	return out, fleet
}

func report(name string, rep *discopop.Report, verbose, showCUs bool, dot string) {
	if rep.Profile == nil || rep.CUs == nil {
		// Remote analysis: only the wire summary crossed back.
		peer := rep.RemotePeer
		if peer == "" {
			peer = "?"
		}
		fmt.Printf("%s: %d statements executed, %d dependences, %d CUs (analyzed on %s)\n\n",
			name, rep.Instrs, rep.NumDeps(), rep.NumCUs(), peer)
		printRanking(rep, verbose)
		return
	}
	fmt.Printf("%s: %d statements executed, %d dependences, %d CUs, %d CU edges\n\n",
		name, rep.Instrs, len(rep.Profile.Deps), len(rep.CUs.CUs), len(rep.CUs.Edges))
	printRanking(rep, verbose)
	if dot != "" {
		// Figure 3.6 style (RAW only) or Figure 3.7 style (clustered).
		fmt.Print(rep.CUs.DOT(dot != "clustered", dot == "clustered"))
		return
	}
	if showCUs {
		fmt.Println("\nCU graph:")
		for _, c := range rep.CUs.CUs {
			fmt.Printf("  %s region=%s reads=%v writes=%v weight=%.0f\n",
				c, c.Region, varNames(c.ReadSet), varNames(c.WriteSet), c.Weight)
		}
		for _, e := range rep.CUs.Edges {
			carried := ""
			if e.Carried {
				carried = " carried"
			}
			fmt.Printf("  CU#%d -%s%s-> CU#%d (%d)\n", e.From.ID, e.Type, carried, e.To.ID, e.Count)
		}
	}
}

func printRanking(rep *discopop.Report, verbose bool) {
	fmt.Printf("%-4s %-18s %-10s %9s %9s %9s %9s\n",
		"rank", "kind", "location", "coverage", "speedup", "imbal", "score")
	rank := 0
	for _, s := range rep.Ranked {
		if s.Score <= 0 && !verbose {
			continue
		}
		rank++
		fmt.Printf("%-4d %-18s %-10s %8.1f%% %8.2fx %9.3f %9.4f  %s\n",
			rank, s.Kind, s.Loc, 100*s.Coverage, s.LocalSpeedup, s.Imbalance, s.Score, s.Notes)
		if verbose && rep.Profile != nil {
			for _, d := range s.Blocking {
				fmt.Printf("       blocking: %s RAW %s (%s)\n",
					d.Sink, d.Source, rep.Profile.VarName(d.Var))
			}
		}
	}
}

func varNames(vs []*ir.Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}
