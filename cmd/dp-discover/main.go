// Command dp-discover runs the full three-phase DiscoPoP-Go pipeline —
// profiling, CU construction, parallelism discovery, ranking — on a
// bundled workload and prints the ranked parallelization suggestions.
//
// Usage:
//
//	dp-discover -workload CG [-scale 1] [-threads 16] [-bottomup] [-cus] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"discopop"
	"discopop/internal/ir"
	"discopop/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name")
		scale    = flag.Int("scale", 1, "workload scale factor")
		threads  = flag.Int("threads", 16, "thread count for local-speedup ranking")
		bottomUp = flag.Bool("bottomup", false, "use bottom-up CU construction (§3.2.3)")
		showCUs  = flag.Bool("cus", false, "print the CU graph")
		dot      = flag.String("dot", "", "write the CU graph in Graphviz format (raw|clustered)")
		verbose  = flag.Bool("v", false, "print blocking dependences per loop")
	)
	flag.Parse()
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "usage: dp-discover -workload <name> (dp-profile -list shows names)")
		os.Exit(2)
	}
	prog, err := workloads.Build(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := discopop.Analyze(prog.M, discopop.Options{
		Threads:     *threads,
		BottomUpCUs: *bottomUp,
	})
	fmt.Printf("%s: %d statements executed, %d dependences, %d CUs, %d CU edges\n\n",
		prog.Name, rep.Instrs, len(rep.Profile.Deps), len(rep.CUs.CUs), len(rep.CUs.Edges))
	fmt.Printf("%-4s %-18s %-10s %9s %9s %9s %9s\n",
		"rank", "kind", "location", "coverage", "speedup", "imbal", "score")
	rank := 0
	for _, s := range rep.Ranked {
		if s.Score <= 0 && !*verbose {
			continue
		}
		rank++
		fmt.Printf("%-4d %-18s %-10s %8.1f%% %8.2fx %9.3f %9.4f  %s\n",
			rank, s.Kind, s.Loc, 100*s.Coverage, s.LocalSpeedup, s.Imbalance, s.Score, s.Notes)
		if *verbose {
			for _, d := range s.Blocking {
				fmt.Printf("       blocking: %s RAW %s (%s)\n",
					d.Sink, d.Source, rep.Profile.VarName(d.Var))
			}
		}
	}
	if *dot != "" {
		// Figure 3.6 style (RAW only) or Figure 3.7 style (clustered).
		fmt.Print(rep.CUs.DOT(*dot != "clustered", *dot == "clustered"))
		return
	}
	if *showCUs {
		fmt.Println("\nCU graph:")
		for _, c := range rep.CUs.CUs {
			fmt.Printf("  %s region=%s reads=%v writes=%v weight=%.0f\n",
				c, c.Region, varNames(c.ReadSet), varNames(c.WriteSet), c.Weight)
		}
		for _, e := range rep.CUs.Edges {
			carried := ""
			if e.Carried {
				carried = " carried"
			}
			fmt.Printf("  CU#%d -%s%s-> CU#%d (%d)\n", e.From.ID, e.Type, carried, e.To.ID, e.Count)
		}
	}
}

func varNames(vs []*ir.Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}
