// Command dp-serve runs the DiscoPoP-Go analysis pipeline as a long-lived
// HTTP service: a persistent batch engine with a profile cache and shared
// arena pool, an async job API, and Prometheus metrics.
//
// Usage:
//
//	dp-serve [-addr :8080] [-jobs 0] [-cache-size 1024] [-queue 64] [-threads 16]
//	dp-serve -addr :8080 -peers http://10.0.0.7:8081,http://10.0.0.8:8081
//	dp-serve -tokens s3cret=alice,t0ken=bob -journal /var/lib/dp/jobs.journal \
//	         -rate 10 -max-inflight 8 -quota-instrs 5e6
//
//	curl -XPOST localhost:8080/v1/analyze -d '{"workload":"CG","scale":2}'
//	curl localhost:8080/v1/jobs/j000001?wait=10s
//	curl localhost:8080/v1/workloads
//	curl localhost:8080/metrics
//
// With -peers the node runs as a coordinator: every submission is
// encoded into the versioned IR wire format and shipped to a peer
// dp-serve worker (round-robin with health tracking and failover),
// falling back to local analysis when the whole fleet is unreachable.
// Per-peer proxy counters appear on /metrics.
//
// With -tokens or -token-file the /v1 API requires a bearer token, and
// rate limits, quotas, and journal records are keyed by the client each
// token maps to. -journal makes accepted/started/finished transitions
// durable: after a crash the next boot replays them, restores the job
// records (results included), and marks the jobs in flight at the crash
// as failed (interrupted). The journal bounds itself: once it outgrows
// -journal-max-bytes or -journal-max-records, the live job records are
// snapshotted into a fresh log (checkpoint record + atomic rename) so a
// boot replays the live store, not the full history; results too large
// for one journal record spill to content-addressed files under
// <journal>.spill/.
//
// -debug-addr serves net/http/pprof on a separate listener (bind it to
// localhost) so live profiling never shares a port with the authed API;
// -cpuprofile/-memprofile bracket the whole process for offline analysis.
//
// On SIGTERM/SIGINT the service drains: the listener closes, queued and
// running jobs finish, then the process exits. A second signal aborts
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"discopop/internal/profflag"
	"discopop/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		jobs      = flag.Int("jobs", 0, "concurrent analysis workers (0 = one per CPU)")
		cacheSize = flag.Int("cache-size", 1024, "profile cache entries (0 = unbounded)")
		queue     = flag.Int("queue", 64, "pending submissions accepted before 503")
		threads   = flag.Int("threads", 16, "default thread count for local-speedup ranking")
		drainFor  = flag.Duration("drain-timeout", time.Minute, "max time to wait for in-flight jobs on shutdown")
		peers     = flag.String("peers", "", "comma-separated worker URLs; run as a fleet coordinator")

		tokens      = flag.String("tokens", "", "inline token map: tok=client[,tok=client...]; enables /v1 auth")
		tokenFile   = flag.String("token-file", "", "file of \"token client\" lines; enables /v1 auth")
		peerToken   = flag.String("peer-token", "", "bearer token this coordinator presents to its -peers")
		journalPath = flag.String("journal", "", "append-only job journal path; replayed on boot for crash recovery")
		journalMaxB = flag.Int64("journal-max-bytes", 0, "compact the journal past this size (0 = 64MiB, negative = never by size)")
		journalMaxR = flag.Int64("journal-max-records", 0, "compact the journal past this many records (0 = 8192, negative = never by count)")
		rate        = flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "per-client submission burst (0 = 4x rate)")
		maxInflight = flag.Int("max-inflight", 0, "per-client accepted-but-unfinished job cap (0 = unlimited)")
		quotaInstrs = flag.Float64("quota-instrs", 0, "per-client interpreted instructions per second (0 = unlimited)")
		maxModuleKB = flag.Int("max-module-kb", 0, "per-submission serialized-module payload cap in KiB (0 = codec limits only)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (never on the API listener)")
	)
	pf := profflag.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		log.Print("dp-serve: ", err)
		return 1
	}
	defer pf.Stop()

	cacheEntries := *cacheSize
	if cacheEntries == 0 {
		cacheEntries = -1 // Config: negative = unbounded
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	tokenMap, err := loadTokens(*tokens, *tokenFile)
	if err != nil {
		log.Printf("dp-serve: %v", err)
		return 1
	}
	cfg := server.Config{
		Workers:           *jobs,
		CacheEntries:      cacheEntries,
		QueueDepth:        *queue,
		Threads:           *threads,
		Peers:             peerList,
		Tokens:            tokenMap,
		JournalPath:       *journalPath,
		JournalMaxBytes:   *journalMaxB,
		JournalMaxRecords: *journalMaxR,
		Quotas: server.Quotas{
			SubmitRate:     *rate,
			SubmitBurst:    *burst,
			MaxInflight:    *maxInflight,
			InstrRate:      *quotaInstrs,
			MaxModuleBytes: *maxModuleKB << 10,
		},
	}
	cfg.Remote.Token = *peerToken
	svc, err := server.New(cfg)
	if err != nil {
		log.Printf("dp-serve: %v", err)
		return 1
	}
	if len(peerList) > 0 {
		log.Printf("dp-serve: coordinating a %d-peer fleet: %s", len(peerList), *peers)
	}
	if len(tokenMap) > 0 {
		log.Printf("dp-serve: /v1 auth enabled for %d token(s)", len(tokenMap))
	}
	if *journalPath != "" {
		log.Printf("dp-serve: journaling jobs to %s", *journalPath)
	}
	if *debugAddr != "" {
		// The profiling endpoints run on their own listener with their own
		// mux: the API listener stays free of unauthenticated debug
		// handlers, and an operator binds this one to localhost.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Printf("dp-serve: debug listener: %v", err)
			return 1
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", nhpprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
		log.Printf("dp-serve: pprof debug listener on %s", dln.Addr())
		go http.Serve(dln, dmux)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("dp-serve: %v", err)
		return 1
	}
	// The resolved address line is load-bearing for scripts booting on port
	// 0: they parse the port from it.
	fmt.Printf("dp-serve listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		log.Printf("dp-serve: %v: draining (in-flight jobs finish; signal again to abort)", sig)
	case err := <-serveErr:
		log.Printf("dp-serve: %v", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	go func() {
		<-sigs
		log.Print("dp-serve: second signal, aborting drain")
		cancel()
	}()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("dp-serve: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		log.Printf("dp-serve: %v", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dp-serve: %v", err)
	}
	log.Print("dp-serve: drained cleanly")
	return 0
}

// loadTokens merges the -tokens inline map ("tok=client,tok=client") with
// a -token-file of "token client" lines (blank lines and #-comments
// skipped). Later entries win on duplicate tokens.
func loadTokens(inline, file string) (map[string]string, error) {
	out := map[string]string{}
	if inline != "" {
		for _, pair := range strings.Split(inline, ",") {
			tok, client, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || tok == "" || client == "" {
				return nil, fmt.Errorf("bad -tokens entry %q (want token=client)", pair)
			}
			out[tok] = client
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("-token-file: %w", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("-token-file %s:%d: want \"token client\"", file, i+1)
			}
			out[fields[0]] = fields[1]
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
