// Command dp-experiments regenerates the paper's evaluation tables and
// figures (the per-experiment index is in DESIGN.md; recorded outputs in
// EXPERIMENTS.md).
//
// Usage:
//
//	dp-experiments                  # run everything
//	dp-experiments -run table4.1    # run one experiment
//	dp-experiments -scale 2         # larger workloads
//	dp-experiments -par 8           # 8 concurrent jobs in discovery sweeps
//	dp-experiments -cache=false     # re-profile every sweep (no memoization)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"discopop"
	"discopop/internal/experiments"
	"discopop/internal/profflag"
)

// main defers to run so that deferred cleanups — notably the pprof Stop —
// fire before the exit code is surrendered to os.Exit.
func main() { os.Exit(runMain()) }

func runMain() int {
	var (
		run   = flag.String("run", "", "experiment ID to run (e.g. table2.6, fig2.9); empty = all")
		scale = flag.Int("scale", 1, "workload scale factor")
		par   = flag.Int("par", 0, "concurrent analysis jobs in the ch4/ch5 discovery sweeps (0 = one per CPU)")
		cache = flag.Bool("cache", true, "share one Profile-stage cache across the discovery sweeps (ch4/ch5 tables re-analyzing a workload skip re-profiling)")
	)
	pf := profflag.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer pf.Stop()
	experiments.BatchWorkers = *par
	if *cache {
		experiments.Cache = discopop.NewProfileCache()
	}
	type exp struct {
		id string
		f  func() *experiments.Result
	}
	all := []exp{
		{"table2.6", func() *experiments.Result {
			return experiments.Table2_6(*scale, []int{1 << 10, 1 << 14, 1 << 20})
		}},
		{"fig2.9", func() *experiments.Result { return experiments.Fig2_9(*scale) }},
		{"fig2.10", func() *experiments.Result { return experiments.Fig2_10(*scale) }},
		{"fig2.12", func() *experiments.Result { return experiments.Fig2_12(*scale) }},
		{"table2.7", func() *experiments.Result { return experiments.Table2_7(*scale) }},
		{"fig2.13", func() *experiments.Result { return experiments.Fig2_13(*scale) }},
		{"table4.1", func() *experiments.Result { return experiments.Table4_1(*scale) }},
		{"table4.2", func() *experiments.Result { return experiments.Table4_2(*scale, 4) }},
		{"table4.3", func() *experiments.Result { return experiments.Table4_3(*scale) }},
		{"table4.4", func() *experiments.Result { return experiments.Table4_4(*scale) }},
		{"table4.5", func() *experiments.Result { return experiments.Table4_5(*scale, 4) }},
		{"table4.6", func() *experiments.Result { return experiments.Table4_6(*scale) }},
		{"table4.7", func() *experiments.Result { return experiments.Table4_7(*scale) }},
		{"fig4.11", func() *experiments.Result { return experiments.Fig4_11(*scale) }},
		{"table5.2", func() *experiments.Result { return experiments.Table5_2_5_3(*scale) }},
		{"table5.4", func() *experiments.Result { return experiments.Table5_4(*scale) }},
		{"fig5.1", func() *experiments.Result { return experiments.Fig5_1(*scale) }},
	}
	matched := false
	for _, e := range all {
		if *run != "" && !strings.HasPrefix(e.id, strings.ToLower(*run)) &&
			!strings.HasPrefix(strings.ToLower(*run), e.id) {
			continue
		}
		matched = true
		res := e.f()
		fmt.Printf("==== %s: %s ====\n%s\n", res.ID, res.Title, res.Text)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known:", *run)
		for _, e := range all {
			fmt.Fprintf(os.Stderr, " %s", e.id)
		}
		fmt.Fprintln(os.Stderr)
		return 2
	}
	if experiments.Cache != nil {
		hits, misses := experiments.Cache.Stats()
		fmt.Printf("profile cache: %d hits, %d misses (each hit skipped one instrumented re-execution)\n",
			hits, misses)
	}
	return 0
}
