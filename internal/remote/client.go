package remote

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discopop/internal/obs"
)

// Spec carries the per-job analysis options that travel with an encoded
// module.
type Spec struct {
	// Threads overrides the worker's default for local-speedup ranking.
	Threads int
	// BottomUp selects bottom-up CU construction on the worker.
	BottomUp bool
	// TraceID, when non-empty, is sent as the X-DP-Trace header so the
	// worker records its job spans under the coordinator's trace id and
	// the returned spans graft into one fleet-wide trace.
	TraceID string
}

// WireSuggestion is one ranked parallelization opportunity as it crosses
// the wire — the JSON shape dp-serve renders in job results.
type WireSuggestion struct {
	Rank      int     `json:"rank"`
	Kind      string  `json:"kind"`
	Loc       string  `json:"loc"`
	Coverage  float64 `json:"coverage"`
	Speedup   float64 `json:"speedup"`
	Imbalance float64 `json:"imbalance"`
	Score     float64 `json:"score"`
	Notes     string  `json:"notes,omitempty"`
}

// WireReport is a completed remote analysis: the worker's job-result
// summary plus the peer that served it.
type WireReport struct {
	Instrs      int64            `json:"instrs"`
	Deps        int              `json:"deps"`
	CUs         int              `json:"cus"`
	CacheHit    bool             `json:"cache_hit"`
	Suggestions []WireSuggestion `json:"suggestions"`
	// Spans is the worker-side span tree of the job (queue wait plus
	// every pipeline stage), in the worker's clock domain; the
	// coordinator grafts it under its own remote span.
	Spans []obs.Span `json:"spans,omitempty"`

	// Peer is the base URL of the worker that produced the report.
	Peer string `json:"-"`
}

// ErrNoPeers is returned when every configured peer is marked down (or
// the client has none): the caller should run the analysis locally.
var ErrNoPeers = errors.New("remote: no healthy peers")

// RemoteError is a terminal failure reported by a peer rather than the
// transport: the peer rejected the request (4xx) or the analysis itself
// failed. Retrying on another peer would fail the same way, so the client
// surfaces it instead of failing over. Rejected distinguishes the two:
// a rejected submission never ran (the peer's decode limits may simply
// be stricter than local analysis, so a local run can still succeed),
// while a failed analysis did run and would fail anywhere.
type RemoteError struct {
	Peer string
	Msg  string
	// Rejected is true for submission rejections (4xx), false for
	// analyses that ran on the peer and failed.
	Rejected bool
}

func (e *RemoteError) Error() string { return fmt.Sprintf("remote: peer %s: %s", e.Peer, e.Msg) }

// jobEvictedError reports a 404/410 answer on a job poll: the worker's
// bounded jobStore evicted the record before its result was read. The
// answer is authoritative — the peer is up and serving — but the result
// is unrecoverable, so the analysis is resubmitted to the next candidate
// without pushing the evicting peer toward its failure cooldown.
type jobEvictedError struct {
	peer string
	id   string
}

func (e *jobEvictedError) Error() string {
	return fmt.Sprintf("remote: peer %s no longer has job %s (record evicted)", e.peer, e.id)
}

// retryAfterError reports a 429 on submit: the peer is healthy but this
// client is over its rate limit or quota. It is neither a transport fault
// (no health penalty) nor authoritative for the job (the analysis has not
// run) — the caller backs off for the advertised delay and retries.
type retryAfterError struct {
	peer  string
	delay time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("remote: peer %s rate-limited the submission (retry after %s)", e.peer, e.delay)
}

// ClientOptions tunes failover behavior. The zero value is serviceable.
type ClientOptions struct {
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
	// MaxAttempts bounds submissions per analysis across peers
	// (0 = number of peers).
	MaxAttempts int
	// PollWait is the long-poll duration sent as ?wait= (0 = 10s).
	PollWait time.Duration
	// JobTimeout bounds one peer attempt end to end: submit, polls, and
	// report decode (0 = 2m).
	JobTimeout time.Duration
	// FailThreshold is how many consecutive failures mark a peer down
	// (0 = 3).
	FailThreshold int
	// Cooldown is how long a down peer is skipped before being probed
	// again (0 = 15s).
	Cooldown time.Duration
	// Token is the bearer token presented on every request; empty sends no
	// Authorization header (workers running open).
	Token string
}

func (o ClientOptions) withDefaults(peers int) ClientOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = peers
	}
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 15 * time.Second
	}
	return o
}

// PeerStats is a snapshot of one peer's proxy counters, rendered by the
// coordinator's /metrics.
type PeerStats struct {
	URL string
	// Requests counts analysis submissions attempted against the peer.
	Requests int64
	// Failures counts transport-level failures (refused, timeout, bad
	// status, garbage response).
	Failures int64
	// Jobs counts analyses the peer completed successfully.
	Jobs int64
	// Healthy is false while the peer sits in its failure cooldown.
	Healthy bool
}

type peer struct {
	url string

	requests atomic.Int64
	failures atomic.Int64
	jobs     atomic.Int64

	mu          sync.Mutex
	consecFails int
	downUntil   time.Time
}

func (p *peer) healthy(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.After(p.downUntil)
}

func (p *peer) noteFailure(threshold int, cooldown time.Duration) {
	p.failures.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consecFails++
	if p.consecFails >= threshold {
		p.downUntil = time.Now().Add(cooldown)
		p.consecFails = 0
	}
}

func (p *peer) noteSuccess() {
	p.mu.Lock()
	p.consecFails = 0
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// Client ships encoded modules to a fleet of dp-serve peers. It is safe
// for concurrent use: engine workers fan jobs through one shared Client,
// which spreads them round-robin over the healthy peers.
type Client struct {
	peers []*peer
	opt   ClientOptions
	next  atomic.Uint64
}

// NewClient builds a client over the given peer base URLs (e.g.
// "http://10.0.0.7:8080"). Trailing slashes are trimmed; empty entries
// are dropped.
func NewClient(urls []string, opt ClientOptions) *Client {
	c := &Client{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		c.peers = append(c.peers, &peer{url: u})
	}
	c.opt = opt.withDefaults(len(c.peers))
	return c
}

// NumPeers returns how many peers the client is configured with.
func (c *Client) NumPeers() int { return len(c.peers) }

// Available reports whether at least one peer is outside its failure
// cooldown — whether AnalyzeBytes could do anything but return
// ErrNoPeers. Callers use it to skip submission work (module encoding)
// while the whole fleet is down; it is advisory, racing peers back to
// health is harmless.
func (c *Client) Available() bool {
	now := time.Now()
	for _, p := range c.peers {
		if p.healthy(now) {
			return true
		}
	}
	return false
}

// Stats snapshots every peer's proxy counters.
func (c *Client) Stats() []PeerStats {
	now := time.Now()
	out := make([]PeerStats, len(c.peers))
	for i, p := range c.peers {
		out[i] = PeerStats{
			URL:      p.url,
			Requests: p.requests.Load(),
			Failures: p.failures.Load(),
			Jobs:     p.jobs.Load(),
			Healthy:  p.healthy(now),
		}
	}
	return out
}

// AnalyzeBytes submits an already-encoded module to the fleet: it walks
// the healthy peers round-robin, retrying transport failures on the next
// peer up to MaxAttempts, and returns ErrNoPeers when no peer could take
// the job (the caller falls back to local analysis). A *RemoteError means
// a peer answered authoritatively — rejected module or failed analysis —
// and is not retried. A 404/410 on a job poll (the worker's bounded job
// store evicted the record before the result was read) resubmits to the
// next peer like a transport failure, but does not count toward the
// evicting peer's failure cooldown: the peer is up, the result is simply
// gone.
func (c *Client) AnalyzeBytes(ctx context.Context, enc []byte, spec Spec) (*WireReport, error) {
	if len(c.peers) == 0 {
		return nil, ErrNoPeers
	}
	now := time.Now()
	start := int(c.next.Add(1) - 1)
	var candidates []*peer
	for i := range c.peers {
		p := c.peers[(start+i)%len(c.peers)]
		if p.healthy(now) {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoPeers
	}
	if len(candidates) > c.opt.MaxAttempts {
		candidates = candidates[:c.opt.MaxAttempts]
	}
	// One idempotency key per logical job, reused across every peer attempt:
	// a worker that already accepted an earlier attempt (the coordinator
	// timed out, the connection dropped mid-response) answers the retry from
	// its original record instead of running the analysis twice.
	idemKey := newIdemKey()
	var lastErr error
	rateRetries := 0
	for i := 0; i < len(candidates); i++ {
		p := candidates[i]
		rep, err := c.analyzeOn(ctx, p, enc, spec, idemKey)
		if err == nil {
			p.noteSuccess()
			p.jobs.Add(1)
			return rep, nil
		}
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			// An authoritative answer, not a peer fault.
			p.noteSuccess()
			return nil, err
		}
		var evict *jobEvictedError
		if errors.As(err, &evict) {
			// Also authoritative — the worker evicted the job record under
			// load, not a transport fault — but the result is gone, so the
			// analysis still has to run somewhere else.
			p.noteSuccess()
			lastErr = err
			continue
		}
		var ra *retryAfterError
		if errors.As(err, &ra) {
			// Over this client's rate limit or quota on that peer: the peer
			// is healthy (no cooldown pressure), the job just has to wait.
			// Honor Retry-After and try the same peer again, a bounded number
			// of times per job so a saturated quota eventually surfaces.
			p.noteSuccess()
			lastErr = err
			if rateRetries < maxRateRetries {
				rateRetries++
				if err := sleepCtx(ctx, ra.delay); err != nil {
					return nil, err
				}
				i-- // revisit the same peer after the advertised delay
			}
			continue
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		p.noteFailure(c.opt.FailThreshold, c.opt.Cooldown)
		lastErr = err
	}
	return nil, fmt.Errorf("remote: all peers failed: %w", lastErr)
}

// maxRateRetries bounds how many Retry-After backoffs one job absorbs
// before its 429 is reported to the caller (which falls back locally).
const maxRateRetries = 2

// newIdemKey returns a fresh 128-bit idempotency key, or "" if the
// system's entropy source fails (the submission then simply isn't
// deduplicable — strictly the pre-idempotency behavior).
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return "dp-" + hex.EncodeToString(b[:])
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a 429's Retry-After header (delta-seconds form).
// Missing or malformed values back off half a second; advertised delays
// are capped so a hostile peer cannot park the coordinator for minutes.
func parseRetryAfter(h string) time.Duration {
	const (
		fallback = 500 * time.Millisecond
		maxDelay = 10 * time.Second
	)
	n, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || n < 0 {
		return fallback
	}
	d := time.Duration(n) * time.Second
	if d > maxDelay {
		return maxDelay
	}
	return d
}

// analyzeOn runs one submit-and-poll attempt against a single peer.
func (c *Client) analyzeOn(ctx context.Context, p *peer, enc []byte, spec Spec, idemKey string) (*WireReport, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opt.JobTimeout)
	defer cancel()
	p.requests.Add(1)

	body, err := json.Marshal(map[string]any{
		"module":   base64.StdEncoding.EncodeToString(enc),
		"threads":  spec.Threads,
		"bottomup": spec.BottomUp,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if spec.TraceID != "" {
		req.Header.Set("X-DP-Trace", spec.TraceID)
	}
	c.authorize(req)
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch {
	case resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, &retryAfterError{peer: p.url,
			delay: parseRetryAfter(resp.Header.Get("Retry-After"))}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, &RemoteError{Peer: p.url, Rejected: true,
			Msg: fmt.Sprintf("rejected submission: %s", errBody(payload))}
	default:
		return nil, fmt.Errorf("peer %s: submit status %d", p.url, resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &acc); err != nil || acc.ID == "" {
		return nil, fmt.Errorf("peer %s: malformed accept response", p.url)
	}

	// Long-poll until the job reaches a terminal state or the attempt's
	// context expires.
	for {
		view, err := c.pollJob(ctx, p, acc.ID)
		if err != nil {
			return nil, err
		}
		switch view.State {
		case "done":
			if view.Result == nil {
				return nil, fmt.Errorf("peer %s: done job %s has no result", p.url, acc.ID)
			}
			view.Result.Peer = p.url
			return view.Result, nil
		case "failed":
			return nil, &RemoteError{Peer: p.url, Msg: fmt.Sprintf("analysis failed: %s", view.Error)}
		case "queued":
			// Poll again (the server bounds each ?wait=, so this loops on
			// slow jobs until our own deadline).
		default:
			return nil, fmt.Errorf("peer %s: unknown job state %q", p.url, view.State)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
}

// authorize attaches the configured bearer token, when there is one.
func (c *Client) authorize(req *http.Request) {
	if c.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opt.Token)
	}
}

type wireJobView struct {
	State  string      `json:"state"`
	Error  string      `json:"error"`
	Result *WireReport `json:"result"`
}

func (c *Client) pollJob(ctx context.Context, p *peer, id string) (*wireJobView, error) {
	url := fmt.Sprintf("%s/v1/jobs/%s?wait=%s", p.url, id, c.opt.PollWait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone {
		return nil, &jobEvictedError{peer: p.url, id: id}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: job poll status %d", p.url, resp.StatusCode)
	}
	var view wireJobView
	if err := json.Unmarshal(payload, &view); err != nil {
		return nil, fmt.Errorf("peer %s: malformed job response: %w", p.url, err)
	}
	return &view, nil
}

func errBody(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(payload))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
