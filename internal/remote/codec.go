// Package remote moves analysis work between dp-serve nodes: a versioned
// binary codec turns an ir.Module into bytes that survive the wire, a
// Client submits encoded modules to peer workers over the dp-serve HTTP
// API with health tracking and failover, and Stage plugs the whole
// exchange into the local pipeline as one pipeline.Stage — the first step
// from a single analysis process to a fleet.
//
// # Wire format
//
// An encoded module is
//
//	"DPIR" | version | name | files | regions | func headers | vars |
//	globals | main | func bodies
//
// with all integers as unsigned varints, strings as length-prefixed
// bytes, and float64 constants as 8 little-endian bytes of their IEEE
// bits. Cross-references (a statement naming a variable, a region naming
// its parent) are table indices, so the pointer graph of the in-memory
// module flattens deterministically: encoding the same module always
// yields the same bytes, and a module that round-trips through
// Decode(Encode(m)) re-encodes to identical bytes. Derived fields
// (static operation numbers, profiling state) are not part of the
// format; the receiving side recomputes them.
//
// Decode is strict: every index is bounds-checked, every count is
// capped by Limits before allocation, nesting depth is bounded, and the
// region/statement cross-links are validated (a loop statement must
// claim exactly one loop region of its own function). Arbitrary input
// bytes produce an error, never a panic.
package remote

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"discopop/internal/ir"
)

// magic identifies an encoded module; version is bumped on any change to
// the byte layout.
const (
	magic   = "DPIR"
	version = 1
)

// Limits bounds what Decode will accept. Every count read from the wire
// is checked against its limit before memory is allocated for it, so a
// hostile payload cannot make the decoder allocate more than the limits
// allow.
type Limits struct {
	// MaxBytes caps the encoded size.
	MaxBytes int
	// MaxFiles caps the source-file table.
	MaxFiles int
	// MaxVars caps the variable table.
	MaxVars int
	// MaxFuncs caps the function table.
	MaxFuncs int
	// MaxRegions caps the region table.
	MaxRegions int
	// MaxNodes caps the total number of statement and expression nodes.
	MaxNodes int
	// MaxDepth caps statement/expression nesting.
	MaxDepth int
	// MaxNameLen caps any single name or file string.
	MaxNameLen int
	// MaxTotalElems caps the summed element count of all variables — the
	// simulated memory footprint a decoded module can demand (the remote
	// analogue of the server's workload-scale cap).
	MaxTotalElems int64
}

// maxEncodeDepth bounds nesting on the encoding side, mirroring the
// decoder's default so Encode never produces bytes Decode would reject.
const maxEncodeDepth = 200

// DefaultLimits are generous enough for every bundled workload at the
// server's maximum scale while keeping a hostile payload's footprint
// bounded to a few tens of megabytes.
func DefaultLimits() Limits {
	return Limits{
		MaxBytes:      8 << 20,
		MaxFiles:      256,
		MaxVars:       1 << 16,
		MaxFuncs:      1024,
		MaxRegions:    1 << 16,
		MaxNodes:      1 << 20,
		MaxDepth:      maxEncodeDepth,
		MaxNameLen:    256,
		MaxTotalElems: 8 << 20, // 8M float64 elements = 64MB simulated memory
	}
}

// statement and expression tags. Zero is reserved so a truncated read
// cannot alias a valid node.
const (
	tsAssign = iota + 1
	tsIf
	tsFor
	tsWhile
	tsCall
	tsReturn
	tsSpawn
	tsSync
	tsLock
	tsFree
)

const (
	teConst = iota + 1
	teRef
	teBin
	teUn
	teRand
	teCall
)

// ---------------------------------------------------------------------------
// Encoding

// Encode serializes m into the versioned wire format. It validates the
// module's cross-reference invariants first (table IDs matching indices,
// parents preceding children), so a successful Encode guarantees the
// bytes decode back into an equivalent module.
func Encode(m *ir.Module) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("remote: encode nil module")
	}
	e := &encoder{
		varIdx: make(map[*ir.Var]int, len(m.Vars)),
		funIdx: make(map[*ir.Func]int, len(m.Funcs)),
		regIdx: make(map[*ir.Region]int, len(m.Regions)),
	}
	for i, v := range m.Vars {
		if v == nil || v.ID != i {
			return nil, fmt.Errorf("remote: var table corrupt at %d", i)
		}
		e.varIdx[v] = i
	}
	for i, f := range m.Funcs {
		if f == nil {
			return nil, fmt.Errorf("remote: nil func at %d", i)
		}
		e.funIdx[f] = i
	}
	for i, r := range m.Regions {
		if r == nil {
			return nil, fmt.Errorf("remote: nil region at %d", i)
		}
		e.regIdx[r] = i
	}

	e.buf.WriteString(magic)
	e.uint(version)
	if err := e.encodeModule(m); err != nil {
		return nil, err
	}
	return e.buf.Bytes(), nil
}

type encoder struct {
	buf    bytes.Buffer
	varIdx map[*ir.Var]int
	funIdx map[*ir.Func]int
	regIdx map[*ir.Region]int
}

func (e *encoder) uint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) str(s string) {
	e.uint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) bool(b bool) {
	if b {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

func (e *encoder) f64(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	e.buf.Write(tmp[:])
}

func (e *encoder) loc(l ir.Loc) error {
	if l.File < 0 || l.Line < 0 {
		return fmt.Errorf("remote: negative location %v", l)
	}
	e.uint(uint64(l.File))
	e.uint(uint64(l.Line))
	return nil
}

// opt encodes an optional table index: 0 for nil, index+1 otherwise.
func (e *encoder) opt(isNil bool, lookup func() (int, bool), what string) error {
	if isNil {
		e.uint(0)
		return nil
	}
	i, ok := lookup()
	if !ok {
		return fmt.Errorf("remote: %s not in module table", what)
	}
	e.uint(uint64(i) + 1)
	return nil
}

func (e *encoder) varRef(v *ir.Var) error {
	i, ok := e.varIdx[v]
	if !ok {
		return fmt.Errorf("remote: var reference outside module table")
	}
	e.uint(uint64(i))
	return nil
}

func (e *encoder) funcRef(f *ir.Func) error {
	i, ok := e.funIdx[f]
	if !ok {
		return fmt.Errorf("remote: func reference outside module table")
	}
	e.uint(uint64(i))
	return nil
}

func (e *encoder) regionRef(r *ir.Region) error {
	i, ok := e.regIdx[r]
	if !ok {
		return fmt.Errorf("remote: region reference outside module table")
	}
	e.uint(uint64(i))
	return nil
}

func (e *encoder) encodeModule(m *ir.Module) error {
	e.str(m.Name)

	e.uint(uint64(len(m.Files)))
	for _, f := range m.Files {
		e.str(f)
	}

	// Region table. Parents must precede children so the decoder can wire
	// the tree in one pass.
	e.uint(uint64(len(m.Regions)))
	for i, r := range m.Regions {
		e.buf.WriteByte(byte(r.Kind))
		if err := e.loc(r.Start); err != nil {
			return err
		}
		if err := e.loc(r.End); err != nil {
			return err
		}
		if r.Parent == nil {
			e.uint(0)
		} else {
			pi, ok := e.regIdx[r.Parent]
			if !ok || pi >= i {
				return fmt.Errorf("remote: region %d parent out of order", i)
			}
			e.uint(uint64(pi) + 1)
		}
		if err := e.opt(r.Func == nil, func() (int, bool) { i, ok := e.funIdx[r.Func]; return i, ok }, "region func"); err != nil {
			return err
		}
	}

	// Function headers (bodies follow at the end, once the var table is
	// known).
	e.uint(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		e.str(f.Name)
		e.bool(f.HasRet)
		e.buf.WriteByte(byte(f.RetTyp))
		if err := e.loc(f.Loc); err != nil {
			return err
		}
		if err := e.loc(f.EndLoc); err != nil {
			return err
		}
		if f.Region == nil {
			return fmt.Errorf("remote: func %s has no region", f.Name)
		}
		if err := e.regionRef(f.Region); err != nil {
			return err
		}
	}

	// Variable table.
	e.uint(uint64(len(m.Vars)))
	for _, v := range m.Vars {
		e.str(v.Name)
		e.buf.WriteByte(byte(v.Kind))
		e.buf.WriteByte(byte(v.Type))
		if v.Elems < 1 {
			return fmt.Errorf("remote: var %s has %d elems", v.Name, v.Elems)
		}
		e.uint(uint64(v.Elems))
		e.bool(v.ByValue)
		e.bool(v.Heap)
		if err := e.loc(v.Decl); err != nil {
			return err
		}
		if err := e.opt(v.DeclRegion == nil, func() (int, bool) { i, ok := e.regIdx[v.DeclRegion]; return i, ok }, "var region"); err != nil {
			return err
		}
		if err := e.opt(v.Func == nil, func() (int, bool) { i, ok := e.funIdx[v.Func]; return i, ok }, "var func"); err != nil {
			return err
		}
	}

	// Globals, by index, in declaration order.
	e.uint(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		if err := e.varRef(g); err != nil {
			return err
		}
	}

	if m.Main == nil {
		return fmt.Errorf("remote: module has no main function")
	}
	if err := e.funcRef(m.Main); err != nil {
		return err
	}

	// Function bodies.
	for _, f := range m.Funcs {
		e.uint(uint64(len(f.Params)))
		for _, p := range f.Params {
			if err := e.varRef(p); err != nil {
				return err
			}
		}
		e.uint(uint64(len(f.Locals)))
		for _, l := range f.Locals {
			if err := e.varRef(l); err != nil {
				return err
			}
		}
		if f.Body == nil {
			return fmt.Errorf("remote: func %s has no body", f.Name)
		}
		if err := e.encodeBlock(f.Body, 0); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) encodeBlock(b *ir.BlockStmt, depth int) error {
	if depth > maxEncodeDepth {
		return fmt.Errorf("remote: statement nesting too deep to encode")
	}
	if err := e.loc(b.Loc); err != nil {
		return err
	}
	e.uint(uint64(len(b.Decls)))
	for _, d := range b.Decls {
		if err := e.varRef(d); err != nil {
			return err
		}
	}
	e.uint(uint64(len(b.List)))
	for _, s := range b.List {
		if err := e.encodeStmt(s, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) encodeStmt(s ir.Stmt, depth int) error {
	switch n := s.(type) {
	case *ir.Assign:
		e.buf.WriteByte(tsAssign)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		if err := e.encodeRef(n.Dst, depth); err != nil {
			return err
		}
		return e.encodeExpr(n.Src, depth)
	case *ir.If:
		e.buf.WriteByte(tsIf)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		if err := e.regionRef(n.Region); err != nil {
			return err
		}
		if err := e.encodeExpr(n.Cond, depth); err != nil {
			return err
		}
		if err := e.encodeBlock(n.Then, depth); err != nil {
			return err
		}
		e.bool(n.Else != nil)
		if n.Else != nil {
			return e.encodeBlock(n.Else, depth)
		}
		return nil
	case *ir.For:
		e.buf.WriteByte(tsFor)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		if err := e.loc(n.EndLoc); err != nil {
			return err
		}
		if err := e.regionRef(n.Region); err != nil {
			return err
		}
		if err := e.varRef(n.IndVar); err != nil {
			return err
		}
		if err := e.encodeExpr(n.From, depth); err != nil {
			return err
		}
		if err := e.encodeExpr(n.To, depth); err != nil {
			return err
		}
		if err := e.encodeExpr(n.Step, depth); err != nil {
			return err
		}
		return e.encodeBlock(n.Body, depth)
	case *ir.While:
		e.buf.WriteByte(tsWhile)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		if err := e.loc(n.EndLoc); err != nil {
			return err
		}
		if err := e.regionRef(n.Region); err != nil {
			return err
		}
		if err := e.encodeExpr(n.Cond, depth); err != nil {
			return err
		}
		return e.encodeBlock(n.Body, depth)
	case *ir.CallStmt:
		e.buf.WriteByte(tsCall)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		return e.encodeCall(n.Call, depth)
	case *ir.Return:
		e.buf.WriteByte(tsReturn)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		e.bool(n.Val != nil)
		if n.Val != nil {
			return e.encodeExpr(n.Val, depth)
		}
		return nil
	case *ir.Spawn:
		e.buf.WriteByte(tsSpawn)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		return e.encodeCall(n.Call, depth)
	case *ir.Sync:
		e.buf.WriteByte(tsSync)
		return e.loc(n.Loc)
	case *ir.LockRegion:
		e.buf.WriteByte(tsLock)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		if n.MutexID < 0 {
			return fmt.Errorf("remote: negative mutex id %d", n.MutexID)
		}
		e.uint(uint64(n.MutexID))
		return e.encodeBlock(n.Body, depth)
	case *ir.Free:
		e.buf.WriteByte(tsFree)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		return e.varRef(n.Var)
	case *ir.BlockStmt:
		return fmt.Errorf("remote: bare block statement is not encodable")
	default:
		return fmt.Errorf("remote: unknown statement type %T", s)
	}
}

func (e *encoder) encodeRef(r *ir.Ref, depth int) error {
	if r == nil {
		return fmt.Errorf("remote: nil ref")
	}
	if err := e.loc(r.Loc); err != nil {
		return err
	}
	if err := e.varRef(r.Var); err != nil {
		return err
	}
	e.bool(r.Index != nil)
	if r.Index != nil {
		return e.encodeExpr(r.Index, depth+1)
	}
	return nil
}

func (e *encoder) encodeCall(c *ir.CallExpr, depth int) error {
	if c == nil {
		return fmt.Errorf("remote: nil call")
	}
	if err := e.loc(c.Loc); err != nil {
		return err
	}
	if err := e.funcRef(c.Callee); err != nil {
		return err
	}
	e.uint(uint64(len(c.Args)))
	for _, a := range c.Args {
		if err := e.encodeExpr(a, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) encodeExpr(x ir.Expr, depth int) error {
	if depth > maxEncodeDepth {
		return fmt.Errorf("remote: expression nesting too deep to encode")
	}
	switch n := x.(type) {
	case *ir.Const:
		e.buf.WriteByte(teConst)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		e.buf.WriteByte(byte(n.Typ))
		e.f64(n.Val)
		return nil
	case *ir.Ref:
		e.buf.WriteByte(teRef)
		return e.encodeRef(n, depth)
	case *ir.Bin:
		e.buf.WriteByte(teBin)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		e.buf.WriteByte(byte(n.Op))
		if err := e.encodeExpr(n.L, depth+1); err != nil {
			return err
		}
		return e.encodeExpr(n.R, depth+1)
	case *ir.Un:
		e.buf.WriteByte(teUn)
		if err := e.loc(n.Loc); err != nil {
			return err
		}
		e.buf.WriteByte(byte(n.Op))
		return e.encodeExpr(n.X, depth+1)
	case *ir.Rand:
		e.buf.WriteByte(teRand)
		return e.loc(n.Loc)
	case *ir.CallExpr:
		e.buf.WriteByte(teCall)
		return e.encodeCall(n, depth)
	default:
		return fmt.Errorf("remote: unknown expression type %T", x)
	}
}

// ---------------------------------------------------------------------------
// Decoding

// Decode parses an encoded module under DefaultLimits.
func Decode(data []byte) (*ir.Module, error) {
	return DecodeLimits(data, DefaultLimits())
}

// DecodeLimits parses an encoded module, rejecting anything beyond lim.
// It never panics: malformed input yields an error.
func DecodeLimits(data []byte, lim Limits) (*ir.Module, error) {
	if lim.MaxBytes > 0 && len(data) > lim.MaxBytes {
		return nil, fmt.Errorf("remote: module of %d bytes exceeds limit %d", len(data), lim.MaxBytes)
	}
	d := &decoder{data: data, lim: lim, nodes: lim.MaxNodes}
	if string(d.take(len(magic))) != magic {
		return nil, fmt.Errorf("remote: bad magic (not an encoded module)")
	}
	v, err := d.uint()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("remote: unsupported wire version %d (have %d)", v, version)
	}
	m, err := d.decodeModule()
	if err != nil {
		return nil, err
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("remote: %d trailing bytes after module", len(d.data)-d.off)
	}
	return m, nil
}

type decoder struct {
	data  []byte
	off   int
	lim   Limits
	nodes int // remaining statement/expression node budget

	m    *ir.Module
	funs []*ir.Func
	regs []*ir.Region
	vars []*ir.Var
	// regFunc records each region's encoded owner index for validation.
	regFunc []int
	// curFunc is the function whose body is being decoded.
	curFunc *ir.Func
}

// take returns the next n raw bytes (nil when the input is short; callers
// that need them check length or go through typed readers that error).
func (d *decoder) take(n int) []byte {
	if n < 0 || d.off+n > len(d.data) {
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) uint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("remote: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// count reads a length and checks it against max before the caller
// allocates.
func (d *decoder) count(max int, what string) (int, error) {
	v, err := d.uint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("remote: %s count %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

func (d *decoder) byte() (byte, error) {
	b := d.take(1)
	if b == nil {
		return 0, fmt.Errorf("remote: truncated input at offset %d", d.off)
	}
	return b[0], nil
}

func (d *decoder) bool() (bool, error) {
	b, err := d.byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("remote: bad bool byte %d", b)
}

func (d *decoder) f64() (float64, error) {
	b := d.take(8)
	if b == nil {
		return 0, fmt.Errorf("remote: truncated float at offset %d", d.off)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (d *decoder) str() (string, error) {
	n, err := d.count(d.lim.MaxNameLen, "string length")
	if err != nil {
		return "", err
	}
	b := d.take(n)
	if b == nil {
		return "", fmt.Errorf("remote: truncated string at offset %d", d.off)
	}
	return string(b), nil
}

func (d *decoder) loc() (ir.Loc, error) {
	f, err := d.uint()
	if err != nil {
		return ir.Loc{}, err
	}
	l, err := d.uint()
	if err != nil {
		return ir.Loc{}, err
	}
	if f > math.MaxInt32 || l > math.MaxInt32 {
		return ir.Loc{}, fmt.Errorf("remote: location %d:%d out of range", f, l)
	}
	return ir.Loc{File: int32(f), Line: int32(l)}, nil
}

// idx reads a required table index in [0, n).
func (d *decoder) idx(n int, what string) (int, error) {
	v, err := d.uint()
	if err != nil {
		return 0, err
	}
	if v >= uint64(n) {
		return 0, fmt.Errorf("remote: %s index %d out of range (table has %d)", what, v, n)
	}
	return int(v), nil
}

// optIdx reads an optional index: -1 for absent, else [0, n).
func (d *decoder) optIdx(n int, what string) (int, error) {
	v, err := d.uint()
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return -1, nil
	}
	if v-1 >= uint64(n) {
		return 0, fmt.Errorf("remote: %s index %d out of range (table has %d)", what, v-1, n)
	}
	return int(v - 1), nil
}

// node charges one statement/expression node against the budget.
func (d *decoder) node() error {
	d.nodes--
	if d.nodes < 0 {
		return fmt.Errorf("remote: module exceeds %d-node budget", d.lim.MaxNodes)
	}
	return nil
}

func (d *decoder) decodeModule() (*ir.Module, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	d.m = &ir.Module{Name: name}

	nf, err := d.count(d.lim.MaxFiles, "file")
	if err != nil {
		return nil, err
	}
	d.m.Files = make([]string, nf)
	for i := range d.m.Files {
		if d.m.Files[i], err = d.str(); err != nil {
			return nil, err
		}
	}

	// Regions: structure first, function owners and statements wired later.
	nr, err := d.count(d.lim.MaxRegions, "region")
	if err != nil {
		return nil, err
	}
	d.regs = make([]*ir.Region, nr)
	d.regFunc = make([]int, nr)
	for i := range d.regs {
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		if kind > byte(ir.RBranch) {
			return nil, fmt.Errorf("remote: region %d has bad kind %d", i, kind)
		}
		start, err := d.loc()
		if err != nil {
			return nil, err
		}
		end, err := d.loc()
		if err != nil {
			return nil, err
		}
		parent, err := d.optIdx(nr, "region parent")
		if err != nil {
			return nil, err
		}
		if parent >= i {
			return nil, fmt.Errorf("remote: region %d references parent %d out of order", i, parent)
		}
		r := &ir.Region{ID: i, Kind: ir.RegionKind(kind), Start: start, End: end}
		if parent >= 0 {
			r.Parent = d.regs[parent]
			d.regs[parent].Children = append(d.regs[parent].Children, r)
		}
		if d.regFunc[i], err = d.optIdx(d.lim.MaxFuncs, "region func"); err != nil {
			return nil, err
		}
		d.regs[i] = r
	}
	d.m.Regions = d.regs

	// Function headers.
	nfn, err := d.count(d.lim.MaxFuncs, "func")
	if err != nil {
		return nil, err
	}
	d.funs = make([]*ir.Func, nfn)
	funcRegions := make([]int, nfn)
	for i := range d.funs {
		f := &ir.Func{ID: i, Module: d.m}
		if f.Name, err = d.str(); err != nil {
			return nil, err
		}
		if f.HasRet, err = d.bool(); err != nil {
			return nil, err
		}
		typ, err := d.byte()
		if err != nil {
			return nil, err
		}
		if typ > byte(ir.F64) {
			return nil, fmt.Errorf("remote: func %s has bad return type %d", f.Name, typ)
		}
		f.RetTyp = ir.Type(typ)
		if f.Loc, err = d.loc(); err != nil {
			return nil, err
		}
		if f.EndLoc, err = d.loc(); err != nil {
			return nil, err
		}
		if funcRegions[i], err = d.idx(nr, "func region"); err != nil {
			return nil, err
		}
		d.funs[i] = f
	}
	d.m.Funcs = d.funs

	// Wire regions to their owner functions, and functions to their body
	// regions, validating both directions.
	for i, r := range d.regs {
		fi := d.regFunc[i]
		if fi < 0 {
			if r.Kind != ir.RFunc {
				return nil, fmt.Errorf("remote: region %d (%s) has no function", i, r.Kind)
			}
			continue
		}
		if fi >= nfn {
			return nil, fmt.Errorf("remote: region %d references func %d of %d", i, fi, nfn)
		}
		r.Func = d.funs[fi]
	}
	claimed := make([]bool, nr)
	for i, f := range d.funs {
		ri := funcRegions[i]
		r := d.regs[ri]
		if r.Kind != ir.RFunc {
			return nil, fmt.Errorf("remote: func %s claims non-function region %d", f.Name, ri)
		}
		if claimed[ri] {
			return nil, fmt.Errorf("remote: region %d claimed by two functions", ri)
		}
		if r.Func != f {
			return nil, fmt.Errorf("remote: func %s and region %d disagree on ownership", f.Name, ri)
		}
		claimed[ri] = true
		f.Region = r
	}
	for i, r := range d.regs {
		if r.Kind == ir.RFunc && !claimed[i] {
			return nil, fmt.Errorf("remote: orphan function region %d", i)
		}
	}

	// Variable table.
	nv, err := d.count(d.lim.MaxVars, "var")
	if err != nil {
		return nil, err
	}
	d.vars = make([]*ir.Var, nv)
	var totalElems uint64
	for i := range d.vars {
		v := &ir.Var{ID: i}
		if v.Name, err = d.str(); err != nil {
			return nil, err
		}
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		if kind > byte(ir.KLocal) {
			return nil, fmt.Errorf("remote: var %s has bad kind %d", v.Name, kind)
		}
		v.Kind = ir.VarKind(kind)
		typ, err := d.byte()
		if err != nil {
			return nil, err
		}
		if typ > byte(ir.F64) {
			return nil, fmt.Errorf("remote: var %s has bad type %d", v.Name, typ)
		}
		v.Type = ir.Type(typ)
		elems, err := d.uint()
		if err != nil {
			return nil, err
		}
		// Compare in uint64 before any signed cast: a wire value >= 2^63
		// would go negative as int64 and slip past both the per-var and
		// the running-total caps.
		if elems < 1 || elems > uint64(d.lim.MaxTotalElems) {
			return nil, fmt.Errorf("remote: var %s has %d elems", v.Name, elems)
		}
		v.Elems = int(elems)
		// Each addend is bounded by MaxTotalElems and the sum is checked
		// every iteration, so totalElems never exceeds 2*MaxTotalElems and
		// cannot wrap a uint64.
		totalElems += elems
		if totalElems > uint64(d.lim.MaxTotalElems) {
			return nil, fmt.Errorf("remote: module footprint exceeds %d elements", d.lim.MaxTotalElems)
		}
		if v.ByValue, err = d.bool(); err != nil {
			return nil, err
		}
		if v.Heap, err = d.bool(); err != nil {
			return nil, err
		}
		if v.Decl, err = d.loc(); err != nil {
			return nil, err
		}
		ri, err := d.optIdx(nr, "var region")
		if err != nil {
			return nil, err
		}
		if ri >= 0 {
			v.DeclRegion = d.regs[ri]
		}
		fi, err := d.optIdx(nfn, "var func")
		if err != nil {
			return nil, err
		}
		if fi >= 0 {
			v.Func = d.funs[fi]
		}
		d.vars[i] = v
	}
	d.m.Vars = d.vars

	// Globals.
	ng, err := d.count(nv, "global")
	if err != nil {
		return nil, err
	}
	d.m.Globals = make([]*ir.Var, ng)
	for i := range d.m.Globals {
		gi, err := d.idx(nv, "global")
		if err != nil {
			return nil, err
		}
		if d.vars[gi].Kind != ir.KGlobal {
			return nil, fmt.Errorf("remote: global list names %s var %s", d.vars[gi].Kind, d.vars[gi].Name)
		}
		d.m.Globals[i] = d.vars[gi]
	}

	mi, err := d.idx(nfn, "main func")
	if err != nil {
		return nil, err
	}
	d.m.Main = d.funs[mi]

	// Function bodies.
	for _, f := range d.funs {
		d.curFunc = f
		np, err := d.count(nv, "param")
		if err != nil {
			return nil, err
		}
		f.Params = make([]*ir.Var, np)
		for i := range f.Params {
			pi, err := d.idx(nv, "param")
			if err != nil {
				return nil, err
			}
			p := d.vars[pi]
			if p.Kind != ir.KParam || p.Func != f {
				return nil, fmt.Errorf("remote: func %s claims foreign param %s", f.Name, p.Name)
			}
			f.Params[i] = p
		}
		nl, err := d.count(nv, "local")
		if err != nil {
			return nil, err
		}
		f.Locals = make([]*ir.Var, nl)
		for i := range f.Locals {
			li, err := d.idx(nv, "local")
			if err != nil {
				return nil, err
			}
			l := d.vars[li]
			if l.Kind != ir.KLocal || l.Func != f {
				return nil, fmt.Errorf("remote: func %s claims foreign local %s", f.Name, l.Name)
			}
			f.Locals[i] = l
		}
		if f.Body, err = d.decodeBlock(0); err != nil {
			return nil, fmt.Errorf("%w (in func %s)", err, f.Name)
		}
	}

	if len(d.m.Main.Params) != 0 {
		return nil, fmt.Errorf("remote: main function takes parameters")
	}
	// Every loop and branch region must have been claimed by exactly one
	// statement; decodeStmt enforces single claims, this catches orphans.
	for i, r := range d.regs {
		if r.Kind != ir.RFunc && r.Stmt == nil {
			return nil, fmt.Errorf("remote: %s region %d has no defining statement", r.Kind, i)
		}
	}
	return d.m, nil
}

func (d *decoder) decodeBlock(depth int) (*ir.BlockStmt, error) {
	if depth > d.lim.MaxDepth {
		return nil, fmt.Errorf("remote: statement nesting exceeds depth %d", d.lim.MaxDepth)
	}
	if err := d.node(); err != nil {
		return nil, err
	}
	loc, err := d.loc()
	if err != nil {
		return nil, err
	}
	b := &ir.BlockStmt{Loc: loc}
	nd, err := d.count(len(d.vars), "block decl")
	if err != nil {
		return nil, err
	}
	b.Decls = make([]*ir.Var, nd)
	for i := range b.Decls {
		di, err := d.idx(len(d.vars), "block decl")
		if err != nil {
			return nil, err
		}
		v := d.vars[di]
		if v.Kind != ir.KLocal || v.Func != d.curFunc {
			return nil, fmt.Errorf("remote: block declares foreign var %s", v.Name)
		}
		b.Decls[i] = v
	}
	ns, err := d.count(d.nodes+1, "block statement")
	if err != nil {
		return nil, err
	}
	b.List = make([]ir.Stmt, ns)
	for i := range b.List {
		if b.List[i], err = d.decodeStmt(depth + 1); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// claimRegion resolves a region index for a loop or branch statement,
// enforcing kind, ownership, and single use.
func (d *decoder) claimRegion(kind ir.RegionKind, s ir.Stmt) (*ir.Region, error) {
	ri, err := d.idx(len(d.regs), "statement region")
	if err != nil {
		return nil, err
	}
	r := d.regs[ri]
	if r.Kind != kind {
		return nil, fmt.Errorf("remote: statement claims %s region %d as %s", r.Kind, ri, kind)
	}
	if r.Stmt != nil {
		return nil, fmt.Errorf("remote: region %d claimed by two statements", ri)
	}
	if r.Func != d.curFunc {
		return nil, fmt.Errorf("remote: statement claims region %d of another function", ri)
	}
	r.Stmt = s
	return r, nil
}

func (d *decoder) decodeStmt(depth int) (ir.Stmt, error) {
	if depth > d.lim.MaxDepth {
		return nil, fmt.Errorf("remote: statement nesting exceeds depth %d", d.lim.MaxDepth)
	}
	if err := d.node(); err != nil {
		return nil, err
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	loc, err := d.loc()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tsAssign:
		dst, err := d.decodeRef(depth)
		if err != nil {
			return nil, err
		}
		src, err := d.decodeExpr(depth)
		if err != nil {
			return nil, err
		}
		return &ir.Assign{Loc: loc, Dst: dst, Src: src}, nil
	case tsIf:
		n := &ir.If{Loc: loc}
		if n.Region, err = d.claimRegion(ir.RBranch, n); err != nil {
			return nil, err
		}
		if n.Cond, err = d.decodeExpr(depth); err != nil {
			return nil, err
		}
		if n.Then, err = d.decodeBlock(depth); err != nil {
			return nil, err
		}
		hasElse, err := d.bool()
		if err != nil {
			return nil, err
		}
		if hasElse {
			if n.Else, err = d.decodeBlock(depth); err != nil {
				return nil, err
			}
		}
		return n, nil
	case tsFor:
		n := &ir.For{Loc: loc}
		if n.EndLoc, err = d.loc(); err != nil {
			return nil, err
		}
		if n.Region, err = d.claimRegion(ir.RLoop, n); err != nil {
			return nil, err
		}
		ii, err := d.idx(len(d.vars), "induction var")
		if err != nil {
			return nil, err
		}
		n.IndVar = d.vars[ii]
		if n.IndVar.Func != d.curFunc {
			return nil, fmt.Errorf("remote: loop claims foreign induction var %s", n.IndVar.Name)
		}
		if n.From, err = d.decodeExpr(depth); err != nil {
			return nil, err
		}
		if n.To, err = d.decodeExpr(depth); err != nil {
			return nil, err
		}
		if n.Step, err = d.decodeExpr(depth); err != nil {
			return nil, err
		}
		if n.Body, err = d.decodeBlock(depth); err != nil {
			return nil, err
		}
		return n, nil
	case tsWhile:
		n := &ir.While{Loc: loc}
		if n.EndLoc, err = d.loc(); err != nil {
			return nil, err
		}
		if n.Region, err = d.claimRegion(ir.RLoop, n); err != nil {
			return nil, err
		}
		if n.Cond, err = d.decodeExpr(depth); err != nil {
			return nil, err
		}
		if n.Body, err = d.decodeBlock(depth); err != nil {
			return nil, err
		}
		return n, nil
	case tsCall:
		call, err := d.decodeCall(depth)
		if err != nil {
			return nil, err
		}
		return &ir.CallStmt{Loc: loc, Call: call}, nil
	case tsReturn:
		hasVal, err := d.bool()
		if err != nil {
			return nil, err
		}
		n := &ir.Return{Loc: loc}
		if hasVal {
			if n.Val, err = d.decodeExpr(depth); err != nil {
				return nil, err
			}
		}
		return n, nil
	case tsSpawn:
		call, err := d.decodeCall(depth)
		if err != nil {
			return nil, err
		}
		return &ir.Spawn{Loc: loc, Call: call}, nil
	case tsSync:
		return &ir.Sync{Loc: loc}, nil
	case tsLock:
		id, err := d.uint()
		if err != nil {
			return nil, err
		}
		if id > 1<<16 {
			return nil, fmt.Errorf("remote: mutex id %d out of range", id)
		}
		n := &ir.LockRegion{Loc: loc, MutexID: int(id)}
		if n.Body, err = d.decodeBlock(depth); err != nil {
			return nil, err
		}
		return n, nil
	case tsFree:
		vi, err := d.idx(len(d.vars), "freed var")
		if err != nil {
			return nil, err
		}
		return &ir.Free{Loc: loc, Var: d.vars[vi]}, nil
	default:
		return nil, fmt.Errorf("remote: unknown statement tag %d", tag)
	}
}

func (d *decoder) decodeRef(depth int) (*ir.Ref, error) {
	loc, err := d.loc()
	if err != nil {
		return nil, err
	}
	vi, err := d.idx(len(d.vars), "ref var")
	if err != nil {
		return nil, err
	}
	r := &ir.Ref{Loc: loc, Var: d.vars[vi]}
	hasIdx, err := d.bool()
	if err != nil {
		return nil, err
	}
	if hasIdx {
		if r.Index, err = d.decodeExpr(depth + 1); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (d *decoder) decodeCall(depth int) (*ir.CallExpr, error) {
	loc, err := d.loc()
	if err != nil {
		return nil, err
	}
	fi, err := d.idx(len(d.funs), "callee")
	if err != nil {
		return nil, err
	}
	c := &ir.CallExpr{Loc: loc, Callee: d.funs[fi]}
	na, err := d.count(d.nodes+1, "call args")
	if err != nil {
		return nil, err
	}
	c.Args = make([]ir.Expr, na)
	for i := range c.Args {
		if c.Args[i], err = d.decodeExpr(depth + 1); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (d *decoder) decodeExpr(depth int) (ir.Expr, error) {
	if depth > d.lim.MaxDepth {
		return nil, fmt.Errorf("remote: expression nesting exceeds depth %d", d.lim.MaxDepth)
	}
	if err := d.node(); err != nil {
		return nil, err
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case teConst:
		loc, err := d.loc()
		if err != nil {
			return nil, err
		}
		typ, err := d.byte()
		if err != nil {
			return nil, err
		}
		if typ > byte(ir.F64) {
			return nil, fmt.Errorf("remote: const has bad type %d", typ)
		}
		val, err := d.f64()
		if err != nil {
			return nil, err
		}
		return &ir.Const{Loc: loc, Typ: ir.Type(typ), Val: val}, nil
	case teRef:
		return d.decodeRef(depth)
	case teBin:
		loc, err := d.loc()
		if err != nil {
			return nil, err
		}
		op, err := d.byte()
		if err != nil {
			return nil, err
		}
		if op > byte(ir.OpMax) {
			return nil, fmt.Errorf("remote: bad binary op %d", op)
		}
		l, err := d.decodeExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		r, err := d.decodeExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		return &ir.Bin{Loc: loc, Op: ir.BinOp(op), L: l, R: r}, nil
	case teUn:
		loc, err := d.loc()
		if err != nil {
			return nil, err
		}
		op, err := d.byte()
		if err != nil {
			return nil, err
		}
		if op > byte(ir.OpFloor) {
			return nil, fmt.Errorf("remote: bad unary op %d", op)
		}
		x, err := d.decodeExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		return &ir.Un{Loc: loc, Op: ir.UnOp(op), X: x}, nil
	case teRand:
		loc, err := d.loc()
		if err != nil {
			return nil, err
		}
		return &ir.Rand{Loc: loc}, nil
	case teCall:
		return d.decodeCall(depth)
	default:
		return nil, fmt.Errorf("remote: unknown expression tag %d", tag)
	}
}
