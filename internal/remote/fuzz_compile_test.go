package remote_test

import (
	"fmt"
	"strings"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/ir"
	"discopop/internal/remote"
	"discopop/internal/workloads"
)

// engineOutcome captures everything one engine run exposes to a caller:
// the return value and counters on success, or the panic message.
type engineOutcome struct {
	panicked bool
	msg      string
	ret      int64
	instrs   int64
	loads    int64
	stores   int64
}

func runBudgeted(m *ir.Module, opts ...interp.Option) (out engineOutcome) {
	opts = append(opts, interp.WithMaxInstrs(1<<16))
	it := interp.New(m, nil, opts...)
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.msg = fmt.Sprint(r)
		}
		out.instrs, out.loads, out.stores = it.Instrs, it.Loads, it.Stores
	}()
	out.ret = it.Run()
	return
}

// FuzzCompile drives the bytecode compiler and VM with every module the
// wire decoder accepts, and holds the VM to the tree walker's observable
// behavior: same return value, same instruction/load/store counters, and
// — when an input misbehaves — a panic in one engine iff the other
// panics too, with identical messages for the interpreter's own
// diagnostics. Runs are capped by the instruction budget so adversarial
// infinite loops terminate. The seed corpus mirrors FuzzDecode's
// (testdata/fuzz/FuzzCompile): encoded bundled workloads covering every
// statement tag, including multi-threaded ones.
func FuzzCompile(f *testing.F) {
	for _, name := range []string{"histogram", "fib", "md5-mt"} {
		prog, err := workloads.Build(name, 1)
		if err != nil {
			f.Fatal(err)
		}
		enc, err := remote.Encode(prog.M)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode twice: each engine needs its own module instance, since a
		// run panicking mid-flight may leave parked simulated threads
		// sharing the module's numbered state.
		mw, err := remote.Decode(data)
		if err != nil {
			return // rejected bytes: FuzzDecode's territory
		}
		mv, err := remote.Decode(data)
		if err != nil {
			t.Fatalf("second decode of accepted bytes failed: %v", err)
		}

		walk := runBudgeted(mw, interp.WithTreeWalk())
		vm := runBudgeted(mv)

		if walk.panicked != vm.panicked {
			t.Fatalf("panic divergence: walker panicked=%v (%q), vm panicked=%v (%q)",
				walk.panicked, walk.msg, vm.panicked, vm.msg)
		}
		if walk.panicked {
			// The interpreter's own diagnostics must match verbatim. Go
			// runtime panics (from pathological-but-accepted modules) are
			// compared only on the both-panic bit above: their texts encode
			// engine-internal indices.
			wi := strings.HasPrefix(walk.msg, "interp: ")
			vi := strings.HasPrefix(vm.msg, "interp: ")
			if wi != vi || (wi && walk.msg != vm.msg) {
				t.Fatalf("panic message divergence:\n  walker: %s\n  vm:     %s", walk.msg, vm.msg)
			}
			return
		}
		if walk.ret != vm.ret || walk.instrs != vm.instrs ||
			walk.loads != vm.loads || walk.stores != vm.stores {
			t.Fatalf("result divergence: walker ret=%d instrs=%d loads=%d stores=%d, vm ret=%d instrs=%d loads=%d stores=%d",
				walk.ret, walk.instrs, walk.loads, walk.stores,
				vm.ret, vm.instrs, vm.loads, vm.stores)
		}
	})
}
