package remote_test

import (
	"bytes"
	"testing"

	"discopop/internal/remote"
	"discopop/internal/workloads"
)

// FuzzDecode asserts the decoder's two contracts on arbitrary bytes:
// it never panics, and anything it accepts re-encodes canonically —
// Encode(Decode(x)) is a fixed point of the codec (Decode may accept
// non-minimal varint spellings, so x itself need not be canonical).
//
// The committed seed corpus (testdata/fuzz/FuzzDecode) holds encoded
// bundled workloads covering every statement and expression tag; f.Add
// seeds a few degenerate inputs on top.
func FuzzDecode(f *testing.F) {
	for _, name := range []string{"histogram", "fib", "md5-mt"} {
		prog, err := workloads.Build(name, 1)
		if err != nil {
			f.Fatal(err)
		}
		enc, err := remote.Encode(prog.M)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte("DPIR"))
	f.Add([]byte("DPIR\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := remote.Decode(data)
		if err != nil {
			return // rejected: that is a valid outcome for arbitrary bytes
		}
		enc, err := remote.Encode(m)
		if err != nil {
			t.Fatalf("decoded module does not re-encode: %v", err)
		}
		m2, err := remote.Decode(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		enc2, err := remote.Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("codec is not a fixed point: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}
