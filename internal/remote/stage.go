package remote

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/pipeline"
)

// Stage is a pipeline.Stage that ships the job's module to a peer
// dp-serve worker instead of analyzing it locally. The module is encoded
// with the versioned codec, submitted over POST /v1/analyze, and the
// worker's report summary is mapped back into the local Context:
// suggestion locations resolve against the local module (the codec is
// deterministic, so worker and coordinator agree on every <file:line>),
// making Report.SuggestionFor and the ranked listing work as if the
// analysis had run in-process.
//
// When no peer can take the job — every peer down, all attempts
// exhausted, or the fleet rejecting a payload its wire limits will not
// admit — the stage falls back to running the local pipeline, so a
// coordinator degrades to a plain single-node service rather than
// failing the batch. Only an analysis that actually ran on a peer and
// failed is surfaced as an error (it would fail identically anywhere).
type Stage struct {
	// Client routes work to the peer fleet.
	Client *Client
	// Local is the fallback stage sequence (nil = the default five-stage
	// pipeline).
	Local *pipeline.Pipeline

	fallbacks atomic.Int64

	// mu guards the lazily-created base context every remote submission
	// runs under; Close cancels it.
	mu     sync.Mutex
	ctx    context.Context
	cancel context.CancelFunc
}

// Name implements pipeline.Stage.
func (s *Stage) Name() string { return "remote" }

// Fallbacks reports how many jobs ran through the local fallback because
// no peer was available.
func (s *Stage) Fallbacks() int64 { return s.fallbacks.Load() }

// base returns the stage's cancelable base context, creating it on first
// use. Remote submissions (including their long-polls) run under it, so a
// coordinator shutting down is not held behind peer jobs for up to the
// client's JobTimeout.
func (s *Stage) base() context.Context {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		s.ctx, s.cancel = context.WithCancel(context.Background())
	}
	return s.ctx
}

// Close aborts every in-flight remote submission and makes future Run
// calls fail with context.Canceled instead of contacting peers or
// starting local fallback work. It is idempotent.
func (s *Stage) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		s.ctx, s.cancel = context.WithCancel(context.Background())
	}
	s.cancel()
}

// Run implements pipeline.Stage.
func (s *Stage) Run(ctx *pipeline.Context) error {
	if !s.Client.Available() {
		// Every peer is in cooldown: skip the (potentially megabytes of)
		// module encoding whose bytes AnalyzeBytes would only throw away.
		s.fallbacks.Add(1)
		return s.runLocal(ctx)
	}
	enc, err := Encode(ctx.Mod)
	if err != nil {
		return fmt.Errorf("encode module: %w", err)
	}
	base := s.base()
	rep, err := s.Client.AnalyzeBytes(base,
		enc, Spec{Threads: ctx.Opt.Threads, BottomUp: ctx.Opt.BottomUpCUs,
			TraceID: ctx.Recorder().ID()})
	if err != nil {
		if base.Err() != nil {
			// The stage was closed (coordinator shutdown): don't start a
			// local analysis nobody is waiting for.
			return base.Err()
		}
		var rerr *RemoteError
		if errors.As(err, &rerr) && !rerr.Rejected {
			// The analysis ran on the peer and failed; it would fail the
			// same way locally, so surface the error.
			return err
		}
		// Transport-level failure everywhere, or the peer rejected the
		// submission (its wire limits can be stricter than what local
		// analysis handles): degrade to local analysis.
		s.fallbacks.Add(1)
		return s.runLocal(ctx)
	}
	ctx.Instrs = rep.Instrs
	ctx.DepCount = rep.Deps
	ctx.CUCount = rep.CUs
	ctx.CacheHit = rep.CacheHit
	ctx.RemotePeer = rep.Peer
	rec := ctx.Recorder()
	rec.Annotate("peer", rep.Peer)
	if len(rep.Spans) > 0 {
		// Splice the worker's spans under this hop's span, shifted by the
		// estimated per-hop clock offset so the coordinator's trace shows
		// the worker's queue/profile/discover time inline.
		skew := rec.Graft(rep.Peer, rep.Spans)
		rec.Annotate("clock_skew_ns", strconv.FormatInt(int64(skew), 10))
	}
	ctx.Ranked, err = mapSuggestions(rep.Suggestions, ctx.Mod)
	return err
}

func (s *Stage) runLocal(ctx *pipeline.Context) error {
	p := s.Local
	if p == nil {
		p = pipeline.New()
	}
	return p.Run(ctx)
}

// mapSuggestions rebuilds ranked discovery suggestions from their wire
// form, resolving each location against the local module so downstream
// consumers (Report.SuggestionFor, region-keyed tooling) see real region
// pointers.
func mapSuggestions(ws []WireSuggestion, mod *ir.Module) ([]*discovery.Suggestion, error) {
	out := make([]*discovery.Suggestion, 0, len(ws))
	for _, w := range ws {
		kind, ok := discovery.ParseKind(w.Kind)
		if !ok {
			return nil, fmt.Errorf("remote: unknown suggestion kind %q", w.Kind)
		}
		loc, err := parseLoc(w.Loc)
		if err != nil {
			return nil, err
		}
		sg := &discovery.Suggestion{
			Kind:         kind,
			Loc:          loc,
			Coverage:     w.Coverage,
			LocalSpeedup: w.Speedup,
			Imbalance:    w.Imbalance,
			Score:        w.Score,
			Notes:        w.Notes,
		}
		// Loop suggestions anchor at the loop's start line, so the
		// innermost region containing the location is the loop itself.
		if r := mod.RegionAt(loc); r != nil {
			if r.Kind == ir.RLoop && r.Start == loc {
				sg.Region = r
			}
			sg.Func = r.Func
		}
		out = append(out, sg)
	}
	return out, nil
}

// parseLoc inverts ir.Loc.String ("file:line").
func parseLoc(s string) (ir.Loc, error) {
	f, l, ok := strings.Cut(s, ":")
	if !ok {
		return ir.Loc{}, fmt.Errorf("remote: malformed location %q", s)
	}
	file, err := strconv.ParseInt(f, 10, 32)
	if err != nil {
		return ir.Loc{}, fmt.Errorf("remote: malformed location %q", s)
	}
	line, err := strconv.ParseInt(l, 10, 32)
	if err != nil {
		return ir.Loc{}, fmt.Errorf("remote: malformed location %q", s)
	}
	return ir.Loc{File: int32(file), Line: int32(line)}, nil
}
