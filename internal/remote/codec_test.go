package remote

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// TestCodecRoundTripRegistry encodes every bundled workload, decodes it,
// and checks (a) the decoded module prints identically to the original
// (deep structural equality) and (b) re-encoding the decoded module
// reproduces the exact bytes (the codec is a fixed point on its own
// output).
func TestCodecRoundTripRegistry(t *testing.T) {
	for _, info := range workloads.List("") {
		prog, err := workloads.Build(info.Name, 1)
		if err != nil {
			t.Fatalf("build %s: %v", info.Name, err)
		}
		enc, err := Encode(prog.M)
		if err != nil {
			t.Fatalf("encode %s: %v", info.Name, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", info.Name, err)
		}
		if got, want := ir.Print(dec), ir.Print(prog.M); got != want {
			t.Fatalf("%s: decoded module prints differently:\n got: %.400s\nwant: %.400s",
				info.Name, got, want)
		}
		enc2, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-encode %s: %v", info.Name, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: re-encoded bytes differ (len %d vs %d)", info.Name, len(enc), len(enc2))
		}
		if len(enc) > DefaultLimits().MaxBytes {
			t.Fatalf("%s: encoded size %d exceeds default byte limit", info.Name, len(enc))
		}
	}
}

// TestCodecPreservesStructure spot-checks the cross-reference wiring the
// printer cannot see: region tree shape, statement back-pointers, and
// function/variable ownership.
func TestCodecPreservesStructure(t *testing.T) {
	prog, err := workloads.Build("CG", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(prog.M)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Regions) != len(prog.M.Regions) {
		t.Fatalf("region count %d, want %d", len(dec.Regions), len(prog.M.Regions))
	}
	for i, r := range dec.Regions {
		o := prog.M.Regions[i]
		if r.Kind != o.Kind || r.Start != o.Start || r.End != o.End {
			t.Fatalf("region %d mismatch: %v vs %v", i, r, o)
		}
		if (r.Parent == nil) != (o.Parent == nil) {
			t.Fatalf("region %d parent nil-ness differs", i)
		}
		if r.Parent != nil && r.Parent.ID != o.Parent.ID {
			t.Fatalf("region %d parent %d, want %d", i, r.Parent.ID, o.Parent.ID)
		}
		if len(r.Children) != len(o.Children) {
			t.Fatalf("region %d has %d children, want %d", i, len(r.Children), len(o.Children))
		}
		if r.Kind != ir.RFunc && r.Stmt == nil {
			t.Fatalf("region %d lost its statement", i)
		}
		if r.Func == nil || r.Func.Name != o.Func.Name {
			t.Fatalf("region %d func mismatch", i)
		}
	}
	for i, v := range dec.Vars {
		o := prog.M.Vars[i]
		if v.ID != i || v.Name != o.Name || v.Kind != o.Kind || v.Elems != o.Elems ||
			v.ByValue != o.ByValue || v.Heap != o.Heap || v.Decl != o.Decl {
			t.Fatalf("var %d (%s) mismatch", i, o.Name)
		}
		if (v.DeclRegion == nil) != (o.DeclRegion == nil) {
			t.Fatalf("var %s decl-region nil-ness differs", o.Name)
		}
		if v.DeclRegion != nil && v.DeclRegion.ID != o.DeclRegion.ID {
			t.Fatalf("var %s decl region %d, want %d", o.Name, v.DeclRegion.ID, o.DeclRegion.ID)
		}
	}
	if dec.Main == nil || dec.Main.Name != prog.M.Main.Name {
		t.Fatal("main function not preserved")
	}
	for i, f := range dec.Funcs {
		o := prog.M.Funcs[i]
		if len(f.Locals) != len(o.Locals) || len(f.Params) != len(o.Params) {
			t.Fatalf("func %s param/local counts differ", o.Name)
		}
	}
}

// TestEncodeDeterministic encodes the same workload twice from scratch:
// two structurally identical builds must yield identical bytes.
func TestEncodeDeterministic(t *testing.T) {
	a, err := workloads.Build("kmeans", 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.Build("kmeans", 2)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := Encode(a.M)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Encode(b.M)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("two builds of the same workload encode differently")
	}
}

// TestDecodeRejects exercises the strict-validation paths on malformed
// and hostile inputs.
func TestDecodeRejects(t *testing.T) {
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := Encode(prog.M)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"bad magic", []byte("NOPE1234"), "bad magic"},
		{"bad version", append([]byte(magic), 0xff, 0x01), "unsupported wire version"},
		{"truncated", valid[:len(valid)/2], ""},
		{"trailing garbage", append(append([]byte{}, valid...), 1, 2, 3), "trailing bytes"},
	}
	for _, tc := range cases {
		m, err := Decode(tc.data)
		if err == nil {
			t.Fatalf("%s: decode succeeded (module %v)", tc.name, m.Name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Flipping any single byte must never panic; it may still decode (a
	// flipped bit in a float constant is a valid different module).
	for i := range valid {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x41
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte %d flip: decode panicked: %v", i, r)
				}
			}()
			Decode(mut)
		}()
	}
}

// TestDecodeLimits checks that the footprint and size caps reject
// oversized modules before any large allocation happens.
func TestDecodeLimits(t *testing.T) {
	b := ir.NewBuilder("big")
	b.GlobalArray("huge", ir.F64, 1<<20)
	fb := b.Func("main")
	fb.Return(nil)
	m := b.Build(fb.Done())
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	lim := DefaultLimits()
	lim.MaxTotalElems = 1 << 10
	if _, err := DecodeLimits(enc, lim); err == nil {
		t.Fatal("footprint cap did not reject a 1M-element module")
	}
	lim = DefaultLimits()
	lim.MaxBytes = 16
	if _, err := DecodeLimits(enc, lim); err == nil {
		t.Fatal("byte cap did not reject")
	}
	if _, err := Decode(enc); err != nil {
		t.Fatalf("default limits rejected a legitimate module: %v", err)
	}
}

// TestDecodeElemsOverflow splices an element count >= 2^63 into an
// otherwise valid encoding. Cast to int64 such a value is negative, so a
// signed comparison would wave it past both footprint caps and let the
// interpreter size its address space from an attacker-chosen bound; the
// decoder must compare in uint64 and reject.
func TestDecodeElemsOverflow(t *testing.T) {
	// A sentinel array length whose varint encoding we can find (exactly
	// once, by construction of the workload) in the encoded stream.
	const sentinel = 7654321
	b := ir.NewBuilder("overflow")
	b.GlobalArray("huge", ir.F64, sentinel)
	fb := b.Func("main")
	fb.Return(nil)
	enc, err := Encode(b.Build(fb.Done()))
	if err != nil {
		t.Fatal(err)
	}
	var buf [binary.MaxVarintLen64]byte
	pat := buf[:binary.PutUvarint(buf[:], sentinel)]
	if n := bytes.Count(enc, pat); n != 1 {
		t.Fatalf("sentinel varint appears %d times in the encoding, want 1", n)
	}
	at := bytes.Index(enc, pat)
	for _, evil := range []uint64{1 << 63, math.MaxUint64} {
		ev := buf[:binary.PutUvarint(buf[:], evil)]
		mut := append(append(append([]byte{}, enc[:at]...), ev...), enc[at+len(pat):]...)
		m, err := Decode(mut)
		if err == nil {
			t.Fatalf("elems %d: decode accepted module %v", evil, m.Name)
		}
		if !strings.Contains(err.Error(), "elems") {
			t.Fatalf("elems %d: error %q is not the footprint rejection", evil, err)
		}
	}
}
