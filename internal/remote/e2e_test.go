package remote_test

// End-to-end multi-node harness: real dp-serve workers behind httptest
// listeners, a coordinator configured with their URLs, and the full
// bundled workload registry flowing through the remote stage. The
// coordinator's reports must be byte-identical to a local-only node's,
// and the workers' /metrics must prove the work actually landed on them.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"discopop/internal/metrics"
	"discopop/internal/obs"
	"discopop/internal/remote"
	"discopop/internal/server"
	"discopop/internal/workloads"
)

type node struct {
	srv *server.Server
	ts  *httptest.Server
}

func bootNode(t *testing.T, cfg server.Config) *node {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &node{srv: s, ts: ts}
}

// analyzeOn submits one workload and returns the terminal job view as a
// decoded JSON object.
func analyzeOn(t *testing.T, base, workload string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "application/json",
		jsonBody(t, map[string]any{"workload": workload}))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil || acc.ID == "" {
		t.Fatalf("submit %s: %v (id %q)", workload, err, acc.ID)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + acc.ID + "?wait=10s")
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if state := view["state"]; state != "queued" {
			if state != "done" {
				t.Fatalf("%s: job %s state %v: %v", workload, acc.ID, state, view["error"])
			}
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: job %s still queued after 120s", workload, acc.ID)
		}
	}
}

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// canonicalReport strips the fields that legitimately differ between a
// local and a proxied run — timings, cache state, serving peer — and
// re-marshals the rest with sorted keys, so equality is byte equality of
// the analysis content: instruction count, dependences, CUs, and the
// full ranked suggestion list.
func canonicalReport(t *testing.T, view map[string]any) []byte {
	t.Helper()
	result, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("job view has no result: %v", view)
	}
	delete(result, "elapsed_ms")
	delete(result, "queue_ms")
	delete(result, "cache_hit")
	delete(result, "peer")
	delete(result, "trace_id")
	delete(result, "spans")
	b, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", base, err)
	}
	v, _ := scrape.Value(name)
	return v
}

// TestE2EFleetMatchesLocal is the multi-node acceptance test: a
// coordinator with two peer workers must produce, for every workload in
// the registry, a report byte-identical to a local-only node's — and
// the workers' own job counters must show the analyses ran there.
func TestE2EFleetMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node e2e sweep in -short mode")
	}
	w1 := bootNode(t, server.Config{Workers: 2})
	w2 := bootNode(t, server.Config{Workers: 2})
	coord := bootNode(t, server.Config{
		Workers: 4,
		Peers:   []string{w1.ts.URL, w2.ts.URL},
	})
	local := bootNode(t, server.Config{Workers: 4})

	registry := workloads.List("")
	if len(registry) == 0 {
		t.Fatal("empty workload registry")
	}
	for _, info := range registry {
		fleetView := analyzeOn(t, coord.ts.URL, info.Name)
		localView := analyzeOn(t, local.ts.URL, info.Name)
		// Every fleet job must record the worker that served it (read
		// before canonicalization strips the field).
		if result, ok := fleetView["result"].(map[string]any); ok {
			if p, _ := result["peer"].(string); p != w1.ts.URL && p != w2.ts.URL {
				t.Errorf("%s: fleet job served by %q, not a configured worker", info.Name, p)
			}
		}
		fleet := canonicalReport(t, fleetView)
		want := canonicalReport(t, localView)
		if string(fleet) != string(want) {
			t.Errorf("%s: fleet report differs from local:\nfleet: %s\nlocal: %s",
				info.Name, fleet, want)
		}
	}

	// The work must actually have landed on the workers: their own job
	// counters account for the whole sweep, and both peers took a share.
	n1 := scrapeCounter(t, w1.ts.URL, "dp_jobs_completed_total")
	n2 := scrapeCounter(t, w2.ts.URL, "dp_jobs_completed_total")
	if int(n1+n2) != len(registry) {
		t.Errorf("workers completed %v+%v jobs, want %d", n1, n2, len(registry))
	}
	if n1 == 0 || n2 == 0 {
		t.Errorf("fan-out did not reach both workers: %v vs %v", n1, n2)
	}
	if fb := scrapeCounter(t, coord.ts.URL, "dp_remote_fallbacks_total"); fb != 0 {
		t.Errorf("coordinator fell back locally %v times with a healthy fleet", fb)
	}
	// The coordinator proxied everything: per-peer request counters sum
	// to the registry size.
	resp, err := http.Get(coord.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var peerJobs float64
	for _, p := range scrape.Points {
		if p.Name == "dp_peer_jobs_total" {
			peerJobs += p.Value
		}
	}
	if int(peerJobs) != len(registry) {
		t.Errorf("coordinator counted %v peer jobs, want %d", peerJobs, len(registry))
	}
}

// TestE2EThreeNodeInlineAndModule drives a 3-worker fleet with the other
// two body kinds — inline pattern modules and raw serialized modules —
// making sure proxying is not workload-registry-specific.
func TestE2EThreeNodeInlineAndModule(t *testing.T) {
	workers := []*node{
		bootNode(t, server.Config{Workers: 1}),
		bootNode(t, server.Config{Workers: 1}),
		bootNode(t, server.Config{Workers: 1}),
	}
	peers := make([]string, len(workers))
	for i, w := range workers {
		peers[i] = w.ts.URL
	}
	coord := bootNode(t, server.Config{Workers: 3, Peers: peers})

	// Inline kernels proxied through the fleet still classify correctly.
	resp, err := http.Post(coord.ts.URL+"/v1/analyze", "application/json",
		jsonBody(t, map[string]any{
			"inline": map[string]any{
				"name":    "probe",
				"kernels": []map[string]any{{"pattern": "doall", "n": 64}},
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil || acc.ID == "" {
		t.Fatalf("inline submit: %v", err)
	}
	view := waitView(t, coord.ts.URL, acc.ID)
	if view["state"] != "done" {
		t.Fatalf("inline job: %v", view)
	}
	result := view["result"].(map[string]any)
	suggestions, _ := result["suggestions"].([]any)
	if len(suggestions) == 0 {
		t.Fatal("proxied inline module produced no suggestions")
	}
	first := suggestions[0].(map[string]any)
	if first["kind"] != "DOALL" {
		t.Errorf("doall kernel classified as %v", first["kind"])
	}

	// Work spread: with three single-worker peers and several jobs, at
	// least two peers must have seen traffic.
	for i := 0; i < 5; i++ {
		analyzeOn(t, coord.ts.URL, "matmul")
	}
	busy := 0
	for _, w := range workers {
		if scrapeCounter(t, w.ts.URL, "dp_jobs_completed_total") > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of 3 workers saw traffic", busy)
	}
}

// TestE2EAuthedFleet boots workers that require bearer auth and checks
// the coordinator's peer token flows through the whole submit-and-poll
// path, while a coordinator with a bad token is authoritatively rejected
// and falls back to local analysis instead of benching the workers.
func TestE2EAuthedFleet(t *testing.T) {
	tokens := map[string]string{"fleet-token": "coordinator"}
	w1 := bootNode(t, server.Config{Workers: 1, Tokens: tokens})
	w2 := bootNode(t, server.Config{Workers: 1, Tokens: tokens})
	peers := []string{w1.ts.URL, w2.ts.URL}

	coord := bootNode(t, server.Config{
		Workers: 2,
		Peers:   peers,
		Remote:  remote.ClientOptions{Token: "fleet-token"},
	})
	view := analyzeOn(t, coord.ts.URL, "histogram")
	result := view["result"].(map[string]any)
	if p, _ := result["peer"].(string); p != w1.ts.URL && p != w2.ts.URL {
		t.Fatalf("authed fleet job served by %q, not a worker", p)
	}
	if fb := scrapeCounter(t, coord.ts.URL, "dp_remote_fallbacks_total"); fb != 0 {
		t.Errorf("authed coordinator fell back %v times", fb)
	}

	// The wrong token is an authoritative 401: the job must still finish
	// (local fallback), the workers must count the auth rejections, and
	// they must not end up marked unhealthy.
	badCoord := bootNode(t, server.Config{
		Workers: 2,
		Peers:   peers,
		Remote:  remote.ClientOptions{Token: "not-the-token"},
	})
	if view := analyzeOn(t, badCoord.ts.URL, "histogram"); view["state"] != "done" {
		t.Fatalf("mis-authed coordinator job: %v", view)
	}
	if fb := scrapeCounter(t, badCoord.ts.URL, "dp_remote_fallbacks_total"); fb != 1 {
		t.Errorf("mis-authed coordinator fallbacks = %v, want 1", fb)
	}
	rejects := 0.0
	for _, w := range []*node{w1, w2} {
		resp, err := http.Get(w.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		sc, err := metrics.Parse(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := sc.Value("dp_jobs_rejected_total", metrics.L("reason", "auth")); ok {
			rejects += v
		}
	}
	if rejects == 0 {
		t.Error("workers counted no auth rejections")
	}
}

func waitView(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view["state"] != "queued" {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still queued", id)
		}
	}
}

// TestE2EFleetTrace is the cross-node tracing acceptance test: a job
// proxied through a coordinator must come back with the worker's spans —
// its queue wait and at least two pipeline stages — grafted under the
// coordinator's remote span, and the coordinator's trace endpoint must
// render the combined tree as loadable Chrome trace JSON with the worker
// as its own process.
func TestE2EFleetTrace(t *testing.T) {
	worker := bootNode(t, server.Config{Workers: 1})
	coord := bootNode(t, server.Config{Workers: 1, Peers: []string{worker.ts.URL}})

	view := analyzeOn(t, coord.ts.URL, "histogram")
	result, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result in %v", view)
	}
	raw, err := json.Marshal(result["spans"])
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.Span
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatalf("result spans do not decode: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("coordinator job result carries no spans")
	}

	remoteIdx := -1
	for i, s := range spans {
		if s.Name == "remote" && s.Node == "" {
			remoteIdx = i
		}
	}
	if remoteIdx == -1 {
		t.Fatalf("no local remote span in %+v", spans)
	}
	if skew := spans[remoteIdx].Attrs["clock_skew_ns"]; skew == "" {
		t.Error("remote span has no clock_skew_ns attr")
	}
	if peer := spans[remoteIdx].Attrs["peer"]; peer != worker.ts.URL {
		t.Errorf("remote span peer = %q, want %q", peer, worker.ts.URL)
	}

	// Worker-side spans: stamped with the peer URL, rooted under the
	// remote span, covering the worker's queue wait and >= 2 stages.
	underRemote := func(i int) bool {
		for hops := 0; i >= 0 && hops <= len(spans); hops++ {
			if i == remoteIdx {
				return true
			}
			i = spans[i].Parent
		}
		return false
	}
	stages := map[string]bool{}
	sawQueue := false
	for i, s := range spans {
		if s.Node != worker.ts.URL {
			continue
		}
		if !underRemote(i) {
			t.Errorf("worker span %q not nested under the remote span", s.Name)
		}
		switch s.Name {
		case "queue":
			sawQueue = true
		case "job":
		default:
			stages[s.Name] = true
		}
	}
	if !sawQueue {
		t.Error("coordinator trace has no worker-side queue span")
	}
	if len(stages) < 2 {
		t.Errorf("coordinator trace has %d worker pipeline stages (%v), want >= 2", len(stages), stages)
	}

	// The coordinator's trace endpoint renders the combined tree with the
	// worker as a second process.
	id, _ := view["id"].(string)
	resp, err := http.Get(coord.ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("coordinator trace is not valid JSON: %v", err)
	}
	procs := map[string]int{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"]] = ev.Pid
		}
	}
	if procs["local"] == 0 || procs[worker.ts.URL] == 0 {
		t.Errorf("trace processes = %v, want local and %s", procs, worker.ts.URL)
	}
}
