package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discopop/internal/pipeline"
	"discopop/internal/remote"
	"discopop/internal/workloads"
)

// fakePeer is a minimal dp-serve stand-in whose behavior is switchable
// per test: it implements just enough of POST /v1/analyze and GET
// /v1/jobs/{id} for the client, with injectable failures.
type fakePeer struct {
	ts *httptest.Server

	// mode selects the failure to inject:
	//   ok             accept and complete normally
	//   unavailable    503 every submission
	//   hang           accept submissions but never answer polls
	//   garbage-accept 202 with a non-JSON body
	//   garbage-poll   accept, then non-JSON poll responses (mid-job)
	//   reject         400 every submission
	//   failjob        accept, then report the analysis as failed
	//   evict          accept, then 404 every poll (jobStore evicted it)
	//   ratelimit      429 + Retry-After every submission (never admits)
	//   ratelimit-once 429 + Retry-After while rateLeft > 0, then ok
	mode atomic.Value

	submits  atomic.Int64
	done     atomic.Int64
	nextID   atomic.Int64
	rateLeft atomic.Int64 // remaining 429s in ratelimit-once mode

	mu    sync.Mutex
	keys  []string // Idempotency-Key header per submission
	auths []string // Authorization header per request (submits and polls)
}

func (p *fakePeer) record(r *http.Request, submission bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if submission {
		p.keys = append(p.keys, r.Header.Get("Idempotency-Key"))
	}
	p.auths = append(p.auths, r.Header.Get("Authorization"))
}

func (p *fakePeer) seenKeys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.keys...)
}

func newFakePeer(mode string) *fakePeer {
	p := &fakePeer{}
	p.mode.Store(mode)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		p.submits.Add(1)
		p.record(r, true)
		switch p.mode.Load().(string) {
		case "unavailable":
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		case "reject":
			http.Error(w, `{"error":"bad module"}`, http.StatusBadRequest)
			return
		case "garbage-accept":
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, "]]]] this is not json")
			return
		case "ratelimit":
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"over quota"}`, http.StatusTooManyRequests)
			return
		case "ratelimit-once":
			if p.rateLeft.Add(-1) >= 0 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"rate limited"}`, http.StatusTooManyRequests)
				return
			}
		}
		id := fmt.Sprintf("j%06d", p.nextID.Add(1))
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		p.record(r, false)
		switch p.mode.Load().(string) {
		case "hang":
			// Longer than any client timeout used in these tests.
			time.Sleep(2 * time.Second)
			http.Error(w, "too late", http.StatusInternalServerError)
			return
		case "garbage-poll":
			fmt.Fprint(w, "<<<< mid-job garbage")
			return
		case "failjob":
			json.NewEncoder(w).Encode(map[string]any{
				"state": "failed", "error": "interpreter panic: out of range",
			})
			return
		case "evict":
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		p.done.Add(1)
		json.NewEncoder(w).Encode(map[string]any{
			"state": "done",
			"result": map[string]any{
				"instrs": 42, "deps": 7, "cus": 3,
				"suggestions": []map[string]any{{
					"rank": 1, "kind": "DOALL", "loc": "1:5",
					"coverage": 0.5, "speedup": 16.0, "score": 8.0,
					"notes": "canned",
				}},
			},
		})
	})
	p.ts = httptest.NewServer(mux)
	return p
}

// fastOpts are client options tuned so failure paths resolve in
// milliseconds instead of the production defaults.
func fastOpts() remote.ClientOptions {
	return remote.ClientOptions{
		PollWait:      50 * time.Millisecond,
		JobTimeout:    500 * time.Millisecond,
		FailThreshold: 1,
		Cooldown:      time.Hour, // a failed peer stays down for the test
	}
}

func encodedModule(t *testing.T) []byte {
	t.Helper()
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := remote.Encode(prog.M)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestFailoverOn503(t *testing.T) {
	bad := newFakePeer("unavailable")
	good := newFakePeer("ok")
	defer bad.ts.Close()
	defer good.ts.Close()

	c := remote.NewClient([]string{bad.ts.URL, good.ts.URL}, fastOpts())
	rep, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err != nil {
		t.Fatalf("analyze with one 503 peer: %v", err)
	}
	if rep.Instrs != 42 || rep.Peer != good.ts.URL {
		t.Fatalf("report %+v did not come from the good peer", rep)
	}
	st := c.Stats()
	var badSt, goodSt remote.PeerStats
	for _, s := range st {
		if s.URL == bad.ts.URL {
			badSt = s
		} else {
			goodSt = s
		}
	}
	if badSt.Failures == 0 && goodSt.Failures == 0 {
		t.Fatalf("no failure recorded anywhere: %+v", st)
	}
	if goodSt.Jobs+badSt.Jobs != 1 {
		t.Fatalf("want exactly 1 completed job, got %+v", st)
	}
}

func TestFailoverOnTimeout(t *testing.T) {
	hang := newFakePeer("hang")
	good := newFakePeer("ok")
	defer hang.ts.Close()
	defer good.ts.Close()

	// hang accepts the submission and then never answers the poll: the
	// per-attempt JobTimeout must expire and the job resubmit elsewhere.
	c := remote.NewClient([]string{hang.ts.URL, good.ts.URL}, fastOpts())
	start := time.Now()
	rep, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err != nil {
		t.Fatalf("analyze with one hanging peer: %v", err)
	}
	if rep.Peer == hang.ts.URL {
		t.Fatal("report attributed to the hanging peer")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("failover took %s; the timeout did not bound the attempt", elapsed)
	}
}

func TestFailoverOnGarbageMidJob(t *testing.T) {
	garbled := newFakePeer("garbage-poll")
	good := newFakePeer("ok")
	defer garbled.ts.Close()
	defer good.ts.Close()

	// The peer accepts the job, then answers polls with garbage: the
	// client must abandon the in-flight job and resubmit to the next peer.
	c := remote.NewClient([]string{garbled.ts.URL, good.ts.URL}, fastOpts())
	rep, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err != nil {
		t.Fatalf("analyze with one garbage peer: %v", err)
	}
	if rep.Peer != good.ts.URL {
		t.Fatalf("report from %s, want the good peer", rep.Peer)
	}
	if garbled.submits.Load() == 0 {
		t.Fatal("the garbage peer never saw the submission")
	}
}

func TestJobEvictionFailsOverWithoutPenalty(t *testing.T) {
	evict := newFakePeer("evict")
	good := newFakePeer("ok")
	defer evict.ts.Close()
	defer good.ts.Close()

	// The first peer accepts the job but its bounded jobStore evicts the
	// record before the poll: the client must resubmit to the next peer,
	// and — since the 404 is an authoritative answer from a live worker,
	// not a transport fault — the evicting peer must stay healthy even at
	// FailThreshold=1.
	c := remote.NewClient([]string{evict.ts.URL, good.ts.URL}, fastOpts())
	rep, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err != nil {
		t.Fatalf("analyze with one evicting peer: %v", err)
	}
	if rep.Peer != good.ts.URL {
		t.Fatalf("report from %s, want the good peer", rep.Peer)
	}
	for _, s := range c.Stats() {
		if s.URL != evict.ts.URL {
			continue
		}
		if s.Failures != 0 {
			t.Fatalf("eviction counted as %d transport failures", s.Failures)
		}
		if !s.Healthy {
			t.Fatal("evicting peer was pushed into cooldown")
		}
	}
}

func TestRejectionIsTerminal(t *testing.T) {
	rej := newFakePeer("reject")
	good := newFakePeer("ok")
	defer rej.ts.Close()
	defer good.ts.Close()

	// A 400 is an authoritative answer about the payload: retrying the
	// same bytes on another peer would fail identically, so the client
	// must NOT fail over. (Peer order is deterministic only with one
	// peer, so probe the rejecting peer alone.)
	c := remote.NewClient([]string{rej.ts.URL}, fastOpts())
	_, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	var rerr *remote.RemoteError
	if err == nil || !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !strings.Contains(err.Error(), "bad module") {
		t.Fatalf("error %q does not carry the peer's message", err)
	}
	// The rejecting peer must not be marked unhealthy: it answered.
	if st := c.Stats()[0]; !st.Healthy || st.Failures != 0 {
		t.Fatalf("authoritative rejection counted as peer failure: %+v", st)
	}
}

// TestRejectedSubmissionFallsBackLocally pins the stage-level policy
// above the client: a fleet that rejects the payload (wire limits
// stricter than local analysis) must not fail the job — the stage runs
// the local pipeline instead.
func TestRejectedSubmissionFallsBackLocally(t *testing.T) {
	rej := newFakePeer("reject")
	defer rej.ts.Close()

	stage := &remote.Stage{Client: remote.NewClient([]string{rej.ts.URL}, fastOpts())}
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pipeline.Context{Mod: prog.M, Opt: pipeline.Options{Threads: 16}}
	if err := stage.Run(ctx); err != nil {
		t.Fatalf("stage must absorb a fleet rejection, got %v", err)
	}
	if stage.Fallbacks() != 1 || ctx.Profile == nil {
		t.Fatalf("rejection did not trigger a local fallback (fallbacks=%d)", stage.Fallbacks())
	}
}

func TestFailedAnalysisIsTerminal(t *testing.T) {
	failing := newFakePeer("failjob")
	good := newFakePeer("ok")
	defer failing.ts.Close()
	defer good.ts.Close()

	c := remote.NewClient([]string{failing.ts.URL}, fastOpts())
	_, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	var rerr *remote.RemoteError
	if err == nil || !errors.As(err, &rerr) {
		t.Fatalf("want RemoteError for failed analysis, got %v", err)
	}
	if !strings.Contains(err.Error(), "interpreter panic") {
		t.Fatalf("error %q lost the analysis failure detail", err)
	}
	_ = good
}

func TestHealthCooldownSkipsDownPeer(t *testing.T) {
	bad := newFakePeer("unavailable")
	good := newFakePeer("ok")
	defer bad.ts.Close()
	defer good.ts.Close()

	c := remote.NewClient([]string{bad.ts.URL, good.ts.URL}, fastOpts())
	enc := encodedModule(t)
	if _, err := c.AnalyzeBytes(context.Background(), enc, remote.Spec{}); err != nil {
		t.Fatal(err)
	}
	seen := bad.submits.Load()
	// With FailThreshold 1 and a one-hour cooldown, the bad peer must not
	// receive any further submissions.
	for i := 0; i < 4; i++ {
		if _, err := c.AnalyzeBytes(context.Background(), enc, remote.Spec{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := bad.submits.Load(); got != seen {
		t.Fatalf("down peer got %d more submissions during cooldown", got-seen)
	}
	for _, s := range c.Stats() {
		if s.URL == bad.ts.URL && s.Healthy {
			t.Fatal("down peer reported healthy")
		}
	}
}

func TestAllPeersDownLocalFallback(t *testing.T) {
	bad1 := newFakePeer("unavailable")
	bad2 := newFakePeer("unavailable")
	defer bad1.ts.Close()
	defer bad2.ts.Close()

	stage := &remote.Stage{
		Client: remote.NewClient([]string{bad1.ts.URL, bad2.ts.URL}, fastOpts()),
	}
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pipeline.Context{Mod: prog.M, Opt: pipeline.Options{Threads: 16}}
	if err := stage.Run(ctx); err != nil {
		t.Fatalf("stage with dead fleet: %v", err)
	}
	if stage.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", stage.Fallbacks())
	}
	// The local pipeline really ran: full products, not a wire summary.
	if ctx.Profile == nil || ctx.CUs == nil || len(ctx.Ranked) == 0 {
		t.Fatal("local fallback did not produce a full analysis")
	}
	if ctx.RemotePeer != "" {
		t.Fatalf("fallback claims peer %q", ctx.RemotePeer)
	}

	// Both peers now sit in cooldown: the next call must short-circuit to
	// ErrNoPeers without any network traffic.
	b1, b2 := bad1.submits.Load(), bad2.submits.Load()
	ctx2 := &pipeline.Context{Mod: prog.M, Opt: pipeline.Options{Threads: 16}}
	if err := stage.Run(ctx2); err != nil {
		t.Fatalf("second fallback run: %v", err)
	}
	if stage.Fallbacks() != 2 {
		t.Fatalf("fallbacks = %d, want 2", stage.Fallbacks())
	}
	if bad1.submits.Load() != b1 || bad2.submits.Load() != b2 {
		t.Fatal("client probed peers that are in cooldown")
	}
}

// TestStageCloseAbortsInFlightJob pins the drain path: Close must cancel
// a remote submission stuck in a long-poll well before the client's
// JobTimeout, and the aborted job must not start a local fallback
// analysis nobody is waiting for.
func TestStageCloseAbortsInFlightJob(t *testing.T) {
	hang := newFakePeer("hang")
	defer hang.ts.Close()

	opts := fastOpts()
	opts.JobTimeout = time.Hour // only Close can unblock the attempt
	stage := &remote.Stage{Client: remote.NewClient([]string{hang.ts.URL}, opts)}
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pipeline.Context{Mod: prog.M, Opt: pipeline.Options{Threads: 16}}
	runErr := make(chan error, 1)
	go func() { runErr <- stage.Run(ctx) }()
	time.Sleep(100 * time.Millisecond)
	stage.Close()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("aborted run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the in-flight long-poll")
	}
	if stage.Fallbacks() != 0 || ctx.Profile != nil {
		t.Fatal("aborted job ran the local fallback")
	}
}

// TestRetryAfterBackoffOn429 pins satellite 3: a 429 on submit is not a
// transport failure. The client must honor the peer's Retry-After, retry
// the same peer after the delay, and leave its health untouched — even at
// FailThreshold=1, where misclassifying the 429 would bench the peer for
// the cooldown.
func TestRetryAfterBackoffOn429(t *testing.T) {
	p := newFakePeer("ratelimit-once")
	p.rateLeft.Store(1) // first submission 429s with Retry-After: 1, then ok
	defer p.ts.Close()

	opts := fastOpts()
	opts.JobTimeout = 10 * time.Second
	c := remote.NewClient([]string{p.ts.URL}, opts)
	start := time.Now()
	rep, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err != nil {
		t.Fatalf("analyze through a transient 429: %v", err)
	}
	if rep.Instrs != 42 {
		t.Fatalf("bad report %+v", rep)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("job completed in %s; the advertised Retry-After was not honored", elapsed)
	}
	if got := p.submits.Load(); got != 2 {
		t.Fatalf("peer saw %d submissions, want 2 (429 then retry)", got)
	}
	st := c.Stats()[0]
	if st.Failures != 0 || !st.Healthy {
		t.Fatalf("429 counted against peer health: %+v", st)
	}
}

// TestRateLimitExhaustedSurfaces bounds the backoff: a peer that never
// admits the client yields an error after maxRateRetries extra attempts
// (the stage then falls back locally), still without a health penalty.
func TestRateLimitExhaustedSurfaces(t *testing.T) {
	p := newFakePeer("ratelimit") // 429 forever, Retry-After: 0
	defer p.ts.Close()

	c := remote.NewClient([]string{p.ts.URL}, fastOpts())
	_, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{})
	if err == nil {
		t.Fatal("want an error from a permanently rate-limiting fleet")
	}
	if !strings.Contains(err.Error(), "rate-limited") {
		t.Fatalf("error %q does not name the rate limit", err)
	}
	// 1 initial attempt + 2 bounded retries.
	if got := p.submits.Load(); got != 3 {
		t.Fatalf("peer saw %d submissions, want 3", got)
	}
	st := c.Stats()[0]
	if st.Failures != 0 || !st.Healthy {
		t.Fatalf("429s counted against peer health: %+v", st)
	}
}

// TestIdempotencyKeyReusedAcrossFailover checks the client generates one
// key per logical job and presents it to every peer it tries, so a worker
// that silently kept the first attempt dedupes the retry; a second logical
// job must get a fresh key.
func TestIdempotencyKeyReusedAcrossFailover(t *testing.T) {
	evict := newFakePeer("evict")
	good := newFakePeer("ok")
	defer evict.ts.Close()
	defer good.ts.Close()

	c := remote.NewClient([]string{evict.ts.URL, good.ts.URL}, fastOpts())
	enc := encodedModule(t)
	if _, err := c.AnalyzeBytes(context.Background(), enc, remote.Spec{}); err != nil {
		t.Fatalf("analyze with failover: %v", err)
	}
	keys := append(evict.seenKeys(), good.seenKeys()...)
	if len(keys) != 2 {
		t.Fatalf("want 2 submissions across the fleet, saw keys %q", keys)
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("failover attempts carried keys %q, want one reused non-empty key", keys)
	}
	first := keys[0]

	// A new logical job must not reuse the old key (it would dedupe onto
	// the previous job's record).
	if _, err := c.AnalyzeBytes(context.Background(), enc, remote.Spec{}); err != nil {
		t.Fatal(err)
	}
	all := append(evict.seenKeys(), good.seenKeys()...)
	last := all[len(all)-1]
	if last == "" || last == first {
		t.Fatalf("second job reused key %q", last)
	}
}

// TestClientSendsBearerToken checks ClientOptions.Token reaches both the
// submit and the poll as an Authorization header, and that no header is
// sent when unset.
func TestClientSendsBearerToken(t *testing.T) {
	p := newFakePeer("ok")
	defer p.ts.Close()

	opts := fastOpts()
	opts.JobTimeout = 10 * time.Second
	opts.Token = "sekret-worker-token"
	c := remote.NewClient([]string{p.ts.URL}, opts)
	if _, err := c.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{}); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	auths := append([]string(nil), p.auths...)
	p.mu.Unlock()
	if len(auths) < 2 {
		t.Fatalf("want a submit and at least one poll, saw %d requests", len(auths))
	}
	for i, a := range auths {
		if a != "Bearer sekret-worker-token" {
			t.Fatalf("request %d Authorization = %q", i, a)
		}
	}

	bare := remote.NewClient([]string{p.ts.URL}, fastOpts())
	if _, err := bare.AnalyzeBytes(context.Background(), encodedModule(t), remote.Spec{}); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	tail := p.auths[len(auths):]
	p.mu.Unlock()
	for i, a := range tail {
		if a != "" {
			t.Fatalf("tokenless request %d sent Authorization %q", i, a)
		}
	}
}

// TestConcurrentFanOut drives one shared Client from many goroutines
// (the engine-worker pattern) under -race: all jobs must complete and
// spread across both peers.
func TestConcurrentFanOut(t *testing.T) {
	p1 := newFakePeer("ok")
	p2 := newFakePeer("ok")
	defer p1.ts.Close()
	defer p2.ts.Close()

	c := remote.NewClient([]string{p1.ts.URL, p2.ts.URL}, remote.ClientOptions{
		PollWait: 50 * time.Millisecond, JobTimeout: 10 * time.Second,
	})
	enc := encodedModule(t)
	const goroutines, perG = 8, 4
	var wg sync.WaitGroup
	var completed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rep, err := c.AnalyzeBytes(context.Background(), enc, remote.Spec{})
				if err != nil {
					t.Errorf("concurrent analyze: %v", err)
					return
				}
				if rep.Instrs != 42 {
					t.Errorf("bad report %+v", rep)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != goroutines*perG {
		t.Fatalf("completed %d of %d", completed.Load(), goroutines*perG)
	}
	s1, s2 := p1.submits.Load(), p2.submits.Load()
	if s1+s2 != goroutines*perG {
		t.Fatalf("peers saw %d+%d submissions, want %d", s1, s2, goroutines*perG)
	}
	if s1 == 0 || s2 == 0 {
		t.Fatalf("round-robin did not spread load: %d vs %d", s1, s2)
	}
}
