package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Result spill: a finished record whose result summary would push the
// payload past MaxRecordBytes journals a sha256 hash instead, and the
// result bytes live in a content-addressed side file under
// <journal>.spill/<hash>. Content addressing makes writes idempotent
// (re-spilling the same bytes is a no-op) and lets compaction
// garbage-collect by simple reachability: any file not referenced by the
// snapshot being written is deleted.

// MaxSpillBytes caps one spilled result read back at boot, so a corrupted
// or hostile spill directory cannot make replay allocate without bound.
const MaxSpillBytes = 64 << 20

// SpillDir is the directory holding this journal's spilled results.
func (j *Journal) SpillDir() string { return j.path + ".spill" }

// spillRefValid reports whether ref looks like one of our file names: a
// lowercase hex sha256. Anything else (path separators, "..", drive
// letters) must never reach the filesystem.
func spillRefValid(ref string) bool {
	if len(ref) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(ref); i++ {
		c := ref[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeSpillLocked stores data under its sha256 name, durably (write temp,
// fsync, rename). Callers hold j.mu, which also serializes the spill
// counters against compaction's garbage collection.
func (j *Journal) writeSpillLocked(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	ref := hex.EncodeToString(sum[:])
	dir := j.SpillDir()
	path := filepath.Join(dir, ref)
	if _, err := os.Stat(path); err == nil {
		return ref, nil // content-addressed: already spilled
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	j.spillFiles++
	j.spillBytes += int64(len(data))
	return ref, nil
}

// ReadSpill loads a spilled result by the hash a replayed record carries
// in ResultRef, verifying the content against the hash (a spill file is
// outside the journal's CRC framing, so it brings its own integrity
// check).
func (j *Journal) ReadSpill(ref string) ([]byte, error) {
	if !spillRefValid(ref) {
		return nil, fmt.Errorf("journal: invalid spill ref %q", ref)
	}
	path := filepath.Join(j.SpillDir(), ref)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > MaxSpillBytes {
		return nil, fmt.Errorf("journal: spill %s is %d bytes, over the %d cap", ref, fi.Size(), MaxSpillBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != ref {
		return nil, fmt.Errorf("journal: spill %s fails its content hash", ref)
	}
	return data, nil
}

// scanSpillDir initializes the spill counters from the directory contents
// at Open, dropping stray .tmp files from a crash mid-spill.
func (j *Journal) scanSpillDir() {
	entries, err := os.ReadDir(j.SpillDir())
	if err != nil {
		return // no spill dir yet
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(j.SpillDir(), e.Name()))
			continue
		}
		if !spillRefValid(e.Name()) {
			continue
		}
		if fi, err := e.Info(); err == nil {
			j.spillFiles++
			j.spillBytes += fi.Size()
		}
	}
}

// gcSpillLocked deletes every spill file not named in keep, rebuilding
// the counters from what survives. Callers hold j.mu.
func (j *Journal) gcSpillLocked(keep map[string]bool) {
	entries, err := os.ReadDir(j.SpillDir())
	if err != nil {
		return
	}
	j.spillFiles, j.spillBytes = 0, 0
	for _, e := range entries {
		name := e.Name()
		if !spillRefValid(name) || !keep[name] {
			os.Remove(filepath.Join(j.SpillDir(), name))
			continue
		}
		if fi, err := e.Info(); err == nil {
			j.spillFiles++
			j.spillBytes += fi.Size()
		}
	}
}
