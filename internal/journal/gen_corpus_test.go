package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestGenCorpus writes the committed FuzzJournalReplay seed corpus.
// Gated on GEN_CORPUS=1; run once when the on-disk format changes.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") != "1" {
		t.Skip("set GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0).UTC()
	full := func(recs ...Record) []byte {
		out := []byte(magic)
		for _, r := range recs {
			out = append(out, frame(t, r)...)
		}
		return out
	}
	seeds := map[string][]byte{
		"seed-empty": {},
		"seed-magic": []byte(magic),
		"seed-accepted": full(Record{Op: OpAccepted, ID: "j000001", Time: ts,
			Workload: "CG", Scale: 2, Client: "alice", IdemKey: "key-1"}),
		"seed-lifecycle": full(
			Record{Op: OpAccepted, ID: "j000001", Time: ts, Workload: "histogram", Client: "bob", IdemKey: "key-b"},
			Record{Op: OpStarted, ID: "j000001", Time: ts},
			Record{Op: OpFinished, ID: "j000001", Time: ts, State: "done",
				Result: json.RawMessage(`{"instrs":42,"deps":7,"cus":3,"cache_hit":false,"elapsed_ms":1.5,"queue_ms":0.1,"suggestions":[{"rank":1,"kind":"DOALL","loc":"1:5","coverage":0.5,"speedup":16,"imbalance":0,"score":8}]}`)},
		),
		"seed-failed": full(
			Record{Op: OpAccepted, ID: "j000002", Time: ts, Workload: "EP"},
			Record{Op: OpFinished, ID: "j000002", Time: ts, State: "failed",
				Error: "job \"j000002\": instruction budget of 50000 statements exhausted"},
		),
		"seed-interrupted": full(
			Record{Op: OpAccepted, ID: "j000003", Time: ts, Workload: "CG", Client: "alice"},
			Record{Op: OpStarted, ID: "j000003", Time: ts},
			Record{Op: OpFinished, ID: "j000003", Time: ts, State: "failed", Error: "interrupted: node restarted mid-job"},
		),
	}
	// Crash shapes: torn tail, flipped payload bit, garbage, huge length.
	torn := full(Record{Op: OpAccepted, ID: "j000004", Time: ts, Workload: "CG"})
	torn = append(torn, frame(t, Record{Op: OpFinished, ID: "j000004", Time: ts, State: "done"})[:5]...)
	seeds["seed-torn-tail"] = torn
	flipped := full(Record{Op: OpAccepted, ID: "j000005", Time: ts, Workload: "CG"})
	flipped[len(flipped)-2] ^= 0x20
	seeds["seed-bit-flip"] = flipped
	seeds["seed-garbage-tail"] = append([]byte(magic), []byte("!!!! certainly not a frame")...)
	seeds["seed-huge-length"] = append([]byte(magic), 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4)

	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seeds to %s", len(seeds), dir)
}
