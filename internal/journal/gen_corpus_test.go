package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestGenCorpus writes the committed FuzzJournalReplay seed corpus.
// Gated on GEN_CORPUS=1; run once when the on-disk format changes.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") != "1" {
		t.Skip("set GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0).UTC()
	full := func(recs ...Record) []byte {
		out := []byte(magic)
		for _, r := range recs {
			out = append(out, frame(t, r)...)
		}
		return out
	}
	seeds := map[string][]byte{
		"seed-empty": {},
		"seed-magic": []byte(magic),
		"seed-accepted": full(Record{Op: OpAccepted, ID: "j000001", Time: ts,
			Workload: "CG", Scale: 2, Client: "alice", IdemKey: "key-1"}),
		"seed-lifecycle": full(
			Record{Op: OpAccepted, ID: "j000001", Time: ts, Workload: "histogram", Client: "bob", IdemKey: "key-b"},
			Record{Op: OpStarted, ID: "j000001", Time: ts},
			Record{Op: OpFinished, ID: "j000001", Time: ts, State: "done",
				Result: json.RawMessage(`{"instrs":42,"deps":7,"cus":3,"cache_hit":false,"elapsed_ms":1.5,"queue_ms":0.1,"suggestions":[{"rank":1,"kind":"DOALL","loc":"1:5","coverage":0.5,"speedup":16,"imbalance":0,"score":8}]}`)},
		),
		"seed-failed": full(
			Record{Op: OpAccepted, ID: "j000002", Time: ts, Workload: "EP"},
			Record{Op: OpFinished, ID: "j000002", Time: ts, State: "failed",
				Error: "job \"j000002\": instruction budget of 50000 statements exhausted"},
		),
		"seed-interrupted": full(
			Record{Op: OpAccepted, ID: "j000003", Time: ts, Workload: "CG", Client: "alice"},
			Record{Op: OpStarted, ID: "j000003", Time: ts},
			Record{Op: OpFinished, ID: "j000003", Time: ts, State: "failed", Error: "interrupted: node restarted mid-job"},
		),
	}
	// Crash shapes: torn tail, flipped payload bit, garbage, huge length.
	torn := full(Record{Op: OpAccepted, ID: "j000004", Time: ts, Workload: "CG"})
	torn = append(torn, frame(t, Record{Op: OpFinished, ID: "j000004", Time: ts, State: "done"})[:5]...)
	seeds["seed-torn-tail"] = torn
	flipped := full(Record{Op: OpAccepted, ID: "j000005", Time: ts, Workload: "CG"})
	flipped[len(flipped)-2] ^= 0x20
	seeds["seed-bit-flip"] = flipped
	seeds["seed-garbage-tail"] = append([]byte(magic), []byte("!!!! certainly not a frame")...)
	seeds["seed-huge-length"] = append([]byte(magic), 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4)
	// v2 shapes: a compacted log (superseded history, checkpoint marker,
	// snapshot records) and a finished record whose result was spilled.
	seeds["seed-checkpoint"] = full(
		Record{Op: OpAccepted, ID: "j000006", Time: ts, Workload: "CG"},
		Record{Op: OpFinished, ID: "j000006", Time: ts, State: "done"},
		Record{Op: OpCheckpoint, Time: ts, Live: 2},
		Record{Op: OpAccepted, ID: "j000007", Time: ts, Workload: "MG", Client: "alice"},
		Record{Op: OpFinished, ID: "j000007", Time: ts, State: "done",
			Result: json.RawMessage(`{"instrs":9,"deps":2,"cus":1,"suggestions":[]}`)},
	)
	seeds["seed-spill-ref"] = full(
		Record{Op: OpAccepted, ID: "j000008", Time: ts, Workload: "histogram"},
		Record{Op: OpFinished, ID: "j000008", Time: ts, State: "done",
			ResultRef: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"},
	)
	// A v1-magic log: the v2 reader must keep replaying pre-compaction
	// journals byte-for-byte.
	v1 := []byte(magicV1)
	v1 = append(v1, frame(t, Record{Op: OpAccepted, ID: "j000009", Time: ts, Workload: "EP"})...)
	v1 = append(v1, frame(t, Record{Op: OpFinished, ID: "j000009", Time: ts, State: "done"})...)
	seeds["seed-v1-log"] = v1

	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seeds to %s", len(seeds), dir)
}
