package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.bin")
}

func mustOpen(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, recs
}

func accepted(id, workload string) Record {
	return Record{Op: OpAccepted, ID: id, Time: time.Unix(100, 0).UTC(),
		Workload: workload, Client: "alice", IdemKey: "k-" + id}
}

func finished(id, state string) Record {
	return Record{Op: OpFinished, ID: id, Time: time.Unix(200, 0).UTC(),
		State: state, Result: json.RawMessage(`{"instrs":42}`)}
}

// TestRoundTrip: appends survive close and replay in order with every
// field intact.
func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, recs := mustOpen(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		accepted("j000001", "CG"),
		{Op: OpStarted, ID: "j000001", Time: time.Unix(150, 0).UTC()},
		finished("j000001", "done"),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, _ := json.Marshal(want[i])
		g, _ := json.Marshal(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("record %d: got %s, want %s", i, g, w)
		}
	}
	if st := j2.Stats(); st.Replayed != int64(len(want)) || st.Truncated != 0 {
		t.Errorf("stats after clean replay: %+v", st)
	}
}

// TestAppendAfterReplay: a reopened journal appends past the replayed
// records, and a third open sees both generations.
func TestAppendAfterReplay(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	if err := j.Append(accepted("j000001", "CG")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs := mustOpen(t, path)
	if len(recs) != 1 {
		t.Fatalf("replayed %d, want 1", len(recs))
	}
	if err := j2.Append(finished("j000001", "done")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, recs := mustOpen(t, path)
	defer j3.Close()
	if len(recs) != 2 || recs[0].Op != OpAccepted || recs[1].Op != OpFinished {
		t.Fatalf("second reopen replayed %+v", recs)
	}
}

// TestTornTailTruncated: a crash mid-write leaves a partial record; Open
// must recover the intact prefix and truncate the tail so the next append
// lands on a record boundary.
func TestTornTailTruncated(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	j.Append(accepted("j000001", "CG"))
	j.Append(finished("j000001", "done"))
	j.Close()

	// Simulate the torn write: chop the file mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, path)
	if len(recs) != 1 || recs[0].Op != OpAccepted {
		t.Fatalf("torn-tail replay got %+v, want the intact first record", recs)
	}
	if st := j2.Stats(); st.Truncated == 0 {
		t.Error("truncation not reported in stats")
	}
	// The journal must now be appendable and self-consistent.
	if err := j2.Append(finished("j000001", "failed")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = mustOpen(t, path)
	if len(recs) != 2 || recs[1].State != "failed" {
		t.Fatalf("post-truncation journal replayed %+v", recs)
	}
}

// TestBitFlipStopsReplay: a corrupted byte inside a committed record
// fails its checksum; replay keeps everything before it and stops.
func TestBitFlipStopsReplay(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	j.Append(accepted("j000001", "CG"))
	j.Append(accepted("j000002", "EP"))
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit deep in the second record's payload.
	data[len(data)-3] ^= 0x40
	recs, consumed, rerr := Replay(data)
	if len(recs) != 1 || recs[0].ID != "j000001" {
		t.Fatalf("bit-flip replay got %d records, want the first only", len(recs))
	}
	if rerr == nil {
		t.Error("corrupt record did not produce a diagnostic error")
	}
	if consumed >= len(data) {
		t.Error("replay claimed to consume the corrupt tail")
	}
}

// TestGarbageInputs: arbitrary non-journal bytes must be rejected or
// yield zero records — never a panic (the fuzz target widens this).
func TestGarbageInputs(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("D"),
		[]byte("not a journal at all"),
		[]byte(magic),
		append([]byte(magic), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0),
		append([]byte(magic), 1, 2, 3),
	} {
		recs, consumed, _ := Replay(data)
		if len(recs) != 0 {
			t.Errorf("garbage %q produced %d records", data, len(recs))
		}
		if consumed > len(data) {
			t.Errorf("garbage %q: consumed %d > len %d", data, consumed, len(data))
		}
	}
	// A huge claimed length must not allocate: record claims 2GB.
	frame := append([]byte(magic), 0, 0, 0, 0x80, 0, 0, 0, 0)
	if recs, _, err := Replay(frame); len(recs) != 0 || err == nil {
		t.Error("implausible length accepted")
	}
}

// TestOpenRefusesForeignFile: Open must not truncate a file that is not a
// journal.
func TestOpenRefusesForeignFile(t *testing.T) {
	path := tmpJournal(t)
	content := []byte("precious data that is definitely not a journal")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatal("Open modified a foreign file")
	}
}

// TestSyncDurability: records appended and Synced are on disk even
// without Close (read the file directly, as a crash would find it).
func TestSyncDurability(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	defer j.Close()
	j.Append(accepted("j000001", "CG"))
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _ := Replay(data)
	if len(recs) != 1 {
		t.Fatalf("synced record not on disk (replayed %d)", len(recs))
	}
}

// TestConcurrentAppends: many goroutines appending must all land intact
// (run under -race).
func TestConcurrentAppends(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("j%02d%04d", g, i)
				if err := j.Append(accepted(id, "CG")); err != nil {
					t.Errorf("append %s: %v", id, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, path)
	if len(recs) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(recs), goroutines*perG)
	}
	if st := j.Stats(); st.Appends != goroutines*perG {
		t.Errorf("append counter %d, want %d", st.Appends, goroutines*perG)
	}
}

// TestUnknownOpStopsReplay: a structurally valid frame with an op the
// replayer does not know stops the replay (fail-closed on future format
// drift rather than inventing job states).
func TestUnknownOpStopsReplay(t *testing.T) {
	payload, _ := json.Marshal(map[string]string{"op": "compacted", "id": "j000001"})
	data := []byte(magic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	data = append(data, hdr[:]...)
	data = append(data, payload...)
	recs, _, err := Replay(data)
	if len(recs) != 0 || err == nil {
		t.Fatalf("unknown op replayed as %+v (err %v)", recs, err)
	}
}
