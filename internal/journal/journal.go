// Package journal is the crash-safe, append-only job journal behind
// dp-serve's durable job records. Every job transition — accepted,
// started, finished — is appended as one length-prefixed, checksummed
// record; on boot the service replays the journal to restore its record
// store, so a restart answers long-polls for pre-restart jobs instead of
// forgetting them, and jobs that were in flight at crash time surface as
// failed (interrupted) rather than vanishing.
//
// On-disk format:
//
//	"DPJ1"                          4-byte file magic
//	repeated records:
//	  uint32 LE payload length      capped at MaxRecordBytes
//	  uint32 LE CRC32 (IEEE)        over the payload bytes
//	  payload                       one JSON-encoded Record
//
// The format is designed around crash behavior, not elegance: a torn
// write at crash time leaves a short or corrupt tail, so Replay stops at
// the first record that fails its frame, checksum, or decode — everything
// before it is a consistent prefix — and Open truncates the torn tail so
// the next append continues from a clean boundary. Replay never panics on
// arbitrary bytes (FuzzJournalReplay holds it to that).
//
// Durability is batched: Append buffers the record and a background
// flusher coalesces writes into one Flush+fsync within a few
// milliseconds, so a burst of accepted jobs costs one disk sync instead
// of one each. The trade is explicit: a crash can lose the last few
// milliseconds of appends, but never corrupts what came before.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Record ops: the three job transitions the server journals.
const (
	// OpAccepted is written once a submission is acknowledged with 202:
	// the job exists and a result is owed.
	OpAccepted = "accepted"
	// OpStarted is written when the job is handed to the analysis engine.
	OpStarted = "started"
	// OpFinished is written when the result (or failure) is recorded.
	OpFinished = "finished"
)

// Record is one journaled job transition. Which fields are meaningful
// depends on Op: accepted records carry the job's identity (workload,
// client, idempotency key), finished records carry the terminal state and
// the result summary; started records are just the op, id, and time.
type Record struct {
	Op   string    `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// Accepted-record fields.
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	Client   string `json:"client,omitempty"`
	IdemKey  string `json:"idem_key,omitempty"`

	// Finished-record fields. Result is the server's job-result summary,
	// kept opaque here so the journal does not depend on the server's
	// JSON shapes.
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// MaxRecordBytes caps one record's payload. The largest legitimate record
// is a finished record carrying a result summary (bounded by the server's
// suggestion cap); the cap exists so a corrupt length prefix cannot make
// replay allocate gigabytes.
const MaxRecordBytes = 1 << 20

const magic = "DPJ1"

// frame header: uint32 length + uint32 crc.
const frameHeader = 8

// ErrNotJournal reports a non-empty file whose first bytes are not the
// journal magic: almost certainly not ours, so Open refuses to append to
// (and truncate) it.
var ErrNotJournal = errors.New("journal: bad file magic")

// Replay decodes every complete, checksummed record from data (a whole
// journal file, magic included). It stops cleanly at the first torn or
// corrupt record — the expected shape of a crash tail — returning the
// records before it and the byte offset replay stopped at. The returned
// error is nil only when the whole file was consumed; it is diagnostic
// (the consistent prefix is still usable), except for ErrNotJournal,
// which means no prefix exists at all. Replay never panics on arbitrary
// input.
func Replay(data []byte) (recs []Record, consumed int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, 0, ErrNotJournal
	}
	off := len(magic)
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, off, fmt.Errorf("journal: torn frame header at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > MaxRecordBytes {
			return recs, off, fmt.Errorf("journal: implausible record length %d at offset %d", n, off)
		}
		if uint32(len(rest)-frameHeader) < n {
			return recs, off, fmt.Errorf("journal: torn record at offset %d (want %d payload bytes, have %d)",
				off, n, len(rest)-frameHeader)
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, fmt.Errorf("journal: checksum mismatch at offset %d", off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off, fmt.Errorf("journal: undecodable record at offset %d: %v", off, err)
		}
		if rec.Op != OpAccepted && rec.Op != OpStarted && rec.Op != OpFinished {
			return recs, off, fmt.Errorf("journal: unknown op %q at offset %d", rec.Op, off)
		}
		recs = append(recs, rec)
		off += frameHeader + int(n)
	}
	return recs, off, nil
}

// Stats is a snapshot of a journal's append-side counters.
type Stats struct {
	// Appends is how many records have been appended this process.
	Appends int64
	// Bytes is the framed bytes appended this process.
	Bytes int64
	// Syncs is how many batched fsyncs the flusher has issued.
	Syncs int64
	// Replayed is how many records Open recovered from the file at boot.
	Replayed int64
	// Truncated is non-zero when Open dropped a torn or corrupt tail.
	Truncated int64
}

// Journal is an open journal file accepting appends. Safe for concurrent
// use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	buf    []byte // pending framed bytes not yet written through
	err    error  // sticky I/O error; surfaced by every later Append
	closed bool
	dirty  bool

	kick chan struct{} // wakes the flusher; buffered, never blocks Append
	done chan struct{} // closed when the flusher exits

	appends   atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	replayed  int64
	truncated int64
}

// Open opens (creating if absent) the journal at path, replays every
// intact record, truncates any torn tail so appends continue from a clean
// boundary, and returns the journal ready for Append alongside the
// replayed records. A non-empty file without the journal magic returns
// ErrNotJournal rather than destroying whatever the file is.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(io.LimitReader(f, 1<<31))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{
		f:    f,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	var recs []Record
	if len(data) == 0 {
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else {
		var consumed int
		var rerr error
		recs, consumed, rerr = Replay(data)
		if errors.Is(rerr, ErrNotJournal) {
			f.Close()
			return nil, nil, fmt.Errorf("%w: %s", ErrNotJournal, path)
		}
		if consumed < len(data) {
			// Torn or corrupt tail: drop it so the next append starts at a
			// record boundary instead of extending garbage.
			if err := f.Truncate(int64(consumed)); err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, err
			}
			j.truncated = int64(len(data) - consumed)
		}
		if _, err := f.Seek(int64(consumed), io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.replayed = int64(len(recs))
	}
	go j.flusher()
	return j, recs, nil
}

// Append journals one record. The write is buffered and synced by the
// background flusher within a few milliseconds; callers needing a hard
// durability point call Sync. A sticky I/O error from an earlier append
// or sync is returned so the caller can surface the journal as degraded.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append on closed journal")
	}
	if j.err != nil {
		return j.err
	}
	j.buf = append(j.buf, frame...)
	j.dirty = true
	j.appends.Add(1)
	j.bytes.Add(int64(len(frame)))
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return nil
}

// flusher coalesces appends: each kick waits a beat so a burst of appends
// lands in one write+fsync, then flushes.
func (j *Journal) flusher() {
	defer close(j.done)
	for range j.kick {
		time.Sleep(2 * time.Millisecond)
		j.mu.Lock()
		if j.dirty {
			j.flushLocked()
		}
		closed := j.closed
		j.mu.Unlock()
		if closed {
			return
		}
	}
}

// flushLocked writes the pending buffer through and fsyncs. Callers hold
// j.mu.
func (j *Journal) flushLocked() {
	if len(j.buf) > 0 {
		if _, err := j.f.Write(j.buf); err != nil && j.err == nil {
			j.err = err
		}
		j.buf = j.buf[:0]
	}
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = err
	}
	j.dirty = false
	j.syncs.Add(1)
}

// Sync forces every buffered record to disk before returning — the hard
// durability point batching otherwise defers.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	if j.dirty {
		j.flushLocked()
	}
	return j.err
}

// Close flushes, fsyncs, and closes the file. Idempotent; appends after
// Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return j.err
	}
	j.closed = true
	if j.dirty {
		j.flushLocked()
	}
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = err
	}
	err := j.err
	j.mu.Unlock()
	// Unblock the flusher (it exits on the closed flag) and wait it out.
	select {
	case j.kick <- struct{}{}:
	default:
	}
	close(j.kick)
	<-j.done
	return err
}

// Stats snapshots the journal's counters for /metrics.
func (j *Journal) Stats() Stats {
	return Stats{
		Appends:   j.appends.Load(),
		Bytes:     j.bytes.Load(),
		Syncs:     j.syncs.Load(),
		Replayed:  j.replayed,
		Truncated: j.truncated,
	}
}
