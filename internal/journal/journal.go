// Package journal is the crash-safe job journal behind dp-serve's durable
// job records. Every job transition — accepted, started, finished — is
// appended as one length-prefixed, checksummed record; on boot the service
// replays the journal to restore its record store, so a restart answers
// long-polls for pre-restart jobs instead of forgetting them, and jobs
// that were in flight at crash time surface as failed (interrupted)
// rather than vanishing.
//
// On-disk format (version 2; version 1 files replay unchanged):
//
//	"DPJ2"                          4-byte file magic ("DPJ1" accepted on read)
//	repeated records:
//	  uint32 LE payload length      capped at MaxRecordBytes
//	  uint32 LE CRC32 (IEEE)        over the payload bytes
//	  payload                       one JSON-encoded Record
//
// Version 2 adds two durability mechanisms on top of the v1 framing:
//
//   - Checkpoint records (OpCheckpoint). Compact serializes the caller's
//     live state as one checkpoint marker followed by the snapshot
//     records into a fresh log, fsyncs it, and atomically renames it over
//     the old one — boot replay is O(live records), not O(history). On
//     replay a checkpoint record supersedes everything before it, so the
//     semantics hold even for logs a future writer checkpoints mid-file.
//
//   - Result spill (Record.ResultRef). A record whose Result pushes the
//     payload past MaxRecordBytes is not rejected: the result bytes move
//     to a content-addressed file under <journal>.spill/<sha256> and the
//     record journals the hash instead. Spill files unreferenced by the
//     live snapshot are garbage-collected at compaction.
//
// The format is designed around crash behavior, not elegance: a torn
// write at crash time leaves a short or corrupt tail, so Replay stops at
// the first record that fails its frame, checksum, or decode — everything
// before it is a consistent prefix — and Open truncates the torn tail so
// the next append continues from a clean boundary. Open streams the file
// instead of slurping it through a bounded reader, so a log past 2 GiB
// replays its full valid tail rather than silently truncating it. Replay
// never panics on arbitrary bytes (FuzzJournalReplay holds it to that).
//
// Durability is batched: Append buffers the record and a background
// flusher coalesces writes into one Flush+fsync within a few
// milliseconds, so a burst of accepted jobs costs one disk sync instead
// of one each. The trade is explicit: a crash can lose the last few
// milliseconds of appends, but never corrupts what came before.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Record ops: the three job transitions the server journals, plus the
// compaction marker.
const (
	// OpAccepted is written once a submission is acknowledged with 202:
	// the job exists and a result is owed.
	OpAccepted = "accepted"
	// OpStarted is written when the job is handed to the analysis engine.
	OpStarted = "started"
	// OpFinished is written when the result (or failure) is recorded.
	OpFinished = "finished"
	// OpCheckpoint marks a compaction point: everything before it in the
	// log is superseded by the snapshot records that follow it. Compact
	// writes it as the first record of every rotated log.
	OpCheckpoint = "checkpoint"
)

// Record is one journaled job transition. Which fields are meaningful
// depends on Op: accepted records carry the job's identity (workload,
// client, idempotency key), finished records carry the terminal state and
// the result summary; started records are just the op, id, and time;
// checkpoint records carry the snapshot size in Live.
type Record struct {
	Op   string    `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// Accepted-record fields.
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	Client   string `json:"client,omitempty"`
	IdemKey  string `json:"idem_key,omitempty"`

	// Finished-record fields. Result is the server's job-result summary,
	// kept opaque here so the journal does not depend on the server's
	// JSON shapes. A result too large for one record is spilled to
	// <journal>.spill/<ResultRef> and Result is left empty; ReadSpill
	// loads it back.
	State     string          `json:"state,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	ResultRef string          `json:"result_ref,omitempty"`

	// Checkpoint-record fields: how many snapshot records follow.
	Live int `json:"live,omitempty"`
}

// MaxRecordBytes caps one record's payload. Finished records whose result
// would push them past the cap spill the result to a side file instead;
// the cap also ensures a corrupt length prefix cannot make replay
// allocate gigabytes.
const MaxRecordBytes = 1 << 20

// Journal file magics: v2 is written, both replay. The only format change
// is additive (checkpoint records, spill refs), so v1 logs replay under
// the v2 rules unchanged.
const (
	magic   = "DPJ2"
	magicV1 = "DPJ1"
)

// frame header: uint32 length + uint32 crc.
const frameHeader = 8

// ErrNotJournal reports a non-empty file whose first bytes are not the
// journal magic: almost certainly not ours, so Open refuses to append to
// (and truncate) it.
var ErrNotJournal = errors.New("journal: bad file magic")

// Replay decodes every complete, checksummed record from data (a whole
// journal file, magic included). It stops cleanly at the first torn or
// corrupt record — the expected shape of a crash tail — returning the
// records before it and the byte offset replay stopped at. A checkpoint
// record supersedes everything before it: the returned slice restarts at
// the checkpoint. The returned error is nil only when the whole file was
// consumed; it is diagnostic (the consistent prefix is still usable),
// except for ErrNotJournal, which means no prefix exists at all. Replay
// never panics on arbitrary input.
func Replay(data []byte) (recs []Record, consumed int, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	recs, n, err := replayStream(bytes.NewReader(data))
	return recs, int(n), err
}

// replayStream is Replay over a reader: Open uses it directly against the
// file so replay cost is O(records) in memory, never a whole-file slurp —
// a journal past 2 GiB replays completely (the v1 implementation read
// through io.LimitReader(1<<31) and silently dropped the valid tail, then
// destroyed it with the torn-tail truncation).
func replayStream(r io.Reader) (recs []Record, consumed int64, err error) {
	var mbuf [len(magic)]byte
	if _, err := io.ReadFull(r, mbuf[:]); err != nil {
		if err == io.EOF {
			return nil, 0, nil // empty file
		}
		return nil, 0, ErrNotJournal
	}
	if m := string(mbuf[:]); m != magic && m != magicV1 {
		return nil, 0, ErrNotJournal
	}
	consumed = int64(len(magic))
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return recs, consumed, nil
			}
			return recs, consumed, fmt.Errorf("journal: torn frame header at offset %d", consumed)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > MaxRecordBytes {
			return recs, consumed, fmt.Errorf("journal: implausible record length %d at offset %d", n, consumed)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, consumed, fmt.Errorf("journal: torn record at offset %d (want %d payload bytes)", consumed, n)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, consumed, fmt.Errorf("journal: checksum mismatch at offset %d", consumed)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, consumed, fmt.Errorf("journal: undecodable record at offset %d: %v", consumed, err)
		}
		switch rec.Op {
		case OpAccepted, OpStarted, OpFinished:
		case OpCheckpoint:
			// Everything before the checkpoint is superseded by the
			// snapshot that follows it.
			recs = recs[:0]
		default:
			return recs, consumed, fmt.Errorf("journal: unknown op %q at offset %d", rec.Op, consumed)
		}
		recs = append(recs, rec)
		consumed += frameHeader + int64(n)
	}
}

// Stats is a snapshot of a journal's counters.
type Stats struct {
	// Appends is how many records have been appended this process.
	Appends int64
	// Bytes is the framed bytes appended this process.
	Bytes int64
	// Syncs is how many batched fsyncs the flusher has issued.
	Syncs int64
	// Replayed is how many records Open recovered from the file at boot.
	Replayed int64
	// Truncated is non-zero when Open dropped a torn or corrupt tail.
	Truncated int64
	// Compactions is how many snapshot+truncate rotations ran this
	// process.
	Compactions int64
	// LiveRecords is how many records the current log generation holds —
	// replayed plus appended, reset to the snapshot size by compaction.
	// This is what bounds the next boot's replay.
	LiveRecords int64
	// SizeBytes is the current log file size including buffered appends.
	SizeBytes int64
	// SpillFiles and SpillBytes count the live spill files holding
	// results too large for one record.
	SpillFiles int64
	// SpillBytes is the summed size of the live spill files.
	SpillBytes int64
}

// Options tunes a journal opened with OpenWith. The zero value never
// triggers compaction on its own (Compact can still be called directly).
type Options struct {
	// MaxBytes makes NeedsCompaction report true once the log grows past
	// this size (0 = no byte trigger).
	MaxBytes int64
	// MaxRecords makes NeedsCompaction report true once the log holds
	// more than this many records (0 = no record trigger).
	MaxRecords int64
}

// Journal is an open journal file accepting appends. Safe for concurrent
// use.
type Journal struct {
	path string
	opts Options

	mu     sync.Mutex
	f      *os.File
	buf    []byte // pending framed bytes not yet written through
	err    error  // sticky I/O error; surfaced by every later Append
	closed bool
	dirty  bool

	// size and records track the current log generation (file bytes and
	// record count including buffered appends); lastCompact* remember the
	// generation's post-compaction baseline so a store that is itself
	// over the limit cannot trigger a rotation per append.
	size            int64
	records         int64
	lastCompactSize int64
	lastCompactRecs int64

	// spillFiles/spillBytes mirror the live contents of SpillDir.
	spillFiles int64
	spillBytes int64

	kick chan struct{} // wakes the flusher; buffered, never blocks Append
	done chan struct{} // closed when the flusher exits

	appends     atomic.Int64
	bytes       atomic.Int64
	syncs       atomic.Int64
	compactions atomic.Int64
	replayed    int64
	truncated   int64
}

// Open opens (creating if absent) the journal at path with no compaction
// thresholds. See OpenWith.
func Open(path string) (*Journal, []Record, error) {
	return OpenWith(path, Options{})
}

// OpenWith opens (creating if absent) the journal at path, streams a
// replay of every intact record, truncates any torn tail so appends
// continue from a clean boundary, and returns the journal ready for
// Append alongside the replayed records. A stray .compact temp file from
// a crash mid-compaction is removed (the rename never happened, so the
// log itself is the consistent state). A non-empty file without the
// journal magic returns ErrNotJournal rather than destroying whatever
// the file is.
func OpenWith(path string, opts Options) (*Journal, []Record, error) {
	// A crash between writing the compaction temp file and renaming it
	// leaves the old log authoritative; the temp is garbage either way.
	os.Remove(compactTmpPath(path))

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{
		path: path,
		opts: opts,
		f:    f,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	var recs []Record
	if fi.Size() == 0 {
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.size = int64(len(magic))
	} else {
		var consumed int64
		var rerr error
		recs, consumed, rerr = replayStream(bufio.NewReaderSize(f, 1<<20))
		if errors.Is(rerr, ErrNotJournal) {
			f.Close()
			return nil, nil, fmt.Errorf("%w: %s", ErrNotJournal, path)
		}
		if consumed < fi.Size() {
			// Torn or corrupt tail: drop it so the next append starts at a
			// record boundary instead of extending garbage.
			if err := f.Truncate(consumed); err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, err
			}
			j.truncated = fi.Size() - consumed
		}
		if _, err := f.Seek(consumed, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.size = consumed
		j.records = int64(len(recs))
		j.replayed = int64(len(recs))
	}
	j.scanSpillDir()
	go j.flusher()
	return j, recs, nil
}

// frameLocked marshals rec into one framed record, spilling an oversized
// Result to a content-addressed spill file (the record then carries the
// hash in ResultRef). Callers hold j.mu.
func (j *Journal) frameLocked(rec Record) (frame []byte, ref string, err error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, "", err
	}
	if len(payload) > MaxRecordBytes && len(rec.Result) > 0 && rec.ResultRef == "" {
		ref, err := j.writeSpillLocked(rec.Result)
		if err != nil {
			return nil, "", fmt.Errorf("journal: spill oversized result: %w", err)
		}
		rec.Result, rec.ResultRef = nil, ref
		if payload, err = json.Marshal(rec); err != nil {
			return nil, "", err
		}
	}
	if len(payload) > MaxRecordBytes {
		return nil, "", fmt.Errorf("journal: record of %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	frame = make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, rec.ResultRef, nil
}

// Append journals one record. The write is buffered and synced by the
// background flusher within a few milliseconds; callers needing a hard
// durability point call Sync. A result too large for one record is
// spilled to a side file automatically. A sticky I/O error from an
// earlier append or sync is returned so the caller can surface the
// journal as degraded.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append on closed journal")
	}
	if j.err != nil {
		return j.err
	}
	frame, _, err := j.frameLocked(rec)
	if err != nil {
		return err
	}
	j.buf = append(j.buf, frame...)
	j.dirty = true
	j.size += int64(len(frame))
	j.records++
	j.appends.Add(1)
	j.bytes.Add(int64(len(frame)))
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return nil
}

// NeedsCompaction reports whether the log has outgrown its configured
// thresholds. To prevent thrash when the live snapshot itself exceeds a
// threshold, the log must also have doubled since the last compaction
// before another one is suggested.
func (j *Journal) NeedsCompaction() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.err != nil {
		return false
	}
	if j.opts.MaxBytes > 0 && j.size > j.opts.MaxBytes && j.size >= 2*j.lastCompactSize {
		return true
	}
	if j.opts.MaxRecords > 0 && j.records > j.opts.MaxRecords && j.records >= 2*j.lastCompactRecs {
		return true
	}
	return false
}

// flusher coalesces appends: each kick waits a beat so a burst of appends
// lands in one write+fsync, then flushes.
func (j *Journal) flusher() {
	defer close(j.done)
	for range j.kick {
		time.Sleep(2 * time.Millisecond)
		j.mu.Lock()
		if j.dirty {
			j.flushLocked()
		}
		closed := j.closed
		j.mu.Unlock()
		if closed {
			return
		}
	}
}

// flushLocked writes the pending buffer through and fsyncs. Callers hold
// j.mu. After Close has released the file it is a no-op: a flusher that
// consumed its kick just before Close (and was mid-sleep when the file
// closed) must not write through a dead descriptor, whatever state a
// future code path leaves dirty.
func (j *Journal) flushLocked() {
	if j.closed {
		return
	}
	if len(j.buf) > 0 {
		if _, err := j.f.Write(j.buf); err != nil && j.err == nil {
			j.err = err
		}
		j.buf = j.buf[:0]
	}
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = err
	}
	j.dirty = false
	j.syncs.Add(1)
}

// Sync forces every buffered record to disk before returning — the hard
// durability point batching otherwise defers.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	if j.dirty {
		j.flushLocked()
	}
	return j.err
}

// Close flushes, fsyncs, and closes the file. Idempotent; appends after
// Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return j.err
	}
	if j.dirty {
		j.flushLocked()
	}
	// The closed flag must be set only after the final flush (flushLocked
	// refuses to touch a closed journal) and before the descriptor dies.
	j.closed = true
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = err
	}
	err := j.err
	j.mu.Unlock()
	// Unblock the flusher (it exits on the closed flag) and wait it out.
	select {
	case j.kick <- struct{}{}:
	default:
	}
	close(j.kick)
	<-j.done
	return err
}

// Err returns the journal's sticky I/O error, if any — non-nil means
// durability is degraded (appends are failing) even though the service
// keeps running.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats snapshots the journal's counters for /metrics.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	size, records := j.size, j.records
	spillFiles, spillBytes := j.spillFiles, j.spillBytes
	j.mu.Unlock()
	return Stats{
		Appends:     j.appends.Load(),
		Bytes:       j.bytes.Load(),
		Syncs:       j.syncs.Load(),
		Replayed:    j.replayed,
		Truncated:   j.truncated,
		Compactions: j.compactions.Load(),
		LiveRecords: records,
		SizeBytes:   size,
		SpillFiles:  spillFiles,
		SpillBytes:  spillBytes,
	}
}
