package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// snapFor returns a snap() producing the given records.
func snapFor(recs ...Record) func() []Record {
	return func() []Record { return recs }
}

// TestCheckpointSupersedesReplay: a checkpoint record wipes everything
// before it, so replay of a compacted log yields the checkpoint plus the
// snapshot — never the superseded history.
func TestCheckpointSupersedesReplay(t *testing.T) {
	data := []byte(magic)
	pre := []Record{
		accepted("j000001", "CG"),
		finished("j000001", "done"),
		accepted("j000002", "EP"),
	}
	for _, r := range pre {
		data = append(data, frame(t, r)...)
	}
	data = append(data, frame(t, Record{Op: OpCheckpoint, Time: time.Unix(300, 0).UTC(), Live: 2})...)
	post := []Record{
		accepted("j000002", "EP"),
		accepted("j000003", "MG"),
	}
	for _, r := range post {
		data = append(data, frame(t, r)...)
	}

	recs, consumed, err := Replay(data)
	if err != nil || consumed != len(data) {
		t.Fatalf("replay: consumed %d/%d, err %v", consumed, len(data), err)
	}
	if len(recs) != 3 || recs[0].Op != OpCheckpoint || recs[0].Live != 2 {
		t.Fatalf("checkpoint did not supersede history: %+v", recs)
	}
	if recs[1].ID != "j000002" || recs[2].ID != "j000003" {
		t.Fatalf("post-checkpoint records wrong: %+v", recs[1:])
	}
}

// TestV1JournalReplays: a pre-compaction (DPJ1) log replays cleanly under
// the v2 code, and the journal keeps appending to it.
func TestV1JournalReplays(t *testing.T) {
	path := tmpJournal(t)
	data := []byte(magicV1)
	data = append(data, frame(t, accepted("j000001", "CG"))...)
	data = append(data, frame(t, finished("j000001", "done"))...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open v1 journal: %v", err)
	}
	if len(recs) != 2 || recs[0].Op != OpAccepted || recs[1].Op != OpFinished {
		t.Fatalf("v1 replay got %+v", recs)
	}
	if st := j.Stats(); st.Truncated != 0 || st.Replayed != 2 {
		t.Fatalf("v1 replay stats: %+v", st)
	}
	if err := j.Append(accepted("j000002", "EP")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = mustOpen(t, path)
	if len(recs) != 3 {
		t.Fatalf("v1 journal after append replayed %d records, want 3", len(recs))
	}
}

// TestCompactRotates: after Compact the log holds exactly the checkpoint
// plus the snapshot, the file shrank, appends continue into the new
// generation, and a reopen replays O(live) records.
func TestCompactRotates(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("j%06d", i+1)
		if err := j.Append(accepted(id, "CG")); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(finished(id, "done")); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Stats()
	if before.LiveRecords != 400 {
		t.Fatalf("pre-compaction live records %d, want 400", before.LiveRecords)
	}

	// The live store retained only the last two jobs.
	snap := []Record{
		accepted("j000199", "CG"), finished("j000199", "done"),
		accepted("j000200", "CG"), finished("j000200", "done"),
	}
	if err := j.Compact(snapFor(snap...)); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := j.Stats()
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", after.Compactions)
	}
	if after.LiveRecords != 5 { // checkpoint + 4 snapshot records
		t.Fatalf("post-compaction live records %d, want 5", after.LiveRecords)
	}
	if after.SizeBytes >= before.SizeBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.SizeBytes, after.SizeBytes)
	}
	// Appends continue into the rotated log.
	if err := j.Append(accepted("j000201", "EP")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, path)
	defer j2.Close()
	if len(recs) != 6 {
		t.Fatalf("compacted journal replayed %d records, want 6", len(recs))
	}
	if recs[0].Op != OpCheckpoint || recs[0].Live != 4 {
		t.Fatalf("first replayed record is not the checkpoint: %+v", recs[0])
	}
	if recs[5].ID != "j000201" || recs[5].Op != OpAccepted {
		t.Fatalf("post-compaction append lost: %+v", recs[5])
	}
	// On-disk file must be v2 and small.
	head := make([]byte, 4)
	f, _ := os.Open(path)
	io.ReadFull(f, head)
	f.Close()
	if string(head) != magic {
		t.Fatalf("rotated log magic %q, want %q", head, magic)
	}
}

// TestNeedsCompactionThrashGuard: a store that exceeds the byte threshold
// even when fully compacted must not re-trigger on every append — the log
// has to double past its post-compaction baseline first.
func TestNeedsCompactionThrashGuard(t *testing.T) {
	path := tmpJournal(t)
	j, _, err := OpenWith(path, Options{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	snap := []Record{accepted("j000001", "CG"), finished("j000001", "done")}
	for _, r := range snap {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if !j.NeedsCompaction() {
		t.Fatal("1-byte threshold did not trigger")
	}
	if err := j.Compact(snapFor(snap...)); err != nil {
		t.Fatal(err)
	}
	// Still over MaxBytes, but freshly compacted: no thrash.
	if j.NeedsCompaction() {
		t.Fatal("NeedsCompaction immediately after compaction")
	}
	// Doubling the log re-arms the trigger.
	base := j.Stats().SizeBytes
	for j.Stats().SizeBytes < 2*base {
		if err := j.Append(accepted("j000009", "EP")); err != nil {
			t.Fatal(err)
		}
	}
	if !j.NeedsCompaction() {
		t.Fatal("doubled log did not re-trigger compaction")
	}
}

// TestCompactCrashDrill: a crash injected between the checkpoint write
// and the rename leaves the OLD log authoritative; a crash after the
// rename leaves the NEW log. Either way the next Open recovers exactly
// one consistent store — no blend, no loss, and no stray temp file.
func TestCompactCrashDrill(t *testing.T) {
	old := []Record{
		accepted("j000001", "CG"), finished("j000001", "done"),
		accepted("j000002", "EP"),
	}
	snap := []Record{accepted("j000002", "EP")}

	build := func(t *testing.T) string {
		path := tmpJournal(t)
		j, _ := mustOpen(t, path)
		for _, r := range old {
			if err := j.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Note: build leaks the first Journal deliberately — the "process"
	// dies mid-compaction, so nothing closes cleanly.

	t.Run("before-rename", func(t *testing.T) {
		path := build(t)
		j, _ := mustOpen(t, path)
		testHookCompactCrash = func(stage string) bool { return stage == "written" }
		defer func() { testHookCompactCrash = nil }()
		if err := j.Compact(snapFor(snap...)); err != errCompactAborted {
			t.Fatalf("Compact = %v, want abort", err)
		}
		if _, err := os.Stat(compactTmpPath(path)); err != nil {
			t.Fatal("crash-before-rename should leave the staged temp file")
		}
		j2, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		if len(recs) != len(old) {
			t.Fatalf("recovered %d records, want the old log's %d", len(recs), len(old))
		}
		for i := range old {
			if recs[i].ID != old[i].ID || recs[i].Op != old[i].Op {
				t.Fatalf("record %d: %+v, want %+v", i, recs[i], old[i])
			}
		}
		if _, err := os.Stat(compactTmpPath(path)); !os.IsNotExist(err) {
			t.Fatal("Open did not clear the stray compaction temp")
		}
	})

	t.Run("after-rename", func(t *testing.T) {
		path := build(t)
		j, _ := mustOpen(t, path)
		testHookCompactCrash = func(stage string) bool { return stage == "renamed" }
		defer func() { testHookCompactCrash = nil }()
		if err := j.Compact(snapFor(snap...)); err != errCompactAborted {
			t.Fatalf("Compact = %v, want abort", err)
		}
		j2, recs, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		if len(recs) != 2 || recs[0].Op != OpCheckpoint || recs[1].ID != "j000002" {
			t.Fatalf("recovered %+v, want checkpoint + snapshot", recs)
		}
	})
}

// TestCompactionDifferential: restoring from a compacted log and from the
// uncompacted log it replaced yields the same record set (the journal's
// half of the restore(compacted) == restore(uncompacted) invariant; the
// server test covers the store half).
func TestCompactionDifferential(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	// Live store: one done (with result), one failed, one still queued.
	live := []Record{
		accepted("j000001", "CG"), finished("j000001", "done"),
		accepted("j000002", "EP"),
		{Op: OpFinished, ID: "j000002", Time: time.Unix(201, 0).UTC(), State: "failed", Error: "boom"},
		accepted("j000003", "MG"),
	}
	for _, r := range live {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	uncompacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(snapFor(live...)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fromOld, _, _ := Replay(uncompacted)
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromNew, consumed, rerr := Replay(compacted)
	if rerr != nil || consumed != len(compacted) {
		t.Fatalf("compacted log replay: %v (consumed %d/%d)", rerr, consumed, len(compacted))
	}
	// Strip the checkpoint marker; the job records must match 1:1.
	var jobRecs []Record
	for _, r := range fromNew {
		if r.Op != OpCheckpoint {
			jobRecs = append(jobRecs, r)
		}
	}
	if len(jobRecs) != len(fromOld) {
		t.Fatalf("compacted replay has %d job records, uncompacted %d", len(jobRecs), len(fromOld))
	}
	for i := range fromOld {
		a, _ := json.Marshal(fromOld[i])
		b, _ := json.Marshal(jobRecs[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("record %d differs:\nuncompacted %s\ncompacted   %s", i, a, b)
		}
	}
}

// bigResult builds a JSON result payload of roughly n bytes.
func bigResult(n int) json.RawMessage {
	return json.RawMessage(`{"notes":"` + strings.Repeat("x", n) + `"}`)
}

// TestOversizedResultSpills: a finished record whose result exceeds the
// record cap is journaled as a hash + spill file, replays with the ref,
// and the spilled bytes read back verified.
func TestOversizedResultSpills(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	big := bigResult(2 << 20) // 2MiB, double the record cap
	rec := Record{Op: OpFinished, ID: "j000001", Time: time.Unix(200, 0).UTC(),
		State: "done", Result: big}
	if err := j.Append(rec); err != nil {
		t.Fatalf("oversized append should spill, got %v", err)
	}
	st := j.Stats()
	if st.SpillFiles != 1 || st.SpillBytes != int64(len(big)) {
		t.Fatalf("spill counters %+v, want 1 file of %d bytes", st, len(big))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].ResultRef == "" || len(recs[0].Result) != 0 {
		t.Fatalf("spilled record replayed as %+v", recs[0])
	}
	got, err := j2.ReadSpill(recs[0].ResultRef)
	if err != nil {
		t.Fatalf("ReadSpill: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("spill round-trip lost data: %d bytes, want %d", len(got), len(big))
	}
	if st := j2.Stats(); st.SpillFiles != 1 {
		t.Fatalf("reopen did not rescan spill dir: %+v", st)
	}

	// A corrupted spill file must fail its content hash, and refs that
	// are not hex hashes must never touch the filesystem.
	spillPath := filepath.Join(j2.SpillDir(), recs[0].ResultRef)
	if err := os.WriteFile(spillPath, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j2.ReadSpill(recs[0].ResultRef); err == nil {
		t.Fatal("tampered spill passed its hash check")
	}
	for _, ref := range []string{"../escape", "..", "abc", strings.Repeat("Z", 64)} {
		if _, err := j2.ReadSpill(ref); err == nil {
			t.Fatalf("invalid ref %q accepted", ref)
		}
	}
}

// TestCompactionGCsSpills: compaction deletes spill files the snapshot no
// longer references and keeps the ones it does.
func TestCompactionGCsSpills(t *testing.T) {
	path := tmpJournal(t)
	j, _ := mustOpen(t, path)
	keepRes := bigResult(1 << 21)
	dropRes := bigResult(3 << 20)
	liveRec := Record{Op: OpFinished, ID: "j000001", Time: time.Unix(200, 0).UTC(), State: "done", Result: keepRes}
	deadRec := Record{Op: OpFinished, ID: "j000002", Time: time.Unix(201, 0).UTC(), State: "done", Result: dropRes}
	if err := j.Append(liveRec); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(deadRec); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.SpillFiles != 2 {
		t.Fatalf("want 2 spill files, got %+v", st)
	}
	// Snapshot keeps only job 1 (job 2 was evicted from the store).
	if err := j.Compact(snapFor(
		accepted("j000001", "CG"), liveRec,
	)); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SpillFiles != 1 || st.SpillBytes != int64(len(keepRes)) {
		t.Fatalf("GC left %+v, want exactly the referenced spill", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The surviving spill still resolves after reopen.
	j2, recs := mustOpen(t, path)
	defer j2.Close()
	var ref string
	for _, r := range recs {
		if r.ResultRef != "" {
			ref = r.ResultRef
		}
	}
	if ref == "" {
		t.Fatalf("no spill ref in compacted replay: %+v", recs)
	}
	if got, err := j2.ReadSpill(ref); err != nil || !bytes.Equal(got, keepRes) {
		t.Fatalf("kept spill unreadable after compaction: %v", err)
	}
}

// TestCloseFlusherRace: Append and Sync racing Close must never write
// through a closed descriptor (flushLocked is a no-op once closed) and
// must never deadlock. Run under -race.
func TestCloseFlusherRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("j%d.bin", i))
		j, _ := mustOpen(t, path)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; ; k++ {
					select {
					case <-stop:
						return
					default:
					}
					j.Append(accepted(fmt.Sprintf("j%02d%04d", g, k), "CG"))
					if k%7 == 0 {
						j.Sync()
					}
				}
			}(g)
		}
		time.Sleep(time.Millisecond)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		// Post-close appends fail cleanly; the file replays consistently.
		if err := j.Append(accepted("j999999", "CG")); err == nil {
			t.Fatal("append after close succeeded")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, consumed, rerr := Replay(data); rerr != nil || consumed != len(data) {
			t.Fatalf("post-race journal inconsistent: %v (consumed %d/%d)", rerr, consumed, len(data))
		}
	}
}

// BenchmarkBootReplay measures what compaction buys at boot: Open over a
// long-history log versus the same store after one Compact. The history
// holds 25k settled jobs (50k records); the live store retains the last
// 512 of them — the EXPERIMENTS.md before/after numbers come from here.
func BenchmarkBootReplay(b *testing.B) {
	const jobs, live = 25000, 512
	res := json.RawMessage(`{"instrs":4849665,"deps":11,"cus":4,"elapsed_ms":55.3,"suggestions":[{"rank":1,"kind":"DOALL","loc":"3:7","coverage":0.92,"speedup":14.1,"imbalance":0.02,"score":11.8}]}`)
	build := func(b *testing.B, compact bool) string {
		path := filepath.Join(b.TempDir(), "jobs.journal")
		j, _, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		var snap []Record
		for i := 0; i < jobs; i++ {
			id := fmt.Sprintf("j%06d", i+1)
			acc := Record{Op: OpAccepted, ID: id, Time: time.Unix(int64(i), 0).UTC(), Workload: "histogram", Client: "bench"}
			fin := Record{Op: OpFinished, ID: id, Time: time.Unix(int64(i), 1).UTC(), State: "done", Result: res}
			if err := j.Append(acc); err != nil {
				b.Fatal(err)
			}
			if err := j.Append(fin); err != nil {
				b.Fatal(err)
			}
			if i >= jobs-live {
				snap = append(snap, acc, fin)
			}
		}
		if compact {
			if err := j.Compact(func() []Record { return snap }); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		return path
	}
	for _, bc := range []struct {
		name    string
		compact bool
	}{{"uncompacted-50k-records", false}, {"compacted-512-live", true}} {
		b.Run(bc.name, func(b *testing.B) {
			path := build(b, bc.compact)
			if fi, err := os.Stat(path); err == nil {
				b.ReportMetric(float64(fi.Size()), "file-bytes")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j, recs, err := Open(path)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(recs)), "records")
				j.Close()
			}
		})
	}
}

// repeatReader yields prefix then frame repeated count times, without
// materializing the stream.
type repeatReader struct {
	prefix []byte
	frame  []byte
	count  int // frames remaining (including the partially-read one)
	off    int // offset into the current chunk
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if len(r.prefix) > 0 {
		n := copy(p, r.prefix)
		r.prefix = r.prefix[n:]
		return n, nil
	}
	if r.count == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	if r.off == len(r.frame) {
		r.off = 0
		r.count--
	}
	return n, nil
}

// TestReplayStreamsPast2GiB is the regression for the v1 Open bug: replay
// went through io.LimitReader(f, 1<<31), so a journal past 2 GiB had its
// valid tail silently dropped — and then destructively truncated on disk.
// The streaming replayer must consume a synthetic >2 GiB record stream
// completely. (~2 GiB flows through CRC + JSON decoding; skipped in
// -short runs.)
func TestReplayStreamsPast2GiB(t *testing.T) {
	if testing.Short() {
		t.Skip("2 GiB stream replay is a full-mode regression test")
	}
	one := frame(t, Record{Op: OpFinished, ID: "j000001", Time: time.Unix(200, 0).UTC(),
		State: "done", Result: bigResult(MaxRecordBytes - 1024)})
	count := int(int64(1)<<31/int64(len(one))) + 2 // just past the old 2 GiB ceiling
	r := &repeatReader{prefix: []byte(magic), frame: one, count: count}

	recs, consumed, err := replayStream(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		t.Fatalf("streaming replay errored at offset %d: %v", consumed, err)
	}
	if consumed <= 1<<31 {
		t.Fatalf("stream consumed only %d bytes, never crossed the 2 GiB boundary", consumed)
	}
	if len(recs) != count {
		t.Fatalf("replayed %d records, want %d — the tail was dropped", len(recs), count)
	}
}
