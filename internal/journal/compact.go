package journal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Snapshot + truncate compaction. The caller owns the live state (the
// server's bounded record store); the journal owns the rotation protocol:
//
//  1. snap() is called under the journal lock, so the snapshot and the
//     append stream cannot interleave — every record appended before
//     Compact acquired the lock is superseded by the snapshot, and every
//     append that arrives while compaction runs lands in the new log.
//  2. A fresh log is written to <path>.compact: v2 magic, one checkpoint
//     marker, then the snapshot records (results too large for a record
//     spill exactly as live appends do).
//  3. The temp file is fsynced, atomically renamed over the old log, and
//     the directory is fsynced, so a crash leaves exactly one of the two
//     logs — never a blend. Open removes a stray temp from a crash
//     between steps 2 and 3.
//  4. Spill files not referenced by the snapshot are garbage-collected.
//
// Boot replay after a compaction is O(live records): the checkpoint
// supersedes the history that used to be replayed on every start.

// compactTmpPath is where the replacement log is staged before the
// atomic rename.
func compactTmpPath(path string) string { return path + ".compact" }

// testHookCompactCrash, when non-nil, simulates a crash at the named
// stage ("written" = temp staged and synced, rename not issued;
// "renamed" = rename done, in-memory swap not done). Returning true
// aborts Compact there, leaving the on-disk state exactly as a power
// loss at that instant would.
var testHookCompactCrash func(stage string) bool

// errCompactAborted is returned by Compact when the crash hook fired.
var errCompactAborted = errors.New("journal: compaction aborted by test hook")

// Compact rotates the log: snap's records become the entire journal
// content, preceded by a checkpoint marker. Pending buffered appends are
// discarded — the snapshot is taken after them, so it supersedes them.
// On any error before the rename the old log remains authoritative and
// the journal keeps appending to it.
func (j *Journal) Compact(snap func() []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: compact on closed journal")
	}
	if j.err != nil {
		return j.err
	}
	recs := snap()

	tmp := compactTmpPath(j.path)
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: stage compaction: %w", err)
	}
	abort := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}

	w := bufio.NewWriterSize(nf, 1<<20)
	if _, err := w.WriteString(magic); err != nil {
		return abort(err)
	}
	size := int64(len(magic))
	keep := map[string]bool{}
	marker := Record{Op: OpCheckpoint, Time: time.Now().UTC(), Live: len(recs)}
	frame, _, err := j.frameLocked(marker)
	if err != nil {
		return abort(err)
	}
	if _, err := w.Write(frame); err != nil {
		return abort(err)
	}
	size += int64(len(frame))
	for _, rec := range recs {
		frame, ref, err := j.frameLocked(rec)
		if err != nil {
			return abort(fmt.Errorf("journal: compact record %s/%s: %w", rec.Op, rec.ID, err))
		}
		if ref != "" {
			keep[ref] = true
		}
		if _, err := w.Write(frame); err != nil {
			return abort(err)
		}
		size += int64(len(frame))
	}
	if err := w.Flush(); err != nil {
		return abort(err)
	}
	if err := nf.Sync(); err != nil {
		return abort(err)
	}

	if testHookCompactCrash != nil && testHookCompactCrash("written") {
		nf.Close()
		return errCompactAborted // temp left behind, as a crash would
	}

	if err := os.Rename(tmp, j.path); err != nil {
		return abort(fmt.Errorf("journal: rotate log: %w", err))
	}
	// Make the rename durable: fsync the containing directory.
	if d, err := os.Open(filepath.Dir(j.path)); err == nil {
		d.Sync()
		d.Close()
	}

	if testHookCompactCrash != nil && testHookCompactCrash("renamed") {
		nf.Close()
		return errCompactAborted
	}

	// The new log is live: swap descriptors and reset the generation
	// accounting. nf is positioned at the end from the writes above.
	j.f.Close()
	j.f = nf
	j.buf = j.buf[:0]
	j.dirty = false
	j.size = size
	j.records = int64(len(recs)) + 1 // snapshot + checkpoint marker
	j.lastCompactSize = size
	j.lastCompactRecs = j.records
	j.compactions.Add(1)

	j.gcSpillLocked(keep)
	return nil
}
