package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
	"time"
)

// frame encodes one record the way Append does, for building seed inputs.
func frame(t interface{ Fatal(...any) }, rec Record) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[frameHeader:], payload)
	return out
}

// FuzzJournalReplay feeds arbitrary bytes to the replayer — the exact
// situation after a crash, when the decoder's input is whatever the disk
// holds. Replay must never panic, never claim more input than it was
// given, and every record it does return must round-trip through the
// writer's own framing (so a "recovered" record is always one a writer
// could have produced).
func FuzzJournalReplay(f *testing.F) {
	ts := time.Unix(1700000000, 0).UTC()
	full := func(recs ...Record) []byte {
		out := []byte(magic)
		for _, r := range recs {
			out = append(out, frame(f, r)...)
		}
		return out
	}

	// Seeds: the shapes the server actually writes, plus the crash shapes
	// replay exists for.
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(full(Record{Op: OpAccepted, ID: "j000001", Time: ts,
		Workload: "CG", Scale: 2, Client: "alice", IdemKey: "key-1"}))
	f.Add(full(
		Record{Op: OpAccepted, ID: "j000001", Time: ts, Workload: "histogram", Client: "bob"},
		Record{Op: OpStarted, ID: "j000001", Time: ts},
		Record{Op: OpFinished, ID: "j000001", Time: ts, State: "done",
			Result: json.RawMessage(`{"instrs":42,"deps":7,"cus":3,"suggestions":[]}`)},
	))
	f.Add(full(
		Record{Op: OpAccepted, ID: "j000002", Time: ts, Workload: "EP"},
		Record{Op: OpFinished, ID: "j000002", Time: ts, State: "failed", Error: "instruction budget exhausted"},
	))
	// Torn tail: a full record then half of another.
	torn := full(Record{Op: OpAccepted, ID: "j000003", Time: ts, Workload: "CG"})
	torn = append(torn, frame(f, Record{Op: OpFinished, ID: "j000003", Time: ts, State: "done"})[:5]...)
	f.Add(torn)
	// Bit-flipped payload byte.
	flipped := full(Record{Op: OpAccepted, ID: "j000004", Time: ts, Workload: "CG"})
	flipped[len(flipped)-2] ^= 0x20
	f.Add(flipped)
	// Garbage after the magic, and an implausible length prefix.
	f.Add(append([]byte(magic), []byte("!!!! certainly not a frame")...))
	f.Add(append([]byte(magic), 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4))
	// v2 shapes: a compacted log (history, checkpoint marker, snapshot)
	// and a spilled result carrying its hash ref instead of inline bytes.
	f.Add(full(
		Record{Op: OpAccepted, ID: "j000005", Time: ts, Workload: "CG"},
		Record{Op: OpFinished, ID: "j000005", Time: ts, State: "done"},
		Record{Op: OpCheckpoint, Time: ts, Live: 1},
		Record{Op: OpAccepted, ID: "j000006", Time: ts, Workload: "MG"},
	))
	f.Add(full(Record{Op: OpFinished, ID: "j000007", Time: ts, State: "done",
		ResultRef: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"}))
	// A v1-magic log must keep replaying under the v2 reader.
	v1 := []byte(magicV1)
	v1 = append(v1, frame(f, Record{Op: OpAccepted, ID: "j000008", Time: ts, Workload: "EP"})...)
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, _ := Replay(data) // must not panic
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if len(recs) > 0 && consumed == 0 {
			t.Fatalf("returned %d records but consumed nothing", len(recs))
		}
		// Every recovered record re-frames to bytes Replay accepts again:
		// recovery is a fixed point, so a rewritten journal replays
		// identically.
		if len(recs) > 0 {
			rewritten := []byte(magic)
			for _, r := range recs {
				rewritten = append(rewritten, frame(t, r)...)
			}
			again, consumed2, err := Replay(rewritten)
			if err != nil || consumed2 != len(rewritten) || len(again) != len(recs) {
				t.Fatalf("re-framed journal did not replay cleanly: %d/%d records, err %v",
					len(again), len(recs), err)
			}
			for i := range recs {
				a, _ := json.Marshal(recs[i])
				b, _ := json.Marshal(again[i])
				if !bytes.Equal(a, b) {
					t.Fatalf("record %d changed across re-frame:\n%s\n%s", i, a, b)
				}
			}
		}
	})
}
