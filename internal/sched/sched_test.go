package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func clampI(v int64, lo, hi int64) int64 {
	v %= hi - lo + 1
	if v < 0 {
		v += hi - lo + 1
	}
	return lo + v
}

func clampF(v float64, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	v = math.Mod(math.Abs(v), hi-lo)
	return lo + v
}

func TestDOALLSpeedupBounds(t *testing.T) {
	f := func(iters int64, perIter float64, p int64) bool {
		it := clampI(iters, 1, 10000)
		pi := clampF(perIter, 0.1, 1000)
		pp := int(clampI(p, 1, 64))
		sp := DOALLSpeedup(it, pi, pp, 0.02)
		return sp >= 1-1e-9 && sp <= float64(pp)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDOALLSpeedupNearLinear(t *testing.T) {
	sp := DOALLSpeedup(10000, 1, 8, 0)
	if math.Abs(sp-8) > 0.1 {
		t.Fatalf("10000 iterations on 8 workers = %f, want ~8", sp)
	}
}

func TestDOALLSpeedupFewIterations(t *testing.T) {
	// 3 iterations on 8 workers: at most 3x.
	sp := DOALLSpeedup(3, 1, 8, 0)
	if sp > 3+1e-9 {
		t.Fatalf("3 iterations speedup %f exceeds iteration bound", sp)
	}
}

func TestAmdahl(t *testing.T) {
	cases := []struct {
		seq  float64
		p    int
		want float64
	}{
		{0, 8, 8},
		{1, 64, 1},
		{0.5, 1000, 1.996},
	}
	for _, c := range cases {
		got := AmdahlSpeedup(c.seq, c.p)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("Amdahl(%f, %d) = %f, want %f", c.seq, c.p, got, c.want)
		}
	}
}

func TestListScheduleChain(t *testing.T) {
	// A dependent chain cannot parallelize.
	tasks := []Task{{Work: 1}, {Work: 2, Deps: []int{0}}, {Work: 3, Deps: []int{1}}}
	ms, seq := ListSchedule(tasks, 8)
	if ms != 6 || seq != 6 {
		t.Fatalf("chain: makespan=%f seq=%f, want 6, 6", ms, seq)
	}
}

func TestListScheduleIndependent(t *testing.T) {
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i].Work = 1
	}
	ms, _ := ListSchedule(tasks, 4)
	if ms != 2 {
		t.Fatalf("8 unit tasks on 4 workers: makespan=%f, want 2", ms)
	}
	ms, _ = ListSchedule(tasks, 8)
	if ms != 1 {
		t.Fatalf("8 unit tasks on 8 workers: makespan=%f, want 1", ms)
	}
}

func TestListScheduleDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3 with weights 1, 4, 4, 1: cp = 6.
	tasks := []Task{
		{Work: 1},
		{Work: 4, Deps: []int{0}},
		{Work: 4, Deps: []int{0}},
		{Work: 1, Deps: []int{1, 2}},
	}
	ms, seq := ListSchedule(tasks, 2)
	if ms != 6 {
		t.Fatalf("diamond on 2 workers: makespan=%f, want 6", ms)
	}
	if seq != 10 {
		t.Fatalf("diamond sequential work=%f, want 10", seq)
	}
}

// TestListScheduleBounds: makespan is between max(cp, work/p) and work,
// for random DAGs — the fundamental scheduling envelope.
func TestListScheduleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		p := 1 + rng.Intn(8)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i].Work = float64(1 + rng.Intn(9))
			for d := 0; d < i; d++ {
				if rng.Intn(4) == 0 {
					tasks[i].Deps = append(tasks[i].Deps, d)
				}
			}
		}
		ms, seq := ListSchedule(tasks, p)
		if ms > seq+1e-9 {
			t.Fatalf("trial %d: makespan %f exceeds sequential %f", trial, ms, seq)
		}
		if ms < seq/float64(p)-1e-9 {
			t.Fatalf("trial %d: makespan %f beats perfect speedup (%f/%d)", trial, ms, seq, p)
		}
		// Greedy list scheduling is a 2-approximation: ms <= seq/p + cp
		// <= 2 * optimal; sanity check against the coarse bound.
		if ms > 2*seq {
			t.Fatalf("trial %d: makespan %f insane", trial, ms)
		}
	}
}

func TestListScheduleCycleFallsBack(t *testing.T) {
	tasks := []Task{{Work: 1, Deps: []int{1}}, {Work: 1, Deps: []int{0}}}
	ms, seq := ListSchedule(tasks, 4)
	if ms != seq {
		t.Fatalf("cyclic input not treated as sequential: %f vs %f", ms, seq)
	}
}

func TestTaskGraphSpeedup(t *testing.T) {
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i].Work = 1
	}
	sp := TaskGraphSpeedup(tasks, 4)
	if math.Abs(sp-4) > 1e-9 {
		t.Fatalf("16 independent tasks on 4 workers = %f, want 4", sp)
	}
}

func TestPipelineSpeedupBounds(t *testing.T) {
	f := func(seqW, parW float64, items, p int64) bool {
		sw := clampF(seqW, 0.1, 1e6)
		pw := clampF(parW, 0.1, 1e6)
		it := clampI(items, 1, 1000)
		pp := int(clampI(p, 1, 64))
		sp := PipelineSpeedup([]float64{sw, pw}, []bool{true, false}, it, pp)
		return sp >= 1-1e-9 && sp <= float64(pp)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSpeedupImprovesWithItems(t *testing.T) {
	few := PipelineSpeedup([]float64{1, 9}, []bool{true, false}, 2, 8)
	many := PipelineSpeedup([]float64{1, 9}, []bool{true, false}, 1000, 8)
	if many < few {
		t.Fatalf("pipeline speedup fell with more items: %f -> %f", few, many)
	}
}

func TestScalingCurveMonotone(t *testing.T) {
	threads := []int{1, 2, 4, 8, 16, 32}
	curve := ScalingCurve(threads, func(p int) float64 {
		return AmdahlSpeedup(0.07, p)
	})
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	if curve[len(curve)-1] < 8 || curve[len(curve)-1] > 12 {
		t.Fatalf("Amdahl(0.07) at 32 threads = %f, want ~9-10", curve[len(curve)-1])
	}
}
