// Package sched is the speedup-estimation substrate standing in for the
// paper's manual parallelization experiments on a 16/32-core testbed
// (Tables 4.2, 4.5, 4.7 and Figure 4.11). It simulates executing the
// dependence structure a suggestion exposes — independent loop iterations,
// task graphs, or pipelines — on P workers with a greedy list scheduler,
// returning the speedup the structure implies. Absolute wall-clock numbers
// are testbed properties; who speeds up, by roughly what factor, and where
// scaling saturates are properties of the dependence structure, which is
// what this simulator evaluates.
package sched

import (
	"container/heap"
	"math"
)

// DOALLSpeedup returns the speedup of running iters independent iterations
// of perIter work each on p workers, with a per-task scheduling overhead
// fraction (relative to perIter work, e.g. 0.02 for 2%).
func DOALLSpeedup(iters int64, perIter float64, p int, overhead float64) float64 {
	if iters == 0 || perIter == 0 || p <= 1 {
		return 1
	}
	seq := float64(iters) * perIter
	perTask := perIter * (1 + overhead)
	chunks := math.Ceil(float64(iters) / float64(p))
	par := chunks * perTask
	if par <= 0 {
		return 1
	}
	return seq / par
}

// AmdahlSpeedup returns Amdahl's bound for a program with the given
// sequential fraction on p workers.
func AmdahlSpeedup(seqFraction float64, p int) float64 {
	return 1 / (seqFraction + (1-seqFraction)/float64(p))
}

// Task is one node of a task graph to schedule.
type Task struct {
	Work float64
	Deps []int // indices of tasks that must finish first
}

// ListSchedule runs greedy list scheduling of the task DAG on p workers and
// returns (makespan, sequentialWork). Ready tasks are started on the
// earliest-available worker, heaviest first.
func ListSchedule(tasks []Task, p int) (makespan, seqWork float64) {
	n := len(tasks)
	if n == 0 || p < 1 {
		return 0, 0
	}
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, t := range tasks {
		seqWork += t.Work
		for _, d := range t.Deps {
			succs[d] = append(succs[d], i)
			indeg[i]++
		}
	}
	finish := make([]float64, n)
	// Worker availability min-heap.
	workers := make(workerHeap, p)
	heap.Init(&workers)
	// Ready queue ordered by descending work (LPT heuristic), tie-broken
	// by index for determinism.
	ready := &taskHeap{tasks: tasks}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(ready, i)
		}
	}
	// Earliest time each task becomes ready (all deps finished).
	readyAt := make([]float64, n)
	scheduled := 0
	for ready.Len() > 0 {
		ti := heap.Pop(ready).(int)
		w := heap.Pop(&workers).(float64)
		start := math.Max(w, readyAt[ti])
		finish[ti] = start + tasks[ti].Work
		heap.Push(&workers, finish[ti])
		if finish[ti] > makespan {
			makespan = finish[ti]
		}
		scheduled++
		for _, s := range succs[ti] {
			if finish[ti] > readyAt[s] {
				readyAt[s] = finish[ti]
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, s)
			}
		}
	}
	if scheduled != n {
		// Cyclic input: treat as fully sequential.
		return seqWork, seqWork
	}
	return makespan, seqWork
}

// TaskGraphSpeedup returns seqWork / makespan for the task DAG on p workers.
func TaskGraphSpeedup(tasks []Task, p int) float64 {
	ms, seq := ListSchedule(tasks, p)
	if ms == 0 {
		return 1
	}
	return seq / ms
}

// PipelineSpeedup models a DOACROSS/pipeline execution: items flow through
// stages with the given per-item stage weights; sequential stages (marked
// true) process items one at a time in order, parallel stages use all
// remaining workers. The classic bound is
// seq / (fill + items * bottleneckStage).
func PipelineSpeedup(stageWeights []float64, sequentialStage []bool, items int64, p int) float64 {
	if len(stageWeights) == 0 || items == 0 {
		return 1
	}
	var perItem float64
	for _, w := range stageWeights {
		perItem += w
	}
	seq := perItem * float64(items)
	if p <= 1 {
		return 1
	}
	// Effective stage time: a parallel stage with k workers processes k
	// items concurrently. Distribute the p workers: one per sequential
	// stage, remainder split over parallel stages.
	nSeq := 0
	for _, s := range sequentialStage {
		if s {
			nSeq++
		}
	}
	nPar := len(stageWeights) - nSeq
	parWorkers := p - nSeq
	if parWorkers < 1 {
		parWorkers = 1
	}
	bottleneck := 0.0
	for i, w := range stageWeights {
		eff := w
		if !sequentialStage[i] && nPar > 0 {
			share := float64(parWorkers) / float64(nPar)
			if share > 1 {
				eff = w / share
			}
		}
		if eff > bottleneck {
			bottleneck = eff
		}
	}
	fill := perItem // one pass through the pipeline
	par := fill + bottleneck*float64(items-1)
	if par <= 0 {
		return 1
	}
	sp := seq / par
	return math.Max(1, math.Min(sp, float64(p)))
}

// ScalingCurve evaluates a speedup function at the given thread counts —
// used to regenerate figures like 4.11 (speedup vs. number of threads).
func ScalingCurve(threads []int, f func(p int) float64) []float64 {
	out := make([]float64, len(threads))
	for i, p := range threads {
		out[i] = f(p)
	}
	return out
}

type workerHeap []float64

func (h workerHeap) Len() int            { return len(h) }
func (h workerHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type taskHeap struct {
	tasks []Task
	idx   []int
}

func (h *taskHeap) Len() int { return len(h.idx) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	if h.tasks[a].Work != h.tasks[b].Work {
		return h.tasks[a].Work > h.tasks[b].Work
	}
	return a < b
}
func (h *taskHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *taskHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *taskHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}
