package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCounterAndGaugeRendering(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Counter("dp_jobs_total", "Jobs completed.", V(42))
	e.Gauge("dp_inflight", "Queued or running.", V(3))
	e.Counter("dp_stage_seconds_total", "Per-stage wall time.",
		LV(1.5, L("stage", "profile")), LV(0.25, L("stage", "rank")))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dp_jobs_total Jobs completed.
# TYPE dp_jobs_total counter
dp_jobs_total 42
# HELP dp_inflight Queued or running.
# TYPE dp_inflight gauge
dp_inflight 3
# HELP dp_stage_seconds_total Per-stage wall time.
# TYPE dp_stage_seconds_total counter
dp_stage_seconds_total{stage="profile"} 1.5
dp_stage_seconds_total{stage="rank"} 0.25
`
	if buf.String() != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestHistogramRenderingIsCumulative(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Histogram("lat_seconds", "Latency.", Histogram{
		UpperBounds: []float64{0.001, 0.01, 0.1},
		Counts:      []int64{2, 0, 5, 1}, // per-bucket, tail last
		Sum:         0.75,
	})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.001"} 2
lat_seconds_bucket{le="0.01"} 2
lat_seconds_bucket{le="0.1"} 7
lat_seconds_bucket{le="+Inf"} 8
lat_seconds_sum 0.75
lat_seconds_count 8
`
	if buf.String() != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	check := func(name string, f func(e *Encoder)) {
		t.Helper()
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		f(e)
		if e.Err() == nil {
			t.Errorf("%s: no error", name)
		}
	}
	check("bad metric name", func(e *Encoder) { e.Counter("1bad", "", V(1)) })
	check("empty name", func(e *Encoder) { e.Gauge("", "", V(1)) })
	check("duplicate family", func(e *Encoder) {
		e.Counter("a_total", "", V(1))
		e.Counter("a_total", "", V(2))
	})
	check("negative counter", func(e *Encoder) { e.Counter("a_total", "", V(-1)) })
	check("NaN counter", func(e *Encoder) { e.Counter("a_total", "", V(math.NaN())) })
	check("bad label name", func(e *Encoder) { e.Gauge("g", "", LV(1, L("0x", "v"))) })
	check("histogram count/bound mismatch", func(e *Encoder) {
		e.Histogram("h", "", Histogram{UpperBounds: []float64{1}, Counts: []int64{1}})
	})
	check("histogram negative bucket", func(e *Encoder) {
		e.Histogram("h", "", Histogram{UpperBounds: []float64{1}, Counts: []int64{-1, 0}})
	})
	check("histogram unsorted bounds", func(e *Encoder) {
		e.Histogram("h", "", Histogram{UpperBounds: []float64{1, 1}, Counts: []int64{0, 0, 0}})
	})
}

func TestErrorIsStickyAndStopsOutput(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Counter("bad name!", "", V(1))
	before := buf.Len()
	e.Gauge("fine", "", V(1))
	if buf.Len() != before {
		t.Error("output continued after error")
	}
	if e.Err() == nil || !strings.Contains(e.Err().Error(), "bad name!") {
		t.Errorf("sticky error lost: %v", e.Err())
	}
}

func TestLabelEscapingRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	tricky := "quote\" backslash\\ newline\n end"
	e.Gauge("g", "help with \\ and\nnewline", LV(1, L("k", tricky)))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	s, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	v, ok := s.Value("g", L("k", tricky))
	if !ok || v != 1 {
		t.Errorf("escaped label did not round-trip: %+v", s.Points)
	}
}

func TestParseValidatesFormat(t *testing.T) {
	good := `# HELP a_total help
# TYPE a_total counter
a_total 5
a_total{x="1",y="2"} 6.5
h_bucket{le="+Inf"} 3 1700000000
`
	s, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 || s.Types["a_total"] != "counter" {
		t.Fatalf("parsed %+v", s)
	}
	if v, ok := s.Value("a_total", L("y", "2"), L("x", "1")); !ok || v != 6.5 {
		t.Errorf("label-order-insensitive lookup failed: %v %v", v, ok)
	}
	if v, ok := s.Value("h_bucket", L("le", "+Inf")); !ok || v != 3 {
		t.Errorf("timestamped sample: %v %v", v, ok)
	}

	for _, bad := range []string{
		"no_value\n",
		"1leading_digit 4\n",
		`unterminated{x="y 4` + "\n",
		`badescape{x="\q"} 4` + "\n",
		"name{x=unquoted} 4\n",
		"name notanumber\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

func TestValueFormatting(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Gauge("g", "", LV(math.Inf(1), L("k", "inf")), LV(0.000001, L("k", "small")))
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+Inf") {
		t.Errorf("no +Inf in %q", out)
	}
	s, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("g", L("k", "inf")); !math.IsInf(v, 1) {
		t.Errorf("inf did not round-trip: %v", v)
	}
	if v, _ := s.Value("g", L("k", "small")); v != 0.000001 {
		t.Errorf("small value did not round-trip: %v", v)
	}
}
