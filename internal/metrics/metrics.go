// Package metrics is a small, dependency-free encoder (and strict parser)
// for the Prometheus text exposition format, version 0.0.4 — the format a
// /metrics endpoint serves to a scraper.
//
// It deliberately has no registry and no background state: the engine's
// observability counters (pipeline.FleetStats, cache counters, pool
// counters) are already accumulated elsewhere and snapshotted per scrape,
// so the encoder only renders values it is handed:
//
//	var buf bytes.Buffer
//	e := metrics.NewEncoder(&buf)
//	e.Counter("dp_jobs_completed_total", "Jobs completed.", metrics.V(float64(s.Jobs)))
//	e.Gauge("dp_jobs_inflight", "Queued or running jobs.",
//	    metrics.V(float64(s.Submitted-s.Jobs)))
//	e.Histogram("dp_queue_latency_seconds", "Submit-to-pickup latency.", hist)
//	if err := e.Err(); err != nil { ... }
//
// Families render in call order; each family is emitted exactly once (a
// repeated name is an error, caught by Err). Parse reads the same format
// back for tests and smoke checks.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one measured value of a metric family, with optional labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// V builds an unlabeled sample.
func V(v float64) Sample { return Sample{Value: v} }

// LV builds a labeled sample.
func LV(v float64, labels ...Label) Sample { return Sample{Labels: labels, Value: v} }

// Histogram is the rendered form of a histogram family: per-bucket (not
// cumulative) counts over ascending finite upper bounds, plus the exact sum
// and total count. Counts must have len(UpperBounds)+1 entries — the last
// is the unbounded (+Inf) tail bucket. The encoder accumulates the counts
// into the cumulative le-bounded series the format requires.
type Histogram struct {
	UpperBounds []float64
	Counts      []int64
	Sum         float64
}

// Encoder renders metric families to w in call order. Errors are sticky:
// the first I/O or validation error stops all further output and is
// reported by Err.
type Encoder struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, seen: map[string]bool{}}
}

// Err returns the first error the encoder hit (nil when all output was
// valid and written).
func (e *Encoder) Err() error { return e.err }

// Counter emits a counter family. Counter values must be non-negative,
// and by convention the name should end in "_total".
func (e *Encoder) Counter(name, help string, samples ...Sample) {
	e.family(name, help, "counter", samples, true)
}

// Gauge emits a gauge family.
func (e *Encoder) Gauge(name, help string, samples ...Sample) {
	e.family(name, help, "gauge", samples, false)
}

// Histogram emits a histogram family: cumulative `name_bucket{le="..."}`
// series (always ending in le="+Inf"), then name_sum and name_count.
func (e *Encoder) Histogram(name, help string, h Histogram, labels ...Label) {
	if e.err != nil {
		return
	}
	if err := e.header(name, help, "histogram"); err != nil {
		e.fail(err)
		return
	}
	if len(h.Counts) != len(h.UpperBounds)+1 {
		e.fail(fmt.Errorf("metrics: histogram %s: %d counts for %d bounds (want bounds+1)",
			name, len(h.Counts), len(h.UpperBounds)))
		return
	}
	var cum int64
	for i, c := range h.Counts {
		if c < 0 {
			e.fail(fmt.Errorf("metrics: histogram %s: negative bucket count %d", name, c))
			return
		}
		cum += c
		le := "+Inf"
		if i < len(h.UpperBounds) {
			if i > 0 && h.UpperBounds[i] <= h.UpperBounds[i-1] {
				e.fail(fmt.Errorf("metrics: histogram %s: bounds not ascending at %v", name, h.UpperBounds[i]))
				return
			}
			le = formatValue(h.UpperBounds[i])
		}
		bl := append(append(make([]Label, 0, len(labels)+1), labels...), L("le", le))
		if err := e.sample(name+"_bucket", bl, float64(cum)); err != nil {
			e.fail(err)
			return
		}
	}
	if err := e.sample(name+"_sum", labels, h.Sum); err != nil {
		e.fail(err)
		return
	}
	if err := e.sample(name+"_count", labels, float64(cum)); err != nil {
		e.fail(err)
	}
}

func (e *Encoder) family(name, help, typ string, samples []Sample, counter bool) {
	if e.err != nil {
		return
	}
	if err := e.header(name, help, typ); err != nil {
		e.fail(err)
		return
	}
	for _, s := range samples {
		if counter && (s.Value < 0 || math.IsNaN(s.Value)) {
			e.fail(fmt.Errorf("metrics: counter %s: invalid value %v", name, s.Value))
			return
		}
		if err := e.sample(name, s.Labels, s.Value); err != nil {
			e.fail(err)
			return
		}
	}
}

func (e *Encoder) header(name, help, typ string) error {
	if !validName(name) {
		return fmt.Errorf("metrics: invalid metric name %q", name)
	}
	if e.seen[name] {
		return fmt.Errorf("metrics: duplicate metric family %q", name)
	}
	e.seen[name] = true
	if help != "" {
		if _, err := fmt.Fprintf(e.w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(e.w, "# TYPE %s %s\n", name, typ)
	return err
}

func (e *Encoder) sample(name string, labels []Label, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if !validName(l.Name) {
				return fmt.Errorf("metrics: invalid label name %q on %s", l.Name, name)
			}
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	_, err := io.WriteString(e.w, sb.String())
	return err
}

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// validName reports whether s matches the metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for recording rules but
// legal in the format; label names additionally must not start with __,
// which we don't enforce — the encoder never generates them).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with Inf spelled "+Inf"/"-Inf".
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
