package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is one parsed sample line.
type Point struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed text exposition: every sample line plus the declared
// family types. It exists for tests and smoke checks — a serving path never
// needs to parse its own output.
type Scrape struct {
	Points []Point
	// Types maps family name to its declared TYPE (counter, gauge,
	// histogram, ...).
	Types map[string]string
}

// Value returns the value of the sample with exactly the given name and
// labels. The second result reports whether such a sample exists.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	want := labelKey(labels)
	for _, p := range s.Points {
		if p.Name != name {
			continue
		}
		var pl []Label
		for k, v := range p.Labels {
			pl = append(pl, Label{k, v})
		}
		if labelKey(pl) == want {
			return p.Value, true
		}
	}
	return 0, false
}

func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Parse reads a Prometheus text exposition. It is strict about the subset
// the Encoder emits — malformed sample lines, bad label syntax, or
// unparsable values are errors, so a test scraping /metrics genuinely
// validates the format.
func Parse(r io.Reader) (*Scrape, error) {
	s := &Scrape{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				s.Types[fields[2]] = fields[3]
			}
			continue
		}
		p, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		s.Points = append(s.Points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseSample(line string) (Point, error) {
	p := Point{Labels: map[string]string{}}
	rest := line
	// Metric name runs up to '{', space, or tab.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return p, fmt.Errorf("malformed sample %q", line)
	}
	p.Name = rest[:end]
	if !validName(p.Name) {
		return p, fmt.Errorf("invalid metric name %q", p.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], p.Labels)
		if err != nil {
			return p, fmt.Errorf("%w in %q", err, line)
		}
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; the encoder never writes one, but
	// accept it per the format.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return p, fmt.Errorf("bad value %q in %q", rest, line)
	}
	p.Value = v
	return p, nil
}

// parseLabels consumes `name="value",...}` and returns what follows the
// closing brace.
func parseLabels(rest string, out map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return "", fmt.Errorf("malformed label pair")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("unquoted label value for %q", name)
		}
		val, remaining, err := parseQuoted(rest[1:])
		if err != nil {
			return "", err
		}
		out[name] = val
		rest = strings.TrimLeft(remaining, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if !strings.HasPrefix(rest, "}") {
			return "", fmt.Errorf("missing , or } after label %q", name)
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(s string) (val, rest string, err error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return sb.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			switch s[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c in label value", s[i])
			}
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
