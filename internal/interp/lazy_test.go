package interp

import (
	"sync"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/mem"
)

// buildSeq builds a small single-threaded module: a loop writing a global
// through a function call (so the main thread's stack is exercised too).
func buildSeq() *ir.Module {
	b := ir.NewBuilder("lazy")
	out := b.Global("out", ir.F64)
	f := b.Func("work")
	x := f.Local("x", ir.F64)
	f.Set(x, ir.CI(2))
	f.Set(out, ir.Add(ir.V(out), ir.V(x)))
	fd := f.Done()
	mb := b.Func("main")
	mb.For("i", ir.CI(0), ir.CI(10), ir.CI(1), func(i *ir.Var) {
		mb.Call(fd)
	})
	return b.Build(mb.Done())
}

// TestNewDoesNotAllocateArena: constructing an interpreter materializes no
// memory at all — the 64-stack arena of the old flat layout is gone.
func TestNewDoesNotAllocateArena(t *testing.T) {
	it := New(buildSeq(), nil)
	if fp := it.Space().Footprint(); fp != 0 {
		t.Fatalf("New materialized %d bytes before Run", fp)
	}
}

// TestSingleThreadedMaterializesOneStack: a sequential workload touches
// exactly one of the 64 reserved stack segments.
func TestSingleThreadedMaterializesOneStack(t *testing.T) {
	it := New(buildSeq(), nil)
	it.Run()
	if got := it.Space().StackPagesTouched(); got != 1 {
		t.Fatalf("stack segments materialized = %d, want 1", got)
	}
}

// TestSpawnedThreadsMaterializeTheirStacks: each concurrently live
// simulated thread's first stack touch materializes its own segment — and
// only those. The workers run long enough that all three are live at
// once; dead threads' IDs (and segments) are recycled, so trivially short
// workers may share a segment (see TestThreadIDRecycling).
func TestSpawnedThreadsMaterializeTheirStacks(t *testing.T) {
	b := ir.NewBuilder("mtlazy")
	w := b.Func("worker")
	x := w.Local("x", ir.F64)
	w.For("i", ir.CI(0), ir.CI(8), ir.CI(1), func(i *ir.Var) {
		w.Set(x, ir.Add(ir.V(x), ir.CI(1)))
	})
	wf := w.Done()
	mb := b.Func("main")
	mb.Spawn(wf)
	mb.Spawn(wf)
	mb.Spawn(wf)
	mb.Sync()
	m := b.Build(mb.Done())
	it := New(m, nil)
	it.Run()
	// Three worker stacks; the main thread binds no locals, so even its own
	// stack segment is never materialized.
	if got := it.Space().StackPagesTouched(); got != 3 {
		t.Fatalf("stack segments materialized = %d, want 3", got)
	}
}

// TestRecycledSpaceRunsIdentically: the same module runs to the same state
// on a fresh space and on a pooled space dirtied by a previous run.
func TestRecycledSpaceRunsIdentically(t *testing.T) {
	pool := mem.NewPool()

	run := func(opts ...Option) (int64, float64) {
		m := buildSeq()
		it := New(m, nil, opts...)
		n := it.Run()
		var out float64
		for v, base := range it.globalBase {
			if v.Name == "out" {
				out = it.space.Load(base)
			}
		}
		it.Release()
		return n, out
	}

	nFresh, outFresh := run()
	run(WithPool(pool)) // dirty a pooled space
	nRec, outRec := run(WithPool(pool))
	if nFresh != nRec || outFresh != outRec {
		t.Fatalf("recycled run diverged: (%d, %v) vs (%d, %v)", nRec, outRec, nFresh, outFresh)
	}
}

// TestWithSpaceLayoutMismatchPanics: handing a module a space built for a
// different layout must fail loudly, not remap addresses.
func TestWithSpaceLayoutMismatchPanics(t *testing.T) {
	sp := mem.NewSpace(mem.NewLayout(12345))
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch did not panic")
		}
	}()
	New(buildSeq(), nil, WithSpace(sp))
}

// TestPrepareOpsConcurrentIsRaceFree: numbering runs once per module, so
// concurrent PrepareOps calls (an evicted profile-cache key re-profiling a
// module other jobs still read) must not re-write Op fields. Validated
// under -race.
func TestPrepareOpsConcurrentIsRaceFree(t *testing.T) {
	m := buildSeq()
	want := PrepareOps(m)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := PrepareOps(m); got != want {
				t.Errorf("PrepareOps = %d, want %d", got, want)
			}
		}()
	}
	wg.Wait()
}
