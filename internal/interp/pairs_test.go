package interp

import (
	"testing"

	"discopop/internal/bytecode"
	"discopop/internal/workloads"
)

// TestPairStatsMeasurement exercises the dynamic op-pair profiler that
// drove the superinstruction selection (see DESIGN.md): running the
// registry with WithPairStats accumulates the executed opcode-pair
// frequencies, ranked by Top. The test pins the facility's contract —
// counts accumulate across workloads, the ranking is non-increasing —
// and logs the current top pairs so a rerun after ISA changes shows
// whether the fusion table still matches the dynamic mix.
func TestPairStatsMeasurement(t *testing.T) {
	var stats bytecode.PairStats
	for _, name := range []string{"CG", "EP", "kmeans", "mandelbrot", "gzip", "md5-mt"} {
		m := workloads.MustBuild(name, 1).M
		it := New(m, nil, WithPairStats(&stats))
		it.Run()
	}
	if stats.Total() == 0 {
		t.Fatal("WithPairStats recorded nothing across six workloads")
	}
	top := stats.Top(10)
	if len(top) == 0 {
		t.Fatal("Top(10) is empty with a non-zero total")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("Top ranking not sorted: %+v before %+v", top[i-1], top[i])
		}
	}
	for _, pc := range top {
		t.Logf("%-12v -> %-12v %d", pc.First, pc.Second, pc.Count)
	}
}
