package interp

import (
	"discopop/internal/ir"
	"discopop/internal/mem"
)

// This file executes statements, maintaining the region event protocol:
// EnterRegion/ExitRegion around loops and branches, LoopIter per iteration,
// EnterFunc/ExitFunc around calls, and BindVar/FreeVar at variable lifetime
// boundaries (allocation on frame entry, death on frame exit or Free).

// evalArgs evaluates call arguments in the caller's context.
func (it *Interp) evalArgs(t *thread, call *ir.CallExpr, loc ir.Loc) []argVal {
	callee := call.Callee
	if len(call.Args) != len(callee.Params) {
		it.panicf("call to %s with %d args, want %d", callee.Name, len(call.Args), len(callee.Params))
	}
	args := make([]argVal, len(call.Args))
	for i, a := range call.Args {
		p := callee.Params[i]
		if p.ByValue {
			args[i] = argVal{val: it.eval(t, a, loc)}
			continue
		}
		r, ok := a.(*ir.Ref)
		if !ok {
			it.panicf("by-reference parameter %s of %s needs a variable argument", p.Name, callee.Name)
		}
		base := it.addrOf(t, r.Var)
		elems := r.Var.Elems
		if r.Index != nil {
			off := int64(it.eval(t, r.Index, loc))
			if off < 0 || off > int64(r.Var.Elems) {
				it.panicf("by-ref offset %d out of range for %s", off, r.Var.Name)
			}
			base += uint64(off)
			elems -= int(off)
		}
		args[i] = argVal{base: base, byRef: true, elems: elems}
	}
	return args
}

// callFunc pushes a frame, binds parameters and locals, executes the body,
// and returns the function's return value.
// checkBudget aborts the run (as a runtime error) once the configured
// instruction budget is exhausted. It sits on loop back-edges and
// function entries — the only places an execution can grow without
// bound — so straight-line code never pays for it.
func (it *Interp) checkBudget(loc ir.Loc) {
	if it.maxInstrs > 0 && it.Instrs > it.maxInstrs {
		it.panicf("instruction budget of %d exceeded at %s", it.maxInstrs, loc)
	}
}

func (it *Interp) callFunc(t *thread, fn *ir.Func, args []argVal, callLoc ir.Loc) float64 {
	if fn.Body == nil {
		it.panicf("call to undefined function %s", fn.Name)
	}
	it.checkBudget(callLoc)
	if it.tracer != nil {
		it.tracer.EnterFunc(fn, callLoc, t.id)
	}
	startInstrs := it.Instrs
	fr := &frame{fn: fn, env: make(map[*ir.Var]uint64, len(fn.Params)+len(fn.Locals)), spSave: t.sp}
	// Bind parameters.
	for i, p := range fn.Params {
		if p.ByValue {
			addr := it.stackAlloc(t, 1)
			fr.env[p] = addr
			fr.bound = append(fr.bound, p)
			t.frames = append(t.frames, fr)
			if it.tracer != nil {
				it.tracer.BindVar(p, addr, 1, t.id)
			}
			it.store(t, addr, args[i].val, fn.Loc, p, p.ParamOp)
			t.frames = t.frames[:len(t.frames)-1]
		} else {
			fr.env[p] = args[i].base
		}
	}
	// Bind every local (LLVM-alloca style: whole frame at entry).
	for _, v := range fn.Locals {
		if v.Heap {
			base := it.heapAlloc(v.Elems)
			fr.env[v] = base
			fr.bound = append(fr.bound, v)
			if it.tracer != nil {
				it.tracer.BindVar(v, base, v.Elems, t.id)
			}
			continue
		}
		addr := it.stackAlloc(t, v.Elems)
		fr.env[v] = addr
		fr.bound = append(fr.bound, v)
		if it.tracer != nil {
			it.tracer.BindVar(v, addr, v.Elems, t.id)
		}
	}
	t.frames = append(t.frames, fr)
	it.execBlock(t, fn.Body)
	// Frame exit: locals die (Section 2.3.5 variable lifetime analysis).
	if it.tracer != nil {
		for i := len(fr.bound) - 1; i >= 0; i-- {
			v := fr.bound[i]
			it.tracer.FreeVar(v, fr.env[v], v.Elems, t.id)
		}
	}
	t.frames = t.frames[:len(t.frames)-1]
	t.sp = fr.spSave
	if it.tracer != nil {
		it.tracer.ExitFunc(fn, it.Instrs-startInstrs, t.id)
	}
	return fr.ret
}

func (it *Interp) stackAlloc(t *thread, n int) uint64 {
	addr := t.sp
	t.sp += uint64(n)
	if t.sp > t.stack+mem.StackElems {
		it.panicf("thread %d stack overflow", t.id)
	}
	return addr
}

// call evaluates a call expression in t.
func (it *Interp) call(t *thread, c *ir.CallExpr, loc ir.Loc) float64 {
	args := it.evalArgs(t, c, loc)
	return it.callFunc(t, c.Callee, args, loc)
}

// execBlock executes the statements of b. It returns true if a Return was
// executed (unwinding).
func (it *Interp) execBlock(t *thread, b *ir.BlockStmt) bool {
	for _, s := range b.List {
		if it.execStmt(t, s) {
			return true
		}
	}
	return false
}

// execStmt executes one statement, returning true on Return-unwind.
func (it *Interp) execStmt(t *thread, s ir.Stmt) bool {
	switch n := s.(type) {
	case *ir.Assign:
		it.Instrs++
		val := it.eval(t, n.Src, n.Loc)
		addr := it.elemAddr(t, n.Dst, n.Loc)
		it.store(t, addr, val, n.Loc, n.Dst.Var, n.Dst.Op)
		it.yieldPoint(t)
	case *ir.For:
		return it.execFor(t, n)
	case *ir.While:
		return it.execWhile(t, n)
	case *ir.If:
		it.Instrs++
		cond := it.eval(t, n.Cond, n.Loc) != 0
		it.yieldPoint(t)
		if it.tracer != nil {
			it.tracer.EnterRegion(n.Region, t.id)
		}
		start := it.Instrs
		var ret bool
		if cond {
			ret = it.execBlock(t, n.Then)
		} else if n.Else != nil {
			ret = it.execBlock(t, n.Else)
		}
		if it.tracer != nil {
			it.tracer.ExitRegion(n.Region, 0, it.Instrs-start, t.id)
		}
		return ret
	case *ir.CallStmt:
		it.Instrs++
		it.call(t, n.Call, n.Loc)
		it.yieldPoint(t)
	case *ir.Return:
		it.Instrs++
		fr := t.top()
		if n.Val != nil {
			fr.ret = it.eval(t, n.Val, n.Loc)
		}
		fr.returned = true
		it.yieldPoint(t)
		return true
	case *ir.Spawn:
		it.Instrs++
		it.startSpawned(t, n.Call, n.Loc)
		it.yieldPoint(t)
	case *ir.Sync:
		it.Instrs++
		it.block(t, func() bool { return t.children == 0 })
	case *ir.LockRegion:
		it.Instrs++
		it.block(t, func() bool { return it.mutexes[n.MutexID] == 0 })
		it.mutexes[n.MutexID] = t.id + 1
		if it.tracer != nil {
			it.tracer.Lock(n.MutexID, t.id)
		}
		ret := it.execBlock(t, n.Body)
		it.mutexes[n.MutexID] = 0
		if it.tracer != nil {
			it.tracer.Unlock(n.MutexID, t.id)
		}
		return ret
	case *ir.Free:
		it.Instrs++
		fr := t.top()
		base, ok := fr.env[n.Var]
		if !ok {
			it.panicf("free of unbound variable %s", n.Var.Name)
		}
		if !n.Var.Heap {
			it.panicf("free of non-heap variable %s", n.Var.Name)
		}
		it.heapFree(base, n.Var.Elems)
		if it.tracer != nil {
			it.tracer.FreeVar(n.Var, base, n.Var.Elems, t.id)
		}
		it.yieldPoint(t)
	case *ir.BlockStmt:
		return it.execBlock(t, n)
	default:
		it.panicf("unknown statement %T", s)
	}
	return false
}

// execFor runs a counted loop. The iteration variable's initialization,
// test, and increment accesses are all attributed to the loop header line,
// matching the C idiom and Figure 2.1 (RAW/WAR on i at the header).
func (it *Interp) execFor(t *thread, n *ir.For) bool {
	if it.tracer != nil {
		it.tracer.EnterRegion(n.Region, t.id)
	}
	startInstrs := it.Instrs
	iv := n.IndVar
	ivAddr := it.addrOf(t, iv)
	// Each of the header's four induction-variable operations (init store,
	// test load, increment load, increment store) is a distinct static
	// memory operation and gets its own ID, so the skip optimization
	// tracks them separately — merging them would hide the loop-carried
	// header dependences of Figure 2.1.
	base := -4*int32(n.Region.ID) - 1
	opInit, opTest, opIncL, opIncS := base, base-1, base-2, base-3
	it.Instrs++
	from := it.eval(t, n.From, n.Loc)
	it.store(t, ivAddr, from, n.Loc, iv, opInit)
	// The loop test for iteration k executes in iteration k's context, so
	// that a header read following the previous iteration's update forms a
	// loop-carried dependence (the RAW on i at the header of Figure 2.1).
	t.loops = append(t.loops, LoopFrame{Region: int32(n.Region.ID), Iter: 0})
	iters := int64(0)
	ret := false
	for {
		t.loops[len(t.loops)-1].Iter = iters
		if it.tracer != nil {
			it.tracer.LoopIter(n.Region, iters, t.id)
		}
		it.Instrs++
		to := it.eval(t, n.To, n.Loc)
		cur := it.load(t, ivAddr, n.Loc, iv, opTest)
		if !(cur < to) {
			break
		}
		if iters > maxIters {
			it.panicf("loop at %s exceeded max iterations", n.Loc)
		}
		it.checkBudget(n.Loc)
		it.yieldPoint(t)
		ret = it.execBlock(t, n.Body)
		if ret {
			break
		}
		// Increment: read + write of the iteration variable at the header,
		// still in the finishing iteration's context.
		it.Instrs++
		step := it.eval(t, n.Step, n.Loc)
		cur = it.load(t, ivAddr, n.Loc, iv, opIncL)
		it.store(t, ivAddr, cur+step, n.Loc, iv, opIncS)
		iters++
	}
	t.loops = t.loops[:len(t.loops)-1]
	if it.tracer != nil {
		it.tracer.ExitRegion(n.Region, iters, it.Instrs-startInstrs, t.id)
	}
	return ret
}

func (it *Interp) execWhile(t *thread, n *ir.While) bool {
	if it.tracer != nil {
		it.tracer.EnterRegion(n.Region, t.id)
	}
	startInstrs := it.Instrs
	t.loops = append(t.loops, LoopFrame{Region: int32(n.Region.ID), Iter: 0})
	iters := int64(0)
	ret := false
	for {
		t.loops[len(t.loops)-1].Iter = iters
		if it.tracer != nil {
			it.tracer.LoopIter(n.Region, iters, t.id)
		}
		it.Instrs++
		if it.eval(t, n.Cond, n.Loc) == 0 {
			break
		}
		if iters > maxIters {
			it.panicf("loop at %s exceeded max iterations", n.Loc)
		}
		it.checkBudget(n.Loc)
		it.yieldPoint(t)
		ret = it.execBlock(t, n.Body)
		if ret {
			break
		}
		iters++
	}
	t.loops = t.loops[:len(t.loops)-1]
	if it.tracer != nil {
		it.tracer.ExitRegion(n.Region, iters, it.Instrs-startInstrs, t.id)
	}
	return ret
}
