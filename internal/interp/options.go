package interp

import "discopop/internal/mem"

// Option configures an interpreter at construction.
type Option func(*config)

type config struct {
	space *mem.Space
	pool  *mem.Pool
}

// WithSpace runs the interpreter on a recycled address space instead of
// allocating one. The space must be clean (fresh, or Reset since its last
// run) and its layout must match the module's; New panics on a layout
// mismatch, since silently remapping addresses would corrupt the run.
// WithSpace wins over WithPool when both are given.
func WithSpace(s *mem.Space) Option {
	return func(c *config) { c.space = s }
}

// WithPool draws the address space from an arena pool and arranges for
// Release to return it. Callers that neither call Release nor keep the
// interpreter alive simply fall back to GC — pooling is an optimization,
// never an obligation.
func WithPool(p *mem.Pool) Option {
	return func(c *config) { c.pool = p }
}
