package interp

import (
	"discopop/internal/bytecode"
	"discopop/internal/mem"
)

// Option configures an interpreter at construction.
type Option func(*config)

type config struct {
	space     *mem.Space
	pool      *mem.Pool
	maxInstrs int64
	treeWalk  bool
	prog      *bytecode.Program
	pairStats *bytecode.PairStats
}

// WithSpace runs the interpreter on a recycled address space instead of
// allocating one. The space must be clean (fresh, or Reset since its last
// run) and its layout must match the module's; New panics on a layout
// mismatch, since silently remapping addresses would corrupt the run.
// WithSpace wins over WithPool when both are given.
func WithSpace(s *mem.Space) Option {
	return func(c *config) { c.space = s }
}

// WithPool draws the address space from an arena pool and arranges for
// Release to return it. Callers that neither call Release nor keep the
// interpreter alive simply fall back to GC — pooling is an optimization,
// never an obligation.
func WithPool(p *mem.Pool) Option {
	return func(c *config) { c.pool = p }
}

// WithMaxInstrs aborts the run (as a runtime error, recovered like any
// interpreter panic) once more than n leaf statements have executed.
// Zero means unbounded. The check sits on loop back-edges and function
// entries — the only places an execution can grow without bound — so it
// costs nothing on straight-line code. Both engines count leaf statements
// identically, so the budget fires at the same point regardless of engine.
func WithMaxInstrs(n int64) Option {
	return func(c *config) { c.maxInstrs = n }
}

// WithTreeWalk selects the reference tree-walking engine instead of the
// bytecode VM. The engines are observationally identical (same events,
// same counters, same panics — enforced by the differential test suite);
// the walker remains as the executable specification and a debugging aid.
func WithTreeWalk() Option {
	return func(c *config) { c.treeWalk = true }
}

// WithProgram runs a pre-compiled bytecode program instead of consulting
// the shared compile cache. The program must have been compiled from a
// module with the same global layout; New panics on a mismatch.
func WithProgram(p *bytecode.Program) Option {
	return func(c *config) { c.prog = p }
}

// WithPairStats records dynamic opcode-pair frequencies into s while the
// VM runs (the measurement behind superinstruction selection; see
// DESIGN.md). It costs a few percent of dispatch throughput, so it is a
// profiling-only option.
func WithPairStats(s *bytecode.PairStats) Option {
	return func(c *config) { c.pairStats = s }
}
