package interp

import (
	"discopop/internal/ir"
)

// This file implements the simulated-thread machinery. Threads created by
// Spawn statements run as goroutines that are granted the execution token
// one statement at a time, round-robin, so that multi-threaded target
// programs (Section 2.3.4) execute with a deterministic, finely interleaved
// schedule and a single serialized event stream. The main thread acts as
// the scheduler: at each of its own statement boundaries it grants every
// other live thread one statement.

type frame struct {
	fn       *ir.Func
	env      map[*ir.Var]uint64
	ret      float64
	returned bool
	spSave   uint64
	bound    []*ir.Var // locals and by-value params to free on exit
}

type thread struct {
	id       int32
	parent   int32
	frames   []*frame
	loops    []LoopFrame
	stack    uint64 // base of this thread's stack segment
	sp       uint64
	resume   chan struct{}
	yield    chan struct{}
	done     bool
	blocked  func() bool // non-nil while waiting; true when runnable again
	children int
	parentT  *thread

	// Bytecode-engine state (nil/empty under the tree walker): the value
	// stack, the frame-slot stack holding each activation's variable base
	// addresses, and the open loop/branch/lock control regions.
	vstack []float64
	vsp    int
	slots  []uint64
	ctrl   []vmCtrl
}

func (t *thread) top() *frame { return t.frames[len(t.frames)-1] }

func (it *Interp) newThread(id, parent int32) *thread {
	t := &thread{
		id:     id,
		parent: parent,
		stack:  it.layout.StackBase(id),
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	t.sp = t.stack
	return t
}

// argVal is an evaluated call argument: either a scalar value or an aliased
// base address for by-reference parameters.
type argVal struct {
	val   float64
	base  uint64
	byRef bool
	elems int
}

// yieldPoint is called after every executed leaf statement. With a single
// live thread it is (nearly) free, so sequential programs run at full
// speed; in multi-threaded mode the main thread runs one scheduling round
// and spawned threads hand the token back.
func (it *Interp) yieldPoint(t *thread) {
	if !it.mt {
		return
	}
	if t == it.mainT {
		it.runRound()
		return
	}
	t.yield <- struct{}{}
	<-t.resume
}

// runRound grants every live spawned thread one statement. It reports
// whether any thread made progress.
func (it *Interp) runRound() bool {
	progressed := false
	for i := 0; i < len(it.spawned); i++ {
		t := it.spawned[i]
		if t.done {
			continue
		}
		if t.blocked != nil && !t.blocked() {
			continue
		}
		t.resume <- struct{}{}
		<-t.yield
		progressed = true
	}
	// Compact finished threads away occasionally.
	if len(it.spawned) > 0 && allDone(it.spawned) {
		it.spawned = it.spawned[:0]
		it.mt = false
	}
	return progressed
}

func allDone(ts []*thread) bool {
	for _, t := range ts {
		if !t.done {
			return false
		}
	}
	return true
}

// block parks t until cond() becomes true.
func (it *Interp) block(t *thread, cond func() bool) {
	if t == it.mainT {
		for !cond() {
			if !it.mt || !it.runRound() {
				panic("interp: deadlock: main thread blocked with no runnable peers")
			}
		}
		return
	}
	for !cond() {
		t.blocked = cond
		t.yield <- struct{}{}
		<-t.resume
		t.blocked = nil
	}
}

// allocTID returns a thread ID, preferring the free list so that dead
// threads' IDs — and with them their address-space stack segments, which
// are derived from the ID — get recycled. The MaxThreads bound therefore
// limits *live* threads, not total spawns, and the number of materialized
// stack pages is bounded by the peak live-thread count.
func (it *Interp) allocTID() int32 {
	if n := len(it.freeTIDs); n > 0 {
		id := it.freeTIDs[n-1]
		it.freeTIDs = it.freeTIDs[:n-1]
		return id
	}
	id := it.nextTID
	it.nextTID++
	if id >= MaxThreads {
		it.panicf("too many threads (max %d)", MaxThreads)
	}
	return id
}

// startSpawned launches a new simulated thread executing call. The
// arguments are evaluated by the parent, so their reads are attributed to
// the spawning thread, as with pthread_create argument marshalling.
func (it *Interp) startSpawned(parent *thread, call *ir.CallExpr, loc ir.Loc) {
	args := it.evalArgs(parent, call, loc)
	it.spawnThread(parent, call.Callee, args)
}

// spawnThread registers and starts a child thread running fn(args); the
// arguments are already evaluated (by the walker's evalArgs or the VM's
// compiled argument code).
func (it *Interp) spawnThread(parent *thread, fn *ir.Func, args []argVal) {
	child := it.newThread(it.allocTID(), parent.id)
	child.parentT = parent
	parent.children++
	it.mt = true
	it.spawned = append(it.spawned, child)
	go func() {
		<-child.resume
		it.execThread(child, fn, args)
		child.yield <- struct{}{}
	}()
}

// execThread runs fn to completion on t.
func (it *Interp) execThread(t *thread, fn *ir.Func, args []argVal) {
	it.nthreads++
	if it.tracer != nil {
		it.evThreadStart(t.id, t.parent)
	}
	if it.prog != nil {
		it.vmCall(t, int32(fn.ID), args, fn.Loc)
	} else {
		it.callFunc(t, fn, args, fn.Loc)
	}
	t.done = true
	it.nthreads--
	if t.parentT != nil {
		t.parentT.children--
	}
	if it.tracer != nil {
		it.evThreadEnd(t.id)
	}
	// The thread is dead; its ID (and stack segment) can be reused by the
	// next spawn. ID 0 is the main thread and never recycles.
	if t.id != 0 {
		it.freeTIDs = append(it.freeTIDs, t.id)
	}
}
