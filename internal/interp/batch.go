package interp

import (
	"discopop/internal/bytecode"
	"discopop/internal/ir"
)

// This file is the batched tracing path. Under the bytecode VM, per-access
// interface dispatch (Tracer.Load(Access{...}) per element) costs more than
// the access itself, so tracers that implement BatchTracer instead receive
// the event stream as flat fixed-width records in chunks: the VM appends Ev
// records into a buffer and flushes it when full, at the end of the run,
// and before a runtime-error panic. The event order and content are exactly
// the per-event stream's — ReplayBatch can expand a batch back into Tracer
// calls bit-identically, which is both the compatibility shim for legacy
// tracers and the acceptance harness for the batched path.
//
// The tree walker never batches: it predates the VM as the semantic
// reference and keeps the per-event path alive for differential testing.

// Ev kinds, in the order the per-event Tracer methods declare them.
const (
	EvLoad uint8 = iota
	EvStore
	EvEnterRegion
	EvExitRegion
	EvLoopIter
	EvEnterFunc
	EvExitFunc
	EvBindVar
	EvFreeVar
	EvLock
	EvUnlock
	EvThreadStart
	EvThreadEnd
	// EvLoopPush marks the push of a new loop-nest frame (walker: loop
	// entry after the init store). It has no per-event Tracer equivalent —
	// per-event tracers see the stack itself via Access.Loops — but replay
	// needs it to reconstruct that stack exactly.
	EvLoopPush
)

// Ev is one fixed-width trace event, 32 bytes exactly. The kind and thread
// live in Sink's low 16 bits: the packed-sink layout (file|line|var above
// bit 16, thread at bits 8..15) leaves bits 0..7 unused, so for access
// events the kind rides in the same word the compile-time operand tables
// already deliver — a load's kind is 0 and costs nothing, a store ORs one
// constant bit into the or-chain that merges the thread bits. Control
// events build the same word from evMeta. Field use varies by kind:
//
//	EvLoad/EvStore   Addr, Sink (kind|thread|packed file|line|var), Loc,
//	                 A=op ID, B=var index
//	EvEnterRegion    A=region index
//	EvExitRegion     A=region index, Addr=iters, Loc=instrs (packI64)
//	EvLoopIter       A=region index, Addr=iter
//	EvLoopPush       A=region index
//	EvEnterFunc      A=func index, Loc=call site
//	EvExitFunc       A=func index, Addr=instrs
//	EvBindVar/EvFreeVar  A=var index, Addr=base, B=elems
//	EvLock/EvUnlock  A=mutex ID
//	EvThreadStart    B=parent thread
//
// Sink duplicates (Loc, B, Tid) in packed form so batch consumers that key
// on the packed identity (the profiler) take it verbatim — masking off the
// low kind byte, which packInfo keeps zero — while consumers that need
// exact values (replay: Loc.File can overflow the 10-bit sink field) do
// not round-trip through the packing.
//
// Access events carry no timestamp: the interpreter's clock ticks exactly
// once per access, in stream order, so a batch consumer reconstructs TS by
// counting the access events it has seen (ReplayState does this for
// replayed tracers). Keeping the record at 32 bytes — half a cache line,
// no padding — is worth the packing: the append is the hottest store in
// the traced VM loop, and the consumer re-reads every byte.
type Ev struct {
	Addr uint64
	Sink uint64
	Loc  ir.Loc
	A    int32
	B    int32
}

// Kind extracts the event kind from the packed Sink word.
func (e *Ev) Kind() uint8 { return uint8(e.Sink) }

// Tid extracts the thread ID from the packed Sink word — the same bits
// bytecode.SinkThread packs for access events.
func (e *Ev) Tid() int32 { return int32(e.Sink >> 8 & 0xFF) }

// evMeta builds the Sink word of a control event: kind plus thread.
func evMeta(kind uint8, tid int32) uint64 {
	return uint64(kind) | uint64(uint32(tid)&0xFF)<<8
}

// evStoreBit is OR'd into an access Sink to mark a store (EvLoad is zero
// and needs no marking).
const evStoreBit = uint64(EvStore)

// packI64 stows a 64-bit counter in the Loc field of an event that has no
// source location (EvExitRegion's instruction count); UnpackI64 inverts it.
func packI64(v int64) ir.Loc {
	return ir.Loc{File: int32(uint32(v)), Line: int32(uint32(uint64(v) >> 32))}
}

func UnpackI64(l ir.Loc) int64 {
	return int64(uint64(uint32(l.File)) | uint64(uint32(l.Line))<<32)
}

// BatchTracer is a Tracer that can consume the event stream in chunks. When
// the tracer passed to New implements it and the run uses the bytecode VM,
// the interpreter switches to the batched path; the per-event methods are
// then never called by the interpreter (they remain the compatibility
// surface for the tree walker and for ReplayBatch).
type BatchTracer interface {
	Tracer
	// ProcessBatch consumes one flushed chunk. The slice is reused by the
	// interpreter after the call returns; implementations must not retain
	// it.
	ProcessBatch(m *ir.Module, evs []Ev)
}

// PerEvent wraps t so that only the per-event Tracer interface is visible:
// even if t implements BatchTracer, an interpreter running with the wrapper
// takes the per-access path. This is the ablation/differential-testing
// handle for comparing the two paths on identical runs.
func PerEvent(t Tracer) Tracer { return perEvent{t} }

type perEvent struct{ Tracer }

// evBatchSize is the flush threshold in events (~96KB of buffer): large
// enough to amortize the flush call and keep the consumer's stores hot,
// small enough to stay cache-resident and cost little per Interp.
const evBatchSize = 2048

// enableBatch switches the interpreter to batched tracing when the tracer
// supports it; VM only — the walker stays on the per-event reference path.
func (it *Interp) enableBatch() {
	if it.prog == nil {
		return
	}
	if bt, ok := it.tracer.(BatchTracer); ok {
		it.batch = bt
		it.evs = make([]Ev, 0, evBatchSize)
	}
}

// flushEvents hands the buffered events to the batch tracer. It is called
// on buffer-full, at the end of Run, and by panicf so that events preceding
// a runtime error are observed exactly as on the per-event path.
func (it *Interp) flushEvents() {
	if it.batch == nil || len(it.evs) == 0 {
		return
	}
	it.batch.ProcessBatch(it.mod, it.evs)
	it.evs = it.evs[:0]
}

func (it *Interp) pushEv(e Ev) {
	it.evs = append(it.evs, e)
	if len(it.evs) == cap(it.evs) {
		it.flushEvents()
	}
}

// The ev* helpers below are the single emission point for each non-access
// event: batch mode appends a record, per-event mode calls the tracer
// directly. Callers keep the `it.tracer != nil` guard.

func (it *Interp) evEnterRegion(r *ir.Region, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvEnterRegion, tid), A: int32(r.ID)})
		return
	}
	it.tracer.EnterRegion(r, tid)
}

func (it *Interp) evExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvExitRegion, tid), A: int32(r.ID),
			Addr: uint64(iters), Loc: packI64(instrs)})
		return
	}
	it.tracer.ExitRegion(r, iters, instrs, tid)
}

func (it *Interp) evLoopIter(r *ir.Region, iter int64, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvLoopIter, tid), A: int32(r.ID), Addr: uint64(iter)})
		return
	}
	it.tracer.LoopIter(r, iter, tid)
}

// evLoopPush records a loop-stack push; it exists only on the batched path.
func (it *Interp) evLoopPush(region int32, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvLoopPush, tid), A: region})
	}
}

func (it *Interp) evEnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvEnterFunc, tid), A: int32(f.ID), Loc: callLoc})
		return
	}
	it.tracer.EnterFunc(f, callLoc, tid)
}

func (it *Interp) evExitFunc(f *ir.Func, instrs int64, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvExitFunc, tid), A: int32(f.ID), Addr: uint64(instrs)})
		return
	}
	it.tracer.ExitFunc(f, instrs, tid)
}

func (it *Interp) evBindVar(v *ir.Var, base uint64, elems int, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvBindVar, tid), A: int32(v.ID), Addr: base, B: int32(elems)})
		return
	}
	it.tracer.BindVar(v, base, elems, tid)
}

func (it *Interp) evFreeVar(v *ir.Var, base uint64, elems int, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvFreeVar, tid), A: int32(v.ID), Addr: base, B: int32(elems)})
		return
	}
	it.tracer.FreeVar(v, base, elems, tid)
}

func (it *Interp) evLock(id int, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvLock, tid), A: int32(id)})
		return
	}
	it.tracer.Lock(id, tid)
}

func (it *Interp) evUnlock(id int, tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvUnlock, tid), A: int32(id)})
		return
	}
	it.tracer.Unlock(id, tid)
}

func (it *Interp) evThreadStart(tid, parent int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvThreadStart, tid), B: parent})
		return
	}
	it.tracer.ThreadStart(tid, parent)
}

func (it *Interp) evThreadEnd(tid int32) {
	if it.batch != nil {
		it.pushEv(Ev{Sink: evMeta(EvThreadEnd, tid)})
		return
	}
	it.tracer.ThreadEnd(tid)
}

// ReplayState carries the per-thread loop-nest stacks ReplayBatch rebuilds
// across batches; zero value is ready to use. One state must persist for
// the lifetime of one execution's stream.
type ReplayState struct {
	loops [MaxThreads][]LoopFrame
	// ts is the reconstructed interpreter clock: one tick per access event,
	// in stream order (Ev carries no timestamp).
	ts uint64
}

// ReplayBatch expands a batch back into per-event Tracer calls, producing
// exactly the call sequence the interpreter's per-event path would have
// made — including Access.Loops contents, reconstructed from the
// EvLoopPush/EvLoopIter/EvExitRegion stream. The Loops slices are owned by
// st and reused between events, per the Tracer contract.
func ReplayBatch(m *ir.Module, evs []Ev, st *ReplayState, dst Tracer) {
	for i := range evs {
		ev := &evs[i]
		tid := ev.Tid()
		switch ev.Kind() {
		case EvLoad, EvStore:
			st.ts++
			a := Access{Addr: ev.Addr, Loc: ev.Loc, Var: m.Vars[ev.B], Op: ev.A,
				Thread: tid, TS: st.ts, Loops: st.loops[tid]}
			if ev.Kind() == EvLoad {
				dst.Load(a)
			} else {
				dst.Store(a)
			}
		case EvEnterRegion:
			dst.EnterRegion(m.Regions[ev.A], tid)
		case EvExitRegion:
			r := m.Regions[ev.A]
			if r.Kind == ir.RLoop {
				ls := st.loops[tid]
				st.loops[tid] = ls[:len(ls)-1]
			}
			dst.ExitRegion(r, int64(ev.Addr), UnpackI64(ev.Loc), tid)
		case EvLoopIter:
			ls := st.loops[tid]
			ls[len(ls)-1].Iter = int64(ev.Addr)
			dst.LoopIter(m.Regions[ev.A], int64(ev.Addr), tid)
		case EvLoopPush:
			st.loops[tid] = append(st.loops[tid], LoopFrame{Region: ev.A})
		case EvEnterFunc:
			dst.EnterFunc(m.Funcs[ev.A], ev.Loc, tid)
		case EvExitFunc:
			dst.ExitFunc(m.Funcs[ev.A], int64(ev.Addr), tid)
		case EvBindVar:
			dst.BindVar(m.Vars[ev.A], ev.Addr, int(ev.B), tid)
		case EvFreeVar:
			dst.FreeVar(m.Vars[ev.A], ev.Addr, int(ev.B), tid)
		case EvLock:
			dst.Lock(int(ev.A), tid)
		case EvUnlock:
			dst.Unlock(int(ev.A), tid)
		case EvThreadStart:
			// Thread IDs recycle; a fresh thread starts with an empty nest.
			st.loops[tid] = st.loops[tid][:0]
			dst.ThreadStart(tid, ev.B)
		case EvThreadEnd:
			dst.ThreadEnd(tid)
		}
	}
}

// sinkOf packs the full sink identity of an access at runtime — the slow
// path's equivalent of the compile-time TraceInfo operand tables.
func sinkOf(loc ir.Loc, v *ir.Var, tid int32) uint64 {
	return bytecode.PackSink(loc, int32(v.ID)) | bytecode.SinkThread(tid)
}
