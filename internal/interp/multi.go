package interp

import "discopop/internal/ir"

// MultiTracer composes several tracers into one event stream, so that the
// profiler, the PET builder, and any number of auxiliary observers can watch
// the same execution. It lives next to the Tracer interface because stage
// wiring (internal/pipeline) composes tracers before the interpreter runs.
type MultiTracer struct {
	Tracers []Tracer
}

// Load implements Tracer.
func (m *MultiTracer) Load(a Access) {
	for _, t := range m.Tracers {
		t.Load(a)
	}
}

// Store implements Tracer.
func (m *MultiTracer) Store(a Access) {
	for _, t := range m.Tracers {
		t.Store(a)
	}
}

// EnterRegion implements Tracer.
func (m *MultiTracer) EnterRegion(r *ir.Region, tid int32) {
	for _, t := range m.Tracers {
		t.EnterRegion(r, tid)
	}
}

// ExitRegion implements Tracer.
func (m *MultiTracer) ExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	for _, t := range m.Tracers {
		t.ExitRegion(r, iters, instrs, tid)
	}
}

// LoopIter implements Tracer.
func (m *MultiTracer) LoopIter(r *ir.Region, iter int64, tid int32) {
	for _, t := range m.Tracers {
		t.LoopIter(r, iter, tid)
	}
}

// EnterFunc implements Tracer.
func (m *MultiTracer) EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	for _, t := range m.Tracers {
		t.EnterFunc(f, callLoc, tid)
	}
}

// ExitFunc implements Tracer.
func (m *MultiTracer) ExitFunc(f *ir.Func, instrs int64, tid int32) {
	for _, t := range m.Tracers {
		t.ExitFunc(f, instrs, tid)
	}
}

// BindVar implements Tracer.
func (m *MultiTracer) BindVar(v *ir.Var, base uint64, elems int, tid int32) {
	for _, t := range m.Tracers {
		t.BindVar(v, base, elems, tid)
	}
}

// FreeVar implements Tracer.
func (m *MultiTracer) FreeVar(v *ir.Var, base uint64, elems int, tid int32) {
	for _, t := range m.Tracers {
		t.FreeVar(v, base, elems, tid)
	}
}

// Lock implements Tracer.
func (m *MultiTracer) Lock(id int, tid int32) {
	for _, t := range m.Tracers {
		t.Lock(id, tid)
	}
}

// Unlock implements Tracer.
func (m *MultiTracer) Unlock(id int, tid int32) {
	for _, t := range m.Tracers {
		t.Unlock(id, tid)
	}
}

// ThreadStart implements Tracer.
func (m *MultiTracer) ThreadStart(tid, parent int32) {
	for _, t := range m.Tracers {
		t.ThreadStart(tid, parent)
	}
}

// ThreadEnd implements Tracer.
func (m *MultiTracer) ThreadEnd(tid int32) {
	for _, t := range m.Tracers {
		t.ThreadEnd(tid)
	}
}
