package interp

import "discopop/internal/ir"

// MultiTracer composes several tracers into one event stream, so that the
// profiler, the PET builder, and any number of auxiliary observers can watch
// the same execution. It lives next to the Tracer interface because stage
// wiring (internal/pipeline) composes tracers before the interpreter runs.
//
// MultiTracer is itself a BatchTracer: batches are forwarded whole to every
// child that supports them, and expanded (once, via ReplayBatch) into
// per-event calls for the children that do not — so a pipeline composed of
// a batch-capable profiler and a legacy observer still runs the VM on the
// batched path.
type MultiTracer struct {
	Tracers []Tracer

	split     bool
	batchers  []BatchTracer
	replayDst Tracer // non-batch children (one tracer or a nested MultiTracer)
	rstate    ReplayState
}

// ProcessBatch implements BatchTracer.
func (m *MultiTracer) ProcessBatch(mod *ir.Module, evs []Ev) {
	if !m.split {
		m.split = true
		var legacy []Tracer
		for _, t := range m.Tracers {
			if bt, ok := t.(BatchTracer); ok {
				m.batchers = append(m.batchers, bt)
			} else {
				legacy = append(legacy, t)
			}
		}
		switch len(legacy) {
		case 0:
		case 1:
			m.replayDst = legacy[0]
		default:
			m.replayDst = &MultiTracer{Tracers: legacy}
		}
	}
	for _, bt := range m.batchers {
		bt.ProcessBatch(mod, evs)
	}
	if m.replayDst != nil {
		ReplayBatch(mod, evs, &m.rstate, m.replayDst)
	}
}

// Load implements Tracer.
func (m *MultiTracer) Load(a Access) {
	for _, t := range m.Tracers {
		t.Load(a)
	}
}

// Store implements Tracer.
func (m *MultiTracer) Store(a Access) {
	for _, t := range m.Tracers {
		t.Store(a)
	}
}

// EnterRegion implements Tracer.
func (m *MultiTracer) EnterRegion(r *ir.Region, tid int32) {
	for _, t := range m.Tracers {
		t.EnterRegion(r, tid)
	}
}

// ExitRegion implements Tracer.
func (m *MultiTracer) ExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	for _, t := range m.Tracers {
		t.ExitRegion(r, iters, instrs, tid)
	}
}

// LoopIter implements Tracer.
func (m *MultiTracer) LoopIter(r *ir.Region, iter int64, tid int32) {
	for _, t := range m.Tracers {
		t.LoopIter(r, iter, tid)
	}
}

// EnterFunc implements Tracer.
func (m *MultiTracer) EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	for _, t := range m.Tracers {
		t.EnterFunc(f, callLoc, tid)
	}
}

// ExitFunc implements Tracer.
func (m *MultiTracer) ExitFunc(f *ir.Func, instrs int64, tid int32) {
	for _, t := range m.Tracers {
		t.ExitFunc(f, instrs, tid)
	}
}

// BindVar implements Tracer.
func (m *MultiTracer) BindVar(v *ir.Var, base uint64, elems int, tid int32) {
	for _, t := range m.Tracers {
		t.BindVar(v, base, elems, tid)
	}
}

// FreeVar implements Tracer.
func (m *MultiTracer) FreeVar(v *ir.Var, base uint64, elems int, tid int32) {
	for _, t := range m.Tracers {
		t.FreeVar(v, base, elems, tid)
	}
}

// Lock implements Tracer.
func (m *MultiTracer) Lock(id int, tid int32) {
	for _, t := range m.Tracers {
		t.Lock(id, tid)
	}
}

// Unlock implements Tracer.
func (m *MultiTracer) Unlock(id int, tid int32) {
	for _, t := range m.Tracers {
		t.Unlock(id, tid)
	}
}

// ThreadStart implements Tracer.
func (m *MultiTracer) ThreadStart(tid, parent int32) {
	for _, t := range m.Tracers {
		t.ThreadStart(tid, parent)
	}
}

// ThreadEnd implements Tracer.
func (m *MultiTracer) ThreadEnd(tid int32) {
	for _, t := range m.Tracers {
		t.ThreadEnd(tid)
	}
}
