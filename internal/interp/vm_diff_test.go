package interp

import (
	"fmt"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// traceHasher folds every instrumentation event — in order, with every
// field — into one FNV-1a sum. Two runs that produce the same sum, event
// count, and instruction counters emitted byte-identical traces; this is
// the oracle for the walker-vs-VM differential tests below.
type traceHasher struct {
	sum    uint64
	events int64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (h *traceHasher) mix(words ...uint64) {
	s := h.sum
	for _, w := range words {
		for i := 0; i < 8; i++ {
			s ^= w & 0xff
			s *= fnvPrime
			w >>= 8
		}
	}
	h.sum = s
	h.events++
}

func vid(v *ir.Var) uint64 {
	if v == nil {
		return ^uint64(0)
	}
	return uint64(uint32(v.ID))
}

func (h *traceHasher) access(tag uint64, a Access) {
	h.mix(tag, a.Addr, a.Loc.Key(), vid(a.Var), uint64(uint32(a.Op)),
		uint64(uint32(a.Thread)), a.TS, uint64(len(a.Loops)))
	// Loops is reused between events — fold the contents immediately.
	for _, f := range a.Loops {
		h.mix(uint64(uint32(f.Region)), uint64(f.Iter))
	}
}

func (h *traceHasher) Load(a Access)  { h.access(1, a) }
func (h *traceHasher) Store(a Access) { h.access(2, a) }
func (h *traceHasher) EnterRegion(r *ir.Region, tid int32) {
	h.mix(3, uint64(uint32(r.ID)), uint64(uint32(tid)))
}
func (h *traceHasher) ExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	h.mix(4, uint64(uint32(r.ID)), uint64(iters), uint64(instrs), uint64(uint32(tid)))
}
func (h *traceHasher) LoopIter(r *ir.Region, iter int64, tid int32) {
	h.mix(5, uint64(uint32(r.ID)), uint64(iter), uint64(uint32(tid)))
}
func (h *traceHasher) EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	h.mix(6, uint64(uint32(f.ID)), callLoc.Key(), uint64(uint32(tid)))
}
func (h *traceHasher) ExitFunc(f *ir.Func, instrs int64, tid int32) {
	h.mix(7, uint64(uint32(f.ID)), uint64(instrs), uint64(uint32(tid)))
}
func (h *traceHasher) BindVar(v *ir.Var, base uint64, elems int, tid int32) {
	h.mix(8, vid(v), base, uint64(elems), uint64(uint32(tid)))
}
func (h *traceHasher) FreeVar(v *ir.Var, base uint64, elems int, tid int32) {
	h.mix(9, vid(v), base, uint64(elems), uint64(uint32(tid)))
}
func (h *traceHasher) Lock(id int, tid int32)   { h.mix(10, uint64(id), uint64(uint32(tid))) }
func (h *traceHasher) Unlock(id int, tid int32) { h.mix(11, uint64(id), uint64(uint32(tid))) }
func (h *traceHasher) ThreadStart(tid, parent int32) {
	h.mix(12, uint64(uint32(tid)), uint64(uint32(parent)))
}
func (h *traceHasher) ThreadEnd(tid int32) { h.mix(13, uint64(uint32(tid))) }

// engineRun captures everything a run exposes: the trace digest and the
// interpreter's own counters.
type engineRun struct {
	sum    uint64
	events int64
	ret    int64
	instrs int64
	loads  int64
	stores int64
}

func runEngine(m *ir.Module, opts ...Option) engineRun {
	th := &traceHasher{sum: fnvOffset}
	it := New(m, th, opts...)
	ret := it.Run()
	return engineRun{
		sum: th.sum, events: th.events, ret: ret,
		instrs: it.Instrs, loads: it.Loads, stores: it.Stores,
	}
}

// TestVMMatchesTreeWalkAcrossRegistry: for every bundled workload — the
// full registry, multi-threaded ones included — the bytecode VM emits a
// trace byte-identical to the reference tree walker's, with identical
// instruction, load, and store counts. This is the contract that makes
// the VM a drop-in engine: every profiler artifact is a pure function of
// this event stream.
func TestVMMatchesTreeWalkAcrossRegistry(t *testing.T) {
	for _, name := range workloads.Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := workloads.MustBuild(name, 1).M
			walk := runEngine(m, WithTreeWalk())
			vm := runEngine(m)
			if walk.sum != vm.sum || walk.events != vm.events {
				t.Errorf("trace diverged: walker %016x (%d events), vm %016x (%d events)",
					walk.sum, walk.events, vm.sum, vm.events)
			}
			if walk.instrs != vm.instrs || walk.ret != vm.ret {
				t.Errorf("instrs diverged: walker %d (ret %d), vm %d (ret %d)",
					walk.instrs, walk.ret, vm.instrs, vm.ret)
			}
			if walk.loads != vm.loads || walk.stores != vm.stores {
				t.Errorf("access counts diverged: walker %d/%d, vm %d/%d",
					walk.loads, walk.stores, vm.loads, vm.stores)
			}
		})
	}
}

// TestVMMatchesTreeWalkUntraced: with no tracer attached the VM takes its
// fast paths (inlined loads and stores, fused superinstructions) — the
// counters must still agree with the walker's exactly.
func TestVMMatchesTreeWalkUntraced(t *testing.T) {
	for _, name := range workloads.Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := workloads.MustBuild(name, 1).M
			wit := New(m, nil, WithTreeWalk())
			wret := wit.Run()
			vit := New(m, nil)
			vret := vit.Run()
			if wret != vret || wit.Instrs != vit.Instrs {
				t.Errorf("instrs diverged: walker %d (ret %d), vm %d (ret %d)",
					wit.Instrs, wret, vit.Instrs, vret)
			}
			if wit.Loads != vit.Loads || wit.Stores != vit.Stores {
				t.Errorf("access counts diverged: walker %d/%d, vm %d/%d",
					wit.Loads, wit.Stores, vit.Loads, vit.Stores)
			}
		})
	}
}

// capturePanic runs an interpreter to completion or panic, returning the
// panic message ("" if none) and the instruction count at that moment.
func capturePanic(m *ir.Module, opts ...Option) (msg string, instrs int64) {
	it := New(m, nil, opts...)
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
		instrs = it.Instrs
	}()
	it.Run()
	return
}

// TestVMBudgetParity: WithMaxInstrs aborts both engines at the same
// instruction count with the same message — the budget check sits at the
// same back-edge and call sites in the bytecode as in the tree.
func TestVMBudgetParity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"CG", 500},
		{"CG", 7777},
		{"mandelbrot", 1000},
		{"md5-mt", 2000},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s@%d", tc.name, tc.budget), func(t *testing.T) {
			m := workloads.MustBuild(tc.name, 1).M
			wmsg, winstrs := capturePanic(m, WithMaxInstrs(tc.budget), WithTreeWalk())
			vmsg, vinstrs := capturePanic(m, WithMaxInstrs(tc.budget))
			if wmsg == "" {
				t.Fatalf("budget %d did not fire on the walker", tc.budget)
			}
			if wmsg != vmsg {
				t.Errorf("panic diverged:\n  walker: %s\n  vm:     %s", wmsg, vmsg)
			}
			if winstrs != vinstrs {
				t.Errorf("budget fired at instr %d on the walker, %d on the vm", winstrs, vinstrs)
			}
		})
	}
}

// buildSpawnLoop builds a module whose main loop spawns a short-lived
// worker and joins it, n times over. Only two simulated threads are ever
// live at once, but before thread-ID recycling each iteration burned a
// fresh ID — and the 65th spawn overflowed the fixed thread table.
func buildSpawnLoop(n int64) *ir.Module {
	b := ir.NewBuilder("recycle")
	w := b.Func("worker")
	x := w.Local("x", ir.F64)
	w.Set(x, ir.Add(ir.V(x), ir.CI(1)))
	wf := w.Done()
	mb := b.Func("main")
	mb.For("i", ir.CI(0), ir.CI(n), ir.CI(1), func(i *ir.Var) {
		mb.Spawn(wf)
		mb.Sync()
	})
	return b.Build(mb.Done())
}

// TestThreadIDRecycling: spawning 70 sequential workers — more than the
// 64-slot thread table — succeeds on both engines because dead threads'
// IDs return to a free list, and the recycled IDs reuse the same stack
// segment (the arena stays at two segments: main plus one worker).
func TestThreadIDRecycling(t *testing.T) {
	for _, eng := range []struct {
		name string
		opts []Option
	}{
		{"treewalk", []Option{WithTreeWalk()}},
		{"vm", nil},
	} {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			m := buildSpawnLoop(70)
			it := New(m, nil, eng.opts...)
			it.Run()
			if got := it.Space().StackPagesTouched(); got != 2 {
				t.Errorf("stack segments materialized = %d, want 2 (main + one recycled worker)", got)
			}
		})
	}
}

// TestThreadIDRecyclingTraced: the recycled runs stay trace-identical
// between engines — recycling is an allocator detail, invisible to the
// event stream.
func TestThreadIDRecyclingTraced(t *testing.T) {
	m := buildSpawnLoop(70)
	walk := runEngine(m, WithTreeWalk())
	vm := runEngine(m)
	if walk.sum != vm.sum || walk.events != vm.events || walk.instrs != vm.instrs {
		t.Errorf("recycled trace diverged: walker %016x/%d events/%d instrs, vm %016x/%d events/%d instrs",
			walk.sum, walk.events, walk.instrs, vm.sum, vm.events, vm.instrs)
	}
}

// TestLiveThreadOverflowStillPanics: recycling must not lift the cap on
// *concurrently live* threads — 70 workers alive at once still overflow,
// with the same message on both engines.
func TestLiveThreadOverflowStillPanics(t *testing.T) {
	b := ir.NewBuilder("overflow")
	w := b.Func("worker")
	x := w.Local("x", ir.F64)
	// Long-running workers: the cooperative scheduler advances every live
	// thread between spawns, so a one-statement worker would die (and
	// free its ID) before the next spawn. These outlive all 70 spawns.
	w.For("j", ir.CI(0), ir.CI(1<<20), ir.CI(1), func(j *ir.Var) {
		w.Set(x, ir.Add(ir.V(x), ir.CI(1)))
	})
	wf := w.Done()
	mb := b.Func("main")
	mb.For("i", ir.CI(0), ir.CI(70), ir.CI(1), func(i *ir.Var) {
		mb.Spawn(wf) // no Sync: every worker is still live at each spawn
	})
	m := b.Build(mb.Done())
	wmsg, _ := capturePanic(m, WithTreeWalk())
	vmsg, _ := capturePanic(m)
	if wmsg == "" || vmsg == "" {
		t.Fatalf("70 live threads did not overflow: walker %q, vm %q", wmsg, vmsg)
	}
	if wmsg != vmsg {
		t.Errorf("overflow panic diverged:\n  walker: %s\n  vm:     %s", wmsg, vmsg)
	}
}
