package interp

import (
	"discopop/internal/bytecode"
	"discopop/internal/ir"
)

// This file is the bytecode execution engine: a direct-dispatch loop over
// the flat instruction stream produced by internal/bytecode. It is the
// default engine behind Run (the tree walker remains available via
// WithTreeWalk as the semantic reference) and reproduces the walker's
// observable behavior exactly: the same tracer events in the same order,
// the same Instrs/Loads/Stores counts, the same yield points (so
// multi-threaded schedules match statement for statement), and the same
// runtime-error panics. The registry-wide differential tests in
// vm_diff_test.go enforce this bit for bit.
//
// The split between packages breaks what would otherwise be an import
// cycle: internal/bytecode knows only ir (compiler, ISA, program, cache),
// while the dispatch loop lives here because it shares the interpreter's
// threading, memory, and tracing machinery.

// vmCtrl is one entry of a thread's control stack: the currently open
// loop, branch, or lock regions of the running function. Return-unwinding
// pops it innermost-first, emitting the same ExitRegion/Unlock events the
// walker's call-stack unwind produces.
type vmCtrl struct {
	kind   uint8
	region *ir.Region
	start  int64 // Instrs at region entry
	iters  int64
	ivAddr uint64 // induction-variable address (loops)
	mutex  int32
}

const (
	ctrlLoop uint8 = iota
	ctrlBranch
	ctrlLock
)

// vmCall runs function fi on thread t: binds the frame (parameters from
// argv if non-nil, otherwise from the value stack), executes the body, and
// unbinds. It mirrors callFunc exactly, including the event order
// (EnterFunc, per-parameter BindVar+Store, per-local BindVar, body,
// FreeVar in reverse bind order, ExitFunc).
func (it *Interp) vmCall(t *thread, fi int32, argv []argVal, callLoc ir.Loc) float64 {
	f := &it.prog.Funcs[fi]
	fn := it.mod.Funcs[fi]
	if f.Entry < 0 {
		it.panicf("call to undefined function %s", fn.Name)
	}
	it.checkBudget(callLoc)
	if it.tracer != nil {
		it.evEnterFunc(fn, callLoc, t.id)
	}
	startInstrs := it.Instrs
	spSave := t.sp
	slotBase := len(t.slots)
	if n := slotBase + int(f.NSlots); n <= cap(t.slots) {
		t.slots = t.slots[:n]
	} else {
		t.slots = append(t.slots, make([]uint64, n-slotBase)...)
	}
	k := 0
	if argv == nil {
		k = t.vsp - int(f.ArgWords)
	}
	for i, p := range fn.Params {
		if p.ByValue {
			addr := it.stackAlloc(t, 1)
			t.slots[slotBase+i] = addr
			if it.tracer != nil {
				it.evBindVar(p, addr, 1, t.id)
			}
			var v float64
			if argv != nil {
				v = argv[i].val
			} else {
				v = t.vstack[k]
				k++
			}
			it.store(t, addr, v, fn.Loc, p, p.ParamOp)
			continue
		}
		if argv != nil {
			t.slots[slotBase+i] = argv[i].base
		} else {
			t.slots[slotBase+i] = uint64(t.vstack[k])
			k++
		}
	}
	if argv == nil {
		t.vsp -= int(f.ArgWords)
	}
	for j, v := range fn.Locals {
		slot := slotBase + len(fn.Params) + j
		if v.Heap {
			base := it.heapAlloc(v.Elems)
			t.slots[slot] = base
			if it.tracer != nil {
				it.evBindVar(v, base, v.Elems, t.id)
			}
			continue
		}
		addr := it.stackAlloc(t, v.Elems)
		t.slots[slot] = addr
		if it.tracer != nil {
			it.evBindVar(v, addr, v.Elems, t.id)
		}
	}
	ret := it.vmLoop(t, f, slotBase)
	// Frame exit: reverse bind order — locals (reversed), then by-value
	// parameters (reversed), matching the walker's bound list.
	if it.tracer != nil {
		for j := len(fn.Locals) - 1; j >= 0; j-- {
			v := fn.Locals[j]
			it.evFreeVar(v, t.slots[slotBase+len(fn.Params)+j], v.Elems, t.id)
		}
		for i := len(fn.Params) - 1; i >= 0; i-- {
			if p := fn.Params[i]; p.ByValue {
				it.evFreeVar(p, t.slots[slotBase+i], 1, t.id)
			}
		}
	}
	t.slots = t.slots[:slotBase]
	t.sp = spSave
	if it.tracer != nil {
		it.evExitFunc(fn, it.Instrs-startInstrs, t.id)
	}
	return ret
}

// vmLoop is the dispatch loop for one function activation. Hot state (the
// code and value stacks, the frame slot window) is cached in locals;
// anything a nested call may reallocate is reloaded after the call
// returns.
func (it *Interp) vmLoop(t *thread, f *bytecode.FuncInfo, slotBase int) float64 {
	if need := t.vsp + int(f.MaxStack); need > len(t.vstack) {
		ns := make([]float64, need+64)
		copy(ns, t.vstack)
		t.vstack = ns
	}
	code := it.prog.Code
	vars := it.mod.Vars
	stack := t.vstack
	sp := t.vsp
	slots := t.slots[slotBase:]
	ctrlBase := len(t.ctrl)
	pc := int(f.Entry)
	// Hot-path state, stable for the whole run: the address space pointer
	// and the tracing mode. Batched tracing (bt) keeps the inlined
	// TryLoad/TryStore fast path and appends an event with the compile-time
	// packed sink operand per access; per-event tracing (trcd) forces every
	// access through the full load/store slow path; both fall back to the
	// slow path when the inline attempt declines (page materialization,
	// range panics).
	space := it.space
	trcd := it.tracer != nil && it.batch == nil
	bt := it.batch != nil
	tid := t.id
	var tr1, tr2 []uint64
	var thr uint64
	if bt {
		ti := it.prog.Trace()
		tr1, tr2 = ti.S1, ti.S2
		thr = bytecode.SinkThread(tid)
	}
	ps := it.pairStats
	var prevOp bytecode.Opcode
	for {
		in := &code[pc]
		if in.Fl&bytecode.FStep != 0 {
			it.Instrs++
		}
		if ps != nil {
			ps.Counts[uint32(prevOp)<<8|uint32(in.Op)]++
			prevOp = in.Op
		}
		switch in.Op {
		case bytecode.OpPushC:
			stack[sp] = in.Val
			sp++
		case bytecode.OpLoadL:
			addr := slots[in.A]
			v, ok := space.TryLoad(addr)
			if trcd || !ok {
				v = it.load(t, addr, in.Loc, vars[in.B], in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			stack[sp] = v
			sp++
		case bytecode.OpLoadG:
			addr := uint64(in.A)
			v, ok := space.TryLoad(addr)
			if trcd || !ok {
				v = it.load(t, addr, in.Loc, vars[in.B], in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			stack[sp] = v
			sp++
		case bytecode.OpLoadLI, bytecode.OpLoadGI:
			v := vars[in.B]
			idx := int64(stack[sp-1])
			if idx < 0 || idx >= int64(v.Elems) {
				it.panicf("index %d out of range for %s[%d] at %s", idx, v.Name, v.Elems, in.Loc)
			}
			base := uint64(in.A)
			if in.Op == bytecode.OpLoadLI {
				base = slots[in.A]
			}
			addr := base + uint64(idx)
			val, ok := space.TryLoad(addr)
			if trcd || !ok {
				val = it.load(t, addr, in.Loc, v, in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			stack[sp-1] = val
		case bytecode.OpStoreL:
			sp--
			addr := slots[in.A]
			if trcd || !space.TryStore(addr, stack[sp]) {
				it.store(t, addr, stack[sp], in.Loc, vars[in.B], in.C)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr | evStoreBit, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpStoreG:
			sp--
			addr := uint64(in.A)
			if trcd || !space.TryStore(addr, stack[sp]) {
				it.store(t, addr, stack[sp], in.Loc, vars[in.B], in.C)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr | evStoreBit, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpStoreLI, bytecode.OpStoreGI:
			v := vars[in.B]
			idx := int64(stack[sp-1])
			if idx < 0 || idx >= int64(v.Elems) {
				it.panicf("index %d out of range for %s[%d] at %s", idx, v.Name, v.Elems, in.Loc)
			}
			base := uint64(in.A)
			if in.Op == bytecode.OpStoreLI {
				base = slots[in.A]
			}
			sp -= 2
			addr := base + uint64(idx)
			if trcd || !space.TryStore(addr, stack[sp]) {
				it.store(t, addr, stack[sp], in.Loc, v, in.C)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr | evStoreBit, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpBin:
			sp--
			v, ok := binHot(ir.BinOp(in.A), stack[sp-1], stack[sp])
			if !ok {
				v = binEval(ir.BinOp(in.A), stack[sp-1], stack[sp])
			}
			stack[sp-1] = v
		case bytecode.OpUn:
			stack[sp-1] = unEval(ir.UnOp(in.A), stack[sp-1])
		case bytecode.OpAndSC:
			if stack[sp-1] == 0 {
				pc = int(in.A)
				continue
			}
			sp--
		case bytecode.OpOrSC:
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
				pc = int(in.A)
				continue
			}
			sp--
		case bytecode.OpNorm:
			if stack[sp-1] != 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		case bytecode.OpRand:
			stack[sp] = it.rand()
			sp++
		case bytecode.OpRefL:
			stack[sp] = float64(slots[in.A])
			sp++
		case bytecode.OpRefG:
			stack[sp] = float64(uint64(in.A))
			sp++
		case bytecode.OpRefLI, bytecode.OpRefGI:
			v := vars[in.B]
			off := int64(stack[sp-1])
			if off < 0 || off > int64(v.Elems) {
				it.panicf("by-ref offset %d out of range for %s", off, v.Name)
			}
			base := uint64(in.A)
			if in.Op == bytecode.OpRefLI {
				base = slots[in.A]
			}
			stack[sp-1] = float64(base + uint64(off))
		case bytecode.OpCall:
			t.vsp = sp
			r := it.vmCall(t, in.A, nil, in.Loc)
			stack = t.vstack
			sp = t.vsp
			slots = t.slots[slotBase:]
			stack[sp] = r
			sp++
		case bytecode.OpCallVoid:
			t.vsp = sp
			it.vmCall(t, in.A, nil, in.Loc)
			stack = t.vstack
			sp = t.vsp
			slots = t.slots[slotBase:]
			it.yieldPoint(t)
		case bytecode.OpRet:
			var r float64
			if in.A != 0 {
				sp--
				r = stack[sp]
			}
			t.vsp = sp
			it.yieldPoint(t)
			it.unwindCtrl(t, ctrlBase)
			return r
		case bytecode.OpJmp:
			pc = int(in.A)
			continue
		case bytecode.OpBr:
			sp--
			cond := stack[sp] != 0
			it.yieldPoint(t)
			r := it.mod.Regions[in.A]
			if it.tracer != nil {
				it.evEnterRegion(r, tid)
			}
			t.ctrl = append(t.ctrl, vmCtrl{kind: ctrlBranch, region: r, start: it.Instrs})
			if !cond {
				pc = int(in.B)
				continue
			}
		case bytecode.OpExitBr:
			c := t.ctrl[len(t.ctrl)-1]
			t.ctrl = t.ctrl[:len(t.ctrl)-1]
			if it.tracer != nil {
				it.evExitRegion(c.region, 0, it.Instrs-c.start, tid)
			}
		case bytecode.OpForEnter:
			r := it.mod.Regions[in.A]
			if it.tracer != nil {
				it.evEnterRegion(r, tid)
			}
			start := it.Instrs
			var ivAddr uint64
			switch in.D {
			case 0:
				ivAddr = slots[in.B]
			case 1:
				ivAddr = uint64(in.B)
			default:
				it.panicf("unbound variable %s in %s", vars[in.B].Name, it.mod.Funcs[in.C].Name)
			}
			t.ctrl = append(t.ctrl, vmCtrl{kind: ctrlLoop, region: r, start: start, ivAddr: ivAddr})
		case bytecode.OpForInit:
			c := &t.ctrl[len(t.ctrl)-1]
			sp--
			it.store(t, c.ivAddr, stack[sp], in.Loc, vars[in.A], -4*in.B-1)
			t.loops = append(t.loops, LoopFrame{Region: in.B})
			it.evLoopPush(in.B, tid)
		case bytecode.OpLoopHead:
			c := &t.ctrl[len(t.ctrl)-1]
			t.loops[len(t.loops)-1].Iter = c.iters
			if it.tracer != nil {
				it.evLoopIter(c.region, c.iters, tid)
			}
		case bytecode.OpForTest:
			c := &t.ctrl[len(t.ctrl)-1]
			sp--
			to := stack[sp]
			cur, ok := space.TryLoad(c.ivAddr)
			if trcd || !ok {
				cur = it.load(t, c.ivAddr, in.Loc, vars[in.A], -4*in.B-2)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr1[pc] | thr, Loc: in.Loc, A: -4*in.B - 2, B: in.A})
				}
			}
			if !(cur < to) {
				pc = int(in.C)
				continue
			}
			if c.iters > maxIters {
				it.panicf("loop at %s exceeded max iterations", in.Loc)
			}
			if it.maxInstrs > 0 {
				it.checkBudget(in.Loc)
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpForInc:
			c := &t.ctrl[len(t.ctrl)-1]
			sp--
			cur, ok := space.TryLoad(c.ivAddr)
			if trcd || !ok {
				cur = it.load(t, c.ivAddr, in.Loc, vars[in.A], -4*in.B-3)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr1[pc] | thr, Loc: in.Loc, A: -4*in.B - 3, B: in.A})
				}
			}
			next := cur + stack[sp]
			if trcd || !space.TryStore(c.ivAddr, next) {
				it.store(t, c.ivAddr, next, in.Loc, vars[in.A], -4*in.B-4)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr2[pc] | thr | evStoreBit, Loc: in.Loc, A: -4*in.B - 4, B: in.A})
				}
			}
			c.iters++
			pc = int(in.C)
			continue
		case bytecode.OpLoopExit:
			t.loops = t.loops[:len(t.loops)-1]
			c := t.ctrl[len(t.ctrl)-1]
			t.ctrl = t.ctrl[:len(t.ctrl)-1]
			if it.tracer != nil {
				it.evExitRegion(c.region, c.iters, it.Instrs-c.start, tid)
			}
		case bytecode.OpWhileEnter:
			r := it.mod.Regions[in.A]
			if it.tracer != nil {
				it.evEnterRegion(r, tid)
			}
			t.ctrl = append(t.ctrl, vmCtrl{kind: ctrlLoop, region: r, start: it.Instrs})
			t.loops = append(t.loops, LoopFrame{Region: in.A})
			it.evLoopPush(in.A, tid)
		case bytecode.OpWhileTest:
			c := &t.ctrl[len(t.ctrl)-1]
			sp--
			if stack[sp] == 0 {
				pc = int(in.C)
				continue
			}
			if c.iters > maxIters {
				it.panicf("loop at %s exceeded max iterations", in.Loc)
			}
			if it.maxInstrs > 0 {
				it.checkBudget(in.Loc)
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpWhileNext:
			t.ctrl[len(t.ctrl)-1].iters++
			pc = int(in.C)
			continue
		case bytecode.OpLock:
			mid := int(in.A)
			it.block(t, func() bool { return it.mutexes[mid] == 0 })
			it.mutexes[mid] = t.id + 1
			if it.tracer != nil {
				it.evLock(mid, tid)
			}
			t.ctrl = append(t.ctrl, vmCtrl{kind: ctrlLock, mutex: in.A})
		case bytecode.OpUnlock:
			t.ctrl = t.ctrl[:len(t.ctrl)-1]
			it.mutexes[int(in.A)] = 0
			if it.tracer != nil {
				it.evUnlock(int(in.A), tid)
			}
		case bytecode.OpSpawn:
			fn := it.mod.Funcs[in.A]
			sp -= len(fn.Params)
			args := make([]argVal, len(fn.Params))
			for i, p := range fn.Params {
				if w := stack[sp+i]; p.ByValue {
					args[i] = argVal{val: w}
				} else {
					args[i] = argVal{base: uint64(w), byRef: true}
				}
			}
			t.vsp = sp
			it.spawnThread(t, fn, args)
			it.yieldPoint(t)
		case bytecode.OpSyncT:
			it.block(t, func() bool { return t.children == 0 })
		case bytecode.OpFreeH:
			v := vars[in.B]
			base := slots[in.A]
			it.heapFree(base, v.Elems)
			if it.tracer != nil {
				it.evFreeVar(v, base, v.Elems, tid)
			}
			it.yieldPoint(t)
		case bytecode.OpPanic:
			it.vmPanic(in)
		case bytecode.OpEnd:
			t.vsp = sp
			return 0

		// Superinstructions.
		case bytecode.OpForHeadC, bytecode.OpForHeadL, bytecode.OpForHeadG:
			c := &t.ctrl[len(t.ctrl)-1]
			t.loops[len(t.loops)-1].Iter = c.iters
			if it.tracer != nil {
				it.evLoopIter(c.region, c.iters, tid)
			}
			it.Instrs++ // the fused bound-eval op's step (walker: after LoopIter)
			to := in.Val
			switch in.Op {
			case bytecode.OpForHeadL, bytecode.OpForHeadG:
				addr := uint64(in.D)
				if in.Op == bytecode.OpForHeadL {
					addr = slots[in.D]
				}
				var ok bool
				to, ok = space.TryLoad(addr)
				if trcd || !ok {
					to = it.load(t, addr, in.Loc, vars[in.E], in.F)
				} else {
					it.Loads++
					if bt {
						it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.F, B: in.E})
					}
				}
			}
			cur, ok := space.TryLoad(c.ivAddr)
			if trcd || !ok {
				cur = it.load(t, c.ivAddr, in.Loc, vars[in.A], -4*in.B-2)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr2[pc] | thr, Loc: in.Loc, A: -4*in.B - 2, B: in.A})
				}
			}
			if !(cur < to) {
				pc = int(in.C)
				continue
			}
			if c.iters > maxIters {
				it.panicf("loop at %s exceeded max iterations", in.Loc)
			}
			if it.maxInstrs > 0 {
				it.checkBudget(in.Loc)
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpForIncC:
			c := &t.ctrl[len(t.ctrl)-1]
			cur, ok := space.TryLoad(c.ivAddr)
			if trcd || !ok {
				cur = it.load(t, c.ivAddr, in.Loc, vars[in.A], -4*in.B-3)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr1[pc] | thr, Loc: in.Loc, A: -4*in.B - 3, B: in.A})
				}
			}
			next := cur + in.Val
			if trcd || !space.TryStore(c.ivAddr, next) {
				it.store(t, c.ivAddr, next, in.Loc, vars[in.A], -4*in.B-4)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: c.ivAddr, Sink: tr2[pc] | thr | evStoreBit, Loc: in.Loc, A: -4*in.B - 4, B: in.A})
				}
			}
			c.iters++
			pc = int(in.C)
			continue
		case bytecode.OpBinC:
			v, ok := binHot(ir.BinOp(in.A), stack[sp-1], in.Val)
			if !ok {
				v = binEval(ir.BinOp(in.A), stack[sp-1], in.Val)
			}
			stack[sp-1] = v
		case bytecode.OpBinStoreL, bytecode.OpBinStoreG:
			sp -= 2
			v, ok := binHot(ir.BinOp(in.D), stack[sp], stack[sp+1])
			if !ok {
				v = binEval(ir.BinOp(in.D), stack[sp], stack[sp+1])
			}
			addr := uint64(in.A)
			if in.Op == bytecode.OpBinStoreL {
				addr = slots[in.A]
			}
			if trcd || !space.TryStore(addr, v) {
				it.store(t, addr, v, in.Loc, vars[in.B], in.C)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr | evStoreBit, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpStoreCL, bytecode.OpStoreCG:
			addr := uint64(in.A)
			if in.Op == bytecode.OpStoreCL {
				addr = slots[in.A]
			}
			if trcd || !space.TryStore(addr, in.Val) {
				it.store(t, addr, in.Val, in.Loc, vars[in.B], in.C)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr1[pc] | thr | evStoreBit, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		case bytecode.OpLoadLL:
			a1, a2 := slots[in.A], slots[in.D]
			v1, ok1 := space.TryLoad(a1)
			if trcd || !ok1 {
				v1 = it.load(t, a1, in.Loc, vars[in.B], in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: a1, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			v2, ok2 := space.TryLoad(a2)
			if trcd || !ok2 {
				v2 = it.load(t, a2, in.Loc, vars[in.E], in.F)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: a2, Sink: tr2[pc] | thr, Loc: in.Loc, A: in.F, B: in.E})
				}
			}
			stack[sp] = v1
			stack[sp+1] = v2
			sp += 2
		case bytecode.OpIdxLoadL, bytecode.OpIdxLoadG:
			ia := slots[in.A]
			iv, iok := space.TryLoad(ia)
			if trcd || !iok {
				iv = it.load(t, ia, in.Loc, vars[in.B], in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: ia, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			idx := int64(iv)
			v := vars[in.E]
			if idx < 0 || idx >= int64(v.Elems) {
				it.panicf("index %d out of range for %s[%d] at %s", idx, v.Name, v.Elems, in.Loc)
			}
			base := uint64(in.D)
			if in.Op == bytecode.OpIdxLoadL {
				base = slots[in.D]
			}
			addr := base + uint64(idx)
			val, ok := space.TryLoad(addr)
			if trcd || !ok {
				val = it.load(t, addr, in.Loc, v, in.F)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr2[pc] | thr, Loc: in.Loc, A: in.F, B: in.E})
				}
			}
			stack[sp] = val
			sp++
		case bytecode.OpIdxStoreL, bytecode.OpIdxStoreG:
			ia := slots[in.A]
			iv, iok := space.TryLoad(ia)
			if trcd || !iok {
				iv = it.load(t, ia, in.Loc, vars[in.B], in.C)
			} else {
				it.Loads++
				if bt {
					it.pushEv(Ev{Addr: ia, Sink: tr1[pc] | thr, Loc: in.Loc, A: in.C, B: in.B})
				}
			}
			idx := int64(iv)
			v := vars[in.E]
			if idx < 0 || idx >= int64(v.Elems) {
				it.panicf("index %d out of range for %s[%d] at %s", idx, v.Name, v.Elems, in.Loc)
			}
			base := uint64(in.D)
			if in.Op == bytecode.OpIdxStoreL {
				base = slots[in.D]
			}
			sp--
			addr := base + uint64(idx)
			if trcd || !space.TryStore(addr, stack[sp]) {
				it.store(t, addr, stack[sp], in.Loc, v, in.F)
			} else {
				it.Stores++
				if bt {
					it.pushEv(Ev{Addr: addr, Sink: tr2[pc] | thr | evStoreBit, Loc: in.Loc, A: in.F, B: in.E})
				}
			}
			if it.mt {
				it.yieldPoint(t)
			}
		default:
			it.panicf("invalid opcode %v at pc %d", in.Op, pc)
		}
		pc++
	}
}

// unwindCtrl pops every control region opened inside the current function
// activation, emitting the exit events the walker's return-unwind emits.
func (it *Interp) unwindCtrl(t *thread, base int) {
	for len(t.ctrl) > base {
		c := t.ctrl[len(t.ctrl)-1]
		t.ctrl = t.ctrl[:len(t.ctrl)-1]
		switch c.kind {
		case ctrlLoop:
			t.loops = t.loops[:len(t.loops)-1]
			if it.tracer != nil {
				it.evExitRegion(c.region, c.iters, it.Instrs-c.start, t.id)
			}
		case ctrlBranch:
			if it.tracer != nil {
				it.evExitRegion(c.region, 0, it.Instrs-c.start, t.id)
			}
		case ctrlLock:
			it.mutexes[int(c.mutex)] = 0
			if it.tracer != nil {
				it.evUnlock(int(c.mutex), t.id)
			}
		}
	}
}

// vmPanic raises the walker's runtime-error message for a statically
// detected fault (see bytecode.PanicKind).
func (it *Interp) vmPanic(in *bytecode.Instr) {
	switch bytecode.PanicKind(in.B) {
	case bytecode.PanicUnbound:
		it.panicf("unbound variable %s in %s", it.mod.Vars[in.A].Name, it.mod.Funcs[in.C].Name)
	case bytecode.PanicArity:
		f := it.mod.Funcs[in.A]
		it.panicf("call to %s with %d args, want %d", f.Name, in.C, len(f.Params))
	case bytecode.PanicRefArg:
		f := it.mod.Funcs[in.A]
		it.panicf("by-reference parameter %s of %s needs a variable argument", f.Params[in.C].Name, f.Name)
	case bytecode.PanicFreeUnbound:
		it.panicf("free of unbound variable %s", it.mod.Vars[in.A].Name)
	case bytecode.PanicFreeNonHeap:
		it.panicf("free of non-heap variable %s", it.mod.Vars[in.A].Name)
	}
	it.panicf("invalid panic op")
}
