package interp

import (
	"fmt"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// This file is the acceptance harness for the batched tracing path: the
// 32-byte Ev stream, replayed through ReplayBatch, must reproduce the
// per-event Tracer call sequence bit for bit — same fields, same order,
// same reconstructed timestamps and loop stacks — on every bundled
// workload and across runtime-error panics.

// runReplayed drives the VM in batch mode and expands the stream back into
// per-event calls: MultiTracer batches (it implements BatchTracer) and
// replays to the legacy hasher child via ReplayBatch.
func runReplayed(m *ir.Module, opts ...Option) engineRun {
	th := &traceHasher{sum: fnvOffset}
	it := New(m, &MultiTracer{Tracers: []Tracer{th}}, opts...)
	ret := it.Run()
	return engineRun{
		sum: th.sum, events: th.events, ret: ret,
		instrs: it.Instrs, loads: it.Loads, stores: it.Stores,
	}
}

// TestBatchedReplayMatchesPerEvent: for every bundled workload the batched
// event stream, replayed, hashes identically to both the direct per-event
// VM trace and the reference tree walker's. This pins down everything the
// packing touches: kind/thread extraction from the Sink word, the
// counted-not-carried timestamps, EvExitRegion's instruction count riding
// in the Loc field, and loop-stack reconstruction from EvLoopPush.
func TestBatchedReplayMatchesPerEvent(t *testing.T) {
	for _, name := range workloads.Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := workloads.MustBuild(name, 1).M
			walk := runEngine(m, WithTreeWalk())
			per := runEngine(m)
			rep := runReplayed(m)
			if per.sum != rep.sum || per.events != rep.events {
				t.Errorf("replayed batch diverged from per-event VM: %016x (%d events) vs %016x (%d events)",
					rep.sum, rep.events, per.sum, per.events)
			}
			if walk.sum != rep.sum {
				t.Errorf("replayed batch diverged from walker: %016x vs %016x", rep.sum, walk.sum)
			}
			if rep.instrs != per.instrs || rep.ret != per.ret {
				t.Errorf("counters diverged: replayed %d instrs (ret %d), per-event %d (ret %d)",
					rep.instrs, rep.ret, per.instrs, per.ret)
			}
		})
	}
}

// oobModule builds a module whose 7th store lands outside the bound of a
// 4-element global array.
func oobModule() *ir.Module {
	b := ir.NewBuilder("oob")
	arr := b.GlobalArray("arr", ir.F64, 4)
	fb := b.Func("main")
	fb.For("i", ir.CI(0), ir.CI(10), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(arr, ir.V(i), ir.CF(1))
	})
	return b.Build(fb.Done())
}

// boundsTracer records every delivered access address, embedded under the
// hasher's event accounting.
type boundsTracer struct {
	traceHasher
	maxAddr  uint64
	accesses int
}

func (bt *boundsTracer) Load(a Access)  { bt.seen(a); bt.traceHasher.Load(a) }
func (bt *boundsTracer) Store(a Access) { bt.seen(a); bt.traceHasher.Store(a) }
func (bt *boundsTracer) seen(a Access) {
	bt.accesses++
	if a.Addr > bt.maxAddr {
		bt.maxAddr = a.Addr
	}
}

// runToPanic drives a traced run to completion or panic, returning the
// panic message ("" if none).
func runToPanic(m *ir.Module, tr Tracer, opts ...Option) (msg string) {
	it := New(m, tr, opts...)
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	it.Run()
	return
}

// TestFaultingAccessEmitsNoEvent: an out-of-range access panics on every
// engine path — walker, per-event VM, batched VM — *without* feeding the
// bogus address to the tracer, and with the pre-fault prefix of the trace
// delivered identically (the batch buffer is flushed before the panic
// propagates). The bounds check preceding event emission is a PR 8 fix:
// the batched fast paths briefly emitted the event before the bound test,
// poisoning the dependence table of any consumer that recovers.
func TestFaultingAccessEmitsNoEvent(t *testing.T) {
	type variant struct {
		name string
		run  func(m *ir.Module, bt *boundsTracer) string
	}
	variants := []variant{
		{"treewalk", func(m *ir.Module, bt *boundsTracer) string {
			return runToPanic(m, bt, WithTreeWalk())
		}},
		{"vm-per-event", func(m *ir.Module, bt *boundsTracer) string {
			return runToPanic(m, bt)
		}},
		{"vm-batched", func(m *ir.Module, bt *boundsTracer) string {
			return runToPanic(m, &MultiTracer{Tracers: []Tracer{bt}})
		}},
	}
	type outcome struct {
		msg      string
		sum      uint64
		events   int64
		accesses int
	}
	var ref outcome
	for i, v := range variants {
		m := oobModule()
		bound := New(m, nil).Space().Bound()
		bt := &boundsTracer{traceHasher: traceHasher{sum: fnvOffset}}
		msg := v.run(m, bt)
		if msg == "" {
			t.Fatalf("%s: out-of-range store did not panic", v.name)
		}
		if bt.maxAddr >= bound {
			t.Errorf("%s: faulting address %d (bound %d) was delivered to the tracer",
				v.name, bt.maxAddr, bound)
		}
		got := outcome{msg, bt.sum, bt.events, bt.accesses}
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("%s diverged from %s across the fault:\n  %+v\n  %+v",
				v.name, variants[0].name, got, ref)
		}
	}
}
