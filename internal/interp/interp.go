// Package interp executes IR modules and emits the instrumentation event
// stream that Phase 1 of the framework consumes: one event per memory
// access, control-region entry/exit, loop iteration, function call, variable
// allocation/deallocation, and synchronization operation. It plays the role
// of the instrumented binary plus libDiscoPoP runtime of Section 1.5.
//
// Running with a nil Tracer is the "uninstrumented" baseline against which
// profiling slowdown is measured; the interpreter's own cost cancels out of
// the slowdown ratio exactly as native execution time does in the paper.
package interp

import (
	"fmt"
	"math"
	"time"

	"discopop/internal/bytecode"
	"discopop/internal/ir"
	"discopop/internal/mem"
)

// LoopFrame is one level of the active loop-nest stack at the time of an
// access: the loop region and its current iteration number. The profiler
// uses it to classify dependences as loop-carried.
type LoopFrame struct {
	Region int32
	Iter   int64
}

// Access describes one dynamic memory access.
type Access struct {
	Addr   uint64
	Loc    ir.Loc
	Var    *ir.Var
	Op     int32 // static memory-operation ID (Section 2.4's accessInfo)
	Thread int32
	TS     uint64 // global logical timestamp
	// Loops is the active loop-nest stack, innermost last. The slice is
	// reused between events; tracers must copy it if they retain it.
	Loops []LoopFrame
}

// Tracer receives the instrumentation event stream. Methods are called
// synchronously in execution order (the simulated-thread scheduler
// serializes all threads onto one event stream, so cross-thread event order
// matches the simulated happens-before order).
type Tracer interface {
	Load(a Access)
	Store(a Access)
	EnterRegion(r *ir.Region, tid int32)
	ExitRegion(r *ir.Region, iters int64, instrs int64, tid int32)
	LoopIter(r *ir.Region, iter int64, tid int32)
	EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32)
	ExitFunc(f *ir.Func, instrs int64, tid int32)
	BindVar(v *ir.Var, base uint64, elems int, tid int32)
	FreeVar(v *ir.Var, base uint64, elems int, tid int32)
	Lock(id int, tid int32)
	Unlock(id int, tid int32)
	ThreadStart(tid, parent int32)
	ThreadEnd(tid int32)
}

// BaseTracer is a no-op Tracer that other tracers may embed to implement
// only the events they care about.
type BaseTracer struct{}

// Load implements Tracer.
func (BaseTracer) Load(Access) {}

// Store implements Tracer.
func (BaseTracer) Store(Access) {}

// EnterRegion implements Tracer.
func (BaseTracer) EnterRegion(*ir.Region, int32) {}

// ExitRegion implements Tracer.
func (BaseTracer) ExitRegion(*ir.Region, int64, int64, int32) {}

// LoopIter implements Tracer.
func (BaseTracer) LoopIter(*ir.Region, int64, int32) {}

// EnterFunc implements Tracer.
func (BaseTracer) EnterFunc(*ir.Func, ir.Loc, int32) {}

// ExitFunc implements Tracer.
func (BaseTracer) ExitFunc(*ir.Func, int64, int32) {}

// BindVar implements Tracer.
func (BaseTracer) BindVar(*ir.Var, uint64, int, int32) {}

// FreeVar implements Tracer.
func (BaseTracer) FreeVar(*ir.Var, uint64, int, int32) {}

// Lock implements Tracer.
func (BaseTracer) Lock(int, int32) {}

// Unlock implements Tracer.
func (BaseTracer) Unlock(int, int32) {}

// ThreadStart implements Tracer.
func (BaseTracer) ThreadStart(int32, int32) {}

// ThreadEnd implements Tracer.
func (BaseTracer) ThreadEnd(int32) {}

// MaxThreads is the maximum number of simulated threads per execution. The
// address-space layout (internal/mem) reserves one stack segment per
// thread; segments materialize lazily on first touch.
const MaxThreads = mem.MaxThreads

const maxIters = int64(1) << 40

// PrepareOps assigns static memory-operation IDs (Section 2.4's accessInfo
// identities) to every Ref of the module, returning the number of
// operations. The numbering runs exactly once per module (synchronized
// through ir.Module): it is deterministic, so later calls return the
// recorded count without re-writing Op fields a concurrent analysis of the
// same module may be reading. Loop headers use dedicated negative IDs
// derived from their region, handled by the interpreter directly.
func PrepareOps(m *ir.Module) int32 {
	return m.NumberOps(ir.NumberStaticOps)
}

// Interp executes one module. Create with New, run with Run. An Interp is
// single-use: run it once, then (when constructed WithPool) call Release to
// recycle its address space for the next run.
type Interp struct {
	mod    *ir.Module
	tracer Tracer

	space      *mem.Space
	pool       *mem.Pool // non-nil when the space came from a pool
	layout     mem.Layout
	globalBase map[*ir.Var]uint64

	mainT    *thread
	spawned  []*thread
	nextTID  int32
	freeTIDs []int32 // dead thread IDs available for reuse (LIFO)
	nthreads int
	mt       bool // true while spawned threads are live
	mutexes  map[int]int32

	ts        uint64
	rng       uint64
	nextOp    int32
	maxInstrs int64 // 0 = unbounded

	// Batched tracing (VM only; see batch.go): non-nil batch switches
	// event emission from per-event Tracer calls to Ev records appended to
	// evs and flushed in chunks.
	batch BatchTracer
	evs   []Ev

	prog      *bytecode.Program // nil under WithTreeWalk
	pairStats *bytecode.PairStats

	// Stats
	Instrs  int64 // total leaf statements executed
	Loads   int64
	Stores  int64
	MaxHeap uint64

	// CompileTime is the bytecode compilation time spent by New (zero on a
	// compile-cache hit or under WithTreeWalk/WithProgram); CompileHit
	// reports whether the shared cache already held the program.
	CompileTime time.Duration
	CompileHit  bool
}

// New creates an interpreter for module m reporting events to t (nil for an
// uninstrumented run). Options select where the simulated address space
// comes from: by default a fresh lazily-materialized mem.Space, with
// WithSpace/WithPool recycling arenas across runs.
func New(m *ir.Module, t Tracer, opts ...Option) *Interp {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	it := &Interp{
		mod:        m,
		tracer:     t,
		globalBase: map[*ir.Var]uint64{},
		mutexes:    map[int]int32{},
		rng:        0x2545F4914F6CDD1D,
		maxInstrs:  cfg.maxInstrs,
	}
	// Globals occupy [1, globalsEnd) in declaration order; address 0 is
	// unused so that 0 can mean "no address". Stack and heap segment
	// boundaries are derived by the layout.
	next := uint64(1)
	for _, v := range m.Vars {
		if v.Kind == ir.KGlobal {
			it.globalBase[v] = next
			next += uint64(v.Elems)
		}
	}
	it.layout = mem.NewLayout(next)
	switch {
	case cfg.space != nil:
		if cfg.space.Layout() != it.layout {
			panic("interp: recycled space layout does not match the module")
		}
		it.space = cfg.space
	case cfg.pool != nil:
		it.space = cfg.pool.Get(it.layout)
		it.pool = cfg.pool
	default:
		it.space = mem.NewSpace(it.layout)
	}
	it.nextOp = PrepareOps(m)
	if !cfg.treeWalk {
		switch {
		case cfg.prog != nil:
			it.prog = cfg.prog
		default:
			prog, hit, dur := bytecode.Shared.Get(m)
			it.prog = prog
			it.CompileHit = hit
			it.CompileTime = dur
		}
		if it.prog.GlobalsEnd != next {
			panic("interp: compiled program does not match the module's global layout")
		}
		it.pairStats = cfg.pairStats
	}
	if it.tracer != nil {
		it.enableBatch()
	}
	return it
}

// Space exposes the interpreter's address space (state inspection, tests).
func (it *Interp) Space() *mem.Space { return it.space }

// Release returns a pooled address space for recycling. It is a no-op for
// interpreters constructed without WithPool, and idempotent; the Interp
// must not be used afterwards.
func (it *Interp) Release() {
	if it.pool != nil && it.space != nil {
		it.pool.Put(it.space)
	}
	it.space = nil
}

// NumOps returns the number of static memory operations in the module.
func (it *Interp) NumOps() int32 { return it.nextOp }

func (it *Interp) rand() float64 {
	// xorshift64*
	it.rng ^= it.rng >> 12
	it.rng ^= it.rng << 25
	it.rng ^= it.rng >> 27
	return float64(it.rng*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// Run executes the module's entry function to completion and returns the
// total number of leaf statements executed.
func (it *Interp) Run() int64 {
	if it.mod.Main == nil {
		panic("interp: module has no entry function")
	}
	main := it.newThread(0, -1)
	it.mainT = main
	it.nextTID = 1
	it.execThread(main, it.mod.Main, nil)
	// Drain any threads the program forgot to join.
	for it.mt {
		if !it.runRound() && it.mt {
			panic("interp: deadlock after main exit")
		}
	}
	it.flushEvents()
	return it.Instrs
}

// heapAlloc reserves n elements on the simulated heap, reusing freed blocks
// of the same size so that addresses get recycled (the hazard the variable
// lifetime analysis of Section 2.3.5 guards against).
func (it *Interp) heapAlloc(n int) uint64 {
	base := it.space.Alloc(n)
	if h := it.space.MaxHeap(); h > it.MaxHeap {
		it.MaxHeap = h
	}
	return base
}

func (it *Interp) heapFree(base uint64, n int) {
	it.space.Free(base, n)
}

// Panicf aborts interpretation with a formatted runtime error. Buffered
// trace events are flushed first, so batch tracers observe everything that
// preceded the fault, exactly like per-event tracers do.
func (it *Interp) panicf(format string, args ...any) {
	it.flushEvents()
	panic(fmt.Sprintf("interp: "+format, args...))
}

func (it *Interp) load(t *thread, addr uint64, loc ir.Loc, v *ir.Var, op int32) float64 {
	it.Loads++
	// Bounds come first: an out-of-range access must panic without feeding
	// a bogus event to the tracer (and through it the dependence table).
	if addr >= it.space.Bound() {
		it.panicf("load out of range: %s[%d] at %s", v.Name, addr, loc)
	}
	if it.batch != nil {
		it.pushEv(Ev{Addr: addr, Sink: sinkOf(loc, v, t.id),
			Loc: loc, A: op, B: int32(v.ID)})
	} else if it.tracer != nil {
		it.ts++
		it.tracer.Load(Access{Addr: addr, Loc: loc, Var: v, Op: op,
			Thread: t.id, TS: it.ts, Loops: t.loops})
	}
	return it.space.Load(addr)
}

func (it *Interp) store(t *thread, addr uint64, val float64, loc ir.Loc, v *ir.Var, op int32) {
	it.Stores++
	if addr >= it.space.Bound() {
		it.panicf("store out of range: %s[%d] at %s", v.Name, addr, loc)
	}
	if it.batch != nil {
		it.pushEv(Ev{Addr: addr, Sink: sinkOf(loc, v, t.id) | evStoreBit,
			Loc: loc, A: op, B: int32(v.ID)})
	} else if it.tracer != nil {
		it.ts++
		it.tracer.Store(Access{Addr: addr, Loc: loc, Var: v, Op: op,
			Thread: t.id, TS: it.ts, Loops: t.loops})
	}
	it.space.Store(addr, val)
}

// addrOf resolves the base address of variable v in thread t's top frame.
func (it *Interp) addrOf(t *thread, v *ir.Var) uint64 {
	if v.Kind == ir.KGlobal {
		return it.globalBase[v]
	}
	fr := t.top()
	a, ok := fr.env[v]
	if !ok {
		it.panicf("unbound variable %s in %s", v.Name, fr.fn.Name)
	}
	return a
}

// elemAddr resolves the address of ref (scalar or indexed), evaluating and
// tracing the index expression.
func (it *Interp) elemAddr(t *thread, r *ir.Ref, loc ir.Loc) uint64 {
	base := it.addrOf(t, r.Var)
	if r.Index == nil {
		return base
	}
	idx := int64(it.eval(t, r.Index, loc))
	if idx < 0 || idx >= int64(r.Var.Elems) {
		it.panicf("index %d out of range for %s[%d] at %s", idx, r.Var.Name, r.Var.Elems, loc)
	}
	return base + uint64(idx)
}

// eval evaluates an expression. All access events inherit loc, the location
// of the enclosing statement, matching the paper's line-level dependences.
func (it *Interp) eval(t *thread, e ir.Expr, loc ir.Loc) float64 {
	switch n := e.(type) {
	case *ir.Const:
		return n.Val
	case *ir.Ref:
		addr := it.elemAddr(t, n, loc)
		return it.load(t, addr, loc, n.Var, n.Op)
	case *ir.Bin:
		l := it.eval(t, n.L, loc)
		// Short-circuit logical operators.
		switch n.Op {
		case ir.OpLAnd:
			if l == 0 {
				return 0
			}
			return b2f(it.eval(t, n.R, loc) != 0)
		case ir.OpLOr:
			if l != 0 {
				return 1
			}
			return b2f(it.eval(t, n.R, loc) != 0)
		}
		r := it.eval(t, n.R, loc)
		return binEval(n.Op, l, r)
	case *ir.Un:
		x := it.eval(t, n.X, loc)
		return unEval(n.Op, x)
	case *ir.Rand:
		return it.rand()
	case *ir.CallExpr:
		return it.call(t, n, loc)
	}
	it.panicf("unknown expression %T", e)
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// binHot evaluates the arithmetic operators that dominate dynamic op
// frequency, shaped to inline into the VM dispatch loop; everything else
// reports false and takes the full binEval switch.
func binHot(op ir.BinOp, l, r float64) (float64, bool) {
	switch op {
	case ir.OpAdd:
		return l + r, true
	case ir.OpSub:
		return l - r, true
	case ir.OpMul:
		return l * r, true
	case ir.OpLt:
		return b2f(l < r), true
	case ir.OpLe:
		return b2f(l <= r), true
	}
	return 0, false
}

func binEval(op ir.BinOp, l, r float64) float64 {
	switch op {
	case ir.OpAdd:
		return l + r
	case ir.OpSub:
		return l - r
	case ir.OpMul:
		return l * r
	case ir.OpDiv:
		if r == 0 {
			return 0
		}
		return l / r
	case ir.OpMod:
		ir2 := int64(r)
		if ir2 == 0 {
			return 0
		}
		return float64(int64(l) % ir2)
	case ir.OpAnd:
		return float64(int64(l) & int64(r))
	case ir.OpOr:
		return float64(int64(l) | int64(r))
	case ir.OpXor:
		return float64(int64(l) ^ int64(r))
	case ir.OpShl:
		return float64(int64(l) << (uint64(r) & 63))
	case ir.OpShr:
		return float64(int64(l) >> (uint64(r) & 63))
	case ir.OpLt:
		return b2f(l < r)
	case ir.OpLe:
		return b2f(l <= r)
	case ir.OpGt:
		return b2f(l > r)
	case ir.OpGe:
		return b2f(l >= r)
	case ir.OpEq:
		return b2f(l == r)
	case ir.OpNe:
		return b2f(l != r)
	case ir.OpMin:
		return math.Min(l, r)
	case ir.OpMax:
		return math.Max(l, r)
	}
	return 0
}

func unEval(op ir.UnOp, x float64) float64 {
	switch op {
	case ir.OpNeg:
		return -x
	case ir.OpNot:
		return b2f(x == 0)
	case ir.OpSqrt:
		return math.Sqrt(math.Abs(x))
	case ir.OpSin:
		return math.Sin(x)
	case ir.OpCos:
		return math.Cos(x)
	case ir.OpExp:
		return math.Exp(x)
	case ir.OpLog:
		if x <= 0 {
			return 0
		}
		return math.Log(x)
	case ir.OpAbs:
		return math.Abs(x)
	case ir.OpFloor:
		return math.Floor(x)
	}
	return 0
}
