package interp

import (
	"fmt"
	"strings"
	"testing"

	"discopop/internal/ir"
)

// run executes a module and returns the interpreter for state inspection.
func run(t *testing.T, m *ir.Module, tr Tracer) *Interp {
	t.Helper()
	it := New(m, tr)
	it.Run()
	return it
}

// resultOf builds a module whose main computes into global `out`.
func resultOf(t *testing.T, build func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var)) float64 {
	t.Helper()
	b := ir.NewBuilder("t")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	build(b, fb, out)
	m := b.Build(fb.Done())
	it := run(t, m, nil)
	return it.space.Load(it.globalBase[out])
}

func TestArithmetic(t *testing.T) {
	got := resultOf(t, func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var) {
		fb.Set(out, ir.Add(ir.Mul(ir.CI(6), ir.CI(7)), ir.Div(ir.CI(10), ir.CI(4))))
	})
	if got != 44.5 {
		t.Fatalf("6*7 + 10/4 = %v, want 44.5", got)
	}
}

func TestIntegerOps(t *testing.T) {
	got := resultOf(t, func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var) {
		// (0b1100 ^ 0b1010) | (1 << 4) = 0b0110 | 0b10000 = 22; 22 % 5 = 2.
		fb.Set(out, ir.Mod(ir.OrB(ir.Xor(ir.CI(12), ir.CI(10)), ir.Shl(ir.CI(1), ir.CI(4))), ir.CI(5)))
	})
	if got != 2 {
		t.Fatalf("bit ops = %v, want 2", got)
	}
}

func TestLoopSum(t *testing.T) {
	got := resultOf(t, func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var) {
		fb.For("i", ir.CI(1), ir.CI(101), ir.CI(1), func(i *ir.Var) {
			fb.Set(out, ir.Add(ir.V(out), ir.V(i)))
		})
	})
	if got != 5050 {
		t.Fatalf("sum 1..100 = %v, want 5050", got)
	}
}

func TestWhileLoop(t *testing.T) {
	got := resultOf(t, func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var) {
		k := fb.Local("k", ir.I64)
		fb.Set(k, ir.CI(10))
		fb.While(ir.Gt(ir.V(k), ir.CI(0)), func() {
			fb.Set(out, ir.Add(ir.V(out), ir.CI(1)))
			fb.Set(k, ir.Sub(ir.V(k), ir.CI(1)))
		})
	})
	if got != 10 {
		t.Fatalf("while iterations = %v, want 10", got)
	}
}

// TestMaxInstrsBudget pins the execution budget: a structurally tiny
// module with an effectively infinite loop must abort as a runtime error
// once the budget is exhausted, and the same budget must not trip a
// program that finishes under it.
func TestMaxInstrsBudget(t *testing.T) {
	build := func() *ir.Module {
		b := ir.NewBuilder("runaway")
		out := b.Global("out", ir.F64)
		fb := b.Func("main")
		fb.While(ir.Lt(ir.CI(0), ir.CI(1)), func() {
			fb.Set(out, ir.Add(ir.V(out), ir.CI(1)))
		})
		fb.Return(nil)
		return b.Build(fb.Done())
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("runaway loop must be stopped by the budget")
			}
			if !strings.Contains(fmt.Sprint(r), "instruction budget") {
				t.Fatalf("panic %v is not the budget error", r)
			}
		}()
		New(build(), nil, WithMaxInstrs(10_000)).Run()
	}()
	// A bounded program under the same budget runs to completion.
	b := ir.NewBuilder("bounded")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	fb.For("i", ir.CI(0), ir.CI(100), ir.CI(1), func(i *ir.Var) {
		fb.Set(out, ir.Add(ir.V(out), ir.V(i)))
	})
	fb.Return(nil)
	it := New(b.Build(fb.Done()), nil, WithMaxInstrs(10_000))
	it.Run()
	if got := it.space.Load(it.globalBase[out]); got != 4950 {
		t.Fatalf("budgeted bounded run computed %v, want 4950", got)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	b := ir.NewBuilder("fib")
	out := b.Global("out", ir.F64)
	f := b.Forward("fib", true)
	fb := b.DefineForward(f)
	n := fb.Param("n", ir.F64)
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	fb.IfElse(ir.Lt(ir.V(n), ir.CI(2)), func() {
		fb.Return(ir.V(n))
	}, func() {
		fb.CallInto(ir.V(x), f, ir.Sub(ir.V(n), ir.CI(1)))
		fb.CallInto(ir.V(y), f, ir.Sub(ir.V(n), ir.CI(2)))
		fb.Return(ir.Add(ir.V(x), ir.V(y)))
	})
	fb.Done()
	mb := b.Func("main")
	mb.CallInto(ir.V(out), f, ir.CI(15))
	m := b.Build(mb.Done())
	it := run(t, m, nil)
	if got := it.space.Load(it.globalBase[out]); got != 610 {
		t.Fatalf("fib(15) = %v, want 610", got)
	}
}

func TestByRefAliasing(t *testing.T) {
	b := ir.NewBuilder("alias")
	arr := b.GlobalArray("arr", ir.F64, 8)
	inc := b.Func("inc")
	p := inc.RefParam("p", ir.F64, 4)
	inc.SetAt(p, ir.CI(0), ir.Add(ir.At(p, ir.CI(0)), ir.CI(1)))
	incF := inc.Done()
	mb := b.Func("main")
	mb.SetAt(arr, ir.CI(4), ir.CI(10))
	// Pass arr offset by 4: the callee's p[0] is arr[4].
	mb.Call(incF, ir.At(arr, ir.CI(4)))
	mb.Call(incF, ir.At(arr, ir.CI(4)))
	m := b.Build(mb.Done())
	it := run(t, m, nil)
	if got := it.space.Load(it.globalBase[arr] + 4); got != 12 {
		t.Fatalf("arr[4] = %v, want 12", got)
	}
}

func TestByValueParamIsCopied(t *testing.T) {
	got := resultOf(t, func(b *ir.Builder, fb *ir.FuncBuilder, out *ir.Var) {
		f := b.Func("mod")
		v := f.Param("v", ir.F64)
		f.Set(v, ir.CI(99)) // must not affect the caller
		fd := f.Done()
		x := fb.Local("x", ir.F64)
		fb.Set(x, ir.CI(5))
		fb.Call(fd, ir.V(x))
		fb.Set(out, ir.V(x))
	})
	if got != 5 {
		t.Fatalf("by-value arg modified caller: %v", got)
	}
}

func TestReturnInsideLoopFiresExitRegion(t *testing.T) {
	b := ir.NewBuilder("ret")
	f := b.FuncRet("find")
	lim := f.Param("lim", ir.F64)
	f.For("i", ir.CI(0), ir.CI(100), ir.CI(1), func(i *ir.Var) {
		f.If(ir.Ge(ir.V(i), ir.V(lim)), func() {
			f.Return(ir.V(i))
		})
	})
	f.Return(ir.CI(-1))
	fd := f.Done()
	mb := b.Func("main")
	out := b.Global("out", ir.F64)
	mb.CallInto(ir.V(out), fd, ir.CI(7))
	m := b.Build(mb.Done())

	exits := map[int]int64{}
	tr := &regionTracer{exits: exits}
	it := New(m, tr)
	it.Run()
	if got := it.space.Load(it.globalBase[out]); got != 7 {
		t.Fatalf("early return value = %v, want 7", got)
	}
	if len(exits) == 0 {
		t.Fatal("no ExitRegion events for early-returned loop")
	}
	if tr.depth != 0 {
		t.Fatalf("unbalanced region events: depth %d", tr.depth)
	}
}

type regionTracer struct {
	BaseTracer
	exits map[int]int64
	depth int
}

func (r *regionTracer) EnterRegion(reg *ir.Region, tid int32) { r.depth++ }
func (r *regionTracer) ExitRegion(reg *ir.Region, iters, instrs int64, tid int32) {
	r.depth--
	r.exits[reg.ID] = iters
}

func TestHeapFreeAndReuse(t *testing.T) {
	b := ir.NewBuilder("heap")
	f := b.Func("scratch")
	buf := f.HeapArray("buf", ir.F64, 16)
	f.SetAt(buf, ir.CI(0), ir.CI(1))
	f.Free(buf)
	fd := f.Done()
	mb := b.Func("main")
	mb.Call(fd)
	mb.Call(fd)
	mb.Call(fd)
	m := b.Build(mb.Done())
	it := run(t, m, nil)
	// Freed blocks must be reused: three calls, one 16-elem block.
	if it.MaxHeap > 16 {
		t.Fatalf("heap grew to %d elems; free list not reused", it.MaxHeap)
	}
}

func TestStackReuseAcrossCalls(t *testing.T) {
	b := ir.NewBuilder("stack")
	f := b.Func("leaf")
	x := f.Local("x", ir.F64)
	f.Set(x, ir.CI(1))
	fd := f.Done()
	mb := b.Func("main")
	mb.Call(fd)
	mb.Call(fd)
	m := b.Build(mb.Done())
	binds := map[uint64]int{}
	tr := &bindTracer{binds: binds}
	it := New(m, tr)
	it.Run()
	// Both calls must bind x at the same (reused) stack address.
	for addr, n := range binds {
		if n != 2 {
			t.Fatalf("address %d bound %d times, want 2 (stack reuse)", addr, n)
		}
	}
	if len(binds) != 1 {
		t.Fatalf("distinct bind addresses: %d, want 1", len(binds))
	}
}

type bindTracer struct {
	BaseTracer
	binds map[uint64]int
}

func (b *bindTracer) BindVar(v *ir.Var, base uint64, elems int, tid int32) {
	if v.Name == "x" {
		b.binds[base]++
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *ir.Module {
		b := ir.NewBuilder("det")
		out := b.Global("out", ir.F64)
		fb := b.Func("main")
		fb.For("i", ir.CI(0), ir.CI(1000), ir.CI(1), func(i *ir.Var) {
			fb.Set(out, ir.Add(ir.V(out), ir.Rnd()))
		})
		return b.Build(fb.Done())
	}
	i1, i2 := New(build(), nil), New(build(), nil)
	n1, n2 := i1.Run(), i2.Run()
	if n1 != n2 {
		t.Fatalf("instr counts differ: %d vs %d", n1, n2)
	}
	if i1.rng != i2.rng {
		t.Fatal("random streams diverged")
	}
}

func TestSpawnSyncLockedCounter(t *testing.T) {
	const threads = 6
	const per = 50
	b := ir.NewBuilder("mt")
	counter := b.Global("counter", ir.F64)
	w := b.Func("worker")
	w.For("i", ir.CI(0), ir.CI(per), ir.CI(1), func(i *ir.Var) {
		w.Locked(1, func() {
			w.Set(counter, ir.Add(ir.V(counter), ir.CI(1)))
		})
	})
	wf := w.Done()
	mb := b.Func("main")
	mb.Set(counter, ir.CF(0))
	for i := 0; i < threads; i++ {
		mb.Spawn(wf)
	}
	mb.Sync()
	m := b.Build(mb.Done())
	it := run(t, m, nil)
	if got := it.space.Load(it.globalBase[counter]); got != threads*per {
		t.Fatalf("locked counter = %v, want %d", got, threads*per)
	}
}

func TestSpawnInterleavesThreads(t *testing.T) {
	// With quantum-1 scheduling, two spawned threads must interleave
	// their accesses rather than run back to back.
	b := ir.NewBuilder("ilv")
	w := b.Func("worker")
	x := w.Local("x", ir.F64)
	w.For("i", ir.CI(0), ir.CI(20), ir.CI(1), func(i *ir.Var) {
		w.Set(x, ir.V(i))
	})
	wf := w.Done()
	mb := b.Func("main")
	mb.Spawn(wf)
	mb.Spawn(wf)
	mb.Sync()
	m := b.Build(mb.Done())
	tr := &orderTracer{}
	it := New(m, tr)
	it.Run()
	switches := 0
	for i := 1; i < len(tr.tids); i++ {
		if tr.tids[i] != tr.tids[i-1] {
			switches++
		}
	}
	if switches < 10 {
		t.Fatalf("threads barely interleaved: %d switches over %d events",
			switches, len(tr.tids))
	}
	_ = it
}

type orderTracer struct {
	BaseTracer
	tids []int32
}

func (o *orderTracer) Store(a Access) {
	if a.Thread > 0 {
		o.tids = append(o.tids, a.Thread)
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	b := ir.NewBuilder("ts")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	fb.For("i", ir.CI(0), ir.CI(50), ir.CI(1), func(i *ir.Var) {
		fb.Set(out, ir.Add(ir.V(out), ir.V(i)))
	})
	m := b.Build(fb.Done())
	tr := &tsTracer{}
	New(m, tr).Run()
	for i := 1; i < len(tr.ts); i++ {
		if tr.ts[i] <= tr.ts[i-1] {
			t.Fatalf("timestamps not strictly increasing at %d", i)
		}
	}
	if len(tr.ts) == 0 {
		t.Fatal("no events observed")
	}
}

type tsTracer struct {
	BaseTracer
	ts []uint64
}

func (tt *tsTracer) Load(a Access)  { tt.ts = append(tt.ts, a.TS) }
func (tt *tsTracer) Store(a Access) { tt.ts = append(tt.ts, a.TS) }

func TestPrepareOpsIdempotent(t *testing.T) {
	b := ir.NewBuilder("ops")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	fb.Set(out, ir.Add(ir.V(out), ir.CI(1)))
	m := b.Build(fb.Done())
	n1 := PrepareOps(m)
	n2 := PrepareOps(m)
	if n1 != n2 || n1 == 0 {
		t.Fatalf("PrepareOps not idempotent: %d vs %d", n1, n2)
	}
}

func TestLoopIterationContext(t *testing.T) {
	// The Loops stack exposed to tracers must name the current loop and
	// iteration.
	b := ir.NewBuilder("ctx")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	var loopReg *ir.Region
	loopReg = fb.For("i", ir.CI(0), ir.CI(5), ir.CI(1), func(i *ir.Var) {
		fb.Set(out, ir.V(i))
	})
	m := b.Build(fb.Done())
	tr := &loopCtxTracer{want: int32(loopReg.ID)}
	New(m, tr).Run()
	if tr.bad {
		t.Fatal("access loop context did not match the active loop")
	}
	if tr.maxIter != 4 {
		t.Fatalf("max observed iteration = %d, want 4", tr.maxIter)
	}
}

type loopCtxTracer struct {
	BaseTracer
	want    int32
	bad     bool
	maxIter int64
}

func (lt *loopCtxTracer) Store(a Access) {
	if a.Var.Name != "out" {
		return // header induction-variable stores run outside iterations
	}
	if len(a.Loops) == 0 {
		lt.bad = true
		return
	}
	top := a.Loops[len(a.Loops)-1]
	if top.Region != lt.want {
		lt.bad = true
	}
	if top.Iter > lt.maxIter {
		lt.maxIter = top.Iter
	}
}
