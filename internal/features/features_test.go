package features

import (
	"math"
	"math/rand"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

func extractFor(t *testing.T, name string) ([]Sample, *workloads.Program) {
	t.Helper()
	prog := workloads.MustBuild(name, 1)
	res := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect})
	sc := ir.AnalyzeScopes(prog.M)
	return Extract(prog.M, sc, res), prog
}

func TestExtractProducesVectors(t *testing.T) {
	samples, prog := extractFor(t, "CG")
	if len(samples) == 0 {
		t.Fatal("no samples extracted")
	}
	// Every executed loop of the module yields one sample.
	executed := 0
	for _, r := range prog.M.Regions {
		if r.Kind == ir.RLoop {
			executed++
		}
	}
	if len(samples) > executed {
		t.Fatalf("more samples (%d) than loops (%d)", len(samples), executed)
	}
	for _, s := range samples {
		if s.X[0] <= 0 {
			t.Errorf("loop %v: zero iterations feature", s.Loop)
		}
		if s.X[2] < 0 || s.X[2] > 1 {
			t.Errorf("loop %v: coverage %f outside [0,1]", s.Loop, s.X[2])
		}
		for i, v := range s.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("loop %v: feature %s is %f", s.Loop, Names[i], v)
			}
		}
	}
}

func TestCarriedRAWFeatureSeparates(t *testing.T) {
	// prefix-sum's hot loop must show carried RAW; rgbyuv's must not.
	seqSamples, seqProg := extractFor(t, "prefix-sum")
	var seqHot, parHot *Sample
	for i := range seqSamples {
		if seqSamples[i].Loop == seqProg.Truth.Hot {
			seqHot = &seqSamples[i]
		}
	}
	parSamples, parProg := extractFor(t, "rgbyuv")
	for i := range parSamples {
		if parSamples[i].Loop == parProg.Truth.Hot {
			parHot = &parSamples[i]
		}
	}
	if seqHot == nil || parHot == nil {
		t.Fatal("hot loops not extracted")
	}
	if seqHot.X[3] == 0 {
		t.Error("prefix-sum hot loop shows no carried RAW feature")
	}
	if parHot.X[3] != 0 {
		t.Error("rgbyuv hot loop shows carried RAW feature")
	}
}

func TestStumpPredict(t *testing.T) {
	s := Stump{Feature: 3, Threshold: 0.5, Polarity: 1}
	var lo, hi Vector
	lo[3], hi[3] = 0, 1
	if s.Predict(lo) != 1 || s.Predict(hi) != -1 {
		t.Fatal("stump polarity broken")
	}
	s.Polarity = -1
	if s.Predict(lo) != -1 || s.Predict(hi) != 1 {
		t.Fatal("reversed stump polarity broken")
	}
}

// TestAdaBoostLearnsSeparableData: a linearly separable synthetic set must
// be classified perfectly.
func TestAdaBoostLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 200; i++ {
		var s Sample
		s.DOALL = i%2 == 0
		// Feature 3 (carried RAW) separates: 0 for DOALL, >0 otherwise.
		if s.DOALL {
			s.X[3] = 0
		} else {
			s.X[3] = 1 + rng.Float64()*5
		}
		s.X[0] = rng.Float64() * 100 // noise features
		s.X[6] = rng.Float64()
		samples = append(samples, s)
	}
	ens := Train(samples, 10)
	sc := Evaluate(ens, samples)
	if sc.Accuracy != 1 {
		t.Fatalf("separable data accuracy = %f, want 1", sc.Accuracy)
	}
	// The separating feature must dominate the importance ranking
	// (Table 5.2's analysis).
	imp := ens.Importance()
	best := 0
	for i, v := range imp {
		if v > imp[best] {
			best = i
		}
	}
	if best != 3 {
		t.Fatalf("most important feature = %s, want carried_raw", Names[best])
	}
}

// TestAdaBoostNoisyData: with label noise the ensemble still beats
// chance comfortably.
func TestAdaBoostNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 400; i++ {
		var s Sample
		doall := rng.Intn(2) == 0
		s.DOALL = doall
		if rng.Float64() < 0.1 {
			s.DOALL = !s.DOALL // 10% label noise
		}
		if doall {
			s.X[3] = 0
			s.X[9] = float64(rng.Intn(2))
		} else {
			s.X[3] = float64(1 + rng.Intn(4))
		}
		s.X[0] = rng.Float64() * 50
		samples = append(samples, s)
	}
	train, eval := Split(samples, 4)
	ens := Train(train, 30)
	sc := Evaluate(ens, eval)
	if sc.Accuracy < 0.75 {
		t.Fatalf("noisy accuracy = %f, want >= 0.75", sc.Accuracy)
	}
}

func TestSplitDeterministicAndComplete(t *testing.T) {
	samples := make([]Sample, 17)
	train, eval := Split(samples, 4)
	if len(train)+len(eval) != 17 {
		t.Fatalf("split lost samples: %d + %d", len(train), len(eval))
	}
	if len(eval) != 4 {
		t.Fatalf("held-out size = %d, want 4", len(eval))
	}
}

func TestImportanceSumsToOne(t *testing.T) {
	samples, _ := extractFor(t, "kmeans")
	doall := map[*ir.Region]bool{}
	Label(samples, doall, map[*ir.Region]bool{})
	// Give at least one positive label so training is non-degenerate.
	if len(samples) > 0 {
		samples[0].DOALL = true
	}
	ens := Train(samples, 20)
	if len(ens.Stumps) == 0 {
		t.Skip("degenerate training set")
	}
	var sum float64
	for _, v := range ens.Importance() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %f", sum)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	sc := Evaluate(&Ensemble{}, nil)
	if sc.N != 0 || sc.Accuracy != 0 {
		t.Fatalf("empty evaluation = %+v", sc)
	}
}
