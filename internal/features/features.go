// Package features implements the first further application of the
// framework (Section 5.1): characterizing DOALL loops with dynamic
// features extracted from the profiler's output and classifying them with
// an AdaBoost ensemble of decision stumps, reproducing the Table 5.1
// feature set, the Table 5.2 importance ranking, and the Table 5.3
// held-out classification scores.
package features

import (
	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/profiler"
)

// Names lists the dynamic features, in vector order (Table 5.1).
var Names = []string{
	"iterations",           // profiled trip count
	"instrs_per_iter",      // dynamic statements per iteration
	"coverage",             // fraction of total work inside the loop
	"carried_raw",          // distinct loop-carried RAW dependences
	"carried_war_waw",      // distinct carried anti/output dependences
	"distinct_vars",        // variables involved in dependences
	"read_write_ratio",     // profiled reads / writes on loop lines
	"has_calls",            // body contains function calls
	"nest_depth",           // loop nesting depth
	"reduction_candidates", // statically recognized reduction statements
}

// Vector is one loop's feature vector.
type Vector [10]float64

// Sample is a labelled loop.
type Sample struct {
	Loop  *ir.Region
	X     Vector
	DOALL bool // label: iterations are independent (incl. reductions)
	// Pragma marks loops that carry a parallelization pragma in the
	// reference parallel implementation (Table 5.3 reports scores for the
	// two groups separately); we use ground-truth DOALL loops with
	// significant weight as the pragma group.
	Pragma bool
}

// Extract computes feature vectors for every executed loop of a profiled
// module.
func Extract(m *ir.Module, sc *ir.Scope, res *profiler.Result) []Sample {
	var out []Sample
	total := float64(res.TotalInstrs)
	for _, r := range m.Regions {
		if r.Kind != ir.RLoop {
			continue
		}
		re := res.Regions[r.ID]
		if re == nil || re.Iters == 0 {
			continue
		}
		var v Vector
		v[0] = float64(re.Iters)
		v[1] = float64(re.Instrs) / float64(max64(re.Iters, 1))
		if total > 0 {
			v[2] = float64(re.Instrs) / total
		}
		// Dependences on the loop's own (unwritten) index variable do not
		// prevent parallelism (Section 3.2.5); the classifier must see
		// the same filtered view the discovery algorithms use.
		var indVarID = int32(-1)
		if f, ok := r.Stmt.(*ir.For); ok && !sc.Of(r).IndVarWritten {
			indVarID = int32(f.IndVar.ID)
		}
		carriedRAW, carriedOther := 0, 0
		vars := map[int32]bool{}
		for d := range res.Deps {
			if d.CarriedBy != int32(r.ID) || !d.Carried {
				continue
			}
			if d.Var == indVarID {
				continue
			}
			if v := varByID(m, d.Var); v != nil && isInnerIndVar(sc, r, v) {
				continue
			}
			vars[d.Var] = true
			if d.Type == profiler.RAW {
				carriedRAW++
			} else {
				carriedOther++
			}
		}
		v[3] = float64(carriedRAW)
		v[4] = float64(carriedOther)
		v[5] = float64(len(vars))
		var reads, writes float64
		for loc, n := range res.Lines {
			if loc.File == r.Start.File && loc.Line >= r.Start.Line && loc.Line <= r.End.Line {
				reads += float64(n) // line counts mix reads and writes
			}
		}
		writes = float64(carriedOther + 1)
		v[6] = reads / writes
		if hasCalls(r) {
			v[7] = 1
		}
		v[8] = float64(r.Depth())
		v[9] = float64(len(discovery.FindReductions(sc, r)))
		out = append(out, Sample{Loop: r, X: v})
	}
	return out
}

func varByID(m *ir.Module, id int32) *ir.Var {
	if id < 0 || int(id) >= len(m.Vars) {
		return nil
	}
	return m.Vars[id]
}

// isInnerIndVar reports whether v is the unwritten index variable of a
// loop nested inside r.
func isInnerIndVar(sc *ir.Scope, r *ir.Region, v *ir.Var) bool {
	if v.DeclRegion == nil || v.DeclRegion.Kind != ir.RLoop || v.DeclRegion == r {
		return false
	}
	f, ok := v.DeclRegion.Stmt.(*ir.For)
	if !ok || f.IndVar != v {
		return false
	}
	return r.Encloses(v.DeclRegion) && !sc.Of(v.DeclRegion).IndVarWritten
}

func hasCalls(r *ir.Region) bool {
	found := false
	var body ir.Stmt
	switch n := r.Stmt.(type) {
	case *ir.For:
		body = n.Body
	case *ir.While:
		body = n.Body
	default:
		return false
	}
	ir.Walk(body, func(s ir.Stmt) {
		switch n := s.(type) {
		case *ir.CallStmt:
			found = true
		case *ir.Assign:
			ir.WalkExprs(n.Src, func(e ir.Expr) {
				if _, ok := e.(*ir.CallExpr); ok {
					found = true
				}
			})
		}
	})
	return found
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Label fills the DOALL and Pragma fields from ground truth.
func Label(samples []Sample, doall map[*ir.Region]bool, hot map[*ir.Region]bool) {
	for i := range samples {
		samples[i].DOALL = doall[samples[i].Loop]
		samples[i].Pragma = doall[samples[i].Loop] && hot[samples[i].Loop]
	}
}
