package features

import (
	"math"
	"sort"
)

// Stump is a one-level decision tree: predict +1 if x[Feature] <= Threshold
// (or >, depending on Polarity), else -1.
type Stump struct {
	Feature   int
	Threshold float64
	Polarity  int // +1: (x <= thr) => positive; -1: (x > thr) => positive
	Alpha     float64
}

// Predict returns +1 (DOALL) or -1.
func (s *Stump) Predict(x Vector) int {
	le := x[s.Feature] <= s.Threshold
	if (le && s.Polarity > 0) || (!le && s.Polarity < 0) {
		return 1
	}
	return -1
}

// Ensemble is an AdaBoost.M1 ensemble of stumps.
type Ensemble struct {
	Stumps []Stump
}

// Predict returns the weighted-majority label.
func (e *Ensemble) Predict(x Vector) bool {
	var score float64
	for i := range e.Stumps {
		score += e.Stumps[i].Alpha * float64(e.Stumps[i].Predict(x))
	}
	return score > 0
}

// Importance returns per-feature importance: the weighted error reduction
// contributed by stumps on that feature, normalized to sum to 1
// (Table 5.2's "weighted error reduction in an AdaBoost ensemble").
func (e *Ensemble) Importance() []float64 {
	imp := make([]float64, len(Names))
	var total float64
	for i := range e.Stumps {
		imp[e.Stumps[i].Feature] += e.Stumps[i].Alpha
		total += e.Stumps[i].Alpha
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Train fits an AdaBoost ensemble with the given number of rounds.
func Train(samples []Sample, rounds int) *Ensemble {
	n := len(samples)
	if n == 0 {
		return &Ensemble{}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	y := make([]int, n)
	for i, s := range samples {
		if s.DOALL {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	ens := &Ensemble{}
	for round := 0; round < rounds; round++ {
		stump, err := bestStump(samples, y, w)
		if err >= 0.5 || err < 0 {
			break
		}
		eps := math.Max(err, 1e-9)
		alpha := 0.5 * math.Log((1-eps)/eps)
		stump.Alpha = alpha
		// Reweight.
		var sum float64
		for i := range w {
			pred := stump.Predict(samples[i].X)
			w[i] *= math.Exp(-alpha * float64(y[i]) * float64(pred))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		ens.Stumps = append(ens.Stumps, stump)
		if eps < 1e-8 {
			break // perfectly separated
		}
	}
	return ens
}

// bestStump exhaustively searches thresholds per feature for the stump
// with minimal weighted error.
func bestStump(samples []Sample, y []int, w []float64) (Stump, float64) {
	best := Stump{}
	bestErr := math.Inf(1)
	for f := 0; f < len(Names); f++ {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = s.X[f]
		}
		sorted := append([]float64{}, vals...)
		sort.Float64s(sorted)
		var thresholds []float64
		for i := 0; i < len(sorted); i++ {
			if i == 0 || sorted[i] != sorted[i-1] {
				thresholds = append(thresholds, sorted[i])
			}
		}
		for _, thr := range thresholds {
			for _, pol := range []int{1, -1} {
				var err float64
				for i := range samples {
					s := Stump{Feature: f, Threshold: thr, Polarity: pol}
					if s.Predict(samples[i].X) != y[i] {
						err += w[i]
					}
				}
				if err < bestErr {
					bestErr = err
					best = Stump{Feature: f, Threshold: thr, Polarity: pol}
				}
			}
		}
	}
	return best, bestErr
}

// Scores holds binary-classification quality metrics.
type Scores struct {
	N         int
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate scores the ensemble on a sample set.
func Evaluate(e *Ensemble, samples []Sample) Scores {
	var tp, fp, fn, correct int
	for _, s := range samples {
		pred := e.Predict(s.X)
		if pred == s.DOALL {
			correct++
		}
		switch {
		case pred && s.DOALL:
			tp++
		case pred && !s.DOALL:
			fp++
		case !pred && s.DOALL:
			fn++
		}
	}
	sc := Scores{N: len(samples)}
	if len(samples) > 0 {
		sc.Accuracy = float64(correct) / float64(len(samples))
	}
	if tp+fp > 0 {
		sc.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		sc.Recall = float64(tp) / float64(tp+fn)
	}
	if sc.Precision+sc.Recall > 0 {
		sc.F1 = 2 * sc.Precision * sc.Recall / (sc.Precision + sc.Recall)
	}
	return sc
}

// Split deterministically partitions samples into train and held-out
// evaluation sets (every k-th sample held out).
func Split(samples []Sample, k int) (train, eval []Sample) {
	for i, s := range samples {
		if k > 0 && i%k == k-1 {
			eval = append(eval, s)
		} else {
			train = append(train, s)
		}
	}
	return train, eval
}
