// Package stm implements the second further application of the framework
// (Section 5.2): deriving software-transactional-memory parameters from
// the profiler's output. A transaction is a code section that updates
// shared state inside a parallelizable loop and therefore needs atomicity
// when the loop runs in parallel — the counts of Table 5.4 are determined
// "by analyzing the output of the DiscoPoP profiler".
package stm

import (
	"sort"

	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/profiler"
)

// Transaction is one code section requiring atomicity.
type Transaction struct {
	Loop *ir.Region
	// Lines are the write locations forming the transaction body.
	Lines []ir.Loc
	// Vars are the shared variables the transaction updates.
	Vars []string
	// Conflicts is the profiled number of dynamic dependence instances on
	// the transaction's lines — an upper bound on abort frequency.
	Conflicts int64
}

// Derive extracts transactions from an analysis: for every loop that is
// parallelizable (or DOACROSS), the statements whose loop-carried
// dependences on shared variables would become conflicts under parallel
// execution form transactions, grouped per variable set.
func Derive(a *discovery.Analysis) []Transaction {
	var out []Transaction
	for _, s := range a.Suggestions {
		if s.Region == nil {
			continue
		}
		switch s.Kind {
		case discovery.DOALLReduction, discovery.DOACROSS, discovery.SPMDTask:
		default:
			continue
		}
		r := s.Region
		// Collect carried dependences of this loop on shared variables.
		type txKey struct{ varID int32 }
		lines := map[txKey]map[ir.Loc]bool{}
		conflicts := map[txKey]int64{}
		for d, n := range a.Res.Deps {
			if !d.Carried || d.CarriedBy != int32(r.ID) || d.Type == profiler.INIT {
				continue
			}
			k := txKey{d.Var}
			if lines[k] == nil {
				lines[k] = map[ir.Loc]bool{}
			}
			lines[k][d.Sink] = true
			lines[k][d.Source] = true
			conflicts[k] += n
		}
		var keys []txKey
		for k := range lines {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].varID < keys[j].varID })
		for _, k := range keys {
			v := a.Mod.Vars[k.varID]
			// Loop iteration variables do not need transactions: they are
			// privatized by the parallel loop itself.
			if isIndVar(v) {
				continue
			}
			tx := Transaction{Loop: r, Conflicts: conflicts[k], Vars: []string{v.Name}}
			for l := range lines[k] {
				tx.Lines = append(tx.Lines, l)
			}
			sort.Slice(tx.Lines, func(i, j int) bool { return tx.Lines[i].Key() < tx.Lines[j].Key() })
			out = append(out, tx)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Loop.ID != out[j].Loop.ID {
			return out[i].Loop.ID < out[j].Loop.ID
		}
		return out[i].Vars[0] < out[j].Vars[0]
	})
	return out
}

func isIndVar(v *ir.Var) bool {
	if v.DeclRegion == nil || v.DeclRegion.Kind != ir.RLoop {
		return false
	}
	f, ok := v.DeclRegion.Stmt.(*ir.For)
	return ok && f.IndVar == v
}

// Params are suggested STM configuration parameters for a program.
type Params struct {
	Transactions int
	// MaxReadSet / MaxWriteSet size the per-transaction logs.
	MaxReadSet  int
	MaxWriteSet int
	// HighContention suggests an eager conflict-detection policy.
	HighContention bool
}

// SuggestParams derives STM parameters from the transaction set.
func SuggestParams(txs []Transaction) Params {
	p := Params{Transactions: len(txs)}
	var totalConf int64
	for _, tx := range txs {
		if len(tx.Lines) > p.MaxWriteSet {
			p.MaxWriteSet = len(tx.Lines)
		}
		if len(tx.Vars) > p.MaxReadSet {
			p.MaxReadSet = len(tx.Vars)
		}
		totalConf += tx.Conflicts
	}
	p.HighContention = len(txs) > 0 && totalConf/int64(len(txs)) > 1000
	return p
}
