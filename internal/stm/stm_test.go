package stm

import (
	"testing"

	"discopop/internal/cu"
	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

func analyzeWorkload(t *testing.T, name string) *discovery.Analysis {
	t.Helper()
	prog := workloads.MustBuild(name, 1)
	res := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect})
	sc := ir.AnalyzeScopes(prog.M)
	g := cu.Build(prog.M, sc, res)
	return discovery.Analyze(prog.M, sc, res, g)
}

func TestHistogramYieldsTransactions(t *testing.T) {
	a := analyzeWorkload(t, "histogram")
	txs := Derive(a)
	if len(txs) == 0 {
		t.Fatal("histogram's reduction updates yield no transactions")
	}
	foundHist := false
	for _, tx := range txs {
		for _, v := range tx.Vars {
			if v == "hist" {
				foundHist = true
			}
		}
		if len(tx.Lines) == 0 {
			t.Errorf("transaction without lines: %+v", tx)
		}
		if tx.Conflicts <= 0 {
			t.Errorf("transaction without conflict count: %+v", tx)
		}
	}
	if !foundHist {
		t.Fatalf("no transaction on hist: %+v", txs)
	}
}

func TestIndVarExcluded(t *testing.T) {
	for _, name := range []string{"EP", "IS"} {
		a := analyzeWorkload(t, name)
		for _, tx := range Derive(a) {
			for _, v := range tx.Vars {
				for _, mv := range a.Mod.Vars {
					if mv.Name != v || mv.DeclRegion == nil {
						continue
					}
					if f, ok := mv.DeclRegion.Stmt.(*ir.For); ok && f.IndVar == mv {
						t.Errorf("%s: loop index %s became a transaction", name, v)
					}
				}
			}
		}
	}
}

func TestSuggestParams(t *testing.T) {
	txs := []Transaction{
		{Lines: []ir.Loc{{File: 1, Line: 1}, {File: 1, Line: 2}}, Vars: []string{"a"}, Conflicts: 10},
		{Lines: []ir.Loc{{File: 1, Line: 5}}, Vars: []string{"b"}, Conflicts: 5000},
	}
	p := SuggestParams(txs)
	if p.Transactions != 2 {
		t.Fatalf("transactions = %d", p.Transactions)
	}
	if p.MaxWriteSet != 2 {
		t.Fatalf("max write set = %d, want 2", p.MaxWriteSet)
	}
	if !p.HighContention {
		t.Fatal("high contention not flagged at 2505 conflicts/tx")
	}
	if empty := SuggestParams(nil); empty.Transactions != 0 || empty.HighContention {
		t.Fatalf("empty params = %+v", empty)
	}
}

func TestSequentialProgramsFewTransactions(t *testing.T) {
	// A purely sequential recurrence yields no parallelizable loops,
	// hence no transactions.
	a := analyzeWorkload(t, "prefix-sum")
	txs := Derive(a)
	for _, tx := range txs {
		if tx.Loop == nil {
			t.Errorf("transaction without loop: %+v", tx)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	a := analyzeWorkload(t, "kmeans")
	t1 := Derive(a)
	t2 := Derive(a)
	if len(t1) != len(t2) {
		t.Fatalf("nondeterministic count: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Vars[0] != t2[i].Vars[0] || t1[i].Loop != t2[i].Loop {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}
