// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each function
// returns a formatted text block in the spirit of the original table plus
// structured values that the benchmark harness reports as metrics.
// Absolute numbers differ from the paper — the substrate is an IR
// interpreter, not the authors' Xeon testbed — but the comparisons the
// paper draws (who wins, by what factor, where effects appear) are
// reproduced on the same dependence structures.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"discopop"
	"discopop/internal/interp"
	"discopop/internal/mem"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

// Row is one generic result row: a label plus named numeric cells.
type Row struct {
	Label string
	Cells map[string]float64
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // e.g. "table2.6", "fig2.9"
	Title string
	Rows  []Row
	Text  string
}

func (r *Result) add(label string, cells map[string]float64) {
	r.Rows = append(r.Rows, Row{Label: label, Cells: cells})
}

// Mean returns the mean of a named cell across rows that define it.
func (r *Result) Mean(cell string) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if v, ok := row.Cells[cell]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// timingRuns is the number of repetitions per timing measurement; the
// minimum is reported (the paper averages three executions; the minimum is
// the standard noise-robust choice at our much smaller workload sizes).
const timingRuns = 3

// BatchWorkers bounds the worker pool used by the discovery sweeps (the
// ch4/ch5 tables, whose per-workload analyses are independent jobs). 0
// means one worker per CPU. Timing experiments (fig2.x) never batch:
// concurrent jobs would perturb their wall-clock measurements.
var BatchWorkers = 0

// Cache, when non-nil, memoizes the Profile stage across the discovery
// sweeps: the ch4/ch5 tables re-analyze the same workloads with identical
// profiling options, so every sweep after the first skips re-profiling.
// cmd/dp-experiments shares one cache across the whole run. Timing
// experiments (fig2.x) bypass the pipeline and are never cached.
//
// Caching also memoizes workload construction per (name, scale): cached
// reports point into the module instance that was profiled, and the
// ground-truth comparisons (Truth regions, SuggestionFor) match regions by
// pointer, so program and report must share one module.
var Cache *discopop.ProfileCache

var (
	progMu    sync.Mutex
	progCache = map[string]*workloads.Program{}
)

func cacheKey(name string, scale int) string {
	return fmt.Sprintf("%s@%d", name, scale)
}

// buildWorkload builds a workload, memoized per (name, scale) when the
// profile cache is active.
func buildWorkload(name string, scale int) *workloads.Program {
	if Cache == nil {
		return workloads.MustBuild(name, scale)
	}
	key := cacheKey(name, scale)
	progMu.Lock()
	defer progMu.Unlock()
	if p := progCache[key]; p != nil {
		return p
	}
	p := workloads.MustBuild(name, scale)
	progCache[key] = p
	return p
}

// jobOpt returns the per-job pipeline options: cache wiring when the sweep
// cache is active, defaults otherwise.
func jobOpt(name string, scale int) *discopop.Options {
	if Cache == nil {
		return nil
	}
	return &discopop.Options{Cache: Cache, CacheKey: cacheKey(name, scale)}
}

// analyzeStream builds the named workloads, analyzes them concurrently,
// and invokes fn for each completed job as it arrives (completion order,
// with the job's submission index). It never holds more than one report per
// pool worker alive: each report is released once fn returns, which keeps
// the peak memory of whole-corpus sweeps flat — callers accumulate the few
// scalars their table needs, indexed by i, and format rows afterwards. fn
// runs on the draining goroutine, so it needs no locking.
func analyzeStream(names []string, scale int,
	fn func(i int, prog *workloads.Program, rep *discopop.Report)) {
	progs := make([]*workloads.Program, len(names))
	for i, name := range names {
		progs[i] = buildWorkload(name, scale)
	}
	analyzeStreamProgs(progs, scale, fn)
}

// analyzeStreamProgs is analyzeStream over prebuilt workloads (they must
// come from buildWorkload at the same scale for the sweep cache to apply).
// A failing job panics: the evaluation workloads are all expected to
// analyze cleanly.
func analyzeStreamProgs(progs []*workloads.Program, scale int,
	fn func(i int, prog *workloads.Program, rep *discopop.Report)) {
	e := discopop.NewEngine(discopop.Options{BatchWorkers: BatchWorkers})
	go func() {
		for _, p := range progs {
			e.Submit(discopop.Job{Name: p.Name, Mod: p.M, Opt: jobOpt(p.Name, scale)})
		}
		e.Close()
	}()
	for jr := range e.Results() {
		if jr.Err != nil {
			panic(fmt.Sprintf("experiments: analyze %s: %v", jr.Name, jr.Err))
		}
		fn(jr.Index, progs[jr.Index], jr.Report)
	}
}

// nativeTime runs a program uninstrumented and returns wall time and
// executed statements. Arena setup/recycling happens outside the timed
// window, matching the paper's native-time measurements (process setup is
// not part of the reported execution time).
func nativeTime(p *workloads.Program) (time.Duration, int64) {
	best := time.Duration(1<<62 - 1)
	var instrs int64
	for i := 0; i < timingRuns; i++ {
		in := interp.New(p.M, nil, interp.WithPool(mem.Default))
		start := time.Now()
		instrs = in.Run()
		if d := time.Since(start); d < best {
			best = d
		}
		in.Release()
	}
	return best, instrs
}

// profiledTime runs a program under the profiler with the given options.
func profiledTime(p *workloads.Program, opt profiler.Options) (time.Duration, *profiler.Result) {
	best := time.Duration(1<<62 - 1)
	var res *profiler.Result
	for i := 0; i < timingRuns; i++ {
		prof := profiler.New(p.M, opt)
		in := interp.New(p.M, prof, interp.WithPool(mem.Default))
		start := time.Now()
		in.Run()
		r := prof.Result()
		if d := time.Since(start); d < best {
			best = d
			res = r
		}
		in.Release()
	}
	return best, res
}

// slowdown computes profiled/native with a floor on the native time to
// keep tiny workloads from exploding the ratio.
func slowdown(profiled, native time.Duration) float64 {
	n := native.Seconds()
	if n < 1e-6 {
		n = 1e-6
	}
	return profiled.Seconds() / n
}

// Table2_6 measures false-positive and false-negative rates of the
// signature against the perfect signature for the Starbench-like suite at
// several signature sizes.
func Table2_6(scale int, slotSizes []int) *Result {
	res := &Result{ID: "table2.6",
		Title: "False positive and false negative rates of profiled dependences (Starbench)"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s", "program", "#addrs", "#deps")
	for _, s := range slotSizes {
		fmt.Fprintf(&sb, "  FPR@%.0e FNR@%.0e", float64(s), float64(s))
	}
	sb.WriteString("\n")
	for _, name := range workloads.Names("Starbench") {
		prog := workloads.MustBuild(name, scale)
		exact := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect})
		nDeps := coarseCount(exact.Deps)
		cells := map[string]float64{"deps": float64(nDeps)}
		fmt.Fprintf(&sb, "%-14s %10d %10d", name, exact.Accesses, nDeps)
		for _, s := range slotSizes {
			prog2 := workloads.MustBuild(name, scale)
			approx := profiler.Profile(prog2.M,
				profiler.Options{Store: profiler.StoreSignature, Slots: s})
			fp, fn := profiler.DiffDepsCoarse(approx.Deps, exact.Deps)
			fpr := 100 * float64(len(fp)) / float64(max(1, nDeps))
			fnr := 100 * float64(len(fn)) / float64(max(1, nDeps))
			cells[fmt.Sprintf("fpr@%d", s)] = fpr
			cells[fmt.Sprintf("fnr@%d", s)] = fnr
			fmt.Fprintf(&sb, "  %8.2f %8.2f", fpr, fnr)
		}
		sb.WriteString("\n")
		res.add(name, cells)
	}
	res.Text = sb.String()
	return res
}

// Fig2_9 measures profiler slowdown and memory for sequential NAS and
// Starbench programs: serial, 8-worker lock-based, 8-worker lock-free, and
// 16-worker lock-free configurations.
func Fig2_9(scale int) *Result {
	res := &Result{ID: "fig2.9",
		Title: "Profiler slowdown and memory, sequential NAS + Starbench"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %12s %12s %12s %10s\n",
		"program", "serial", "8T_lockbase", "8T_lockfree", "16T_lockfree", "mem16T(MB)")
	suites := append(workloads.Names("NAS"), workloads.Names("Starbench")...)
	for _, name := range suites {
		prog := workloads.MustBuild(name, scale)
		nat, _ := nativeTime(prog)
		serial, _ := profiledTime(prog, profiler.Options{Store: profiler.StoreSignature})
		lock8, _ := profiledTime(prog, profiler.Options{
			Store: profiler.StoreSignature, Workers: 8, UseLocked: true})
		free8, _ := profiledTime(prog, profiler.Options{
			Store: profiler.StoreSignature, Workers: 8})
		free16, r16 := profiledTime(prog, profiler.Options{
			Store: profiler.StoreSignature, Workers: 16})
		memMB := float64(r16.StoreBytes) / (1 << 20)
		cells := map[string]float64{
			"serial":       slowdown(serial, nat),
			"8T_lockbase":  slowdown(lock8, nat),
			"8T_lockfree":  slowdown(free8, nat),
			"16T_lockfree": slowdown(free16, nat),
			"mem16T_MB":    memMB,
		}
		res.add(name, cells)
		fmt.Fprintf(&sb, "%-14s %7.1fx %11.1fx %11.1fx %11.1fx %10.1f\n",
			name, cells["serial"], cells["8T_lockbase"], cells["8T_lockfree"],
			cells["16T_lockfree"], memMB)
	}
	fmt.Fprintf(&sb, "%-14s %7.1fx %11.1fx %11.1fx %11.1fx %10.1f\n", "average",
		res.Mean("serial"), res.Mean("8T_lockbase"), res.Mean("8T_lockfree"),
		res.Mean("16T_lockfree"), res.Mean("mem16T_MB"))
	res.Text = sb.String()
	return res
}

// Fig2_10 measures slowdown and memory when profiling multi-threaded
// (pthread-like, 4 target threads) Starbench programs with the MPSC
// pipeline at 8 and 16 profiling workers.
func Fig2_10(scale int) *Result {
	res := &Result{ID: "fig2.10",
		Title: "Profiler slowdown and memory, parallel Starbench (4 target threads)"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %10s %10s %12s %10s\n",
		"program", "8T,4Tn", "16T,4Tn", "mem8T(MB)", "races")
	for _, name := range workloads.Names("Starbench-MT") {
		prog := workloads.MustBuild(name, scale)
		nat, _ := nativeTime(prog)
		t8, r8 := profiledTime(prog, profiler.Options{
			Store: profiler.StoreSignature, MT: true, Workers: 8})
		t16, _ := profiledTime(prog, profiler.Options{
			Store: profiler.StoreSignature, MT: true, Workers: 16})
		cells := map[string]float64{
			"8T":     slowdown(t8, nat),
			"16T":    slowdown(t16, nat),
			"mem_MB": float64(r8.StoreBytes) / (1 << 20),
			"races":  float64(r8.Races),
		}
		res.add(name, cells)
		fmt.Fprintf(&sb, "%-18s %9.1fx %9.1fx %12.1f %10.0f\n",
			name, cells["8T"], cells["16T"], cells["mem_MB"], cells["races"])
	}
	fmt.Fprintf(&sb, "%-18s %9.1fx %9.1fx\n", "average", res.Mean("8T"), res.Mean("16T"))
	res.Text = sb.String()
	return res
}

// Fig2_12 measures the effect of skipping repeatedly executed memory
// operations: serial exact-store profiling with and without the
// optimization (the paper's setup: non-approximate shadow memory,
// sequential profiler).
func Fig2_12(scale int) *Result {
	res := &Result{ID: "fig2.12",
		Title: "Slowdown with (DiscoPoP+opt) and without (DiscoPoP) loop skipping"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %12s %10s\n", "program", "plain", "with-skip", "reduction")
	suites := append(workloads.Names("NAS"), workloads.Names("Starbench")...)
	for _, name := range suites {
		prog := workloads.MustBuild(name, scale)
		nat, _ := nativeTime(prog)
		plain, plainRes := profiledTime(prog, profiler.Options{Store: profiler.StorePerfect})
		skip, skipRes := profiledTime(prog, profiler.Options{Store: profiler.StorePerfect, Skip: true})
		// Verify the optimization is lossless before reporting it.
		fp, fn := profiler.DiffDeps(skipRes.Deps, plainRes.Deps)
		if len(fp) != 0 || len(fn) != 0 {
			panic(fmt.Sprintf("fig2.12: %s: skip changed dependences (fp=%d fn=%d)",
				name, len(fp), len(fn)))
		}
		sPlain, sSkip := slowdown(plain, nat), slowdown(skip, nat)
		redPct := 100 * (1 - sSkip/sPlain)
		res.add(name, map[string]float64{
			"plain": sPlain, "skip": sSkip, "reduction_pct": redPct})
		fmt.Fprintf(&sb, "%-14s %9.1fx %11.1fx %9.1f%%\n", name, sPlain, sSkip, redPct)
	}
	fmt.Fprintf(&sb, "%-14s %9.1fx %11.1fx %9.1f%%\n", "average",
		res.Mean("plain"), res.Mean("skip"), res.Mean("reduction_pct"))
	res.Text = sb.String()
	return res
}

// Table2_7 reports the fraction of dependence-relevant memory instructions
// the skipping optimization elides, per benchmark and access kind.
func Table2_7(scale int) *Result {
	res := &Result{ID: "table2.7",
		Title: "Dep-relevant memory instructions skipped by the profiler"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %10s %12s %10s %10s\n",
		"program", "dep-reads", "skipped%", "dep-writes", "skipped%", "total%")
	suites := append(workloads.Names("NAS"), workloads.Names("Starbench")...)
	for _, name := range suites {
		prog := workloads.MustBuild(name, scale)
		r := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect, Skip: true})
		s := r.Skip
		rp := pct(s.SkippedDepReads, s.DepReads)
		wp := pct(s.SkippedDepWrite, s.DepWrites)
		tp := pct(s.SkippedDepReads+s.SkippedDepWrite, s.DepReads+s.DepWrites)
		res.add(name, map[string]float64{"read_pct": rp, "write_pct": wp, "total_pct": tp})
		fmt.Fprintf(&sb, "%-14s %12d %9.2f%% %12d %9.2f%% %9.2f%%\n",
			name, s.DepReads, rp, s.DepWrites, wp, tp)
	}
	fmt.Fprintf(&sb, "%-14s %12s %9.2f%% %12s %9.2f%% %9.2f%%\n", "average", "",
		res.Mean("read_pct"), "", res.Mean("write_pct"), res.Mean("total_pct"))
	res.Text = sb.String()
	return res
}

// Fig2_13 reports the distribution of skipped instructions by the type of
// dependence they would have created, including FT's WAW anomaly caused by
// its dummy variable (Figure 2.14).
func Fig2_13(scale int) *Result {
	res := &Result{ID: "fig2.13",
		Title: "Distribution of skipped instructions by would-be dependence type"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s\n", "program", "RAW%", "WAW%", "WAR%")
	suites := append(workloads.Names("NAS"), workloads.Names("Starbench")...)
	for _, name := range suites {
		prog := workloads.MustBuild(name, scale)
		r := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect, Skip: true})
		s := r.Skip
		tot := s.WouldRAW + s.WouldWAR + s.WouldWAW
		raw, war, waw := pct(s.WouldRAW, tot), pct(s.WouldWAR, tot), pct(s.WouldWAW, tot)
		res.add(name, map[string]float64{"raw": raw, "war": war, "waw": waw})
		fmt.Fprintf(&sb, "%-14s %9.2f%% %9.2f%% %9.2f%%\n", name, raw, waw, war)
	}
	res.Text = sb.String()
	return res
}

// coarseCount counts dependences at the paper's <sink,type,source,var>
// granularity.
func coarseCount(deps map[profiler.Dep]int64) int {
	seen := map[profiler.Dep]bool{}
	for d := range deps {
		d.Reversed = false
		d.Carried = false
		d.CarriedBy = -1
		seen[d] = true
	}
	return len(seen)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MemStats returns the current heap footprint in MB after a GC, used by
// memory-consumption experiments.
func MemStats() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// SortedNames returns suite workload names sorted (helper for stable
// output).
func SortedNames(suite string) []string {
	names := workloads.Names(suite)
	sort.Strings(names)
	return names
}
