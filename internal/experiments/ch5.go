package experiments

import (
	"fmt"
	"sort"
	"strings"

	"discopop"
	"discopop/internal/comm"
	"discopop/internal/features"
	"discopop/internal/ir"
	"discopop/internal/profiler"
	"discopop/internal/stm"
	"discopop/internal/workloads"
)

// Table5_2_5_3 trains the AdaBoost DOALL classifier on loops extracted
// from all sequential suites and reports feature importance (Table 5.2)
// and held-out classification scores for pragma and non-pragma loop groups
// (Table 5.3).
func Table5_2_5_3(scale int) *Result {
	res := &Result{ID: "table5.2+5.3", Title: "DOALL loop classification (features + AdaBoost)"}
	var names []string
	for _, suite := range []string{"NAS", "Starbench", "textbook", "compressor", "MPMD"} {
		names = append(names, workloads.Names(suite)...)
	}
	// Stream the whole-corpus sweep: features are extracted as each job
	// completes and the report is dropped, so peak memory stays at one
	// report per pool worker. Samples are reassembled in submission order
	// to keep the train/eval split deterministic.
	sampleSets := make([][]features.Sample, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		fs := features.Extract(prog.M, rep.Scope, rep.Profile)
		doall := map[*ir.Region]bool{}
		for _, r := range prog.Truth.DOALL {
			doall[r] = true
		}
		hot := map[*ir.Region]bool{prog.Truth.Hot: true}
		features.Label(fs, doall, hot)
		sampleSets[i] = fs
	})
	var samples []features.Sample
	for _, fs := range sampleSets {
		samples = append(samples, fs...)
	}
	train, eval := features.Split(samples, 4)
	ens := features.Train(train, 40)
	imp := ens.Importance()

	var sb strings.Builder
	fmt.Fprintf(&sb, "Feature importance (weighted error reduction, Table 5.2):\n")
	type fi struct {
		name string
		v    float64
	}
	var fis []fi
	for i, n := range features.Names {
		fis = append(fis, fi{n, imp[i]})
	}
	sort.Slice(fis, func(i, j int) bool { return fis[i].v > fis[j].v })
	for _, f := range fis {
		fmt.Fprintf(&sb, "  %-22s %6.3f\n", f.name, f.v)
		res.add("imp:"+f.name, map[string]float64{"importance": f.v})
	}
	var pragma, noPragma []features.Sample
	for _, s := range eval {
		if s.Pragma {
			pragma = append(pragma, s)
		} else {
			noPragma = append(noPragma, s)
		}
	}
	all := features.Evaluate(ens, eval)
	pr := features.Evaluate(ens, pragma)
	np := features.Evaluate(ens, noPragma)
	fmt.Fprintf(&sb, "\nHeld-out classification scores (Table 5.3):\n")
	fmt.Fprintf(&sb, "  %-14s %6s %10s %10s %8s %6s\n", "group", "n", "precision", "recall", "F1", "acc")
	for _, g := range []struct {
		name string
		s    features.Scores
	}{{"all", all}, {"with pragma", pr}, {"no pragma", np}} {
		fmt.Fprintf(&sb, "  %-14s %6d %10.3f %10.3f %8.3f %6.3f\n",
			g.name, g.s.N, g.s.Precision, g.s.Recall, g.s.F1, g.s.Accuracy)
		res.add("score:"+g.name, map[string]float64{
			"n": float64(g.s.N), "precision": g.s.Precision,
			"recall": g.s.Recall, "f1": g.s.F1, "accuracy": g.s.Accuracy})
	}
	fmt.Fprintf(&sb, "  (train=%d eval=%d stumps=%d)\n", len(train), len(eval), len(ens.Stumps))
	res.Text = sb.String()
	return res
}

// Table5_4 derives the number of STM transactions per NAS benchmark from
// the profiler's output.
func Table5_4(scale int) *Result {
	res := &Result{ID: "table5.4", Title: "Number of transactions in NAS benchmarks"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %14s %12s %12s\n", "program", "transactions", "maxWriteSet", "contended")
	names := workloads.Names("NAS")
	rows := make([]stm.Params, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		rows[i] = stm.SuggestParams(stm.Derive(rep.Analysis))
	})
	for i, name := range names {
		params := rows[i]
		res.add(name, map[string]float64{"transactions": float64(params.Transactions)})
		fmt.Fprintf(&sb, "%-10s %14d %12d %12v\n",
			name, params.Transactions, params.MaxWriteSet, params.HighContention)
	}
	res.Text = sb.String()
	return res
}

// Fig5_1 derives communication patterns of the multi-threaded programs
// from the profiler's output and renders them as heat maps.
func Fig5_1(scale int) *Result {
	res := &Result{ID: "fig5.1", Title: "Communication patterns of parallel programs"}
	var sb strings.Builder
	for _, name := range workloads.Names("Starbench-MT") {
		prog := workloads.MustBuild(name, scale)
		r := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect, MT: true, Workers: 4})
		m := comm.FromProfile(r)
		res.add(name, map[string]float64{
			"threads":      float64(m.Threads),
			"cross_thread": float64(m.CrossThread()),
		})
		fmt.Fprintf(&sb, "--- %s ---\n%s\n", name, m.Render())
	}
	res.Text = sb.String()
	return res
}

// All runs every experiment at the given scale, in chapter order.
func All(scale int) []*Result {
	return []*Result{
		Table2_6(scale, []int{1 << 10, 1 << 14, 1 << 20}),
		Fig2_9(scale),
		Fig2_10(scale),
		Fig2_12(scale),
		Table2_7(scale),
		Fig2_13(scale),
		Table4_1(scale),
		Table4_2(scale, 4),
		Table4_3(scale),
		Table4_4(scale),
		Table4_5(scale, 4),
		Table4_6(scale),
		Table4_7(scale),
		Fig4_11(scale),
		Table5_2_5_3(scale),
		Table5_4(scale),
		Fig5_1(scale),
	}
}
