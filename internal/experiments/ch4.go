package experiments

import (
	"fmt"
	"strings"

	"discopop"
	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/sched"
	"discopop/internal/workloads"
)

// analyzeOne runs the full discovery pipeline on a single workload,
// through the sweep cache when active. Sweeps over whole suites stream
// through analyzeStream instead.
func analyzeOne(name string, scale int) (*workloads.Program, *discopop.Report) {
	prog := buildWorkload(name, scale)
	opt := jobOpt(name, scale)
	if opt == nil {
		opt = &discopop.Options{}
	}
	return prog, discopop.Analyze(prog.M, *opt)
}

func isParallelKind(k discovery.Kind) bool {
	return k == discovery.DOALL || k == discovery.DOALLReduction || k == discovery.SPMDTask
}

func kindFor(rep *discopop.Report, reg *ir.Region) discovery.Kind {
	if s := rep.SuggestionFor(reg); s != nil {
		return s.Kind
	}
	return discovery.Sequential
}

// Table4_1 evaluates DOALL detection on the NAS-like suite against ground
// truth: the paper reports 92.5% of the parallelized loops identified.
func Table4_1(scale int) *Result {
	res := &Result{ID: "table4.1", Title: "Detection of parallelizable loops in NAS programs"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %12s\n",
		"program", "parallel", "found", "false+", "recall")
	var totTrue, totFound, totFalse int
	names := workloads.Names("NAS")
	// Stream the sweep (flat-memory pattern): per-row scalars are captured
	// as each job completes and the report is dropped; rows are formatted
	// afterwards in name order.
	type row struct{ nTrue, found, falsePos int }
	rows := make([]row, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		r := row{nTrue: len(prog.Truth.DOALL)}
		for _, reg := range prog.Truth.DOALL {
			if isParallelKind(kindFor(rep, reg)) {
				r.found++
			}
		}
		for _, reg := range prog.Truth.Seq {
			if isParallelKind(kindFor(rep, reg)) {
				r.falsePos++
			}
		}
		rows[i] = r
	})
	for i, name := range names {
		r := rows[i]
		recall := 100.0
		if r.nTrue > 0 {
			recall = 100 * float64(r.found) / float64(r.nTrue)
		}
		totTrue += r.nTrue
		totFound += r.found
		totFalse += r.falsePos
		res.add(name, map[string]float64{
			"parallel": float64(r.nTrue), "found": float64(r.found),
			"false_pos": float64(r.falsePos), "recall": recall})
		fmt.Fprintf(&sb, "%-10s %10d %10d %10d %11.1f%%\n",
			name, r.nTrue, r.found, r.falsePos, recall)
	}
	overall := 100 * float64(totFound) / float64(max(1, totTrue))
	fmt.Fprintf(&sb, "%-10s %10d %10d %10d %11.1f%%  (paper: 92.5%%)\n",
		"total", totTrue, totFound, totFalse, overall)
	res.Text = sb.String()
	return res
}

// Table4_2 parallelizes the textbook programs following the top
// suggestion and reports the speedup the dependence structure yields on
// four threads (list-scheduling simulation; see DESIGN.md substitutions).
func Table4_2(scale, threads int) *Result {
	res := &Result{ID: "table4.2",
		Title: fmt.Sprintf("Speedups of textbook programs with %d threads", threads)}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-18s %10s\n", "program", "suggestion", "speedup")
	names := workloads.Names("textbook")
	type row struct {
		sp   float64
		kind string
	}
	rows := make([]row, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		r := row{sp: SimulateBest(prog, rep, threads), kind: "none"}
		if len(rep.Ranked) > 0 && rep.Ranked[0].Score > 0 {
			r.kind = rep.Ranked[0].Kind.String()
		}
		rows[i] = r
	})
	for i, name := range names {
		res.add(name, map[string]float64{"speedup": rows[i].sp})
		fmt.Fprintf(&sb, "%-16s %-18s %9.2fx\n", name, rows[i].kind, rows[i].sp)
	}
	fmt.Fprintf(&sb, "%-16s %-18s %9.2fx\n", "average", "", res.Mean("speedup"))
	res.Text = sb.String()
	return res
}

// SimulateBest estimates the whole-program speedup of applying the best
// single suggestion: each suggestion's local speedup model is folded into
// Amdahl's law over its coverage, and the maximum is taken — the paper's
// parallelization experiments likewise apply the most promising suggestion
// to the whole program.
func SimulateBest(prog *workloads.Program, rep *discopop.Report, threads int) float64 {
	best := 1.0
	for _, s := range rep.Ranked {
		if s.Score <= 0 {
			continue
		}
		local := localSim(s, threads)
		cov := s.Coverage
		if cov > 1 {
			cov = 1
		}
		sp := 1 / ((1 - cov) + cov/local)
		if sp > best {
			best = sp
		}
	}
	return best
}

var _ = discovery.Sequential // documentation anchor

func localSim(s *discovery.Suggestion, threads int) float64 {
	switch s.Kind {
	case discovery.DOALL, discovery.DOALLReduction, discovery.SPMDTask:
		return sched.DOALLSpeedup(s.Iters, s.Weight/float64(max64(s.Iters, 1)), threads, 0.02)
	case discovery.DOACROSS:
		var seqW, parW float64
		for _, c := range s.SeqStage {
			seqW += c.Weight
		}
		for _, c := range s.ParStage {
			parW += c.Weight
		}
		if seqW+parW == 0 {
			return 1
		}
		// Steady-state bound: the carried stage serializes, the rest of
		// the body parallelizes (Amdahl over the stage split). For short
		// runs the explicit pipeline simulation gives the fill-time-aware
		// number; take whichever structure admits.
		frac := seqW / (seqW + parW)
		amdahl := 1 / (frac + (1-frac)/float64(threads))
		pipe := sched.PipelineSpeedup([]float64{seqW + 1, parW + 1}, []bool{true, false},
			max64(s.Iters, 1), threads)
		if amdahl > pipe {
			return amdahl
		}
		return pipe
	case discovery.MPMDTask:
		var tasks []sched.Task
		for _, grp := range s.Tasks {
			w := 1.0
			for _, c := range grp {
				w += c.Weight
			}
			tasks = append(tasks, sched.Task{Work: w})
		}
		return sched.TaskGraphSpeedup(tasks, threads)
	}
	return 1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Table4_3 lists the ranked suggestions for the histogram program.
func Table4_3(scale int) *Result {
	res := &Result{ID: "table4.3", Title: "Suggestions for histogram visualization"}
	_, rep := analyzeOne("histogram", scale)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-18s %-12s %10s %10s %10s\n",
		"rank", "kind", "location", "coverage", "speedup", "score")
	rank := 0
	for _, s := range rep.Ranked {
		if s.Score <= 0 {
			continue
		}
		rank++
		res.add(fmt.Sprintf("#%d %s", rank, s.Kind), map[string]float64{
			"coverage": s.Coverage, "local_speedup": s.LocalSpeedup, "score": s.Score})
		fmt.Fprintf(&sb, "%-4d %-18s %-12s %9.1f%% %9.2fx %10.4f   %s\n",
			rank, s.Kind, s.Loc, 100*s.Coverage, s.LocalSpeedup, s.Score, s.Notes)
	}
	res.Text = sb.String()
	return res
}

// Table4_4 examines the biggest hot loop of each Starbench/NAS program and
// reports its classification (the DOACROSS study of Section 4.4.2).
func Table4_4(scale int) *Result {
	res := &Result{ID: "table4.4", Title: "Classification of the biggest hot loops (DOACROSS study)"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-12s %-18s %-18s %8s\n",
		"program", "hot loop", "truth", "detected", "match")
	// Only programs with hot-loop ground truth participate; filter before
	// batching so the engine never analyzes a workload whose report would
	// be discarded.
	var progs []*workloads.Program
	for _, name := range append(workloads.Names("Starbench"), workloads.Names("NAS")...) {
		if p := buildWorkload(name, scale); p.Truth.Hot != nil {
			progs = append(progs, p)
		}
	}
	type row struct{ want, got discovery.Kind }
	rows := make([]row, len(progs))
	analyzeStreamProgs(progs, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		rows[i] = row{
			want: truthKind(prog.Truth, prog.Truth.Hot),
			got:  kindFor(rep, prog.Truth.Hot),
		}
	})
	match, total := 0, 0
	for i, prog := range progs {
		want, got := rows[i].want, rows[i].got
		ok := classMatches(want, got)
		total++
		if ok {
			match++
		}
		res.add(prog.Name, map[string]float64{"match": b2f(ok)})
		fmt.Fprintf(&sb, "%-14s %-12s %-18s %-18s %8v\n",
			prog.Name, prog.Truth.Hot.Start, want, got, ok)
	}
	fmt.Fprintf(&sb, "correct: %d/%d\n", match, total)
	res.Text = sb.String()
	return res
}

func truthKind(t workloads.Truth, reg *ir.Region) discovery.Kind {
	for _, r := range t.DOALL {
		if r == reg {
			return discovery.DOALL
		}
	}
	for _, r := range t.DOACROSS {
		if r == reg {
			return discovery.DOACROSS
		}
	}
	return discovery.Sequential
}

func classMatches(want, got discovery.Kind) bool {
	switch want {
	case discovery.DOALL:
		return isParallelKind(got)
	case discovery.DOACROSS:
		return got == discovery.DOACROSS || got == discovery.Sequential
	default:
		return !isParallelKind(got)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Table4_5 analyzes the gzip/bzip2-like compressors: suggestion counts and
// the key block-level opportunity, with the simulated speedup of applying
// it (the pigz/pbzip2 design).
func Table4_5(scale, threads int) *Result {
	res := &Result{ID: "table4.5", Title: "gzip/bzip2 suggestions and key opportunity"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %-40s %10s\n", "program", "suggestions", "key opportunity", "speedup")
	names := workloads.Names("compressor")
	type row struct {
		n   int
		key string
		sp  float64
	}
	rows := make([]row, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		r := row{key: "none", sp: 1.0}
		for _, s := range rep.Ranked {
			if s.Score > 0 {
				r.n++
			}
		}
		if hot := rep.SuggestionFor(prog.Truth.Hot); hot != nil {
			r.key = fmt.Sprintf("%s on block loop %s", hot.Kind, hot.Loc)
			r.sp = SimulateBest(prog, rep, threads)
		}
		rows[i] = r
	})
	for i, name := range names {
		r := rows[i]
		res.add(name, map[string]float64{"suggestions": float64(r.n), "speedup": r.sp})
		fmt.Fprintf(&sb, "%-8s %12d %-40s %9.2fx\n", name, r.n, r.key, r.sp)
	}
	res.Text = sb.String()
	return res
}

// Table4_6 checks task detection on the BOTS-like suite: one decision per
// hot spot — task-spawning functions plus hot task loops — mirroring the
// paper's 20/20 correct decisions.
func Table4_6(scale int) *Result {
	res := &Result{ID: "table4.6", Title: "SPMD-style tasks in BOTS benchmarks"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-14s %8s  %s\n", "program", "hotspot", "correct", "decision")
	correct, total := 0, 0
	record := func(name, spot string, ok bool, note string) {
		total++
		if ok {
			correct++
		}
		res.add(name, map[string]float64{"correct": b2f(ok)})
		fmt.Fprintf(&sb, "%-12s %-14s %8v  %s\n", name, spot, ok, note)
	}
	names := workloads.Names("BOTS")
	// One program yields several decisions; capture them per index while
	// streaming, then flatten in name order.
	type decision struct {
		spot string
		ok   bool
		note string
	}
	rows := make([][]decision, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		var ds []decision
		for _, f := range prog.Truth.TaskFuncs {
			var hit *discovery.Suggestion
			for _, s := range rep.Ranked {
				if (s.Kind == discovery.SPMDTask || s.Kind == discovery.MPMDTask) &&
					(s.Func == f || (s.Region != nil && s.Region.Func == f)) {
					hit = s
					break
				}
			}
			note := "MISSED"
			if hit != nil {
				note = hit.Notes
			}
			ds = append(ds, decision{spot: "func " + f.Name, ok: hit != nil, note: note})
		}
		// The hot loop, when ground truth defines one, is a second
		// decision point: parallelizable hot loops must be suggested as
		// task/DOALL loops, sequential ones must not.
		if hot := prog.Truth.Hot; hot != nil {
			got := kindFor(rep, hot)
			want := truthKind(prog.Truth, hot)
			ds = append(ds, decision{
				spot: fmt.Sprintf("loop %s", hot.Start),
				ok:   classMatches(want, got),
				note: fmt.Sprintf("truth %s, detected %s", want, got),
			})
		}
		rows[i] = ds
	})
	for i, name := range names {
		for _, d := range rows[i] {
			record(name, d.spot, d.ok, d.note)
		}
	}
	fmt.Fprintf(&sb, "correct decisions: %d/%d (paper: 20/20)\n", correct, total)
	res.Text = sb.String()
	return res
}

// Table4_7 checks MPMD task detection on the pipeline applications.
func Table4_7(scale int) *Result {
	res := &Result{ID: "table4.7", Title: "MPMD tasks in PARSEC-like, libVorbis, FaceDetection"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %8s  %s\n", "program", "found", "tasks", "notes")
	names := workloads.Names("MPMD")
	type row struct {
		found  bool
		ntasks int
		notes  string
	}
	rows := make([]row, len(names))
	analyzeStream(names, scale, func(i int, prog *workloads.Program, rep *discopop.Report) {
		var hit *discovery.Suggestion
		for _, s := range rep.Ranked {
			if s.Kind == discovery.MPMDTask && len(s.Tasks) >= 2 {
				hit = s
				break
			}
		}
		if hit == nil {
			// DOALL/DOACROSS pipelines also count as discovered structure.
			for _, s := range rep.Ranked {
				if s.Score > 0 && (s.Kind == discovery.DOACROSS || isParallelKind(s.Kind)) {
					hit = s
					break
				}
			}
		}
		r := row{found: hit != nil, notes: "no parallelism found"}
		if hit != nil {
			r.ntasks = len(hit.Tasks)
			r.notes = hit.Notes
		}
		rows[i] = r
	})
	for i, name := range names {
		r := rows[i]
		res.add(name, map[string]float64{"found": b2f(r.found), "tasks": float64(r.ntasks)})
		fmt.Fprintf(&sb, "%-16s %8v %8d  %s\n", name, r.found, r.ntasks, r.notes)
	}
	res.Text = sb.String()
	return res
}

// Fig4_11 reproduces the FaceDetection scaling curve: speedup versus
// thread count, saturating near the paper's 9.92 at 32 threads.
func Fig4_11(scale int) *Result {
	res := &Result{ID: "fig4.11", Title: "FaceDetection speedups vs. number of threads"}
	prog, rep := analyzeOne("facedetection", scale)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s\n", "threads", "speedup")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		sp := SimulateBest(prog, rep, p)
		res.add(fmt.Sprintf("%d", p), map[string]float64{"speedup": sp})
		fmt.Fprintf(&sb, "%8d %9.2fx\n", p, sp)
	}
	fmt.Fprintf(&sb, "(paper: 9.92x at 32 threads)\n")
	res.Text = sb.String()
	return res
}
