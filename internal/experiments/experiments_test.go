package experiments

import "testing"

// These smoke tests pin the headline numbers of the evaluation: if a
// refactoring regresses detection quality or breaks an experiment, the
// failure shows up here rather than only in a bench run.

func TestTable4_1Recall(t *testing.T) {
	r := Table4_1(1)
	if rec := r.Mean("recall"); rec < 90 {
		t.Fatalf("NAS loop recall = %.1f%%, want >= 90%% (paper: 92.5%%)", rec)
	}
	if fp := r.Mean("false_pos"); fp > 0 {
		t.Fatalf("NAS false positives = %.1f, want 0", fp)
	}
}

func TestTable4_4AllHotLoopsCorrect(t *testing.T) {
	r := Table4_4(1)
	if m := r.Mean("match"); m < 0.99 {
		t.Fatalf("hot-loop classification rate = %.2f, want 1.0", m)
	}
}

func TestTable4_6AllDecisionsCorrect(t *testing.T) {
	r := Table4_6(1)
	if m := r.Mean("correct"); m < 0.99 {
		t.Fatalf("BOTS decision rate = %.2f, want 1.0 (paper: 20/20)", m)
	}
}

func TestTable4_7AllAppsExposeTasks(t *testing.T) {
	r := Table4_7(1)
	if m := r.Mean("found"); m < 0.99 {
		t.Fatalf("MPMD structure found rate = %.2f, want 1.0", m)
	}
}

func TestTable2_7SkipRateNearPaper(t *testing.T) {
	r := Table2_7(1)
	total := r.Mean("total_pct")
	if total < 60 || total > 95 {
		t.Fatalf("skip rate = %.1f%%, want in [60, 95] (paper: 80.06%%)", total)
	}
}

func TestFig2_13FTHasWAW(t *testing.T) {
	r := Fig2_13(1)
	for _, row := range r.Rows {
		if row.Label == "FT" && row.Cells["waw"] <= 0 {
			t.Fatalf("FT's dummy-variable WAW share missing (Figure 2.14)")
		}
	}
}

func TestFig4_11CurveShape(t *testing.T) {
	r := Fig4_11(1)
	var prev float64
	var at32 float64
	for _, row := range r.Rows {
		sp := row.Cells["speedup"]
		if sp < prev-1e-9 {
			t.Fatalf("FaceDetection curve not monotone: %v", r.Rows)
		}
		prev = sp
		if row.Label == "32" {
			at32 = sp
		}
	}
	if at32 < 6 || at32 > 16 {
		t.Fatalf("speedup@32 = %.2f, want in [6, 16] (paper: 9.92)", at32)
	}
}

func TestTable4_2AverageSpeedup(t *testing.T) {
	r := Table4_2(1, 4)
	if avg := r.Mean("speedup"); avg < 2 {
		t.Fatalf("textbook average speedup = %.2f, want >= 2 on 4 threads", avg)
	}
}

func TestTable4_5BlockOpportunity(t *testing.T) {
	r := Table4_5(1, 4)
	if sp := r.Mean("speedup"); sp < 1.3 {
		t.Fatalf("compressor speedup = %.2f, want >= 1.3", sp)
	}
}

func TestTable5Scores(t *testing.T) {
	r := Table5_2_5_3(1)
	for _, row := range r.Rows {
		if row.Label == "score:all" {
			if row.Cells["f1"] < 0.8 {
				t.Fatalf("classifier F1 = %.3f, want >= 0.8", row.Cells["f1"])
			}
		}
	}
}

func TestTable5_4TransactionsDerived(t *testing.T) {
	r := Table5_4(1)
	total := 0.0
	for _, row := range r.Rows {
		total += row.Cells["transactions"]
	}
	if total == 0 {
		t.Fatal("no STM transactions derived from any NAS benchmark")
	}
}

func TestTable2_6Trend(t *testing.T) {
	r := Table2_6(1, []int{1 << 10, 1 << 20})
	small := r.Mean("fpr@1024")
	large := r.Mean("fpr@1048576")
	if large >= small {
		t.Fatalf("FPR did not fall with slots: %.1f%% -> %.1f%%", small, large)
	}
	if fnr := r.Mean("fnr@1048576"); fnr > 1 {
		t.Fatalf("FNR at 1M slots = %.2f%%, want ~0", fnr)
	}
}

func TestFig5_1CrossThreadCommunication(t *testing.T) {
	r := Fig5_1(1)
	for _, row := range r.Rows {
		if row.Cells["cross_thread"] <= 0 {
			t.Fatalf("%s: no cross-thread communication", row.Label)
		}
	}
}
