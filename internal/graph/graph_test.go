package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle vertices in different components: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("vertex 3 merged into cycle: %v", comp)
	}
}

func TestSCCSelfLoopsAndIsolated(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp = %d, want 3 (self-loop is its own SCC)", n)
	}
	_ = comp
}

// TestCondenseIsDAG: the condensation of any random graph is acyclic.
func TestCondenseIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		dag, comp := g.Condense()
		if _, ok := dag.Topo(); !ok {
			t.Fatalf("trial %d: condensation has a cycle", trial)
		}
		// Every original edge maps to same component or a DAG edge.
		for v := 0; v < n; v++ {
			for _, w := range g.Succs(v) {
				if comp[v] != comp[w] && !dag.HasEdge(comp[v], comp[w]) {
					t.Fatalf("trial %d: edge %d->%d lost in condensation", trial, v, w)
				}
			}
		}
	}
}

func TestChainsLinear(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	chainOf, chains := g.Chains()
	if len(chains) != 1 {
		t.Fatalf("linear chain contracted to %d chains: %v", len(chains), chains)
	}
	for v := 0; v < 4; v++ {
		if chainOf[v] != 0 {
			t.Errorf("vertex %d not in chain 0", v)
		}
	}
}

func TestChainsDiamond(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3: the branches are separate chains.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	_, chains := g.Chains()
	if len(chains) != 4 {
		t.Fatalf("diamond contracted to %d chains, want 4: %v", len(chains), chains)
	}
}

// TestContractChainsPreservesReachability on random DAGs.
func TestContractChainsPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(15)
		g := New(n)
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b {
				g.AddEdge(a, b) // forward edges only: a DAG
			}
		}
		cg, chainOf := g.ContractChains()
		reach := func(gr *Graph, from, to int) bool {
			seen := make([]bool, gr.N)
			stack := []int{from}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if v == to {
					return true
				}
				if seen[v] {
					continue
				}
				seen[v] = true
				stack = append(stack, gr.Succs(v)...)
			}
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				orig := reach(g, a, b)
				contracted := chainOf[a] == chainOf[b] || reach(cg, chainOf[a], chainOf[b])
				if orig && !contracted {
					t.Fatalf("trial %d: reachability %d->%d lost", trial, a, b)
				}
			}
		}
	}
}

func TestTopoDetectsCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.Topo(); ok {
		t.Fatal("cycle not detected")
	}
}

func TestCriticalPath(t *testing.T) {
	// Diamond with weights: cp = 1 + 5 + 1 = 7, total = 1+5+2+1 = 9.
	g := New(4)
	g.Weight = []float64{1, 5, 2, 1}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cp, total := g.CriticalPath()
	if cp != 7 || total != 9 {
		t.Fatalf("cp=%f total=%f, want 7, 9", cp, total)
	}
}

// TestCriticalPathBounds: for any DAG, max vertex weight <= cp <= total.
func TestCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		g.Weight = make([]float64, n)
		maxW := 0.0
		for v := range g.Weight {
			g.Weight[v] = float64(1 + rng.Intn(10))
			if g.Weight[v] > maxW {
				maxW = g.Weight[v]
			}
		}
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b {
				g.AddEdge(a, b)
			}
		}
		cp, total := g.CriticalPath()
		return cp >= maxW && cp <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 groups", comps)
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if len(g.Succs(0)) != 1 {
		t.Fatalf("duplicate edge stored: %v", g.Succs(0))
	}
	if len(g.Preds(1)) != 1 {
		t.Fatalf("duplicate pred stored: %v", g.Preds(1))
	}
}

func TestSCCLargeChain(t *testing.T) {
	// A long chain must not overflow the iterative Tarjan.
	n := 100000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	_, ncomp := g.SCC()
	if ncomp != n {
		t.Fatalf("chain SCC count = %d, want %d", ncomp, n)
	}
}
