// Package graph provides the graph algorithms the discovery phase relies
// on: Tarjan strongly-connected components and chain contraction (used to
// simplify CU graphs for MPMD task detection, Figure 4.5), topological
// sorting, and weighted critical-path computation (used by the ranking
// metrics of Section 4.3).
package graph

import "sort"

// Graph is a directed graph over vertices 0..N-1 with optional weights.
type Graph struct {
	N      int
	adj    [][]int
	radj   [][]int
	Weight []float64 // vertex weights (may be nil)
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n), radj: make([][]int, n)}
}

// AddEdge adds the directed edge u -> v (duplicates are ignored).
func (g *Graph) AddEdge(u, v int) {
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.radj[v] = append(g.radj[v], u)
}

// Succs returns the successor list of u.
func (g *Graph) Succs(u int) []int { return g.adj[u] }

// Preds returns the predecessor list of u.
func (g *Graph) Preds(u int) []int { return g.radj[u] }

// HasEdge reports whether u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative). It returns the component ID of every vertex and the number
// of components. Component IDs are assigned in reverse topological order.
func (g *Graph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	index := make([]int, g.N)
	low := make([]int, g.N)
	onStack := make([]bool, g.N)
	comp = make([]int, g.N)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	next := 0

	type fr struct {
		v, ei int
	}
	for root := 0; root < g.N; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []fr{{root, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					work = append(work, fr{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// Condense returns the condensation DAG of g (one vertex per SCC), with
// vertex weights summed per component. The returned mapping is vertex ->
// component.
func (g *Graph) Condense() (*Graph, []int) {
	comp, n := g.SCC()
	dag := New(n)
	dag.Weight = make([]float64, n)
	for v := 0; v < g.N; v++ {
		if g.Weight != nil {
			dag.Weight[comp[v]] += g.Weight[v]
		}
		for _, w := range g.adj[v] {
			if comp[v] != comp[w] {
				dag.AddEdge(comp[v], comp[w])
			}
		}
	}
	return dag, comp
}

// Chains contracts maximal chains of the DAG: sequences v1 -> v2 -> ... in
// which every interior vertex has exactly one predecessor and one
// successor. It returns the chain ID of each vertex and the chains in
// topological member order — the second contraction step of Figure 4.5.
func (g *Graph) Chains() (chainOf []int, chains [][]int) {
	order, ok := g.Topo()
	if !ok {
		// Cyclic graph: each vertex is its own chain.
		chainOf = make([]int, g.N)
		for v := 0; v < g.N; v++ {
			chainOf[v] = v
			chains = append(chains, []int{v})
		}
		return chainOf, chains
	}
	chainOf = make([]int, g.N)
	for i := range chainOf {
		chainOf[i] = -1
	}
	for _, v := range order {
		if chainOf[v] != -1 {
			continue
		}
		chain := []int{v}
		cur := v
		for {
			if len(g.adj[cur]) != 1 {
				break
			}
			next := g.adj[cur][0]
			if len(g.radj[next]) != 1 || chainOf[next] != -1 {
				break
			}
			chain = append(chain, next)
			cur = next
			chainOf[cur] = -2 // reserved
		}
		id := len(chains)
		for _, u := range chain {
			chainOf[u] = id
		}
		chains = append(chains, chain)
	}
	return chainOf, chains
}

// ContractChains returns the graph with every chain collapsed into one
// vertex (weights summed), plus the vertex -> chain mapping.
func (g *Graph) ContractChains() (*Graph, []int) {
	chainOf, chains := g.Chains()
	out := New(len(chains))
	out.Weight = make([]float64, len(chains))
	for v := 0; v < g.N; v++ {
		if g.Weight != nil {
			out.Weight[chainOf[v]] += g.Weight[v]
		}
		for _, w := range g.adj[v] {
			if chainOf[v] != chainOf[w] {
				out.AddEdge(chainOf[v], chainOf[w])
			}
		}
	}
	return out, chainOf
}

// Topo returns a topological order of g and whether g is acyclic.
func (g *Graph) Topo() ([]int, bool) {
	indeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		for range g.radj[v] {
			indeg[v]++
		}
	}
	var queue []int
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == g.N
}

// CriticalPath returns the weight of the heaviest path through the DAG
// using vertex weights (1.0 per vertex if Weight is nil), plus the total
// weight. Work / critical-path is the parallelism bound of Section 1.2.1.
func (g *Graph) CriticalPath() (cp float64, total float64) {
	order, ok := g.Topo()
	if !ok {
		// Cyclic: the whole graph is sequential.
		for v := 0; v < g.N; v++ {
			total += g.w(v)
		}
		return total, total
	}
	dist := make([]float64, g.N)
	for _, v := range order {
		w := g.w(v)
		total += w
		best := 0.0
		for _, p := range g.radj[v] {
			if dist[p] > best {
				best = dist[p]
			}
		}
		dist[v] = best + w
		if dist[v] > cp {
			cp = dist[v]
		}
	}
	return cp, total
}

func (g *Graph) w(v int) float64 {
	if g.Weight == nil {
		return 1
	}
	return g.Weight[v]
}

// Components returns the weakly connected components of g, each as a
// sorted vertex list — independent subgraphs that can run in parallel.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N)
	var comps [][]int
	for v := 0; v < g.N; v++ {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
			for _, w := range g.radj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
