package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Strict profile.proto reader, mirroring metrics.Parse: it understands
// exactly the subset EncodeLineProfile emits and errors on anything else
// (unknown fields, bad wire types, dangling ids), so a test decoding an
// emitted profile genuinely validates the encoding rather than skipping
// what it does not recognize.

// DecodedLine is one resolved sample of a decoded line profile.
type DecodedLine struct {
	File  string
	Line  int64
	Func  string
	Value int64
}

// DecodedProfile is the resolved content of a line profile.
type DecodedProfile struct {
	SampleType string
	Unit       string
	TimeNanos  int64
	Period     int64
	// Lines are the samples in emission order (value-descending for
	// profiles written by EncodeLineProfile).
	Lines []DecodedLine
}

// protoReader walks the protobuf wire format.
type protoReader struct{ b []byte }

func (r *protoReader) empty() bool { return len(r.b) == 0 }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for i := 0; i < len(r.b) && i < 10; i++ {
		v |= uint64(r.b[i]&0x7f) << (7 * i)
		if r.b[i] < 0x80 {
			r.b = r.b[i+1:]
			return v, nil
		}
	}
	return 0, fmt.Errorf("obs: truncated or oversized varint")
}

// field reads one field key and its payload: wire type 0 returns the
// varint value, wire type 2 returns the delimited bytes.
func (r *protoReader) field() (num int, val uint64, body []byte, err error) {
	key, err := r.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	num = int(key >> 3)
	switch key & 7 {
	case 0:
		val, err = r.varint()
		return num, val, nil, err
	case 2:
		n, err := r.varint()
		if err != nil {
			return 0, 0, nil, err
		}
		if n > uint64(len(r.b)) {
			return 0, 0, nil, fmt.Errorf("obs: field %d length %d overruns buffer", num, n)
		}
		body = r.b[:n]
		r.b = r.b[n:]
		return num, 0, body, nil
	default:
		return 0, 0, nil, fmt.Errorf("obs: field %d has unsupported wire type %d", num, key&7)
	}
}

// packedUints reads a packed repeated varint payload.
func packedUints(body []byte) ([]uint64, error) {
	r := &protoReader{b: body}
	var out []uint64
	for !r.empty() {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// valueType is a decoded ValueType message (string-table indexes).
type valueType struct{ typ, unit uint64 }

func decodeValueType(body []byte) (valueType, error) {
	var vt valueType
	r := &protoReader{b: body}
	for !r.empty() {
		num, val, _, err := r.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			vt.typ = val
		case 2:
			vt.unit = val
		default:
			return vt, fmt.Errorf("obs: ValueType has unexpected field %d", num)
		}
	}
	return vt, nil
}

// DecodeLineProfile reads a gzipped profile.proto produced by
// EncodeLineProfile and resolves every reference: string-table indexes,
// sample → location → function links. Any field the encoder does not
// emit, or any dangling id, is an error.
func DecodeLineProfile(data []byte) (*DecodedProfile, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("obs: profile is not gzip: %w", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("obs: gunzip profile: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}

	type rawSample struct {
		locs []uint64
		vals []uint64
	}
	type rawLoc struct {
		funcID uint64
		line   int64
	}
	type rawFunc struct {
		name, file uint64
	}
	var (
		sampleTypes []valueType
		samples     []rawSample
		locs        = map[uint64]rawLoc{}
		funcs       = map[uint64]rawFunc{}
		strs        []string
		timeNanos   int64
		periodType  *valueType
		period      int64
	)

	r := &protoReader{b: raw}
	for !r.empty() {
		num, val, body, err := r.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			vt, err := decodeValueType(body)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			var s rawSample
			sr := &protoReader{b: body}
			for !sr.empty() {
				n, _, b, err := sr.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					if s.locs, err = packedUints(b); err != nil {
						return nil, err
					}
				case 2:
					if s.vals, err = packedUints(b); err != nil {
						return nil, err
					}
				default:
					return nil, fmt.Errorf("obs: Sample has unexpected field %d", n)
				}
			}
			samples = append(samples, s)
		case 4: // location
			var id, funcID uint64
			var line int64
			lr := &protoReader{b: body}
			for !lr.empty() {
				n, v, b, err := lr.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = v
				case 4: // Line submessage
					liner := &protoReader{b: b}
					for !liner.empty() {
						ln, lv, _, err := liner.field()
						if err != nil {
							return nil, err
						}
						switch ln {
						case 1:
							funcID = lv
						case 2:
							line = int64(lv)
						default:
							return nil, fmt.Errorf("obs: Line has unexpected field %d", ln)
						}
					}
				default:
					return nil, fmt.Errorf("obs: Location has unexpected field %d", n)
				}
			}
			if id == 0 {
				return nil, fmt.Errorf("obs: Location without id")
			}
			locs[id] = rawLoc{funcID: funcID, line: line}
		case 5: // function
			var id uint64
			var f rawFunc
			fr := &protoReader{b: body}
			for !fr.empty() {
				n, v, _, err := fr.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id = v
				case 2:
					f.name = v
				case 3: // system_name, same interned string as name
				case 4:
					f.file = v
				default:
					return nil, fmt.Errorf("obs: Function has unexpected field %d", n)
				}
			}
			if id == 0 {
				return nil, fmt.Errorf("obs: Function without id")
			}
			funcs[id] = f
		case 6: // string_table
			strs = append(strs, string(body))
		case 9:
			timeNanos = int64(val)
		case 11:
			vt, err := decodeValueType(body)
			if err != nil {
				return nil, err
			}
			periodType = &vt
		case 12:
			period = int64(val)
		default:
			return nil, fmt.Errorf("obs: Profile has unexpected field %d", num)
		}
	}

	str := func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", fmt.Errorf("obs: string index %d outside table of %d", i, len(strs))
		}
		return strs[i], nil
	}
	if len(strs) == 0 || strs[0] != "" {
		return nil, fmt.Errorf("obs: string table must start with the empty string")
	}
	if len(sampleTypes) != 1 {
		return nil, fmt.Errorf("obs: want exactly 1 sample type, got %d", len(sampleTypes))
	}
	out := &DecodedProfile{TimeNanos: timeNanos, Period: period}
	if out.SampleType, err = str(sampleTypes[0].typ); err != nil {
		return nil, err
	}
	if out.Unit, err = str(sampleTypes[0].unit); err != nil {
		return nil, err
	}
	if periodType != nil {
		if pt, err := str(periodType.typ); err != nil || pt != out.SampleType {
			return nil, fmt.Errorf("obs: period type disagrees with sample type")
		}
	}
	for _, s := range samples {
		if len(s.locs) != 1 || len(s.vals) != 1 {
			return nil, fmt.Errorf("obs: line-profile samples carry exactly one location and one value")
		}
		loc, ok := locs[s.locs[0]]
		if !ok {
			return nil, fmt.Errorf("obs: sample references unknown location %d", s.locs[0])
		}
		fn, ok := funcs[loc.funcID]
		if !ok {
			return nil, fmt.Errorf("obs: location references unknown function %d", loc.funcID)
		}
		dl := DecodedLine{Line: loc.line, Value: int64(s.vals[0])}
		if dl.File, err = str(fn.file); err != nil {
			return nil, err
		}
		if dl.Func, err = str(fn.name); err != nil {
			return nil, err
		}
		out.Lines = append(out.Lines, dl)
	}
	return out, nil
}
