// Package obs is the dependency-free observability layer of the analysis
// fleet: a per-job span recorder, wire/export formats for the resulting
// trace (Chrome trace-event JSON for Perfetto/about:tracing, indented
// text for terminals), and a hand-encoded pprof profile.proto writer (and
// strict reader) for per-workload execution-effort profiles.
//
// The span model is deliberately small. A job produces one Trace: a flat
// slice of Spans with parent links (indexes into the slice, -1 for the
// root), wall-clock start timestamps, durations, and string key/value
// attrs. Spans record stage boundaries — queue wait, profile, build-cus,
// a remote hop — never per-access events, so recording costs a handful of
// allocations per job and nothing on the profiler's hot path.
//
// Traces cross nodes: a coordinator grafts the span list a worker
// returned in its job result under its own "remote" span (Recorder.Graft),
// shifting the worker's timestamps by an estimated per-hop clock offset so
// the worker's queue/profile/discover spans nest inline in the
// coordinator's trace, with the estimate recorded on the hop.
package obs

import "time"

// Span is one timed interval of a job, in the wire form that crosses
// nodes inside job results (all times are integer nanoseconds so the JSON
// round-trips exactly).
type Span struct {
	// Name is the stage or interval name ("job", "queue", "profile",
	// "remote", ...).
	Name string `json:"name"`
	// Start is the span's wall-clock start in Unix nanoseconds, on the
	// clock of the node that recorded it (grafting shifts remote spans
	// onto the local clock).
	Start int64 `json:"start_unix_ns"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Parent is the index of the enclosing span in Trace.Spans, -1 for
	// the root.
	Parent int `json:"parent"`
	// Node names the node that recorded the span; empty means the node
	// that owns the trace (a coordinator sets it to the peer URL when
	// grafting worker spans).
	Node string `json:"node,omitempty"`
	// Attrs carries key/value annotations (cache hit, peer, instruction
	// count, clock skew...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end time in Unix nanoseconds.
func (s Span) End() int64 { return s.Start + s.Dur }

// Trace is one job's complete span tree.
type Trace struct {
	// ID identifies the trace fleet-wide: the coordinator's job id, or
	// the client-supplied X-DP-Trace value, propagated to workers.
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
}

// Recorder captures the spans of one job. It is single-owner state: the
// engine worker running the job starts and ends spans in LIFO order
// (matching the pipeline's nested stage execution), so no locking is
// needed or provided.
type Recorder struct {
	id    string
	spans []Span
	stack []int // indexes of open spans, innermost last
}

// NewRecorder returns a recorder for one job. The id becomes Trace.ID.
func NewRecorder(id string) *Recorder { return &Recorder{id: id} }

// ID returns the trace id the recorder was created with.
func (r *Recorder) ID() string { return r.id }

// Start opens a span named name as a child of the innermost open span
// (or as a root) and returns its index.
func (r *Recorder) Start(name string) int {
	parent := -1
	if n := len(r.stack); n > 0 {
		parent = r.stack[n-1]
	}
	i := len(r.spans)
	r.spans = append(r.spans, Span{
		Name:   name,
		Start:  time.Now().UnixNano(),
		Parent: parent,
	})
	r.stack = append(r.stack, i)
	return i
}

// End closes the span at index i, popping it (and, defensively, anything
// opened after it and never closed) off the open stack.
func (r *Recorder) End(i int) {
	if i < 0 || i >= len(r.spans) {
		return
	}
	r.spans[i].Dur = time.Now().UnixNano() - r.spans[i].Start
	for n := len(r.stack); n > 0; n-- {
		if r.stack[n-1] == i {
			r.stack = r.stack[:n-1]
			break
		}
	}
}

// Annotate attaches a key/value attr to the innermost open span. With no
// span open it is a no-op.
func (r *Recorder) Annotate(key, value string) {
	if n := len(r.stack); n > 0 {
		r.AnnotateSpan(r.stack[n-1], key, value)
	}
}

// AnnotateSpan attaches a key/value attr to the span at index i.
func (r *Recorder) AnnotateSpan(i int, key, value string) {
	if i < 0 || i >= len(r.spans) {
		return
	}
	if r.spans[i].Attrs == nil {
		r.spans[i].Attrs = map[string]string{}
	}
	r.spans[i].Attrs[key] = value
}

// AddInterval records an already-elapsed interval — e.g. the queue wait
// measured between enqueue and worker pickup — as a closed child of the
// span at index parent (-1 for a root). It returns the new span's index.
func (r *Recorder) AddInterval(name string, start, end time.Time, parent int) int {
	if parent >= len(r.spans) {
		parent = -1
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	i := len(r.spans)
	r.spans = append(r.spans, Span{
		Name:   name,
		Start:  start.UnixNano(),
		Dur:    int64(d),
		Parent: parent,
	})
	return i
}

// Graft splices the span list a remote worker returned under the
// innermost open span (the coordinator's "remote" hop). Spans whose Node
// is empty are stamped with node (the peer URL). The worker's timestamps
// are on the worker's clock; Graft estimates the per-hop clock offset by
// centering the worker's root interval inside the still-open local span
// (the worker's work happened strictly within the hop, so the residual —
// network latency aside — is clock skew), shifts every grafted span by
// it, and returns the estimate for the caller to record on the hop.
func (r *Recorder) Graft(node string, spans []Span) time.Duration {
	if len(spans) == 0 {
		return 0
	}
	parent := -1
	if n := len(r.stack); n > 0 {
		parent = r.stack[n-1]
	}
	// The worker's root anchors the shift; a span list without one (not
	// produced by any Recorder) grafts unshifted.
	root := -1
	for i, s := range spans {
		if s.Parent < 0 || s.Parent >= len(spans) {
			root = i
			break
		}
	}
	var shift int64
	if parent >= 0 && root >= 0 {
		t0 := r.spans[parent].Start
		hop := time.Now().UnixNano() - t0
		w := spans[root]
		if slack := hop - w.Dur; slack > 0 {
			shift = w.Start - (t0 + slack/2)
		} else {
			// The worker claims more time than the whole hop took: clocks
			// disagree beyond repair; left-align so the tree stays readable.
			shift = w.Start - t0
		}
	}
	base := len(r.spans)
	for _, s := range spans {
		if s.Parent >= 0 && s.Parent < len(spans) {
			s.Parent += base
		} else {
			s.Parent = parent
		}
		s.Start -= shift
		if s.Node == "" {
			s.Node = node
		}
		r.spans = append(r.spans, s)
	}
	return time.Duration(shift)
}

// Trace closes any still-open spans and returns the recorded trace. The
// spans are copied; the recorder can keep recording (though jobs normally
// call Trace exactly once, at the end).
func (r *Recorder) Trace() *Trace {
	for i := len(r.stack); i > 0; i-- {
		r.End(r.stack[i-1])
	}
	t := &Trace{ID: r.id, Spans: make([]Span, len(r.spans))}
	copy(t.Spans, r.spans)
	return t
}
