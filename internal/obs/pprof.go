package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"
)

// Execution-effort profiles in pprof's profile.proto format, hand-encoded
// like the metrics package hand-encodes the Prometheus text format: no
// protobuf dependency, just the handful of wire features the message
// needs (varints, length-delimited submessages, packed repeated scalars).
// The output is a gzipped profile.proto that `go tool pprof` loads
// directly, ranking the analyzed program's source lines by instruction
// effort the way it ranks a native program's hot lines.
//
// profile.proto field numbers used here (the full schema is
// github.com/google/pprof/proto/profile.proto):
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 11 period_type, 12 period
//	ValueType: 1 type, 2 unit           (string-table indexes)
//	Sample:    1 location_id (packed), 2 value (packed)
//	Location:  1 id, 4 line
//	Line:      1 function_id, 2 line
//	Function:  1 id, 2 name, 3 system_name, 4 filename, 5 start_line

// LineSample is one source line's execution effort: the flattened,
// IR-agnostic input to EncodeLineProfile.
type LineSample struct {
	// File and Line locate the source line; Func names the containing
	// function.
	File string
	Line int64
	Func string
	// Value is the line's effort (instruction or access count).
	Value int64
}

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key: number<<3 | wire type (0 varint, 2 bytes).
func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// intField writes a varint field, omitted at zero per proto3.
func (p *protoBuf) intField(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField writes a repeated scalar field in packed encoding, omitted
// when empty.
func (p *protoBuf) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// strTable interns strings into the profile's string table (index 0 is
// required to be "").
type strTable struct {
	idx map[string]int64
	all []string
}

func newStrTable() *strTable {
	return &strTable{idx: map[string]int64{"": 0}, all: []string{""}}
}

func (t *strTable) intern(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.all))
	t.idx[s] = i
	t.all = append(t.all, s)
	return i
}

// EncodeLineProfile renders line samples as a gzipped profile.proto with
// one sample type (e.g. "instructions"/"count"). Each sample has a single
// location — the source line — carrying its file:line and containing
// function, so `go tool pprof -top` ranks lines and `-lines` granularity
// works out of the box. Samples at the same file:line are merged;
// emission order is by value descending (ties by file then line), so the
// encoding is deterministic for a given input set.
func EncodeLineProfile(sampleType, unit string, samples []LineSample, timeNanos int64) ([]byte, error) {
	if sampleType == "" || unit == "" {
		return nil, fmt.Errorf("obs: pprof sample type and unit are required")
	}
	// Merge duplicate lines, then order deterministically.
	type lineKey struct {
		file string
		line int64
	}
	merged := map[lineKey]*LineSample{}
	for _, s := range samples {
		if s.Value == 0 {
			continue
		}
		k := lineKey{s.File, s.Line}
		if m, ok := merged[k]; ok {
			m.Value += s.Value
		} else {
			c := s
			merged[k] = &c
		}
	}
	ordered := make([]*LineSample, 0, len(merged))
	for _, s := range merged {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Value != b.Value {
			return a.Value > b.Value
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})

	st := newStrTable()
	var prof protoBuf

	// sample_type + period_type (field 11) share the ValueType encoding.
	var vt protoBuf
	vt.intField(1, st.intern(sampleType))
	vt.intField(2, st.intern(unit))
	prof.bytesField(1, vt.b)

	// Functions dedup by (name, file); locations are 1:1 with samples.
	type funcKey struct {
		name string
		file string
	}
	funcIDs := map[funcKey]uint64{}
	var funcs protoBuf // accumulated Function submessages, framed later
	funcID := func(name, file string) uint64 {
		k := funcKey{name, file}
		if id, ok := funcIDs[k]; ok {
			return id
		}
		id := uint64(len(funcIDs) + 1)
		funcIDs[k] = id
		var f protoBuf
		f.intField(1, int64(id))
		f.intField(2, st.intern(name))
		f.intField(3, st.intern(name))
		f.intField(4, st.intern(file))
		funcs.bytesField(5, f.b)
		return id
	}

	var locs, samplesBuf protoBuf
	for i, s := range ordered {
		locID := uint64(i + 1)
		var line protoBuf
		line.intField(1, int64(funcID(s.Func, s.File)))
		line.intField(2, s.Line)
		var loc protoBuf
		loc.intField(1, int64(locID))
		loc.bytesField(4, line.b)
		locs.bytesField(4, loc.b)

		var smp protoBuf
		smp.packedField(1, []uint64{locID})
		smp.packedField(2, []uint64{uint64(s.Value)})
		samplesBuf.bytesField(2, smp.b)
	}
	prof.b = append(prof.b, samplesBuf.b...)
	prof.b = append(prof.b, locs.b...)
	prof.b = append(prof.b, funcs.b...)

	// String table entries, in intern order, then scalars.
	for _, s := range st.all {
		prof.stringField(6, s)
	}
	prof.intField(9, timeNanos)
	var pt protoBuf
	pt.intField(1, st.intern(sampleType))
	pt.intField(2, st.intern(unit))
	prof.bytesField(11, pt.b)
	prof.intField(12, 1)

	var out bytes.Buffer
	gz := gzip.NewWriter(&out)
	if _, err := gz.Write(prof.b); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}
