package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array Perfetto and about:tracing load). Spans render as "X" (complete)
// events; node names render as "M" (metadata) process_name events.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the trace in Chrome trace-event JSON. Each node of
// the trace becomes one process (the local node is pid 1, named by a
// process_name metadata event); timestamps are microseconds relative to
// the earliest span, so the viewer opens at t=0. Spans nest on a single
// thread track per node by interval containment, which the recorder's
// LIFO discipline guarantees.
func (t *Trace) WriteChrome(w io.Writer) error {
	var t0 int64
	for i, s := range t.Spans {
		if i == 0 || s.Start < t0 {
			t0 = s.Start
		}
	}
	// Deterministic pid assignment: local node first, then remote nodes
	// in order of first appearance.
	pids := map[string]int{"": 1}
	order := []string{""}
	for _, s := range t.Spans {
		if _, ok := pids[s.Node]; !ok {
			pids[s.Node] = len(pids) + 1
			order = append(order, s.Node)
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms",
		TraceEvents: make([]chromeEvent, 0, len(t.Spans)+len(pids))}
	for _, node := range order {
		name := node
		if name == "" {
			name = "local"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[node], Tid: 1,
			Args: map[string]string{"name": name},
		})
	}
	meta := len(out.TraceEvents)
	for _, s := range t.Spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: "dp", Ph: "X",
			Ts:  float64(s.Start-t0) / 1e3,
			Dur: float64(s.Dur) / 1e3,
			Pid: pids[s.Node], Tid: 1,
			Args: s.Attrs,
		})
	}
	// Emit complete events in timestamp order (longer span first on ties,
	// so parents precede the children they enclose): spans are recorded in
	// open order, but e.g. the queue interval predates the job root.
	evs := out.TraceEvents[meta:]
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		return evs[i].Dur > evs[j].Dur
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteText renders the trace as an indented span tree, children in
// recorded order under their parents — the dp-discover -trace form.
func (t *Trace) WriteText(w io.Writer) error {
	children := make(map[int][]int)
	var roots []int
	for i, s := range t.Spans {
		if s.Parent < 0 || s.Parent >= len(t.Spans) {
			roots = append(roots, i)
		} else {
			children[s.Parent] = append(children[s.Parent], i)
		}
	}
	if _, err := fmt.Fprintf(w, "trace %s (%d spans)\n", t.ID, len(t.Spans)); err != nil {
		return err
	}
	// Parent links may come off the wire; a visited set keeps a cyclic
	// (malformed) graph from recursing forever.
	visited := make([]bool, len(t.Spans))
	var walk func(i, depth int) error
	walk = func(i, depth int) error {
		if visited[i] {
			return nil
		}
		visited[i] = true
		s := t.Spans[i]
		label := s.Name
		if s.Node != "" {
			label += " [" + s.Node + "]"
		}
		attrs := ""
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for j, k := range keys {
				parts[j] = k + "=" + s.Attrs[k]
			}
			attrs = "  " + strings.Join(parts, " ")
		}
		if _, err := fmt.Fprintf(w, "%s%-*s %9.3fms%s\n",
			strings.Repeat("  ", depth+1), 28-2*depth, label,
			float64(s.Dur)/1e6, attrs); err != nil {
			return err
		}
		for _, c := range children[i] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
