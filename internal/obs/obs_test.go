package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRecorderNesting(t *testing.T) {
	r := NewRecorder("t1")
	root := r.Start("job")
	r.AnnotateSpan(root, "name", "w")
	q := r.AddInterval("queue", time.Now().Add(-time.Millisecond), time.Now(), root)
	a := r.Start("profile")
	r.Annotate("cache_hit", "false")
	b := r.Start("inner")
	r.End(b)
	r.End(a)
	c := r.Start("rank")
	r.End(c)
	r.End(root)
	tr := r.Trace()

	if tr.ID != "t1" {
		t.Fatalf("trace id = %q, want t1", tr.ID)
	}
	if len(tr.Spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(tr.Spans))
	}
	wantParents := map[string]string{
		"queue": "job", "profile": "job", "inner": "profile", "rank": "job",
	}
	byIdx := tr.Spans
	for _, s := range byIdx {
		if s.Name == "job" {
			if s.Parent != -1 {
				t.Errorf("job parent = %d, want -1", s.Parent)
			}
			continue
		}
		wantParent := wantParents[s.Name]
		if got := byIdx[s.Parent].Name; got != wantParent {
			t.Errorf("%s parent = %s, want %s", s.Name, got, wantParent)
		}
	}
	if byIdx[a].Attrs["cache_hit"] != "false" {
		t.Errorf("profile attrs = %v, want cache_hit=false", byIdx[a].Attrs)
	}
	if byIdx[q].Dur <= 0 {
		t.Errorf("queue interval duration = %d, want > 0", byIdx[q].Dur)
	}
	// Every closed span nests inside its parent's interval.
	for i, s := range byIdx {
		if s.Parent < 0 {
			continue
		}
		p := byIdx[s.Parent]
		if s.Name == "queue" {
			continue // queue wait predates the root's pickup by design
		}
		if s.Start < p.Start || s.End() > p.End() {
			t.Errorf("span %d (%s) [%d,%d] escapes parent %s [%d,%d]",
				i, s.Name, s.Start, s.End(), p.Name, p.Start, p.End())
		}
	}
}

func TestRecorderTraceClosesOpenSpans(t *testing.T) {
	r := NewRecorder("t")
	r.Start("job")
	r.Start("profile") // never ended: the job panicked mid-stage
	tr := r.Trace()
	for _, s := range tr.Spans {
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration %d", s.Name, s.Dur)
		}
	}
}

func TestGraftShiftsWorkerClock(t *testing.T) {
	r := NewRecorder("coord")
	root := r.Start("job")
	hop := r.Start("remote")
	time.Sleep(5 * time.Millisecond) // the hop must outlast the worker's claimed time

	// A worker trace recorded on a clock one hour ahead, claiming 1ms of
	// work inside a ~5ms hop.
	skew := int64(time.Hour)
	now := time.Now().UnixNano()
	worker := []Span{
		{Name: "job", Start: now + skew, Dur: int64(time.Millisecond), Parent: -1},
		{Name: "profile", Start: now + skew, Dur: int64(time.Millisecond / 2), Parent: 0},
	}
	est := r.Graft("http://worker", worker)
	r.End(hop)
	r.End(root)
	tr := r.Trace()

	if est < time.Duration(skew)-time.Second || est > time.Duration(skew)+time.Second {
		t.Errorf("skew estimate %v, want ~1h", est)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(tr.Spans))
	}
	wjob, wprof := tr.Spans[2], tr.Spans[3]
	if wjob.Node != "http://worker" || wprof.Node != "http://worker" {
		t.Errorf("grafted spans not stamped with node: %q, %q", wjob.Node, wprof.Node)
	}
	if wjob.Parent != hop {
		t.Errorf("worker root parent = %d, want hop span %d", wjob.Parent, hop)
	}
	if wprof.Parent != 2 {
		t.Errorf("worker profile parent = %d, want remapped root 2", wprof.Parent)
	}
	hopSpan := tr.Spans[hop]
	if wjob.Start < hopSpan.Start || wjob.End() > hopSpan.End() {
		t.Errorf("shifted worker root [%d,%d] escapes hop [%d,%d]",
			wjob.Start, wjob.End(), hopSpan.Start, hopSpan.End())
	}
}

func TestGraftEmptyAndUnparented(t *testing.T) {
	r := NewRecorder("c")
	r.Start("job")
	if est := r.Graft("w", nil); est != 0 {
		t.Errorf("empty graft estimated skew %v", est)
	}
	tr := r.Trace()
	if len(tr.Spans) != 1 {
		t.Fatalf("empty graft added spans: %d", len(tr.Spans))
	}
}

func TestWriteChromeValidNested(t *testing.T) {
	r := NewRecorder("t")
	root := r.Start("job")
	s1 := r.Start("profile")
	time.Sleep(2 * time.Millisecond)
	r.End(s1)
	s2 := r.Start("rank")
	r.End(s2)
	r.End(root)
	tr := r.Trace()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteChrome is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var complete []int
	sawMeta := false
	for i, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			sawMeta = true
			if ev.Args["name"] != "local" {
				t.Errorf("metadata process name = %q, want local", ev.Args["name"])
			}
		case "X":
			complete = append(complete, i)
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %s has negative ts/dur: %v/%v", ev.Name, ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !sawMeta {
		t.Error("no process_name metadata event")
	}
	if len(complete) != 3 {
		t.Fatalf("got %d complete events, want 3", len(complete))
	}
	// Relative timestamps are monotone in recording order, and every child
	// interval is contained in the root's.
	job := out.TraceEvents[complete[0]]
	prev := -1.0
	for _, i := range complete {
		ev := out.TraceEvents[i]
		if ev.Ts < prev {
			t.Errorf("timestamps not monotone: %s at %v after %v", ev.Name, ev.Ts, prev)
		}
		prev = ev.Ts
		if ev.Ts+ev.Dur > job.Ts+job.Dur+0.001 {
			t.Errorf("event %s [%v,%v] escapes job [%v,%v]",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, job.Ts, job.Ts+job.Dur)
		}
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder("txt")
	root := r.Start("job")
	s := r.Start("profile")
	r.Annotate("cache_hit", "true")
	r.End(s)
	r.End(root)
	var buf bytes.Buffer
	if err := r.Trace().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace txt (2 spans)", "job", "profile", "cache_hit=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("text trace missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "\n    profile") {
		t.Errorf("profile not indented under job:\n%s", out)
	}
}

func TestWriteTextCyclicParents(t *testing.T) {
	tr := &Trace{ID: "bad", Spans: []Span{
		{Name: "a", Parent: 1},
		{Name: "b", Parent: -1},
		{Name: "c", Parent: 0},
	}}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil { // must terminate
		t.Fatal(err)
	}
}

func TestPprofRoundTrip(t *testing.T) {
	samples := []LineSample{
		{File: "kmeans.c", Line: 12, Func: "main", Value: 100},
		{File: "kmeans.c", Line: 30, Func: "assign", Value: 5000},
		{File: "kmeans.c", Line: 30, Func: "assign", Value: 2500}, // merges with above
		{File: "util.c", Line: 4, Func: "dist", Value: 900},
		{File: "util.c", Line: 9, Func: "dist", Value: 0}, // dropped
	}
	data, err := EncodeLineProfile("instructions", "count", samples, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile is not gzipped (leading bytes % x)", data[:2])
	}
	dec, err := DecodeLineProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SampleType != "instructions" || dec.Unit != "count" {
		t.Errorf("sample type = %s/%s, want instructions/count", dec.SampleType, dec.Unit)
	}
	if dec.TimeNanos != 42 || dec.Period != 1 {
		t.Errorf("time/period = %d/%d, want 42/1", dec.TimeNanos, dec.Period)
	}
	want := []DecodedLine{
		{File: "kmeans.c", Line: 30, Func: "assign", Value: 7500},
		{File: "util.c", Line: 4, Func: "dist", Value: 900},
		{File: "kmeans.c", Line: 12, Func: "main", Value: 100},
	}
	if len(dec.Lines) != len(want) {
		t.Fatalf("decoded %d lines, want %d: %+v", len(dec.Lines), len(want), dec.Lines)
	}
	for i, w := range want {
		if dec.Lines[i] != w {
			t.Errorf("line %d = %+v, want %+v", i, dec.Lines[i], w)
		}
	}
}

func TestPprofDeterministic(t *testing.T) {
	samples := []LineSample{
		{File: "a.c", Line: 1, Func: "f", Value: 7},
		{File: "b.c", Line: 2, Func: "g", Value: 7},
		{File: "a.c", Line: 3, Func: "f", Value: 7},
	}
	first, err := EncodeLineProfile("instructions", "count", samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := EncodeLineProfile("instructions", "count", samples, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("same input encoded to different bytes")
		}
	}
}

func TestPprofRejectsEmptyType(t *testing.T) {
	if _, err := EncodeLineProfile("", "count", nil, 0); err == nil {
		t.Error("empty sample type accepted")
	}
	if _, err := DecodeLineProfile([]byte("not a profile")); err == nil {
		t.Error("garbage accepted by the decoder")
	}
}
