package obs

import (
	"fmt"

	"discopop/internal/ir"
)

// ModuleLineSamples flattens the profiler's per-line access counts into
// pprof line samples, resolving each ir.Loc against the module: the file
// index becomes the registered file name and the containing region names
// the function, so `go tool pprof` renders real <file>:<line> frames for
// the analyzed (simulated) program.
func ModuleLineSamples(mod *ir.Module, lines map[ir.Loc]int64) []LineSample {
	out := make([]LineSample, 0, len(lines))
	for loc, n := range lines {
		if n <= 0 {
			continue
		}
		file := fmt.Sprintf("file%d", loc.File)
		if int(loc.File) >= 0 && int(loc.File) < len(mod.Files) && mod.Files[loc.File] != "" {
			file = mod.Files[loc.File]
		}
		fn := "unknown"
		if r := mod.RegionAt(loc); r != nil && r.Func != nil {
			fn = r.Func.Name
		}
		out = append(out, LineSample{
			File: file, Line: int64(loc.Line), Func: fn, Value: n,
		})
	}
	return out
}
