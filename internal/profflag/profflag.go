// Package profflag wires runtime/pprof into a command's flag set: a
// -cpuprofile flag that brackets the whole run and a -memprofile flag that
// snapshots the heap on exit. Commands call Register before flag.Parse,
// then Start after it and defer Stop — which requires main to be shaped as
// `os.Exit(run())` so the deferred Stop runs before the process exits.
package profflag

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the two profile destinations and the open CPU-profile file.
type Flags struct {
	cpu *string
	mem *string
	f   *os.File
}

// Register installs -cpuprofile and -memprofile on the default flag set.
func Register() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given.
func (p *Flags) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.f = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if requested. It is
// safe to call when Start did nothing. Errors are reported to stderr
// rather than returned: by the time Stop runs the command's exit code is
// already decided, and a failed profile write must not mask it.
func (p *Flags) Stop() {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		p.f = nil
	}
	if *p.mem == "" {
		return
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize only live objects in the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}
