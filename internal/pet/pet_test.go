package pet

import (
	"strings"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// buildCallTree constructs main -> {foo() in a loop, while-loop}, the
// shape of Figure 2.6.
func buildCallTree() *ir.Module {
	b := ir.NewBuilder("fig26")
	g := b.Global("g", ir.F64)
	foo := b.Func("foo")
	foo.Set(g, ir.Add(ir.V(g), ir.CF(1)))
	fooF := foo.Done()
	fb := b.Func("main")
	k := fb.Local("k", ir.I64)
	fb.For("i", ir.CI(0), ir.CI(5), ir.CI(1), func(i *ir.Var) {
		fb.Set(g, ir.V(i)) // Block 1
		fb.Call(fooF)
		fb.Set(g, ir.Add(ir.V(g), ir.CF(2))) // Block 2
	})
	fb.Set(g, ir.CF(0)) // Block 3
	fb.Set(k, ir.CI(3))
	fb.While(ir.Gt(ir.V(k), ir.CI(0)), func() {
		fb.Set(k, ir.Sub(ir.V(k), ir.CI(1))) // Block 4
	})
	return b.Build(fb.Done())
}

func buildTree(t *testing.T, m *ir.Module) (*Tree, int64) {
	t.Helper()
	pb := NewBuilder()
	in := interp.New(m, pb)
	instrs := in.Run()
	return pb.Tree(instrs), instrs
}

func TestPETShape(t *testing.T) {
	m := buildCallTree()
	tree, instrs := buildTree(t, m)
	if tree.TotalInstrs != instrs || instrs == 0 {
		t.Fatalf("total instrs = %d vs %d", tree.TotalInstrs, instrs)
	}
	// Root -> main; main -> for-loop, while-loop; for-loop -> foo.
	var mainNode *Node
	for _, c := range tree.Root.Children {
		if c.Kind == NFunc && c.Func != nil && c.Func.Name == "main" {
			mainNode = c
		}
	}
	if mainNode == nil {
		t.Fatal("no main node under root")
	}
	var loops, funcs int
	for _, c := range mainNode.Children {
		switch c.Kind {
		case NLoop:
			loops++
		case NFunc:
			funcs++
		}
	}
	if loops != 2 {
		t.Fatalf("main has %d loop children, want 2", loops)
	}
	// foo is called from inside the for loop: it must appear under the
	// loop node, connected by a "calling" edge.
	var fooNode *Node
	for _, c := range mainNode.Children {
		if c.Kind != NLoop {
			continue
		}
		for _, cc := range c.Children {
			if cc.Kind == NFunc && cc.Func.Name == "foo" {
				fooNode = cc
			}
		}
	}
	if fooNode == nil {
		t.Fatal("foo not under the for-loop node")
	}
	if fooNode.EdgeIn != ECall {
		t.Error("foo's incoming edge is not a calling edge")
	}
	if fooNode.Entries != 5 {
		t.Errorf("foo entries = %d, want 5", fooNode.Entries)
	}
}

func TestPETIterationCounters(t *testing.T) {
	m := buildCallTree()
	tree, _ := buildTree(t, m)
	for _, n := range tree.Nodes {
		if n.Kind != NLoop {
			continue
		}
		switch {
		case n.Region.Stmt != nil && n.Region.Start.Line < 10:
			// the for loop: 5 iterations
			if n.Iters != 5 && n.Iters != 3 {
				t.Errorf("loop %v iters = %d, want 5 or 3", n.Loc, n.Iters)
			}
		}
	}
}

func TestPETMergesDynamicInstances(t *testing.T) {
	// A function called from two different call paths appears once per
	// parent, with entries merged per static construct.
	prog := workloads.MustBuild("fib", 1)
	tree, _ := buildTree(t, prog.M)
	// fib recurses: the fib node under fib must be a single merged child.
	var count func(n *Node, name string) int
	count = func(n *Node, name string) int {
		c := 0
		for _, ch := range n.Children {
			if ch.Kind == NFunc && ch.Func != nil && ch.Func.Name == name {
				c++
			}
			c += count(ch, name)
		}
		return c
	}
	// fib appears once under main and (as merged recursion) a bounded
	// number of times — not once per dynamic call.
	if n := count(tree.Root, "fib"); n > 40 {
		t.Fatalf("fib nodes = %d; dynamic instances not merged", n)
	}
}

func TestCoverage(t *testing.T) {
	m := buildCallTree()
	tree, _ := buildTree(t, m)
	for _, n := range tree.Nodes {
		cov := tree.Coverage(n)
		if cov < 0 || cov > 1 {
			t.Errorf("coverage %f outside [0,1] for node %v", cov, n.Loc)
		}
	}
	if tree.Coverage(tree.Root) != 1 {
		t.Errorf("root coverage = %f, want 1", tree.Coverage(tree.Root))
	}
}

func TestAttachDeps(t *testing.T) {
	m := buildCallTree()
	tree, _ := buildTree(t, m)
	var anyLoop *Node
	for _, n := range tree.Nodes {
		if n.Kind == NLoop {
			anyLoop = n
			break
		}
	}
	sinks := map[ir.Loc]int64{
		{File: anyLoop.Region.Start.File, Line: anyLoop.Region.Start.Line + 1}: 3,
	}
	tree.AttachDeps(sinks)
	if anyLoop.Deps == 0 {
		t.Fatal("dependences not attached to enclosing loop node")
	}
}

func TestRender(t *testing.T) {
	m := buildCallTree()
	tree, _ := buildTree(t, m)
	out := tree.Render()
	for _, frag := range []string{"func main", "loop", "iters=", "func foo"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestMultiDispatch(t *testing.T) {
	m := buildCallTree()
	a, b := NewBuilder(), NewBuilder()
	in := interp.New(m, &interp.MultiTracer{Tracers: []interp.Tracer{a, b}})
	instrs := in.Run()
	ta, tb := a.Tree(instrs), b.Tree(instrs)
	if len(ta.Nodes) != len(tb.Nodes) {
		t.Fatalf("multi-dispatched builders diverged: %d vs %d nodes",
			len(ta.Nodes), len(tb.Nodes))
	}
}
