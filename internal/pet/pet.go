// Package pet builds the Program Execution Tree of Section 2.3.6: a tree
// with function, loop, and block nodes connected by "calling" and
// "containing" edges, each node annotated with metrics (executed IR
// statements, loop iteration counts, dependence counts) used for parallel
// pattern detection and for ranking parallelization opportunities.
package pet

import (
	"fmt"
	"sort"
	"strings"

	"discopop/internal/interp"
	"discopop/internal/ir"
)

// NodeKind classifies PET nodes.
type NodeKind uint8

const (
	// NFunc is a function node (incoming edges are "calling" edges).
	NFunc NodeKind = iota
	// NLoop is a loop node with an iteration counter.
	NLoop
	// NBlock is a leaf block of code without control-flow constructs.
	NBlock
)

func (k NodeKind) String() string {
	switch k {
	case NFunc:
		return "func"
	case NLoop:
		return "loop"
	default:
		return "block"
	}
}

// EdgeKind classifies PET edges.
type EdgeKind uint8

const (
	// ECall is a "calling" edge (function invokes function).
	ECall EdgeKind = iota
	// EContain is a "containing" edge (region contains region/block).
	EContain
)

// Node is one PET node. A node represents the aggregation of all dynamic
// instances of the same static construct within the same parent, the same
// way the profiler merges dependences of multiple region instances.
type Node struct {
	ID       int
	Kind     NodeKind
	Func     *ir.Func   // for NFunc
	Region   *ir.Region // for NLoop
	Loc      ir.Loc
	Parent   *Node
	EdgeIn   EdgeKind
	Children []*Node

	// Metrics.
	Entries int64 // times this construct was entered
	Iters   int64 // loop iterations (NLoop)
	Instrs  int64 // inclusive executed IR statements
	Deps    int64 // dependences whose sink lies in this construct's span
}

// Tree is a complete PET.
type Tree struct {
	Root  *Node
	Nodes []*Node
	// TotalInstrs is the total number of executed IR statements, the
	// denominator of instruction coverage (Section 4.3.1).
	TotalInstrs int64
}

// Coverage returns the fraction of all executed instructions spent in n
// (inclusive).
func (t *Tree) Coverage(n *Node) float64 {
	if t.TotalInstrs == 0 {
		return 0
	}
	return float64(n.Instrs) / float64(t.TotalInstrs)
}

// NodeForRegion returns the first PET node for the given region, or nil.
func (t *Tree) NodeForRegion(r *ir.Region) *Node {
	for _, n := range t.Nodes {
		if n.Region == r {
			return n
		}
	}
	return nil
}

// Builder is an interp.Tracer that constructs the PET during execution.
type Builder struct {
	interp.BaseTracer
	tree  *Tree
	stack [][]*Node // per-thread construct stack
}

// NewBuilder returns a PET-building tracer.
func NewBuilder() *Builder {
	root := &Node{ID: 0, Kind: NFunc}
	b := &Builder{tree: &Tree{Root: root, Nodes: []*Node{root}}}
	b.stack = make([][]*Node, interp.MaxThreads)
	for i := range b.stack {
		b.stack[i] = []*Node{root}
	}
	return b
}

func (b *Builder) top(tid int32) *Node { s := b.stack[tid]; return s[len(s)-1] }

// child finds or creates the child of parent for the given static
// construct, merging repeated dynamic instances.
func (b *Builder) child(parent *Node, kind NodeKind, f *ir.Func, r *ir.Region,
	loc ir.Loc, ek EdgeKind) *Node {
	for _, c := range parent.Children {
		if c.Kind == kind && c.Func == f && c.Region == r {
			return c
		}
	}
	n := &Node{ID: len(b.tree.Nodes), Kind: kind, Func: f, Region: r, Loc: loc,
		Parent: parent, EdgeIn: ek}
	parent.Children = append(parent.Children, n)
	b.tree.Nodes = append(b.tree.Nodes, n)
	return n
}

// EnterFunc implements interp.Tracer.
func (b *Builder) EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	n := b.child(b.top(tid), NFunc, f, nil, f.Loc, ECall)
	n.Entries++
	b.stack[tid] = append(b.stack[tid], n)
}

// ExitFunc implements interp.Tracer.
func (b *Builder) ExitFunc(f *ir.Func, instrs int64, tid int32) {
	n := b.top(tid)
	n.Instrs += instrs
	b.stack[tid] = b.stack[tid][:len(b.stack[tid])-1]
}

// EnterRegion implements interp.Tracer.
func (b *Builder) EnterRegion(r *ir.Region, tid int32) {
	if r.Kind != ir.RLoop {
		return // branches contribute to their parent block
	}
	n := b.child(b.top(tid), NLoop, nil, r, r.Start, EContain)
	n.Entries++
	b.stack[tid] = append(b.stack[tid], n)
}

// ExitRegion implements interp.Tracer.
func (b *Builder) ExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	if r.Kind != ir.RLoop {
		return
	}
	n := b.top(tid)
	n.Iters += iters
	n.Instrs += instrs
	b.stack[tid] = b.stack[tid][:len(b.stack[tid])-1]
}

// ProcessBatch implements interp.BatchTracer: the builder consumes only
// function and loop-region boundaries, so a batch reduces to a switch over
// four event kinds with every access skipped at one comparison each —
// keeping the PET in pipelines that run the VM's batched traced path.
func (b *Builder) ProcessBatch(m *ir.Module, evs []interp.Ev) {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind() {
		case interp.EvEnterFunc:
			b.EnterFunc(m.Funcs[ev.A], ev.Loc, ev.Tid())
		case interp.EvExitFunc:
			b.ExitFunc(m.Funcs[ev.A], int64(ev.Addr), ev.Tid())
		case interp.EvEnterRegion:
			b.EnterRegion(m.Regions[ev.A], ev.Tid())
		case interp.EvExitRegion:
			b.ExitRegion(m.Regions[ev.A], int64(ev.Addr), interp.UnpackI64(ev.Loc), ev.Tid())
		}
	}
}

// Tree finalizes and returns the PET.
func (b *Builder) Tree(totalInstrs int64) *Tree {
	b.tree.TotalInstrs = totalInstrs
	b.tree.Root.Instrs = totalInstrs
	return b.tree
}

// AttachDeps annotates each node with the number of merged dependences
// whose sink line falls within the node's static span, producing the
// "comprehensive tree of dependences" used for pattern detection.
func (t *Tree) AttachDeps(sinks map[ir.Loc]int64) {
	for _, n := range t.Nodes {
		var start, end ir.Loc
		switch {
		case n.Kind == NLoop:
			start, end = n.Region.Start, n.Region.End
		case n.Kind == NFunc && n.Func != nil:
			start, end = n.Func.Loc, n.Func.EndLoc
		default:
			continue
		}
		for loc, c := range sinks {
			if loc.File == start.File && loc.Line >= start.Line && loc.Line <= end.Line {
				n.Deps += c
			}
		}
	}
}

// Render pretty-prints the PET, one node per line, as in Figure 2.6.
func (t *Tree) Render() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		ind := strings.Repeat("  ", depth)
		switch n.Kind {
		case NFunc:
			name := "<root>"
			if n.Func != nil {
				name = n.Func.Name
			}
			fmt.Fprintf(&sb, "%s%s %s instrs=%d entries=%d deps=%d\n",
				ind, n.Kind, name, n.Instrs, n.Entries, n.Deps)
		case NLoop:
			fmt.Fprintf(&sb, "%sloop %s iters=%d instrs=%d entries=%d deps=%d\n",
				ind, n.Loc, n.Iters, n.Instrs, n.Entries, n.Deps)
		}
		children := append([]*Node{}, n.Children...)
		sort.Slice(children, func(i, j int) bool { return children[i].ID < children[j].ID })
		for _, c := range children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
