package cdep

import (
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// buildBranchy constructs a function with an if-else, a plain if, and a
// loop — the three shapes of Figures 1.1 and 3.1.
func buildBranchy() *ir.Module {
	b := ir.NewBuilder("branchy")
	fb := b.Func("main")
	a := fb.Local("a", ir.I64)
	c := fb.Local("c", ir.I64)
	fb.Set(a, ir.CI(1))
	fb.IfElse(ir.Gt(ir.V(a), ir.CI(0)), func() {
		fb.Set(c, ir.CI(1))
	}, func() {
		fb.Set(c, ir.CI(2))
	})
	fb.If(ir.Gt(ir.V(c), ir.CI(0)), func() {
		fb.Set(a, ir.CI(3))
	})
	fb.For("i", ir.CI(0), ir.CI(4), ir.CI(1), func(i *ir.Var) {
		fb.Set(a, ir.Add(ir.V(a), ir.V(i)))
	})
	fb.Set(c, ir.CI(9))
	return b.Build(fb.Done())
}

func TestPostDomExitDominatesAll(t *testing.T) {
	m := buildBranchy()
	cfg := ir.BuildCFG(m.Main)
	pd := ComputePostDom(cfg)
	for _, b := range cfg.Blocks {
		if !pd.PostDominates(cfg.Exit.ID, b.ID) {
			t.Errorf("exit does not post-dominate block %d", b.ID)
		}
	}
}

func TestReconvergencePoints(t *testing.T) {
	m := buildBranchy()
	cfg := ir.BuildCFG(m.Main)
	recon := Reconvergence(cfg)
	// Every branching block (if heads, loop heads) must have a
	// re-convergence point, and it must not be a branch alternative.
	branches := 0
	for _, b := range cfg.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		branches++
		r, ok := recon[b]
		if !ok {
			t.Errorf("branch block %d has no re-convergence point", b.ID)
			continue
		}
		for _, s := range b.Succs {
			if s == r && b.Kind == ir.BBBranch {
				// For a one-armed if, the join IS a direct successor —
				// allowed; for if-else both arms are blocks != join.
				continue
			}
		}
	}
	if branches < 3 {
		t.Fatalf("expected >=3 branching blocks (if-else, if, loop), got %d", branches)
	}
}

// TestLookaheadMatchesPostDom cross-checks the dynamic look-ahead
// technique against the static post-dominator computation on every
// function of every bundled workload — the two methods of Section 3.2.2
// must agree.
func TestLookaheadMatchesPostDom(t *testing.T) {
	for _, suite := range []string{"NAS", "Starbench", "BOTS", "textbook", "MPMD"} {
		for _, name := range workloads.Names(suite) {
			prog := workloads.MustBuild(name, 1)
			for _, f := range prog.M.Funcs {
				if f.Body == nil {
					continue
				}
				cfg := ir.BuildCFG(f)
				recon := Reconvergence(cfg)
				for _, b := range cfg.Blocks {
					if len(b.Succs) < 2 {
						continue
					}
					la := LookaheadReconvergence(cfg, b)
					pd := recon[b]
					if la == nil || pd == nil {
						t.Errorf("%s/%s block %d: lookahead=%v postdom=%v",
							name, f.Name, b.ID, la, pd)
						continue
					}
					// The lookahead finds a common reachable block; the
					// immediate post-dominator must be reachable from it
					// (the lookahead may stop earlier on a common block
					// that is not a post-dominator in rare shapes; both
					// must at least agree for structured code).
					if la != pd && !reachable(la, pd) {
						t.Errorf("%s/%s block %d: lookahead %d vs postdom %d (unrelated)",
							name, f.Name, b.ID, la.ID, pd.ID)
					}
				}
			}
		}
	}
}

func reachable(from, to *ir.BB) bool {
	seen := map[int]bool{}
	stack := []*ir.BB{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.ID] {
			continue
		}
		seen[b.ID] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestControlDeps(t *testing.T) {
	m := buildBranchy()
	cfg := ir.BuildCFG(m.Main)
	deps := ControlDeps(cfg)
	// The then/else blocks of the if-else must be control dependent on
	// the branch head.
	found := 0
	for b, c := range deps {
		if len(c.Succs) >= 2 {
			found++
		}
		_ = b
	}
	if found == 0 {
		t.Fatal("no control dependences found in branchy function")
	}
}

// TestRegionStack exercises the runtime control-region stack protocol of
// Section 3.2.2.
func TestRegionStack(t *testing.T) {
	var s Stack
	if _, ok := s.Top(); ok {
		t.Fatal("empty stack has a top")
	}
	s.Push(RegionEntry{Start: ir.Loc{File: 1, Line: 1}, Kind: ir.RLoop})
	s.Push(RegionEntry{Start: ir.Loc{File: 1, Line: 2}, Kind: ir.RBranch})
	if top, _ := s.Top(); top.Kind != ir.RBranch {
		t.Fatalf("top = %v", top)
	}
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	e := s.Pop()
	if e.Kind != ir.RBranch {
		t.Fatalf("pop = %v", e)
	}
	if top, _ := s.Top(); top.Kind != ir.RLoop {
		t.Fatalf("top after pop = %v", top)
	}
}

func TestCFGShape(t *testing.T) {
	m := buildBranchy()
	cfg := ir.BuildCFG(m.Main)
	if cfg.Entry == nil || cfg.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Fatal("exit block has successors")
	}
	// Every block except exit must reach exit.
	for _, b := range cfg.Blocks {
		if b != cfg.Exit && !reachable(b, cfg.Exit) {
			t.Errorf("block %d cannot reach exit", b.ID)
		}
	}
	// Preds must mirror succs.
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from preds", b.ID, s.ID)
			}
		}
	}
}
