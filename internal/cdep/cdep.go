// Package cdep implements the control-dependence analyses of Section 3.2.2:
// re-convergence points of branches and loops — the point where branch
// alternatives end and unconditional execution resumes — computed two ways.
// The static way uses post-dominators on the lowered CFG (available because
// we have the IR, like DiscoPoP's compiler-based pipeline). The dynamic way
// reproduces the paper's binary-level technique: a look-ahead that follows
// every branch alternative without executing it until the alternatives
// meet, plus a runtime stack of active control regions.
package cdep

import (
	"discopop/internal/ir"
)

// PostDom holds the post-dominator relation of one CFG.
type PostDom struct {
	CFG *ir.CFG
	// IDom[b] is the immediate post-dominator block ID of block b
	// (-1 for the exit block).
	IDom []int
}

// ComputePostDom computes immediate post-dominators with the classic
// iterative dataflow algorithm (Cooper-Harvey-Kennedy on the reverse CFG).
func ComputePostDom(cfg *ir.CFG) *PostDom {
	n := len(cfg.Blocks)
	// Reverse post-order of the reverse CFG (i.e., order from exit).
	order := make([]*ir.BB, 0, n)
	seen := make([]bool, n)
	var dfs func(b *ir.BB)
	dfs = func(b *ir.BB) {
		seen[b.ID] = true
		for _, p := range b.Preds {
			if !seen[p.ID] {
				dfs(p)
			}
		}
		order = append(order, b)
	}
	dfs(cfg.Exit)
	// order is post-order from exit over preds; reverse it.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, b := range order {
		pos[b.ID] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[cfg.Exit.ID] = cfg.Exit.ID
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == cfg.Exit {
				continue
			}
			newIdom := -1
			for _, s := range b.Succs {
				if idom[s.ID] == -1 && s != cfg.Exit {
					continue
				}
				if s == cfg.Exit || idom[s.ID] != -1 {
					if newIdom == -1 {
						newIdom = s.ID
					} else {
						newIdom = intersect(newIdom, s.ID)
					}
				}
			}
			if newIdom != -1 && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	idom[cfg.Exit.ID] = -1
	return &PostDom{CFG: cfg, IDom: idom}
}

// PostDominates reports whether block a post-dominates block b.
func (pd *PostDom) PostDominates(a, b int) bool {
	if a == b {
		return true
	}
	for x := pd.IDom[b]; x != -1; x = pd.IDom[x] {
		if x == a {
			return true
		}
		if x == pd.IDom[x] {
			break
		}
	}
	return false
}

// Reconvergence maps each branching block (if heads and loop heads) to its
// re-convergence point: the immediate post-dominator — the solid black
// circles of Figure 3.1.
func Reconvergence(cfg *ir.CFG) map[*ir.BB]*ir.BB {
	pd := ComputePostDom(cfg)
	out := map[*ir.BB]*ir.BB{}
	for _, b := range cfg.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		if id := pd.IDom[b.ID]; id >= 0 {
			out[b] = cfg.Blocks[id]
		}
	}
	return out
}

// LookaheadReconvergence reproduces the dynamic technique: starting at a
// branching block, it traverses all branch alternatives breadth-first
// without executing them — following jumps only — until a block reachable
// from every alternative is found. This mirrors the Valgrind-based
// implementation that disassembles the alternatives of each encountered
// branch.
func LookaheadReconvergence(cfg *ir.CFG, branch *ir.BB) *ir.BB {
	if len(branch.Succs) < 2 {
		return nil
	}
	// Reachable sets from each alternative, expanded in lock-step.
	reach := make([]map[int]bool, len(branch.Succs))
	frontiers := make([][]*ir.BB, len(branch.Succs))
	for i, s := range branch.Succs {
		reach[i] = map[int]bool{s.ID: true}
		frontiers[i] = []*ir.BB{s}
	}
	inAll := func(id int) bool {
		for _, r := range reach {
			if !r[id] {
				return false
			}
		}
		return true
	}
	for step := 0; step < 4*len(cfg.Blocks)+4; step++ {
		// Check for a common block, preferring the earliest block ID for
		// determinism.
		best := -1
		for id := range reach[0] {
			if inAll(id) && (best == -1 || id < best) {
				best = id
			}
		}
		if best != -1 {
			return cfg.Blocks[best]
		}
		advanced := false
		for i := range frontiers {
			var next []*ir.BB
			for _, b := range frontiers[i] {
				for _, s := range b.Succs {
					if !reach[i][s.ID] {
						reach[i][s.ID] = true
						next = append(next, s)
						advanced = true
					}
				}
			}
			frontiers[i] = next
		}
		if !advanced {
			break
		}
	}
	// Fall back: exit post-dominates everything.
	if inAll(cfg.Exit.ID) {
		return cfg.Exit
	}
	return nil
}

// RegionEntry is one entry of the runtime control-region stack: the
// <start, type, end> triple of Section 3.2.2.
type RegionEntry struct {
	Start ir.Loc
	Kind  ir.RegionKind
	End   ir.Loc
}

// Stack is the runtime stack of active control regions maintained during
// dynamic control-dependence analysis.
type Stack struct {
	entries []RegionEntry
}

// Push records entry of a control region.
func (s *Stack) Push(e RegionEntry) { s.entries = append(s.entries, e) }

// Pop removes the topmost region.
func (s *Stack) Pop() RegionEntry {
	e := s.entries[len(s.entries)-1]
	s.entries = s.entries[:len(s.entries)-1]
	return e
}

// Top returns the current innermost region and whether one exists.
func (s *Stack) Top() (RegionEntry, bool) {
	if len(s.entries) == 0 {
		return RegionEntry{}, false
	}
	return s.entries[len(s.entries)-1], true
}

// Depth returns the stack depth.
func (s *Stack) Depth() int { return len(s.entries) }

// ControlDeps returns, for every statement-bearing block, the branching
// block it is control dependent on (if any): b is control dependent on c
// if c branches and b does not post-dominate c but lies on some path from
// c before the re-convergence point.
func ControlDeps(cfg *ir.CFG) map[*ir.BB]*ir.BB {
	pd := ComputePostDom(cfg)
	out := map[*ir.BB]*ir.BB{}
	for _, c := range cfg.Blocks {
		if len(c.Succs) < 2 {
			continue
		}
		re := pd.IDom[c.ID]
		// Walk blocks reachable from each alternative up to the
		// re-convergence point; those not post-dominating c depend on c.
		var visit func(b *ir.BB)
		seen := map[int]bool{}
		visit = func(b *ir.BB) {
			if b.ID == re || seen[b.ID] {
				return
			}
			seen[b.ID] = true
			if !pd.PostDominates(b.ID, c.ID) {
				if _, dup := out[b]; !dup {
					out[b] = c
				}
			}
			for _, s := range b.Succs {
				visit(s)
			}
		}
		for _, s := range c.Succs {
			visit(s)
		}
	}
	return out
}
