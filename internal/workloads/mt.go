package workloads

import "discopop/internal/ir"

// Multi-threaded (pthread-like) target programs for Section 2.3.4 and the
// Figure 2.10/2.11 experiments: four worker threads split a data-parallel
// kernel, sharing input arrays and protecting a shared accumulator with an
// explicit lock — the synchronization discipline the profiler requires.

func init() {
	register("md5-mt", "Starbench-MT", mtKernel("md5-mt", 2000, 3))
	register("kmeans-mt", "Starbench-MT", mtKernel("kmeans-mt", 1600, 2))
	register("c-ray-mt", "Starbench-MT", mtKernel("c-ray-mt", 1200, 4))
	register("rgbyuv-mt", "Starbench-MT", mtKernel("rgbyuv-mt", 2400, 1))
	register("rotate-mt", "Starbench-MT", mtKernel("rotate-mt", 2000, 1))
	register("rot-cc-mt", "Starbench-MT", mtKernel("rot-cc-mt", 1600, 2))
	register("streamcluster-mt", "Starbench-MT", mtKernel("streamcluster-mt", 1200, 2))
	register("bodytrack-mt", "Starbench-MT", mtKernel("bodytrack-mt", 1000, 3))
}

// mtKernel builds a four-thread data-parallel program: each worker
// processes elems/4 elements with `rounds` compute rounds per element,
// accumulating a partial sum, then merges it into a shared total inside a
// lock region.
func mtKernel(name string, elems, rounds int) BuilderFunc {
	const threads = 4
	return func(scale int) *Program {
		n := sc(scale, elems)
		per := n / threads
		t := Truth{SeqFraction: 0.02}
		b := ir.NewBuilder(name)
		in := b.GlobalArray("in", ir.F64, n)
		out := b.GlobalArray("out", ir.F64, n)
		total := b.Global("total", ir.F64)

		worker := b.Func("worker")
		lo := worker.Param("lo", ir.F64)
		hi := worker.Param("hi", ir.F64)
		local := worker.Local("local", ir.F64)
		v := worker.Local("v", ir.F64)
		worker.Set(local, ir.CF(0))
		loop := worker.For("i", ir.V(lo), ir.V(hi), ir.CI(1), func(i *ir.Var) {
			worker.Set(v, ir.At(in, ir.V(i)))
			for r := 0; r < rounds; r++ {
				worker.Set(v, ir.Add(ir.Mul(ir.V(v), ir.CF(0.99)), ir.CF(0.013)))
			}
			worker.SetAt(out, ir.V(i), ir.V(v))
			worker.Set(local, ir.Add(ir.V(local), ir.V(v)))
		})
		t.DOALL = append(t.DOALL, loop)
		// Merge under the shared lock: the cross-thread dependence the
		// profiler must order correctly (Figure 2.4c).
		worker.Locked(1, func() {
			worker.Set(total, ir.Add(ir.V(total), ir.V(local)))
		})
		workerFn := worker.Done()

		fb := b.Func("main")
		fillRand(fb, in, n, &t)
		fb.Set(total, ir.CF(0))
		for w := 0; w < threads; w++ {
			fb.Spawn(workerFn, ir.CI(int64(w*per)), ir.CI(int64((w+1)*per)))
		}
		fb.Sync()
		t.Hot = loop
		mainFn := fb.Done()
		return &Program{M: b.Build(mainFn), Truth: t}
	}
}
