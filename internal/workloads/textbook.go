package workloads

import "discopop/internal/ir"

// Textbook programs (Tables 4.2/4.3) and the gzip/bzip2-like block
// compressors of Table 4.5.

func init() {
	register("histogram", "textbook", buildHistogram)
	register("mandelbrot", "textbook", buildMandelbrot)
	register("matmul", "textbook", buildMatmul)
	register("montecarlo-pi", "textbook", buildMonteCarloPi)
	register("nbody", "textbook", buildNBody)
	register("prefix-sum", "textbook", buildPrefixSum)
	register("gzip", "compressor", buildGzip)
	register("bzip2", "compressor", buildBzip2)
}

// buildHistogram is the histogram-visualization program of Table 4.3: a
// fill loop, a binning loop with indirect reduction writes, and a scaling
// loop for display.
func buildHistogram(scale int) *Program {
	n := sc(scale, 3000)
	bins := 32
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("histogram")
	data := b.GlobalArray("data", ir.F64, n)
	hist := b.GlobalArray("hist", ir.F64, bins)
	maxv := b.Global("maxcount", ir.F64)
	fb := b.Func("main")
	bin := fb.Local("bin", ir.I64)
	fillRand(fb, data, n, &t)
	fb.For("z", ir.CI(0), ir.CI(int64(bins)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(hist, ir.V(i), ir.CF(0))
	})
	count := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.Set(bin, ir.Floor(ir.Mul(ir.At(data, ir.V(i)), ir.CI(int64(bins)))))
		fb.SetAt(hist, ir.V(bin), ir.Add(ir.At(hist, ir.V(bin)), ir.CF(1)))
	})
	t.DOALL = append(t.DOALL, count) // histogram reduction
	t.Hot = count
	fb.Set(maxv, ir.CF(0))
	maxLoop := fb.For("j", ir.CI(0), ir.CI(int64(bins)), ir.CI(1), func(j *ir.Var) {
		fb.Set(maxv, ir.Max(ir.V(maxv), ir.At(hist, ir.V(j))))
	})
	t.DOALL = append(t.DOALL, maxLoop) // max reduction
	norm := fb.For("j", ir.CI(0), ir.CI(int64(bins)), ir.CI(1), func(j *ir.Var) {
		fb.SetAt(hist, ir.V(j), ir.Div(ir.At(hist, ir.V(j)), ir.Add(ir.V(maxv), ir.CF(1e-9))))
	})
	t.DOALL = append(t.DOALL, norm)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildMandelbrot iterates the complex map per pixel — independent pixels
// with an inner sequential escape-time loop.
func buildMandelbrot(scale int) *Program {
	px := sc(scale, 500)
	maxIter := 24
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("mandelbrot")
	out := b.GlobalArray("out", ir.F64, px)
	fb := b.Func("main")
	zr := fb.Local("zr", ir.F64)
	zi := fb.Local("zi", ir.F64)
	tr := fb.Local("tr", ir.F64)
	cnt := fb.Local("cnt", ir.F64)
	hot := fb.For("p", ir.CI(0), ir.CI(int64(px)), ir.CI(1), func(p *ir.Var) {
		fb.Set(zr, ir.CF(0))
		fb.Set(zi, ir.CF(0))
		fb.Set(cnt, ir.CF(0))
		esc := fb.For("it", ir.CI(0), ir.CI(int64(maxIter)), ir.CI(1), func(it *ir.Var) {
			fb.If(ir.Lt(ir.Add(ir.Mul(ir.V(zr), ir.V(zr)), ir.Mul(ir.V(zi), ir.V(zi))),
				ir.CF(4)), func() {
				fb.Set(tr, ir.Sub(ir.Mul(ir.V(zr), ir.V(zr)), ir.Mul(ir.V(zi), ir.V(zi))))
				fb.Set(zi, ir.Add(ir.Mul(ir.CF(2), ir.Mul(ir.V(zr), ir.V(zi))),
					ir.Div(ir.V(p), ir.CI(int64(px)))))
				fb.Set(zr, ir.Add(ir.V(tr), ir.CF(-0.6)))
				fb.Set(cnt, ir.Add(ir.V(cnt), ir.CF(1)))
			})
		})
		t.Seq = append(t.Seq, esc)
		fb.SetAt(out, ir.V(p), ir.V(cnt))
	})
	t.DOALL = append(t.DOALL, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildMatmul is the dense triple loop: DOALL over rows and columns with
// an inner dot-product reduction.
func buildMatmul(scale int) *Program {
	n := 18 + 2*scale
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("matmul")
	a := b.GlobalArray("A", ir.F64, n*n)
	bm := b.GlobalArray("B", ir.F64, n*n)
	cm := b.GlobalArray("C", ir.F64, n*n)
	fb := b.Func("main")
	s := fb.Local("s", ir.F64)
	fillRand(fb, a, n*n, &t)
	fillRand(fb, bm, n*n, &t)
	rows := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		cols := fb.For("j", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(j *ir.Var) {
			fb.Set(s, ir.CF(0))
			dot := fb.For("k", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(k *ir.Var) {
				fb.Set(s, ir.Add(ir.V(s), ir.Mul(
					ir.At(a, ir.Add(ir.Mul(ir.V(i), ir.CI(int64(n))), ir.V(k))),
					ir.At(bm, ir.Add(ir.Mul(ir.V(k), ir.CI(int64(n))), ir.V(j))))))
			})
			t.DOALL = append(t.DOALL, dot)
			fb.SetAt(cm, ir.Add(ir.Mul(ir.V(i), ir.CI(int64(n))), ir.V(j)), ir.V(s))
		})
		t.DOALL = append(t.DOALL, cols)
	})
	t.DOALL = append(t.DOALL, rows)
	t.Hot = rows
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildMonteCarloPi samples points and counts hits — a pure reduction loop.
func buildMonteCarloPi(scale int) *Program {
	n := sc(scale, 6000)
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("montecarlo-pi")
	hits := b.Global("hits", ir.F64)
	pi := b.Global("pi", ir.F64)
	fb := b.Func("main")
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	fb.Set(hits, ir.CF(0))
	hot := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.Set(x, ir.Rnd())
		fb.Set(y, ir.Rnd())
		fb.If(ir.Le(ir.Add(ir.Mul(ir.V(x), ir.V(x)), ir.Mul(ir.V(y), ir.V(y))), ir.CF(1)), func() {
			fb.Set(hits, ir.Add(ir.V(hits), ir.CF(1)))
		})
	})
	t.DOALL = append(t.DOALL, hot)
	t.Hot = hot
	fb.Set(pi, ir.Div(ir.Mul(ir.CF(4), ir.V(hits)), ir.CI(int64(n))))
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildNBody computes pairwise forces (DOALL over bodies with an inner
// reduction) and integrates positions (DOALL).
func buildNBody(scale int) *Program {
	n := sc(scale, 80)
	steps := 3
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("nbody")
	pos := b.GlobalArray("pos", ir.F64, n)
	vel := b.GlobalArray("vel", ir.F64, n)
	force := b.GlobalArray("force", ir.F64, n)
	fb := b.Func("main")
	f := fb.Local("f", ir.F64)
	d := fb.Local("d", ir.F64)
	fillRand(fb, pos, n, &t)
	fillLinear(fb, vel, n, 0, 0, &t)
	stepLoop := fb.For("s", ir.CI(0), ir.CI(int64(steps)), ir.CI(1), func(sv *ir.Var) {
		forces := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.Set(f, ir.CF(0))
			pair := fb.For("j", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(j *ir.Var) {
				fb.Set(d, ir.Sub(ir.At(pos, ir.V(j)), ir.At(pos, ir.V(i))))
				fb.Set(f, ir.Add(ir.V(f), ir.Div(ir.V(d),
					ir.Add(ir.Mul(ir.V(d), ir.V(d)), ir.CF(0.01)))))
			})
			t.DOALL = append(t.DOALL, pair)
			fb.SetAt(force, ir.V(i), ir.V(f))
		})
		t.DOALL = append(t.DOALL, forces)
		if t.Hot == nil {
			t.Hot = forces
		}
		integ := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(vel, ir.V(i), ir.Add(ir.At(vel, ir.V(i)),
				ir.Mul(ir.CF(0.01), ir.At(force, ir.V(i)))))
			fb.SetAt(pos, ir.V(i), ir.Add(ir.At(pos, ir.V(i)),
				ir.Mul(ir.CF(0.01), ir.At(vel, ir.V(i)))))
		})
		t.DOALL = append(t.DOALL, integ)
	})
	t.Seq = append(t.Seq, stepLoop)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildPrefixSum is the inherently sequential textbook counterexample.
func buildPrefixSum(scale int) *Program {
	n := sc(scale, 4000)
	t := Truth{SeqFraction: 0.95}
	b := ir.NewBuilder("prefix-sum")
	a := b.GlobalArray("a", ir.F64, n)
	fb := b.Func("main")
	fillRand(fb, a, n, &t)
	hot := fb.For("i", ir.CI(1), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(a, ir.V(i), ir.Add(ir.At(a, ir.V(i)), ir.At(a, ir.Sub(ir.V(i), ir.CI(1)))))
	})
	t.Seq = append(t.Seq, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// blockCompressor models gzip/bzip2 (Table 4.5): a block loop in which
// reading advances the input cursor (carried), per-block compression is
// heavy and independent, and output writing is ordered. The key suggestion
// — compress blocks in parallel, as pigz/pbzip2 do — appears as DOACROSS
// on the block loop with the compression CUs in the parallel stage.
func blockCompressor(name string, blocks, blockWork int, perBlockLoops int) BuilderFunc {
	return func(scale int) *Program {
		nb := sc(scale, blocks)
		t := Truth{SeqFraction: 0.1}
		b := ir.NewBuilder(name)
		in := b.GlobalArray("input", ir.F64, nb*blockWork)
		dict := b.GlobalArray("dict", ir.F64, 64)
		out := b.GlobalArray("output", ir.F64, nb)
		cursor := b.Global("cursor", ir.F64)
		outpos := b.Global("outpos", ir.F64)

		fb := b.Func("main")
		chk := fb.Local("chk", ir.F64)
		fillRand(fb, in, nb*blockWork, &t)
		fb.Set(cursor, ir.CF(0))
		fb.Set(outpos, ir.CF(0))
		blockLoop := fb.For("blk", ir.CI(0), ir.CI(int64(nb)), ir.CI(1), func(blk *ir.Var) {
			// Read: cursor advance (carried stage).
			fb.Set(chk, ir.At(in, ir.Mod(ir.V(cursor), ir.CI(int64(nb*blockWork)))))
			fb.Set(cursor, ir.Add(ir.V(cursor), ir.CI(int64(blockWork))))
			// Compress: per-block dictionary matching, independent across
			// blocks (each block uses its own window).
			for l := 0; l < perBlockLoops; l++ {
				match := fb.For("w", ir.CI(0), ir.CI(int64(blockWork)), ir.CI(1), func(w *ir.Var) {
					idx := ir.Add(ir.Mul(ir.V(blk), ir.CI(int64(blockWork))), ir.V(w))
					fb.SetAt(dict, ir.Mod(ir.V(w), ir.CI(64)),
						ir.Add(ir.At(in, idx), ir.Mul(ir.V(chk), ir.CF(0.001))))
					fb.Set(chk, ir.Add(ir.V(chk), ir.At(dict, ir.Mod(ir.V(w), ir.CI(64)))))
				})
				t.Seq = append(t.Seq, match)
			}
			// Write: ordered output (carried stage).
			fb.SetAt(out, ir.V(blk), ir.V(chk))
			fb.Set(outpos, ir.Add(ir.V(outpos), ir.CF(1)))
		})
		t.DOACROSS = append(t.DOACROSS, blockLoop)
		t.Hot = blockLoop
		mainFn := fb.Done()
		return &Program{M: b.Build(mainFn), Truth: t}
	}
}

var (
	buildGzip  = blockCompressor("gzip", 24, 48, 1)
	buildBzip2 = blockCompressor("bzip2", 16, 64, 2)
)
