package workloads

import "discopop/internal/ir"

// Starbench-like programs: image processing, information security, machine
// learning, and media decoding, mirroring the suite used throughout
// Chapters 2 and 4.

func init() {
	register("c-ray", "Starbench", buildCRay)
	register("kmeans", "Starbench", buildKMeans)
	register("md5", "Starbench", buildMD5)
	register("ray-rot", "Starbench", buildRayRot)
	register("rgbyuv", "Starbench", buildRGBYUV)
	register("rotate", "Starbench", buildRotate)
	register("rot-cc", "Starbench", buildRotCC)
	register("streamcluster", "Starbench", buildStreamcluster)
	register("tinyjpeg", "Starbench", buildTinyJPEG)
	register("bodytrack", "Starbench", buildBodytrack)
	register("h264dec", "Starbench", buildH264)
}

// buildCRay models the ray tracer: every pixel is traced independently by
// a shading function — the canonical DOALL-over-pixels loop.
func buildCRay(scale int) *Program {
	w, h := 40, sc(scale, 40)
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("c-ray")

	shade := b.FuncRet("shade")
	px := shade.Param("px", ir.F64)
	py := shade.Param("py", ir.F64)
	d := shade.Local("d", ir.F64)
	hit := shade.Local("hit", ir.F64)
	shade.Set(hit, ir.CF(0))
	// Sphere intersection tests: a small inner loop over objects.
	shade.For("o", ir.CI(0), ir.CI(8), ir.CI(1), func(o *ir.Var) {
		shade.Set(d, ir.Add(ir.Mul(ir.V(px), ir.V(px)),
			ir.Add(ir.Mul(ir.V(py), ir.V(py)), ir.Mul(ir.V(o), ir.CF(0.1)))))
		shade.If(ir.Lt(ir.V(d), ir.CF(0.5)), func() {
			shade.Set(hit, ir.Add(ir.V(hit), ir.Div(ir.CF(1), ir.Add(ir.V(d), ir.CF(0.1)))))
		})
	})
	shade.Return(ir.V(hit))
	shadeFn := shade.Done()

	pixels := b.GlobalArray("pixels", ir.F64, w*h)
	fb := b.Func("main")
	fx := fb.Local("fx", ir.F64)
	fy := fb.Local("fy", ir.F64)
	rows := fb.For("y", ir.CI(0), ir.CI(int64(h)), ir.CI(1), func(y *ir.Var) {
		cols := fb.For("x", ir.CI(0), ir.CI(int64(w)), ir.CI(1), func(x *ir.Var) {
			fb.Set(fx, ir.Div(ir.V(x), ir.CI(int64(w))))
			fb.Set(fy, ir.Div(ir.V(y), ir.CI(int64(h))))
			fb.CallInto(ir.At(pixels, ir.Add(ir.Mul(ir.V(y), ir.CI(int64(w))), ir.V(x))),
				shadeFn, ir.V(fx), ir.V(fy))
		})
		t.DOALL = append(t.DOALL, cols)
	})
	t.DOALL = append(t.DOALL, rows)
	t.Hot = rows
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildKMeans models the clustering kernel: a sequential convergence loop
// around a DOALL assignment step and an indirect-reduction update step.
func buildKMeans(scale int) *Program {
	n := sc(scale, 600)
	k := 8
	iters := 5
	t := Truth{SeqFraction: 0.03}
	b := ir.NewBuilder("kmeans")
	pts := b.GlobalArray("points", ir.F64, n)
	asg := b.GlobalArray("assign", ir.I64, n)
	cent := b.GlobalArray("centroid", ir.F64, k)
	csum := b.GlobalArray("csum", ir.F64, k)
	ccnt := b.GlobalArray("ccnt", ir.F64, k)

	fb := b.Func("main")
	best := fb.Local("best", ir.F64)
	bi := fb.Local("besti", ir.I64)
	dist := fb.Local("dist", ir.F64)
	a := fb.Local("a", ir.I64)
	fillRand(fb, pts, n, &t)
	fillLinear(fb, cent, k, 0.125, 0.05, &t)
	conv := fb.For("it", ir.CI(0), ir.CI(int64(iters)), ir.CI(1), func(it *ir.Var) {
		// Assignment: DOALL over points, inner argmin over centroids.
		assign := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.Set(best, ir.CF(1e18))
			fb.Set(bi, ir.CI(0))
			fb.For("c", ir.CI(0), ir.CI(int64(k)), ir.CI(1), func(c *ir.Var) {
				fb.Set(dist, ir.Abs(ir.Sub(ir.At(pts, ir.V(i)), ir.At(cent, ir.V(c)))))
				fb.If(ir.Lt(ir.V(dist), ir.V(best)), func() {
					fb.Set(best, ir.V(dist))
					fb.Set(bi, ir.V(c))
				})
			})
			fb.SetAt(asg, ir.V(i), ir.V(bi))
		})
		t.DOALL = append(t.DOALL, assign)
		if t.Hot == nil {
			t.Hot = assign
		}
		// Update: histogram-style indirect reductions into csum/ccnt.
		fb.For("cz", ir.CI(0), ir.CI(int64(k)), ir.CI(1), func(c *ir.Var) {
			fb.SetAt(csum, ir.V(c), ir.CF(0))
			fb.SetAt(ccnt, ir.V(c), ir.CF(0))
		})
		upd := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.Set(a, ir.At(asg, ir.V(i)))
			fb.SetAt(csum, ir.V(a), ir.Add(ir.At(csum, ir.V(a)), ir.At(pts, ir.V(i))))
			fb.SetAt(ccnt, ir.V(a), ir.Add(ir.At(ccnt, ir.V(a)), ir.CF(1)))
		})
		t.DOALL = append(t.DOALL, upd)
		newc := fb.For("c", ir.CI(0), ir.CI(int64(k)), ir.CI(1), func(c *ir.Var) {
			fb.SetAt(cent, ir.V(c), ir.Div(ir.At(csum, ir.V(c)),
				ir.Add(ir.At(ccnt, ir.V(c)), ir.CF(1e-9))))
		})
		t.DOALL = append(t.DOALL, newc)
	})
	t.Seq = append(t.Seq, conv)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildMD5 models hashing many independent buffers: the outer loop is
// DOALL (one digest per buffer), while the inner mixing loop is a
// sequential chain through the state variables.
func buildMD5(scale int) *Program {
	bufs := sc(scale, 24)
	blockLen := 64
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("md5")
	data := b.GlobalArray("data", ir.F64, bufs*blockLen)
	digest := b.GlobalArray("digest", ir.F64, bufs)

	fb := b.Func("main")
	a := fb.Local("a", ir.F64)
	bb := fb.Local("b", ir.F64)
	c := fb.Local("c", ir.F64)
	d := fb.Local("d", ir.F64)
	tmp := fb.Local("tmp", ir.F64)
	fillRand(fb, data, bufs*blockLen, &t)
	outer := fb.For("buf", ir.CI(0), ir.CI(int64(bufs)), ir.CI(1), func(buf *ir.Var) {
		fb.Set(a, ir.CF(0x67452301))
		fb.Set(bb, ir.CF(0xefcdab89))
		fb.Set(c, ir.CF(0x98badcfe))
		fb.Set(d, ir.CF(0x10325476))
		inner := fb.For("r", ir.CI(0), ir.CI(int64(blockLen)), ir.CI(1), func(r *ir.Var) {
			idx := ir.Add(ir.Mul(ir.V(buf), ir.CI(int64(blockLen))), ir.V(r))
			// The mixing chain: every round depends on the previous one.
			fb.Set(tmp, ir.V(d))
			fb.Set(d, ir.V(c))
			fb.Set(c, ir.V(bb))
			fb.Set(bb, ir.Add(ir.V(bb),
				ir.Xor(ir.AndB(ir.V(bb), ir.V(c)), ir.Add(ir.V(a), ir.At(data, idx)))))
			fb.Set(a, ir.V(tmp))
		})
		t.Seq = append(t.Seq, inner)
		if t.Hot == nil {
			t.Hot = inner
		}
		fb.SetAt(digest, ir.V(buf), ir.Add(ir.Add(ir.V(a), ir.V(bb)), ir.Add(ir.V(c), ir.V(d))))
	})
	t.DOALL = append(t.DOALL, outer)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// imageKernel builds an image-processing main with a per-pixel DOALL loop
// computed by fn.
func imageKernel(name string, n int, seqFrac float64,
	emit func(fb *ir.FuncBuilder, src, dst *ir.Var, i *ir.Var)) BuilderFunc {
	return func(scale int) *Program {
		px := sc(scale, n)
		t := Truth{SeqFraction: seqFrac}
		b := ir.NewBuilder(name)
		src := b.GlobalArray("src", ir.F64, px)
		dst := b.GlobalArray("dst", ir.F64, px)
		fb := b.Func("main")
		fillRand(fb, src, px, &t)
		hot := fb.For("i", ir.CI(0), ir.CI(int64(px)), ir.CI(1), func(i *ir.Var) {
			emit(fb, src, dst, i)
		})
		t.DOALL = append(t.DOALL, hot)
		t.Hot = hot
		mainFn := fb.Done()
		return &Program{M: b.Build(mainFn), Truth: t}
	}
}

// buildRGBYUV models the color-space conversion of Figure 4.7: three
// reads, three independent channel computations, three writes per pixel.
func buildRGBYUV(scale int) *Program {
	px := sc(scale, 2400)
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("rgbyuv")
	rch := b.GlobalArray("r", ir.F64, px)
	gch := b.GlobalArray("g", ir.F64, px)
	bch := b.GlobalArray("b", ir.F64, px)
	ych := b.GlobalArray("y", ir.F64, px)
	uch := b.GlobalArray("u", ir.F64, px)
	vch := b.GlobalArray("v", ir.F64, px)
	fb := b.Func("main")
	fillRand(fb, rch, px, &t)
	fillRand(fb, gch, px, &t)
	fillRand(fb, bch, px, &t)
	hot := fb.For("i", ir.CI(0), ir.CI(int64(px)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(ych, ir.V(i), ir.Add(ir.Mul(ir.CF(0.299), ir.At(rch, ir.V(i))),
			ir.Add(ir.Mul(ir.CF(0.587), ir.At(gch, ir.V(i))),
				ir.Mul(ir.CF(0.114), ir.At(bch, ir.V(i))))))
		fb.SetAt(uch, ir.V(i), ir.Sub(ir.At(bch, ir.V(i)), ir.At(ych, ir.V(i))))
		fb.SetAt(vch, ir.V(i), ir.Sub(ir.At(rch, ir.V(i)), ir.At(ych, ir.V(i))))
	})
	t.DOALL = append(t.DOALL, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildRotate models image rotation: dst[perm(i)] = src[i], a permutation
// scatter with independent iterations.
var buildRotate = imageKernel("rotate", 3000, 0.01,
	func(fb *ir.FuncBuilder, src, dst *ir.Var, i *ir.Var) {
		n := int64(dst.Elems)
		fb.SetAt(dst, ir.Mod(ir.Mul(ir.V(i), ir.CI(7)), ir.CI(n)), ir.At(src, ir.V(i)))
	})

// buildRayRot combines ray shading with rotation per pixel.
var buildRayRot = imageKernel("ray-rot", 2000, 0.02,
	func(fb *ir.FuncBuilder, src, dst *ir.Var, i *ir.Var) {
		n := int64(dst.Elems)
		fb.SetAt(dst, ir.Mod(ir.Mul(ir.V(i), ir.CI(13)), ir.CI(n)),
			ir.Div(ir.CF(1), ir.Add(ir.At(src, ir.V(i)), ir.CF(0.2))))
	})

// buildRotCC is rotate followed by color conversion: two DOALL stages over
// the image with a stage boundary — the three-step structure visible in
// the rot-cc CU graph of Figure 3.6.
func buildRotCC(scale int) *Program {
	px := sc(scale, 2000)
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("rot-cc")
	src := b.GlobalArray("src", ir.F64, px)
	mid := b.GlobalArray("mid", ir.F64, px)
	dst := b.GlobalArray("dst", ir.F64, px)
	fb := b.Func("main")
	fillRand(fb, src, px, &t)
	rot := fb.For("i", ir.CI(0), ir.CI(int64(px)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(mid, ir.Mod(ir.Mul(ir.V(i), ir.CI(11)), ir.CI(int64(px))), ir.At(src, ir.V(i)))
	})
	cc := fb.For("i", ir.CI(0), ir.CI(int64(px)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(dst, ir.V(i), ir.Add(ir.Mul(ir.CF(0.299), ir.At(mid, ir.V(i))), ir.CF(0.5)))
	})
	t.DOALL = append(t.DOALL, rot, cc)
	t.Hot = rot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildStreamcluster models online clustering: a DOALL cost evaluation
// with a global sum reduction, inside a sequential center-opening loop.
func buildStreamcluster(scale int) *Program {
	n := sc(scale, 800)
	rounds := 4
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("streamcluster")
	pts := b.GlobalArray("points", ir.F64, n)
	ctr := b.GlobalArray("centers", ir.F64, rounds+1)
	cost := b.Global("totalcost", ir.F64)
	fb := b.Func("main")
	d := fb.Local("d", ir.F64)
	fillRand(fb, pts, n, &t)
	fb.SetAt(ctr, ir.CI(0), ir.CF(0.5))
	outer := fb.For("round", ir.CI(0), ir.CI(int64(rounds)), ir.CI(1), func(rd *ir.Var) {
		fb.Set(cost, ir.CF(0))
		eval := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.Set(d, ir.Abs(ir.Sub(ir.At(pts, ir.V(i)), ir.At(ctr, ir.V(rd)))))
			fb.Set(cost, ir.Add(ir.V(cost), ir.V(d)))
		})
		t.DOALL = append(t.DOALL, eval) // cost reduction
		if t.Hot == nil {
			t.Hot = eval
		}
		// Open the next center based on the accumulated cost: carried.
		fb.SetAt(ctr, ir.Add(ir.V(rd), ir.CI(1)),
			ir.Div(ir.V(cost), ir.CI(int64(n))))
	})
	t.Seq = append(t.Seq, outer)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildTinyJPEG models block decoding: the bitstream position advances
// sequentially (carried), but the IDCT and color conversion of each block
// are independent — the canonical DOACROSS/pipeline loop.
func buildTinyJPEG(scale int) *Program {
	blocks := sc(scale, 60)
	blockPx := 16
	t := Truth{SeqFraction: 0.15}
	b := ir.NewBuilder("tinyjpeg")
	stream := b.GlobalArray("stream", ir.F64, blocks*4)
	out := b.GlobalArray("out", ir.F64, blocks*blockPx)
	pos := b.Global("bitpos", ir.F64)
	fb := b.Func("main")
	coef := fb.Local("coef", ir.F64)
	fillRand(fb, stream, blocks*4, &t)
	fb.Set(pos, ir.CF(0))
	hot := fb.For("blk", ir.CI(0), ir.CI(int64(blocks)), ir.CI(1), func(blk *ir.Var) {
		// Huffman decode: reads and advances the shared bitstream position
		// — the loop-carried part.
		fb.Set(coef, ir.At(stream, ir.Mod(ir.V(pos), ir.CI(int64(blocks*4)))))
		fb.Set(pos, ir.Add(ir.V(pos), ir.Add(ir.CF(1), ir.Floor(ir.Mul(ir.V(coef), ir.CF(3))))))
		// IDCT + color conversion: independent per block.
		idct := fb.For("p", ir.CI(0), ir.CI(int64(blockPx)), ir.CI(1), func(p *ir.Var) {
			fb.SetAt(out, ir.Add(ir.Mul(ir.V(blk), ir.CI(int64(blockPx))), ir.V(p)),
				ir.Mul(ir.V(coef), ir.Cos(ir.Mul(ir.V(p), ir.CF(0.196)))))
		})
		t.DOALL = append(t.DOALL, idct)
	})
	t.DOACROSS = append(t.DOACROSS, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildBodytrack models a particle filter: per-particle weight evaluation
// is DOALL; normalization is a reduction; time steps are sequential.
func buildBodytrack(scale int) *Program {
	particles := sc(scale, 500)
	steps := 4
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("bodytrack")
	pose := b.GlobalArray("pose", ir.F64, particles)
	wgt := b.GlobalArray("weight", ir.F64, particles)
	norm := b.Global("norm", ir.F64)
	est := b.Global("estimate", ir.F64)
	fb := b.Func("main")
	fillRand(fb, pose, particles, &t)
	fb.Set(est, ir.CF(0.5))
	outer := fb.For("step", ir.CI(0), ir.CI(int64(steps)), ir.CI(1), func(s *ir.Var) {
		evalLoop := fb.For("i", ir.CI(0), ir.CI(int64(particles)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(wgt, ir.V(i), ir.Exp(ir.Neg(ir.Abs(
				ir.Sub(ir.At(pose, ir.V(i)), ir.V(est))))))
		})
		t.DOALL = append(t.DOALL, evalLoop)
		if t.Hot == nil {
			t.Hot = evalLoop
		}
		fb.Set(norm, ir.CF(0))
		normLoop := fb.For("i", ir.CI(0), ir.CI(int64(particles)), ir.CI(1), func(i *ir.Var) {
			fb.Set(norm, ir.Add(ir.V(norm), ir.At(wgt, ir.V(i))))
		})
		t.DOALL = append(t.DOALL, normLoop)
		// Estimate update: carried across time steps.
		fb.Set(est, ir.Div(ir.V(norm), ir.CI(int64(particles))))
		resample := fb.For("i", ir.CI(0), ir.CI(int64(particles)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(pose, ir.V(i), ir.Add(ir.Mul(ir.At(pose, ir.V(i)), ir.CF(0.9)),
				ir.Mul(ir.V(est), ir.CF(0.1))))
		})
		t.DOALL = append(t.DOALL, resample)
	})
	t.Seq = append(t.Seq, outer)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildH264 models the decoder: frames depend on reference frames
// (sequential), entropy decoding within a frame is carried, macroblock
// reconstruction is independent — a DOACROSS frame loop.
func buildH264(scale int) *Program {
	frames := sc(scale, 8)
	mbs := 40
	t := Truth{SeqFraction: 0.12}
	b := ir.NewBuilder("h264dec")
	bits := b.GlobalArray("bits", ir.F64, frames*mbs)
	ref := b.GlobalArray("ref", ir.F64, mbs)
	cur := b.GlobalArray("cur", ir.F64, mbs)
	bitpos := b.Global("bitpos", ir.F64)
	fb := b.Func("main")
	sym := fb.Local("sym", ir.F64)
	fillRand(fb, bits, frames*mbs, &t)
	fillRand(fb, ref, mbs, &t)
	fb.Set(bitpos, ir.CF(0))
	frameLoop := fb.For("f", ir.CI(0), ir.CI(int64(frames)), ir.CI(1), func(f *ir.Var) {
		// Entropy decode: sequential through bitpos.
		entropy := fb.For("m", ir.CI(0), ir.CI(int64(mbs)), ir.CI(1), func(m *ir.Var) {
			fb.Set(sym, ir.At(bits, ir.Mod(ir.V(bitpos), ir.CI(int64(frames*mbs)))))
			fb.Set(bitpos, ir.Add(ir.V(bitpos), ir.Add(ir.CF(1), ir.V(sym))))
			fb.SetAt(cur, ir.V(m), ir.V(sym))
		})
		t.DOACROSS = append(t.DOACROSS, entropy)
		// Reconstruction: DOALL over macroblocks against the reference.
		recon := fb.For("m", ir.CI(0), ir.CI(int64(mbs)), ir.CI(1), func(m *ir.Var) {
			fb.SetAt(cur, ir.V(m), ir.Add(ir.Mul(ir.At(cur, ir.V(m)), ir.CF(0.7)),
				ir.Mul(ir.At(ref, ir.V(m)), ir.CF(0.3))))
		})
		t.DOALL = append(t.DOALL, recon)
		// Reference update: carried across frames.
		refupd := fb.For("m", ir.CI(0), ir.CI(int64(mbs)), ir.CI(1), func(m *ir.Var) {
			fb.SetAt(ref, ir.V(m), ir.At(cur, ir.V(m)))
		})
		t.DOALL = append(t.DOALL, refupd)
	})
	// Frames depend on their predecessors, but reconstruction work can
	// overlap with the next frame's entropy decoding: DOACROSS.
	t.DOACROSS = append(t.DOACROSS, frameLoop)
	t.Hot = frameLoop
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}
