package workloads

import (
	"testing"

	"discopop/internal/interp"
	"discopop/internal/ir"
)

// TestAllWorkloadsBuildAndRun smoke-tests every registered workload at two
// scales: modules must build, execute to completion, and perform a
// non-trivial amount of work.
func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, name := range Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, scale := range []int{1, 2} {
				prog := MustBuild(name, scale)
				if prog.Name != name {
					t.Errorf("name = %q, want %q", prog.Name, name)
				}
				if prog.M.Main == nil {
					t.Fatal("no main function")
				}
				in := interp.New(prog.M, nil)
				instrs := in.Run()
				if instrs < 100 {
					t.Errorf("scale %d: only %d statements executed", scale, instrs)
				}
			}
		})
	}
}

// TestWorkloadsDeterministic: two builds of the same workload execute the
// same number of statements (the random source is seeded per run).
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"EP", "c-ray", "fib", "facedetection", "gzip"} {
		a := MustBuild(name, 1)
		b := MustBuild(name, 1)
		na := interp.New(a.M, nil).Run()
		nb := interp.New(b.M, nil).Run()
		if na != nb {
			t.Errorf("%s: nondeterministic instruction counts %d vs %d", name, na, nb)
		}
	}
}

// TestTruthRegionsBelongToModule: ground-truth regions must be regions of
// the built module, and loops must really be loops.
func TestTruthRegionsBelongToModule(t *testing.T) {
	for _, name := range Names("") {
		prog := MustBuild(name, 1)
		inModule := map[*ir.Region]bool{}
		for _, r := range prog.M.Regions {
			inModule[r] = true
		}
		check := func(rs []*ir.Region, label string) {
			for _, r := range rs {
				if !inModule[r] {
					t.Errorf("%s: %s region %v not in module", name, label, r)
				}
				if r.Kind != ir.RLoop {
					t.Errorf("%s: %s region %v is not a loop", name, label, r)
				}
			}
		}
		check(prog.Truth.DOALL, "DOALL")
		check(prog.Truth.DOACROSS, "DOACROSS")
		check(prog.Truth.Seq, "Seq")
		if prog.Truth.Hot != nil && !inModule[prog.Truth.Hot] {
			t.Errorf("%s: hot region not in module", name)
		}
	}
}

// TestTruthDisjoint: a loop must not be in two truth classes at once.
func TestTruthDisjoint(t *testing.T) {
	for _, name := range Names("") {
		prog := MustBuild(name, 1)
		seen := map[*ir.Region]string{}
		add := func(rs []*ir.Region, label string) {
			for _, r := range rs {
				if prev, dup := seen[r]; dup {
					t.Errorf("%s: loop %v in both %s and %s", name, r, prev, label)
				}
				seen[r] = label
			}
		}
		add(prog.Truth.DOALL, "DOALL")
		add(prog.Truth.DOACROSS, "DOACROSS")
		add(prog.Truth.Seq, "Seq")
	}
}

// TestSuiteRosters: the suites used by the experiments must contain their
// expected members.
func TestSuiteRosters(t *testing.T) {
	cases := map[string][]string{
		"NAS":          {"EP", "CG", "FT", "IS", "MG", "LU", "SP", "BT"},
		"Starbench":    {"c-ray", "kmeans", "md5", "rgbyuv", "rotate", "rot-cc", "tinyjpeg", "bodytrack", "h264dec"},
		"BOTS":         {"fib", "nqueens", "sort", "fft", "strassen", "sparselu", "health", "floorplan", "alignment", "uts"},
		"MPMD":         {"facedetection", "libvorbis", "ferret", "dedup"},
		"compressor":   {"gzip", "bzip2"},
		"Starbench-MT": {"md5-mt", "kmeans-mt"},
		"textbook":     {"histogram", "mandelbrot", "matmul", "montecarlo-pi", "nbody", "prefix-sum"},
	}
	for suite, members := range cases {
		have := map[string]bool{}
		for _, n := range Names(suite) {
			have[n] = true
		}
		for _, m := range members {
			if !have[m] {
				t.Errorf("suite %s missing %s", suite, m)
			}
		}
	}
}

// TestScaleGrowsWork: scale 2 must execute more statements than scale 1.
func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"EP", "kmeans", "gzip"} {
		n1 := interp.New(MustBuild(name, 1).M, nil).Run()
		n2 := interp.New(MustBuild(name, 2).M, nil).Run()
		if n2 <= n1 {
			t.Errorf("%s: scale 2 (%d) not larger than scale 1 (%d)", name, n2, n1)
		}
	}
}

// TestMTWorkloadsSpawnThreads: the Starbench-MT programs must actually
// run multi-threaded.
func TestMTWorkloadsSpawnThreads(t *testing.T) {
	for _, name := range Names("Starbench-MT") {
		prog := MustBuild(name, 1)
		tr := &threadCounter{}
		interp.New(prog.M, tr).Run()
		if tr.started < 4 {
			t.Errorf("%s: only %d threads started, want 4 workers", name, tr.started)
		}
	}
}

type threadCounter struct {
	interp.BaseTracer
	started int
}

func (tc *threadCounter) ThreadStart(tid, parent int32) {
	if parent >= 0 {
		tc.started++
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	if _, err := Build("no-such-benchmark", 1); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestListMatchesNames(t *testing.T) {
	all := List("")
	names := Names("")
	if len(all) != len(names) {
		t.Fatalf("List has %d entries, Names has %d", len(all), len(names))
	}
	for i, info := range all {
		if info.Name != names[i] {
			t.Errorf("List[%d].Name = %q, Names[%d] = %q", i, info.Name, i, names[i])
		}
		if info.Suite == "" {
			t.Errorf("%s: empty suite", info.Name)
		}
	}
	for _, suite := range Suites() {
		sub := List(suite)
		if len(sub) == 0 {
			t.Errorf("suite %q: empty List", suite)
		}
		for _, info := range sub {
			if info.Suite != suite {
				t.Errorf("List(%q) returned %+v", suite, info)
			}
		}
	}
}
