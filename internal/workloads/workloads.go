// Package workloads re-implements, at reduced scale, the benchmark
// programs of the paper's evaluation: the SNU NAS Parallel Benchmarks and
// Starbench (Chapter 2 and Section 4.1), the Barcelona OpenMP Task Suite
// (Section 4.4.3), PARSEC-like pipeline applications, libVorbis- and
// FaceDetection-like multimedia apps (Section 4.4.4), the gzip/bzip2-like
// block compressors of Table 4.5, and the textbook programs of Table 4.2.
//
// Each workload is built as an IR module whose dependence structure matches
// its real counterpart — DOALL kernels, reductions, carried recurrences,
// indirect histogram writes, pipelines, recursive task decompositions, and
// pathological patterns such as FT's dummy-variable WAW chain (Figure
// 2.14). The evaluation's shape (which loops are parallel, which programs
// skip well, where signatures collide) is a function of this structure.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"discopop/internal/ir"
)

// Truth records the ground-truth parallelism of a workload's loops,
// captured while the module is built.
type Truth struct {
	// DOALL lists loops whose iterations are independent (including
	// reduction loops, which the tools of Table 4.1 also count).
	DOALL []*ir.Region
	// DOACROSS lists loops with carried dependences confined to a part of
	// the body (pipelinable).
	DOACROSS []*ir.Region
	// Seq lists loops that are inherently sequential.
	Seq []*ir.Region
	// Hot is the hottest loop (Table 4.4 examines the biggest hot loops).
	Hot *ir.Region
	// TaskFuncs lists functions expected to expose task parallelism.
	TaskFuncs []*ir.Func
	// SeqFraction is the approximate sequential fraction of the program,
	// used by the speedup simulation.
	SeqFraction float64
}

// Program is a built workload: the module plus its ground truth.
type Program struct {
	Name  string
	Suite string
	M     *ir.Module
	Truth Truth
}

// Builder constructs a workload at the given scale (1 = bench default;
// larger values increase the dynamic instruction count roughly linearly).
type BuilderFunc func(scale int) *Program

type entry struct {
	name  string
	suite string
	build BuilderFunc
}

var registry []entry

func register(name, suite string, build BuilderFunc) {
	registry = append(registry, entry{name, suite, build})
}

// Info describes one registry entry without building it — the enumerable
// registry view served by listing endpoints (e.g. dp-serve's
// GET /v1/workloads) and tooling that needs names and suites but not
// modules.
type Info struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

// List returns every registered workload's Info in registration order,
// optionally filtered by suite ("" = all).
func List(suite string) []Info {
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		if suite == "" || e.suite == suite {
			out = append(out, Info{Name: e.name, Suite: e.suite})
		}
	}
	return out
}

// Names returns all registered workload names, optionally filtered by
// suite ("" = all), in registration order.
func Names(suite string) []string {
	var out []string
	for _, e := range registry {
		if suite == "" || e.suite == suite {
			out = append(out, e.name)
		}
	}
	return out
}

// Suites returns the distinct suite names.
func Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range registry {
		if !seen[e.suite] {
			seen[e.suite] = true
			out = append(out, e.suite)
		}
	}
	sort.Strings(out)
	return out
}

// BuildBatch builds a comma-separated workload list ("all" for every
// bundled workload) at the given scale — the shared spec syntax of the
// multi-workload CLIs.
func BuildBatch(spec string, scale int) ([]*Program, error) {
	var names []string
	if spec == "all" {
		names = Names("")
	} else {
		for _, n := range strings.Split(spec, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	progs := make([]*Program, 0, len(names))
	for _, n := range names {
		p, err := Build(n, scale)
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// Build constructs the named workload.
func Build(name string, scale int) (*Program, error) {
	for _, e := range registry {
		if e.name == name {
			p := e.build(scale)
			p.Name = e.name
			p.Suite = e.suite
			return p, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// MustBuild is Build that panics on unknown names (registry is static).
func MustBuild(name string, scale int) *Program {
	p, err := Build(name, scale)
	if err != nil {
		panic(err)
	}
	return p
}

// BuildSuite builds every workload of a suite.
func BuildSuite(suite string, scale int) []*Program {
	var out []*Program
	for _, name := range Names(suite) {
		out = append(out, MustBuild(name, scale))
	}
	return out
}

func sc(scale, base int) int {
	if scale <= 0 {
		scale = 1
	}
	return base * scale
}

// fillRand emits a loop initializing arr[0..n) with pseudo-random values —
// an initialization DOALL loop, recorded in truth when t is non-nil.
func fillRand(fb *ir.FuncBuilder, arr *ir.Var, n int, t *Truth) *ir.Region {
	r := fb.For("init_i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(arr, ir.V(i), ir.Rnd())
	})
	if t != nil {
		t.DOALL = append(t.DOALL, r)
	}
	return r
}

// fillLinear initializes arr[i] = a*i + b.
func fillLinear(fb *ir.FuncBuilder, arr *ir.Var, n int, a, b float64, t *Truth) *ir.Region {
	r := fb.For("init_i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(arr, ir.V(i), ir.Add(ir.Mul(ir.CF(a), ir.V(i)), ir.CF(b)))
	})
	if t != nil {
		t.DOALL = append(t.DOALL, r)
	}
	return r
}
