package workloads

import "discopop/internal/ir"

// NAS-like kernels. Each reproduces the characteristic loop and dependence
// structure of its namesake from the SNU NAS Parallel Benchmarks.

func init() {
	register("EP", "NAS", buildEP)
	register("CG", "NAS", buildCG)
	register("FT", "NAS", buildFT)
	register("IS", "NAS", buildIS)
	register("MG", "NAS", buildMG)
	register("LU", "NAS", buildLU)
	register("SP", "NAS", buildSP)
	register("BT", "NAS", buildBT)
}

// buildEP models the embarrassingly parallel kernel: independent Gaussian
// pair generation with sum reductions and a ten-bin histogram of indirect
// reduction writes.
func buildEP(scale int) *Program {
	n := sc(scale, 4000)
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("ep")
	sx := b.Global("sx", ir.F64)
	sy := b.Global("sy", ir.F64)
	q := b.GlobalArray("q", ir.F64, 10)

	fb := b.Func("main")
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	tv := fb.Local("t", ir.F64)
	bin := fb.Local("bin", ir.I64)
	fb.Set(sx, ir.CF(0))
	fb.Set(sy, ir.CF(0))
	fb.For("qi", ir.CI(0), ir.CI(10), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(q, ir.V(i), ir.CF(0))
	})
	main := fb.For("k", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(k *ir.Var) {
		fb.Set(x, ir.Sub(ir.Mul(ir.CF(2), ir.Rnd()), ir.CF(1)))
		fb.Set(y, ir.Sub(ir.Mul(ir.CF(2), ir.Rnd()), ir.CF(1)))
		fb.Set(tv, ir.Add(ir.Mul(ir.V(x), ir.V(x)), ir.Mul(ir.V(y), ir.V(y))))
		fb.If(ir.Le(ir.V(tv), ir.CF(1)), func() {
			// sx/sy are classic sum reductions; q is an indirect
			// (histogram) reduction.
			fb.Set(sx, ir.Add(ir.V(sx), ir.Mul(ir.V(x), ir.Sqrt(ir.V(tv)))))
			fb.Set(sy, ir.Add(ir.V(sy), ir.Mul(ir.V(y), ir.Sqrt(ir.V(tv)))))
			fb.Set(bin, ir.Floor(ir.Mul(ir.V(tv), ir.CI(10))))
			fb.SetAt(q, ir.V(bin), ir.Add(ir.At(q, ir.V(bin)), ir.CF(1)))
		})
	})
	t.DOALL = append(t.DOALL, main)
	t.Hot = main
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildCG models the conjugate-gradient kernel: an inherently sequential
// outer solver iteration around a sparse matrix-vector product (DOALL over
// rows with an inner sum reduction), dot-product reductions, and axpy
// updates.
func buildCG(scale int) *Program {
	rows := sc(scale, 160)
	nnzPerRow := 8
	iters := 6
	t := Truth{SeqFraction: 0.04}
	b := ir.NewBuilder("cg")
	a := b.GlobalArray("a", ir.F64, rows*nnzPerRow)
	col := b.GlobalArray("colidx", ir.I64, rows*nnzPerRow)
	p := b.GlobalArray("p", ir.F64, rows)
	qv := b.GlobalArray("q", ir.F64, rows)
	r := b.GlobalArray("r", ir.F64, rows)
	rho := b.Global("rho", ir.F64)
	alpha := b.Global("alpha", ir.F64)

	fb := b.Func("main")
	sum := fb.Local("sum", ir.F64)
	fillRand(fb, a, rows*nnzPerRow, &t)
	// Column indices: pseudo-random but deterministic sparsity.
	idxInit := fb.For("ii", ir.CI(0), ir.CI(int64(rows*nnzPerRow)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(col, ir.V(i), ir.Mod(ir.Mul(ir.V(i), ir.CI(17)), ir.CI(int64(rows))))
	})
	t.DOALL = append(t.DOALL, idxInit)
	fillLinear(fb, p, rows, 0.001, 1, &t)
	fillLinear(fb, r, rows, 0.0005, 0.5, &t)

	// Outer solver loop: carried through rho/alpha/p/r — sequential.
	outer := fb.For("cgit", ir.CI(0), ir.CI(int64(iters)), ir.CI(1), func(it *ir.Var) {
		// q = A*p: DOALL over rows, inner reduction over nonzeros.
		spmv := fb.For("row", ir.CI(0), ir.CI(int64(rows)), ir.CI(1), func(row *ir.Var) {
			fb.Set(sum, ir.CF(0))
			inner := fb.For("k", ir.Mul(ir.V(row), ir.CI(int64(nnzPerRow))),
				ir.Mul(ir.Add(ir.V(row), ir.CI(1)), ir.CI(int64(nnzPerRow))), ir.CI(1),
				func(k *ir.Var) {
					fb.Set(sum, ir.Add(ir.V(sum),
						ir.Mul(ir.At(a, ir.V(k)), ir.At(p, ir.At(col, ir.V(k))))))
				})
			t.DOALL = append(t.DOALL, inner) // reduction on sum
			fb.SetAt(qv, ir.V(row), ir.V(sum))
		})
		t.DOALL = append(t.DOALL, spmv)
		if t.Hot == nil {
			t.Hot = spmv
		}
		// rho = p . q (reduction).
		fb.Set(rho, ir.CF(0))
		dot := fb.For("i", ir.CI(0), ir.CI(int64(rows)), ir.CI(1), func(i *ir.Var) {
			fb.Set(rho, ir.Add(ir.V(rho), ir.Mul(ir.At(p, ir.V(i)), ir.At(qv, ir.V(i)))))
		})
		t.DOALL = append(t.DOALL, dot)
		fb.Set(alpha, ir.Div(ir.CF(1), ir.Add(ir.V(rho), ir.CF(1e-9))))
		// r = r - alpha*q ; p = r + 0.5*p : DOALL axpy updates.
		axpy := fb.For("i", ir.CI(0), ir.CI(int64(rows)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(r, ir.V(i), ir.Sub(ir.At(r, ir.V(i)),
				ir.Mul(ir.V(alpha), ir.At(qv, ir.V(i)))))
			fb.SetAt(p, ir.V(i), ir.Add(ir.At(r, ir.V(i)),
				ir.Mul(ir.CF(0.5), ir.At(p, ir.V(i)))))
		})
		t.DOALL = append(t.DOALL, axpy)
	})
	t.Seq = append(t.Seq, outer)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildFT models the FFT kernel, including the Figure 2.14 pattern: a
// sequential seed-chasing loop whose dummy variable manufactures a chain of
// WAW dependences, followed by butterfly stages that are DOALL within a
// stage and sequential across stages.
func buildFT(scale int) *Program {
	n := 1
	for n < sc(scale, 256) {
		n <<= 1
	}
	t := Truth{SeqFraction: 0.08}
	b := ir.NewBuilder("ft")

	// randlc advances the seed (by reference) and returns a value: the
	// carried RAW on the seed makes the caller's loop sequential.
	rl := b.FuncRet("randlc")
	seedP := rl.RefParam("seed", ir.F64, 1)
	rl.SetAt(seedP, ir.CI(0),
		ir.Mod(ir.Add(ir.Mul(ir.At(seedP, ir.CI(0)), ir.CF(1220703125)), ir.CF(1)), ir.CF(2147483647)))
	rl.Return(ir.Div(ir.At(seedP, ir.CI(0)), ir.CF(2147483647)))
	randlc := rl.Done()

	re := b.GlobalArray("u_re", ir.F64, n)
	im := b.GlobalArray("u_im", ir.F64, n)
	starts := b.GlobalArray("RanStarts", ir.F64, 64)

	fb := b.Func("main")
	start := fb.Array("start", ir.F64, 1)
	dummy := fb.Local("dummy", ir.F64)
	e := fb.Local("even", ir.F64)
	o := fb.Local("odd", ir.F64)
	fb.SetAt(start, ir.CI(0), ir.CF(314159265))
	// Figure 2.14: dummy = randlc(&start, an); RanStarts[k] = start.
	seedLoop := fb.For("k", ir.CI(1), ir.CI(64), ir.CI(1), func(k *ir.Var) {
		fb.CallInto(ir.V(dummy), randlc, ir.At(start, ir.CI(0)))
		fb.SetAt(starts, ir.V(k), ir.At(start, ir.CI(0)))
	})
	t.Seq = append(t.Seq, seedLoop)

	fillRand(fb, re, n, &t)
	fillRand(fb, im, n, &t)

	stages := 0
	for 1<<stages < n {
		stages++
	}
	half := fb.Local("half", ir.I64)
	mate := fb.Local("mate", ir.I64)
	fb.Set(half, ir.CI(1))
	// evolve: sequential over stages, DOALL across butterflies of a stage
	// (Figure 4.1's nested loops in function evolve).
	stageLoop := fb.For("stage", ir.CI(0), ir.CI(int64(stages)), ir.CI(1), func(s *ir.Var) {
		body := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
			fb.Set(mate, ir.Xor(ir.V(i), ir.V(half)))
			fb.If(ir.Lt(ir.V(i), ir.V(mate)), func() {
				fb.Set(e, ir.Add(ir.At(re, ir.V(i)), ir.At(re, ir.V(mate))))
				fb.Set(o, ir.Sub(ir.At(im, ir.V(i)), ir.At(im, ir.V(mate))))
				fb.SetAt(re, ir.V(i), ir.Mul(ir.V(e), ir.CF(0.5)))
				fb.SetAt(im, ir.V(mate), ir.Mul(ir.V(o), ir.CF(0.5)))
			})
		})
		t.DOALL = append(t.DOALL, body)
		if t.Hot == nil {
			t.Hot = body
		}
		fb.Set(half, ir.Mul(ir.V(half), ir.CI(2)))
	})
	t.Seq = append(t.Seq, stageLoop)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildIS models integer sort: histogram key counting (indirect
// reduction), a prefix-sum over buckets (carried recurrence), and a rank
// scatter (DOALL).
func buildIS(scale int) *Program {
	n := sc(scale, 4000)
	buckets := 64
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("is")
	keys := b.GlobalArray("key", ir.I64, n)
	cnt := b.GlobalArray("count", ir.F64, buckets)
	rank := b.GlobalArray("rank", ir.F64, n)

	fb := b.Func("main")
	kv := fb.Local("k", ir.I64)
	keyInit := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(keys, ir.V(i), ir.Floor(ir.Mul(ir.Rnd(), ir.CI(int64(buckets)))))
	})
	t.DOALL = append(t.DOALL, keyInit)
	fb.For("bz", ir.CI(0), ir.CI(int64(buckets)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(cnt, ir.V(i), ir.CF(0))
	})
	hist := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.Set(kv, ir.At(keys, ir.V(i)))
		fb.SetAt(cnt, ir.V(kv), ir.Add(ir.At(cnt, ir.V(kv)), ir.CF(1)))
	})
	t.DOALL = append(t.DOALL, hist) // histogram reduction
	t.Hot = hist
	// Prefix sum: count[j] += count[j-1] — a true carried recurrence.
	prefix := fb.For("j", ir.CI(1), ir.CI(int64(buckets)), ir.CI(1), func(j *ir.Var) {
		fb.SetAt(cnt, ir.V(j), ir.Add(ir.At(cnt, ir.V(j)), ir.At(cnt, ir.Sub(ir.V(j), ir.CI(1)))))
	})
	t.Seq = append(t.Seq, prefix)
	scatter := fb.For("i", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(rank, ir.V(i), ir.At(cnt, ir.At(keys, ir.V(i))))
	})
	t.DOALL = append(t.DOALL, scatter)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildMG models the multigrid kernel: Jacobi-style smoothing sweeps and
// residual computations that read one array and write another (DOALL), with
// a sequential V-cycle driver.
func buildMG(scale int) *Program {
	n := sc(scale, 1024)
	cycles := 4
	t := Truth{SeqFraction: 0.03}
	b := ir.NewBuilder("mg")
	u := b.GlobalArray("u", ir.F64, n)
	v := b.GlobalArray("v", ir.F64, n)
	r := b.GlobalArray("r", ir.F64, n)

	fb := b.Func("main")
	fillRand(fb, v, n, &t)
	fillLinear(fb, u, n, 0, 0, &t)
	vcycle := fb.For("cyc", ir.CI(0), ir.CI(int64(cycles)), ir.CI(1), func(c *ir.Var) {
		// residual: r = v - smooth(u). Reads u/v, writes r: DOALL.
		resid := fb.For("i", ir.CI(1), ir.CI(int64(n-1)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(r, ir.V(i), ir.Sub(ir.At(v, ir.V(i)),
				ir.Mul(ir.CF(0.5), ir.Add(ir.At(u, ir.Sub(ir.V(i), ir.CI(1))),
					ir.At(u, ir.Add(ir.V(i), ir.CI(1)))))))
		})
		t.DOALL = append(t.DOALL, resid)
		if t.Hot == nil {
			t.Hot = resid
		}
		// smooth: u = u + c*r. DOALL.
		smooth := fb.For("i", ir.CI(1), ir.CI(int64(n-1)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(u, ir.V(i), ir.Add(ir.At(u, ir.V(i)), ir.Mul(ir.CF(0.4), ir.At(r, ir.V(i)))))
		})
		t.DOALL = append(t.DOALL, smooth)
	})
	t.Seq = append(t.Seq, vcycle)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// adiSweep emits the BT/SP/LU family's characteristic structure: a DOALL
// loop over independent grid lines, each carrying a sequential recurrence
// along the line (forward elimination / back substitution).
func adiSweep(fb *ir.FuncBuilder, grid *ir.Var, lines, lineLen int, coeff float64, t *Truth) (outer *ir.Region) {
	outer = fb.For("line", ir.CI(0), ir.CI(int64(lines)), ir.CI(1), func(line *ir.Var) {
		inner := fb.For("j", ir.CI(1), ir.CI(int64(lineLen)), ir.CI(1), func(j *ir.Var) {
			idx := ir.Add(ir.Mul(ir.V(line), ir.CI(int64(lineLen))), ir.V(j))
			prev := ir.Sub(idx, ir.CI(1))
			fb.SetAt(grid, idx, ir.Add(ir.At(grid, idx),
				ir.Mul(ir.CF(coeff), ir.At(grid, prev))))
		})
		t.Seq = append(t.Seq, inner)
	})
	t.DOALL = append(t.DOALL, outer)
	return outer
}

func buildADI(name string, lines, lineLen, steps int, coeff float64) BuilderFunc {
	return func(scale int) *Program {
		L := sc(scale, lines)
		t := Truth{SeqFraction: 0.04}
		b := ir.NewBuilder(name)
		grid := b.GlobalArray("u", ir.F64, L*lineLen)
		rhs := b.GlobalArray("rhs", ir.F64, L*lineLen)
		fb := b.Func("main")
		fillRand(fb, grid, L*lineLen, &t)
		fillRand(fb, rhs, L*lineLen, &t)
		stepLoop := fb.For("step", ir.CI(0), ir.CI(int64(steps)), ir.CI(1), func(s *ir.Var) {
			// rhs update: pure DOALL over the grid.
			upd := fb.For("i", ir.CI(0), ir.CI(int64(L*lineLen)), ir.CI(1), func(i *ir.Var) {
				fb.SetAt(rhs, ir.V(i), ir.Add(ir.Mul(ir.At(rhs, ir.V(i)), ir.CF(0.99)),
					ir.Mul(ir.At(grid, ir.V(i)), ir.CF(0.01))))
			})
			t.DOALL = append(t.DOALL, upd)
			sweep := adiSweep(fb, grid, L, lineLen, coeff, &t)
			if t.Hot == nil {
				t.Hot = sweep
			}
		})
		t.Seq = append(t.Seq, stepLoop)
		mainFn := fb.Done()
		return &Program{M: b.Build(mainFn), Truth: t}
	}
}

var (
	buildLU = buildADI("lu", 24, 32, 3, 0.25)
	buildSP = buildADI("sp", 20, 40, 3, 0.33)
	buildBT = buildADI("bt", 16, 48, 3, 0.5)
)
