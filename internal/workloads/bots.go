package workloads

import "discopop/internal/ir"

// BOTS-like task-parallel programs (Section 4.4.3): recursive
// decompositions and task loops whose hot spots DiscoPoP classified
// correctly in all 20 cases of Table 4.6.

func init() {
	register("fib", "BOTS", buildFib)
	register("nqueens", "BOTS", buildNQueens)
	register("sort", "BOTS", buildSort)
	register("fft", "BOTS", buildFFTBots)
	register("strassen", "BOTS", buildStrassen)
	register("sparselu", "BOTS", buildSparseLU)
	register("health", "BOTS", buildHealth)
	register("floorplan", "BOTS", buildFloorplan)
	register("alignment", "BOTS", buildAlignment)
	register("uts", "BOTS", buildUTS)
}

// buildFib is the Figure 4.3 program: fib(n) = fib(n-1) + fib(n-2), two
// independent recursive calls per invocation.
func buildFib(scale int) *Program {
	n := 12 + scale
	if n > 18 {
		n = 18
	}
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("fib")
	fibF := b.Forward("fib", true)
	fb := b.DefineForward(fibF)
	nn := fb.Param("n", ir.F64)
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	fb.IfElse(ir.Lt(ir.V(nn), ir.CI(2)), func() {
		fb.Return(ir.V(nn))
	}, func() {
		fb.CallInto(ir.V(x), fibF, ir.Sub(ir.V(nn), ir.CI(1)))
		fb.CallInto(ir.V(y), fibF, ir.Sub(ir.V(nn), ir.CI(2)))
		fb.Return(ir.Add(ir.V(x), ir.V(y)))
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, fibF)

	res := b.Global("result", ir.F64)
	mb := b.Func("main")
	mb.CallInto(ir.V(res), fibF, ir.CI(int64(n)))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildNQueens is the Figure 4.2 pattern: a loop over candidate columns,
// each iteration validating a placement and recursing, with a solution
// counter reduction.
func buildNQueens(scale int) *Program {
	n := 6
	if scale > 1 {
		n = 7
	}
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("nqueens")
	sols := b.Global("solutions", ir.F64)
	board := b.GlobalArray("board", ir.F64, n)

	solve := b.Forward("solve", false)
	fb := b.DefineForward(solve)
	row := fb.Param("row", ir.F64)
	ok := fb.Local("ok", ir.F64)
	fb.IfElse(ir.Ge(ir.V(row), ir.CI(int64(n))), func() {
		fb.Set(sols, ir.Add(ir.V(sols), ir.CF(1)))
	}, func() {
		tryLoop := fb.For("col", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(col *ir.Var) {
			fb.Set(ok, ir.CF(1))
			fb.For("r", ir.CI(0), ir.V(row), ir.CI(1), func(r *ir.Var) {
				fb.If(ir.Eq(ir.At(board, ir.V(r)), ir.V(col)), func() {
					fb.Set(ok, ir.CF(0))
				})
				fb.If(ir.Eq(ir.Abs(ir.Sub(ir.At(board, ir.V(r)), ir.V(col))),
					ir.Sub(ir.V(row), ir.V(r))), func() {
					fb.Set(ok, ir.CF(0))
				})
			})
			fb.If(ir.Eq(ir.V(ok), ir.CF(1)), func() {
				fb.SetAt(board, ir.V(row), ir.V(col))
				fb.Call(solve, ir.Add(ir.V(row), ir.CI(1)))
			})
		})
		// The column loop carries the shared board state — in BOTS each
		// task privatizes the board; at this granularity the loop is the
		// task spawn site.
		_ = tryLoop
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, solve)

	mb := b.Func("main")
	mb.Set(sols, ir.CF(0))
	mb.Call(solve, ir.CI(0))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildSort models BOTS sort (mergesort): two recursive calls on disjoint
// halves followed by a merge.
func buildSort(scale int) *Program {
	n := 1 << 8
	if scale > 1 {
		n = 1 << 9
	}
	t := Truth{SeqFraction: 0.1}
	b := ir.NewBuilder("sort")
	data := b.GlobalArray("data", ir.F64, n)
	tmp := b.GlobalArray("tmp", ir.F64, n)

	ms := b.Forward("msort", false)
	fb := b.DefineForward(ms)
	lo := fb.Param("lo", ir.F64)
	hi := fb.Param("hi", ir.F64)
	mid := fb.Local("mid", ir.F64)
	li := fb.Local("li", ir.F64)
	ri := fb.Local("ri", ir.F64)
	fb.If(ir.Gt(ir.Sub(ir.V(hi), ir.V(lo)), ir.CI(1)), func() {
		fb.Set(mid, ir.Floor(ir.Div(ir.Add(ir.V(lo), ir.V(hi)), ir.CI(2))))
		// Two independent recursive sorts: the SPMD task pattern.
		fb.Call(ms, ir.V(lo), ir.V(mid))
		fb.Call(ms, ir.V(mid), ir.V(hi))
		// Merge: sequential two-finger pass.
		fb.Set(li, ir.V(lo))
		fb.Set(ri, ir.V(mid))
		mergeLoop := fb.For("m", ir.V(lo), ir.V(hi), ir.CI(1), func(m *ir.Var) {
			fb.IfElse(ir.LAnd(ir.Lt(ir.V(li), ir.V(mid)),
				ir.Ne(ir.Ge(ir.V(ri), ir.V(hi)), ir.CF(0))), func() {
				fb.SetAt(tmp, ir.V(m), ir.At(data, ir.V(li)))
				fb.Set(li, ir.Add(ir.V(li), ir.CI(1)))
			}, func() {
				fb.IfElse(ir.LAnd(ir.Lt(ir.V(ri), ir.V(hi)),
					ir.Ne(ir.Ge(ir.V(li), ir.V(mid)), ir.CF(0))), func() {
					fb.SetAt(tmp, ir.V(m), ir.At(data, ir.V(ri)))
					fb.Set(ri, ir.Add(ir.V(ri), ir.CI(1)))
				}, func() {
					fb.IfElse(ir.LAnd(ir.Lt(ir.V(li), ir.V(mid)),
						ir.Le(ir.At(data, ir.V(li)), ir.At(data, ir.V(ri)))), func() {
						fb.SetAt(tmp, ir.V(m), ir.At(data, ir.V(li)))
						fb.Set(li, ir.Add(ir.V(li), ir.CI(1)))
					}, func() {
						fb.SetAt(tmp, ir.V(m), ir.At(data, ir.V(ri)))
						fb.Set(ri, ir.Add(ir.V(ri), ir.CI(1)))
					})
				})
			})
		})
		t.Seq = append(t.Seq, mergeLoop)
		copyLoop := fb.For("c", ir.V(lo), ir.V(hi), ir.CI(1), func(c *ir.Var) {
			fb.SetAt(data, ir.V(c), ir.At(tmp, ir.V(c)))
		})
		t.DOALL = append(t.DOALL, copyLoop)
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, ms)

	mb := b.Func("main")
	fillRand(mb, data, n, &t)
	mb.Call(ms, ir.CI(0), ir.CI(int64(n)))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildFFTBots models fft_twiddle_16 (Figure 4.9): recursive halving with
// independent halves plus a combining butterfly loop.
func buildFFTBots(scale int) *Program {
	n := 1 << 8
	if scale > 1 {
		n = 1 << 9
	}
	t := Truth{SeqFraction: 0.06}
	b := ir.NewBuilder("fft")
	re := b.GlobalArray("re", ir.F64, n)
	im := b.GlobalArray("im", ir.F64, n)

	fft := b.Forward("fft_twiddle", false)
	fb := b.DefineForward(fft)
	lo := fb.Param("lo", ir.F64)
	cnt := fb.Param("cnt", ir.F64)
	half := fb.Local("half", ir.F64)
	er := fb.Local("er", ir.F64)
	ei := fb.Local("ei", ir.F64)
	fb.If(ir.Gt(ir.V(cnt), ir.CI(1)), func() {
		fb.Set(half, ir.Floor(ir.Div(ir.V(cnt), ir.CI(2))))
		// Independent recursive halves — the spawn sites of Figure 4.9.
		fb.Call(fft, ir.V(lo), ir.V(half))
		fb.Call(fft, ir.Add(ir.V(lo), ir.V(half)), ir.V(half))
		comb := fb.For("j", ir.CI(0), ir.V(half), ir.CI(1), func(j *ir.Var) {
			a := ir.Add(ir.V(lo), ir.V(j))
			bidx := ir.Add(ir.Add(ir.V(lo), ir.V(half)), ir.V(j))
			fb.Set(er, ir.Add(ir.At(re, a), ir.At(re, bidx)))
			fb.Set(ei, ir.Sub(ir.At(im, a), ir.At(im, bidx)))
			fb.SetAt(re, a, ir.Mul(ir.V(er), ir.CF(0.5)))
			fb.SetAt(im, bidx, ir.Mul(ir.V(ei), ir.CF(0.5)))
		})
		t.DOALL = append(t.DOALL, comb)
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, fft)

	mb := b.Func("main")
	fillRand(mb, re, n, &t)
	fillRand(mb, im, n, &t)
	mb.Call(fft, ir.CI(0), ir.CI(int64(n)))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildStrassen models the seven independent recursive block
// multiplications of Strassen's algorithm.
func buildStrassen(scale int) *Program {
	dim := 16
	if scale > 1 {
		dim = 24
	}
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("strassen")
	a := b.GlobalArray("A", ir.F64, dim*dim)
	bm := b.GlobalArray("B", ir.F64, dim*dim)
	cm := b.GlobalArray("C", ir.F64, dim*dim)

	mul := b.Forward("block_mul", false)
	fb := b.DefineForward(mul)
	ro := fb.Param("ro", ir.F64)
	co := fb.Param("co", ir.F64)
	sz := fb.Param("sz", ir.F64)
	s := fb.Local("s", ir.F64)
	fb.IfElse(ir.Le(ir.V(sz), ir.CI(4)), func() {
		rows := fb.For("i", ir.CI(0), ir.V(sz), ir.CI(1), func(i *ir.Var) {
			cols := fb.For("j", ir.CI(0), ir.V(sz), ir.CI(1), func(j *ir.Var) {
				fb.Set(s, ir.CF(0))
				inner := fb.For("kk", ir.CI(0), ir.V(sz), ir.CI(1), func(kk *ir.Var) {
					ai := ir.Add(ir.Mul(ir.Add(ir.V(ro), ir.V(i)), ir.CI(int64(dim))),
						ir.Add(ir.V(co), ir.V(kk)))
					bi := ir.Add(ir.Mul(ir.Add(ir.V(ro), ir.V(kk)), ir.CI(int64(dim))),
						ir.Add(ir.V(co), ir.V(j)))
					fb.Set(s, ir.Add(ir.V(s), ir.Mul(ir.At(a, ai), ir.At(bm, bi))))
				})
				t.DOALL = append(t.DOALL, inner)
				ci := ir.Add(ir.Mul(ir.Add(ir.V(ro), ir.V(i)), ir.CI(int64(dim))),
					ir.Add(ir.V(co), ir.V(j)))
				fb.SetAt(cm, ci, ir.V(s))
			})
			t.DOALL = append(t.DOALL, cols)
		})
		t.DOALL = append(t.DOALL, rows)
	}, func() {
		// Seven independent sub-multiplications (M1..M7).
		h := fb.Local("h", ir.F64)
		fb.Set(h, ir.Floor(ir.Div(ir.V(sz), ir.CI(2))))
		fb.Call(mul, ir.V(ro), ir.V(co), ir.V(h))
		fb.Call(mul, ir.Add(ir.V(ro), ir.V(h)), ir.V(co), ir.V(h))
		fb.Call(mul, ir.V(ro), ir.Add(ir.V(co), ir.V(h)), ir.V(h))
		fb.Call(mul, ir.Add(ir.V(ro), ir.V(h)), ir.Add(ir.V(co), ir.V(h)), ir.V(h))
		fb.Call(mul, ir.V(ro), ir.V(co), ir.V(h))
		fb.Call(mul, ir.Add(ir.V(ro), ir.V(h)), ir.V(co), ir.V(h))
		fb.Call(mul, ir.V(ro), ir.Add(ir.V(co), ir.V(h)), ir.V(h))
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, mul)

	mb := b.Func("main")
	fillRand(mb, a, dim*dim, &t)
	fillRand(mb, bm, dim*dim, &t)
	mb.Call(mul, ir.CI(0), ir.CI(0), ir.CI(int64(dim)))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildSparseLU models blocked LU decomposition: per elimination step, the
// diagonal factorization is sequential, the panel updates and the interior
// update are DOALL task loops.
func buildSparseLU(scale int) *Program {
	nb := 6
	bs := 8
	if scale > 1 {
		nb = 8
	}
	dim := nb * bs
	t := Truth{SeqFraction: 0.08}
	b := ir.NewBuilder("sparselu")
	m := b.GlobalArray("M", ir.F64, dim*dim)
	fb := b.Func("main")
	fillRand(fb, m, dim*dim, &t)
	outer := fb.For("kk", ir.CI(0), ir.CI(int64(nb)), ir.CI(1), func(kk *ir.Var) {
		// lu0: factor the diagonal block (sequential recurrence).
		diag := fb.For("i", ir.CI(1), ir.CI(int64(bs)), ir.CI(1), func(i *ir.Var) {
			di := ir.Add(ir.Mul(ir.Add(ir.Mul(ir.V(kk), ir.CI(int64(bs))), ir.V(i)),
				ir.CI(int64(dim))), ir.Add(ir.Mul(ir.V(kk), ir.CI(int64(bs))), ir.V(i)))
			prev := ir.Sub(di, ir.CI(int64(dim+1)))
			fb.SetAt(m, di, ir.Sub(ir.At(m, di),
				ir.Mul(ir.CF(0.1), ir.At(m, prev))))
		})
		t.Seq = append(t.Seq, diag)
		// fwd/bdiv: independent panel blocks — the BOTS task loop.
		panel := fb.For("jj", ir.Add(ir.V(kk), ir.CI(1)), ir.CI(int64(nb)), ir.CI(1),
			func(jj *ir.Var) {
				inner := fb.For("i", ir.CI(0), ir.CI(int64(bs)), ir.CI(1), func(i *ir.Var) {
					idx := ir.Add(ir.Mul(ir.Add(ir.Mul(ir.V(kk), ir.CI(int64(bs))), ir.V(i)),
						ir.CI(int64(dim))), ir.Add(ir.Mul(ir.V(jj), ir.CI(int64(bs))), ir.V(i)))
					dg := ir.Add(ir.Mul(ir.Add(ir.Mul(ir.V(kk), ir.CI(int64(bs))), ir.V(i)),
						ir.CI(int64(dim))), ir.Add(ir.Mul(ir.V(kk), ir.CI(int64(bs))), ir.V(i)))
					fb.SetAt(m, idx, ir.Div(ir.At(m, idx), ir.Add(ir.At(m, dg), ir.CF(1.5))))
				})
				t.DOALL = append(t.DOALL, inner)
			})
		t.DOALL = append(t.DOALL, panel)
		if t.Hot == nil {
			t.Hot = panel
		}
	})
	t.Seq = append(t.Seq, outer)
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildHealth models the hierarchical healthcare simulation: villages form
// a tree; each level simulates its patients (DOALL loop) and recurses into
// child villages (independent tasks).
func buildHealth(scale int) *Program {
	depth := 4
	if scale > 1 {
		depth = 5
	}
	t := Truth{SeqFraction: 0.04}
	b := ir.NewBuilder("health")
	patients := b.GlobalArray("patients", ir.F64, 1024)
	total := b.Global("treated", ir.F64)

	sim := b.Forward("sim_village", false)
	fb := b.DefineForward(sim)
	level := fb.Param("level", ir.F64)
	id := fb.Param("id", ir.F64)
	fb.If(ir.Gt(ir.V(level), ir.CI(0)), func() {
		work := fb.For("p", ir.CI(0), ir.CI(16), ir.CI(1), func(p *ir.Var) {
			idx := ir.Mod(ir.Add(ir.Mul(ir.V(id), ir.CI(16)), ir.V(p)), ir.CI(1024))
			fb.SetAt(patients, idx, ir.Add(ir.At(patients, idx), ir.CF(0.25)))
			fb.Set(total, ir.Add(ir.V(total), ir.CF(1)))
		})
		t.DOALL = append(t.DOALL, work)
		// Two child villages: independent recursive tasks.
		fb.Call(sim, ir.Sub(ir.V(level), ir.CI(1)), ir.Mul(ir.V(id), ir.CI(2)))
		fb.Call(sim, ir.Sub(ir.V(level), ir.CI(1)),
			ir.Add(ir.Mul(ir.V(id), ir.CI(2)), ir.CI(1)))
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, sim)

	mb := b.Func("main")
	mb.Set(total, ir.CF(0))
	fillRand(mb, patients, 1024, &t)
	mb.Call(sim, ir.CI(int64(depth)), ir.CI(1))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildFloorplan models branch-and-bound placement: a candidate loop with
// a recursive call per feasible candidate and a best-cost min-reduction.
func buildFloorplan(scale int) *Program {
	depth := 6
	if scale > 1 {
		depth = 7
	}
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("floorplan")
	best := b.Global("best", ir.F64)
	area := b.GlobalArray("area", ir.F64, 16)

	place := b.Forward("add_cell", false)
	fb := b.DefineForward(place)
	lvl := fb.Param("level", ir.F64)
	cost := fb.Param("cost", ir.F64)
	est := fb.Local("est", ir.F64)
	fb.IfElse(ir.Le(ir.V(lvl), ir.CI(0)), func() {
		fb.Set(best, ir.Min(ir.V(best), ir.V(cost)))
	}, func() {
		cand := fb.For("c", ir.CI(0), ir.CI(3), ir.CI(1), func(c *ir.Var) {
			// Evaluate the candidate placement: a small area scan.
			fb.Set(est, ir.CF(0))
			eval := fb.For("a", ir.CI(0), ir.CI(16), ir.CI(1), func(a *ir.Var) {
				fb.Set(est, ir.Add(ir.V(est), ir.At(area, ir.V(a))))
			})
			t.DOALL = append(t.DOALL, eval)
			// Prune only clearly hopeless candidates: cost grows slowly,
			// so most of the tree is explored (branch-and-bound with a
			// weak bound, as in the BOTS input).
			fb.If(ir.Lt(ir.Add(ir.V(cost), ir.Mul(ir.V(c), ir.CF(0.01))),
				ir.Add(ir.V(best), ir.CI(2))), func() {
				fb.Call(place, ir.Sub(ir.V(lvl), ir.CI(1)),
					ir.Add(ir.V(cost), ir.Mul(ir.V(c), ir.CF(0.01))))
			})
		})
		_ = cand
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, place)

	mb := b.Func("main")
	mb.Set(best, ir.CF(1e18))
	fillRand(mb, area, 16, &t)
	mb.Call(place, ir.CI(int64(depth)), ir.CF(0))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildAlignment models pairwise sequence alignment: all pairs are
// independent (DOALL task loop); the inner dynamic-programming recurrence
// is sequential.
func buildAlignment(scale int) *Program {
	pairs := sc(scale, 20)
	seqLen := 24
	t := Truth{SeqFraction: 0.03}
	b := ir.NewBuilder("alignment")
	seqs := b.GlobalArray("seqs", ir.F64, pairs*seqLen)
	scores := b.GlobalArray("scores", ir.F64, pairs)
	fb := b.Func("main")
	acc := fb.Local("acc", ir.F64)
	fillRand(fb, seqs, pairs*seqLen, &t)
	outer := fb.For("p", ir.CI(0), ir.CI(int64(pairs)), ir.CI(1), func(p *ir.Var) {
		fb.Set(acc, ir.CF(0))
		dp := fb.For("i", ir.CI(1), ir.CI(int64(seqLen)), ir.CI(1), func(i *ir.Var) {
			idx := ir.Add(ir.Mul(ir.V(p), ir.CI(int64(seqLen))), ir.V(i))
			// acc depends on its previous value and the sequence element:
			// the classic DP recurrence.
			fb.Set(acc, ir.Max(ir.V(acc),
				ir.Add(ir.Mul(ir.V(acc), ir.CF(0.5)), ir.At(seqs, idx))))
		})
		t.Seq = append(t.Seq, dp)
		fb.SetAt(scores, ir.V(p), ir.V(acc))
	})
	t.DOALL = append(t.DOALL, outer)
	t.Hot = outer
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildUTS models unbalanced tree search: each node spawns a
// pseudo-random number of independent children; visited nodes are counted
// by reduction.
func buildUTS(scale int) *Program {
	depth := 5
	if scale > 1 {
		depth = 6
	}
	t := Truth{SeqFraction: 0.03}
	b := ir.NewBuilder("uts")
	count := b.Global("nodes", ir.F64)

	visit := b.Forward("visit", false)
	fb := b.DefineForward(visit)
	lvl := fb.Param("level", ir.F64)
	seed := fb.Param("seed", ir.F64)
	kids := fb.Local("kids", ir.F64)
	fb.Set(count, ir.Add(ir.V(count), ir.CF(1)))
	fb.If(ir.Gt(ir.V(lvl), ir.CI(0)), func() {
		fb.Set(kids, ir.Add(ir.CI(1), ir.Mod(ir.Mul(ir.V(seed), ir.CI(7)), ir.CI(3))))
		spawnLoop := fb.For("c", ir.CI(0), ir.V(kids), ir.CI(1), func(c *ir.Var) {
			fb.Call(visit, ir.Sub(ir.V(lvl), ir.CI(1)),
				ir.Add(ir.Mul(ir.V(seed), ir.CI(3)), ir.V(c)))
		})
		t.DOALL = append(t.DOALL, spawnLoop)
	})
	fb.Done()
	t.TaskFuncs = append(t.TaskFuncs, visit)

	mb := b.Func("main")
	mb.Set(count, ir.CF(0))
	mb.Call(visit, ir.CI(int64(depth)), ir.CI(1))
	mainFn := mb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}
