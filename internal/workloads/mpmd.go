package workloads

import "discopop/internal/ir"

// MPMD-style applications (Section 4.4.4): PARSEC-like pipelines, a
// libVorbis-like decoder, and the FaceDetection application of Figures
// 4.10/4.11, whose per-frame task graph contains independent cascade
// detectors.

func init() {
	register("facedetection", "MPMD", buildFaceDetection)
	register("libvorbis", "MPMD", buildVorbis)
	register("ferret", "MPMD", buildFerret)
	register("dedup", "MPMD", buildDedup)
	register("blackscholes", "MPMD", buildBlackscholes)
	register("swaptions", "MPMD", buildSwaptions)
}

// buildFaceDetection models the Figure 4.10 workflow: per frame, a
// preprocessing stage feeds three independent cascade detectors over
// sliding windows (DOALL), whose results a merge stage combines. The
// detectors are the MPMD tasks; the window loops supply the scaling that
// yields the Figure 4.11 curve.
func buildFaceDetection(scale int) *Program {
	frames := sc(scale, 4)
	const (
		imgSz   = 160
		windows = 150
		taps    = 6
	)
	t := Truth{SeqFraction: 0.07}
	b := ir.NewBuilder("facedetection")
	img := b.GlobalArray("img", ir.F64, imgSz)
	pre := b.GlobalArray("pre", ir.F64, imgSz)
	r1 := b.GlobalArray("res1", ir.F64, windows)
	r2 := b.GlobalArray("res2", ir.F64, windows)
	r3 := b.GlobalArray("res3", ir.F64, windows)
	faces := b.Global("faces", ir.F64)

	// Each cascade evaluates `taps` Haar-like features per sliding window
	// — the dominant work, as in the real application.
	cascade := func(name string, res *ir.Var, threshold float64) *ir.Func {
		cb := b.Func(name)
		acc := cb.Local("acc", ir.F64)
		wloop := cb.For("w", ir.CI(0), ir.CI(int64(windows)), ir.CI(1), func(w *ir.Var) {
			cb.Set(acc, ir.CF(0))
			feat := cb.For("t", ir.CI(0), ir.CI(taps), ir.CI(1), func(tap *ir.Var) {
				cb.Set(acc, ir.Add(ir.V(acc), ir.At(pre,
					ir.Mod(ir.Add(ir.Mul(ir.V(w), ir.CI(3)), ir.V(tap)), ir.CI(imgSz)))))
			})
			t.DOALL = append(t.DOALL, feat)
			cb.SetAt(res, ir.V(w), ir.Gt(ir.V(acc), ir.CF(threshold*taps)))
		})
		t.DOALL = append(t.DOALL, wloop)
		return cb.Done()
	}
	c1 := cascade("cascade1", r1, 0.40)
	c2 := cascade("cascade2", r2, 0.45)
	c3 := cascade("cascade3", r3, 0.50)

	fb := b.Func("main")
	fillRand(fb, img, imgSz, &t)
	frameLoop := fb.For("f", ir.CI(0), ir.CI(int64(frames)), ir.CI(1), func(f *ir.Var) {
		// Preprocess: integral-image style smoothing (sequential prefix,
		// a small fraction of the per-frame work).
		prep := fb.For("i", ir.CI(1), ir.CI(imgSz), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(pre, ir.V(i), ir.Add(ir.At(img, ir.V(i)),
				ir.Mul(ir.CF(0.5), ir.At(pre, ir.Sub(ir.V(i), ir.CI(1))))))
		})
		t.Seq = append(t.Seq, prep)
		// Three independent detectors: the MPMD width.
		fb.Call(c1)
		fb.Call(c2)
		fb.Call(c3)
		// Merge votes.
		merge := fb.For("w", ir.CI(0), ir.CI(int64(windows)), ir.CI(1), func(w *ir.Var) {
			fb.Set(faces, ir.Add(ir.V(faces), ir.Mul(ir.At(r1, ir.V(w)),
				ir.Mul(ir.At(r2, ir.V(w)), ir.At(r3, ir.V(w))))))
		})
		t.DOALL = append(t.DOALL, merge)
		// Next frame differs slightly: sequential frame chain.
		fb.SetAt(img, ir.Mod(ir.V(f), ir.CI(imgSz)), ir.V(faces))
	})
	t.DOACROSS = append(t.DOACROSS, frameLoop)
	t.Hot = frameLoop
	t.TaskFuncs = append(t.TaskFuncs, fb.F())
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildVorbis models the audio decoder: packet parsing is sequential,
// per-channel MDCT synthesis is independent (MPMD tasks), and overlap-add
// carries state between packets.
func buildVorbis(scale int) *Program {
	packets := sc(scale, 10)
	samples := 64
	t := Truth{SeqFraction: 0.1}
	b := ir.NewBuilder("libvorbis")
	stream := b.GlobalArray("stream", ir.F64, packets*4)
	left := b.GlobalArray("left", ir.F64, samples)
	right := b.GlobalArray("right", ir.F64, samples)
	out := b.GlobalArray("pcm", ir.F64, samples)
	pos := b.Global("pos", ir.F64)

	synth := func(name string, ch *ir.Var, phase float64) *ir.Func {
		sb := b.Func(name)
		coefP := sb.Param("coef", ir.F64)
		l := sb.For("s", ir.CI(0), ir.CI(int64(samples)), ir.CI(1), func(s *ir.Var) {
			sb.SetAt(ch, ir.V(s), ir.Mul(ir.V(coefP), ir.Sin(ir.Add(ir.Mul(ir.V(s),
				ir.CF(0.098)), ir.CF(phase)))))
		})
		t.DOALL = append(t.DOALL, l)
		return sb.Done()
	}
	sl := synth("synth_left", left, 0)
	sr := synth("synth_right", right, 1.57)

	fb := b.Func("main")
	coef := fb.Local("coef", ir.F64)
	fillRand(fb, stream, packets*4, &t)
	fb.Set(pos, ir.CF(0))
	pktLoop := fb.For("p", ir.CI(0), ir.CI(int64(packets)), ir.CI(1), func(p *ir.Var) {
		// Parse: advances the stream cursor (carried).
		fb.Set(coef, ir.At(stream, ir.Mod(ir.V(pos), ir.CI(int64(packets*4)))))
		fb.Set(pos, ir.Add(ir.V(pos), ir.Add(ir.CF(1), ir.Floor(ir.Mul(ir.V(coef), ir.CI(3))))))
		// Two independent channel syntheses: MPMD tasks.
		fb.Call(sl, ir.V(coef))
		fb.Call(sr, ir.V(coef))
		// Overlap-add into the output window (carried via out).
		ola := fb.For("s", ir.CI(0), ir.CI(int64(samples)), ir.CI(1), func(s *ir.Var) {
			fb.SetAt(out, ir.V(s), ir.Add(ir.Mul(ir.At(out, ir.V(s)), ir.CF(0.5)),
				ir.Add(ir.At(left, ir.V(s)), ir.At(right, ir.V(s)))))
		})
		t.DOALL = append(t.DOALL, ola)
	})
	t.DOACROSS = append(t.DOACROSS, pktLoop)
	t.Hot = pktLoop
	t.TaskFuncs = append(t.TaskFuncs, fb.F())
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildFerret models the similarity-search pipeline: segment, extract,
// index, and rank stages per query, each writing its own buffer.
func buildFerret(scale int) *Program {
	queries := sc(scale, 12)
	feat := 32
	t := Truth{SeqFraction: 0.05}
	b := ir.NewBuilder("ferret")
	imgs := b.GlobalArray("imgs", ir.F64, queries*feat)
	segBuf := b.GlobalArray("seg", ir.F64, feat)
	featBuf := b.GlobalArray("feat", ir.F64, feat)
	candBuf := b.GlobalArray("cand", ir.F64, feat)
	ranks := b.GlobalArray("ranks", ir.F64, queries)

	fb := b.Func("main")
	acc := fb.Local("acc", ir.F64)
	fillRand(fb, imgs, queries*feat, &t)
	qLoop := fb.For("q", ir.CI(0), ir.CI(int64(queries)), ir.CI(1), func(q *ir.Var) {
		seg := fb.For("i", ir.CI(0), ir.CI(int64(feat)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(segBuf, ir.V(i), ir.Mul(ir.At(imgs,
				ir.Add(ir.Mul(ir.V(q), ir.CI(int64(feat))), ir.V(i))), ir.CF(0.9)))
		})
		ext := fb.For("i", ir.CI(0), ir.CI(int64(feat)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(featBuf, ir.V(i), ir.Sqrt(ir.At(segBuf, ir.V(i))))
		})
		idx := fb.For("i", ir.CI(0), ir.CI(int64(feat)), ir.CI(1), func(i *ir.Var) {
			fb.SetAt(candBuf, ir.V(i), ir.Mul(ir.At(featBuf, ir.V(i)), ir.CF(1.1)))
		})
		t.DOALL = append(t.DOALL, seg, ext, idx)
		fb.Set(acc, ir.CF(0))
		rk := fb.For("i", ir.CI(0), ir.CI(int64(feat)), ir.CI(1), func(i *ir.Var) {
			fb.Set(acc, ir.Add(ir.V(acc), ir.At(candBuf, ir.V(i))))
		})
		t.DOALL = append(t.DOALL, rk)
		fb.SetAt(ranks, ir.V(q), ir.V(acc))
	})
	// Queries are independent: the outer loop is itself DOALL, and the
	// four stages form the pipeline the PARSEC version implements.
	t.DOALL = append(t.DOALL, qLoop)
	t.Hot = qLoop
	t.TaskFuncs = append(t.TaskFuncs, fb.F())
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildDedup models the deduplication pipeline: chunking advances a
// cursor (carried), hashing and compression are independent per chunk, and
// the ordered writer is sequential.
func buildDedup(scale int) *Program {
	chunks := sc(scale, 30)
	t := Truth{SeqFraction: 0.12}
	b := ir.NewBuilder("dedup")
	data := b.GlobalArray("data", ir.F64, chunks*8)
	hash := b.GlobalArray("hash", ir.F64, chunks)
	comp := b.GlobalArray("comp", ir.F64, chunks)
	written := b.Global("written", ir.F64)
	cursor := b.Global("cursor", ir.F64)

	fb := b.Func("main")
	h := fb.Local("h", ir.F64)
	fillRand(fb, data, chunks*8, &t)
	fb.Set(cursor, ir.CF(0))
	fb.Set(written, ir.CF(0))
	pipe := fb.For("c", ir.CI(0), ir.CI(int64(chunks)), ir.CI(1), func(c *ir.Var) {
		// Chunk: cursor advance is the carried stage.
		fb.Set(h, ir.At(data, ir.Mod(ir.V(cursor), ir.CI(int64(chunks*8)))))
		fb.Set(cursor, ir.Add(ir.V(cursor), ir.Add(ir.CF(7), ir.Floor(ir.V(h)))))
		// Hash + compress: independent per chunk.
		fb.SetAt(hash, ir.V(c), ir.Mod(ir.Mul(ir.V(h), ir.CF(2654435761)), ir.CF(4294967296)))
		fb.SetAt(comp, ir.V(c), ir.Mul(ir.At(hash, ir.V(c)), ir.CF(0.5)))
		// Ordered write: carried through written.
		fb.Set(written, ir.Add(ir.V(written), ir.At(comp, ir.V(c))))
	})
	t.DOACROSS = append(t.DOACROSS, pipe)
	t.Hot = pipe
	t.TaskFuncs = append(t.TaskFuncs, fb.F())
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildBlackscholes is the classic DOALL pricing loop.
func buildBlackscholes(scale int) *Program {
	opts := sc(scale, 1200)
	t := Truth{SeqFraction: 0.01}
	b := ir.NewBuilder("blackscholes")
	spot := b.GlobalArray("spot", ir.F64, opts)
	strike := b.GlobalArray("strike", ir.F64, opts)
	price := b.GlobalArray("price", ir.F64, opts)
	fb := b.Func("main")
	d1 := fb.Local("d1", ir.F64)
	fillRand(fb, spot, opts, &t)
	fillRand(fb, strike, opts, &t)
	hot := fb.For("i", ir.CI(0), ir.CI(int64(opts)), ir.CI(1), func(i *ir.Var) {
		fb.Set(d1, ir.Div(ir.Log(ir.Div(ir.Add(ir.At(spot, ir.V(i)), ir.CF(0.01)),
			ir.Add(ir.At(strike, ir.V(i)), ir.CF(0.01)))), ir.CF(0.3)))
		fb.SetAt(price, ir.V(i), ir.Mul(ir.At(spot, ir.V(i)),
			ir.Exp(ir.Neg(ir.Mul(ir.V(d1), ir.V(d1))))))
	})
	t.DOALL = append(t.DOALL, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}

// buildSwaptions is a Monte-Carlo DOALL loop with per-swaption
// accumulation.
func buildSwaptions(scale int) *Program {
	n := sc(scale, 40)
	trials := 25
	t := Truth{SeqFraction: 0.02}
	b := ir.NewBuilder("swaptions")
	prices := b.GlobalArray("prices", ir.F64, n)
	fb := b.Func("main")
	sum := fb.Local("sum", ir.F64)
	hot := fb.For("s", ir.CI(0), ir.CI(int64(n)), ir.CI(1), func(s *ir.Var) {
		fb.Set(sum, ir.CF(0))
		mc := fb.For("tr", ir.CI(0), ir.CI(int64(trials)), ir.CI(1), func(tr *ir.Var) {
			fb.Set(sum, ir.Add(ir.V(sum), ir.Exp(ir.Neg(ir.Rnd()))))
		})
		t.DOALL = append(t.DOALL, mc)
		fb.SetAt(prices, ir.V(s), ir.Div(ir.V(sum), ir.CI(int64(trials))))
	})
	t.DOALL = append(t.DOALL, hot)
	t.Hot = hot
	mainFn := fb.Done()
	return &Program{M: b.Build(mainFn), Truth: t}
}
