package server

import (
	"log"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discopop/internal/bytecode"
	"discopop/internal/metrics"
	"discopop/internal/pipeline"
)

// handleMetrics renders the Prometheus text exposition from fresh
// snapshots: the engine's fleet counters (safe to take while jobs are in
// flight), the profile cache's counters, and the shared arena pool's
// checkout counters. Nothing here keeps metric state of its own — a
// scrape is a pure read of the subsystems' accumulators.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	hits, misses := s.cache.Stats()

	w.Header().Set("Content-Type", metrics.ContentType)
	e := metrics.NewEncoder(w)

	// Job flow. Accepted leads Submitted by the jobs still sitting in the
	// service's pending queue; inflight covers both, so accepted-but-not-
	// yet-engine-submitted work is never invisible to a scrape.
	e.Counter("dp_jobs_accepted_total", "Submissions acknowledged with 202.",
		metrics.V(float64(s.accepted.Load())))
	e.Counter("dp_jobs_submitted_total", "Jobs handed to the engine.",
		metrics.V(float64(st.Submitted)))
	e.Counter("dp_jobs_completed_total", "Jobs completed (including failures).",
		metrics.V(float64(st.Jobs)))
	e.Counter("dp_jobs_failed_total", "Jobs that finished with an error.",
		metrics.V(float64(st.Failed)))
	e.Gauge("dp_jobs_pending", "Accepted jobs not yet handed to the engine.",
		metrics.V(float64(len(s.pending))))
	e.Counter("dp_jobs_rejected_total", "Submissions rejected before the engine, by reason.",
		labeledCounters(&s.rejected, "reason")...)
	e.Counter("dp_jobs_deduped_total",
		"Submissions answered from the idempotency index instead of re-running.",
		metrics.V(float64(s.idemReplays.Load())))
	e.Gauge("dp_jobs_inflight", "Jobs accepted but not yet completed.",
		metrics.V(float64(s.accepted.Load())-float64(st.Jobs)))
	e.Histogram("dp_queue_latency_seconds",
		"Per-job latency from Submit to worker pickup.", latencyHistogram(st.QueueLat))

	// Analysis volume.
	e.Counter("dp_instrs_total", "IR statements executed under instrumentation.",
		metrics.V(float64(st.Instrs)))
	e.Counter("dp_deps_total", "Distinct dependences summed over completed jobs.",
		metrics.V(float64(st.Deps)))
	e.Counter("dp_accesses_total", "Profiled memory accesses.",
		metrics.V(float64(st.Accesses)))
	e.Counter("dp_store_bytes_total", "Summed access-status store footprint.",
		metrics.V(float64(st.StoreBytes)))
	e.Counter("dp_busy_seconds_total", "Summed per-job wall time across workers.",
		metrics.V(st.Busy.Seconds()))
	e.Gauge("dp_fleet_distinct_deps",
		"Distinct dependences in the fleet-level accumulator.",
		metrics.V(float64(st.DistinctDeps)))
	stages := make([]string, 0, len(st.StageTime))
	for name := range st.StageTime {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	samples := make([]metrics.Sample, len(stages))
	for i, name := range stages {
		samples[i] = metrics.LV(st.StageTime[name].Seconds(), metrics.L("stage", name))
	}
	e.Counter("dp_stage_seconds_total", "Summed wall time per pipeline stage.", samples...)

	// Profile cache.
	e.Counter("dp_profile_cache_hits_total", "Profile-stage cache hits.",
		metrics.V(float64(hits)))
	e.Counter("dp_profile_cache_misses_total", "Profile-stage cache misses.",
		metrics.V(float64(misses)))
	e.Counter("dp_profile_cache_evictions_total", "Entries dropped by the LRU bound.",
		metrics.V(float64(s.cache.Evictions())))
	e.Gauge("dp_profile_cache_entries", "Live profile-cache entries.",
		metrics.V(float64(s.cache.Len())))

	// Bytecode compile cache (process-wide; interp.New compiles through
	// bytecode.Shared unless a job opts into the tree walker).
	chits, cmisses, centries := bytecode.Shared.Stats()
	e.Counter("dp_compile_cache_hits_total", "Bytecode compile-cache hits.",
		metrics.V(float64(chits)))
	e.Counter("dp_compile_cache_misses_total", "Bytecode compile-cache misses (programs compiled).",
		metrics.V(float64(cmisses)))
	e.Counter("dp_compile_cache_entries_total", "Live compile-cache entries.",
		metrics.V(float64(centries)))
	e.Histogram("dp_compile_seconds",
		"Per-job bytecode compile time (compiling jobs only).", latencyHistogram(st.CompileLat))

	// Arena pool (process-wide).
	e.Counter("dp_pool_gets_total", "Arena spaces checked out of the shared pool.",
		metrics.V(float64(st.Pool.Gets)))
	e.Counter("dp_pool_puts_total", "Arena spaces returned to the shared pool.",
		metrics.V(float64(st.Pool.Puts)))
	e.Counter("dp_pool_fresh_total",
		"Pool checkouts that allocated a fresh arena (recycle misses).",
		metrics.V(float64(st.Pool.Fresh)))

	// Remote proxying (coordinator mode only): per-peer counters of the
	// fleet client, plus the local-fallback count.
	if s.proxy != nil {
		peers := s.proxy.Client.Stats()
		reqs := make([]metrics.Sample, len(peers))
		fails := make([]metrics.Sample, len(peers))
		jobs := make([]metrics.Sample, len(peers))
		healthy := make([]metrics.Sample, len(peers))
		for i, p := range peers {
			l := metrics.L("peer", p.URL)
			reqs[i] = metrics.LV(float64(p.Requests), l)
			fails[i] = metrics.LV(float64(p.Failures), l)
			jobs[i] = metrics.LV(float64(p.Jobs), l)
			h := 0.0
			if p.Healthy {
				h = 1
			}
			healthy[i] = metrics.LV(h, l)
		}
		e.Counter("dp_peer_requests_total", "Analysis submissions attempted per peer.", reqs...)
		e.Counter("dp_peer_failures_total", "Transport failures per peer.", fails...)
		e.Counter("dp_peer_jobs_total", "Analyses completed per peer.", jobs...)
		e.Gauge("dp_peer_healthy", "1 while the peer is outside its failure cooldown.", healthy...)
		e.Counter("dp_remote_fallbacks_total",
			"Jobs analyzed locally because no peer was available.",
			metrics.V(float64(s.proxy.Fallbacks())))
	}

	// Durability: the job journal's own accounting, so operators can watch
	// append/sync volume and spot replay truncation after a crash.
	if s.journal != nil {
		js := s.journal.Stats()
		e.Counter("dp_journal_appends_total", "Records appended to the job journal.",
			metrics.V(float64(js.Appends)))
		e.Counter("dp_journal_bytes_total", "Bytes appended to the job journal.",
			metrics.V(float64(js.Bytes)))
		e.Counter("dp_journal_syncs_total", "Batched fsyncs of the job journal.",
			metrics.V(float64(js.Syncs)))
		e.Gauge("dp_journal_replayed_records", "Records recovered at boot from the journal.",
			metrics.V(float64(js.Replayed)))
		e.Gauge("dp_journal_truncated_bytes", "Torn-tail bytes discarded at boot.",
			metrics.V(float64(js.Truncated)))
		e.Counter("dp_journal_append_errors_total",
			"Job transitions that failed to reach the journal (durability degraded).",
			metrics.V(float64(s.journalAppendErrs.Load())))
		e.Counter("dp_journal_compactions_total",
			"Snapshot+truncate rotations of the job journal.",
			metrics.V(float64(js.Compactions)))
		e.Gauge("dp_journal_live_records",
			"Records in the current log generation (what the next boot replays).",
			metrics.V(float64(js.LiveRecords)))
		e.Gauge("dp_journal_size_bytes", "Current journal file size.",
			metrics.V(float64(js.SizeBytes)))
		e.Gauge("dp_journal_spill_files",
			"Live spill files holding results too large for one record.",
			metrics.V(float64(js.SpillFiles)))
		e.Gauge("dp_journal_spill_bytes", "Summed size of the live spill files.",
			metrics.V(float64(js.SpillBytes)))
	}

	// Service.
	e.Gauge("dp_uptime_seconds", "Seconds since the service started.",
		metrics.V(time.Since(s.start).Seconds()))
	e.Counter("dp_http_requests_total", "HTTP requests by endpoint.",
		labeledCounters(&s.httpReqs, "endpoint")...)

	// Go runtime, straight off the runtime's own accumulators — enough to
	// spot goroutine leaks, heap growth, and GC pressure without attaching
	// a profiler. ReadMemStats is a brief stop-the-world, which a scrape
	// cadence (seconds) amortizes to nothing.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Gauge("dp_go_goroutines", "Live goroutines.",
		metrics.V(float64(runtime.NumGoroutine())))
	e.Gauge("dp_go_heap_alloc_bytes", "Bytes of live heap objects.",
		metrics.V(float64(ms.HeapAlloc)))
	e.Counter("dp_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		metrics.V(float64(ms.PauseTotalNs)/1e9))
	e.Gauge("dp_build_info", "Build metadata carried in labels; the value is always 1.",
		metrics.LV(1, metrics.L("goversion", runtime.Version())))

	if err := e.Err(); err != nil {
		// Headers are long gone; all we can do is log the malformed scrape.
		log.Printf("metrics: %v", err)
	}
}

// labeledCounters snapshots a sync.Map of name -> *atomic.Int64 into
// label-sorted samples.
func labeledCounters(m *sync.Map, label string) []metrics.Sample {
	var names []string
	m.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	samples := make([]metrics.Sample, 0, len(names))
	for _, name := range names {
		c, _ := m.Load(name)
		samples = append(samples,
			metrics.LV(float64(c.(*atomic.Int64).Load()), metrics.L(label, name)))
	}
	return samples
}

// latencyHistogram converts the engine's fixed-bucket LatencyHist into the
// encoder's per-bucket form, bounds in seconds.
func latencyHistogram(h pipeline.LatencyHist) metrics.Histogram {
	bounds := h.BucketBounds()
	out := metrics.Histogram{
		UpperBounds: make([]float64, len(bounds)),
		Counts:      make([]int64, len(h.Buckets)),
		Sum:         h.Sum.Seconds(),
	}
	for i, b := range bounds {
		out.UpperBounds[i] = b.Seconds()
	}
	copy(out.Counts, h.Buckets[:])
	return out
}
