package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"discopop/internal/journal"
	"discopop/internal/metrics"
)

// analyzeWith submits one analysis with optional bearer token and
// idempotency key, returning the raw response and the decoded JSON body.
func analyzeWith(t *testing.T, base, body, token, idemKey string) (*http.Response, map[string]string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]string{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getWith(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAuth covers the bearer-token gate: every /v1 endpoint rejects
// missing and wrong tokens with 401 (counted under reason="auth"), valid
// tokens resolve to their client identity, and /healthz and /metrics stay
// open for probes and scrapers.
func TestAuth(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Tokens:  map[string]string{"tok-alice": "alice", "tok-bob": "bob"},
	})

	for _, url := range []string{
		ts.URL + "/v1/jobs", ts.URL + "/v1/workloads", ts.URL + "/v1/jobs/j000001",
	} {
		for _, token := range []string{"", "wrong-token"} {
			resp := getWith(t, url, token)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("GET %s token=%q: %d, want 401", url, token, resp.StatusCode)
			}
			if h := resp.Header.Get("WWW-Authenticate"); !strings.Contains(h, "Bearer") {
				t.Errorf("401 missing WWW-Authenticate challenge, got %q", h)
			}
		}
	}
	if resp, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated analyze: %d, want 401", resp.StatusCode)
	}

	// Open endpoints need no token even with auth enabled.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp := getWith(t, ts.URL+path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without token: %d, want 200", path, resp.StatusCode)
		}
	}

	// A valid token works end to end and the record carries its client.
	resp, out := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authenticated analyze: %d", resp.StatusCode)
	}
	jr := getWith(t, ts.URL+"/v1/jobs/"+out["id"]+"?wait=30s", "tok-bob")
	var view jobView
	if err := json.NewDecoder(jr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if view.State != jobDone {
		t.Fatalf("job state %q: %s", view.State, view.Error)
	}
	if view.Client != "alice" {
		t.Fatalf("job client %q, want alice", view.Client)
	}

	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_jobs_rejected_total", metrics.L("reason", rejectAuth)); n < 7 {
		t.Fatalf("auth rejections = %v, want >= 7", n)
	}
}

// TestRateLimit429 exhausts a client's submission bucket and checks the
// over-limit answer: 429, a positive Retry-After, the ratelimit reason
// label, and recovery once the bucket refills.
func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Quotas:  Quotas{SubmitRate: 20, SubmitBurst: 2},
	})

	accepted, limited := 0, 0
	var retryAfter string
	for i := 0; i < 6; i++ {
		resp, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", "")
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			limited++
			retryAfter = resp.Header.Get("Retry-After")
		default:
			t.Fatalf("submission %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if accepted < 2 || limited == 0 {
		t.Fatalf("accepted=%d limited=%d, want >=2 accepted and >0 limited", accepted, limited)
	}
	if n, err := strconv.Atoi(retryAfter); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", retryAfter)
	}
	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_jobs_rejected_total", metrics.L("reason", rejectRate)); int(n) != limited {
		t.Fatalf("ratelimit rejections metric = %v, want %d", n, limited)
	}

	// The bucket refills at 20/s; within a second the client is welcome
	// again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", "")
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered from the rate limit")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestModuleFootprintQuota rejects serialized-module payloads over the
// per-submission byte quota with 429 under reason="quota", while a small
// module on the same config passes.
func TestModuleFootprintQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Quotas:  Quotas{MaxModuleBytes: 64},
	})

	big := strings.Repeat("A", 128)
	resp, _ := analyzeWith(t, ts.URL, fmt.Sprintf(`{"module":%q}`, big), "", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized module: %d, want 429", resp.StatusCode)
	}
	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_jobs_rejected_total", metrics.L("reason", rejectQuota)); n != 1 {
		t.Fatalf("quota rejections = %v, want 1", n)
	}
	// Non-module submissions are untouched by the footprint quota.
	if resp, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("workload submission under module quota: %d", resp.StatusCode)
	}
}

// TestInstrQuotaDebt drives the post-paid instruction budget into debt and
// checks the client is then refused with reason="quota" until the budget
// refills.
func TestInstrQuotaDebt(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		// Tiny budget: one histogram run (thousands of instrs) overdraws it.
		Quotas: Quotas{InstrRate: 1, InstrBurst: 10},
	})

	id := postAnalyze(t, ts.URL, `{"workload":"histogram"}`)
	if v := waitJob(t, ts.URL, id); v.State != jobDone {
		t.Fatalf("first job state %q: %s", v.State, v.Error)
	}
	// The first job's spend settles on completion; the next submission must
	// see the debt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", "")
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("quota 429 Retry-After = %q", resp.Header.Get("Retry-After"))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never hit the instruction quota")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestIdempotencyKey submits the same logical job twice under one key and
// checks the retry is answered from the original record (same ID, replay
// header, dedupe counter) while different keys and different clients still
// get fresh jobs.
func TestIdempotencyKey(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Tokens:  map[string]string{"tok-alice": "alice", "tok-bob": "bob"},
	})

	resp1, out1 := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice", "key-1")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d", resp1.StatusCode)
	}
	resp2, out2 := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice", "key-1")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submission: %d", resp2.StatusCode)
	}
	if out2["id"] != out1["id"] {
		t.Fatalf("duplicate got job %s, want original %s", out2["id"], out1["id"])
	}
	if resp2.Header.Get("Idempotency-Replay") != "true" {
		t.Fatal("duplicate response missing Idempotency-Replay header")
	}

	// A different key, and the same key from another client, run fresh.
	_, out3 := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice", "key-2")
	if out3["id"] == out1["id"] {
		t.Fatal("different key deduped onto the original job")
	}
	_, out4 := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-bob", "key-1")
	if out4["id"] == out1["id"] {
		t.Fatal("another client's identical key deduped cross-tenant")
	}

	// Replaying after completion returns the settled record's state.
	waitAuthedDone(t, ts.URL, out1["id"], "tok-alice")
	resp5, out5 := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice", "key-1")
	if resp5.StatusCode != http.StatusAccepted || out5["id"] != out1["id"] {
		t.Fatalf("post-completion replay: %d id=%s", resp5.StatusCode, out5["id"])
	}
	if out5["state"] != jobDone {
		t.Fatalf("post-completion replay state %q, want done", out5["state"])
	}

	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_jobs_deduped_total"); n != 2 {
		t.Fatalf("dp_jobs_deduped_total = %v, want 2", n)
	}
	// An oversized key is a spec error, not a server-side truncation.
	respBig, _ := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "tok-alice",
		strings.Repeat("k", maxIdemKeyLen+1))
	if respBig.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized idempotency key: %d, want 400", respBig.StatusCode)
	}
}

func waitAuthedDone(t *testing.T, base, id, token string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp := getWith(t, base+"/v1/jobs/"+id+"?wait=5s", token)
		var v jobView
		err := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State != jobQueued {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still queued after 60s", id)
		}
	}
}

// TestJournalRestart is the acceptance scenario: run jobs against a
// journaled node, simulate a crash with an accepted-but-never-finished
// record in the log, and boot a fresh server on the same journal. The
// finished job must come back with its result, the in-flight one must be
// failed (interrupted), and the original idempotency key must dedupe onto
// the pre-restart record.
func TestJournalRestart(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"

	// First incarnation: one finished job under an idempotency key.
	s1, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	resp, out := analyzeWith(t, ts1.URL, `{"workload":"histogram"}`, "", "restart-key")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission: %d", resp.StatusCode)
	}
	doneID := out["id"]
	if v := waitJob(t, ts1.URL, doneID); v.State != jobDone {
		t.Fatalf("job state %q: %s", v.State, v.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts1.Close()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash tail: a job accepted (and started) whose finish
	// never hit the disk.
	jnl, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	crashID := "j000042"
	if err := jnl.Append(journal.Record{
		Op: journal.OpAccepted, ID: crashID, Time: time.Now(),
		Workload: "CG", Scale: 2, Client: anonClient,
	}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(journal.Record{Op: journal.OpStarted, ID: crashID, Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation on the same journal.
	_, ts2 := newTestServer(t, Config{Workers: 1, JournalPath: path})

	// The finished job survives with its result.
	rr := getWith(t, ts2.URL+"/v1/jobs/"+doneID, "")
	var restored jobView
	if err := json.NewDecoder(rr.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if restored.State != jobDone || restored.Result == nil {
		t.Fatalf("restored job %s: state=%q result=%v", doneID, restored.State, restored.Result)
	}
	if restored.Result.Instrs <= 0 || len(restored.Result.Suggestions) == 0 {
		t.Fatalf("restored result is hollow: %+v", restored.Result)
	}

	// The interrupted job is terminal, failed, and long-polls answer
	// immediately (its doneCh must be closed after replay).
	cr := getWith(t, ts2.URL+"/v1/jobs/"+crashID+"?wait=10s", "")
	start := time.Now()
	var crashed jobView
	if err := json.NewDecoder(cr.Body).Decode(&crashed); err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("interrupted job blocked a long-poll for %s", waited)
	}
	if crashed.State != jobFailed || !strings.Contains(crashed.Error, "interrupted") {
		t.Fatalf("interrupted job: state=%q error=%q", crashed.State, crashed.Error)
	}

	// GET /v1/jobs lists both pre-restart jobs.
	lr := getWith(t, ts2.URL+"/v1/jobs", "")
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	ids := map[string]bool{}
	for _, v := range listing.Jobs {
		ids[v.ID] = true
	}
	if !ids[doneID] || !ids[crashID] {
		t.Fatalf("job listing %v missing pre-restart jobs %s/%s", ids, doneID, crashID)
	}

	// The original idempotency key still dedupes onto the restored record.
	resp2, out2 := analyzeWith(t, ts2.URL, `{"workload":"histogram"}`, "", "restart-key")
	if resp2.StatusCode != http.StatusAccepted || out2["id"] != doneID {
		t.Fatalf("idempotent resubmit after restart: %d id=%s, want %s",
			resp2.StatusCode, out2["id"], doneID)
	}

	// New submissions must not collide with replayed IDs.
	_, outNew := analyzeWith(t, ts2.URL, `{"workload":"histogram"}`, "", "")
	if ids[outNew["id"]] {
		t.Fatalf("fresh job reused replayed ID %s", outNew["id"])
	}

	sc := scrape(t, ts2.URL)
	if n := mustValue(t, sc, "dp_journal_replayed_records"); n < 5 {
		t.Fatalf("dp_journal_replayed_records = %v, want >= 5", n)
	}
}

// TestJournalTornTailRestart writes garbage over the journal tail and
// checks the next boot still restores the consistent prefix.
func TestJournalTornTailRestart(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"
	s1, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	id := postAnalyze(t, ts1.URL, `{"workload":"histogram"}`)
	if v := waitJob(t, ts1.URL, id); v.State != jobDone {
		t.Fatalf("job state %q", v.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts1.Close()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x99\x00\x00\x00 torn mid-crash")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts2 := newTestServer(t, Config{Workers: 1, JournalPath: path})
	rr := getWith(t, ts2.URL+"/v1/jobs/"+id, "")
	var v jobView
	if err := json.NewDecoder(rr.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if v.State != jobDone || v.Result == nil {
		t.Fatalf("job %s after torn-tail restart: state=%q", id, v.State)
	}
	sc := scrape(t, ts2.URL)
	if n := mustValue(t, sc, "dp_journal_truncated_bytes"); n == 0 {
		t.Fatal("dp_journal_truncated_bytes = 0, want the torn tail counted")
	}
}

// TestDrainRaceJournaled races concurrent submissions against Drain on a
// journaled node and holds the invariant of satellite 2: every submission
// that got a 202 is completed AND journaled with a terminal record; every
// other submission was rejected with an explicit draining/queue-full
// answer. No job is silently dropped.
func TestDrainRaceJournaled(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"
	s, err := New(Config{Workers: 2, QueueDepth: 8, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)

	const submitters = 8
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		acceptedIDs []string
		rejected    int
	)
	stop := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, out := analyzeWith(t, ts.URL, `{"workload":"histogram"}`, "", "")
				switch resp.StatusCode {
				case http.StatusAccepted:
					mu.Lock()
					acceptedIDs = append(acceptedIDs, out["id"])
					mu.Unlock()
				case http.StatusServiceUnavailable:
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("unexpected submit status %d", resp.StatusCode)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	ts.Close()

	if len(acceptedIDs) == 0 {
		t.Fatal("the race accepted no submissions at all; nothing was tested")
	}

	// Every accepted job must be terminally journaled. Re-open the journal
	// (the server closed it on drain) and index its records.
	jnl, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	acceptedInLog := map[string]bool{}
	finishedInLog := map[string]string{}
	for _, r := range recs {
		switch r.Op {
		case journal.OpAccepted:
			acceptedInLog[r.ID] = true
		case journal.OpFinished:
			finishedInLog[r.ID] = r.State
		}
	}
	for _, id := range acceptedIDs {
		if !acceptedInLog[id] {
			t.Errorf("202-accepted job %s has no accepted record in the journal", id)
		}
		if st, ok := finishedInLog[id]; !ok {
			t.Errorf("202-accepted job %s was never journaled terminal", id)
		} else if st != jobDone {
			t.Errorf("drained job %s journaled %q, want done", id, st)
		}
	}
	// And nothing in the log is dangling: accepted implies finished.
	for id := range acceptedInLog {
		if _, ok := finishedInLog[id]; !ok {
			t.Errorf("journal holds accepted-but-unfinished job %s after a clean drain", id)
		}
	}
	t.Logf("drain race: %d accepted, %d rejected", len(acceptedIDs), rejected)
}
