package server

import (
	"fmt"
	"sync"
	"time"

	"discopop/internal/pipeline"
)

// Job lifecycle states. There is no "running" state: the engine reports
// only completion, so a job is queued (accepted, possibly executing) until
// its result lands.
const (
	jobQueued = "queued"
	jobDone   = "done"
	jobFailed = "failed"
)

// jobRecord tracks one submission through the service. Mutable fields are
// guarded by the owning jobStore's lock; doneCh closes exactly once when
// the result is recorded.
type jobRecord struct {
	ID        string
	Workload  string
	Scale     int
	State     string
	Submitted time.Time
	Finished  time.Time
	Error     string
	Result    *jobResult

	doneCh chan struct{}
}

// jobView is the JSON shape of one record (a snapshot — never the live
// record, which workers keep mutating).
type jobView struct {
	ID        string     `json:"id"`
	Workload  string     `json:"workload"`
	Scale     int        `json:"scale,omitempty"`
	State     string     `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *jobResult `json:"result,omitempty"`
}

// jobResult is the client-facing summary of a completed analysis.
type jobResult struct {
	Instrs      int64            `json:"instrs"`
	Deps        int              `json:"deps"`
	CUs         int              `json:"cus"`
	CacheHit    bool             `json:"cache_hit"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	QueueMS     float64          `json:"queue_ms"`
	Suggestions []suggestionView `json:"suggestions"`
	// Peer is the worker that served the analysis when this node proxied
	// it to a fleet; empty for local runs.
	Peer string `json:"peer,omitempty"`
}

// suggestionView is one ranked parallelization opportunity.
type suggestionView struct {
	Rank      int     `json:"rank"`
	Kind      string  `json:"kind"`
	Loc       string  `json:"loc"`
	Coverage  float64 `json:"coverage"`
	Speedup   float64 `json:"speedup"`
	Imbalance float64 `json:"imbalance"`
	Score     float64 `json:"score"`
	Notes     string  `json:"notes,omitempty"`
}

// maxSuggestions caps the per-job result payload; the full ranking is
// available to embedders through the pipeline API, not over HTTP.
const maxSuggestions = 100

// jobStore is the bounded, concurrency-safe record index. Completed
// records beyond the cap are evicted oldest-first; queued records are
// never evicted (their results are still owed to the collector).
type jobStore struct {
	mu     sync.Mutex
	max    int
	m      map[string]*jobRecord
	order  []string // insertion order, for eviction
	nextid int64
}

func (js *jobStore) init(max int) {
	js.max = max
	js.m = map[string]*jobRecord{}
}

func (js *jobStore) nextID() string {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.nextid++
	return fmt.Sprintf("j%06d", js.nextid)
}

func (js *jobStore) add(rec *jobRecord) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.m[rec.ID] = rec
	js.order = append(js.order, rec.ID)
	// Evict the oldest finished records beyond the cap.
	for len(js.m) > js.max {
		evicted := false
		for i, id := range js.order {
			old, live := js.m[id]
			if live && old.State == jobQueued {
				continue
			}
			if live {
				delete(js.m, id)
			}
			js.order = append(js.order[:i], js.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything left is queued; transiently over cap
		}
	}
}

// drop removes a record that never made it into the engine (queue full).
func (js *jobStore) drop(id string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	delete(js.m, id)
	for i, oid := range js.order {
		if oid == id {
			js.order = append(js.order[:i], js.order[i+1:]...)
			break
		}
	}
}

func (js *jobStore) get(id string) (*jobRecord, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	rec, ok := js.m[id]
	return rec, ok
}

// finish folds one engine result into its record. A record evicted or
// dropped in the meantime is ignored.
func (js *jobStore) finish(r *pipeline.JobResult) {
	js.mu.Lock()
	defer js.mu.Unlock()
	rec, ok := js.m[r.Name]
	if !ok {
		return
	}
	rec.Finished = time.Now()
	if r.Err != nil {
		rec.State = jobFailed
		rec.Error = r.Err.Error()
	} else {
		rec.State = jobDone
		rec.Result = summarize(r)
	}
	close(rec.doneCh)
}

func summarize(r *pipeline.JobResult) *jobResult {
	rep := r.Report
	out := &jobResult{
		Instrs:    rep.Instrs,
		Deps:      rep.NumDeps(),
		CUs:       rep.NumCUs(),
		CacheHit:  rep.CacheHit,
		ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
		QueueMS:   float64(r.QueueLat) / float64(time.Millisecond),
		Peer:      rep.RemotePeer,
	}
	for _, s := range rep.Ranked {
		if s.Score <= 0 || len(out.Suggestions) >= maxSuggestions {
			break // Ranked is best-first; the tail is all zero-score
		}
		out.Suggestions = append(out.Suggestions, suggestionView{
			Rank:      len(out.Suggestions) + 1,
			Kind:      s.Kind.String(),
			Loc:       s.Loc.String(),
			Coverage:  s.Coverage,
			Speedup:   s.LocalSpeedup,
			Imbalance: s.Imbalance,
			Score:     s.Score,
			Notes:     s.Notes,
		})
	}
	return out
}

// snapshot copies a record under the lock into its JSON view.
func (js *jobStore) snapshot(rec *jobRecord) jobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := jobView{
		ID: rec.ID, Workload: rec.Workload, Scale: rec.Scale,
		State: rec.State, Submitted: rec.Submitted,
		Error: rec.Error, Result: rec.Result,
	}
	if !rec.Finished.IsZero() {
		f := rec.Finished
		v.Finished = &f
	}
	return v
}

// list returns views of every live record, oldest first.
func (js *jobStore) list() []jobView {
	js.mu.Lock()
	recs := make([]*jobRecord, 0, len(js.order))
	for _, id := range js.order {
		if rec, ok := js.m[id]; ok {
			recs = append(recs, rec)
		}
	}
	js.mu.Unlock()
	out := make([]jobView, len(recs))
	for i, rec := range recs {
		out[i] = js.snapshot(rec)
	}
	return out
}
