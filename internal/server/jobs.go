package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"discopop/internal/journal"
	"discopop/internal/obs"
	"discopop/internal/pipeline"
)

// Job lifecycle states. There is no "running" state: the engine reports
// only completion, so a job is queued (accepted, possibly executing) until
// its result lands.
const (
	jobQueued = "queued"
	jobDone   = "done"
	jobFailed = "failed"
)

// errInterrupted is the terminal error recorded for jobs that were in
// flight when the node died and came back only through journal replay.
const errInterrupted = "interrupted: node restarted mid-job"

// jobRecord tracks one submission through the service. Mutable fields are
// guarded by the owning jobStore's lock; doneCh closes exactly once when
// the result is recorded.
type jobRecord struct {
	ID        string
	Workload  string
	Scale     int
	State     string
	Submitted time.Time
	Finished  time.Time
	Error     string
	Result    *jobResult

	// Client is the authenticated identity that submitted the job
	// (anonClient when auth is disabled); IdemKey is its Idempotency-Key
	// header, empty when none was sent. Together they key the dedupe
	// index.
	Client  string
	IdemKey string

	doneCh chan struct{}
}

// jobView is the JSON shape of one record (a snapshot — never the live
// record, which workers keep mutating).
type jobView struct {
	ID        string     `json:"id"`
	Workload  string     `json:"workload"`
	Scale     int        `json:"scale,omitempty"`
	State     string     `json:"state"`
	Client    string     `json:"client,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *jobResult `json:"result,omitempty"`
}

// jobResult is the client-facing summary of a completed analysis.
type jobResult struct {
	Instrs      int64            `json:"instrs"`
	Deps        int              `json:"deps"`
	CUs         int              `json:"cus"`
	CacheHit    bool             `json:"cache_hit"`
	ElapsedMS   float64          `json:"elapsed_ms"`
	QueueMS     float64          `json:"queue_ms"`
	Suggestions []suggestionView `json:"suggestions"`
	// Peer is the worker that served the analysis when this node proxied
	// it to a fleet; empty for local runs.
	Peer string `json:"peer,omitempty"`
	// TraceID and Spans carry the job's span tree: queue wait and every
	// pipeline stage (with worker-side spans grafted in on a
	// coordinator). A coordinator polling this job reads them back to
	// graft into its own trace; GET /v1/jobs/{id}/trace renders them.
	TraceID string     `json:"trace_id,omitempty"`
	Spans   []obs.Span `json:"spans,omitempty"`
}

// suggestionView is one ranked parallelization opportunity.
type suggestionView struct {
	Rank      int     `json:"rank"`
	Kind      string  `json:"kind"`
	Loc       string  `json:"loc"`
	Coverage  float64 `json:"coverage"`
	Speedup   float64 `json:"speedup"`
	Imbalance float64 `json:"imbalance"`
	Score     float64 `json:"score"`
	Notes     string  `json:"notes,omitempty"`
}

// maxSuggestions caps the per-job result payload; the full ranking is
// available to embedders through the pipeline API, not over HTTP.
const maxSuggestions = 100

// jobStore is the bounded, concurrency-safe record index. Completed
// records beyond the cap are evicted oldest-first; queued records are
// never evicted (their results are still owed to the collector).
type jobStore struct {
	mu     sync.Mutex
	max    int
	m      map[string]*jobRecord
	order  []string // insertion order, for eviction
	nextid int64
	// idem maps client+Idempotency-Key to the job that claimed it, so a
	// retried submission returns the original record instead of re-running
	// the analysis. Entries live exactly as long as their record.
	idem map[string]string
	// recent is a bounded ring of finished-job span summaries, newest
	// last. It outlives record eviction, so a job pushed out of m by the
	// store cap stays diagnosable through GET /v1/debug/recent.
	recent []recentEntry
}

// recentMax bounds the jobStore.recent ring.
const recentMax = 64

// recentEntry is one finished job's span summary: enough to spot which
// stage ate the time without the full trace.
type recentEntry struct {
	ID       string             `json:"id"`
	TraceID  string             `json:"trace_id,omitempty"`
	Client   string             `json:"client,omitempty"`
	Workload string             `json:"workload"`
	State    string             `json:"state"`
	Error    string             `json:"error,omitempty"`
	Finished time.Time          `json:"finished"`
	TotalMS  float64            `json:"total_ms"`
	QueueMS  float64            `json:"queue_ms"`
	StageMS  map[string]float64 `json:"stage_ms,omitempty"`
}

func (js *jobStore) init(max int) {
	js.max = max
	js.m = map[string]*jobRecord{}
	js.idem = map[string]string{}
}

// idemIndexKey scopes an idempotency key to its client: two tenants using
// the same key must not dedupe onto each other's jobs.
func idemIndexKey(client, key string) string { return client + "\x00" + key }

func (js *jobStore) nextID() string {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.nextid++
	return fmt.Sprintf("j%06d", js.nextid)
}

// add inserts a record, claiming its idempotency key if it carries one.
// When the key is already claimed by a live record, that record is
// returned instead and nothing is inserted: the caller answers with the
// original job rather than re-running the analysis.
func (js *jobStore) add(rec *jobRecord) (existing *jobRecord) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if rec.IdemKey != "" {
		if id, ok := js.idem[idemIndexKey(rec.Client, rec.IdemKey)]; ok {
			if prior, live := js.m[id]; live {
				return prior
			}
		}
		js.idem[idemIndexKey(rec.Client, rec.IdemKey)] = rec.ID
	}
	js.m[rec.ID] = rec
	js.order = append(js.order, rec.ID)
	js.trimLocked()
	return nil
}

// trimLocked evicts the oldest finished records beyond the cap. Callers
// hold js.mu.
func (js *jobStore) trimLocked() {
	for len(js.m) > js.max {
		evicted := false
		for i, id := range js.order {
			old, live := js.m[id]
			if live && old.State == jobQueued {
				continue
			}
			if live {
				js.removeLocked(old)
			}
			js.order = append(js.order[:i], js.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything left is queued; transiently over cap
		}
	}
}

// removeLocked deletes a record and its idempotency claim. Callers hold
// js.mu and fix up js.order themselves.
func (js *jobStore) removeLocked(rec *jobRecord) {
	delete(js.m, rec.ID)
	if rec.IdemKey != "" {
		key := idemIndexKey(rec.Client, rec.IdemKey)
		if js.idem[key] == rec.ID {
			delete(js.idem, key)
		}
	}
}

// drop removes a record that never made it into the engine (queue full).
func (js *jobStore) drop(id string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	rec, ok := js.m[id]
	if !ok {
		return
	}
	js.removeLocked(rec)
	for i, oid := range js.order {
		if oid == id {
			js.order = append(js.order[:i], js.order[i+1:]...)
			break
		}
	}
}

func (js *jobStore) get(id string) (*jobRecord, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	rec, ok := js.m[id]
	return rec, ok
}

// settledJob is what finish reports back for journaling and quota
// settlement: a snapshot of the terminal record, safe to read without the
// store lock.
type settledJob struct {
	ID     string
	Client string
	State  string
	Error  string
	Instrs int64
	Result *jobResult
	At     time.Time
}

// finish folds one engine result into its record and reports the
// settlement. A record evicted or dropped in the meantime yields ok=false
// (nothing to journal; the quota in-flight slot was released with it).
func (js *jobStore) finish(r *pipeline.JobResult) (settledJob, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	rec, ok := js.m[r.Name]
	if !ok {
		return settledJob{}, false
	}
	rec.Finished = time.Now()
	if r.Err != nil {
		rec.State = jobFailed
		rec.Error = r.Err.Error()
	} else {
		rec.State = jobDone
		rec.Result = summarize(r)
	}
	close(rec.doneCh)
	js.recent = append(js.recent, recentEntryFor(rec, r))
	if len(js.recent) > recentMax {
		js.recent = js.recent[len(js.recent)-recentMax:]
	}
	s := settledJob{
		ID: rec.ID, Client: rec.Client, State: rec.State,
		Error: rec.Error, Result: rec.Result, At: rec.Finished,
	}
	if rec.Result != nil {
		s.Instrs = rec.Result.Instrs
	}
	return s, true
}

// recentEntryFor condenses a finished job into its ring entry. Stage
// timings come from the trace's depth-1 spans (children of the job
// root), counting only locally-executed spans — a coordinator's grafted
// worker spans are reachable through the full trace, not the summary.
func recentEntryFor(rec *jobRecord, r *pipeline.JobResult) recentEntry {
	e := recentEntry{
		ID: rec.ID, Client: rec.Client, Workload: rec.Workload,
		State: rec.State, Error: rec.Error, Finished: rec.Finished,
		TotalMS: float64(r.Elapsed) / float64(time.Millisecond),
		QueueMS: float64(r.QueueLat) / float64(time.Millisecond),
	}
	if r.Trace == nil {
		return e
	}
	e.TraceID = r.Trace.ID
	root := -1
	for i, sp := range r.Trace.Spans {
		if sp.Parent < 0 && sp.Node == "" {
			root = i
			break
		}
	}
	for _, sp := range r.Trace.Spans {
		if sp.Parent != root || sp.Node != "" || sp.Name == "queue" {
			continue
		}
		if e.StageMS == nil {
			e.StageMS = map[string]float64{}
		}
		e.StageMS[sp.Name] += float64(sp.Dur) / float64(time.Millisecond)
	}
	return e
}

// recentList snapshots the finished-job ring, newest first.
func (js *jobStore) recentList() []recentEntry {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]recentEntry, len(js.recent))
	for i, e := range js.recent {
		out[len(out)-1-i] = e
	}
	return out
}

// restore rebuilds the store from replayed journal records: finished jobs
// come back terminal with their results, and jobs that were accepted (or
// started) but never finished — in flight when the node died — are marked
// failed (interrupted) so their long-pollers get an answer instead of a
// job that never resolves. Idempotency claims are re-registered, the ID
// counter resumes past the highest replayed ID, and the returned list
// names the interrupted jobs so the caller can journal their terminal
// transition.
func (js *jobStore) restore(recs []journal.Record) (interrupted []string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	// Two passes, so the result is insensitive to accepted/finished write
	// ordering (the accepted append races the submit loop's appends under
	// load; the log stays a consistent set either way).
	finished := map[string]journal.Record{}
	for _, jr := range recs {
		switch jr.Op {
		case journal.OpAccepted:
			if _, dup := js.m[jr.ID]; dup {
				continue // defensive: accepted twice in a corrupt-ish log
			}
			rec := &jobRecord{
				ID: jr.ID, Workload: jr.Workload, Scale: jr.Scale,
				Client: jr.Client, IdemKey: jr.IdemKey,
				State: jobQueued, Submitted: jr.Time,
				doneCh: make(chan struct{}),
			}
			js.m[jr.ID] = rec
			js.order = append(js.order, jr.ID)
			if rec.IdemKey != "" {
				js.idem[idemIndexKey(rec.Client, rec.IdemKey)] = rec.ID
			}
			if n, err := strconv.ParseInt(strings.TrimPrefix(jr.ID, "j"), 10, 64); err == nil && n > js.nextid {
				js.nextid = n
			}
		case journal.OpStarted:
			// State-neutral: accepted-but-unfinished is interrupted either
			// way; the record exists for forensics.
		case journal.OpCheckpoint:
			// The replayer already dropped everything the checkpoint
			// superseded; the marker itself carries no job state.
		case journal.OpFinished:
			finished[jr.ID] = jr // last terminal record wins
		}
	}
	for _, id := range js.order {
		rec := js.m[id]
		if rec == nil || rec.State != jobQueued {
			continue
		}
		if jr, ok := finished[id]; ok && (jr.State == jobDone || jr.State == jobFailed) {
			rec.State = jr.State
			rec.Error = jr.Error
			rec.Finished = jr.Time
			if len(jr.Result) > 0 {
				res := &jobResult{}
				if err := json.Unmarshal(jr.Result, res); err == nil {
					rec.Result = res
				}
			}
			close(rec.doneCh)
			continue
		}
		rec.State = jobFailed
		rec.Error = errInterrupted
		rec.Finished = time.Now()
		close(rec.doneCh)
		interrupted = append(interrupted, id)
	}
	js.trimLocked()
	return interrupted
}

// exportRecords snapshots the live store as journal records — the
// compaction snapshot. Every record gets its accepted transition back
// (identity, idempotency key, submit time) and settled records their
// finished transition, so restore(snapshot) rebuilds exactly this store:
// the differential invariant restore(compacted) == restore(uncompacted).
// Results are emitted inline; the journal re-spills any that outgrow a
// record. Queued records export as accepted-only — if the node dies
// before they settle they replay as interrupted, exactly as they would
// have from the uncompacted log.
func (js *jobStore) exportRecords() []journal.Record {
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]journal.Record, 0, 2*len(js.m))
	for _, id := range js.order {
		rec, ok := js.m[id]
		if !ok {
			continue
		}
		out = append(out, journal.Record{
			Op: journal.OpAccepted, ID: rec.ID, Time: rec.Submitted,
			Workload: rec.Workload, Scale: rec.Scale,
			Client: rec.Client, IdemKey: rec.IdemKey,
		})
		if rec.State == jobQueued {
			continue
		}
		jr := journal.Record{
			Op: journal.OpFinished, ID: rec.ID, Time: rec.Finished,
			State: rec.State, Error: rec.Error,
		}
		if rec.Result != nil {
			if raw, err := json.Marshal(rec.Result); err == nil {
				jr.Result = raw
			}
		}
		out = append(out, jr)
	}
	return out
}

func summarize(r *pipeline.JobResult) *jobResult {
	rep := r.Report
	out := &jobResult{
		Instrs:    rep.Instrs,
		Deps:      rep.NumDeps(),
		CUs:       rep.NumCUs(),
		CacheHit:  rep.CacheHit,
		ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
		QueueMS:   float64(r.QueueLat) / float64(time.Millisecond),
		Peer:      rep.RemotePeer,
	}
	if r.Trace != nil {
		out.TraceID = r.Trace.ID
		out.Spans = r.Trace.Spans
	}
	for _, s := range rep.Ranked {
		if s.Score <= 0 || len(out.Suggestions) >= maxSuggestions {
			break // Ranked is best-first; the tail is all zero-score
		}
		out.Suggestions = append(out.Suggestions, suggestionView{
			Rank:      len(out.Suggestions) + 1,
			Kind:      s.Kind.String(),
			Loc:       s.Loc.String(),
			Coverage:  s.Coverage,
			Speedup:   s.LocalSpeedup,
			Imbalance: s.Imbalance,
			Score:     s.Score,
			Notes:     s.Notes,
		})
	}
	return out
}

// snapshot copies a record under the lock into its JSON view.
func (js *jobStore) snapshot(rec *jobRecord) jobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := jobView{
		ID: rec.ID, Workload: rec.Workload, Scale: rec.Scale,
		State: rec.State, Client: rec.Client, Submitted: rec.Submitted,
		Error: rec.Error, Result: rec.Result,
	}
	if !rec.Finished.IsZero() {
		f := rec.Finished
		v.Finished = &f
	}
	return v
}

// list returns views of every live record, oldest first.
func (js *jobStore) list() []jobView {
	js.mu.Lock()
	recs := make([]*jobRecord, 0, len(js.order))
	for _, id := range js.order {
		if rec, ok := js.m[id]; ok {
			recs = append(recs, rec)
		}
	}
	js.mu.Unlock()
	out := make([]jobView, len(recs))
	for i, rec := range recs {
		out[i] = js.snapshot(rec)
	}
	return out
}
