package server

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"

	"discopop/internal/metrics"
	"discopop/internal/obs"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

// TestJobTraceEndpoint validates the Chrome trace-event export of a
// finished job: parseable JSON, monotone timestamps, stage intervals
// nested inside the job root, and the queue span present.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/analyze",
		strings.NewReader(`{"workload":"histogram"}`))
	req.Header.Set("X-DP-Trace", "trace-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/analyze: %d", resp.StatusCode)
	}
	view := waitJob(t, ts.URL, accepted.ID)
	if view.State != jobDone {
		t.Fatalf("job state %s: %s", view.State, view.Error)
	}
	if view.Result.TraceID != "trace-abc" {
		t.Errorf("result trace_id = %q, want the X-DP-Trace value", view.Result.TraceID)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + accepted.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var jobEnd float64
	seen := map[string]bool{}
	prev := -1.0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		seen[ev.Name] = true
		if ev.Ts < prev {
			t.Errorf("event %s at %v breaks timestamp monotonicity (prev %v)", ev.Name, ev.Ts, prev)
		}
		prev = ev.Ts
		if ev.Name == "job" {
			jobEnd = ev.Ts + ev.Dur
		} else if ev.Name != "queue" && ev.Ts+ev.Dur > jobEnd+0.001 {
			t.Errorf("span %s [%v,%v] not nested in job (ends %v)",
				ev.Name, ev.Ts, ev.Ts+ev.Dur, jobEnd)
		}
	}
	for _, want := range []string{"job", "queue", "profile", "rank"} {
		if !seen[want] {
			t.Errorf("trace missing span %q (saw %v)", want, seen)
		}
	}

	// Text rendering of the same trace.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + accepted.ID + "/trace?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace?format=text: %d", resp.StatusCode)
	}
	if !strings.Contains(string(text), "trace trace-abc") || !strings.Contains(string(text), "profile") {
		t.Errorf("text trace incomplete:\n%s", text)
	}

	// Error surface: unknown job, unknown format.
	for path, want := range map[string]int{
		"/v1/jobs/nope/trace":                          http.StatusNotFound,
		"/v1/jobs/" + accepted.ID + "/trace?format=xy": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestDebugRecentSurvivesEviction pins the small fix of the issue: span
// summaries of finished jobs stay queryable after the job records
// themselves have been evicted by the store cap.
func TestDebugRecentSurvivesEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxRecords: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		id := postAnalyze(t, ts.URL, `{"workload":"histogram"}`)
		view := waitJob(t, ts.URL, id)
		if view.State != jobDone {
			t.Fatalf("job %s: %s %s", id, view.State, view.Error)
		}
		ids = append(ids, id)
	}

	// The earliest job's record must be gone (cap 2, 4 finished)...
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still served: %d", resp.StatusCode)
	}

	// ...but its span summary survives in the ring.
	resp, err = http.Get(ts.URL + "/v1/debug/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Recent []recentEntry `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) != 4 {
		t.Fatalf("recent ring has %d entries, want 4", len(out.Recent))
	}
	// Newest first; every entry carries per-stage timings.
	if out.Recent[0].ID != ids[3] || out.Recent[3].ID != ids[0] {
		t.Errorf("ring order wrong: %s...%s, want %s...%s",
			out.Recent[0].ID, out.Recent[3].ID, ids[3], ids[0])
	}
	for _, e := range out.Recent {
		if e.State != jobDone || e.Workload != "histogram" {
			t.Errorf("entry %s: state=%s workload=%s", e.ID, e.State, e.Workload)
		}
		if e.TotalMS <= 0 {
			t.Errorf("entry %s: total_ms = %v", e.ID, e.TotalMS)
		}
		if len(e.StageMS) == 0 {
			t.Errorf("entry %s has no stage timings", e.ID)
		}
	}
}

// TestWorkloadProfileEndpoint checks the pprof export end to end: the
// served bytes are gzip, decode strictly, and the top line agrees with
// an in-process profiler run of the same workload.
func TestWorkloadProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/workloads/histogram/profile?scale=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET profile: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("profile Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile is not gzipped (% x)", data[:min(len(data), 2)])
	}
	dec, err := obs.DecodeLineProfile(data)
	if err != nil {
		t.Fatalf("profile does not decode: %v", err)
	}
	if dec.SampleType != "instructions" || dec.Unit != "count" {
		t.Errorf("sample type %s/%s, want instructions/count", dec.SampleType, dec.Unit)
	}
	if len(dec.Lines) == 0 {
		t.Fatal("profile has no samples")
	}

	// The top line must match an independent profiler run.
	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	res := profiler.Profile(prog.M, profiler.Options{})
	var wantTop int64
	for _, v := range res.Lines {
		if v > wantTop {
			wantTop = v
		}
	}
	if dec.Lines[0].Value != wantTop {
		t.Errorf("top line value %d, want the profiler's hottest line %d",
			dec.Lines[0].Value, wantTop)
	}
	if dec.Lines[0].File == "" || dec.Lines[0].Func == "" {
		t.Errorf("top line unresolved: %+v", dec.Lines[0])
	}

	// Error surface.
	for path, want := range map[string]int{
		"/v1/workloads/no-such-workload/profile":    http.StatusNotFound,
		"/v1/workloads/histogram/profile?scale=999": http.StatusBadRequest,
		"/v1/workloads/histogram/profile?scale=x":   http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestRuntimeMetrics checks the dependency-free Go runtime gauges and the
// build-info gauge on /metrics.
func TestRuntimeMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	s := scrape(t, ts.URL)
	if v := mustValue(t, s, "dp_go_goroutines"); v <= 0 {
		t.Errorf("dp_go_goroutines = %v", v)
	}
	if v := mustValue(t, s, "dp_go_heap_alloc_bytes"); v <= 0 {
		t.Errorf("dp_go_heap_alloc_bytes = %v", v)
	}
	if v := mustValue(t, s, "dp_go_gc_pause_seconds_total"); v < 0 {
		t.Errorf("dp_go_gc_pause_seconds_total = %v", v)
	}
	if v := mustValue(t, s, "dp_build_info",
		metrics.L("goversion", runtime.Version())); v != 1 {
		t.Errorf("dp_build_info = %v, want 1", v)
	}
}
