// Package server wraps a persistent analysis engine behind an HTTP API,
// turning the one-shot CLI pipeline into a long-lived service: clients
// submit workloads (bundled, at any scale, or inline synthetic modules),
// poll asynchronous job results, enumerate the workload registry, and
// scrape Prometheus metrics while jobs are in flight.
//
// The service owns one pipeline.Engine (bounded worker pool), one
// pipeline.ProfileCache (repeat submissions of the same workload@scale
// skip re-profiling), and shares the process-wide arena pool — so every
// observability counter the batch engine accumulates (fleet stats, cache
// hits and evictions, queue-latency histogram, pool checkout counters) is
// reachable on /metrics at any time instead of only after a batch
// completes.
//
// API surface:
//
//	POST /v1/analyze                     submit a job; 202 with an id (async)
//	GET  /v1/jobs/{id}                   job status and, when finished, the result
//	GET  /v1/jobs/{id}/trace             Chrome trace-event JSON (?format=text for a tree)
//	GET  /v1/jobs                        recent job records
//	GET  /v1/workloads                   the bundled workload registry
//	GET  /v1/workloads/{name}/profile    gzipped pprof profile of execution effort
//	GET  /v1/debug/recent                span summaries of the last finished jobs
//	GET  /metrics                        Prometheus text exposition
//	GET  /healthz                        liveness ("ok", or 503 while draining)
//
// Shutdown is a drain: Drain stops new submissions (503), lets queued and
// running jobs finish, and returns when the last result is recorded.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discopop/internal/journal"
	"discopop/internal/obs"
	"discopop/internal/pipeline"
	"discopop/internal/profiler"
	"discopop/internal/remote"
	"discopop/internal/workloads"
)

// Config sizes the service. The zero value is serviceable: one engine
// worker per CPU, the default profile-cache bound, a 64-deep submission
// queue, 16-thread ranking, and 1024 retained job records.
type Config struct {
	// Workers bounds the engine's worker pool (0 = one per CPU).
	Workers int
	// CacheEntries caps the profile cache (0 = DefaultCacheEntries,
	// negative = unbounded).
	CacheEntries int
	// QueueDepth is how many accepted-but-not-yet-running submissions the
	// service holds before rejecting with 503 (0 = 64).
	QueueDepth int
	// Threads is the default thread count for local-speedup ranking
	// (0 = 16); per-request "threads" overrides it.
	Threads int
	// MaxRecords bounds the finished-job records retained for GET
	// /v1/jobs/{id} (0 = 1024). Oldest finished records are evicted first.
	MaxRecords int
	// Peers lists worker base URLs (e.g. "http://10.0.0.7:8080"). When
	// non-empty the node becomes a coordinator: every analysis is encoded
	// and shipped to a peer through the remote stage (with failover and
	// local fallback) instead of running in-process.
	Peers []string
	// Remote tunes the coordinator's peer client (zero value = defaults).
	// Ignored without Peers.
	Remote remote.ClientOptions
	// SubmissionInstrs is the execution budget for inline and serialized
	// module submissions (0 = maxSubmissionInstrs, negative = unbounded).
	SubmissionInstrs int64
	// Tokens maps bearer tokens to client identities. Non-empty enables
	// authentication on every /v1/* endpoint (401 without a listed token);
	// /healthz and /metrics stay open. Empty runs the service open, with
	// every request acting as the anonymous client.
	Tokens map[string]string
	// Quotas applies per-client admission control: submission rate,
	// in-flight, instruction-budget, and module-footprint limits. The
	// zero value disables all of them.
	Quotas Quotas
	// JournalPath enables the crash-safe job journal: every job transition
	// is appended there and replayed on the next boot, so a restarted node
	// still answers for pre-restart jobs. Empty keeps records in memory
	// only.
	JournalPath string
	// JournalMaxBytes and JournalMaxRecords are the compaction thresholds:
	// once the log outgrows either, the live record store is snapshotted
	// into a fresh log (checkpoint + snapshot, atomic rename) so boot
	// replay stays O(live records). 0 means the defaults (64 MiB / 8192
	// records); negative disables that trigger.
	JournalMaxBytes   int64
	JournalMaxRecords int64
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = pipeline.DefaultCacheEntries
	} else if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded, in ProfileCache terms
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Threads <= 0 {
		c.Threads = 16
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 1024
	}
	if c.SubmissionInstrs == 0 {
		c.SubmissionInstrs = maxSubmissionInstrs
	} else if c.SubmissionInstrs < 0 {
		c.SubmissionInstrs = 0 // unbounded, in interp terms
	}
	if c.JournalMaxBytes == 0 {
		c.JournalMaxBytes = defaultJournalMaxBytes
	} else if c.JournalMaxBytes < 0 {
		c.JournalMaxBytes = 0 // no byte trigger, in journal.Options terms
	}
	if c.JournalMaxRecords == 0 {
		c.JournalMaxRecords = defaultJournalMaxRecords
	} else if c.JournalMaxRecords < 0 {
		c.JournalMaxRecords = 0
	}
	return c
}

// Default journal compaction thresholds: 64 MiB or 8192 records, whichever
// trips first. 8192 records is 8 store caps' worth of job transitions, so a
// compaction reclaims most of the log while staying rare under steady load.
const (
	defaultJournalMaxBytes   = 64 << 20
	defaultJournalMaxRecords = 8192
)

// Server is the long-lived analysis service. It implements http.Handler.
type Server struct {
	cfg   Config
	eng   *pipeline.Engine
	cache *pipeline.ProfileCache
	mux   *http.ServeMux
	start time.Time

	// baseOpt is the per-job option template: engine defaults plus the
	// shared cache. Each submission copies it and fills CacheKey/Threads.
	baseOpt pipeline.Options

	// pending decouples HTTP handlers from Engine.Submit's backpressure:
	// handlers enqueue without blocking (503 when full) and one submitter
	// goroutine drains into the engine.
	pending  chan pipeline.Job
	submitMu sync.Mutex // guards pending sends against Drain's close
	draining atomic.Bool
	done     chan struct{} // closed when the last result is recorded

	jobs jobStore

	// accepted counts submissions acknowledged with 202 — it leads the
	// engine's Submitted counter by however many jobs sit in pending.
	accepted atomic.Int64

	// proxy is the remote stage routing analyses to peer workers; nil for
	// a plain single-node service.
	proxy *remote.Stage

	// limits is the per-client admission controller; nil when Config.Quotas
	// is zero. journal is the durable job log; nil without JournalPath.
	limits  *limiter
	journal *journal.Journal

	// journalAppendErrs counts transitions that failed to reach the journal
	// (disk full, yanked volume): each one is a job whose post-restart
	// replay may be wrong, so the count is surfaced on /metrics and flips
	// /healthz to degraded.
	journalAppendErrs atomic.Int64

	// compactMu serializes compaction attempts so a burst of finishes does
	// not stack redundant snapshot rotations behind one another.
	compactMu sync.Mutex

	// idemReplays counts submissions answered from the idempotency index
	// instead of running (the dp_jobs_deduped_total metric).
	idemReplays atomic.Int64

	httpReqs sync.Map // endpoint label -> *atomic.Int64
	rejected sync.Map // rejection reason -> *atomic.Int64
}

// New starts the service: engine workers, the submitter, and the result
// collector begin running immediately. With a journal configured, the
// previous incarnation's job log is replayed first — finished jobs come
// back with their results and jobs in flight at the crash are settled as
// failed (interrupted) — before the service accepts traffic.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache := pipeline.NewProfileCacheSize(cfg.CacheEntries)
	opt := pipeline.Options{
		BatchWorkers:     cfg.Workers,
		Threads:          cfg.Threads,
		Cache:            cache,
		CollectFleetDeps: true,
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		baseOpt: opt,
		start:   time.Now(),
		pending: make(chan pipeline.Job, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	if len(cfg.Peers) > 0 {
		// Coordinator mode: the engine's only stage ships each module to a
		// peer worker; the full local pipeline remains the stage's
		// fallback when the whole fleet is unreachable.
		s.proxy = &remote.Stage{Client: remote.NewClient(cfg.Peers, cfg.Remote)}
		s.eng = pipeline.NewEngineWith(
			&pipeline.Pipeline{Stages: []pipeline.Stage{s.proxy}}, opt)
	} else {
		s.eng = pipeline.NewEngine(opt)
	}
	s.jobs.init(cfg.MaxRecords)
	s.limits = newLimiter(cfg.Quotas)
	if cfg.JournalPath != "" {
		jnl, recs, err := journal.OpenWith(cfg.JournalPath, journal.Options{
			MaxBytes:   cfg.JournalMaxBytes,
			MaxRecords: cfg.JournalMaxRecords,
		})
		if err != nil {
			s.eng.Close()
			return nil, fmt.Errorf("server: open journal: %w", err)
		}
		s.journal = jnl
		// Results too large for one record were spilled to side files at
		// append time; load them back so restore sees the full record. A
		// missing or corrupt spill degrades that one job (it replays
		// resultless), not the boot.
		for i := range recs {
			if recs[i].ResultRef == "" || len(recs[i].Result) > 0 {
				continue
			}
			data, err := jnl.ReadSpill(recs[i].ResultRef)
			if err != nil {
				log.Printf("server: journal spill %s (job %s): %v",
					recs[i].ResultRef, recs[i].ID, err)
				continue
			}
			recs[i].Result = data
		}
		interrupted := s.jobs.restore(recs)
		// Settle the interruptions durably too, so a second restart replays
		// them as failed instead of re-deriving (and re-timestamping) them.
		now := time.Now()
		for _, id := range interrupted {
			s.journalAppend(journal.Record{
				Op: journal.OpFinished, ID: id, Time: now,
				State: jobFailed, Error: errInterrupted,
			})
		}
		if len(recs) > 0 {
			log.Printf("server: journal %s replayed %d records (%d interrupted)",
				cfg.JournalPath, len(recs), len(interrupted))
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.count("analyze", s.auth(s.handleAnalyze)))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.count("job", s.auth(s.handleJob)))
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.count("trace", s.auth(s.handleJobTrace)))
	s.mux.HandleFunc("GET /v1/jobs", s.count("jobs", s.auth(s.handleJobs)))
	s.mux.HandleFunc("GET /v1/workloads", s.count("workloads", s.auth(s.handleWorkloads)))
	s.mux.HandleFunc("GET /v1/workloads/{name}/profile", s.count("profile", s.auth(s.handleWorkloadProfile)))
	s.mux.HandleFunc("GET /v1/debug/recent", s.count("recent", s.auth(s.handleRecent)))
	s.mux.HandleFunc("GET /metrics", s.count("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.count("healthz", s.handleHealthz))
	go s.submitLoop()
	go s.collectLoop()
	return s, nil
}

// journalAppend records one transition; with no journal configured it is a
// no-op. Append failures (disk full, yanked volume) degrade durability,
// not availability: the job still runs, but the loss is counted
// (dp_journal_append_errors_total) and flips /healthz to degraded —
// log-only reporting here once let a successful job silently replay as
// failed (interrupted) after a restart.
func (s *Server) journalAppend(rec journal.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.journalAppendErrs.Add(1)
		log.Printf("server: journal append (op=%s id=%s): %v", rec.Op, rec.ID, err)
	}
}

// maybeCompact rotates the journal once it outgrows its thresholds:
// the live record store becomes a checkpoint + snapshot in a fresh log,
// so the next boot replays O(live records) instead of the full history.
// Called from collectLoop after each finished append — the only moment
// the log grows past a threshold for good.
func (s *Server) maybeCompact() {
	if s.journal == nil || !s.journal.NeedsCompaction() {
		return
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if !s.journal.NeedsCompaction() { // re-check: a racing finish compacted
		return
	}
	before := s.journal.Stats()
	if err := s.journal.Compact(s.jobs.exportRecords); err != nil {
		log.Printf("server: journal compaction: %v", err)
		return
	}
	after := s.journal.Stats()
	log.Printf("server: journal compacted: %d records / %d bytes -> %d records / %d bytes",
		before.LiveRecords, before.SizeBytes, after.LiveRecords, after.SizeBytes)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops accepting submissions, lets every queued and in-flight job
// finish, and returns once the last result is recorded (or ctx expires).
// When ctx expires on a coordinator, in-flight remote submissions are
// canceled so the abandoned jobs stop long-polling peers in the
// background. It is idempotent; the HTTP listener should be shut down
// first (or concurrently) so clients see connection refusals rather than
// 503s.
func (s *Server) Drain(ctx context.Context) error {
	s.submitMu.Lock()
	if !s.draining.Swap(true) {
		close(s.pending)
	}
	s.submitMu.Unlock()
	select {
	case <-s.done:
		if s.journal != nil {
			return s.journal.Close()
		}
		return nil
	case <-ctx.Done():
		if s.proxy != nil {
			s.proxy.Close()
		}
		if s.journal != nil {
			// Flush what we have; the unfinished jobs replay as interrupted.
			s.journal.Close()
		}
		return fmt.Errorf("server: drain interrupted with jobs still in flight: %w", ctx.Err())
	}
}

// Stats exposes the engine's fleet counters (for embedders and tests; HTTP
// clients use /metrics).
func (s *Server) Stats() pipeline.FleetStats { return s.eng.Stats() }

func (s *Server) submitLoop() {
	for j := range s.pending {
		s.journalAppend(journal.Record{
			Op: journal.OpStarted, ID: j.Name, Time: time.Now(),
		})
		s.eng.Submit(j)
	}
	s.eng.Close()
}

func (s *Server) collectLoop() {
	for r := range s.eng.Results() {
		settled, ok := s.jobs.finish(r)
		if !ok {
			continue // record evicted while running; nothing to settle
		}
		s.limits.finish(settled.Client, settled.Instrs)
		jr := journal.Record{
			Op: journal.OpFinished, ID: settled.ID, Time: settled.At,
			State: settled.State, Error: settled.Error,
		}
		if settled.Result != nil {
			if raw, err := json.Marshal(settled.Result); err == nil {
				jr.Result = raw
			}
		}
		s.journalAppend(jr)
		s.maybeCompact()
	}
	close(s.done)
}

// count wraps a handler with a per-endpoint request counter (the
// dp_http_requests_total metric).
func (s *Server) count(label string, h http.HandlerFunc) http.HandlerFunc {
	c := &atomic.Int64{}
	s.httpReqs.Store(label, c)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		h(w, r)
	}
}

// analyzeRequest is the POST /v1/analyze body. Exactly one of Workload,
// Inline, and Module must be set.
type analyzeRequest struct {
	// Workload names a bundled workload, optionally with a scale suffix
	// ("CG" or "CG@4"; the suffix wins over Scale).
	Workload string `json:"workload,omitempty"`
	// Scale is the workload scale factor (default 1).
	Scale int `json:"scale,omitempty"`
	// Threads overrides the service default for local-speedup ranking.
	Threads int `json:"threads,omitempty"`
	// BottomUp selects bottom-up CU construction.
	BottomUp bool `json:"bottomup,omitempty"`
	// Inline submits a synthetic module assembled from kernel patterns
	// instead of a bundled workload.
	Inline *InlineSpec `json:"inline,omitempty"`
	// Module submits a full serialized IR module: the base64 encoding of
	// the internal/remote wire format. The service decodes it under
	// strict limits (structure validation plus an op/memory footprint
	// cap, the module analogue of the workload-scale cap) and runs it
	// through the full pipeline.
	Module string `json:"module,omitempty"`
}

// reject counts one rejected submission under its reason label (the
// dp_jobs_rejected_total metric).
func (s *Server) reject(reason string) {
	c, _ := s.rejected.LoadOrStore(reason, &atomic.Int64{})
	c.(*atomic.Int64).Add(1)
}

// Rejection reason labels.
const (
	rejectDraining  = "draining"
	rejectBody      = "body"
	rejectSpec      = "spec"
	rejectDecode    = "decode"
	rejectQueueFull = "queue_full"
	rejectAuth      = "auth"
	rejectRate      = "ratelimit"
	rejectQuota     = "quota"
)

// maxIdemKeyLen bounds the Idempotency-Key header: the key is stored per
// live record and replayed through the journal, so it must not become an
// amplification channel.
const maxIdemKeyLen = 128

// maxTraceIDLen bounds the X-DP-Trace header for the same reason: the id
// is echoed into every span set and journaled result.
const maxTraceIDLen = 128

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	client := clientFrom(r.Context())
	if s.draining.Load() {
		s.reject(rejectDraining)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// Admission runs before the body is read: an over-limit client does
	// not get to make the node parse megabyte payloads for free.
	if wait, reason, ok := s.limits.admit(client); !ok {
		s.reject(reason)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
		writeError(w, http.StatusTooManyRequests,
			"client %q over %s limit; retry later", client, reason)
		return
	}
	// The admitted in-flight slot is held until the job settles
	// (limiter.finish in collectLoop); every earlier exit returns it here.
	keepSlot := false
	defer func() {
		if !keepSlot {
			s.limits.release(client)
		}
	}()
	idemKey := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if len(idemKey) > maxIdemKeyLen {
		s.reject(rejectSpec)
		writeError(w, http.StatusBadRequest,
			"Idempotency-Key longer than %d bytes", maxIdemKeyLen)
		return
	}
	traceID := strings.TrimSpace(r.Header.Get("X-DP-Trace"))
	if len(traceID) > maxTraceIDLen {
		s.reject(rejectSpec)
		writeError(w, http.StatusBadRequest,
			"X-DP-Trace longer than %d bytes", maxTraceIDLen)
		return
	}
	var req analyzeRequest
	// The body cap must cover a module at the codec's byte limit after
	// base64 expansion (4/3) plus JSON framing, or the advertised decode
	// limit is unreachable over the wire.
	maxBody := int64(remote.DefaultLimits().MaxBytes)*4/3 + 64<<10
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(rejectBody)
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !s.limits.admitModuleBytes(len(req.Module)) {
		s.reject(rejectQuota)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"module payload %d bytes over the per-submission quota of %d",
			len(req.Module), s.cfg.Quotas.MaxModuleBytes)
		return
	}
	job, rec, reason, err := s.buildJob(&req)
	if err != nil {
		s.reject(reason)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec.Client = client
	rec.IdemKey = idemKey
	// A coordinator's X-DP-Trace id groups this node's spans under the
	// caller's trace; local submissions trace under their own job id.
	job.TraceID = traceID
	if existing := s.jobs.add(rec); existing != nil {
		// A retry of a job we already hold: answer with the original record
		// instead of running the analysis twice. Coordinator failover leans
		// on this — a worker that accepted the first attempt dedupes the
		// second.
		s.idemReplays.Add(1)
		view := s.jobs.snapshot(existing)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/v1/jobs/"+view.ID)
		w.Header().Set("Idempotency-Replay", "true")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{
			"id": view.ID, "state": view.State, "url": "/v1/jobs/" + view.ID,
		})
		return
	}
	s.submitMu.Lock()
	if s.draining.Load() {
		s.submitMu.Unlock()
		s.jobs.drop(rec.ID)
		s.reject(rejectDraining)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case s.pending <- job:
		s.accepted.Add(1)
		// Journal inside the enqueue critical section so an accepted record
		// exists for every job the submit loop will ever see, and rejected
		// submissions never leave dangling accepted records behind.
		s.journalAppend(journal.Record{
			Op: journal.OpAccepted, ID: rec.ID, Time: rec.Submitted,
			Workload: rec.Workload, Scale: rec.Scale,
			Client: client, IdemKey: idemKey,
		})
		s.submitMu.Unlock()
		keepSlot = true
	default:
		s.submitMu.Unlock()
		s.jobs.drop(rec.ID)
		s.reject(rejectQueueFull)
		writeError(w, http.StatusServiceUnavailable,
			"submission queue full (%d pending)", cap(s.pending))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+rec.ID)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"id": rec.ID, "state": jobQueued, "url": "/v1/jobs/" + rec.ID,
	})
}

// buildJob resolves a request into an engine job plus its tracking
// record. On failure the reason label classifies the rejection for the
// dp_jobs_rejected_total counter.
func (s *Server) buildJob(req *analyzeRequest) (pipeline.Job, *jobRecord, string, error) {
	opt := s.baseOpt
	if req.Threads > 0 {
		opt.Threads = req.Threads
	}
	opt.BottomUpCUs = req.BottomUp

	rec := &jobRecord{State: jobQueued, Submitted: time.Now(), doneCh: make(chan struct{})}
	kinds := 0
	for _, set := range []bool{req.Inline != nil, req.Workload != "", req.Module != ""} {
		if set {
			kinds++
		}
	}
	if kinds > 1 {
		return pipeline.Job{}, nil, rejectSpec,
			fmt.Errorf("workload, inline, and module are mutually exclusive")
	}
	switch {
	case req.Inline != nil:
		mod, name, err := buildInline(req.Inline)
		if err != nil {
			return pipeline.Job{}, nil, rejectSpec, err
		}
		// Inline modules are arbitrary client input: no cache key, every
		// submission profiles.
		opt.MaxInstrs = s.cfg.SubmissionInstrs
		rec.Workload = "inline:" + name
		rec.ID = s.jobs.nextID()
		return pipeline.Job{Name: rec.ID, Mod: mod, Opt: &opt}, rec, "", nil
	case req.Module != "":
		raw, err := base64.StdEncoding.DecodeString(req.Module)
		if err != nil {
			return pipeline.Job{}, nil, rejectDecode,
				fmt.Errorf("module is not valid base64: %v", err)
		}
		mod, err := remote.Decode(raw)
		if err != nil {
			return pipeline.Job{}, nil, rejectDecode, err
		}
		opt.MaxInstrs = s.cfg.SubmissionInstrs
		// The codec is deterministic, so the payload hash is a
		// content-addressed cache key: resubmitting the same module (a
		// coordinator fanning a batch out repeatedly) skips re-profiling
		// without trusting any client-supplied identity.
		sum := sha256.Sum256(raw)
		opt.CacheKey = "mod:" + hex.EncodeToString(sum[:])
		rec.Workload = "module:" + mod.Name
		rec.ID = s.jobs.nextID()
		return pipeline.Job{Name: rec.ID, Mod: mod, Opt: &opt}, rec, "", nil
	case req.Workload != "":
		name, scale, err := parseWorkloadSpec(req.Workload, req.Scale)
		if err != nil {
			return pipeline.Job{}, nil, rejectSpec, err
		}
		prog, err := workloads.Build(name, scale)
		if err != nil {
			return pipeline.Job{}, nil, rejectSpec, err
		}
		opt.CacheKey = fmt.Sprintf("%s@%d", name, scale)
		rec.Workload = name
		rec.Scale = scale
		rec.ID = s.jobs.nextID()
		return pipeline.Job{Name: rec.ID, Mod: prog.M, Opt: &opt}, rec, "", nil
	}
	return pipeline.Job{}, nil, rejectSpec,
		fmt.Errorf("request needs a workload name, an inline module, or a serialized module")
}

// maxWorkloadScale caps submitted scale factors: workload sizes grow
// roughly linearly with scale, so an uncapped request could allocate an
// arbitrarily large arena and hold a worker for hours (the inline path has
// the same guard via its per-kernel N bound).
const maxWorkloadScale = 64

// maxSubmissionInstrs is the execution budget for inline and serialized
// module submissions. The decode limits bound only memory and structure,
// not work: a few-hundred-byte module can still hold an effectively
// infinite loop, so arbitrary client programs get an instruction budget
// (generous — an order of magnitude above the largest capped workload)
// where registry workloads, bounded by maxWorkloadScale, run unbudgeted.
const maxSubmissionInstrs = 64 << 20

// parseWorkloadSpec splits "name@scale"; an explicit suffix wins over the
// request's scale field. A scale of 0 means the default (1); malformed
// suffixes, negative scales, and scales beyond maxWorkloadScale are
// rejected.
func parseWorkloadSpec(spec string, scale int) (string, int, error) {
	name := spec
	for i := 0; i < len(spec); i++ {
		if spec[i] == '@' {
			name = spec[:i]
			n, err := strconv.Atoi(spec[i+1:])
			if err != nil {
				return "", 0, fmt.Errorf("bad scale suffix in %q", spec)
			}
			scale = n
			break
		}
	}
	if scale == 0 {
		scale = 1
	}
	if scale < 1 || scale > maxWorkloadScale {
		return "", 0, fmt.Errorf("scale %d out of range [1, %d]", scale, maxWorkloadScale)
	}
	return name, scale, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	// ?wait=2s blocks until the job finishes or the timeout elapses —
	// submit-then-wait without a poll loop.
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait duration %q", waitSpec)
			return
		}
		const maxWait = 30 * time.Second
		if d > maxWait {
			d = maxWait
		}
		select {
		case <-rec.doneCh:
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.jobs.snapshot(rec))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"workloads": workloads.List(r.URL.Query().Get("suite")),
		"suites":    workloads.Suites(),
	})
}

// handleJobTrace renders a finished job's span tree: Chrome trace-event
// JSON by default (loadable in Perfetto / about:tracing), an indented
// text tree with ?format=text.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	view := s.jobs.snapshot(rec)
	if view.State == jobQueued {
		writeError(w, http.StatusConflict, "job %q not finished", id)
		return
	}
	if view.Result == nil || len(view.Result.Spans) == 0 {
		writeError(w, http.StatusNotFound, "job %q has no recorded trace", id)
		return
	}
	tid := view.Result.TraceID
	if tid == "" {
		tid = id
	}
	tr := &obs.Trace{ID: tid, Spans: view.Result.Spans}
	switch r.URL.Query().Get("format") {
	case "", "chrome", "json":
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChrome(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr.WriteText(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q", r.URL.Query().Get("format"))
	}
}

// handleWorkloadProfile profiles a bundled workload and serves its
// per-line execution effort as a gzipped pprof profile (sample type
// "instructions"), directly loadable with `go tool pprof`. The run is
// synchronous — workload cost is bounded by maxWorkloadScale, the same
// cap the analyze path relies on.
func (s *Server) handleWorkloadProfile(w http.ResponseWriter, r *http.Request) {
	scale := 1
	if spec := r.URL.Query().Get("scale"); spec != "" {
		n, err := strconv.Atoi(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad scale %q", spec)
			return
		}
		scale = n
	}
	name, scale, err := parseWorkloadSpec(r.PathValue("name"), scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prog, err := workloads.Build(name, scale)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	res := profiler.Profile(prog.M, profiler.Options{})
	data, err := obs.EncodeLineProfile("instructions", "count",
		obs.ModuleLineSamples(prog.M, res.Lines), time.Now().UnixNano())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode profile: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s@%d.pb.gz", name, scale)))
	w.Write(data)
}

// handleRecent serves the bounded ring of finished-job span summaries;
// it answers for jobs whose full records have already been evicted.
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"recent": s.jobs.recentList()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// A journal that is dropping appends degrades durability, not
	// liveness: the service stays 200 (it is still serving correctly) but
	// the body names the degradation so probes and humans can see that a
	// restart would replay incomplete state.
	if s.journal != nil {
		if err := s.journal.Err(); err != nil {
			fmt.Fprintf(w, "degraded: journal: %v\n", err)
			return
		}
		if n := s.journalAppendErrs.Load(); n > 0 {
			fmt.Fprintf(w, "degraded: journal: %d append failures\n", n)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
