package server

import (
	"fmt"

	"discopop/internal/ir"
)

// InlineSpec describes a synthetic module submitted over the API without
// naming a bundled workload: a sequence of kernels chosen from canonical
// dependence patterns, sized by iteration count. The service assembles a
// real IR module from the spec and runs it through the full pipeline, so
// clients can probe how the analyzer classifies shapes that are not in the
// registry.
type InlineSpec struct {
	// Name labels the module (default "inline").
	Name string `json:"name,omitempty"`
	// Kernels runs in order inside one main function, each on its own
	// arrays.
	Kernels []KernelSpec `json:"kernels"`
}

// KernelSpec is one loop nest. Patterns:
//
//	doall       independent iterations (a[i] = f(i)); expect DOALL
//	reduction   sum over an array; expect DOALL with a reduction clause
//	recurrence  a[i] = a[i-1] + 1; loop-carried RAW, inherently sequential
//	histogram   indirect binning writes (hist[bin(x)] += 1)
//	stencil     3-point average into a separate output array; expect DOALL
type KernelSpec struct {
	Pattern string `json:"pattern"`
	// N is the iteration count (default 256, clamped to [4, 65536]).
	N int `json:"n,omitempty"`
}

// Inline sizing bounds: enough to exercise every pattern, small enough
// that one request cannot monopolize a worker.
const (
	inlineDefaultN = 256
	inlineMinN     = 4
	inlineMaxN     = 65536
	inlineMaxKerns = 16
)

// buildInline assembles the module described by spec. Invalid specs
// (unknown pattern, no kernels) return an error for a 400 response.
func buildInline(spec *InlineSpec) (*ir.Module, string, error) {
	name := spec.Name
	if name == "" {
		name = "inline"
	}
	if len(spec.Kernels) == 0 {
		return nil, "", fmt.Errorf("inline module needs at least one kernel")
	}
	if len(spec.Kernels) > inlineMaxKerns {
		return nil, "", fmt.Errorf("inline module has %d kernels (max %d)",
			len(spec.Kernels), inlineMaxKerns)
	}
	b := ir.NewBuilder(name)
	type build func(fb *ir.FuncBuilder)
	var kernels []build
	for ki, k := range spec.Kernels {
		n := k.N
		if n == 0 {
			n = inlineDefaultN
		}
		if n < inlineMinN || n > inlineMaxN {
			return nil, "", fmt.Errorf("kernel %d: n=%d out of range [%d, %d]",
				ki, n, inlineMinN, inlineMaxN)
		}
		nn := int64(n)
		// Globals must be declared before the function body references
		// them; each kernel works on its own arrays.
		pfx := fmt.Sprintf("k%d_", ki)
		switch k.Pattern {
		case "doall":
			a := b.GlobalArray(pfx+"a", ir.F64, n)
			kernels = append(kernels, func(fb *ir.FuncBuilder) {
				fb.For(pfx+"i", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(a, ir.V(i), ir.Mul(ir.CF(1.5), ir.V(i)))
				})
			})
		case "reduction":
			a := b.GlobalArray(pfx+"a", ir.F64, n)
			acc := b.Global(pfx+"sum", ir.F64)
			kernels = append(kernels, func(fb *ir.FuncBuilder) {
				fb.For(pfx+"init", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(a, ir.V(i), ir.Rnd())
				})
				fb.Set(acc, ir.CF(0))
				fb.For(pfx+"i", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.Set(acc, ir.Add(ir.V(acc), ir.At(a, ir.V(i))))
				})
			})
		case "recurrence":
			a := b.GlobalArray(pfx+"a", ir.F64, n)
			kernels = append(kernels, func(fb *ir.FuncBuilder) {
				fb.SetAt(a, ir.CI(0), ir.CF(1))
				fb.For(pfx+"i", ir.CI(1), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(a, ir.V(i),
						ir.Add(ir.At(a, ir.Sub(ir.V(i), ir.CI(1))), ir.CF(1)))
				})
			})
		case "histogram":
			bins := 32
			data := b.GlobalArray(pfx+"data", ir.F64, n)
			hist := b.GlobalArray(pfx+"hist", ir.F64, bins)
			kernels = append(kernels, func(fb *ir.FuncBuilder) {
				bin := fb.Local(pfx+"bin", ir.I64)
				fb.For(pfx+"init", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(data, ir.V(i), ir.Rnd())
				})
				fb.For(pfx+"z", ir.CI(0), ir.CI(int64(bins)), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(hist, ir.V(i), ir.CF(0))
				})
				fb.For(pfx+"i", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.Set(bin, ir.Floor(ir.Mul(ir.At(data, ir.V(i)), ir.CI(int64(bins)))))
					fb.SetAt(hist, ir.V(bin), ir.Add(ir.At(hist, ir.V(bin)), ir.CF(1)))
				})
			})
		case "stencil":
			in := b.GlobalArray(pfx+"in", ir.F64, n)
			out := b.GlobalArray(pfx+"out", ir.F64, n)
			kernels = append(kernels, func(fb *ir.FuncBuilder) {
				fb.For(pfx+"init", ir.CI(0), ir.CI(nn), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(in, ir.V(i), ir.Rnd())
				})
				fb.For(pfx+"i", ir.CI(1), ir.CI(nn-1), ir.CI(1), func(i *ir.Var) {
					fb.SetAt(out, ir.V(i), ir.Div(
						ir.Add(ir.At(in, ir.Sub(ir.V(i), ir.CI(1))),
							ir.Add(ir.At(in, ir.V(i)),
								ir.At(in, ir.Add(ir.V(i), ir.CI(1))))),
						ir.CF(3)))
				})
			})
		default:
			return nil, "", fmt.Errorf("kernel %d: unknown pattern %q (want doall, reduction, recurrence, histogram, or stencil)", ki, k.Pattern)
		}
	}
	fb := b.Func("main")
	for _, k := range kernels {
		k(fb)
	}
	return b.Build(fb.Done()), name, nil
}
