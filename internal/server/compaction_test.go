package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"discopop/internal/journal"
)

// drainNow shuts one server incarnation down cleanly so the next can own
// its journal file.
func drainNow(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts.Close()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCompactionBoundsReplay is the tentpole acceptance scenario:
// with tight compaction thresholds, N submissions must NOT mean a
// replay of ~3N records on the next boot — compaction rotates the log to
// checkpoint + live snapshot, so the restart replays records bounded by
// the store cap while every retained job still answers with its result.
func TestJournalCompactionBoundsReplay(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"
	const jobs = 16
	const storeCap = 4

	s1, err := New(Config{
		Workers: 2, JournalPath: path,
		MaxRecords:        storeCap,
		JournalMaxRecords: 6,  // > one job's records, < two store caps
		JournalMaxBytes:   -1, // records are the deterministic trigger here
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	var lastID string
	for i := 0; i < jobs; i++ {
		lastID = postAnalyze(t, ts1.URL, `{"workload":"histogram"}`)
		if v := waitJob(t, ts1.URL, lastID); v.State != jobDone {
			t.Fatalf("job %s: state=%q error=%q", lastID, v.State, v.Error)
		}
	}
	want := waitJob(t, ts1.URL, lastID)
	sc := scrape(t, ts1.URL)
	if n := mustValue(t, sc, "dp_journal_compactions_total"); n < 1 {
		t.Fatalf("dp_journal_compactions_total = %v after %d jobs over a %d-record threshold", n, jobs, 6)
	}
	if n := mustValue(t, sc, "dp_journal_live_records"); n >= 3*jobs {
		t.Fatalf("dp_journal_live_records = %v — compaction never bounded the log", n)
	}
	drainNow(t, s1, ts1)

	// Restart: replay must be bounded by the live store, not the history.
	_, ts2 := newTestServer(t, Config{Workers: 1, JournalPath: path, MaxRecords: storeCap})
	sc2 := scrape(t, ts2.URL)
	replayed := mustValue(t, sc2, "dp_journal_replayed_records")
	// The generation holds at most: one checkpoint, the snapshot
	// (2 records per retained job), and the appends since the last
	// rotation — which the 2x thrash guard caps below twice the
	// post-compaction baseline. 3*jobs is what an uncompacted log would
	// replay.
	if replayed > 2*(1+2*storeCap) || replayed >= 3*jobs {
		t.Fatalf("restart replayed %v records for %d submissions (store cap %d) — not bounded", replayed, jobs, storeCap)
	}
	// The retained pre-crash job still answers ?wait with its result.
	rr := getWith(t, ts2.URL+"/v1/jobs/"+lastID+"?wait=5s", "")
	var got jobView
	if err := json.NewDecoder(rr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if got.State != jobDone || got.Result == nil {
		t.Fatalf("restored job %s: state=%q result=%v", lastID, got.State, got.Result)
	}
	a, _ := json.Marshal(want.Result)
	b, _ := json.Marshal(got.Result)
	if string(a) != string(b) {
		t.Fatalf("restored result differs from the original:\npre  %s\npost %s", a, b)
	}
}

// TestJournalSpillRestore: a finished job whose result exceeds the 1 MiB
// record cap survives a restart — journaled as a hash, stored in the
// spill dir, and served back verbatim through ?wait after replay.
func TestJournalSpillRestore(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"

	// Fabricate the pre-crash journal directly: the analysis engine cannot
	// naturally produce a >1 MiB summary, but a coordinator aggregating
	// worker spans can, and the journal must not care which it was.
	bigNotes := strings.Repeat("n", 2<<20)
	res := &jobResult{
		Instrs: 12345, Deps: 7, CUs: 3,
		Suggestions: []suggestionView{{
			Rank: 1, Kind: "DOALL", Loc: "9:1", Coverage: 0.9,
			Speedup: 8, Score: 7.2, Notes: bigNotes,
		}},
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= journal.MaxRecordBytes {
		t.Fatalf("test result is only %d bytes; not oversized", len(raw))
	}
	jnl, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	if err := jnl.Append(journal.Record{
		Op: journal.OpAccepted, ID: "j000001", Time: now,
		Workload: "histogram", Client: anonClient,
	}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(journal.Record{
		Op: journal.OpFinished, ID: "j000001", Time: now,
		State: jobDone, Result: raw,
	}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1, JournalPath: path})
	rr := getWith(t, ts.URL+"/v1/jobs/j000001?wait=5s", "")
	var got jobView
	if err := json.NewDecoder(rr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if got.State != jobDone || got.Result == nil {
		t.Fatalf("spilled job: state=%q result=%v error=%q", got.State, got.Result, got.Error)
	}
	if len(got.Result.Suggestions) != 1 || got.Result.Suggestions[0].Notes != bigNotes {
		t.Fatalf("spilled result came back mangled: %d suggestions, %d note bytes",
			len(got.Result.Suggestions), len(got.Result.Suggestions[0].Notes))
	}
	if got.Result.Instrs != 12345 {
		t.Fatalf("spilled result instrs = %d", got.Result.Instrs)
	}
	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_journal_spill_files"); n < 1 {
		t.Fatalf("dp_journal_spill_files = %v, want >= 1", n)
	}
	if n := mustValue(t, sc, "dp_journal_spill_bytes"); n < float64(journal.MaxRecordBytes) {
		t.Fatalf("dp_journal_spill_bytes = %v", n)
	}
}

// TestServerCompactionDifferential: a server booted from a compacted
// journal serves exactly the same job listing as one booted from the
// uncompacted log the compaction replaced.
func TestServerCompactionDifferential(t *testing.T) {
	dir := t.TempDir()
	orig := dir + "/orig.journal"
	copyTo := dir + "/copy.journal"

	// Settle a few jobs into the journal.
	s1, err := New(Config{Workers: 2, JournalPath: orig})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	for _, body := range []string{
		`{"workload":"histogram"}`, `{"workload":"EP"}`, `{"workload":"histogram","scale":2}`,
	} {
		id := postAnalyze(t, ts1.URL, body)
		if v := waitJob(t, ts1.URL, id); v.State != jobDone {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
	}
	drainNow(t, s1, ts1)
	data, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyTo, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Compact orig in place through the server's own snapshot exporter.
	s2, err := New(Config{Workers: 1, JournalPath: orig})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	if err := s2.journal.Compact(s2.jobs.exportRecords); err != nil {
		t.Fatal(err)
	}
	drainNow(t, s2, ts2)

	listing := func(path string) (string, float64) {
		s, err := New(Config{Workers: 1, JournalPath: path})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer drainNow(t, s, ts)
		resp := getWith(t, ts.URL+"/v1/jobs", "")
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), mustValue(t, scrape(t, ts.URL), "dp_journal_replayed_records")
	}
	compacted, nc := listing(orig)
	uncompacted, nu := listing(copyTo)
	if compacted != uncompacted {
		t.Fatalf("restore(compacted) != restore(uncompacted):\n%s\n%s", compacted, uncompacted)
	}
	// Same store, but the compacted log replays the checkpointed snapshot,
	// never more than the original history.
	if nc > nu+1 { // +1: the checkpoint marker itself
		t.Fatalf("compacted log replayed %v records, uncompacted %v", nc, nu)
	}
}

// TestJournalAppendErrorsSurface: when appends start failing, the loss is
// visible — dp_journal_append_errors_total counts it and /healthz flips
// to degraded instead of the old log-only reporting.
func TestJournalAppendErrorsSurface(t *testing.T) {
	path := t.TempDir() + "/jobs.journal"
	s, ts := newTestServer(t, Config{Workers: 1, JournalPath: path})

	hr := getWith(t, ts.URL+"/healthz", "")
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthy healthz: %d %q", hr.StatusCode, body)
	}

	// Kill the journal underneath the server: every transition append from
	// here on fails, the way a yanked volume or full disk would.
	if err := s.journal.Close(); err != nil {
		t.Fatal(err)
	}
	id := postAnalyze(t, ts.URL, `{"workload":"histogram"}`)
	if v := waitJob(t, ts.URL, id); v.State != jobDone {
		t.Fatalf("job should still run with a dead journal: %q %s", v.State, v.Error)
	}

	sc := scrape(t, ts.URL)
	if n := mustValue(t, sc, "dp_journal_append_errors_total"); n < 1 {
		t.Fatalf("dp_journal_append_errors_total = %v, want >= 1", n)
	}
	hr2 := getWith(t, ts.URL+"/healthz", "")
	body2, _ := io.ReadAll(hr2.Body)
	hr2.Body.Close()
	if hr2.StatusCode != http.StatusOK {
		t.Fatalf("degraded durability must not fail liveness: %d", hr2.StatusCode)
	}
	if !strings.Contains(string(body2), "degraded") {
		t.Fatalf("healthz body %q does not surface the degraded journal", body2)
	}
}

// TestConfigJournalThresholdDefaults pins the 0/negative semantics of the
// compaction threshold knobs.
func TestConfigJournalThresholdDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.JournalMaxBytes != defaultJournalMaxBytes || c.JournalMaxRecords != defaultJournalMaxRecords {
		t.Fatalf("zero-value thresholds = %d/%d", c.JournalMaxBytes, c.JournalMaxRecords)
	}
	c = Config{JournalMaxBytes: -1, JournalMaxRecords: -1}.withDefaults()
	if c.JournalMaxBytes != 0 || c.JournalMaxRecords != 0 {
		t.Fatalf("negative thresholds = %d/%d, want disabled (0)", c.JournalMaxBytes, c.JournalMaxRecords)
	}
	c = Config{JournalMaxBytes: 4096, JournalMaxRecords: 12}.withDefaults()
	if c.JournalMaxBytes != 4096 || c.JournalMaxRecords != 12 {
		t.Fatalf("explicit thresholds rewritten to %d/%d", c.JournalMaxBytes, c.JournalMaxRecords)
	}
}
