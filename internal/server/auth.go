package server

import (
	"context"
	"crypto/subtle"
	"net/http"
	"strings"
)

// Bearer-token authentication for the /v1/* surface. Configured through
// Config.Tokens (token -> client identity); with no tokens configured the
// service runs open and every request acts as the anonymous client, which
// keeps single-node and test deployments zero-config. /healthz and
// /metrics are always unauthenticated: liveness probes and scrapers must
// not need credentials.
//
// The client identity resolved from the token is what rate limits,
// quotas, idempotency keys, and journal records are keyed by — two tokens
// mapping to the same client share one budget.

// anonClient is the identity of every request when auth is disabled.
const anonClient = "anonymous"

type clientCtxKey struct{}

// clientFrom returns the authenticated client identity stored by the auth
// wrapper (anonClient when auth is disabled).
func clientFrom(ctx context.Context) string {
	if c, ok := ctx.Value(clientCtxKey{}).(string); ok {
		return c
	}
	return anonClient
}

// auth wraps a /v1 handler with bearer-token authentication. Token
// comparison is constant-time per entry so a probe cannot binary-search a
// token byte by byte; the token set is static for the server's lifetime
// (rotation = restart, journal replay makes that cheap).
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if len(s.cfg.Tokens) == 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := bearerToken(r)
		if ok {
			client, match := "", false
			for candidate, id := range s.cfg.Tokens {
				if subtle.ConstantTimeCompare([]byte(candidate), []byte(tok)) == 1 {
					client, match = id, true
				}
			}
			if match {
				ctx := context.WithValue(r.Context(), clientCtxKey{}, client)
				h(w, r.WithContext(ctx))
				return
			}
		}
		s.reject(rejectAuth)
		w.Header().Set("WWW-Authenticate", `Bearer realm="dp-serve"`)
		writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
	}
}

// bearerToken extracts the token from "Authorization: Bearer <token>".
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(h[len(prefix):]), true
}
