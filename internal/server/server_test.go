package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"discopop/internal/ir"
	"discopop/internal/metrics"
	"discopop/internal/remote"
	"discopop/internal/workloads"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func postAnalyze(t *testing.T, base string, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/analyze %q: %d %s", body, resp.StatusCode, buf.String())
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("empty job id")
	}
	return out.ID
}

// waitJob polls GET /v1/jobs/{id}?wait=... until the job leaves the queued
// state.
func waitJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State != jobQueued {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still queued after 60s", id)
		}
	}
}

func scrape(t *testing.T, base string) *metrics.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	s, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics do not parse: %v", err)
	}
	return s
}

func mustValue(t *testing.T, s *metrics.Scrape, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, ok := s.Value(name, labels...)
	if !ok {
		t.Fatalf("metric %s%v missing", name, labels)
	}
	return v
}

// TestEndToEnd is the service round trip of the issue: submit two
// workloads, poll to completion, resubmit one and observe the profile
// cache serving it, and validate the /metrics exposition throughout.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	before := scrape(t, ts.URL)
	if v := mustValue(t, before, "dp_jobs_submitted_total"); v != 0 {
		t.Errorf("fresh server submitted=%v", v)
	}

	id1 := postAnalyze(t, ts.URL, `{"workload":"histogram"}`)
	id2 := postAnalyze(t, ts.URL, `{"workload":"EP","scale":1}`)
	v1 := waitJob(t, ts.URL, id1)
	v2 := waitJob(t, ts.URL, id2)
	for _, v := range []jobView{v1, v2} {
		if v.State != jobDone {
			t.Fatalf("job %s: state %s (%s)", v.ID, v.State, v.Error)
		}
		if v.Result == nil || v.Result.Instrs == 0 || v.Result.Deps == 0 {
			t.Fatalf("job %s: empty result %+v", v.ID, v.Result)
		}
		if v.Result.CacheHit {
			t.Errorf("job %s: first analysis claims a cache hit", v.ID)
		}
	}
	if len(v1.Result.Suggestions) == 0 {
		t.Error("histogram analysis returned no suggestions")
	}
	// The top histogram suggestions must carry real ranking metrics.
	top := v1.Result.Suggestions[0]
	if top.Kind == "" || top.Score <= 0 || top.Coverage <= 0 {
		t.Errorf("degenerate top suggestion %+v", top)
	}

	// Repeat submission: same workload@scale must be served from the
	// profile cache.
	id3 := postAnalyze(t, ts.URL, `{"workload":"histogram","scale":1}`)
	v3 := waitJob(t, ts.URL, id3)
	if v3.State != jobDone {
		t.Fatalf("repeat job: %s (%s)", v3.State, v3.Error)
	}
	if !v3.Result.CacheHit {
		t.Error("repeat histogram@1 submission did not hit the profile cache")
	}
	if v3.Result.Deps != v1.Result.Deps || v3.Result.Instrs != v1.Result.Instrs {
		t.Errorf("cached result diverged: deps %d vs %d, instrs %d vs %d",
			v3.Result.Deps, v1.Result.Deps, v3.Result.Instrs, v1.Result.Instrs)
	}

	after := scrape(t, ts.URL)
	checkMonotone(t, before, after,
		"dp_jobs_accepted_total", "dp_jobs_submitted_total", "dp_jobs_completed_total",
		"dp_instrs_total", "dp_accesses_total", "dp_busy_seconds_total",
		"dp_pool_gets_total", "dp_pool_puts_total", "dp_pool_fresh_total",
		"dp_profile_cache_hits_total", "dp_http_requests_total")
	if v := mustValue(t, after, "dp_jobs_completed_total"); v != 3 {
		t.Errorf("completed=%v, want 3", v)
	}
	if v := mustValue(t, after, "dp_jobs_accepted_total"); v != 3 {
		t.Errorf("accepted=%v, want 3", v)
	}
	if v := mustValue(t, after, "dp_jobs_inflight"); v != 0 {
		t.Errorf("inflight=%v after all jobs done", v)
	}
	if v := mustValue(t, after, "dp_jobs_failed_total"); v != 0 {
		t.Errorf("failed=%v", v)
	}
	if v := mustValue(t, after, "dp_profile_cache_hits_total"); v < 1 {
		t.Errorf("cache hits=%v, want >=1", v)
	}
	if v := mustValue(t, after, "dp_pool_gets_total"); v < 2 {
		t.Errorf("pool gets=%v, want >=2 (two uncached profiles)", v)
	}
	if after.Types["dp_queue_latency_seconds"] != "histogram" {
		t.Errorf("queue latency TYPE = %q", after.Types["dp_queue_latency_seconds"])
	}
	checkHistogramCumulative(t, after, "dp_queue_latency_seconds", 3)
	if v := mustValue(t, after, "dp_stage_seconds_total", metrics.L("stage", "profile")); v <= 0 {
		t.Errorf("profile stage seconds = %v", v)
	}
}

// checkMonotone asserts counters never decreased between two scrapes.
// Families with labels are summed.
func checkMonotone(t *testing.T, before, after *metrics.Scrape, names ...string) {
	t.Helper()
	sum := func(s *metrics.Scrape, name string) float64 {
		var total float64
		for _, p := range s.Points {
			if p.Name == name {
				total += p.Value
			}
		}
		return total
	}
	for _, name := range names {
		b, a := sum(before, name), sum(after, name)
		if a < b {
			t.Errorf("counter %s went backwards: %v -> %v", name, b, a)
		}
	}
}

// checkHistogramCumulative validates the le-series: non-decreasing across
// ascending bounds, ending at +Inf == _count.
func checkHistogramCumulative(t *testing.T, s *metrics.Scrape, name string, wantCount float64) {
	t.Helper()
	type bucket struct {
		le  float64
		val float64
	}
	var buckets []bucket
	var inf float64
	for _, p := range s.Points {
		if p.Name != name+"_bucket" {
			continue
		}
		le := p.Labels["le"]
		if le == "+Inf" {
			inf = p.Value
			continue
		}
		var b bucket
		if _, err := fmt.Sscanf(le, "%g", &b.le); err != nil {
			t.Fatalf("unparsable le=%q", le)
		}
		b.val = p.Value
		buckets = append(buckets, b)
	}
	if len(buckets) == 0 {
		t.Fatalf("no %s_bucket series", name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].le <= buckets[i-1].le {
			t.Errorf("%s bounds not ascending at %v", name, buckets[i].le)
		}
		if buckets[i].val < buckets[i-1].val {
			t.Errorf("%s not cumulative: le=%v has %v < %v", name,
				buckets[i].le, buckets[i].val, buckets[i-1].val)
		}
	}
	if inf < buckets[len(buckets)-1].val {
		t.Errorf("%s +Inf bucket %v below last finite bucket", name, inf)
	}
	count := mustValue(t, s, name+"_count")
	if inf != count {
		t.Errorf("%s +Inf bucket %v != _count %v", name, inf, count)
	}
	if count != wantCount {
		t.Errorf("%s _count = %v, want %v", name, count, wantCount)
	}
}

// TestMetricsConcurrentWithJobs scrapes /metrics in a loop while jobs run —
// the acceptance criterion's live-scrape case, meaningful under -race.
func TestMetricsConcurrentWithJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastSubmitted float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := scrape(t, ts.URL)
			v := mustValue(t, s, "dp_jobs_submitted_total")
			if v < lastSubmitted {
				t.Errorf("submitted went backwards: %v -> %v", lastSubmitted, v)
				return
			}
			lastSubmitted = v
			checkHistogramCumulative2(t, s, "dp_queue_latency_seconds")
		}
	}()
	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, postAnalyze(t, ts.URL, `{"workload":"prefix-sum"}`))
	}
	for _, id := range ids {
		if v := waitJob(t, ts.URL, id); v.State != jobDone {
			t.Errorf("%s: %s (%s)", id, v.State, v.Error)
		}
	}
	close(stop)
	wg.Wait()
}

// checkHistogramCumulative2 is the mid-flight variant: cumulativity only,
// no expected count.
func checkHistogramCumulative2(t *testing.T, s *metrics.Scrape, name string) {
	t.Helper()
	var prev float64
	var n int
	for _, p := range s.Points {
		if p.Name != name+"_bucket" {
			continue
		}
		if p.Value < prev {
			t.Errorf("%s bucket regression: %v after %v", name, p.Value, prev)
		}
		prev = p.Value
		n++
	}
	if n == 0 {
		t.Errorf("no %s buckets", name)
	}
}

func TestInlineModuleAnalysis(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := postAnalyze(t, ts.URL,
		`{"inline":{"name":"probe","kernels":[{"pattern":"doall","n":512},{"pattern":"recurrence","n":512}]}}`)
	v := waitJob(t, ts.URL, id)
	if v.State != jobDone {
		t.Fatalf("inline job: %s (%s)", v.State, v.Error)
	}
	if v.Workload != "inline:probe" {
		t.Errorf("workload label %q", v.Workload)
	}
	if v.Result.CacheHit {
		t.Error("inline module must never be cache-served")
	}
	// The doall kernel must rank above the recurrence: one parallel, one
	// inherently sequential.
	if len(v.Result.Suggestions) == 0 {
		t.Fatal("inline analysis returned no suggestions")
	}
	if k := v.Result.Suggestions[0].Kind; !strings.Contains(k, "DOALL") {
		t.Errorf("top inline suggestion kind %q, want a DOALL", k)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"workload":"no-such-workload"}`, http.StatusBadRequest},
		{`{"workload":"CG","inline":{"kernels":[{"pattern":"doall"}]}}`, http.StatusBadRequest},
		{`{"workload":"CG@x"}`, http.StatusBadRequest},
		{`{"workload":"CG","scale":100000000}`, http.StatusBadRequest},
		{`{"workload":"CG@-1"}`, http.StatusBadRequest},
		{`{"inline":{"kernels":[]}}`, http.StatusBadRequest},
		{`{"inline":{"kernels":[{"pattern":"nope"}]}}`, http.StatusBadRequest},
		{`{"inline":{"kernels":[{"pattern":"doall","n":1}]}}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestAnalyzeBodyCapCoversCodecLimit pins the transport cap to the codec
// limit: a module submission well over 1MB must reach the module decoder
// (and be rejected there for its content) rather than dying at
// MaxBytesReader — otherwise the codec's advertised MaxBytes is
// unreachable over the wire and coordinators silently degrade to local
// analysis for larger modules.
func TestAnalyzeBodyCapCoversCodecLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	big := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0xAB}, 2<<20))
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"module":"`+big+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("2MB garbage module: status %d, want 400", resp.StatusCode)
	}
	if strings.Contains(buf.String(), "request body too large") {
		t.Fatalf("2MB module rejected by the body cap, not the decoder: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "bad magic") {
		t.Fatalf("want a codec rejection, got: %s", buf.String())
	}
}

func TestWorkloadSpecParsing(t *testing.T) {
	for _, tc := range []struct {
		spec      string
		scale     int
		wantName  string
		wantScale int
		wantErr   bool
	}{
		{"CG", 0, "CG", 1, false},
		{"CG", 3, "CG", 3, false},
		{"CG@4", 2, "CG", 4, false}, // suffix wins
		{"CG@0", 0, "CG", 1, false}, // 0 = default
		{"CG@x", 0, "", 0, true},
		{"CG@4abc", 0, "", 0, true}, // trailing garbage is not "4"
		{"CG@-3", 0, "", 0, true},   // negative scales are rejected, not coerced
		{"CG@65", 0, "", 0, true},   // beyond maxWorkloadScale
		{"CG", -1, "", 0, true},
		{"CG", maxWorkloadScale + 1, "", 0, true},
	} {
		name, scale, err := parseWorkloadSpec(tc.spec, tc.scale)
		if tc.wantErr != (err != nil) {
			t.Errorf("%q: err=%v", tc.spec, err)
			continue
		}
		if !tc.wantErr && (name != tc.wantName || scale != tc.wantScale) {
			t.Errorf("%q -> (%q, %d), want (%q, %d)", tc.spec, name, scale, tc.wantName, tc.wantScale)
		}
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Workloads []struct {
			Name  string `json:"name"`
			Suite string `json:"suite"`
		} `json:"workloads"`
		Suites []string `json:"suites"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Workloads) < 20 || len(out.Suites) < 4 {
		t.Errorf("registry listing too small: %d workloads, %d suites",
			len(out.Workloads), len(out.Suites))
	}
	for _, w := range out.Workloads {
		if w.Name == "" || w.Suite == "" {
			t.Errorf("incomplete entry %+v", w)
		}
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Jobs submitted before the drain must complete and stay queryable.
	id := postAnalyze(t, ts.URL, `{"workload":"matmul"}`)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil { // idempotent
		t.Fatalf("second drain: %v", err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"workload":"CG"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("analyze while drained: %d, want 503", resp.StatusCode)
	}
	v := waitJob(t, ts.URL, id)
	if v.State != jobDone {
		t.Errorf("pre-drain job: %s (%s)", v.State, v.Error)
	}
}

func TestJobRecordEviction(t *testing.T) {
	var js jobStore
	js.init(2)
	mk := func(state string) *jobRecord {
		rec := &jobRecord{ID: js.nextID(), State: state, doneCh: make(chan struct{})}
		js.add(rec)
		return rec
	}
	a := mk(jobDone)
	b := mk(jobQueued)
	c := mk(jobDone)
	if _, ok := js.get(a.ID); ok {
		t.Error("oldest finished record not evicted")
	}
	for _, rec := range []*jobRecord{b, c} {
		if _, ok := js.get(rec.ID); !ok {
			t.Errorf("record %s evicted wrongly", rec.ID)
		}
	}
	// Queued records survive even over cap.
	d := mk(jobQueued)
	e := mk(jobQueued)
	for _, rec := range []*jobRecord{b, d, e} {
		if _, ok := js.get(rec.ID); !ok {
			t.Errorf("queued record %s evicted", rec.ID)
		}
	}
}

// TestRunawayModuleBudget submits a structurally tiny serialized module
// whose main loops effectively forever: the decode limits cannot reject
// it (memory and node counts are minimal), so the submission-side
// instruction budget must fail the job instead of pinning an engine
// worker until the interpreter's 2^40-iteration backstop.
func TestRunawayModuleBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SubmissionInstrs: 50_000})

	b := ir.NewBuilder("runaway")
	out := b.Global("out", ir.F64)
	fb := b.Func("main")
	fb.While(ir.Lt(ir.CI(0), ir.CI(1)), func() {
		fb.Set(out, ir.Add(ir.V(out), ir.CI(1)))
	})
	fb.Return(nil)
	enc, err := remote.Encode(b.Build(fb.Done()))
	if err != nil {
		t.Fatal(err)
	}
	id := postAnalyze(t, ts.URL,
		fmt.Sprintf(`{"module":%q}`, base64.StdEncoding.EncodeToString(enc)))
	v := waitJob(t, ts.URL, id)
	if v.State != jobFailed {
		t.Fatalf("runaway module ended %q, want failed", v.State)
	}
	if !strings.Contains(v.Error, "instruction budget") {
		t.Fatalf("failure %q is not the budget abort", v.Error)
	}
}

// TestSerializedModuleSubmission submits a full serialized IR module and
// checks it analyzes identically to the same workload submitted by name,
// that resubmission hits the content-addressed profile cache, and that
// malformed payloads are rejected with a categorized counter.
func TestSerializedModuleSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	prog, err := workloads.Build("histogram", 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := remote.Encode(prog.M)
	if err != nil {
		t.Fatal(err)
	}
	modB64 := base64.StdEncoding.EncodeToString(enc)

	byName := waitJob(t, ts.URL, postAnalyze(t, ts.URL, `{"workload":"histogram"}`))
	asModule := waitJob(t, ts.URL, postAnalyze(t, ts.URL,
		fmt.Sprintf(`{"module":%q}`, modB64)))
	if asModule.State != jobDone {
		t.Fatalf("module job state %q: %s", asModule.State, asModule.Error)
	}
	if asModule.Workload != "module:histogram" {
		t.Fatalf("module job labeled %q", asModule.Workload)
	}
	// The decoded module must produce the same analysis as the bundled
	// build: identical instruction count, dependences, CUs, and ranking.
	a, b := byName.Result, asModule.Result
	if a.Instrs != b.Instrs || a.Deps != b.Deps || a.CUs != b.CUs {
		t.Fatalf("module analysis differs: %+v vs %+v", a, b)
	}
	av, _ := json.Marshal(a.Suggestions)
	bv, _ := json.Marshal(b.Suggestions)
	if !bytes.Equal(av, bv) {
		t.Fatalf("module suggestions differ:\n%s\n%s", av, bv)
	}

	// Resubmitting the same bytes must hit the profile cache (the cache
	// key is the payload hash, not a client-supplied name).
	again := waitJob(t, ts.URL, postAnalyze(t, ts.URL,
		fmt.Sprintf(`{"module":%q}`, modB64)))
	if again.State != jobDone || again.Result == nil || !again.Result.CacheHit {
		t.Fatalf("resubmitted module did not hit the cache: %+v", again)
	}

	// Rejections: bad base64, bad bytes, mutual exclusion, footprint.
	for _, body := range []string{
		`{"module":"!!!not-base64"}`,
		`{"module":"` + base64.StdEncoding.EncodeToString([]byte("garbage")) + `"}`,
		`{"module":"` + modB64 + `","workload":"CG"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// The rejected counter must have categorized them.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scrape.Value("dp_jobs_rejected_total", metrics.L("reason", "decode")); !ok || v < 2 {
		t.Fatalf("dp_jobs_rejected_total{reason=decode} = %v (ok=%v), want >= 2", v, ok)
	}
	if v, ok := scrape.Value("dp_jobs_rejected_total", metrics.L("reason", "spec")); !ok || v < 1 {
		t.Fatalf("dp_jobs_rejected_total{reason=spec} = %v (ok=%v), want >= 1", v, ok)
	}
	if scrape.Types["dp_jobs_rejected_total"] != "counter" {
		t.Fatalf("dp_jobs_rejected_total declared as %q", scrape.Types["dp_jobs_rejected_total"])
	}
}

// TestCompileCacheMetrics: the bytecode compile cache surfaces on
// /metrics, and a repeated inline submission — which bypasses the profile
// cache by design — is served by the compile cache instead: identical
// module content compiles once. Asserted as deltas because the compile
// cache is process-wide (bytecode.Shared) and other tests also compile.
func TestCompileCacheMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	before := scrape(t, ts.URL)
	mustValue(t, before, "dp_compile_cache_hits_total")
	mustValue(t, before, "dp_compile_cache_misses_total")
	mustValue(t, before, "dp_compile_cache_entries_total")
	if typ := before.Types["dp_compile_seconds"]; typ != "histogram" {
		t.Errorf("dp_compile_seconds TYPE = %q, want histogram", typ)
	}

	// Content unique to this test, so the first submission is a compile
	// miss no matter what ran before.
	spec := `{"inline":{"name":"ccache-probe","kernels":[{"pattern":"doall","n":512},{"pattern":"reduction","n":512}]}}`
	v1 := waitJob(t, ts.URL, postAnalyze(t, ts.URL, spec))
	if v1.State != jobDone {
		t.Fatalf("first inline job: %s (%s)", v1.State, v1.Error)
	}
	mid := scrape(t, ts.URL)
	if d := mustValue(t, mid, "dp_compile_cache_misses_total") -
		mustValue(t, before, "dp_compile_cache_misses_total"); d < 1 {
		t.Errorf("first inline submission raised compile misses by %v, want >= 1", d)
	}

	v2 := waitJob(t, ts.URL, postAnalyze(t, ts.URL, spec))
	if v2.State != jobDone {
		t.Fatalf("repeat inline job: %s (%s)", v2.State, v2.Error)
	}
	if v2.Result.CacheHit {
		t.Error("inline module must never be profile-cache-served")
	}
	after := scrape(t, ts.URL)
	if d := mustValue(t, after, "dp_compile_cache_hits_total") -
		mustValue(t, mid, "dp_compile_cache_hits_total"); d < 1 {
		t.Errorf("repeat inline submission raised compile hits by %v, want >= 1", d)
	}
	if d := mustValue(t, after, "dp_compile_cache_misses_total") -
		mustValue(t, mid, "dp_compile_cache_misses_total"); d != 0 {
		t.Errorf("repeat inline submission recompiled (%v new misses)", d)
	}
	if v := mustValue(t, after, "dp_compile_cache_entries_total"); v < 1 {
		t.Errorf("compile cache entries = %v, want >= 1", v)
	}
	// The identical content must yield the identical analysis.
	if v2.Result.Deps != v1.Result.Deps || v2.Result.Instrs != v1.Result.Instrs {
		t.Errorf("compile-cached run diverged: deps %d vs %d, instrs %d vs %d",
			v2.Result.Deps, v1.Result.Deps, v2.Result.Instrs, v1.Result.Instrs)
	}
}
