package server

import (
	"math"
	"sync"
	"time"
)

// Per-client admission control: a submission token bucket (rate limit)
// plus quotas on in-flight submissions, interpreted-instruction spend,
// and per-submission module footprint. Over-limit requests are rejected
// with 429 and a Retry-After estimating when the relevant bucket refills,
// counted under dp_jobs_rejected_total{reason="ratelimit"|"quota"}.
//
// The instruction quota is post-paid: admission requires a non-negative
// balance and each finished job debits what it actually executed, so a
// client can overdraw by at most one job and then waits out the debt.
// Pre-paying would need a cost estimate before the analysis runs — which
// is exactly the thing the analysis computes.

// Quotas configures per-client admission control. The zero value disables
// every limit (open single-node deployments and tests are unaffected).
type Quotas struct {
	// SubmitRate is the steady-state submissions per second one client may
	// make (0 = unlimited).
	SubmitRate float64
	// SubmitBurst is the submission bucket capacity (0 = max(1,
	// ceil(4×SubmitRate)), so short bursts above the steady rate pass).
	SubmitBurst int
	// MaxInflight caps a client's accepted-but-unfinished jobs
	// (0 = unlimited).
	MaxInflight int
	// InstrRate refills a client's instruction budget, in interpreted IR
	// statements per second (0 = unlimited).
	InstrRate float64
	// InstrBurst is the instruction bucket capacity (0 = 10s of InstrRate).
	InstrBurst float64
	// MaxModuleBytes caps one serialized-module submission's payload for a
	// client, before base64 decoding counts against the codec limits
	// (0 = no per-client cap; the codec's own limits still apply).
	MaxModuleBytes int
}

func (q Quotas) withDefaults() Quotas {
	if q.SubmitRate > 0 && q.SubmitBurst <= 0 {
		q.SubmitBurst = int(math.Max(1, math.Ceil(4*q.SubmitRate)))
	}
	if q.InstrRate > 0 && q.InstrBurst <= 0 {
		q.InstrBurst = 10 * q.InstrRate
	}
	return q
}

// enabled reports whether any limit is configured; a disabled limiter is
// never consulted, so the open configuration costs nothing per request.
func (q Quotas) enabled() bool {
	return q.SubmitRate > 0 || q.MaxInflight > 0 || q.InstrRate > 0 || q.MaxModuleBytes > 0
}

// bucket is a token bucket refilled continuously: level is the balance as
// of last.
type bucket struct {
	level float64
	last  time.Time
}

func (b *bucket) refill(now time.Time, rate, burst float64) {
	if b.last.IsZero() {
		b.level = burst
	} else {
		b.level = math.Min(burst, b.level+rate*now.Sub(b.last).Seconds())
	}
	b.last = now
}

// untilPositive estimates how long until the bucket holds at least `need`
// tokens at the given rate.
func (b *bucket) untilPositive(need, rate float64) time.Duration {
	if b.level >= need || rate <= 0 {
		return 0
	}
	return time.Duration((need - b.level) / rate * float64(time.Second))
}

type clientBudget struct {
	subs     bucket
	instrs   bucket
	inflight int
}

// limiter holds every client's budgets. Its lock is taken once per
// submission and once per completion — never on the analysis hot path.
type limiter struct {
	q       Quotas
	mu      sync.Mutex
	clients map[string]*clientBudget
}

func newLimiter(q Quotas) *limiter {
	q = q.withDefaults()
	if !q.enabled() {
		return nil
	}
	return &limiter{q: q, clients: map[string]*clientBudget{}}
}

func (l *limiter) budget(client string) *clientBudget {
	b := l.clients[client]
	if b == nil {
		b = &clientBudget{}
		l.clients[client] = b
	}
	return b
}

// admit charges one submission against the client's budgets. On success
// it increments the in-flight count (released by finish or release). On
// rejection it reports the reason label and a Retry-After estimate.
func (l *limiter) admit(client string) (retryAfter time.Duration, reason string, ok bool) {
	if l == nil {
		return 0, "", true
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.budget(client)
	if l.q.SubmitRate > 0 {
		b.subs.refill(now, l.q.SubmitRate, float64(l.q.SubmitBurst))
		if b.subs.level < 1 {
			return b.subs.untilPositive(1, l.q.SubmitRate), rejectRate, false
		}
	}
	if l.q.InstrRate > 0 {
		b.instrs.refill(now, l.q.InstrRate, l.q.InstrBurst)
		if b.instrs.level <= 0 {
			// In debt from earlier jobs: wait out the overdraft.
			return b.instrs.untilPositive(1, l.q.InstrRate), rejectQuota, false
		}
	}
	if l.q.MaxInflight > 0 && b.inflight >= l.q.MaxInflight {
		// No refill schedule to estimate from; a poll interval is honest.
		return time.Second, rejectQuota, false
	}
	if l.q.SubmitRate > 0 {
		b.subs.level--
	}
	b.inflight++
	return 0, "", true
}

// admitModuleBytes checks the per-submission footprint quota (separately
// from admit: the payload size is known only after the body parses).
func (l *limiter) admitModuleBytes(n int) bool {
	return l == nil || l.q.MaxModuleBytes <= 0 || n <= l.q.MaxModuleBytes
}

// release undoes admit's in-flight charge for a submission that never
// became a job (spec rejected, queue full, idempotent replay). The spent
// rate token is deliberately not refunded: malformed or duplicate
// submissions still consume a client's request budget.
func (l *limiter) release(client string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.clients[client]; b != nil && b.inflight > 0 {
		b.inflight--
	}
}

// finish settles a completed job: the in-flight slot frees and the
// instructions it actually executed debit the client's budget.
func (l *limiter) finish(client string, instrs int64) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.budget(client)
	if b.inflight > 0 {
		b.inflight--
	}
	if l.q.InstrRate > 0 {
		b.instrs.refill(now, l.q.InstrRate, l.q.InstrBurst)
		b.instrs.level -= float64(instrs)
	}
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 so clients never busy-loop on 0.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
