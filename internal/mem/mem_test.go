package mem

import (
	"sync"
	"testing"
)

func TestLayoutAlignment(t *testing.T) {
	for _, globalsEnd := range []uint64{1, 2, PageSize - 1, PageSize, PageSize + 1, 3*PageSize + 7} {
		l := NewLayout(globalsEnd)
		if l.StacksBase%PageSize != 0 {
			t.Fatalf("globalsEnd=%d: StacksBase %d not page-aligned", globalsEnd, l.StacksBase)
		}
		if l.StacksBase < globalsEnd {
			t.Fatalf("globalsEnd=%d: stacks overlap globals", globalsEnd)
		}
		if l.HeapBase != l.StacksBase+MaxThreads*StackElems {
			t.Fatalf("globalsEnd=%d: heap base %d does not follow the stacks", globalsEnd, l.HeapBase)
		}
		if got := l.StackBase(3); got != l.StacksBase+3*StackElems {
			t.Fatalf("StackBase(3) = %d", got)
		}
	}
}

func TestLazyMaterialization(t *testing.T) {
	s := NewSpace(NewLayout(100))
	if s.Footprint() != 0 {
		t.Fatalf("fresh space materialized %d bytes", s.Footprint())
	}
	// Loads from untouched pages read zero without materializing.
	if v := s.Load(42); v != 0 {
		t.Fatalf("untouched load = %v", v)
	}
	if s.Footprint() != 0 {
		t.Fatalf("load materialized %d bytes", s.Footprint())
	}
	// A store materializes exactly one page.
	s.Store(42, 3.5)
	if s.Footprint() != PageSize*8 {
		t.Fatalf("after one store footprint = %d, want one page", s.Footprint())
	}
	if v := s.Load(42); v != 3.5 {
		t.Fatalf("load after store = %v", v)
	}
	// A store into a stack segment materializes just that segment.
	s.Store(s.Layout().StackBase(0), 1)
	if got := s.StackPagesTouched(); got != 1 {
		t.Fatalf("stack pages touched = %d, want 1", got)
	}
	s.Store(s.Layout().StackBase(5), 1)
	if got := s.StackPagesTouched(); got != 2 {
		t.Fatalf("stack pages touched = %d, want 2", got)
	}
}

func TestResetIsEquivalentToFresh(t *testing.T) {
	l := NewLayout(10)
	s := NewSpace(l)
	s.Store(3, 7)
	s.Store(l.StackBase(0)+5, 8)
	base := s.Alloc(100)
	s.Store(base, 9)
	s.Free(base, 100)
	s.Reset()

	if v := s.Load(3); v != 0 {
		t.Fatalf("global survived reset: %v", v)
	}
	if v := s.Load(l.StackBase(0) + 5); v != 0 {
		t.Fatalf("stack slot survived reset: %v", v)
	}
	if s.Bound() != l.HeapBase {
		t.Fatalf("heap not rewound: bound %d, want %d", s.Bound(), l.HeapBase)
	}
	if s.MaxHeap() != 0 {
		t.Fatalf("max heap survived reset: %d", s.MaxHeap())
	}
	// The freed block must not be handed out post-reset (free lists clear):
	// a fresh Alloc bump-allocates from HeapBase again.
	if got := s.Alloc(100); got != l.HeapBase {
		t.Fatalf("post-reset alloc at %d, want %d", got, l.HeapBase)
	}
	if v := s.Load(base); v != 0 {
		t.Fatalf("heap value survived reset: %v", v)
	}
}

func TestHeapFreeListReuse(t *testing.T) {
	s := NewSpace(NewLayout(1))
	a := s.Alloc(16)
	s.Free(a, 16)
	if b := s.Alloc(16); b != a {
		t.Fatalf("freed block not reused: %d vs %d", b, a)
	}
	// Different size does not hit the freed block.
	if c := s.Alloc(8); c == a {
		t.Fatal("size-8 alloc reused a size-16 free block")
	}
}

func TestHeapGrowthExtendsPageTable(t *testing.T) {
	s := NewSpace(NewLayout(1))
	base := s.Alloc(3 * PageSize)
	last := base + 3*PageSize - 1
	if last >= s.Bound() {
		t.Fatalf("allocated address %d out of bound %d", last, s.Bound())
	}
	s.Store(last, 1.25)
	if v := s.Load(last); v != 1.25 {
		t.Fatalf("heap store/load across grown pages = %v", v)
	}
}

func TestPoolRecyclesCleanSpaces(t *testing.T) {
	p := NewPool()
	l := NewLayout(64)
	s := p.Get(l)
	s.Store(7, 1)
	s.Alloc(10)
	p.Put(s)
	s2 := p.Get(l)
	// sync.Pool gives no identity guarantee; whatever comes back must be
	// clean and of the right layout.
	if s2.Layout() != l {
		t.Fatalf("pooled space layout %+v, want %+v", s2.Layout(), l)
	}
	if v := s2.Load(7); v != 0 {
		t.Fatalf("pooled space dirty: %v", v)
	}
	if s2.Bound() != l.HeapBase {
		t.Fatalf("pooled space heap not rewound: %d", s2.Bound())
	}
	p.Put(s2)
	p.Put(nil) // must not panic
}

func TestPoolStatsCounters(t *testing.T) {
	p := NewPool()
	l := NewLayout(64)
	if s := p.Stats(); s != (PoolStats{}) {
		t.Fatalf("fresh pool stats = %+v, want zero", s)
	}
	s1 := p.Get(l) // first checkout must allocate
	st := p.Stats()
	if st.Gets != 1 || st.Fresh != 1 || st.Puts != 0 {
		t.Fatalf("after first Get: %+v, want Gets=1 Fresh=1 Puts=0", st)
	}
	p.Put(s1)
	s2 := p.Get(l)
	st = p.Stats()
	if st.Gets != 2 || st.Puts != 1 {
		t.Fatalf("after recycle: %+v, want Gets=2 Puts=1", st)
	}
	// sync.Pool may drop the recycled space (GC), so Fresh is 1 or 2 —
	// never more than Gets.
	if st.Fresh > st.Gets {
		t.Fatalf("Fresh %d exceeds Gets %d", st.Fresh, st.Gets)
	}
	p.Put(s2)
	p.Put(nil) // nil Put must not count
	if st = p.Stats(); st.Puts != 2 {
		t.Fatalf("after nil Put: Puts=%d, want 2", st.Puts)
	}
}

func TestPoolStatsConcurrent(t *testing.T) {
	p := NewPool()
	l := NewLayout(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := p.Get(l)
				s.Store(1, float64(i))
				p.Put(s)
				p.Stats() // scrape concurrently with traffic
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 400 || st.Puts != 400 {
		t.Fatalf("concurrent stats %+v, want Gets=Puts=400", st)
	}
	if st.Fresh < 1 || st.Fresh > st.Gets {
		t.Fatalf("Fresh %d out of range [1, %d]", st.Fresh, st.Gets)
	}
}
