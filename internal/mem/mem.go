// Package mem implements the interpreter's simulated address space as a
// segmented, lazily materialized arena. The flat []float64 it replaces was
// allocated and zeroed in full (globals + 64 thread stacks ≈ 32MB) on every
// interpreter construction, even though most workloads are single-threaded
// and touch a handful of pages; profilers built on shadow memory treat the
// address space as a first-class subsystem for exactly this reason.
//
// Layout (identical to the historical flat arena, page-aligned):
//
//	[0]                     unused, so 0 can mean "no address"
//	[1, GlobalsEnd)         globals, in module declaration order
//	[StacksBase, HeapBase)  MaxThreads stacks of StackElems each, one page
//	                        per simulated thread
//	[HeapBase, ...)         heap, bump-allocated with per-size free lists
//
// Storage is a page table: PageSize-element pages materialize on first
// store (loads from untouched pages read 0, exactly like a zeroed arena,
// without materializing anything). Reset zeroes only the pages dirtied
// since the last reset — O(segments touched), not O(address space) — which
// is what makes arenas cheap to recycle through a Pool.
package mem

// Page geometry. One page is also exactly one thread stack, so "stack
// segments materialized" and "stack pages touched" coincide.
const (
	// PageShift is the log2 of the page size in elements.
	PageShift = 16
	// PageSize is the number of float64 elements per page.
	PageSize = 1 << PageShift
	pageMask = PageSize - 1

	// MaxThreads is the maximum number of simulated threads, and therefore
	// the number of stack segments the layout reserves.
	MaxThreads = 64
	// StackElems is the size of one thread's stack segment.
	StackElems = PageSize
)

// Layout is the static segment layout of one module: pure sizes, no
// storage. Two modules with the same number of global elements share a
// layout, which is what keys arena pooling.
type Layout struct {
	// GlobalsEnd is the first address after the last global (globals start
	// at address 1).
	GlobalsEnd uint64
	// StacksBase is the page-aligned base of the thread-stack segments.
	StacksBase uint64
	// HeapBase is the first heap address.
	HeapBase uint64
}

// NewLayout builds the layout for a module whose globals occupy
// [1, globalsEnd).
func NewLayout(globalsEnd uint64) Layout {
	stacks := (globalsEnd + pageMask) &^ uint64(pageMask)
	return Layout{
		GlobalsEnd: globalsEnd,
		StacksBase: stacks,
		HeapBase:   stacks + MaxThreads*StackElems,
	}
}

// StackBase returns the base address of thread tid's stack segment.
func (l Layout) StackBase(tid int32) uint64 {
	return l.StacksBase + uint64(tid)*StackElems
}

// Space is one simulated address space. It is single-goroutine (one
// interpreter owns it at a time); reuse across runs goes through Reset or a
// Pool.
type Space struct {
	layout Layout
	// pages is the page table. A nil entry is an untouched page: loads
	// read 0, the first store materializes it.
	pages [][]float64
	// dirty lists the pages written since the last Reset; Reset zeroes
	// exactly these.
	dirty []uint32
	// spare holds zeroed pages detached by Reset, reused by the next
	// materialization instead of a fresh allocation.
	spare [][]float64

	heapNext uint64
	maxHeap  uint64
	free     map[int][]uint64 // heap block size -> reusable bases
}

// NewSpace creates an empty space for the given layout. Nothing is
// materialized: the construction cost is one page-table slice of nil
// entries.
func NewSpace(l Layout) *Space {
	return &Space{
		layout:   l,
		pages:    make([][]float64, pagesFor(l.HeapBase)),
		heapNext: l.HeapBase,
		free:     map[int][]uint64{},
	}
}

func pagesFor(bound uint64) int { return int((bound + pageMask) >> PageShift) }

// Layout returns the space's segment layout.
func (s *Space) Layout() Layout { return s.layout }

// Bound returns the first invalid address: every address in [0, Bound) is
// addressable (heap growth raises it).
func (s *Space) Bound() uint64 { return s.heapNext }

// TryLoad reads one element if addr is in bounds, reporting success. It is
// shaped to inline into interpreter dispatch loops; callers fall back to
// their full load path (with its range panic) when it reports false.
func (s *Space) TryLoad(addr uint64) (float64, bool) {
	if addr >= s.heapNext {
		return 0, false
	}
	p := s.pages[addr>>PageShift]
	if p == nil {
		return 0, true // untouched pages read 0
	}
	return p[addr&pageMask], true
}

// TryStore writes one element if addr is in bounds and its page is already
// materialized, reporting success. Like TryLoad it is shaped to inline
// into dispatch loops; the false cases (range violation, first touch of a
// page) fall back to the caller's full store path.
func (s *Space) TryStore(addr uint64, v float64) bool {
	if addr >= s.heapNext {
		return false
	}
	p := s.pages[addr>>PageShift]
	if p == nil {
		return false
	}
	p[addr&pageMask] = v
	return true
}

// Load reads one element. Untouched pages read 0 without materializing.
func (s *Space) Load(addr uint64) float64 {
	p := s.pages[addr>>PageShift]
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store writes one element, materializing the page on first touch.
func (s *Space) Store(addr uint64, v float64) {
	p := s.pages[addr>>PageShift]
	if p == nil {
		s.storeSlow(addr, v)
		return
	}
	p[addr&pageMask] = v
}

func (s *Space) storeSlow(addr uint64, v float64) {
	s.page(uint32(addr >> PageShift))[addr&pageMask] = v
}

// page materializes page i (zeroed, preferring a spare page recycled by
// Reset) and marks it dirty.
func (s *Space) page(i uint32) []float64 {
	p := s.pages[i]
	if p == nil {
		if n := len(s.spare); n > 0 {
			p = s.spare[n-1]
			s.spare[n-1] = nil
			s.spare = s.spare[:n-1]
		} else {
			p = make([]float64, PageSize)
		}
		s.pages[i] = p
		s.dirty = append(s.dirty, i)
	}
	return p
}

// Alloc reserves n elements on the heap, reusing freed blocks of the same
// size so addresses get recycled (the hazard the variable lifetime analysis
// guards against).
func (s *Space) Alloc(n int) uint64 {
	if lst := s.free[n]; len(lst) > 0 {
		base := lst[len(lst)-1]
		s.free[n] = lst[:len(lst)-1]
		return base
	}
	base := s.heapNext
	s.heapNext += uint64(n)
	if need := pagesFor(s.heapNext); need > len(s.pages) {
		s.pages = append(s.pages, make([][]float64, need-len(s.pages))...)
	}
	if used := s.heapNext - s.layout.HeapBase; used > s.maxHeap {
		s.maxHeap = used
	}
	return base
}

// Free returns a heap block for reuse by a later Alloc of the same size.
func (s *Space) Free(base uint64, n int) {
	s.free[n] = append(s.free[n], base)
}

// MaxHeap returns the high-water heap footprint in elements since the last
// Reset.
func (s *Space) MaxHeap() uint64 { return s.maxHeap }

// Reset returns the space to its freshly constructed state in time
// proportional to the pages dirtied since the last Reset. Dirtied pages are
// zeroed and detached into the spare list, so the next run reuses their
// storage without reallocating.
func (s *Space) Reset() {
	for _, i := range s.dirty {
		p := s.pages[i]
		clear(p)
		s.pages[i] = nil
		s.spare = append(s.spare, p)
	}
	s.dirty = s.dirty[:0]
	s.heapNext = s.layout.HeapBase
	s.maxHeap = 0
	clear(s.free)
}

// StackPagesTouched counts the materialized thread-stack segments — the
// lazy-materialization observability hook: a single-threaded workload must
// report exactly 1.
func (s *Space) StackPagesTouched() int {
	n := 0
	lo := s.layout.StacksBase >> PageShift
	hi := s.layout.HeapBase >> PageShift
	for i := lo; i < hi; i++ {
		if s.pages[i] != nil {
			n++
		}
	}
	return n
}

// Footprint returns the bytes of materialized page storage currently
// attached to the space (spare pages excluded).
func (s *Space) Footprint() int64 {
	var n int64
	for _, p := range s.pages {
		if p != nil {
			n += PageSize * 8
		}
	}
	return n
}
