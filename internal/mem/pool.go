package mem

import "sync"

// Pool recycles Spaces across runs, keyed by segment layout: a space can
// only be handed to a module whose layout it was built for, because the
// globals/stacks/heap boundaries are baked into every address the module
// computes. Batch workers draw from one shared pool so each job pays a
// Reset of the previous job's touched pages instead of allocating and
// zeroing a fresh arena.
//
// Pools are concurrency-safe. Spaces are returned clean: Put resets before
// pooling, so Get always hands out a space indistinguishable from a fresh
// NewSpace. Pooled space storage is under sync.Pool and GC-reclaimed; the
// per-layout index entry itself is a few words and persists, which is fine
// at the realistic number of distinct module layouts per process.
type Pool struct {
	mu    sync.Mutex
	pools map[Layout]*sync.Pool
}

// Default is the process-wide arena pool shared by every run entry point
// (direct profiling, the pipeline's Profile stage, native baselines).
var Default = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{pools: map[Layout]*sync.Pool{}}
}

func (p *Pool) forLayout(l Layout) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.pools[l]
	if sp == nil {
		sp = &sync.Pool{New: func() any { return NewSpace(l) }}
		p.pools[l] = sp
	}
	return sp
}

// Get returns a clean space for the given layout, recycled when one is
// available.
func (p *Pool) Get(l Layout) *Space {
	return p.forLayout(l).Get().(*Space)
}

// Put resets s and returns it to the pool for its layout.
func (p *Pool) Put(s *Space) {
	if s == nil {
		return
	}
	s.Reset()
	p.forLayout(s.layout).Put(s)
}
