package mem

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Spaces across runs, keyed by segment layout: a space can
// only be handed to a module whose layout it was built for, because the
// globals/stacks/heap boundaries are baked into every address the module
// computes. Batch workers draw from one shared pool so each job pays a
// Reset of the previous job's touched pages instead of allocating and
// zeroing a fresh arena.
//
// Pools are concurrency-safe. Spaces are returned clean: Put resets before
// pooling, so Get always hands out a space indistinguishable from a fresh
// NewSpace. Pooled space storage is under sync.Pool and GC-reclaimed; the
// per-layout index entry itself is a few words and persists, which is fine
// at the realistic number of distinct module layouts per process.
//
// The pool keeps three lifetime counters (Stats): Gets and Puts count the
// checkout/return traffic, Fresh counts the Gets that could not be served
// from a recycled space and allocated a new arena. Gets − Fresh is the
// number of recycled checkouts; Gets − Puts is the number of spaces
// currently checked out (assuming every Get is eventually Put).
type Pool struct {
	mu    sync.Mutex
	pools map[Layout]*sync.Pool

	gets, puts, fresh atomic.Int64
}

// PoolStats is a snapshot of a Pool's lifetime counters.
type PoolStats struct {
	// Gets is the number of spaces checked out.
	Gets int64
	// Puts is the number of spaces returned.
	Puts int64
	// Fresh is the number of Gets that allocated a new space because no
	// recycled one was available (a sync.Pool miss, including GC-reclaimed
	// arenas).
	Fresh int64
}

// Default is the process-wide arena pool shared by every run entry point
// (direct profiling, the pipeline's Profile stage, native baselines).
var Default = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{pools: map[Layout]*sync.Pool{}}
}

func (p *Pool) forLayout(l Layout) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.pools[l]
	if sp == nil {
		sp = &sync.Pool{New: func() any {
			p.fresh.Add(1)
			return NewSpace(l)
		}}
		p.pools[l] = sp
	}
	return sp
}

// Get returns a clean space for the given layout, recycled when one is
// available.
func (p *Pool) Get(l Layout) *Space {
	p.gets.Add(1)
	return p.forLayout(l).Get().(*Space)
}

// Put resets s and returns it to the pool for its layout.
func (p *Pool) Put(s *Space) {
	if s == nil {
		return
	}
	p.puts.Add(1)
	s.Reset()
	p.forLayout(s.layout).Put(s)
}

// Stats returns a snapshot of the pool's lifetime counters. It is safe to
// call concurrently with Get and Put; the three counters are read
// individually, so a snapshot taken mid-checkout may observe the Get before
// the matching Fresh.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:  p.gets.Load(),
		Puts:  p.puts.Load(),
		Fresh: p.fresh.Load(),
	}
}
