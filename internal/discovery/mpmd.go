package discovery

import (
	"fmt"
	"sort"

	"discopop/internal/cu"
	"discopop/internal/graph"
	"discopop/internal/ir"
	"discopop/internal/profiler"
)

// analyzeMPMD implements the MPMD-style task detection of Section 4.2.2:
// per function, the CU graph restricted to the function is simplified by
// substituting strongly connected components and chains of CUs with single
// vertices (Figure 4.5); if the resulting DAG contains vertices that may
// execute concurrently, the contracted vertex groups become task
// suggestions.
func (a *Analysis) analyzeMPMD() {
	for _, f := range a.Mod.Funcs {
		if f.Body == nil {
			continue
		}
		if s := a.mpmdForFunc(f); s != nil {
			a.Suggestions = append(a.Suggestions, s)
		}
	}
}

// mpmdForFunc analyzes one function's CU graph. Only true (RAW) dependence
// edges constrain execution order; anti- and output dependences are
// resolvable by renaming, which the user confirms (Section 3.4).
func (a *Analysis) mpmdForFunc(f *ir.Func) *Suggestion {
	var cus []*cu.CU
	idx := map[*cu.CU]int{}
	for _, c := range a.Graph.CUs {
		if c.Func == f {
			idx[c] = len(cus)
			cus = append(cus, c)
		}
	}
	if len(cus) < 2 {
		return nil
	}
	g := graph.New(len(cus))
	g.Weight = make([]float64, len(cus))
	for i, c := range cus {
		g.Weight[i] = c.Weight + 1
	}
	for _, e := range a.Graph.Edges {
		if e.Type != profiler.RAW {
			continue
		}
		fi, ok1 := idx[e.From]
		ti, ok2 := idx[e.To]
		if !ok1 || !ok2 || fi == ti {
			continue
		}
		// Dependence edge: sink depends on source, so source must run
		// first: edge source -> sink in execution order.
		g.AddEdge(ti, fi)
	}
	// Figure 4.5: contract SCCs, then chains.
	dag, comp := g.Condense()
	contracted, chainOf := dag.ContractChains()
	if contracted.N < 2 {
		return nil
	}
	// Concurrency: the maximum number of contracted vertices at the same
	// dependence level.
	levels := levelize(contracted)
	width := 0
	for _, l := range levels {
		if len(l) > width {
			width = len(l)
		}
	}
	if width < 2 {
		return nil
	}
	// Materialize task groups: CUs per contracted vertex.
	groups := make([][]*cu.CU, contracted.N)
	for v, c := range cus {
		groups[chainOf[comp[v]]] = append(groups[chainOf[comp[v]]], c)
		_ = v
	}
	for _, grp := range groups {
		sort.Slice(grp, func(i, j int) bool { return grp[i].ID < grp[j].ID })
	}
	var weight float64
	for _, c := range cus {
		weight += c.Weight
	}
	cp, total := contracted.CriticalPath()
	s := &Suggestion{
		Kind:   MPMDTask,
		Func:   f,
		Loc:    f.Loc,
		Tasks:  groups,
		Weight: weight,
		Notes: fmt.Sprintf("CU graph of %s contracts to %d tasks (width %d, work/critical-path %.2f)",
			f.Name, contracted.N, width, safeDiv(total, cp)),
	}
	s.LocalSpeedup = safeDiv(total, cp)
	return s
}

// levelize assigns each DAG vertex its longest-path-from-source level.
func levelize(g *graph.Graph) [][]int {
	order, ok := g.Topo()
	if !ok {
		return nil
	}
	level := make([]int, g.N)
	maxLevel := 0
	for _, v := range order {
		for _, p := range g.Preds(v) {
			if level[p]+1 > level[v] {
				level[v] = level[p] + 1
			}
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	out := make([][]int, maxLevel+1)
	for v := 0; v < g.N; v++ {
		out[level[v]] = append(out[level[v]], v)
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// RecursiveTaskFuncs finds functions containing at least two recursive
// call sites with no true dependence between the call-site lines — the
// Fibonacci pattern of Figure 4.3 and the BOTS benchmarks. Independence is
// checked at line granularity so that call sites sharing a CU (fib's two
// calls form one read-compute-write unit) are still recognized as
// separable tasks.
func (a *Analysis) RecursiveTaskFuncs() []*Suggestion {
	var out []*Suggestion
	for _, f := range a.Mod.Funcs {
		if f.Body == nil {
			continue
		}
		// Recursive call sites: direct recursion or recursion through one
		// level of mutual calls.
		var sites []ir.Loc
		seen := map[ir.Loc]bool{}
		ir.Walk(f.Body, func(s ir.Stmt) {
			countCall := func(c *ir.CallExpr) {
				if c.Callee == f && !seen[s.Location()] {
					seen[s.Location()] = true
					sites = append(sites, s.Location())
				}
			}
			switch n := s.(type) {
			case *ir.CallStmt:
				countCall(n.Call)
			case *ir.Spawn:
				countCall(n.Call)
			case *ir.Assign:
				ir.WalkExprs(n.Src, func(e ir.Expr) {
					if c, ok := e.(*ir.CallExpr); ok {
						countCall(c)
					}
				})
			}
		})
		if len(sites) < 2 {
			continue
		}
		// The call sites must be mutually independent: no non-carried RAW
		// dependence between the lines (carried dependences separate
		// recursion instances, not sibling tasks).
		dep := false
		in := map[ir.Loc]bool{}
		for _, l := range sites {
			in[l] = true
		}
		for d := range a.Res.Deps {
			if d.Type == profiler.RAW && !d.Carried && d.Sink != d.Source &&
				in[d.Sink] && in[d.Source] {
				dep = true
				break
			}
		}
		if dep {
			continue
		}
		tasks := make([][]*cu.CU, 0, len(sites))
		for _, l := range sites {
			if u := a.Graph.CUAt(l); u != nil {
				tasks = append(tasks, []*cu.CU{u})
			} else {
				tasks = append(tasks, nil)
			}
		}
		out = append(out, &Suggestion{
			Kind:  SPMDTask,
			Func:  f,
			Loc:   f.Loc,
			Tasks: tasks,
			Notes: fmt.Sprintf("%d independent recursive calls in %s: spawn as tasks", len(sites), f.Name),
		})
	}
	return out
}
