package discovery

import (
	"strings"
	"testing"

	"discopop/internal/cu"
	"discopop/internal/ir"
	"discopop/internal/profiler"
)

func analyzeModule(t *testing.T, m *ir.Module) *Analysis {
	t.Helper()
	res := profiler.Profile(m, profiler.Options{Store: profiler.StorePerfect})
	sc := ir.AnalyzeScopes(m)
	g := cu.Build(m, sc, res)
	return Analyze(m, sc, res, g)
}

func loopSuggestion(a *Analysis, r *ir.Region) *Suggestion {
	for _, s := range a.Suggestions {
		if s.Region == r {
			return s
		}
	}
	return nil
}

// --- Reduction recognition ---------------------------------------------

func buildLoop(body func(b *ir.Builder, fb *ir.FuncBuilder, i *ir.Var)) (*ir.Module, *ir.Region) {
	b := ir.NewBuilder("t")
	fb := b.Func("main")
	var loop *ir.Region
	loop = fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		body(b, fb, i)
	})
	return b.Build(fb.Done()), loop
}

func TestReductionSum(t *testing.T) {
	var sum *ir.Var
	b := ir.NewBuilder("t")
	sum = b.Global("sum", ir.F64)
	fb := b.Func("main")
	loop := fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		fb.Set(sum, ir.Add(ir.V(sum), ir.V(i)))
	})
	m := b.Build(fb.Done())
	a := analyzeModule(t, m)
	s := loopSuggestion(a, loop)
	if s == nil || s.Kind != DOALLReduction {
		t.Fatalf("sum loop = %v, want DOALL(reduction)", s)
	}
	if len(s.Reductions) != 1 || s.Reductions[0].Name != "sum" {
		t.Fatalf("reductions = %v", s.Reductions)
	}
}

func TestReductionMinMaxMul(t *testing.T) {
	for _, mk := range []func(v, x ir.Expr) ir.Expr{
		func(v, x ir.Expr) ir.Expr { return ir.Min(v, x) },
		func(v, x ir.Expr) ir.Expr { return ir.Max(v, x) },
		func(v, x ir.Expr) ir.Expr { return ir.Mul(v, x) },
	} {
		b := ir.NewBuilder("t")
		acc := b.Global("acc", ir.F64)
		fb := b.Func("main")
		fb.Set(acc, ir.CF(1))
		loop := fb.For("i", ir.CI(1), ir.CI(16), ir.CI(1), func(i *ir.Var) {
			fb.Set(acc, mk(ir.V(acc), ir.V(i)))
		})
		m := b.Build(fb.Done())
		a := analyzeModule(t, m)
		s := loopSuggestion(a, loop)
		if s == nil || s.Kind != DOALLReduction {
			t.Errorf("commutative op loop = %v, want DOALL(reduction)", s)
		}
	}
}

func TestRecurrenceIsNotReduction(t *testing.T) {
	// a[i] = a[i] + a[i-1] is a true recurrence: the other operand
	// touches the same variable.
	b := ir.NewBuilder("t")
	arr := b.GlobalArray("a", ir.F64, 64)
	fb := b.Func("main")
	loop := fb.For("i", ir.CI(1), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(arr, ir.V(i), ir.Add(ir.At(arr, ir.V(i)),
			ir.At(arr, ir.Sub(ir.V(i), ir.CI(1)))))
	})
	m := b.Build(fb.Done())
	a := analyzeModule(t, m)
	s := loopSuggestion(a, loop)
	if s == nil || s.Kind == DOALL || s.Kind == DOALLReduction {
		t.Fatalf("prefix-sum loop = %v, must not be parallelizable", s)
	}
}

func TestNonCommutativeNotReduction(t *testing.T) {
	b := ir.NewBuilder("t")
	acc := b.Global("acc", ir.F64)
	fb := b.Func("main")
	loop := fb.For("i", ir.CI(0), ir.CI(16), ir.CI(1), func(i *ir.Var) {
		fb.Set(acc, ir.Sub(ir.V(acc), ir.V(i))) // subtraction: order matters
	})
	m := b.Build(fb.Done())
	a := analyzeModule(t, m)
	s := loopSuggestion(a, loop)
	if s != nil && (s.Kind == DOALL || s.Kind == DOALLReduction) {
		// Note: acc -= i is mathematically a sum reduction, but the
		// pattern matcher follows the paper's conservative commutative-op
		// rule; Sub is rejected.
		t.Fatalf("subtraction loop = %v, conservative rule must reject", s.Kind)
	}
}

func TestHistogramIndirectReduction(t *testing.T) {
	b := ir.NewBuilder("t")
	hist := b.GlobalArray("hist", ir.F64, 8)
	data := b.GlobalArray("data", ir.F64, 64)
	fb := b.Func("main")
	bin := fb.Local("bin", ir.I64)
	fb.For("z", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(data, ir.V(i), ir.Rnd())
	})
	loop := fb.For("i", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.Set(bin, ir.Floor(ir.Mul(ir.At(data, ir.V(i)), ir.CI(8))))
		fb.SetAt(hist, ir.V(bin), ir.Add(ir.At(hist, ir.V(bin)), ir.CF(1)))
	})
	m := b.Build(fb.Done())
	a := analyzeModule(t, m)
	s := loopSuggestion(a, loop)
	if s == nil || s.Kind != DOALLReduction {
		t.Fatalf("histogram loop = %v, want DOALL(reduction)", s)
	}
}

// --- DOALL / sequential classification ----------------------------------

func TestDOALLDisjointWrites(t *testing.T) {
	m, loop := buildLoopWithArrays(func(fb *ir.FuncBuilder, a, b *ir.Var, i *ir.Var) {
		fb.SetAt(b, ir.V(i), ir.Mul(ir.At(a, ir.V(i)), ir.CF(2)))
	})
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil || s.Kind != DOALL {
		t.Fatalf("disjoint-writes loop = %v, want DOALL", s)
	}
}

func TestSequentialCarriedFlow(t *testing.T) {
	m, loop := buildLoopWithArrays(func(fb *ir.FuncBuilder, a, b *ir.Var, i *ir.Var) {
		fb.SetAt(a, ir.V(i), ir.Add(ir.At(a, ir.Sub(ir.V(i), ir.CI(1))), ir.CF(1)))
	})
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil || s.Kind == DOALL || s.Kind == DOALLReduction {
		t.Fatalf("carried-flow loop = %v, must not be DOALL", s)
	}
	if len(s.Blocking) == 0 {
		t.Fatal("no blocking dependences reported")
	}
}

func buildLoopWithArrays(body func(fb *ir.FuncBuilder, a, b *ir.Var, i *ir.Var)) (*ir.Module, *ir.Region) {
	bld := ir.NewBuilder("t")
	a := bld.GlobalArray("a", ir.F64, 64)
	b := bld.GlobalArray("b", ir.F64, 64)
	fb := bld.Func("main")
	fb.For("z", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(a, ir.V(i), ir.Rnd())
	})
	loop := fb.For("i", ir.CI(1), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		body(fb, a, b, i)
	})
	return bld.Build(fb.Done()), loop
}

func TestPrivatizableTempDoesNotBlock(t *testing.T) {
	// A scalar temp written-then-read each iteration only carries
	// WAR/WAW: resolvable by privatization, so the loop stays DOALL.
	bld := ir.NewBuilder("t")
	a := bld.GlobalArray("a", ir.F64, 64)
	fb := bld.Func("main")
	tmp := fb.Local("tmp", ir.F64)
	loop := fb.For("i", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.Set(tmp, ir.Mul(ir.V(i), ir.CF(3)))
		fb.SetAt(a, ir.V(i), ir.V(tmp))
	})
	m := bld.Build(fb.Done())
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil || s.Kind != DOALL {
		t.Fatalf("temp loop = %v, want DOALL", s)
	}
	// And the pragma must privatize the temp.
	pragma := an.Pragma(s)
	if !strings.Contains(pragma, "private(tmp)") {
		t.Fatalf("pragma %q lacks private(tmp)", pragma)
	}
}

func TestFirstPrivateClassification(t *testing.T) {
	// Early iterations read the pre-loop value of seed; from iteration 32
	// on, seed is overwritten before being read in the same iteration.
	// There is no carried flow dependence (every read pairs with either
	// the pre-loop init or the same iteration's write), but there are
	// carried WAW/WAR dependences — the classic firstprivate shape: a
	// private copy initialized with the original value.
	bld := ir.NewBuilder("t")
	a := bld.GlobalArray("a", ir.F64, 64)
	fb := bld.Func("main")
	seed := fb.Local("seed", ir.F64)
	fb.Set(seed, ir.CF(1))
	loop := fb.For("i", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.If(ir.Ge(ir.V(i), ir.CI(32)), func() {
			fb.Set(seed, ir.Add(ir.V(i), ir.CF(0.5)))
		})
		fb.SetAt(a, ir.V(i), ir.V(seed))
	})
	m := bld.Build(fb.Done())
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil {
		t.Fatal("no suggestion")
	}
	clauses := an.Classify(s)
	var kind ClauseKind
	found := false
	for _, c := range clauses {
		if c.Var.Name == "seed" {
			kind, found = c.Kind, true
		}
	}
	if !found || kind != ClauseFirstPrivate {
		t.Fatalf("seed clause = %v (found=%v), want firstprivate", kind, found)
	}
}

// --- DOACROSS ------------------------------------------------------------

func TestDOACROSSStageSplit(t *testing.T) {
	// Carried chain on cursor, heavy independent body per iteration.
	bld := ir.NewBuilder("t")
	src := bld.GlobalArray("src", ir.F64, 64)
	dst := bld.GlobalArray("dst", ir.F64, 64*8)
	cur := bld.Global("cursor", ir.F64)
	fb := bld.Func("main")
	v := fb.Local("v", ir.F64)
	fb.For("z", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(src, ir.V(i), ir.Rnd())
	})
	loop := fb.For("i", ir.CI(0), ir.CI(64), ir.CI(1), func(i *ir.Var) {
		fb.Set(v, ir.At(src, ir.Mod(ir.V(cur), ir.CI(64))))
		fb.Set(cur, ir.Add(ir.V(cur), ir.Add(ir.CF(1), ir.V(v))))
		fb.For("j", ir.CI(0), ir.CI(8), ir.CI(1), func(j *ir.Var) {
			fb.SetAt(dst, ir.Add(ir.Mul(ir.V(i), ir.CI(8)), ir.V(j)),
				ir.Mul(ir.V(v), ir.V(j)))
		})
	})
	m := bld.Build(fb.Done())
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil || s.Kind != DOACROSS {
		t.Fatalf("cursor loop = %v, want DOACROSS", s)
	}
	if len(s.SeqStage) == 0 || len(s.ParStage) == 0 {
		t.Fatalf("stage split empty: seq=%d par=%d", len(s.SeqStage), len(s.ParStage))
	}
	var seqW, parW float64
	for _, c := range s.SeqStage {
		seqW += c.Weight
	}
	for _, c := range s.ParStage {
		parW += c.Weight
	}
	if parW <= seqW {
		t.Errorf("parallel stage (%f) should outweigh sequential stage (%f)", parW, seqW)
	}
}

// --- MPMD ---------------------------------------------------------------

func TestMPMDDiamond(t *testing.T) {
	// c1 and c2 both depend on p, and m depends on both: a diamond with
	// width 2.
	bld := ir.NewBuilder("t")
	a := bld.GlobalArray("a", ir.F64, 32)
	b1 := bld.GlobalArray("b1", ir.F64, 32)
	b2 := bld.GlobalArray("b2", ir.F64, 32)
	out := bld.Global("out", ir.F64)
	fb := bld.Func("work")
	fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(a, ir.V(i), ir.Rnd())
	})
	fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(b1, ir.V(i), ir.Mul(ir.At(a, ir.V(i)), ir.CF(2)))
	})
	fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		fb.SetAt(b2, ir.V(i), ir.Add(ir.At(a, ir.V(i)), ir.CF(1)))
	})
	fb.For("i", ir.CI(0), ir.CI(32), ir.CI(1), func(i *ir.Var) {
		fb.Set(out, ir.Add(ir.V(out), ir.Add(ir.At(b1, ir.V(i)), ir.At(b2, ir.V(i)))))
	})
	m := bld.Build(fb.Done())
	an := analyzeModule(t, m)
	var mpmd *Suggestion
	for _, s := range an.Suggestions {
		if s.Kind == MPMDTask {
			mpmd = s
		}
	}
	if mpmd == nil {
		t.Fatal("no MPMD suggestion for diamond")
	}
	if len(mpmd.Tasks) < 2 {
		t.Fatalf("MPMD tasks = %d, want >= 2", len(mpmd.Tasks))
	}
}

func TestRecursiveTasksFib(t *testing.T) {
	bld := ir.NewBuilder("fib")
	f := bld.Forward("fib", true)
	fb := bld.DefineForward(f)
	n := fb.Param("n", ir.F64)
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	fb.IfElse(ir.Lt(ir.V(n), ir.CI(2)), func() {
		fb.Return(ir.V(n))
	}, func() {
		fb.CallInto(ir.V(x), f, ir.Sub(ir.V(n), ir.CI(1)))
		fb.CallInto(ir.V(y), f, ir.Sub(ir.V(n), ir.CI(2)))
		fb.Return(ir.Add(ir.V(x), ir.V(y)))
	})
	fb.Done()
	mb := bld.Func("main")
	res := bld.Global("res", ir.F64)
	mb.CallInto(ir.V(res), f, ir.CI(10))
	m := bld.Build(mb.Done())
	an := analyzeModule(t, m)
	tasks := an.RecursiveTaskFuncs()
	if len(tasks) != 1 || tasks[0].Func != f {
		t.Fatalf("recursive tasks = %v, want fib", tasks)
	}
	if len(tasks[0].Tasks) != 2 {
		t.Fatalf("fib task count = %d, want 2", len(tasks[0].Tasks))
	}
}

func TestRecursiveTasksDependentCallsRejected(t *testing.T) {
	// g(g(n)): the second call consumes the first's result — no tasks.
	bld := ir.NewBuilder("chain")
	f := bld.Forward("g", true)
	fb := bld.DefineForward(f)
	n := fb.Param("n", ir.F64)
	x := fb.Local("x", ir.F64)
	y := fb.Local("y", ir.F64)
	fb.IfElse(ir.Lt(ir.V(n), ir.CI(2)), func() {
		fb.Return(ir.V(n))
	}, func() {
		fb.CallInto(ir.V(x), f, ir.Sub(ir.V(n), ir.CI(1)))
		fb.CallInto(ir.V(y), f, ir.Sub(ir.V(x), ir.CI(1))) // depends on x!
		fb.Return(ir.V(y))
	})
	fb.Done()
	mb := bld.Func("main")
	res := bld.Global("res", ir.F64)
	mb.CallInto(ir.V(res), f, ir.CI(8))
	m := bld.Build(mb.Done())
	an := analyzeModule(t, m)
	for _, s := range an.RecursiveTaskFuncs() {
		if s.Func == f {
			t.Fatal("dependent recursive calls wrongly suggested as tasks")
		}
	}
}

func TestPragmaRendering(t *testing.T) {
	b := ir.NewBuilder("t")
	sum := b.Global("sum", ir.F64)
	prod := b.Global("prod", ir.F64)
	fb := b.Func("main")
	tmp := fb.Local("tmp", ir.F64)
	fb.Set(prod, ir.CF(1))
	loop := fb.For("i", ir.CI(1), ir.CI(16), ir.CI(1), func(i *ir.Var) {
		fb.Set(tmp, ir.Mul(ir.V(i), ir.CF(2)))
		fb.Set(sum, ir.Add(ir.V(sum), ir.V(tmp)))
		fb.Set(prod, ir.Mul(ir.V(prod), ir.V(i)))
	})
	m := b.Build(fb.Done())
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if s == nil || s.Kind != DOALLReduction {
		t.Fatalf("loop = %v", s)
	}
	pragma := an.Pragma(s)
	for _, frag := range []string{"#pragma omp parallel for", "private(tmp)",
		"reduction(*:prod)", "reduction(+:sum)"} {
		if !strings.Contains(pragma, frag) {
			t.Errorf("pragma %q missing %q", pragma, frag)
		}
	}
}

func TestPragmaEmptyForSequential(t *testing.T) {
	m, loop := buildLoopWithArrays(func(fb *ir.FuncBuilder, a, b *ir.Var, i *ir.Var) {
		fb.SetAt(a, ir.V(i), ir.Add(ir.At(a, ir.Sub(ir.V(i), ir.CI(1))), ir.CF(1)))
	})
	an := analyzeModule(t, m)
	s := loopSuggestion(an, loop)
	if p := an.Pragma(s); p != "" {
		t.Fatalf("sequential loop got pragma %q", p)
	}
}
