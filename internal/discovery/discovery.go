// Package discovery implements the CU-based parallelism discovery
// algorithms of Chapter 4: DOALL and DOACROSS loops (Section 4.1),
// reduction recognition, and SPMD- and MPMD-style tasks (Section 4.2),
// producing ranked parallelization suggestions.
package discovery

import (
	"fmt"
	"sort"

	"discopop/internal/cu"
	"discopop/internal/graph"
	"discopop/internal/ir"
	"discopop/internal/profiler"
)

// Kind classifies a parallelization suggestion.
type Kind uint8

// Suggestion kinds.
const (
	// DOALL marks a loop with no loop-carried true dependences: iterations
	// can execute fully in parallel (Section 4.1.1).
	DOALL Kind = iota
	// DOALLReduction marks a DOALL loop whose only carried true
	// dependences are commutative reductions.
	DOALLReduction
	// DOACROSS marks a loop whose carried dependences confine a part of
	// the body: iterations can overlap in a pipeline (Section 4.1.2).
	DOACROSS
	// SPMDTask marks a loop or recursion whose body instances are
	// independent heavyweight computations suitable for task spawning
	// (Section 4.2.1).
	SPMDTask
	// MPMDTask marks a set of different code sections (CU chains) that can
	// run concurrently (Section 4.2.2).
	MPMDTask
	// Sequential marks an analyzed loop that offers no parallelism.
	Sequential
)

func (k Kind) String() string {
	switch k {
	case DOALL:
		return "DOALL"
	case DOALLReduction:
		return "DOALL(reduction)"
	case DOACROSS:
		return "DOACROSS"
	case SPMDTask:
		return "SPMD-task"
	case MPMDTask:
		return "MPMD-task"
	default:
		return "sequential"
	}
}

// ParseKind inverts Kind.String, for reports that cross a serialization
// boundary (the remote-stage wire format). The second result is false for
// unrecognized strings.
func ParseKind(s string) (Kind, bool) {
	for k := DOALL; k <= Sequential; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Suggestion is one parallelization opportunity.
type Suggestion struct {
	Kind   Kind
	Region *ir.Region // the loop, for loop suggestions
	Func   *ir.Func   // the host function, for task suggestions
	Loc    ir.Loc

	// Reductions lists recognized reduction variables (DOALLReduction).
	Reductions []*ir.Var
	// Blocking lists the carried RAW dependences that prevent DOALL.
	Blocking []profiler.Dep
	// SeqStage/ParStage partition the loop body CUs for DOACROSS.
	SeqStage []*cu.CU
	ParStage []*cu.CU
	// Tasks groups CUs into concurrently runnable tasks (SPMD/MPMD).
	Tasks [][]*cu.CU

	// Metrics (filled by the rank package).
	Coverage     float64
	LocalSpeedup float64
	Imbalance    float64
	Score        float64

	// Iters is the profiled trip count for loop suggestions.
	Iters int64
	// Weight is the dynamic work estimate of the construct.
	Weight float64
	// Notes is a human-readable explanation.
	Notes string
}

func (s *Suggestion) String() string {
	return fmt.Sprintf("%s at %s (%s)", s.Kind, s.Loc, s.Notes)
}

// Analysis is the result of running all discovery algorithms.
type Analysis struct {
	Mod         *ir.Module
	Scope       *ir.Scope
	Res         *profiler.Result
	Graph       *cu.Graph
	Suggestions []*Suggestion
}

// Analyze runs loop and task discovery over a profiled module.
func Analyze(m *ir.Module, sc *ir.Scope, res *profiler.Result, g *cu.Graph) *Analysis {
	a := &Analysis{Mod: m, Scope: sc, Res: res, Graph: g}
	a.analyzeLoops()
	a.analyzeMPMD()
	return a
}

// Reduction describes a recognized reduction statement: v = v op expr with
// a commutative, associative op (Section 4.1.1 resolves such dependences
// automatically, like the compiler's reduction support).
type Reduction struct {
	Var  *ir.Var
	Loc  ir.Loc
	Op   ir.BinOp
	Stmt *ir.Assign
}

// FindReductions statically recognizes reduction statements within the
// body of region r.
func FindReductions(sc *ir.Scope, r *ir.Region) []Reduction {
	rs := sc.Of(r)
	gv := map[*ir.Var]bool{}
	for _, v := range rs.GlobalVars {
		gv[v] = true
	}
	var out []Reduction
	var scan func(s ir.Stmt)
	scan = func(s ir.Stmt) {
		a, ok := s.(*ir.Assign)
		if !ok {
			return
		}
		v := a.Dst.Var
		if !gv[v] {
			return
		}
		bin, ok := a.Src.(*ir.Bin)
		if !ok || !bin.Op.Commutative() {
			return
		}
		// One operand must be exactly the destination (same variable AND
		// syntactically identical index), and the other operand must not
		// touch v at all — otherwise the statement is a recurrence like
		// a[i] = a[i] + a[i-1], which is NOT a reduction.
		sameElem := func(e ir.Expr) bool {
			ref, ok := e.(*ir.Ref)
			return ok && ref.Var == v && exprEqual(ref.Index, a.Dst.Index)
		}
		touches := func(e ir.Expr) bool {
			found := false
			ir.WalkExprs(e, func(x ir.Expr) {
				if ref, ok := x.(*ir.Ref); ok && ref.Var == v {
					found = true
				}
			})
			return found
		}
		if (sameElem(bin.L) && !touches(bin.R)) || (sameElem(bin.R) && !touches(bin.L)) {
			out = append(out, Reduction{Var: v, Loc: a.Loc, Op: bin.Op, Stmt: a})
		}
	}
	ir.Walk(regionStmt(r), scan)
	return out
}

// exprEqual reports structural equality of two expressions.
func exprEqual(a, b ir.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ir.Const:
		y, ok := b.(*ir.Const)
		return ok && x.Val == y.Val
	case *ir.Ref:
		y, ok := b.(*ir.Ref)
		return ok && x.Var == y.Var && exprEqual(x.Index, y.Index)
	case *ir.Bin:
		y, ok := b.(*ir.Bin)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	case *ir.Un:
		y, ok := b.(*ir.Un)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *ir.Rand:
		_, ok := b.(*ir.Rand)
		return ok
	}
	return false
}

func regionStmt(r *ir.Region) ir.Stmt {
	switch n := r.Stmt.(type) {
	case *ir.For:
		return n.Body
	case *ir.While:
		return n.Body
	case *ir.If:
		b := &ir.BlockStmt{List: []ir.Stmt{n.Then}}
		if n.Else != nil {
			b.List = append(b.List, n.Else)
		}
		return b
	case nil:
		return r.Func.Body
	}
	return nil
}

// analyzeLoops classifies every executed loop.
func (a *Analysis) analyzeLoops() {
	for _, r := range a.Mod.Regions {
		if r.Kind != ir.RLoop {
			continue
		}
		re := a.Res.Regions[r.ID]
		if re == nil || re.Iters == 0 {
			continue
		}
		a.Suggestions = append(a.Suggestions, a.classifyLoop(r, re))
	}
}

// classifyLoop implements the DOALL/DOACROSS decision of Section 4.1.
func (a *Analysis) classifyLoop(r *ir.Region, re *profiler.RegionExec) *Suggestion {
	s := &Suggestion{Region: r, Loc: r.Start, Iters: re.Iters, Weight: float64(re.Instrs)}
	rs := a.Scope.Of(r)
	reds := FindReductions(a.Scope, r)
	redLines := map[ir.Loc]*ir.Var{}
	for _, red := range reds {
		redLines[red.Loc] = red.Var
	}
	var indVar *ir.Var
	if f, ok := r.Stmt.(*ir.For); ok && !rs.IndVarWritten {
		indVar = f.IndVar
	}
	redVars := map[*ir.Var]bool{}
	for d := range a.Res.Deps {
		if d.Type != profiler.RAW || !d.Carried || d.CarriedBy != int32(r.ID) {
			continue
		}
		// Rule 1 (Section 3.2.5): dependences on the loop's own iteration
		// variable in the header do not prevent parallelism unless the
		// variable is written in the body.
		if indVar != nil && int(d.Var) == indVar.ID {
			continue
		}
		// Inner loops' iteration variables reinitialized every iteration
		// are likewise private to their loops.
		if v := a.varByID(d.Var); v != nil && isInnerIndVar(a.Scope, r, v) {
			continue
		}
		// Rule 2: a self-dependence on a recognized reduction line is
		// resolvable by reduction parallelization.
		if v, ok := redLines[d.Sink]; ok && int(d.Var) == v.ID && d.Sink == d.Source {
			redVars[v] = true
			continue
		}
		s.Blocking = append(s.Blocking, d)
	}
	for v := range redVars {
		s.Reductions = append(s.Reductions, v)
	}
	sort.Slice(s.Reductions, func(i, j int) bool { return s.Reductions[i].ID < s.Reductions[j].ID })
	sortDeps(s.Blocking)

	if len(s.Blocking) == 0 {
		if len(s.Reductions) > 0 {
			s.Kind = DOALLReduction
			s.Notes = fmt.Sprintf("parallelizable with reduction on %s", varNames(s.Reductions))
		} else {
			s.Kind = DOALL
			s.Notes = "no loop-carried true dependences"
		}
		if a.bodyCalls(r) {
			// A DOALL loop spawning heavyweight calls per iteration is the
			// SPMD task pattern of nqueens (Figure 4.2).
			s.Tasks = a.bodyTaskGroups(r)
			if len(s.Tasks) >= 1 {
				s.Kind = SPMDTask
				s.Notes = "independent iterations containing calls: spawn one task per iteration"
			}
		}
		return s
	}
	// DOACROSS check (Section 4.1.2): do the carried dependences confine
	// only part of the body's CUs? The body includes the CUs of functions
	// called from within the loop, the way the PET's hierarchy lets
	// dependences between whole callees be examined.
	blocked := map[*cu.CU]bool{}
	for _, d := range s.Blocking {
		if c := a.Graph.CUAt(d.Sink); c != nil {
			blocked[c] = true
		}
		if c := a.Graph.CUAt(d.Source); c != nil {
			blocked[c] = true
		}
	}
	callees := a.calleesOf(r)
	var seqW, parW float64
	for _, c := range a.Graph.CUs {
		inBody := c.Region != nil && r.Encloses(c.Region)
		if !inBody && c.Func != nil && callees[c.Func] {
			inBody = true
		}
		if !inBody {
			continue
		}
		if blocked[c] {
			s.SeqStage = append(s.SeqStage, c)
			seqW += c.Weight
		} else {
			s.ParStage = append(s.ParStage, c)
			parW += c.Weight
		}
	}
	if len(s.ParStage) > 0 && parW > 0.1*(parW+seqW) {
		s.Kind = DOACROSS
		s.Notes = fmt.Sprintf("carried dependences confined to %d of %d CUs; pipeline iterations",
			len(s.SeqStage), len(s.SeqStage)+len(s.ParStage))
	} else {
		s.Kind = Sequential
		s.Notes = fmt.Sprintf("%d loop-carried true dependences across the body", len(s.Blocking))
	}
	return s
}

// calleesOf returns the set of functions transitively callable from the
// body of region r (excluding r's own function).
func (a *Analysis) calleesOf(r *ir.Region) map[*ir.Func]bool {
	out := map[*ir.Func]bool{}
	var visitFunc func(f *ir.Func)
	collect := func(s ir.Stmt) {
		handle := func(c *ir.CallExpr) {
			if c.Callee != r.Func && !out[c.Callee] {
				out[c.Callee] = true
				visitFunc(c.Callee)
			}
		}
		switch n := s.(type) {
		case *ir.CallStmt:
			handle(n.Call)
		case *ir.Spawn:
			handle(n.Call)
		case *ir.Assign:
			ir.WalkExprs(n.Src, func(e ir.Expr) {
				if c, ok := e.(*ir.CallExpr); ok {
					handle(c)
				}
			})
		}
	}
	visitFunc = func(f *ir.Func) {
		if f.Body == nil {
			return
		}
		ir.Walk(f.Body, collect)
	}
	ir.Walk(regionStmt(r), collect)
	return out
}

func (a *Analysis) varByID(id int32) *ir.Var {
	if id < 0 || int(id) >= len(a.Mod.Vars) {
		return nil
	}
	return a.Mod.Vars[id]
}

// isInnerIndVar reports whether v is the (unwritten) iteration variable of
// a loop nested inside r.
func isInnerIndVar(sc *ir.Scope, r *ir.Region, v *ir.Var) bool {
	if v.DeclRegion == nil || v.DeclRegion.Kind != ir.RLoop || v.DeclRegion == r {
		return false
	}
	f, ok := v.DeclRegion.Stmt.(*ir.For)
	if !ok || f.IndVar != v {
		return false
	}
	return r.Encloses(v.DeclRegion) && !sc.Of(v.DeclRegion).IndVarWritten
}

// bodyCalls reports whether the loop body contains function calls.
func (a *Analysis) bodyCalls(r *ir.Region) bool {
	found := false
	ir.Walk(regionStmt(r), func(s ir.Stmt) {
		switch n := s.(type) {
		case *ir.CallStmt:
			found = true
		case *ir.Assign:
			ir.WalkExprs(n.Src, func(e ir.Expr) {
				if _, ok := e.(*ir.CallExpr); ok {
					found = true
				}
			})
		}
	})
	return found
}

// bodyTaskGroups groups the loop body's CUs into independent task groups
// (weakly connected components over non-carried edges).
func (a *Analysis) bodyTaskGroups(r *ir.Region) [][]*cu.CU {
	var cus []*cu.CU
	idx := map[*cu.CU]int{}
	for _, c := range a.Graph.CUs {
		if c.Region != nil && r.Encloses(c.Region) && c.Region != r.Parent {
			idx[c] = len(cus)
			cus = append(cus, c)
		}
	}
	if len(cus) == 0 {
		return nil
	}
	g := graph.New(len(cus))
	for _, e := range a.Graph.Edges {
		if e.Carried {
			continue
		}
		fi, ok1 := idx[e.From]
		ti, ok2 := idx[e.To]
		if ok1 && ok2 && fi != ti {
			g.AddEdge(fi, ti)
		}
	}
	var out [][]*cu.CU
	for _, comp := range g.Components() {
		var grp []*cu.CU
		for _, i := range comp {
			grp = append(grp, cus[i])
		}
		out = append(out, grp)
	}
	return out
}

func sortDeps(ds []profiler.Dep) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Sink != ds[j].Sink {
			return ds[i].Sink.Key() < ds[j].Sink.Key()
		}
		return ds[i].Source.Key() < ds[j].Source.Key()
	})
}

func varNames(vs []*ir.Var) string {
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += ","
		}
		s += v.Name
	}
	return s
}
