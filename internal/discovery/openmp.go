package discovery

import (
	"fmt"
	"sort"
	"strings"

	"discopop/internal/ir"
	"discopop/internal/profiler"
)

// This file turns loop suggestions into concrete OpenMP-style pragmas by
// classifying every variable global to the loop into the data-sharing
// clause that makes the parallelization safe — the actionable form in
// which DiscoPoP reports loop parallelism to users. Anti- and output
// dependences are resolved by privatization (name dependences, Section
// 1.2.1); recognized reductions get reduction clauses.

// ClauseKind is an OpenMP data-sharing classification.
type ClauseKind uint8

// Clause kinds.
const (
	// ClauseShared: concurrent accesses are disjoint (e.g. arrays indexed
	// by the iteration variable) or read-only.
	ClauseShared ClauseKind = iota
	// ClausePrivate: each iteration writes the variable before reading
	// it, so a per-thread copy resolves the carried WAR/WAW dependences.
	ClausePrivate
	// ClauseFirstPrivate: as private, but the first read can precede the
	// first write, so the copy must be value-initialized.
	ClauseFirstPrivate
	// ClauseReduction: carried RAW resolved by a commutative reduction.
	ClauseReduction
)

func (k ClauseKind) String() string {
	switch k {
	case ClauseShared:
		return "shared"
	case ClausePrivate:
		return "private"
	case ClauseFirstPrivate:
		return "firstprivate"
	default:
		return "reduction"
	}
}

// Clause is one classified variable.
type Clause struct {
	Var  *ir.Var
	Kind ClauseKind
	// Op is the reduction operator for ClauseReduction.
	Op ir.BinOp
}

// Classify returns the data-sharing clauses for a parallelizable loop
// suggestion, or nil if the suggestion is not a loop.
func (a *Analysis) Classify(s *Suggestion) []Clause {
	if s.Region == nil {
		return nil
	}
	r := s.Region
	rs := a.Scope.Of(r)
	reds := FindReductions(a.Scope, r)
	redOf := map[*ir.Var]ir.BinOp{}
	for _, red := range reds {
		redOf[red.Var] = red.Op
	}
	redVars := map[*ir.Var]bool{}
	for _, v := range s.Reductions {
		redVars[v] = true
	}

	// Per variable, collect whether the loop carries WAR/WAW (needs
	// privatization) and whether a read can precede the first write in an
	// iteration (needs firstprivate).
	carriedName := map[int32]bool{}
	carriedFlow := map[int32]bool{}
	for d := range a.Res.Deps {
		if !d.Carried || d.CarriedBy != int32(r.ID) {
			continue
		}
		switch d.Type {
		case profiler.WAR, profiler.WAW:
			carriedName[d.Var] = true
		case profiler.RAW:
			carriedFlow[d.Var] = true
		}
	}
	var out []Clause
	var indVar *ir.Var
	if f, ok := r.Stmt.(*ir.For); ok {
		indVar = f.IndVar
	}
	for _, v := range rs.GlobalVars {
		if v == indVar {
			continue // the loop index is private by construction
		}
		id := int32(v.ID)
		switch {
		case redVars[v]:
			out = append(out, Clause{Var: v, Kind: ClauseReduction, Op: redOf[v]})
		case carriedFlow[id]:
			// A remaining carried flow dependence: only legal if it was
			// filtered as reduction; otherwise the loop is not DOALL and
			// classification is moot. Report as reduction if the pattern
			// matches, else shared (caller should not parallelize).
			if op, ok := redOf[v]; ok {
				out = append(out, Clause{Var: v, Kind: ClauseReduction, Op: op})
			} else {
				out = append(out, Clause{Var: v, Kind: ClauseShared})
			}
		case carriedName[id] && v.IsArray():
			// Arrays with carried anti/output deps on distinct elements
			// written per iteration would be privatized per-element in
			// C; whole-array copies are wasteful, but for scalars-only
			// models we mark the array private.
			out = append(out, Clause{Var: v, Kind: ClausePrivate})
		case carriedName[id]:
			if readsBeforeWrite(a.Scope, r, v) {
				out = append(out, Clause{Var: v, Kind: ClauseFirstPrivate})
			} else {
				out = append(out, Clause{Var: v, Kind: ClausePrivate})
			}
		default:
			out = append(out, Clause{Var: v, Kind: ClauseShared})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var.ID < out[j].Var.ID })
	return out
}

// readsBeforeWrite reports whether, scanning the loop body in program
// order, v can be read before it is first written in an iteration.
func readsBeforeWrite(sc *ir.Scope, r *ir.Region, v *ir.Var) bool {
	written := false
	for _, item := range sc.Sequence(r) {
		if item.Child != nil {
			// Conservatively assume nested regions may read first.
			childUses := sc.Of(item.Child).Uses[v]
			if childUses && !written {
				return true
			}
			continue
		}
		for _, acc := range item.Accs {
			if acc.Var != v {
				continue
			}
			if acc.Write {
				written = true
			} else if !written {
				return true
			}
		}
	}
	return false
}

// Pragma renders an OpenMP-style parallelization directive for a loop
// suggestion, e.g.
//
//	#pragma omp parallel for private(x) reduction(+:sum)
func (a *Analysis) Pragma(s *Suggestion) string {
	if s.Region == nil {
		return ""
	}
	switch s.Kind {
	case DOALL, DOALLReduction, SPMDTask:
	default:
		return "" // not parallelizable as a loop
	}
	clauses := a.Classify(s)
	var private, first []string
	redByOp := map[string][]string{}
	for _, c := range clauses {
		switch c.Kind {
		case ClausePrivate:
			private = append(private, c.Var.Name)
		case ClauseFirstPrivate:
			first = append(first, c.Var.Name)
		case ClauseReduction:
			redByOp[c.Op.String()] = append(redByOp[c.Op.String()], c.Var.Name)
		}
	}
	var sb strings.Builder
	sb.WriteString("#pragma omp parallel for")
	if len(private) > 0 {
		fmt.Fprintf(&sb, " private(%s)", strings.Join(private, ","))
	}
	if len(first) > 0 {
		fmt.Fprintf(&sb, " firstprivate(%s)", strings.Join(first, ","))
	}
	var ops []string
	for op := range redByOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&sb, " reduction(%s:%s)", op, strings.Join(redByOp[op], ","))
	}
	return sb.String()
}
