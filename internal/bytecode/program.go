package bytecode

import "sync"

// Program is a compiled module: one flat instruction stream shared by every
// function, plus per-function metadata. A Program holds no pointers into
// the module it was compiled from — every reference is a table index or a
// layout-derived address — so it is valid for any content-identical module
// instance (the property the content-hash cache relies on).
type Program struct {
	// Code is the module-wide instruction stream; functions occupy
	// disjoint [Entry, End) windows.
	Code []Instr
	// Funcs is indexed by Func.ID.
	Funcs []FuncInfo
	// GlobalsEnd is the first address after the last global under the
	// compiler's layout; the interpreter cross-checks it against its own
	// before running the program.
	GlobalsEnd uint64
	// NumOps is the static memory-operation count baked into the stream.
	NumOps int32
	// Fused counts instructions eliminated by superinstruction fusion.
	Fused int

	// Lazily built packed-sink operand table (see Trace). It rides the
	// cached Program pointer, so content-hash cache hits share it.
	traceOnce sync.Once
	trace     *TraceInfo
}

// FuncInfo is the execution metadata of one function.
type FuncInfo struct {
	// Entry is the function's first instruction, or -1 for a declared but
	// undefined function (calling it reproduces the walker's "call to
	// undefined function" error).
	Entry int32
	// End is one past the function's last instruction.
	End int32
	// NSlots is the frame size in binding slots: parameters first (in
	// order), then every local in Func.Locals order.
	NSlots int32
	// ArgWords is the number of value-stack words a call consumes: one
	// per parameter (by-value parameters pass their value, by-reference
	// parameters their resolved base address).
	ArgWords int32
	// MaxStack is the maximum value-stack depth the function's code
	// reaches, computed exactly by the compiler's linear depth tracking.
	MaxStack int32
}
