package bytecode

import "sort"

// PairStats accumulates dynamic opcode-pair frequencies: Counts[a<<8|b] is
// the number of times opcode b executed immediately after opcode a on one
// thread's dispatch path. The interpreter fills it in when constructed
// with interp.WithPairStats; the resulting ranking across the workload
// registry is what selected the superinstruction set (see the "Bytecode
// VM" section of DESIGN.md).
type PairStats struct {
	Counts [256 * 256]int64
}

// PairCount is one ranked entry of a PairStats report.
type PairCount struct {
	First, Second Opcode
	Count         int64
}

// Add merges other into s.
func (s *PairStats) Add(other *PairStats) {
	for i, n := range other.Counts {
		s.Counts[i] += n
	}
}

// Total returns the total number of recorded pairs.
func (s *PairStats) Total() int64 {
	var t int64
	for _, n := range s.Counts {
		t += n
	}
	return t
}

// Top returns the n most frequent pairs, most frequent first.
func (s *PairStats) Top(n int) []PairCount {
	var out []PairCount
	for i, c := range s.Counts {
		if c > 0 {
			out = append(out, PairCount{
				First:  Opcode(i >> 8),
				Second: Opcode(i & 0xff),
				Count:  c,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
