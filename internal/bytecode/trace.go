package bytecode

import "discopop/internal/ir"

// This file is the compile-time half of the instrumentation: the packed
// sink identity of every access a program can emit is a pure function of
// the instruction stream (source location and variable index are static),
// so it is computed once per compiled program instead of once per dynamic
// access. The dynamic half — thread ID, timestamp, address — is all the VM
// has to supply per event.

// PackSink packs the static part of an access's sink identity — file(10) |
// line(22) | var(16) — into the upper bits of the shadow-memory info word.
// Bits 8..15 hold the dynamic thread ID (SinkThread) and the low 8 bits
// stay zero. The file field is always >= 1, so a packed sink is non-zero
// and a zero word can mean "empty" in signature entries.
func PackSink(loc ir.Loc, varID int32) uint64 {
	return uint64(uint32(loc.File))<<54 | uint64(uint32(loc.Line)&0x3FFFFF)<<32 |
		uint64(uint32(varID)&0xFFFF)<<16
}

// SinkThread returns the thread-ID bits of a packed sink word; OR it into a
// PackSink result to complete the dynamic part of the identity.
func SinkThread(tid int32) uint64 { return uint64(uint32(tid)&0xFF) << 8 }

// TraceInfo carries the per-pc packed sink words of a program: S1[pc] and
// S2[pc] are the sinks of the first and second access event instruction pc
// emits on its fast path (0 when the instruction emits fewer). Only the
// opcodes whose dispatch arms consult the table are populated; instructions
// that always take the interpreter's slow access path (OpForInit, call
// parameter stores) pack their sink at runtime instead.
type TraceInfo struct {
	S1 []uint64
	S2 []uint64
}

// Trace returns the program's packed-sink operand table, building it on
// first use. Programs are memoized by module content hash (Shared), so the
// table is built once per distinct module and shared by every traced run —
// the packing cost moves from per-access to per-compile.
func (p *Program) Trace() *TraceInfo {
	p.traceOnce.Do(func() { p.trace = buildTrace(p) })
	return p.trace
}

func buildTrace(p *Program) *TraceInfo {
	t := &TraceInfo{S1: make([]uint64, len(p.Code)), S2: make([]uint64, len(p.Code))}
	for pc := range p.Code {
		in := &p.Code[pc]
		switch in.Op {
		case OpLoadG, OpLoadL, OpLoadGI, OpLoadLI,
			OpStoreG, OpStoreL, OpStoreGI, OpStoreLI,
			OpBinStoreL, OpBinStoreG, OpStoreCL, OpStoreCG:
			t.S1[pc] = PackSink(in.Loc, in.B)
		case OpForTest:
			// Induction-variable test load; the synthetic op ID stays in the
			// instruction operands.
			t.S1[pc] = PackSink(in.Loc, in.A)
		case OpForHeadC:
			// The iv test load sits in S2 for every OpForHead* variant (S1
			// is the fused bound load, absent for the constant-bound form).
			t.S2[pc] = PackSink(in.Loc, in.A)
		case OpForInc, OpForIncC:
			// Increment load, then increment store: same line, same variable.
			s := PackSink(in.Loc, in.A)
			t.S1[pc] = s
			t.S2[pc] = s
		case OpForHeadL, OpForHeadG:
			t.S1[pc] = PackSink(in.Loc, in.E) // fused bound load, emitted first
			t.S2[pc] = PackSink(in.Loc, in.A) // induction-variable test load
		case OpLoadLL, OpIdxLoadL, OpIdxLoadG, OpIdxStoreL, OpIdxStoreG:
			t.S1[pc] = PackSink(in.Loc, in.B)
			t.S2[pc] = PackSink(in.Loc, in.E)
		}
	}
	return t
}
