package bytecode

// Superinstruction fusion: a peephole pass over one function's freshly
// compiled code that replaces the dominant opcode sequences with single
// fused instructions. The candidate set was chosen by measuring dynamic
// opcode-pair frequencies across the workload registry (interp's
// WithPairStats hook; see the "Bytecode VM" section of DESIGN.md): the
// loop-header triple (LoopHead · bound-eval · ForTest), constant-operand
// arithmetic, arithmetic feeding a scalar store, and index-variable loads
// feeding indexed array accesses together cover the large majority of all
// dynamically executed instruction boundaries.
//
// Fusion is only legal when it cannot be observed:
//
//   - no later member of a fused group may be a jump target (the group
//     executes atomically, so jumping into its middle would be lost);
//   - no later member may carry FStep (the Instrs++ would move across an
//     event boundary) — except the loop-header triple, whose handler
//     reproduces the walker's LoopIter → Instrs++ → bound-eval order
//     internally;
//   - every member shares one source location (always true within a
//     statement, which is the only place patterns occur).
//
// After rewriting, every surviving jump operand is remapped through the
// old-index → new-index table; a jump into a fused interior is impossible
// by construction and asserted.

// jumpPtr returns a pointer to in's jump-target operand, or nil if the
// opcode does not branch.
func jumpPtr(in *Instr) *int32 {
	switch in.Op {
	case OpJmp, OpAndSC, OpOrSC:
		return &in.A
	case OpBr:
		return &in.B
	case OpForTest, OpForInc, OpWhileTest, OpWhileNext,
		OpForHeadC, OpForHeadL, OpForHeadG, OpForIncC:
		return &in.C
	}
	return nil
}

// fuseFunc fuses the function code starting at entry (running to the
// current end of c.code) in place.
func (c *compiler) fuseFunc(entry int) {
	old := c.code[entry:]
	if len(old) < 2 {
		return
	}
	labels := make(map[int32]bool)
	for i := range old {
		if p := jumpPtr(&old[i]); p != nil {
			labels[*p] = true
		}
	}
	// free reports whether old[k] may be a non-leading member of a group.
	free := func(k int, allowStep bool) bool {
		if labels[int32(entry+k)] {
			return false
		}
		return allowStep || old[k].Fl&FStep == 0
	}
	newCode := make([]Instr, 0, len(old))
	oldToNew := make([]int32, len(old)+1)
	i := 0
	for i < len(old) {
		ni := int32(entry + len(newCode))
		oldToNew[i] = ni
		fused, n := c.tryFuse(old, i, free)
		if n > 1 {
			for k := 1; k < n; k++ {
				oldToNew[i+k] = -1
			}
			newCode = append(newCode, fused)
			c.fused += n - 1
			i += n
			continue
		}
		newCode = append(newCode, old[i])
		i++
	}
	oldToNew[len(old)] = int32(entry + len(newCode))
	for j := range newCode {
		if p := jumpPtr(&newCode[j]); p != nil {
			nt := oldToNew[*p-int32(entry)]
			if nt < 0 {
				panic("bytecode: jump into fused superinstruction interior")
			}
			*p = nt
		}
	}
	c.code = append(c.code[:entry], newCode...)
}

// tryFuse matches the superinstruction patterns at old[i], returning the
// fused instruction and the number of members consumed (0 if no match).
// Triples are tried before pairs. The fused instruction inherits the first
// member's flags and location.
func (c *compiler) tryFuse(old []Instr, i int, free func(int, bool) bool) (Instr, int) {
	a := &old[i]
	// Loop-header triple: LoopHead · single-op bound · ForTest. The bound
	// op always carries FStep (it begins the header's test statement);
	// the fused handler performs the Instrs++ between the LoopIter event
	// and the bound evaluation, so the step flag is allowed here and the
	// fused instruction carries none.
	if a.Op == OpLoopHead && i+2 < len(old) && old[i+2].Op == OpForTest &&
		free(i+1, true) && free(i+2, false) {
		b, t := &old[i+1], &old[i+2]
		out := Instr{A: t.A, B: t.B, C: t.C, Loc: a.Loc}
		switch b.Op {
		case OpPushC:
			out.Op, out.Val = OpForHeadC, b.Val
			return out, 3
		case OpLoadL:
			out.Op, out.D, out.E, out.F = OpForHeadL, b.A, b.B, b.C
			return out, 3
		case OpLoadG:
			out.Op, out.D, out.E, out.F = OpForHeadG, b.A, b.B, b.C
			return out, 3
		}
	}
	if i+1 >= len(old) || !free(i+1, false) {
		return Instr{}, 0
	}
	b := &old[i+1]
	out := Instr{Fl: a.Fl, Loc: a.Loc}
	switch a.Op {
	case OpPushC:
		switch b.Op {
		case OpBin:
			out.Op, out.A, out.Val = OpBinC, b.A, a.Val
			return out, 2
		case OpStoreL:
			out.Op, out.A, out.B, out.C, out.Val = OpStoreCL, b.A, b.B, b.C, a.Val
			return out, 2
		case OpStoreG:
			out.Op, out.A, out.B, out.C, out.Val = OpStoreCG, b.A, b.B, b.C, a.Val
			return out, 2
		case OpForInc:
			out.Op, out.A, out.B, out.C, out.Val = OpForIncC, b.A, b.B, b.C, a.Val
			return out, 2
		}
	case OpBin:
		switch b.Op {
		case OpStoreL:
			out.Op, out.A, out.B, out.C, out.D = OpBinStoreL, b.A, b.B, b.C, a.A
			return out, 2
		case OpStoreG:
			out.Op, out.A, out.B, out.C, out.D = OpBinStoreG, b.A, b.B, b.C, a.A
			return out, 2
		}
	case OpLoadL:
		out.A, out.B, out.C = a.A, a.B, a.C
		switch b.Op {
		case OpLoadL:
			out.Op, out.D, out.E, out.F = OpLoadLL, b.A, b.B, b.C
			return out, 2
		case OpLoadLI:
			out.Op, out.D, out.E, out.F = OpIdxLoadL, b.A, b.B, b.C
			return out, 2
		case OpLoadGI:
			out.Op, out.D, out.E, out.F = OpIdxLoadG, b.A, b.B, b.C
			return out, 2
		case OpStoreLI:
			out.Op, out.D, out.E, out.F = OpIdxStoreL, b.A, b.B, b.C
			return out, 2
		case OpStoreGI:
			out.Op, out.D, out.E, out.F = OpIdxStoreG, b.A, b.B, b.C
			return out, 2
		}
	}
	return Instr{}, 0
}
