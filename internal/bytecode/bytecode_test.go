package bytecode

import (
	"sync"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// buildCounted builds a module dominated by a constant-bound counted loop
// accumulating into a global through a constant-operand binop — the shape
// the superinstruction table was selected for.
func buildCounted(bound int64) *ir.Module {
	b := ir.NewBuilder("counted")
	sum := b.Global("sum", ir.F64)
	mb := b.Func("main")
	mb.For("i", ir.CI(0), ir.CI(bound), ir.CI(1), func(i *ir.Var) {
		mb.Set(sum, ir.Add(ir.V(sum), ir.CI(3)))
	})
	return b.Build(mb.Done())
}

// TestModuleHashStability: the content hash is a function of module
// structure alone — two independent builds of the same workload hash
// identically, across the whole registry, while distinct workloads and
// single-constant edits diverge.
func TestModuleHashStability(t *testing.T) {
	seen := map[[32]byte]string{}
	for _, name := range workloads.Names("") {
		a := ModuleHash(workloads.MustBuild(name, 1).M)
		b := ModuleHash(workloads.MustBuild(name, 1).M)
		if a != b {
			t.Errorf("%s: two builds of the same workload hash differently", name)
		}
		if prev, dup := seen[a]; dup {
			t.Errorf("%s and %s share a content hash", name, prev)
		}
		seen[a] = name
	}
	// Scale changes the built module, so the hash must follow.
	if ModuleHash(workloads.MustBuild("CG", 1).M) == ModuleHash(workloads.MustBuild("CG", 2).M) {
		t.Error("CG@1 and CG@2 share a content hash")
	}
	if ModuleHash(buildCounted(10)) == ModuleHash(buildCounted(11)) {
		t.Error("single-constant edit did not change the content hash")
	}
}

// TestCompileFusesCountedLoop: the canonical counted loop compiles into
// the fused header and increment superinstructions, and the fusion
// counter records the eliminated instructions.
func TestCompileFusesCountedLoop(t *testing.T) {
	p := Compile(buildCounted(10))
	var ops = map[Opcode]int{}
	for _, in := range p.Code {
		ops[in.Op]++
	}
	if ops[OpForHeadC] == 0 {
		t.Errorf("no OpForHeadC in compiled counted loop; opcode mix: %v", ops)
	}
	if ops[OpForIncC] == 0 {
		t.Errorf("no OpForIncC in compiled counted loop; opcode mix: %v", ops)
	}
	if ops[OpBinC] == 0 {
		t.Errorf("no OpBinC for the constant-operand add; opcode mix: %v", ops)
	}
	if p.Fused == 0 {
		t.Error("fusion eliminated no instructions on the canonical counted loop")
	}
}

// TestCompileRegistry: every bundled workload compiles; the resulting
// programs are well formed (entries in range, undefined functions marked,
// globals layout non-empty) and fusion fires broadly.
func TestCompileRegistry(t *testing.T) {
	totalFused := 0
	for _, name := range workloads.Names("") {
		m := workloads.MustBuild(name, 1).M
		p := Compile(m)
		if len(p.Funcs) != len(m.Funcs) {
			t.Fatalf("%s: %d FuncInfos for %d functions", name, len(p.Funcs), len(m.Funcs))
		}
		for i, fi := range p.Funcs {
			if m.Funcs[i].Body == nil {
				if fi.Entry != -1 {
					t.Errorf("%s: undefined %s has entry %d, want -1", name, m.Funcs[i].Name, fi.Entry)
				}
				continue
			}
			if fi.Entry < 0 || fi.End > int32(len(p.Code)) || fi.Entry >= fi.End {
				t.Errorf("%s: %s has bad code window [%d,%d) of %d",
					name, m.Funcs[i].Name, fi.Entry, fi.End, len(p.Code))
			}
			if fi.MaxStack < 0 || fi.NSlots < int32(len(m.Funcs[i].Params)) {
				t.Errorf("%s: %s has MaxStack %d, NSlots %d for %d params",
					name, m.Funcs[i].Name, fi.MaxStack, fi.NSlots, len(m.Funcs[i].Params))
			}
		}
		totalFused += p.Fused
	}
	if totalFused == 0 {
		t.Error("fusion eliminated no instructions across the entire registry")
	}
}

// TestCacheHitMissEvict: the compile cache memoizes by content (rebuilt
// modules hit), bounds its entries by LRU, and reports compile time only
// on misses.
func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2)
	m1 := workloads.MustBuild("CG", 1).M

	p1, hit, dur := c.Get(m1)
	if hit || dur <= 0 {
		t.Fatalf("first Get: hit=%v dur=%v, want a timed miss", hit, dur)
	}
	// A *rebuilt* content-identical module hits and returns the same Program.
	p2, hit, dur := c.Get(workloads.MustBuild("CG", 1).M)
	if !hit || dur != 0 || p2 != p1 {
		t.Fatalf("rebuilt module: hit=%v dur=%v same=%v, want untimed hit on the same Program", hit, dur, p2 == p1)
	}

	c.Get(workloads.MustBuild("EP", 1).M)
	c.Get(workloads.MustBuild("kmeans", 1).M) // cap 2: evicts the LRU entry (CG)
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if _, hit, _ := c.Get(m1); hit {
		t.Error("evicted module still hit the cache")
	}
	hits, misses, entries := c.Stats()
	if hits != 1 || misses != 4 || entries != 2 {
		t.Errorf("stats = %d hits, %d misses, %d entries; want 1/4/2", hits, misses, entries)
	}
}

// TestCacheSingleflight: concurrent requests for one module compile once
// and all receive the same Program.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	m := workloads.MustBuild("CG", 1).M
	const n = 16
	progs := make([]*Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			progs[i], _, _ = c.Get(m)
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("goroutine %d got a different Program", i)
		}
	}
	hits, misses, entries := c.Stats()
	if misses != 1 || hits != n-1 || entries != 1 {
		t.Errorf("stats = %d hits, %d misses, %d entries; want %d/1/1", hits, misses, entries, n-1)
	}
}

// TestPairStats: the accumulator sums, merges, and ranks op pairs.
func TestPairStats(t *testing.T) {
	var a, b PairStats
	a.Counts[uint32(OpLoadG)<<8|uint32(OpBin)] = 5
	a.Counts[uint32(OpPushC)<<8|uint32(OpStoreG)] = 9
	b.Counts[uint32(OpLoadG)<<8|uint32(OpBin)] = 2
	a.Add(&b)
	if got := a.Total(); got != 16 {
		t.Fatalf("Total = %d, want 16", got)
	}
	top := a.Top(2)
	if len(top) != 2 || top[0].Count != 9 || top[0].First != OpPushC || top[0].Second != OpStoreG ||
		top[1].Count != 7 || top[1].First != OpLoadG || top[1].Second != OpBin {
		t.Errorf("Top(2) = %+v", top)
	}
}
