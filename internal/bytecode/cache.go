package bytecode

import (
	"container/list"
	"sync"
	"time"

	"discopop/internal/ir"
)

// Cache memoizes compiled Programs, keyed by module content-hash. It sits
// alongside pipeline.ProfileCache in the service stack but one level
// lower: the profile cache memoizes whole instrumented runs per (cache
// key, options) pair, while this cache memoizes the compilation itself, so
// content-identical modules arriving under different job keys (rebuilt
// workloads, repeated inline submissions, different thread configs) still
// compile exactly once.
//
// Concurrent misses on one hash coalesce through a per-entry sync.Once:
// the first caller compiles, the rest block until the Program is ready.
// The cache is LRU-bounded; in-flight entries are never evicted (a caller
// is blocked on their once), mirroring the profile cache's discipline.
type Cache struct {
	mu  sync.Mutex
	max int
	m   map[[32]byte]*list.Element
	lru list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  [32]byte
	once sync.Once
	done bool

	prog *Program
	dur  time.Duration
}

// DefaultCacheEntries bounds the shared compile cache: far above the
// bundled workload registry, small enough that a long-lived engine holds a
// bounded set of compiled programs.
const DefaultCacheEntries = 256

// Shared is the process-wide compile cache used by interp.New unless a
// program or the tree walker is selected explicitly.
var Shared = NewCache(DefaultCacheEntries)

// NewCache returns an empty cache evicting least-recently-used completed
// entries beyond max (0 = unbounded).
func NewCache(max int) *Cache {
	return &Cache{max: max, m: make(map[[32]byte]*list.Element)}
}

// Get returns the compiled program for m, compiling it on first sight. The
// hit flag reports whether compilation was skipped; dur is the compile
// time actually spent by this call (zero on a hit).
func (c *Cache) Get(m *ir.Module) (prog *Program, hit bool, dur time.Duration) {
	e := c.entry(ModuleHash(m))
	hit = true
	e.once.Do(func() {
		hit = false
		start := time.Now()
		e.prog = Compile(m)
		e.dur = time.Since(start)
	})
	c.finish(e, hit)
	if !hit {
		dur = e.dur
	}
	return e.prog, hit, dur
}

func (c *Cache) entry(key [32]byte) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{key: key}
	c.m[key] = c.lru.PushFront(e)
	for c.max > 0 && c.lru.Len() > c.max {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			slot := el.Value.(*cacheEntry)
			if !slot.done {
				continue
			}
			delete(c.m, slot.key)
			c.lru.Remove(el)
			c.evictions++
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	return e
}

func (c *Cache) finish(e *cacheEntry, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.done = true
	if hit {
		c.hits++
	} else {
		c.misses++
	}
}

// Stats returns the hit/miss counters and the live entry count.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// Evictions returns the number of entries dropped by the LRU bound.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
