// Package bytecode compiles ir.Module into a flat, preallocated,
// fixed-width instruction stream for direct-dispatch execution. It plays
// the role a JIT's baseline tier plays in a managed runtime: the tree
// walker remains the semantic reference (interp.WithTreeWalk), while the
// compiled form removes per-node interface dispatch, environment-map
// lookups, and allocation from the hot path.
//
// The encoding follows the same index discipline as the internal/remote
// codec: instructions name variables, functions, and regions by their table
// index in the module (Var.ID, Func.ID, Region.ID), never by pointer, so a
// compiled Program is valid for any content-identical module instance and
// can be cached across jobs by module content-hash (see Cache).
//
// The compiler preserves the interpreter's observable semantics exactly:
// tracer event order, instruction counting (Instrs++ points are encoded as
// the FStep flag on the first instruction of each statement), yield points,
// and runtime-error panic messages are all bit-identical to the tree
// walker, which a registry-wide differential test enforces.
package bytecode

import "discopop/internal/ir"

// Opcode is one VM operation.
type Opcode uint8

// Baseline opcodes. Suffix conventions: G = global (operand is an absolute
// address), L = local (operand is a frame-slot index), I = indexed (an
// element index is popped from the value stack).
const (
	// OpInvalid marks the zero value so uninitialized instructions trap.
	OpInvalid Opcode = iota

	// OpPushC pushes the constant Val.
	OpPushC
	// OpLoadG/OpLoadL load a scalar: A = address/slot, B = var index,
	// C = static memory-operation ID.
	OpLoadG
	OpLoadL
	// OpLoadGI/OpLoadLI pop an element index, bounds-check it against the
	// array (B = var index), and load base+idx. A = base address/slot,
	// C = op ID.
	OpLoadGI
	OpLoadLI
	// OpStoreG/OpStoreL pop a value and store it. Operands as OpLoad*.
	OpStoreG
	OpStoreL
	// OpStoreGI/OpStoreLI pop an element index, then a value.
	OpStoreGI
	OpStoreLI
	// OpBin applies binary operator A to the top two stack values.
	OpBin
	// OpUn applies unary operator A to the top stack value.
	OpUn
	// OpAndSC/OpOrSC short-circuit: if the top value decides the result,
	// replace it with the result and jump to A (past the right operand and
	// its OpNorm); otherwise pop it and fall through.
	OpAndSC
	OpOrSC
	// OpNorm normalizes the top value to 0/1 (the != 0 of the walker's
	// logical operators).
	OpNorm
	// OpRand pushes the next deterministic pseudo-random value.
	OpRand
	// OpRefG/OpRefL push a by-reference argument base address (A =
	// address/slot) as a float64-encoded word. No event is emitted.
	OpRefG
	OpRefL
	// OpRefGI/OpRefLI pop an offset, bounds-check it (0..Elems inclusive,
	// B = var index), and push base+offset.
	OpRefGI
	OpRefLI
	// OpCall calls function A (arguments on the value stack, one word per
	// parameter) and pushes the result. OpCallVoid drops the result and
	// yields (statement-position call).
	OpCall
	OpCallVoid
	// OpRet returns from the current function; A = 1 if a return value is
	// on the stack. Unwinds the control stack (region exits, lock
	// releases) before returning.
	OpRet
	// OpJmp jumps to A.
	OpJmp
	// OpBr pops the branch condition, yields, enters region A, and jumps
	// to B when the condition is false.
	OpBr
	// OpExitBr exits the innermost branch region.
	OpExitBr
	// OpForEnter enters loop region A and resolves the induction variable
	// address: D = 0 local (B = slot), 1 global (B = address), 2 unbound
	// (B = var index, C = func index; panics after the region entry, like
	// the walker's addrOf).
	OpForEnter
	// OpForInit pops the init value and stores it to the induction
	// variable (A = var index, B = region index), then pushes the loop
	// frame.
	OpForInit
	// OpLoopHead marks one iteration: LoopIter event for the innermost
	// loop.
	OpLoopHead
	// OpForTest pops the To value, loads the induction variable (A = var
	// index, B = region index), and exits to C when the loop is done;
	// otherwise checks the iteration cap and the instruction budget, then
	// yields.
	OpForTest
	// OpForInc pops the step, performs the header's increment load+store
	// (A = var index, B = region index), bumps the iteration counter, and
	// jumps to the loop head C.
	OpForInc
	// OpLoopExit pops the loop frame and exits the loop region.
	OpLoopExit
	// OpWhileEnter enters loop region A and pushes the loop frame.
	OpWhileEnter
	// OpWhileTest pops the condition (B = region index) and exits to C
	// when false; otherwise checks the iteration cap and budget, then
	// yields.
	OpWhileTest
	// OpWhileNext bumps the iteration counter and jumps to the head C.
	OpWhileNext
	// OpLock acquires simulated mutex A (blocking); OpUnlock releases it.
	OpLock
	OpUnlock
	// OpSpawn starts a simulated thread running function A; the evaluated
	// arguments (one word per parameter) are popped from the value stack.
	OpSpawn
	// OpSyncT joins every live child of the current thread.
	OpSyncT
	// OpFreeH frees heap variable B bound at slot A.
	OpFreeH
	// OpPanic aborts with the walker's runtime-error message for a
	// statically detectable fault; B selects the message (see PanicKind).
	OpPanic
	// OpEnd terminates a function body that falls off the end (implicit
	// return 0).
	OpEnd

	// Superinstructions — fused forms of the dominant opcode pairs and
	// triples measured across the workload registry (see fuse.go). Each is
	// semantically the exact concatenation of its members.

	// OpForHeadC fuses OpLoopHead + OpPushC + OpForTest for the dominant
	// constant-bound counted loop: A/B/C as OpForTest, Val = To.
	OpForHeadC
	// OpForHeadL/OpForHeadG fuse OpLoopHead + OpLoadL/G + OpForTest for
	// variable loop bounds: D = slot/address, E = var index, F = op ID of
	// the bound load.
	OpForHeadL
	OpForHeadG
	// OpForIncC fuses OpPushC + OpForInc (constant step): Val = step.
	OpForIncC
	// OpBinC fuses OpPushC + OpBin (constant right operand): A = operator,
	// Val = constant.
	OpBinC
	// OpBinStoreL/G fuse OpBin + OpStoreL/G: A/B/C as the store, D = the
	// binary operator.
	OpBinStoreL
	OpBinStoreG
	// OpStoreCL/G fuse OpPushC + OpStoreL/G: Val = the stored constant.
	OpStoreCL
	OpStoreCG
	// OpLoadLL fuses two scalar local loads: A/B/C and D/E/F.
	OpLoadLL
	// OpIdxLoadL/G fuse the scalar local load of an index variable with
	// the indexed array load it feeds: index A/B/C (slot/var/op), array
	// D/E/F (slot-or-address/var/op).
	OpIdxLoadL
	OpIdxLoadG
	// OpIdxStoreL/G fuse the scalar local load of an index variable with
	// the indexed array store it addresses: operands as OpIdxLoad*; the
	// stored value is popped after the index load, like the walker's
	// Assign (Src first, then Dst.Index, then Store).
	OpIdxStoreL
	OpIdxStoreG

	// NumOpcodes bounds the opcode space (pair-frequency tables).
	NumOpcodes
)

// FStep marks an instruction that begins a leaf statement: the dispatch
// loop increments Interp.Instrs before executing it, reproducing the tree
// walker's counting points exactly.
const FStep uint8 = 1

// PanicKind selects an OpPanic message (operand B).
type PanicKind int32

// OpPanic kinds. Operand use per kind is documented on the constant.
const (
	// PanicUnbound: "unbound variable %s in %s" (A = var index, C = func
	// index).
	PanicUnbound PanicKind = iota
	// PanicArity: "call to %s with %d args, want %d" (A = func index,
	// C = given count).
	PanicArity
	// PanicRefArg: "by-reference parameter %s of %s needs a variable
	// argument" (A = func index, C = parameter index).
	PanicRefArg
	// PanicFreeUnbound: "free of unbound variable %s" (A = var index).
	PanicFreeUnbound
	// PanicFreeNonHeap: "free of non-heap variable %s" (A = var index).
	PanicFreeNonHeap
)

// Instr is one fixed-width VM instruction. Operands are table indices,
// frame slots, absolute global addresses, or jump targets depending on the
// opcode; Val carries immediate constants; Loc is the source location of
// the enclosing statement, inherited by every access event the instruction
// emits (the paper's line-level dependence attribution).
type Instr struct {
	Op  Opcode
	Fl  uint8
	A   int32
	B   int32
	C   int32
	D   int32
	E   int32
	F   int32
	Val float64
	Loc ir.Loc
}

var opNames = [...]string{
	OpInvalid: "invalid", OpPushC: "pushc",
	OpLoadG: "loadg", OpLoadL: "loadl", OpLoadGI: "loadgi", OpLoadLI: "loadli",
	OpStoreG: "storeg", OpStoreL: "storel", OpStoreGI: "storegi", OpStoreLI: "storeli",
	OpBin: "bin", OpUn: "un", OpAndSC: "andsc", OpOrSC: "orsc", OpNorm: "norm",
	OpRand: "rand", OpRefG: "refg", OpRefL: "refl", OpRefGI: "refgi", OpRefLI: "refli",
	OpCall: "call", OpCallVoid: "callv", OpRet: "ret", OpJmp: "jmp",
	OpBr: "br", OpExitBr: "exitbr",
	OpForEnter: "forenter", OpForInit: "forinit", OpLoopHead: "loophead",
	OpForTest: "fortest", OpForInc: "forinc", OpLoopExit: "loopexit",
	OpWhileEnter: "whileenter", OpWhileTest: "whiletest", OpWhileNext: "whilenext",
	OpLock: "lock", OpUnlock: "unlock", OpSpawn: "spawn", OpSyncT: "sync",
	OpFreeH: "free", OpPanic: "panic", OpEnd: "end",
	OpForHeadC: "forhead.c", OpForHeadL: "forhead.l", OpForHeadG: "forhead.g",
	OpForIncC: "forinc.c", OpBinC: "bin.c",
	OpBinStoreL: "binstore.l", OpBinStoreG: "binstore.g",
	OpStoreCL: "storec.l", OpStoreCG: "storec.g", OpLoadLL: "load.ll",
	OpIdxLoadL: "idxload.l", OpIdxLoadG: "idxload.g",
	OpIdxStoreL: "idxstore.l", OpIdxStoreG: "idxstore.g",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}
