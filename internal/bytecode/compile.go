package bytecode

import (
	"fmt"
	"math"

	"discopop/internal/ir"
)

// Compile lowers a module to a Program. The lowering is a single syntax-
// directed pass per function: statements compile to net-zero stack effect,
// expressions to exactly one pushed word, and the compiler tracks the
// value-stack depth linearly (exact on every path, because the only merge
// points — branch joins and short-circuit operators — rejoin at equal
// depth). A peephole pass then fuses the dominant opcode sequences into
// superinstructions (see fuse.go).
//
// Statically detectable runtime errors (unbound variables, call arity
// mismatches, non-variable by-reference arguments, bad frees) compile to
// OpPanic at the position where the walker would fault, so the partial
// event prefix before the fault stays bit-identical.
func Compile(m *ir.Module) *Program {
	numOps := m.NumberOps(ir.NumberStaticOps)
	c := &compiler{m: m, gbase: make(map[*ir.Var]uint64)}
	next := uint64(1)
	for _, v := range m.Vars {
		if v.Kind == ir.KGlobal {
			c.gbase[v] = next
			next += uint64(v.Elems)
		}
	}
	if next > math.MaxInt32 {
		panic(fmt.Sprintf("bytecode: global segment of %d elements exceeds the 2^31 address operand range", next))
	}
	p := &Program{GlobalsEnd: next, NumOps: numOps, Funcs: make([]FuncInfo, len(m.Funcs))}
	c.code = make([]Instr, 0, 4*countStmts(m)+8)
	for i, f := range m.Funcs {
		if f.Body == nil {
			p.Funcs[i] = FuncInfo{Entry: -1}
			continue
		}
		p.Funcs[i] = c.compileFunc(f, int32(i))
	}
	p.Code = c.code
	p.Fused = c.fused
	return p
}

// countStmts estimates the instruction count for preallocation.
func countStmts(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		if f.Body != nil {
			ir.Walk(f.Body, func(ir.Stmt) { n++ })
		}
	}
	return n
}

type compiler struct {
	m     *ir.Module
	code  []Instr
	gbase map[*ir.Var]uint64
	fused int

	// Per-function state.
	fn    *ir.Func
	fnIdx int32
	slots map[*ir.Var]int32
	d     int32 // current value-stack depth
	maxD  int32
}

func (c *compiler) compileFunc(f *ir.Func, idx int32) FuncInfo {
	c.fn, c.fnIdx = f, idx
	c.slots = make(map[*ir.Var]int32, len(f.Params)+len(f.Locals))
	for i, p := range f.Params {
		c.slots[p] = int32(i)
	}
	for j, v := range f.Locals {
		c.slots[v] = int32(len(f.Params) + j)
	}
	entry := int32(len(c.code))
	c.d, c.maxD = 0, 0
	c.block(f.Body)
	if c.d != 0 {
		panic(fmt.Sprintf("bytecode: non-empty stack (%d) at end of %s", c.d, f.Name))
	}
	c.emit(Instr{Op: OpEnd, Loc: f.EndLoc})
	c.fuseFunc(int(entry))
	return FuncInfo{
		Entry:    entry,
		End:      int32(len(c.code)),
		NSlots:   int32(len(f.Params) + len(f.Locals)),
		ArgWords: int32(len(f.Params)),
		MaxStack: c.maxD,
	}
}

func (c *compiler) emit(in Instr) int32 {
	c.code = append(c.code, in)
	return int32(len(c.code) - 1)
}

func (c *compiler) push(n int32) {
	c.d += n
	if c.d > c.maxD {
		c.maxD = c.d
	}
}

func (c *compiler) pop(n int32) {
	c.d -= n
	if c.d < 0 {
		panic("bytecode: value-stack underflow in compiler")
	}
}

// step marks the instruction at index i as a leaf-statement boundary (the
// walker's Instrs++ point).
func (c *compiler) step(i int32) {
	c.code[i].Fl |= FStep
}

// resolve maps a variable to its addressing mode: a global address, a
// frame slot, or unbound (the walker's runtime "unbound variable" fault).
func (c *compiler) resolve(v *ir.Var) (global bool, operand int32, ok bool) {
	if v.Kind == ir.KGlobal {
		return true, int32(c.gbase[v]), true
	}
	s, ok := c.slots[v]
	return false, s, ok
}

// panicUnbound emits the walker's addrOf fault for v in the current
// function.
func (c *compiler) panicUnbound(v *ir.Var, loc ir.Loc) int32 {
	return c.emit(Instr{Op: OpPanic, B: int32(PanicUnbound),
		A: int32(v.ID), C: c.fnIdx, Loc: loc})
}

// ---------------------------------------------------------------------------
// Expressions. Each compiles to code pushing exactly one word.

func (c *compiler) expr(e ir.Expr, loc ir.Loc) {
	switch n := e.(type) {
	case *ir.Const:
		c.emit(Instr{Op: OpPushC, Val: n.Val, Loc: loc})
		c.push(1)
	case *ir.Ref:
		c.refLoad(n, loc)
	case *ir.Bin:
		c.expr(n.L, loc)
		switch n.Op {
		case ir.OpLAnd, ir.OpLOr:
			op := OpAndSC
			if n.Op == ir.OpLOr {
				op = OpOrSC
			}
			j := c.emit(Instr{Op: op, Loc: loc})
			c.pop(1) // fall-through pops the left operand
			c.expr(n.R, loc)
			c.emit(Instr{Op: OpNorm, Loc: loc})
			c.code[j].A = int32(len(c.code)) // short-circuit joins after the Norm
		default:
			c.expr(n.R, loc)
			c.emit(Instr{Op: OpBin, A: int32(n.Op), Loc: loc})
			c.pop(1)
		}
	case *ir.Un:
		c.expr(n.X, loc)
		c.emit(Instr{Op: OpUn, A: int32(n.Op), Loc: loc})
	case *ir.Rand:
		c.emit(Instr{Op: OpRand, Loc: loc})
		c.push(1)
	case *ir.CallExpr:
		c.call(n, loc, false)
	default:
		panic(fmt.Sprintf("bytecode: unknown expression %T", e))
	}
}

func (c *compiler) refLoad(r *ir.Ref, loc ir.Loc) {
	global, operand, ok := c.resolve(r.Var)
	if !ok {
		// The walker's elemAddr resolves the base before evaluating the
		// index, so the fault precedes any index-expression events.
		c.panicUnbound(r.Var, loc)
		c.push(1)
		return
	}
	if r.Index == nil {
		op := OpLoadL
		if global {
			op = OpLoadG
		}
		c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), C: r.Op, Loc: loc})
		c.push(1)
		return
	}
	c.expr(r.Index, loc)
	op := OpLoadLI
	if global {
		op = OpLoadGI
	}
	c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), C: r.Op, Loc: loc})
}

// storeRef compiles the destination of an Assign: the stored value is
// already on the stack; the index expression (if any) evaluates after it,
// exactly like the walker (Src first, then Dst.Index, then the store).
func (c *compiler) storeRef(r *ir.Ref, loc ir.Loc) {
	global, operand, ok := c.resolve(r.Var)
	if !ok {
		c.panicUnbound(r.Var, loc)
		c.pop(1)
		return
	}
	if r.Index == nil {
		op := OpStoreL
		if global {
			op = OpStoreG
		}
		c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), C: r.Op, Loc: loc})
		c.pop(1)
		return
	}
	c.expr(r.Index, loc)
	op := OpStoreLI
	if global {
		op = OpStoreGI
	}
	c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), C: r.Op, Loc: loc})
	c.pop(2)
}

// call compiles argument evaluation plus the call/spawn terminator. When a
// static fault is found mid-argument-list (arity mismatch, non-variable
// by-ref argument, unbound by-ref base), it emits OpPanic at the walker's
// fault point and abandons the rest of the call; the depth bookkeeping is
// restored as if the expression had produced its value, keeping the linear
// tracking consistent for the (unreachable) code that follows.
func (c *compiler) call(n *ir.CallExpr, loc ir.Loc, stmtPos bool) {
	d0 := c.d
	callee := n.Callee
	fnIdx := int32(callee.ID)
	fault := func(in Instr) {
		c.emit(in)
		c.d = d0
		if !stmtPos {
			c.push(1)
		}
	}
	if len(n.Args) != len(callee.Params) {
		fault(Instr{Op: OpPanic, B: int32(PanicArity),
			A: fnIdx, C: int32(len(n.Args)), Loc: loc})
		return
	}
	for i, a := range n.Args {
		p := callee.Params[i]
		if p.ByValue {
			c.expr(a, loc)
			continue
		}
		r, ok := a.(*ir.Ref)
		if !ok {
			fault(Instr{Op: OpPanic, B: int32(PanicRefArg),
				A: fnIdx, C: int32(i), Loc: loc})
			return
		}
		global, operand, bound := c.resolve(r.Var)
		if !bound {
			fault(Instr{Op: OpPanic, B: int32(PanicUnbound),
				A: int32(r.Var.ID), C: c.fnIdx, Loc: loc})
			return
		}
		if r.Index == nil {
			op := OpRefL
			if global {
				op = OpRefG
			}
			c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), Loc: loc})
			c.push(1)
			continue
		}
		c.expr(r.Index, loc)
		op := OpRefLI
		if global {
			op = OpRefGI
		}
		c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), Loc: loc})
	}
	op := OpCall
	if stmtPos {
		op = OpCallVoid
	}
	c.emit(Instr{Op: op, A: fnIdx, Loc: loc})
	c.pop(int32(len(callee.Params)))
	if !stmtPos {
		c.push(1)
	}
}

// spawnArgs compiles a Spawn's argument evaluation (same argument protocol
// as call) followed by OpSpawn.
func (c *compiler) spawn(n *ir.Spawn) {
	d0 := c.d
	call := n.Call
	callee := call.Callee
	fnIdx := int32(callee.ID)
	if len(call.Args) != len(callee.Params) {
		c.emit(Instr{Op: OpPanic, B: int32(PanicArity),
			A: fnIdx, C: int32(len(call.Args)), Loc: n.Loc})
		c.d = d0
		return
	}
	for i, a := range call.Args {
		p := callee.Params[i]
		if p.ByValue {
			c.expr(a, n.Loc)
			continue
		}
		r, ok := a.(*ir.Ref)
		if !ok {
			c.emit(Instr{Op: OpPanic, B: int32(PanicRefArg),
				A: fnIdx, C: int32(i), Loc: n.Loc})
			c.d = d0
			return
		}
		global, operand, bound := c.resolve(r.Var)
		if !bound {
			c.emit(Instr{Op: OpPanic, B: int32(PanicUnbound),
				A: int32(r.Var.ID), C: c.fnIdx, Loc: n.Loc})
			c.d = d0
			return
		}
		if r.Index == nil {
			op := OpRefL
			if global {
				op = OpRefG
			}
			c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), Loc: n.Loc})
			c.push(1)
			continue
		}
		c.expr(r.Index, n.Loc)
		op := OpRefLI
		if global {
			op = OpRefGI
		}
		c.emit(Instr{Op: op, A: operand, B: int32(r.Var.ID), Loc: n.Loc})
	}
	c.emit(Instr{Op: OpSpawn, A: fnIdx, Loc: n.Loc})
	c.pop(int32(len(callee.Params)))
}

// ---------------------------------------------------------------------------
// Statements. Each compiles to net-zero stack effect. The first emitted
// instruction of each leaf statement gets FStep (the walker's Instrs++).

func (c *compiler) block(b *ir.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s ir.Stmt) {
	start := int32(len(c.code))
	switch n := s.(type) {
	case *ir.Assign:
		c.expr(n.Src, n.Loc)
		c.storeRef(n.Dst, n.Loc)
		c.step(start)
	case *ir.If:
		c.expr(n.Cond, n.Loc)
		c.step(start)
		br := c.emit(Instr{Op: OpBr, A: int32(n.Region.ID), Loc: n.Loc})
		c.pop(1)
		c.block(n.Then)
		if n.Else != nil {
			j := c.emit(Instr{Op: OpJmp, Loc: n.Loc})
			c.code[br].B = int32(len(c.code))
			c.block(n.Else)
			c.code[j].A = int32(len(c.code))
		} else {
			c.code[br].B = int32(len(c.code))
		}
		c.emit(Instr{Op: OpExitBr, A: int32(n.Region.ID), Loc: n.Loc})
	case *ir.For:
		c.forStmt(n)
	case *ir.While:
		c.whileStmt(n)
	case *ir.CallStmt:
		c.call(n.Call, n.Loc, true)
		c.step(start)
	case *ir.Return:
		hasVal := int32(0)
		if n.Val != nil {
			c.expr(n.Val, n.Loc)
			hasVal = 1
		}
		c.emit(Instr{Op: OpRet, A: hasVal, Loc: n.Loc})
		c.pop(hasVal)
		c.step(start)
	case *ir.Spawn:
		c.spawn(n)
		c.step(start)
	case *ir.Sync:
		c.emit(Instr{Op: OpSyncT, Loc: n.Loc})
		c.step(start)
	case *ir.LockRegion:
		c.emit(Instr{Op: OpLock, A: int32(n.MutexID), Loc: n.Loc})
		c.step(start)
		c.block(n.Body)
		c.emit(Instr{Op: OpUnlock, A: int32(n.MutexID), Loc: n.Loc})
	case *ir.Free:
		_, slot, ok := c.resolve(n.Var)
		switch {
		case n.Var.Kind == ir.KGlobal || !ok:
			// Globals are never frame-bound, so the walker reports them
			// unbound too.
			c.emit(Instr{Op: OpPanic, B: int32(PanicFreeUnbound),
				A: int32(n.Var.ID), Loc: n.Loc})
		case !n.Var.Heap:
			c.emit(Instr{Op: OpPanic, B: int32(PanicFreeNonHeap),
				A: int32(n.Var.ID), Loc: n.Loc})
		default:
			c.emit(Instr{Op: OpFreeH, A: slot, B: int32(n.Var.ID), Loc: n.Loc})
		}
		c.step(start)
	case *ir.BlockStmt:
		c.block(n) // no step: nested blocks are not leaf statements
	default:
		panic(fmt.Sprintf("bytecode: unknown statement %T", s))
	}
}

// forStmt compiles a counted loop. Layout:
//
//	ForEnter             region entry, induction-variable resolution
//	<From>* ForInit      init store, loop-frame push (FStep on first From op)
//	head: LoopHead       iteration event
//	<To>* ForTest  ->exit  test load + compare (FStep on first To op)
//	<body>
//	<Step>* ForInc ->head  increment load+store (FStep on first Step op)
//	exit: LoopExit       loop-frame pop, region exit
func (c *compiler) forStmt(n *ir.For) {
	region := int32(n.Region.ID)
	global, operand, ok := c.resolve(n.IndVar)
	fe := Instr{Op: OpForEnter, A: region, B: operand, Loc: n.Loc}
	switch {
	case !ok:
		fe.D = 2
		fe.B = int32(n.IndVar.ID)
		fe.C = c.fnIdx
	case global:
		fe.D = 1
	}
	c.emit(fe)
	fs := int32(len(c.code))
	c.expr(n.From, n.Loc)
	c.step(fs)
	c.emit(Instr{Op: OpForInit, A: int32(n.IndVar.ID), B: region, Loc: n.Loc})
	c.pop(1)
	head := int32(len(c.code))
	c.emit(Instr{Op: OpLoopHead, A: region, Loc: n.Loc})
	ts := int32(len(c.code))
	c.expr(n.To, n.Loc)
	c.step(ts)
	test := c.emit(Instr{Op: OpForTest, A: int32(n.IndVar.ID), B: region, Loc: n.Loc})
	c.pop(1)
	c.block(n.Body)
	ss := int32(len(c.code))
	c.expr(n.Step, n.Loc)
	c.step(ss)
	c.emit(Instr{Op: OpForInc, A: int32(n.IndVar.ID), B: region, C: head, Loc: n.Loc})
	c.pop(1)
	c.code[test].C = int32(len(c.code))
	c.emit(Instr{Op: OpLoopExit, A: region, Loc: n.Loc})
}

func (c *compiler) whileStmt(n *ir.While) {
	region := int32(n.Region.ID)
	c.emit(Instr{Op: OpWhileEnter, A: region, Loc: n.Loc})
	head := int32(len(c.code))
	c.emit(Instr{Op: OpLoopHead, A: region, Loc: n.Loc})
	cs := int32(len(c.code))
	c.expr(n.Cond, n.Loc)
	c.step(cs)
	test := c.emit(Instr{Op: OpWhileTest, B: region, Loc: n.Loc})
	c.pop(1)
	c.block(n.Body)
	c.emit(Instr{Op: OpWhileNext, C: head, Loc: n.Loc})
	c.code[test].C = int32(len(c.code))
	c.emit(Instr{Op: OpLoopExit, A: region, Loc: n.Loc})
}
