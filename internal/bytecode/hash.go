package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"discopop/internal/ir"
)

// ModuleHash returns the module's structural content hash, memoized on the
// module instance (ir.Module.ContentHash). The hash covers everything that
// affects a compiled program and its event stream — the variable, region,
// and function tables, every statement and expression, and every source
// location — so two instances hashing equal are interchangeable under one
// compiled Program. It deliberately walks structures (a deterministic
// domain-specific serialization) rather than reusing the wire codec, so
// hashing allocates nothing beyond the hasher.
func ModuleHash(m *ir.Module) [32]byte {
	return m.ContentHash(hashModule)
}

func hashModule(m *ir.Module) [32]byte {
	h := &hasher{h: sha256.New()}
	h.str(m.Name)
	h.i64(int64(len(m.Files)))
	for _, f := range m.Files {
		h.str(f)
	}
	h.i64(int64(len(m.Vars)))
	for _, v := range m.Vars {
		h.hashVar(v)
	}
	h.i64(int64(len(m.Regions)))
	for _, r := range m.Regions {
		h.i64(int64(r.ID))
		h.u8(uint8(r.Kind))
		h.loc(r.Start)
		h.loc(r.End)
		h.i64(regionID(r.Parent))
		h.i64(funcID(r.Func))
	}
	h.i64(int64(len(m.Funcs)))
	for _, f := range m.Funcs {
		h.i64(int64(f.ID))
		h.str(f.Name)
		h.i64(int64(len(f.Params)))
		for _, p := range f.Params {
			h.i64(int64(p.ID))
		}
		h.bool(f.HasRet)
		h.u8(uint8(f.RetTyp))
		h.loc(f.Loc)
		h.loc(f.EndLoc)
		h.i64(regionID(f.Region))
		h.i64(int64(len(f.Locals)))
		for _, v := range f.Locals {
			h.i64(int64(v.ID))
		}
		h.bool(f.Body != nil)
		if f.Body != nil {
			h.stmt(f.Body)
		}
	}
	h.i64(funcID(m.Main))
	var out [32]byte
	h.h.Sum(out[:0])
	return out
}

func regionID(r *ir.Region) int64 {
	if r == nil {
		return -1
	}
	return int64(r.ID)
}

func funcID(f *ir.Func) int64 {
	if f == nil {
		return -1
	}
	return int64(f.ID)
}

type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func (h *hasher) u8(b uint8) {
	h.buf[0] = b
	h.h.Write(h.buf[:1])
}

func (h *hasher) i64(x int64) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(x))
	h.h.Write(h.buf[:])
}

func (h *hasher) f64(x float64) {
	binary.LittleEndian.PutUint64(h.buf[:], math.Float64bits(x))
	h.h.Write(h.buf[:])
}

func (h *hasher) bool(b bool) {
	if b {
		h.u8(1)
	} else {
		h.u8(0)
	}
}

func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	h.h.Write([]byte(s))
}

func (h *hasher) loc(l ir.Loc) {
	h.i64(int64(l.File))
	h.i64(int64(l.Line))
}

func (h *hasher) hashVar(v *ir.Var) {
	h.i64(int64(v.ID))
	h.str(v.Name)
	h.u8(uint8(v.Kind))
	h.u8(uint8(v.Type))
	h.i64(int64(v.Elems))
	h.bool(v.ByValue)
	h.bool(v.Heap)
	h.loc(v.Decl)
	h.i64(regionID(v.DeclRegion))
	h.i64(funcID(v.Func))
}

// Statement/expression tags; appended before each node so that different
// shapes can never collide by field-concatenation.
const (
	tAssign uint8 = iota + 1
	tBlock
	tIf
	tFor
	tWhile
	tCallStmt
	tReturn
	tSpawn
	tSync
	tLock
	tFree
	tConst
	tRef
	tBin
	tUn
	tRand
	tCallExpr
	tNil
)

func (h *hasher) stmt(s ir.Stmt) {
	switch n := s.(type) {
	case *ir.Assign:
		h.u8(tAssign)
		h.loc(n.Loc)
		h.expr(n.Dst)
		h.expr(n.Src)
	case *ir.BlockStmt:
		h.u8(tBlock)
		h.loc(n.Loc)
		h.i64(int64(len(n.Decls)))
		for _, v := range n.Decls {
			h.i64(int64(v.ID))
		}
		h.i64(int64(len(n.List)))
		for _, c := range n.List {
			h.stmt(c)
		}
	case *ir.If:
		h.u8(tIf)
		h.loc(n.Loc)
		h.expr(n.Cond)
		h.stmt(n.Then)
		if n.Else != nil {
			h.stmt(n.Else)
		} else {
			h.u8(tNil)
		}
		h.i64(regionID(n.Region))
	case *ir.For:
		h.u8(tFor)
		h.loc(n.Loc)
		h.loc(n.EndLoc)
		h.i64(int64(n.IndVar.ID))
		h.expr(n.From)
		h.expr(n.To)
		h.expr(n.Step)
		h.stmt(n.Body)
		h.i64(regionID(n.Region))
	case *ir.While:
		h.u8(tWhile)
		h.loc(n.Loc)
		h.loc(n.EndLoc)
		h.expr(n.Cond)
		h.stmt(n.Body)
		h.i64(regionID(n.Region))
	case *ir.CallStmt:
		h.u8(tCallStmt)
		h.loc(n.Loc)
		h.expr(n.Call)
	case *ir.Return:
		h.u8(tReturn)
		h.loc(n.Loc)
		if n.Val != nil {
			h.expr(n.Val)
		} else {
			h.u8(tNil)
		}
	case *ir.Spawn:
		h.u8(tSpawn)
		h.loc(n.Loc)
		h.expr(n.Call)
	case *ir.Sync:
		h.u8(tSync)
		h.loc(n.Loc)
	case *ir.LockRegion:
		h.u8(tLock)
		h.loc(n.Loc)
		h.i64(int64(n.MutexID))
		h.stmt(n.Body)
	case *ir.Free:
		h.u8(tFree)
		h.loc(n.Loc)
		h.i64(int64(n.Var.ID))
	default:
		panic("bytecode: unknown statement in module hash")
	}
}

func (h *hasher) expr(e ir.Expr) {
	switch n := e.(type) {
	case *ir.Const:
		h.u8(tConst)
		h.loc(n.Loc)
		h.f64(n.Val)
		h.u8(uint8(n.Typ))
	case *ir.Ref:
		h.u8(tRef)
		h.loc(n.Loc)
		h.i64(int64(n.Var.ID))
		if n.Index != nil {
			h.expr(n.Index)
		} else {
			h.u8(tNil)
		}
	case *ir.Bin:
		h.u8(tBin)
		h.loc(n.Loc)
		h.u8(uint8(n.Op))
		h.expr(n.L)
		h.expr(n.R)
	case *ir.Un:
		h.u8(tUn)
		h.loc(n.Loc)
		h.u8(uint8(n.Op))
		h.expr(n.X)
	case *ir.Rand:
		h.u8(tRand)
		h.loc(n.Loc)
	case *ir.CallExpr:
		h.u8(tCallExpr)
		h.loc(n.Loc)
		h.i64(funcID(n.Callee))
		h.i64(int64(len(n.Args)))
		for _, a := range n.Args {
			h.expr(a)
		}
	default:
		panic("bytecode: unknown expression in module hash")
	}
}
