package profiler

import (
	"strings"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/ir"
	"discopop/internal/sig"
	"discopop/internal/workloads"
)

// TestLifetimeAnalysisPreventsFalseDeps: two functions called in sequence
// reuse the same stack addresses for their locals; without variable
// lifetime analysis (Section 2.3.5), the second function's accesses would
// build false dependences against the first's dead variables.
func TestLifetimeAnalysisPreventsFalseDeps(t *testing.T) {
	b := ir.NewBuilder("lifetime")
	out := b.Global("out", ir.F64)
	f1 := b.Func("first")
	x1 := f1.Local("x1", ir.F64)
	f1.Set(x1, ir.CF(1))
	f1.Set(out, ir.Add(ir.V(out), ir.V(x1)))
	fd1 := f1.Done()
	f2 := b.Func("second")
	x2 := f2.Local("x2", ir.F64)
	f2.Set(x2, ir.CF(2))
	f2.Set(out, ir.Add(ir.V(out), ir.V(x2)))
	fd2 := f2.Done()
	mb := b.Func("main")
	mb.Call(fd1)
	mb.Call(fd2)
	m := b.Build(mb.Done())
	res := Profile(m, Options{Store: StorePerfect})
	for d := range res.Deps {
		if d.Type == INIT {
			continue
		}
		// No dependence may connect x1's line to x2's line: they are
		// different variables that merely share a reused address.
		v := res.VarName(d.Var)
		if (v == "x1" && d.Sink.Line >= fd2.Loc.Line) ||
			(v == "x2" && d.Source.Line < fd2.Loc.Line && d.Source.Line > 0 &&
				d.Source.Line < fd1.EndLoc.Line && d.Type != INIT && d.Sink.Line >= fd2.Loc.Line && d.Source.Line <= fd1.EndLoc.Line && d.Source.Line >= fd1.Loc.Line) {
			t.Errorf("false cross-function dependence: %+v (%s)", d, v)
		}
	}
	// Specifically: x2's first write must be an INIT, not a WAW against
	// x1's dead store.
	foundInit := false
	for d := range res.Deps {
		if d.Type == INIT && d.Sink.Line > fd2.Loc.Line && d.Sink.Line < fd2.EndLoc.Line {
			foundInit = true
		}
	}
	if !foundInit {
		t.Error("x2's first write not recorded as INIT: stale state survived FreeVar")
	}
}

// TestHeapFreeRemovesState: a heap buffer freed and reallocated must not
// leak dependences between its two lives.
func TestHeapFreeRemovesState(t *testing.T) {
	b := ir.NewBuilder("heaplife")
	f := b.Func("use")
	buf := f.HeapArray("buf", ir.F64, 8)
	f.SetAt(buf, ir.CI(3), ir.CF(1))
	f.Free(buf)
	fd := f.Done()
	mb := b.Func("main")
	mb.Call(fd)
	mb.Call(fd)
	m := b.Build(mb.Done())
	res := Profile(m, Options{Store: StorePerfect})
	for d := range res.Deps {
		if d.Type == WAW && res.VarName(d.Var) == "buf" {
			t.Errorf("WAW across heap lifetimes: %+v", d)
		}
	}
}

// TestRaceFlagging feeds the engine a manually reversed access pair — the
// Figure 2.4(b) situation: a worker observes a load whose timestamp
// precedes the already-recorded store's, proving the two accesses were
// not mutually exclusive — and expects the dependence flagged Reversed.
func TestRaceFlagging(t *testing.T) {
	tab := &ctxTable{}
	e := newEngine[sig.Perfect](sig.MakePerfect(), sig.MakePerfect(), tab, true, 0, 0)
	loc1 := ir.Loc{File: 1, Line: 5}
	loc2 := ir.Loc{File: 1, Line: 9}
	e.process(&rec{addr: 100, info: packInfo(loc1, 1, 2), ts: 20, op: 1, ctx: -1, kind: recStore})
	e.process(&rec{addr: 100, info: packInfo(loc2, 1, 3), ts: 10, op: 2, ctx: -1, kind: recLoad})
	found := false
	deps := e.depsMap()
	for d := range deps {
		if d.Type == RAW && d.Reversed {
			found = true
		}
	}
	if !found {
		t.Fatalf("reversed access pair not flagged as potential race: %v", deps)
	}
}

// TestParallelMatchesSerialAllWorkloads is the central correctness
// property of the Figure 2.2 design, checked over every sequential
// workload and several worker counts.
func TestParallelMatchesSerialAllWorkloads(t *testing.T) {
	suites := []string{"NAS", "Starbench", "textbook", "compressor"}
	for _, suite := range suites {
		for _, name := range workloads.Names(suite) {
			name := name
			t.Run(name, func(t *testing.T) {
				prog := workloads.MustBuild(name, 1)
				serial := Profile(prog.M, Options{Store: StorePerfect})
				for _, w := range []int{3, 8} {
					prog2 := workloads.MustBuild(name, 1)
					par := Profile(prog2.M, Options{Store: StorePerfect, Workers: w, ChunkSize: 64})
					fp, fn := DiffDeps(par.Deps, serial.Deps)
					if len(fp) != 0 || len(fn) != 0 {
						t.Errorf("workers=%d: fp=%d fn=%d (first fp=%v fn=%v)",
							w, len(fp), len(fn), first(fp), first(fn))
					}
				}
			})
		}
	}
}

func first(ds []Dep) any {
	if len(ds) == 0 {
		return nil
	}
	return ds[0]
}

// TestLockBasedMatchesLockFree: the queue implementation must not change
// results, only performance (Figure 2.9's comparison).
func TestLockBasedMatchesLockFree(t *testing.T) {
	prog := workloads.MustBuild("IS", 1)
	free := Profile(prog.M, Options{Store: StorePerfect, Workers: 4})
	prog2 := workloads.MustBuild("IS", 1)
	locked := Profile(prog2.M, Options{Store: StorePerfect, Workers: 4, UseLocked: true})
	fp, fn := DiffDeps(locked.Deps, free.Deps)
	if len(fp) != 0 || len(fn) != 0 {
		t.Fatalf("lock-based queues changed results: fp=%d fn=%d", len(fp), len(fn))
	}
}

// TestRedistribution drives the load balancer with a hot-address workload
// and verifies results are unchanged and migrations occurred.
func TestRedistribution(t *testing.T) {
	b := ir.NewBuilder("hot")
	hot := b.Global("hot", ir.F64)
	arr := b.GlobalArray("arr", ir.F64, 64)
	fb := b.Func("main")
	fb.For("i", ir.CI(0), ir.CI(20000), ir.CI(1), func(i *ir.Var) {
		fb.Set(hot, ir.Add(ir.V(hot), ir.CF(1))) // one scorching address
		fb.SetAt(arr, ir.Mod(ir.V(i), ir.CI(64)), ir.V(hot))
	})
	m := b.Build(fb.Done())
	serial := Profile(m, Options{Store: StorePerfect})

	b2 := ir.NewBuilder("hot")
	hot2 := b2.Global("hot", ir.F64)
	arr2 := b2.GlobalArray("arr", ir.F64, 64)
	fb2 := b2.Func("main")
	fb2.For("i", ir.CI(0), ir.CI(20000), ir.CI(1), func(i *ir.Var) {
		fb2.Set(hot2, ir.Add(ir.V(hot2), ir.CF(1)))
		fb2.SetAt(arr2, ir.Mod(ir.V(i), ir.CI(64)), ir.V(hot2))
	})
	m2 := b2.Build(fb2.Done())
	p := New(m2, Options{Store: StorePerfect, Workers: 4, ChunkSize: 32, RebalanceInterval: 50})
	in := interp.New(m2, p)
	in.Run()
	par := p.Result()
	fp, fn := DiffDeps(par.Deps, serial.Deps)
	if len(fp) != 0 || len(fn) != 0 {
		t.Fatalf("redistribution corrupted dependences: fp=%d fn=%d", len(fp), len(fn))
	}
	if p.par.rebalanceCount() == 0 {
		t.Log("note: no redistribution triggered (acceptable but unexpected)")
	}
}

// TestMTProfilingLockedProgram: a properly locked multi-threaded target
// must produce a race-free, deterministic dependence set through the MPSC
// pipeline, including cross-thread dependences on the shared accumulator.
func TestMTProfilingLockedProgram(t *testing.T) {
	prog := workloads.MustBuild("kmeans-mt", 1)
	res := Profile(prog.M, Options{Store: StorePerfect, MT: true, Workers: 4})
	cross := 0
	for d := range res.Deps {
		if d.Type == RAW && d.SinkThr >= 0 && d.SrcThr >= 0 && d.SinkThr != d.SrcThr {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("no cross-thread RAW dependences found in MT program")
	}
	// Thread IDs must be recorded on MT dependences.
	for d := range res.Deps {
		if d.Type != INIT && (d.SinkThr < 0 || d.SrcThr < 0) {
			t.Fatalf("MT dependence lacks thread IDs: %+v", d)
		}
	}
}

// TestMTDepFileFormat: thread IDs are rendered per Figure 2.3.
func TestMTDepFileFormat(t *testing.T) {
	prog := workloads.MustBuild("rgbyuv-mt", 1)
	res := Profile(prog.M, Options{Store: StorePerfect, MT: true, Workers: 2})
	var sb strings.Builder
	res.WriteDepFile(&sb, true)
	out := sb.String()
	if !strings.Contains(out, "|") {
		t.Fatalf("MT dep file lacks thread-ID separators:\n%.300s", out)
	}
}

// TestSignatureFPRDecreasesWithSlots: the Table 2.6 trend.
func TestSignatureFPRDecreasesWithSlots(t *testing.T) {
	prog := workloads.MustBuild("rotate", 1)
	exact := Profile(prog.M, Options{Store: StorePerfect})
	var bads []int
	for _, slots := range []int{1 << 8, 1 << 14, 1 << 22} {
		prog2 := workloads.MustBuild("rotate", 1)
		approx := Profile(prog2.M, Options{Store: StoreSignature, Slots: slots})
		fp, fn := DiffDeps(approx.Deps, exact.Deps)
		bads = append(bads, len(fp)+len(fn))
	}
	// Table 2.6's trend: error falls sharply as slots grow (the paper's
	// rotate goes 55.9% -> 4.5% -> 0.0%). Residual collisions at the
	// largest size follow the birthday bound (n^2/2m colliding address
	// pairs), so we assert a strong decrease rather than exact zero.
	if !(bads[2] <= bads[1] && bads[1] <= bads[0]) {
		t.Fatalf("error not monotonically decreasing with slots: %v", bads)
	}
	if bads[0] > 0 && bads[2]*2 > bads[0] {
		t.Fatalf("largest signature (%d wrong) not substantially better than smallest (%d)",
			bads[2], bads[0])
	}
}

// TestSkipStatsAccounting: skipped counts never exceed totals, and the
// would-be type counts are consistent.
func TestSkipStatsAccounting(t *testing.T) {
	for _, name := range []string{"EP", "md5", "FT"} {
		prog := workloads.MustBuild(name, 1)
		res := Profile(prog.M, Options{Store: StorePerfect, Skip: true})
		s := res.Skip
		if s.SkippedReads > s.Reads || s.SkippedWrite > s.Writes {
			t.Errorf("%s: skipped exceeds total: %+v", name, s)
		}
		if s.SkippedDepReads > s.SkippedReads || s.SkippedDepWrite > s.SkippedWrite {
			t.Errorf("%s: dep-skipped exceeds skipped: %+v", name, s)
		}
		if s.WouldRAW != s.SkippedDepReads {
			t.Errorf("%s: WouldRAW (%d) != SkippedDepReads (%d)", name, s.WouldRAW, s.SkippedDepReads)
		}
	}
}

// TestFTDummyWAW: FT's dummy variable produces the WAW chain of
// Figure 2.14.
func TestFTDummyWAW(t *testing.T) {
	prog := workloads.MustBuild("FT", 1)
	res := Profile(prog.M, Options{Store: StorePerfect})
	found := false
	for d := range res.Deps {
		if d.Type == WAW && res.VarName(d.Var) == "dummy" && d.Carried {
			found = true
		}
	}
	if !found {
		t.Fatal("FT's dummy variable WAW chain (Figure 2.14) not observed")
	}
}

// TestRegionIterationCounts: the control information required for the
// BGN/END output must match the actual trip counts.
func TestRegionIterationCounts(t *testing.T) {
	prog := workloads.MustBuild("MG", 1)
	res := Profile(prog.M, Options{Store: StorePerfect})
	counted := 0
	for _, re := range res.Regions {
		if re.Region.Kind != ir.RLoop {
			continue
		}
		counted++
		if re.Entries > 0 && re.Iters == 0 {
			t.Errorf("loop %v entered %d times with zero iterations", re.Region, re.Entries)
		}
	}
	if counted == 0 {
		t.Fatal("no loop execution records")
	}
}
