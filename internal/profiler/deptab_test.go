package profiler

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"discopop/internal/ir"
)

// randomDep draws a dependence within the packed field widths: 10-bit
// file (>= 1), 22-bit line, 16-bit variable, 8-bit thread, 22-bit carrying
// region. Threads are either both set or both -1, mirroring how the engine
// builds them (MT vs. sequential profiling).
func randomDep(rng *rand.Rand) Dep {
	t := DepType(rng.Intn(4))
	d := Dep{
		Sink:    ir.Loc{File: int32(rng.Intn(1<<10-1) + 1), Line: int32(rng.Intn(1 << 22))},
		Type:    t,
		Var:     -1,
		SinkThr: -1, SrcThr: -1,
		CarriedBy: -1,
	}
	if t == INIT {
		return d
	}
	d.Source = ir.Loc{File: int32(rng.Intn(1<<10-1) + 1), Line: int32(rng.Intn(1 << 22))}
	d.Var = int32(rng.Intn(1 << 16))
	if rng.Intn(2) == 0 {
		d.SinkThr = int16(rng.Intn(1 << 8))
		d.SrcThr = int16(rng.Intn(1 << 8))
	}
	if rng.Intn(2) == 0 {
		d.Carried = true
		d.CarriedBy = int32(rng.Intn(1<<22 - 1))
	}
	d.Reversed = rng.Intn(2) == 0
	return d
}

// TestDepKeyRoundTrip: packDep/unpackDep must be exact inverses across the
// full packed field widths, including the boundary values of each field.
func TestDepKeyRoundTrip(t *testing.T) {
	boundary := []Dep{
		// Minimal non-INIT dependence.
		{Sink: ir.Loc{File: 1, Line: 0}, Type: RAW, Var: 0,
			SinkThr: -1, SrcThr: -1, CarriedBy: -1},
		// Field-width maxima: 10-bit file, 22-bit line, 16-bit var, 8-bit
		// threads, 22-bit carrying region (stored as region+1).
		{Sink: ir.Loc{File: 1<<10 - 1, Line: 1<<22 - 1}, Type: WAW,
			Source: ir.Loc{File: 1<<10 - 1, Line: 1<<22 - 1},
			Var:    1<<16 - 1, SinkThr: 1<<8 - 1, SrcThr: 1<<8 - 1,
			Carried: true, CarriedBy: 1<<22 - 2, Reversed: true},
		// Carried by region 0 (the +1 bias must not collide with "not
		// carried").
		{Sink: ir.Loc{File: 2, Line: 7}, Type: WAR,
			Source: ir.Loc{File: 2, Line: 9}, Var: 3,
			SinkThr: -1, SrcThr: -1, Carried: true, CarriedBy: 0},
		// Thread 0 on both sides (must round-trip distinct from -1).
		{Sink: ir.Loc{File: 3, Line: 1}, Type: RAW,
			Source: ir.Loc{File: 3, Line: 2}, Var: 0,
			SinkThr: 0, SrcThr: 0, CarriedBy: -1},
		// INIT: sink only, every other attribute at its default.
		{Sink: ir.Loc{File: 1<<10 - 1, Line: 1<<22 - 1}, Type: INIT, Var: -1,
			SinkThr: -1, SrcThr: -1, CarriedBy: -1},
	}
	for _, d := range boundary {
		hi, lo := packDep(d)
		if hi == 0 {
			t.Errorf("packDep(%+v): hi = 0, the empty-cell sentinel", d)
		}
		if got := unpackDep(hi, lo); got != d {
			t.Errorf("round trip changed dependence:\n got %+v\nwant %+v", got, d)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		d := randomDep(rng)
		hi, lo := packDep(d)
		if got := unpackDep(hi, lo); got != d {
			t.Fatalf("round trip changed dependence:\n got %+v\nwant %+v", got, d)
		}
	}
}

// TestDepTableMatchesMapReference drives the packed accumulator and a
// plain map with the same dependence stream across growth boundaries.
func TestDepTableMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A pool with repeats so counts accumulate.
	pool := make([]Dep, 300)
	for i := range pool {
		pool[i] = randomDep(rng)
	}
	tab := newDepTable()
	ref := map[Dep]int64{}
	for i := 0; i < 50000; i++ {
		d := pool[rng.Intn(len(pool))]
		hi, lo := packDep(d)
		n := int64(rng.Intn(3) + 1)
		tab.add(hi, lo, n)
		ref[d] += n
	}
	if got := tab.materialize(); !reflect.DeepEqual(got, ref) {
		t.Fatalf("materialized table diverges from map reference: %d vs %d entries",
			len(got), len(ref))
	}
}

// TestMergeDepTablesShardedMatchesSerial: the sharded merge path (forced
// past the size threshold) must produce exactly the serial result.
func TestMergeDepTablesShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := make([]Dep, mergeShardThreshold) // enough distinct deps to shard
	for i := range pool {
		pool[i] = randomDep(rng)
	}
	nEngines := 4
	tables := make([]*depTable, nEngines)
	want := map[Dep]int64{}
	for e := 0; e < nEngines; e++ {
		tab := newDepTable()
		tables[e] = &tab
		for i := 0; i < 3*len(pool); i++ {
			d := pool[rng.Intn(len(pool))]
			hi, lo := packDep(d)
			tab.add(hi, lo, 1)
			want[d]++
		}
	}
	total := 0
	for _, tab := range tables {
		total += tab.n
	}
	if total < mergeShardThreshold {
		t.Fatalf("test setup too small to exercise the sharded path: %d cells", total)
	}
	if got := mergeDepTables(tables); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded merge diverges from reference: %d vs %d entries",
			len(got), len(want))
	}
}

// TestDepShardsConcurrentMerge streams many dependence maps into the
// sharded fleet accumulator from concurrent goroutines (the batch-engine
// pattern) and checks the combined snapshot.
func TestDepShardsConcurrentMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const producers = 8
	jobs := make([]map[Dep]int64, producers)
	want := map[Dep]int64{}
	for p := range jobs {
		jobs[p] = map[Dep]int64{}
		for i := 0; i < 500; i++ {
			d := randomDep(rng)
			jobs[p][d] += int64(i%5 + 1)
		}
		for d, n := range jobs[p] {
			want[d] += n
		}
	}
	shards := NewDepShards(0)
	var wg sync.WaitGroup
	for p := range jobs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			shards.Merge(jobs[p])
		}(p)
	}
	wg.Wait()
	if got := shards.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent sharded merge diverges: %d vs %d entries", len(got), len(want))
	}
	if shards.Distinct() != len(want) {
		t.Fatalf("Distinct = %d, want %d", shards.Distinct(), len(want))
	}
}

// TestPackInfoWidths pins the access-info packing: 10-bit file, 22-bit
// line, 16-bit variable, 8-bit thread, and the non-zero guarantee the
// empty-entry sentinel relies on.
func TestPackInfoWidths(t *testing.T) {
	loc := ir.Loc{File: 1<<10 - 1, Line: 1<<22 - 1}
	info := packInfo(loc, 1<<16-1, 1<<8-1)
	if got := unpackLoc(info); got != loc {
		t.Errorf("unpackLoc = %+v, want %+v", got, loc)
	}
	if got := unpackVar(info); got != 1<<16-1 {
		t.Errorf("unpackVar = %d, want %d", got, 1<<16-1)
	}
	if got := unpackThread(info); got != 1<<8-1 {
		t.Errorf("unpackThread = %d, want %d", got, 1<<8-1)
	}
	if packInfo(ir.Loc{File: 1}, 0, 0) == 0 {
		t.Error("packInfo with file=1 must be non-zero (empty-entry sentinel)")
	}
}

// TestDepShardsZeroLocationDep: a dependence whose packed sink/source is
// all zero (never produced by the profiler, but accepted by the public
// Merge) must survive Snapshot and be counted consistently.
func TestDepShardsZeroLocationDep(t *testing.T) {
	s := NewDepShards(2)
	d := Dep{Type: INIT, Var: -1, SinkThr: -1, SrcThr: -1, CarriedBy: -1}
	s.Merge(map[Dep]int64{d: 5})
	if s.Distinct() != 1 {
		t.Fatalf("Distinct = %d, want 1", s.Distinct())
	}
	snap := s.Snapshot()
	if snap[d] != 5 {
		t.Fatalf("Snapshot[%+v] = %d, want 5", d, snap[d])
	}
}
