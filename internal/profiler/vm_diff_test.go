package profiler

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"discopop/internal/workloads"
)

// depTableOf profiles a freshly built workload on the given engine and
// renders its full dependence table — every field of every Dep, plus the
// per-region iteration counts — in a canonical sorted form. (WriteDepFile
// is not byte-stable across runs: markers and sink groups sharing a
// location key interleave in map order, so the tests canonicalize at the
// Dep level instead.)
func depTableOf(name string, treeWalk bool) string {
	prog := workloads.MustBuild(name, 1)
	res := Profile(prog.M, Options{Store: StorePerfect, TreeWalk: treeWalk})
	lines := make([]string, 0, len(res.Deps)+len(res.Regions))
	for d := range res.Deps {
		lines = append(lines, fmt.Sprintf("dep %+v %s", d, res.VarName(d.Var)))
	}
	for _, re := range res.Regions {
		lines = append(lines, fmt.Sprintf("region %d kind %v iters %d", re.Region.ID, re.Region.Kind, re.Iters))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestVMDepTablesMatchTreeWalk: over the full workload registry, the
// dependence table produced from the bytecode VM's event stream is
// byte-identical to the tree walker's — every dependence, with its
// carried/reversed classification, thread attribution, and source/sink
// locations, plus every region's iteration count. The profiler is a pure
// function of the trace, so this is the end-to-end consequence of trace
// equality — and the acceptance bar for swapping the default engine.
func TestVMDepTablesMatchTreeWalk(t *testing.T) {
	for _, name := range workloads.Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			walk := depTableOf(name, true)
			vm := depTableOf(name, false)
			if walk != vm {
				t.Errorf("dependence tables diverged between engines\nwalker:\n%s\n\nvm:\n%s",
					clip(walk), clip(vm))
			}
		})
	}
}

// clip keeps failure output readable for large tables.
func clip(s string) string {
	const max = 4000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (truncated)"
}
