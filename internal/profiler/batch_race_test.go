package profiler

import (
	"reflect"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/workloads"
)

// TestBatchedMTMatchesPerAccess is the PR 8 multi-threaded differential:
// on every MT workload, across serial and parallel pipeline configurations,
// the batched event path must produce a dependence table identical to the
// per-access ablation's. Running the package under -race additionally
// checks that batch chunks crossing the profiler's worker pipes (and the
// MT barrier flushes batchPipe inserts at lock/unlock/thread-end events)
// stay properly synchronized.
func TestBatchedMTMatchesPerAccess(t *testing.T) {
	for _, workers := range []int{0, 2, 4} {
		for _, name := range workloads.Names("Starbench-MT") {
			opts := Options{Store: StorePerfect, MT: true, Workers: workers}
			per := Profile(workloads.MustBuild(name, 1).M,
				Options{Store: StorePerfect, MT: true, Workers: workers, PerAccess: true})
			bat := Profile(workloads.MustBuild(name, 1).M, opts)
			fp, fn := DiffDeps(bat.Deps, per.Deps)
			if len(fp) != 0 || len(fn) != 0 {
				t.Errorf("%s (%d workers): batched deps diverged from per-access (fp=%d fn=%d)",
					name, workers, len(fp), len(fn))
			}
			if bat.Accesses != per.Accesses {
				t.Errorf("%s (%d workers): access counts diverged: batched %d, per-access %d",
					name, workers, bat.Accesses, per.Accesses)
			}
			if !reflect.DeepEqual(bat.Lines, per.Lines) {
				t.Errorf("%s (%d workers): line counts diverged", name, workers)
			}
		}
	}
}

// TestBatchedAndReplayedProfilersAgreeInOneRun drives two profilers from a
// single interpreter run through MultiTracer: the first consumes batches
// directly, the second is wrapped in PerEvent and sees the replayed
// per-event expansion of the very same chunks. Their results must be
// identical — the strongest single-run statement that ProcessBatch and the
// Tracer methods implement the same semantics.
func TestBatchedAndReplayedProfilersAgreeInOneRun(t *testing.T) {
	for _, name := range []string{"CG", "md5-mt", "histogram"} {
		m := workloads.MustBuild(name, 1).M
		direct := New(m, Options{Store: StorePerfect})
		replayed := New(m, Options{Store: StorePerfect})
		in := interp.New(m, &interp.MultiTracer{Tracers: []interp.Tracer{
			direct, interp.PerEvent(replayed)}})
		in.Run()
		dres, rres := direct.Result(), replayed.Result()
		fp, fn := DiffDeps(dres.Deps, rres.Deps)
		if len(fp) != 0 || len(fn) != 0 {
			t.Errorf("%s: batched and replayed profilers diverged in one run (fp=%d fn=%d)",
				name, len(fp), len(fn))
		}
		if dres.Accesses != rres.Accesses || !reflect.DeepEqual(dres.Lines, rres.Lines) {
			t.Errorf("%s: accesses/lines diverged: %d vs %d", name, dres.Accesses, rres.Accesses)
		}
	}
}
