package profiler

import (
	"reflect"
	"sync"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/workloads"
)

// TestMTTracerCallbacksRaceClean exercises the multi-threaded-target
// pipeline across worker counts. The interpreter hands tracer callbacks
// across goroutines (simulated threads pass an execution token), so every
// piece of Profiler shared state — the dense line counters, the access
// counter, the region map, the per-thread loop stacks, and the shared
// context table read concurrently by MPSC workers — is exercised here;
// running the package under -race validates the guarding.
func TestMTTracerCallbacksRaceClean(t *testing.T) {
	for _, workers := range []int{2, 8} {
		for _, name := range workloads.Names("Starbench-MT") {
			prog := workloads.MustBuild(name, 1)
			res := Profile(prog.M, Options{Store: StorePerfect, MT: true, Workers: workers})
			if res.Accesses == 0 {
				t.Errorf("%s (%d workers): no accesses recorded", name, workers)
			}
			if len(res.Lines) == 0 {
				t.Errorf("%s (%d workers): no line counts recorded", name, workers)
			}
		}
	}
}

// TestConcurrentProfilersAreIndependent runs many profilers side by side
// on distinct modules (the batch-engine execution pattern) and checks each
// matches its own serial baseline — no state leaks between instances.
func TestConcurrentProfilersAreIndependent(t *testing.T) {
	names := workloads.Names("NAS")
	baselines := make([]*Result, len(names))
	for i, name := range names {
		baselines[i] = Profile(workloads.MustBuild(name, 1).M, Options{Store: StorePerfect})
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res := Profile(workloads.MustBuild(name, 1).M, Options{Store: StorePerfect})
			fp, fn := DiffDeps(res.Deps, baselines[i].Deps)
			if len(fp) != 0 || len(fn) != 0 {
				errs <- name
			}
		}(i, name)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Errorf("%s: concurrent profile diverged from serial baseline", name)
	}
}

// TestDenseLineCountsMatchAccessStream checks the dense op-indexed line
// counting against an exact per-access recount from an auxiliary tracer.
func TestDenseLineCountsMatchAccessStream(t *testing.T) {
	prog := workloads.MustBuild("histogram", 1)
	p := New(prog.M, Options{Store: StorePerfect})
	recount := &lineRecorder{lines: map[uint64]int64{}}
	in := interp.New(prog.M, &interp.MultiTracer{Tracers: []interp.Tracer{p, recount}})
	in.Run()
	res := p.Result()
	got := map[uint64]int64{}
	for loc, n := range res.Lines {
		got[loc.Key()] = n
	}
	if !reflect.DeepEqual(got, recount.lines) {
		t.Errorf("dense line counts diverge from per-access recount:\n got %v\nwant %v",
			got, recount.lines)
	}
}

type lineRecorder struct {
	interp.BaseTracer
	lines map[uint64]int64
}

func (r *lineRecorder) Load(a interp.Access) { r.lines[a.Loc.Key()]++ }

func (r *lineRecorder) Store(a interp.Access) { r.lines[a.Loc.Key()]++ }

// TestSampledRebalancingPreservesDeps: sampling the balancer statistics
// must not change profiling results across worker counts.
func TestSampledRebalancingPreservesDeps(t *testing.T) {
	serial := Profile(workloads.MustBuild("CG", 1).M, Options{Store: StorePerfect})
	for _, workers := range []int{2, 4, 8} {
		par := Profile(workloads.MustBuild("CG", 1).M, Options{
			Store: StorePerfect, Workers: workers, ChunkSize: 64, RebalanceInterval: 25})
		fp, fn := DiffDeps(par.Deps, serial.Deps)
		if len(fp) != 0 || len(fn) != 0 {
			t.Errorf("%d workers: sampled rebalancing changed deps (fp=%d fn=%d)",
				workers, len(fp), len(fn))
		}
	}
}
