package profiler

import (
	"discopop/internal/interp"
	"discopop/internal/ir"
	"discopop/internal/mem"
	"discopop/internal/sig"
)

// StoreKind selects the access-status representation.
type StoreKind uint8

const (
	// StorePerfect uses the exact per-address table ("perfect signature"):
	// no false positives or negatives, higher memory cost (Section 2.3.7).
	StorePerfect StoreKind = iota
	// StoreSignature uses fixed-size approximate signatures (Section 2.3.2).
	StoreSignature
)

// Options configures a profiling run.
type Options struct {
	Store StoreKind
	// Slots is the total number of signature slots, split evenly across
	// workers and across the read/write signature pair (Section 2.5.2
	// splits 1.0E+8 total slots over 16 threads the same way).
	Slots int
	// Skip enables the loop-skipping optimization of Section 2.4.
	Skip bool
	// Workers > 0 enables the parallel pipeline of Section 2.3.3 with that
	// many worker threads; 0 profiles serially in the event callbacks.
	Workers int
	// UseLocked replaces the lock-free queues with mutex-protected ones —
	// the lock-based baseline of Figure 2.9.
	UseLocked bool
	// MT enables the multi-threaded-target pipeline of Section 2.3.4
	// (per-target-thread producers feeding MPSC worker queues).
	MT bool
	// ChunkSize is the number of access records per chunk (default 1024).
	ChunkSize int
	// RebalanceInterval is the number of pushed chunks between load
	// rebalancing checks (default 2000; the paper uses 50000 at its much
	// larger workload scale). 0 disables redistribution.
	RebalanceInterval int
	// TreeWalk runs the target on the reference tree-walking engine
	// instead of the bytecode VM. The event streams are identical; the
	// walker is kept for differential testing and debugging.
	TreeWalk bool
	// PerAccess disables batched tracing: the VM delivers every event
	// through the per-access Tracer interface instead of ProcessBatch
	// chunks. Ablation and differential-testing knob; results are
	// identical either way.
	PerAccess bool
}

func (o *Options) defaults() {
	if o.ChunkSize == 0 {
		o.ChunkSize = 1024
	}
	if o.Slots == 0 {
		o.Slots = 1 << 22
	}
	if o.RebalanceInterval == 0 {
		o.RebalanceInterval = 2000
	}
}

// Profiler is an interp.Tracer that profiles data dependences. Use New,
// pass it to interp.New, run the program, then call Result.
type Profiler struct {
	interp.BaseTracer
	mod *ir.Module
	opt Options

	tab       *ctxTable
	cur       [interp.MaxThreads]int32
	loopStack [interp.MaxThreads][]int32

	regions map[int]*RegionExec
	funcs   map[*ir.Func]int64
	depth   [interp.MaxThreads]int
	total   int64

	// Per-line access counting, hot-path form: a dense counter slice
	// indexed by static memory-operation ID (the opLayout the skip
	// optimization also uses) instead of a per-access map write. opLocs
	// remembers each operation's access location on first touch; Result
	// folds the counters back into the per-line map. spillLines catches
	// the pathological case of an expression node shared between
	// statements (one op observed at two locations).
	lay        opLayout
	lineCounts []int64
	opLocs     []ir.Loc
	spillLines map[ir.Loc]int64

	// Serial mode holds the engine with its concrete store type so the
	// per-access process call (and everything it inlines) is direct.
	// Exactly one of engP/engS is non-nil in serial mode.
	engP *engine[sig.Perfect, *sig.Perfect]
	engS *engine[sig.Signature, *sig.Signature]

	par balancedPipe // sequential-target parallel mode
	mtp barrierPipe  // multi-threaded-target mode

	stopped bool
	dumps   []engineDump

	accesses int64

	// recbuf is the reusable access-record buffer of ProcessBatch: one
	// batch's loads/stores/removes accumulate here and reach the engine (or
	// pipe) as whole chunks.
	recbuf []rec
	// ts reconstructs the interpreter clock on the batched path: batch
	// events carry no timestamp (the clock ticks exactly once per access, in
	// stream order), so the consumer counts the accesses itself.
	ts uint64
}

// pipe is the non-generic control seam of the worker pipelines: the
// producer-side hot calls plus the merge-time teardown.
type pipe interface {
	produce(r rec)
	produceBatch(rs []rec)
	finish() []engineDump
}

// balancedPipe is the sequential-target pipeline (load balancing).
type balancedPipe interface {
	pipe
	rebalanceCount() int
}

// barrierPipe is the multi-threaded-target pipeline (lock barriers).
type barrierPipe interface {
	pipe
	barrier()
}

// New creates a profiler for module m. The module's static memory
// operations are numbered as a side effect.
func New(m *ir.Module, opt Options) *Profiler {
	opt.defaults()
	p := &Profiler{mod: m, opt: opt, tab: &ctxTable{},
		regions: map[int]*RegionExec{}, funcs: map[*ir.Func]int64{}}
	for i := range p.cur {
		p.cur[i] = -1
	}
	nOps := interp.PrepareOps(m)
	// Loop headers use four synthetic negative op IDs per region.
	nRegions := 4*int32(len(m.Regions)) + 4
	p.lay = newOpLayout(nOps)
	p.lineCounts = make([]int64, p.lay.size(nRegions))
	p.opLocs = make([]ir.Loc, len(p.lineCounts))
	// One instantiation per store kind: every engine below this switch
	// calls its stores directly.
	if opt.Store == StoreSignature {
		switch {
		case opt.MT:
			p.mtp = newMTPipe[sig.Signature](p, p.sigPair, nOps, nRegions)
		case opt.Workers > 0:
			p.par = newParallelPipe[sig.Signature](p, p.sigPair, nOps, nRegions)
		default:
			rd, wr := p.sigPair(1)
			p.engS = newEngine[sig.Signature](rd, wr, p.tab, opt.MT, p.skipOps(nOps), p.skipRegions(nRegions))
		}
	} else {
		switch {
		case opt.MT:
			p.mtp = newMTPipe[sig.Perfect](p, perfectPair, nOps, nRegions)
		case opt.Workers > 0:
			p.par = newParallelPipe[sig.Perfect](p, perfectPair, nOps, nRegions)
		default:
			p.engP = newEngine[sig.Perfect](sig.MakePerfect(), sig.MakePerfect(), p.tab, opt.MT, p.skipOps(nOps), p.skipRegions(nRegions))
		}
	}
	return p
}

// sigPair builds one worker's signature pair, sized as an equal share of
// the configured total slots across nshares workers.
func (p *Profiler) sigPair(nshares int) (sig.Signature, sig.Signature) {
	per := p.opt.Slots / (2 * nshares)
	if per < 16 {
		per = 16
	}
	return sig.MakeSignature(per), sig.MakeSignature(per)
}

// perfectPair builds one worker's exact-store pair (nshares is irrelevant:
// perfect signatures grow on demand).
func perfectPair(int) (sig.Perfect, sig.Perfect) {
	return sig.MakePerfect(), sig.MakePerfect()
}

// skipOps/skipRegions gate the skip optimization's per-op state sizing on
// Options.Skip.
func (p *Profiler) skipOps(nOps int32) int32 {
	if !p.opt.Skip {
		return 0
	}
	return nOps
}

func (p *Profiler) skipRegions(nRegions int32) int32 {
	if !p.opt.Skip {
		return 0
	}
	return nRegions
}

// route dispatches one access record to the active pipeline. The serial
// cases name the concrete engine type, so the whole per-access path —
// process, load/store, the signature Get/Put pairs, and the dependence
// accumulator — is one direct call chain.
func (p *Profiler) route(r rec) {
	p.accesses++
	switch {
	case p.engP != nil:
		p.engP.process(&r)
	case p.engS != nil:
		p.engS.process(&r)
	case p.mtp != nil:
		p.mtp.produce(r)
	default:
		p.par.produce(r)
	}
}

// countLine counts one access against its source line. The common path is
// one dense-slice increment; the first access of each operation records
// its location, and the (never-expected) case of one operation observed at
// two locations spills to a map.
func (p *Profiler) countLine(op int32, loc ir.Loc) {
	i := p.lay.index(op)
	if p.opLocs[i] != loc {
		if p.opLocs[i].File != 0 {
			if p.spillLines == nil {
				p.spillLines = map[ir.Loc]int64{}
			}
			p.spillLines[loc]++
			return
		}
		p.opLocs[i] = loc
	}
	p.lineCounts[i]++
}

// Load implements interp.Tracer.
func (p *Profiler) Load(a interp.Access) {
	p.countLine(a.Op, a.Loc)
	p.route(rec{
		addr: a.Addr,
		info: packInfo(a.Loc, int32(a.Var.ID), a.Thread),
		ts:   a.TS,
		op:   a.Op,
		ctx:  p.cur[a.Thread],
		kind: recLoad,
	})
}

// Store implements interp.Tracer.
func (p *Profiler) Store(a interp.Access) {
	p.countLine(a.Op, a.Loc)
	p.route(rec{
		addr: a.Addr,
		info: packInfo(a.Loc, int32(a.Var.ID), a.Thread),
		ts:   a.TS,
		op:   a.Op,
		ctx:  p.cur[a.Thread],
		kind: recStore,
	})
}

// EnterRegion implements interp.Tracer.
func (p *Profiler) EnterRegion(r *ir.Region, tid int32) {
	re := p.regions[r.ID]
	if re == nil {
		re = &RegionExec{Region: r}
		p.regions[r.ID] = re
	}
	re.Entries++
	if r.Kind == ir.RLoop {
		p.loopStack[tid] = append(p.loopStack[tid], p.cur[tid])
	}
}

// LoopIter implements interp.Tracer: it advances the thread's loop context
// to a fresh (region, iteration) node.
func (p *Profiler) LoopIter(r *ir.Region, iter int64, tid int32) {
	ls := p.loopStack[tid]
	parent := int32(-1)
	if len(ls) > 0 {
		parent = ls[len(ls)-1]
	}
	p.cur[tid] = p.tab.add(parent, int32(r.ID), iter)
}

// ExitRegion implements interp.Tracer.
func (p *Profiler) ExitRegion(r *ir.Region, iters, instrs int64, tid int32) {
	re := p.regions[r.ID]
	re.Iters += iters
	re.Instrs += instrs
	if r.Kind == ir.RLoop {
		ls := p.loopStack[tid]
		p.cur[tid] = ls[len(ls)-1]
		p.loopStack[tid] = ls[:len(ls)-1]
	}
}

// EnterFunc implements interp.Tracer.
func (p *Profiler) EnterFunc(f *ir.Func, callLoc ir.Loc, tid int32) {
	p.depth[tid]++
}

// ExitFunc implements interp.Tracer: per-function inclusive instruction
// counts feed the instruction-coverage ranking metric.
func (p *Profiler) ExitFunc(f *ir.Func, instrs int64, tid int32) {
	p.funcs[f] += instrs
	p.depth[tid]--
	if p.depth[tid] == 0 {
		p.total += instrs
	}
}

// FreeVar implements interp.Tracer: the variable lifetime analysis of
// Section 2.3.5. Dead addresses are removed from the signatures so their
// slots can be reused without building false dependences.
func (p *Profiler) FreeVar(v *ir.Var, base uint64, elems int, tid int32) {
	for i := 0; i < elems; i++ {
		p.route(rec{addr: base + uint64(i), kind: recRemove})
	}
}

// Lock implements interp.Tracer. In MT mode the event stream is flushed so
// that accesses ordered by the lock are recorded in order (Figure 2.4c).
func (p *Profiler) Lock(id int, tid int32) {
	if p.mtp != nil {
		p.mtp.barrier()
	}
}

// Unlock implements interp.Tracer.
func (p *Profiler) Unlock(id int, tid int32) {
	if p.mtp != nil {
		p.mtp.barrier()
	}
}

// ThreadEnd implements interp.Tracer.
func (p *Profiler) ThreadEnd(tid int32) {
	if p.mtp != nil {
		p.mtp.barrier()
	}
}

// ProcessBatch implements interp.BatchTracer: one pass over a flushed event
// chunk. Access records take the packed sink word verbatim from the event
// (the VM's compile-time operand tables built it already), so the per-access
// path is a couple of dense-slice updates plus the engine's own work — the
// packInfo assembly and all per-event interface dispatch are gone. In serial
// mode each access is handed straight to the devirtualized engine from a
// stack record; pipeline modes accumulate records into recbuf and route them
// as whole chunks. Bookkeeping (contexts, region metrics, line counters, MT
// barriers) is updated inline in stream order, so the results are
// bit-identical to the per-event path.
func (p *Profiler) ProcessBatch(m *ir.Module, evs []interp.Ev) {
	switch {
	case p.engP != nil:
		batchSerial(p, p.engP, m, evs)
	case p.engS != nil:
		batchSerial(p, p.engS, m, evs)
	default:
		p.batchPipe(m, evs)
	}
}

// batchSerial consumes one event chunk directly into a serial engine: no
// intermediate record buffer, and the load/store calls name the concrete
// store type.
func batchSerial[S any, PS storeOps[S]](p *Profiler, e *engine[S, PS], m *ir.Module, evs []interp.Ev) {
	for i := range evs {
		ev := &evs[i]
		// The kind and thread ride in Sink's low 16 bits; the engine takes
		// the word with the kind byte cleared, which is exactly the packInfo
		// value the per-access path would have assembled.
		switch kind := uint8(ev.Sink); kind {
		case interp.EvLoad:
			p.accesses++
			p.ts++
			p.countLine(ev.A, ev.Loc)
			ctx := p.cur[ev.Sink>>8&0xFF]
			if e.ops == nil {
				e.loadAcc(ev.Addr, ev.Sink, p.ts, ev.A, ctx)
			} else {
				r := rec{addr: ev.Addr, info: ev.Sink, ts: p.ts,
					op: ev.A, ctx: ctx, kind: recLoad}
				e.load(&r)
			}
		case interp.EvStore:
			p.accesses++
			p.ts++
			p.countLine(ev.A, ev.Loc)
			ctx := p.cur[ev.Sink>>8&0xFF]
			if e.ops == nil {
				e.storeAcc(ev.Addr, ev.Sink&^0xFF, p.ts, ev.A, ctx)
			} else {
				r := rec{addr: ev.Addr, info: ev.Sink &^ 0xFF, ts: p.ts,
					op: ev.A, ctx: ctx, kind: recStore}
				e.store(&r)
			}
		case interp.EvFreeVar:
			// The per-event path routes each removed element through route(),
			// which counts it in accesses; keep that observable tally.
			p.accesses += int64(ev.B)
			for j := int32(0); j < ev.B; j++ {
				e.rd().Remove(ev.Addr + uint64(j))
				e.wr().Remove(ev.Addr + uint64(j))
			}
		default:
			p.controlEv(m, ev)
		}
	}
}

// batchPipe is the pipeline-mode batch consumer: accesses and removes
// accumulate into recbuf and reach the workers as whole chunks.
func (p *Profiler) batchPipe(m *ir.Module, evs []interp.Ev) {
	rb := p.recbuf[:0]
	for i := range evs {
		ev := &evs[i]
		switch kind := uint8(ev.Sink); kind {
		case interp.EvLoad, interp.EvStore:
			p.accesses++
			p.ts++
			p.countLine(ev.A, ev.Loc)
			k := recLoad
			if kind == interp.EvStore {
				k = recStore
			}
			rb = append(rb, rec{addr: ev.Addr, info: ev.Sink &^ 0xFF, ts: p.ts,
				op: ev.A, ctx: p.cur[ev.Sink>>8&0xFF], kind: k})
		case interp.EvFreeVar:
			p.accesses += int64(ev.B) // route() counts removes; see batchSerial
			for j := int32(0); j < ev.B; j++ {
				rb = append(rb, rec{addr: ev.Addr + uint64(j), kind: recRemove})
			}
		case interp.EvLock, interp.EvUnlock, interp.EvThreadEnd:
			// MT ordering points: everything recorded so far must reach the
			// workers before the barrier drains them (Figure 2.4c).
			if p.mtp != nil {
				rb = p.flushRecs(rb)
				p.mtp.barrier()
			}
		default:
			p.controlEv(m, ev)
		}
	}
	p.recbuf = p.flushRecs(rb)
}

// controlEv applies one non-access event's bookkeeping, shared by both batch
// consumers.
func (p *Profiler) controlEv(m *ir.Module, ev *interp.Ev) {
	tid := ev.Tid()
	switch ev.Kind() {
	case interp.EvEnterRegion:
		p.EnterRegion(m.Regions[ev.A], tid)
	case interp.EvExitRegion:
		p.ExitRegion(m.Regions[ev.A], int64(ev.Addr), interp.UnpackI64(ev.Loc), tid)
	case interp.EvLoopIter:
		p.LoopIter(m.Regions[ev.A], int64(ev.Addr), tid)
	case interp.EvEnterFunc:
		p.depth[tid]++
	case interp.EvExitFunc:
		p.ExitFunc(m.Funcs[ev.A], int64(ev.Addr), tid)
	}
}

// flushRecs hands the accumulated access records to the active engine or
// pipeline and returns the emptied buffer.
func (p *Profiler) flushRecs(rb []rec) []rec {
	if len(rb) == 0 {
		return rb
	}
	switch {
	case p.engP != nil:
		p.engP.processBatch(rb)
	case p.engS != nil:
		p.engS.processBatch(rb)
	case p.mtp != nil:
		p.mtp.produceBatch(rb)
	default:
		p.par.produceBatch(rb)
	}
	return rb[:0]
}

// Stop terminates the worker pipelines (if any). It is idempotent; Result
// calls it internally. Call it directly when the profiled execution
// unwinds with a panic and no result will be produced — otherwise the
// pipeline workers' spin loops outlive the run and burn CPU for the rest
// of the process.
func (p *Profiler) Stop() { p.stop() }

// stop terminates the pipelines and returns the engines' merge-time dumps.
func (p *Profiler) stop() []engineDump {
	if p.stopped {
		return p.dumps
	}
	p.stopped = true
	switch {
	case p.mtp != nil:
		p.dumps = p.mtp.finish()
	case p.par != nil:
		p.dumps = p.par.finish()
	case p.engP != nil:
		p.dumps = []engineDump{p.engP.dump()}
	default:
		p.dumps = []engineDump{p.engS.dump()}
	}
	return p.dumps
}

// Result terminates the pipeline (if any), merges the thread-local
// dependence maps into the global map (Figure 2.2), and returns the
// profiling result.
func (p *Profiler) Result() *Result {
	lines := make(map[ir.Loc]int64)
	for i, n := range p.lineCounts {
		if n != 0 {
			lines[p.opLocs[i]] += n
		}
	}
	for loc, n := range p.spillLines {
		lines[loc] += n
	}
	res := &Result{
		Mod:         p.mod,
		Regions:     p.regions,
		Lines:       lines,
		FuncInstrs:  p.funcs,
		TotalInstrs: p.total,
		Accesses:    p.accesses,
	}
	dumps := p.stop()
	tables := make([]*depTable, len(dumps))
	for i, d := range dumps {
		tables[i] = d.deps
		res.Skip.add(d.stats)
		res.StoreBytes += d.bytes
	}
	res.Deps = mergeDepTables(tables)
	for d := range res.Deps {
		if d.Reversed {
			res.Races++
		}
	}
	return res
}

func (s *SkipStats) add(o *SkipStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.SkippedReads += o.SkippedReads
	s.SkippedWrite += o.SkippedWrite
	s.DepReads += o.DepReads
	s.DepWrites += o.DepWrites
	s.SkippedDepReads += o.SkippedDepReads
	s.SkippedDepWrite += o.SkippedDepWrite
	s.WouldRAW += o.WouldRAW
	s.WouldWAR += o.WouldWAR
	s.WouldWAW += o.WouldWAW
	s.ShadowSkips += o.ShadowSkips
}

// Profile is a convenience helper: it profiles module m with the given
// options and returns the result. The simulated address space is drawn
// from (and recycled through) the shared arena pool, so repeated profiling
// runs do not pay an arena allocation each.
func Profile(m *ir.Module, opt Options) *Result {
	p := New(m, opt)
	iopts := []interp.Option{interp.WithPool(mem.Default)}
	if opt.TreeWalk {
		iopts = append(iopts, interp.WithTreeWalk())
	}
	var tr interp.Tracer = p
	if opt.PerAccess {
		tr = interp.PerEvent(p)
	}
	in := interp.New(m, tr, iopts...)
	defer in.Release()
	in.Run()
	return p.Result()
}
