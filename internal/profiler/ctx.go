package profiler

// The loop-context table interns the active loop nest at the time of each
// access as a node in a tree, one node per dynamic loop iteration. An
// access's context is a single int32, and classifying a dependence as
// loop-carried reduces to a lowest-common-ancestor climb: the nodes just
// below the LCA on the two paths belong to the same loop region iff the
// dependence is carried by that loop (nodes are unique per iteration, so
// equal region implies different iterations). This is the execution-index
// idea Parwiz and Alchemist build full trees for, kept O(depth) here.

type ctxNode struct {
	parent int32
	region int32
	iter   int64
	depth  int32
}

const (
	ctxBlockBits = 16
	ctxBlockSize = 1 << ctxBlockBits
	ctxMaxBlocks = 1 << 14
)

// ctxTable is an append-only block list. A single writer (the event
// producer) appends; concurrent readers may safely resolve any index they
// received through a release/acquire channel such as the profiling queues,
// because block headers are published before the indices that use them.
type ctxTable struct {
	blocks [ctxMaxBlocks][]ctxNode
	n      int32
}

func (t *ctxTable) add(parent, region int32, iter int64) int32 {
	i := t.n
	b := i >> ctxBlockBits
	if t.blocks[b] == nil {
		t.blocks[b] = make([]ctxNode, ctxBlockSize)
	}
	d := int32(0)
	if parent >= 0 {
		d = t.node(parent).depth + 1
	}
	t.blocks[b][i&(ctxBlockSize-1)] = ctxNode{parent: parent, region: region, iter: iter, depth: d}
	t.n++
	return i
}

func (t *ctxTable) node(i int32) ctxNode {
	return t.blocks[i>>ctxBlockBits][i&(ctxBlockSize-1)]
}

// carriedBy determines whether two accesses with contexts a and b form a
// loop-carried dependence, returning the carrying region. Contexts of -1
// denote "outside any loop".
func (t *ctxTable) carriedBy(a, b int32) (int32, bool) {
	if a == b {
		return -1, false
	}
	lastA, lastB := int32(-1), int32(-1)
	da, db := int32(-1), int32(-1)
	if a >= 0 {
		da = t.node(a).depth
	}
	if b >= 0 {
		db = t.node(b).depth
	}
	for da > db {
		lastA, a = a, t.node(a).parent
		da--
	}
	for db > da {
		lastB, b = b, t.node(b).parent
		db--
	}
	for a != b {
		lastA, a = a, t.node(a).parent
		lastB, b = b, t.node(b).parent
	}
	if lastA < 0 || lastB < 0 {
		// One access's context is an ancestor of the other's: both are in
		// the same iteration of every shared loop.
		return -1, false
	}
	na, nb := t.node(lastA), t.node(lastB)
	if na.region == nb.region {
		// Same loop, necessarily different iterations (nodes are unique
		// per iteration): carried by this loop.
		return na.region, true
	}
	return -1, false
}
