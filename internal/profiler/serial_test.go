package profiler

import (
	"strings"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/ir"
)

// fig27 builds the loop of Figure 2.7:
//
//	while (k > 0) { sum += k * 2; k--; }
//
// with k and sum declared outside the loop.
func fig27() (*ir.Module, *ir.Var, *ir.Var, *ir.Region) {
	b := ir.NewBuilder("fig27")
	fb := b.Func("main")
	k := fb.Local("k", ir.I64)
	sum := fb.Local("sum", ir.I64)
	fb.Set(k, ir.CI(10))
	fb.Set(sum, ir.CI(0))
	var loop *ir.Region
	loop = fb.While(ir.Gt(ir.V(k), ir.CI(0)), func() {
		fb.Set(sum, ir.Add(ir.V(sum), ir.Mul(ir.V(k), ir.CI(2))))
		fb.Set(k, ir.Sub(ir.V(k), ir.CI(1)))
	})
	main := fb.Done()
	return b.Build(main), k, sum, loop
}

type depShape struct {
	sinkLine, srcLine int32
	typ               DepType
	varName           string
	carried           bool
}

func shapes(t *testing.T, res *Result) map[depShape]bool {
	t.Helper()
	out := map[depShape]bool{}
	for d := range res.Deps {
		if d.Type == INIT {
			continue
		}
		out[depShape{d.Sink.Line, d.Source.Line, d.Type, res.VarName(d.Var), d.Carried}] = true
	}
	return out
}

// TestTable2_2 checks the dependences of the Figure 2.7 loop against
// Table 2.2. Source lines in our build: while header = hdr, sum update =
// hdr+1, k decrement = hdr+2.
//
// Deps 2 and 3 of Table 2.2 (3 WAR 1 k, 3 WAR 2 k) are semantic ground
// truth the table lists but the signature algorithm cannot produce: the
// read signature keeps only the most recent read per address, so a write
// pairs only with the last preceding read — exactly as in Table 2.3, where
// op4 forms a WAR with op3 but not with op2. We assert the algorithm's
// output (deps 1 and 4–8 plus the header WAR).
func TestTable2_2(t *testing.T) {
	m, _, _, loop := fig27()
	res := Profile(m, Options{Store: StorePerfect})
	hdr := loop.Start.Line
	sumL, decL := hdr+1, hdr+2
	want := []depShape{
		{sumL, sumL, WAR, "sum", false}, // 1: 2 WAR 2 sum
		{decL, decL, WAR, "k", false},   // 4: 3 WAR 3 k
		{hdr, decL, RAW, "k", true},     // 5: 1 RAW 3 k (loop-carried)
		{sumL, sumL, RAW, "sum", true},  // 6: 2 RAW 2 sum (loop-carried)
		{sumL, decL, RAW, "k", true},    // 7: 2 RAW 3 k (loop-carried)
		{decL, decL, RAW, "k", true},    // 8: 3 RAW 3 k (loop-carried)
	}
	got := shapes(t, res)
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing dependence %+v\ngot: %v", w, got)
		}
	}
	// Loop iteration count must be recorded (END loop N).
	re := res.Regions[loop.ID]
	if re == nil || re.Iters != 10 {
		t.Fatalf("loop iterations = %+v, want 10", re)
	}
}

func TestDepFileFormat(t *testing.T) {
	m, _, _, _ := fig27()
	res := Profile(m, Options{Store: StorePerfect})
	var sb strings.Builder
	res.WriteDepFile(&sb, false)
	out := sb.String()
	for _, frag := range []string{"BGN loop", "END loop 10", "NOM", "{RAW", "{WAR", "{INIT *}"} {
		if !strings.Contains(out, frag) {
			t.Errorf("dep file missing %q:\n%s", frag, out)
		}
	}
}

// TestParallelMatchesSerial is the core correctness property of the
// parallel design (Section 2.3.3): the parallel profiler produces exactly
// the same merged dependences as the serial one.
func TestParallelMatchesSerial(t *testing.T) {
	m, _, _, _ := fig27()
	serial := Profile(m, Options{Store: StorePerfect})
	for _, w := range []int{1, 2, 4, 8} {
		par := Profile(m, Options{Store: StorePerfect, Workers: w, ChunkSize: 4})
		fp, fn := DiffDeps(par.Deps, serial.Deps)
		if len(fp) != 0 || len(fn) != 0 {
			t.Errorf("workers=%d: fp=%v fn=%v", w, fp, fn)
		}
	}
}

// TestSkipPreservesDeps verifies the Section 2.4 claim: skipping
// repeatedly executed memory operations does not change the dependence set.
func TestSkipPreservesDeps(t *testing.T) {
	m, _, _, _ := fig27()
	plain := Profile(m, Options{Store: StorePerfect})
	m2, _, _, _ := fig27()
	skip := Profile(m2, Options{Store: StorePerfect, Skip: true})
	fp, fn := DiffDeps(skip.Deps, plain.Deps)
	if len(fp) != 0 || len(fn) != 0 {
		t.Errorf("skip changed deps: fp=%v fn=%v", fp, fn)
	}
	if skip.Skip.SkippedReads == 0 && skip.Skip.SkippedWrite == 0 {
		t.Errorf("expected some skipped instructions, got %+v", skip.Skip)
	}
}

func TestSignatureAccuracyOnSmallProgram(t *testing.T) {
	m, _, _, _ := fig27()
	exact := Profile(m, Options{Store: StorePerfect})
	m2, _, _, _ := fig27()
	approx := Profile(m2, Options{Store: StoreSignature, Slots: 1 << 16})
	fp, fn := DiffDeps(approx.Deps, exact.Deps)
	if len(fp) != 0 || len(fn) != 0 {
		t.Errorf("large signature should be exact here: fp=%v fn=%v", fp, fn)
	}
}

func BenchmarkSerialProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _, _, _ := fig27()
		Profile(m, Options{Store: StorePerfect})
	}
}

var _ interp.Tracer = (*Profiler)(nil)
