package profiler

import (
	"runtime"
	"sync"
	"sync/atomic"

	"discopop/internal/interp"
	"discopop/internal/queue"
)

// mtPipe implements the modified parallelization strategy for
// multi-threaded target programs (Section 2.3.4). Each target thread has
// its own producer (relay) so that more than one producer may push into a
// worker's queue concurrently — a multiple-producer-single-consumer
// pattern, realized with the lock-free fetch-and-add queue of Figure 2.5.
//
// Accesses ordered by explicit locks are kept in order by flushing all
// relays at Lock/Unlock events, the analogue of inserting the push
// operation inside the lock region (Figure 2.4c). Unlocked conflicting
// accesses may legitimately be observed out of timestamp order by a
// worker; the engine then marks the dependence Reversed — a potential data
// race.

type relay struct {
	ring *queue.SPSC[rec]
	sent atomic.Int64
	fwd  atomic.Int64
	stop atomic.Bool
}

type mtWorker[S any, PS storeOps[S]] struct {
	q    *queue.MPSC[rec]
	eng  *engine[S, PS]
	done atomic.Bool
	proc atomic.Int64 // records processed (for barriers)
	sent atomic.Int64 // records pushed to this worker by all relays
}

type mtPipe[S any, PS storeOps[S]] struct {
	p       *Profiler
	relays  [interp.MaxThreads]*relay
	workers []*mtWorker[S, PS]
	wg      sync.WaitGroup
	relayWG sync.WaitGroup
}

func newMTPipe[S any, PS storeOps[S]](p *Profiler, mk func(nshares int) (S, S), nOps, nRegions int32) *mtPipe[S, PS] {
	w := p.opt.Workers
	if w == 0 {
		w = 4
	}
	mp := &mtPipe[S, PS]{p: p}
	for i := 0; i < w; i++ {
		rd, wr := mk(w)
		mw := &mtWorker[S, PS]{q: queue.NewMPSC[rec](),
			eng: newEngine[S, PS](rd, wr, p.tab, p.opt.MT, p.skipOps(nOps), p.skipRegions(nRegions))}
		mp.workers = append(mp.workers, mw)
		mp.wg.Add(1)
		go mp.runWorker(mw)
	}
	return mp
}

func (mp *mtPipe[S, PS]) runWorker(w *mtWorker[S, PS]) {
	defer mp.wg.Done()
	for {
		r, ok := w.q.TryPop()
		if !ok {
			if w.done.Load() {
				if r, ok = w.q.TryPop(); !ok {
					return
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		w.eng.process(&r)
		w.proc.Add(1)
	}
}

func (mp *mtPipe[S, PS]) relayFor(tid int32) *relay {
	if mp.relays[tid] == nil {
		rl := &relay{ring: queue.NewSPSC[rec](4096)}
		mp.relays[tid] = rl
		mp.relayWG.Add(1)
		go mp.runRelay(rl)
	}
	return mp.relays[tid]
}

func (mp *mtPipe[S, PS]) runRelay(rl *relay) {
	defer mp.relayWG.Done()
	nw := uint64(len(mp.workers))
	for {
		r, ok := rl.ring.TryPop()
		if !ok {
			if rl.stop.Load() {
				if r, ok = rl.ring.TryPop(); !ok {
					return
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		w := mp.workers[r.addr%nw]
		w.sent.Add(1)
		w.q.Push(r)
		rl.fwd.Add(1)
	}
}

// produce routes a record through the producing target thread's relay.
func (mp *mtPipe[S, PS]) produce(r rec) {
	tid := int32(unpackThread(r.info))
	if r.kind == recRemove {
		tid = 0
	}
	rl := mp.relayFor(tid)
	for !rl.ring.TryPush(r) {
		runtime.Gosched()
	}
	rl.sent.Add(1)
}

// barrier waits until every relay has forwarded everything it was handed
// and every worker has consumed everything forwarded to it. After a
// barrier, all previously produced accesses are fully recorded, which is
// what pushing inside the lock region guarantees in the paper.
// produceBatch feeds one flushed chunk through the per-thread relays.
// Records carry their producing thread in the packed info word, so routing
// stays per-record; the batching win is the single pipeline call per chunk.
func (mp *mtPipe[S, PS]) produceBatch(rs []rec) {
	for i := range rs {
		mp.produce(rs[i])
	}
}

func (mp *mtPipe[S, PS]) barrier() {
	for _, rl := range mp.relays {
		if rl == nil {
			continue
		}
		for rl.fwd.Load() != rl.sent.Load() {
			runtime.Gosched()
		}
	}
	for _, w := range mp.workers {
		for w.proc.Load() != w.sent.Load() {
			runtime.Gosched()
		}
	}
}

func (mp *mtPipe[S, PS]) finish() []engineDump {
	for _, rl := range mp.relays {
		if rl != nil {
			rl.stop.Store(true)
		}
	}
	mp.relayWG.Wait()
	for _, w := range mp.workers {
		w.done.Store(true)
	}
	mp.wg.Wait()
	dumps := make([]engineDump, len(mp.workers))
	for i, w := range mp.workers {
		dumps[i] = w.eng.dump()
	}
	return dumps
}
