package profiler

import (
	"strings"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/workloads"
)

// TestDepFileRoundTrip: writing a result to the Figure 2.1 format and
// parsing it back preserves the dependence set at file granularity.
func TestDepFileRoundTrip(t *testing.T) {
	for _, name := range []string{"kmeans", "tinyjpeg", "EP"} {
		prog := workloads.MustBuild(name, 1)
		res := Profile(prog.M, Options{Store: StorePerfect})
		var sb strings.Builder
		res.WriteDepFile(&sb, false)
		df, err := ParseDepFile(sb.String())
		if err != nil {
			t.Fatalf("%s: parse error: %v", name, err)
		}
		want := CoarseSet(res.Deps, res.VarName)
		got := CoarseSet(df.Deps, func(id int32) string {
			if id < 0 || int(id) >= len(df.Vars) {
				return "*"
			}
			return df.Vars[id]
		})
		for k := range want {
			if !got[k] {
				t.Errorf("%s: dependence lost in round trip: %s", name, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("%s: dependence invented by round trip: %s", name, k)
			}
		}
	}
}

// TestDepFileRoundTripMT round-trips the multi-threaded format (Fig 2.3).
func TestDepFileRoundTripMT(t *testing.T) {
	prog := workloads.MustBuild("rgbyuv-mt", 1)
	res := Profile(prog.M, Options{Store: StorePerfect, MT: true, Workers: 2})
	var sb strings.Builder
	res.WriteDepFile(&sb, true)
	df, err := ParseDepFile(sb.String())
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if !df.MT {
		t.Fatal("MT format not detected")
	}
	// Thread IDs must survive.
	foundThreaded := false
	for d := range df.Deps {
		if d.Type != INIT && d.SinkThr >= 0 && d.SrcThr >= 0 {
			foundThreaded = true
		}
	}
	if !foundThreaded {
		t.Fatal("no thread-attributed dependences parsed")
	}
}

// TestDepFileLoopMarkers: BGN/END markers carry iteration counts.
func TestDepFileLoopMarkers(t *testing.T) {
	prog := workloads.MustBuild("MG", 1)
	res := Profile(prog.M, Options{Store: StorePerfect})
	var sb strings.Builder
	res.WriteDepFile(&sb, false)
	df, err := ParseDepFile(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(df.LoopEnds) == 0 {
		t.Fatal("no loop END markers parsed")
	}
	total := int64(0)
	for _, it := range df.LoopEnds {
		total += it
	}
	if total == 0 {
		t.Fatal("all parsed loops have zero iterations")
	}
}

func TestParseDepFileErrors(t *testing.T) {
	cases := []string{
		"1:60 XYZ {RAW 1:1|x}",
		"1:60 NOM {QQQ 1:1|x}",
		"nonsense NOM {RAW 1:1|x}",
		"1:60 NOM {RAW 1:1|x",
		"1:60 NOM {RAW broken|x}",
	}
	for _, c := range cases {
		if _, err := ParseDepFile(c); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestParseDepFileSample(t *testing.T) {
	// The exact fragment of Figure 2.1 (abridged).
	sample := `1:60 BGN loop
1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}
1:74 NOM {RAW 1:41|block}
1:74 END loop 1200
`
	df, err := ParseDepFile(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Deps) != 6 {
		t.Fatalf("parsed %d deps, want 6", len(df.Deps))
	}
	if it := df.LoopEnds[ir.Loc{File: 1, Line: 74}]; it != 1200 {
		t.Fatalf("loop iterations = %d, want 1200", it)
	}
	names := map[string]bool{}
	for _, v := range df.Vars {
		names[v] = true
	}
	if !names["i"] || !names["temp1"] || !names["block"] {
		t.Fatalf("variables not interned: %v", df.Vars)
	}
}

// TestParseDepFileWorkloadSeparators: multi-workload dp-profile output
// carries "=== name ===" separators, which the parser must skip.
func TestParseDepFileWorkloadSeparators(t *testing.T) {
	sample := `=== alpha ===
1:60 NOM {RAW 1:60|i} {INIT *}
=== beta ===
1:74 NOM {RAW 1:41|block}
`
	df, err := ParseDepFile(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(df.Deps) != 3 {
		t.Fatalf("parsed %d deps, want 3", len(df.Deps))
	}
}
