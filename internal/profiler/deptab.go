package profiler

import (
	"runtime"
	"sync"

	"discopop/internal/ir"
)

// The dependence accumulator of the hot path. The paper's Algorithm 2
// touches the dependence storage once per dependence-building access; in the
// seed implementation that touch was a Go map insert keyed by the full
// multi-word Dep struct (reflection-driven hashing and equality on every
// insert). Here a dependence's identity is packed into 128 bits — sink and
// source location, type, variable, threads, carrying loop, reversal flag —
// and accumulated in an open-addressing table modeled on sig.Perfect, so
// the per-dependence cost is one integer hash and a linear probe. Result
// materializes the packed tables back into the public map[Dep]int64, so
// discovery, ranking, and the dep-file writer are unchanged.

// Packed dependence identity, two words:
//
//	hi: sinkFile(10) sinkLine(22) srcFile(10) srcLine(22)
//	lo: type(2) var(16) sinkThr(8) srcThr(8) carried(1) reversed(1)
//	    hasThr(1) unused(5) carriedBy+1(22)
//
// The location fields reuse packInfo's widths (file 10 bits, line 22 bits,
// variable 16 bits, thread 8 bits), so packing a dependence loses nothing
// the access records had not already lost. The sink file is always >= 1, so
// hi is non-zero for every real dependence and a zero hi marks an empty
// table cell.
const (
	depTypeShift    = 62
	depVarShift     = 46
	depSinkThrShift = 38
	depSrcThrShift  = 30
	depCarriedBit   = uint64(1) << 29
	depReversedBit  = uint64(1) << 28
	depHasThrBit    = uint64(1) << 27
	depCarryMask    = uint64(1)<<22 - 1
)

// locBits packs a location into the 32-bit file(10)|line(22) form — the
// same form packInfo's upper half uses, so engine code can derive it from
// an access record with a single shift.
func locBits(l ir.Loc) uint64 {
	return uint64(uint32(l.File)&0x3FF)<<22 | uint64(uint32(l.Line)&0x3FFFFF)
}

func locFromBits(b uint64) ir.Loc {
	return ir.Loc{File: int32(b >> 22 & 0x3FF), Line: int32(b & 0x3FFFFF)}
}

// packDep packs a dependence into its 128-bit identity. Fields beyond the
// packed widths are truncated exactly as packInfo truncates them on the
// access path.
func packDep(d Dep) (hi, lo uint64) {
	hi = locBits(d.Sink) << 32
	lo = uint64(d.Type) << depTypeShift
	if d.Type == INIT {
		return hi, lo
	}
	hi |= locBits(d.Source)
	lo |= (uint64(uint32(d.Var)) & 0xFFFF) << depVarShift
	if d.SinkThr >= 0 || d.SrcThr >= 0 {
		lo |= depHasThrBit |
			uint64(uint8(d.SinkThr))<<depSinkThrShift |
			uint64(uint8(d.SrcThr))<<depSrcThrShift
	}
	if d.Carried {
		lo |= depCarriedBit | uint64(uint32(d.CarriedBy+1))&depCarryMask
	}
	if d.Reversed {
		lo |= depReversedBit
	}
	return hi, lo
}

// unpackDep is the inverse of packDep, reconstructing the canonical Dep the
// seed implementation would have built in engine.addDep.
func unpackDep(hi, lo uint64) Dep {
	d := Dep{
		Sink:    locFromBits(hi >> 32),
		Type:    DepType(lo >> depTypeShift),
		Var:     -1,
		SinkThr: -1, SrcThr: -1,
		CarriedBy: -1,
	}
	if d.Type == INIT {
		return d
	}
	d.Source = locFromBits(hi & 0xFFFFFFFF)
	d.Var = int32(lo >> depVarShift & 0xFFFF)
	if lo&depHasThrBit != 0 {
		d.SinkThr = int16(lo >> depSinkThrShift & 0xFF)
		d.SrcThr = int16(lo >> depSrcThrShift & 0xFF)
	}
	if lo&depCarriedBit != 0 {
		d.Carried = true
		d.CarriedBy = int32(lo&depCarryMask) - 1
	}
	d.Reversed = lo&depReversedBit != 0
	return d
}

// depHash mixes the two key words (same multiplicative mixer family as
// sig.phash).
func depHash(hi, lo uint64) uint64 {
	h := (hi ^ lo*0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	return h ^ h>>29
}

// depCell is one table slot: key pair plus the merged occurrence count.
type depCell struct {
	hi, lo uint64
	n      int64
}

// depTable is the open-addressing accumulator: linear probing, grow at 3/4
// load. It is single-writer (one per engine, one per merge shard).
type depTable struct {
	cells []depCell
	n     int
	// last is the cell index of the most recent add, kept per dependence
	// type. An access repeated across loop iterations rebuilds the identical
	// dependence — but a load/store pair alternates RAW with WAR/WAW, so one
	// shared slot would thrash; per-type slots make the steady-state cost a
	// single compare instead of hash+probe. Index 0 is a safe initial/reset
	// value: if cell 0 is empty its hi is 0, which never equals a real key.
	last [4]uint64
}

const depTableInitCap = 1 << 8

func newDepTable() depTable {
	return depTable{cells: make([]depCell, depTableInitCap)}
}

// add merges n occurrences of the packed dependence (hi, lo).
func (t *depTable) add(hi, lo uint64, n int64) {
	ty := lo >> depTypeShift
	if c := &t.cells[t.last[ty]]; c.hi == hi && c.lo == lo {
		c.n += n
		return
	}
	if t.n*4 >= len(t.cells)*3 {
		t.grow()
	}
	mask := uint64(len(t.cells) - 1)
	for i := depHash(hi, lo) & mask; ; i = (i + 1) & mask {
		c := &t.cells[i]
		if c.hi == hi && c.lo == lo {
			c.n += n
			t.last[ty] = i
			return
		}
		if c.hi == 0 {
			c.hi, c.lo, c.n = hi, lo, n
			t.n++
			t.last[ty] = i
			return
		}
	}
}

func (t *depTable) grow() {
	old := t.cells
	t.cells = make([]depCell, len(old)*2)
	t.n = 0
	t.last = [4]uint64{}
	for _, c := range old {
		if c.hi != 0 {
			t.add(c.hi, c.lo, c.n)
		}
	}
}

// each visits every occupied cell.
func (t *depTable) each(fn func(hi, lo uint64, n int64)) {
	for i := range t.cells {
		if c := &t.cells[i]; c.hi != 0 {
			fn(c.hi, c.lo, c.n)
		}
	}
}

// materialize unpacks the table into the public map form.
func (t *depTable) materialize() map[Dep]int64 {
	out := make(map[Dep]int64, t.n)
	t.each(func(hi, lo uint64, n int64) {
		out[unpackDep(hi, lo)] += n
	})
	return out
}

// depShardOf maps a packed dependence to its merge shard by sink location
// (hi's upper half), so all variants of one sink line land in one shard.
func depShardOf(hi uint64, nshards int) int {
	h := (hi >> 32) * 0x9E3779B97F4A7C15
	return int(h >> 33 % uint64(nshards))
}

// mergeShardThreshold is the total cell count below which Result merges
// serially — spawning merge workers for a handful of dependences costs
// more than it saves.
const mergeShardThreshold = 1 << 12

// mergeDepTables merges per-engine dependence tables into one map. Small
// merges run serially; large ones are sharded by sink line across a worker
// pool: each shard worker folds its slice of every engine's table into a
// private packed table and materializes it, and the disjoint shard maps are
// finally combined. The expensive work — probing, unpacking, map hashing —
// runs fully in parallel; only the final disjoint copy is serial.
func mergeDepTables(tables []*depTable) map[Dep]int64 {
	total := 0
	for _, t := range tables {
		total += t.n
	}
	if len(tables) == 1 {
		return tables[0].materialize()
	}
	if total < mergeShardThreshold {
		out := make(map[Dep]int64, total)
		for _, t := range tables {
			t.each(func(hi, lo uint64, n int64) {
				out[unpackDep(hi, lo)] += n
			})
		}
		return out
	}
	nsh := runtime.GOMAXPROCS(0)
	if nsh > 8 {
		nsh = 8
	}
	if nsh < 2 {
		nsh = 2
	}
	shardMaps := make([]map[Dep]int64, nsh)
	var wg sync.WaitGroup
	for s := 0; s < nsh; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			local := newDepTable()
			for _, t := range tables {
				t.each(func(hi, lo uint64, n int64) {
					if depShardOf(hi, nsh) == s {
						local.add(hi, lo, n)
					}
				})
			}
			shardMaps[s] = local.materialize()
		}(s)
	}
	wg.Wait()
	out := make(map[Dep]int64, total)
	for _, m := range shardMaps {
		for d, n := range m {
			out[d] = n
		}
	}
	return out
}

// DepShards is a concurrency-safe dependence accumulator sharded by sink
// location: concurrent producers (e.g. batch-engine workers folding
// finished jobs into fleet-level statistics) lock only the shard their
// dependence hashes to, so merges stream instead of serializing on one
// map. The zero value is not usable; construct with NewDepShards.
type DepShards struct {
	shards []depShard

	// zero catches dependences whose packed key would collide with the
	// empty-cell sentinel (sink location all zero — never produced by the
	// profiler, but Merge accepts arbitrary maps).
	zeroMu sync.Mutex
	zero   map[Dep]int64
}

type depShard struct {
	mu  sync.Mutex
	tab depTable
	// pad keeps neighboring shards off one cache line under contention.
	_ [24]byte
}

// NewDepShards returns an accumulator with n shards (a small power of two
// is picked when n <= 0).
func NewDepShards(n int) *DepShards {
	if n <= 0 {
		n = 16
	}
	s := &DepShards{shards: make([]depShard, n)}
	for i := range s.shards {
		s.shards[i].tab = newDepTable()
	}
	return s
}

// Merge folds one result's dependence map into the accumulator.
func (s *DepShards) Merge(deps map[Dep]int64) {
	for d, n := range deps {
		hi, lo := packDep(d)
		if hi == 0 {
			s.zeroMu.Lock()
			if s.zero == nil {
				s.zero = map[Dep]int64{}
			}
			s.zero[d] += n
			s.zeroMu.Unlock()
			continue
		}
		sh := &s.shards[depShardOf(hi, len(s.shards))]
		sh.mu.Lock()
		sh.tab.add(hi, lo, n)
		sh.mu.Unlock()
	}
}

// Distinct returns the number of distinct dependences accumulated.
func (s *DepShards) Distinct() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.tab.n
		sh.mu.Unlock()
	}
	s.zeroMu.Lock()
	total += len(s.zero)
	s.zeroMu.Unlock()
	return total
}

// Snapshot materializes the accumulated dependences into one map.
func (s *DepShards) Snapshot() map[Dep]int64 {
	out := make(map[Dep]int64, s.Distinct())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.tab.each(func(hi, lo uint64, n int64) {
			out[unpackDep(hi, lo)] += n
		})
		sh.mu.Unlock()
	}
	s.zeroMu.Lock()
	for d, n := range s.zero {
		out[d] += n
	}
	s.zeroMu.Unlock()
	return out
}
