package profiler

import (
	"discopop/internal/bytecode"
	"discopop/internal/ir"
	"discopop/internal/sig"
)

// engine executes the signature-based dependence-detection algorithm
// (Algorithm 2) over a stream of access records. One engine exists per
// worker thread (or one in total for serial profiling); each owns a read
// signature, a write signature, and a thread-local dependence table, exactly
// as in Figure 2.2.
//
// The engine is generic over the concrete store type: the per-access
// Get/Put/Remove calls of the hot loop compile to direct (inlinable) calls
// into sig.Perfect or sig.Signature instead of dynamic dispatch through the
// sig.Store interface — three interface calls per load and four per store
// in the seed implementation. The stores are embedded by value so each
// store kind gets its own instantiation (distinct gcshapes) and the engine,
// its stores, and its skip state share one allocation.

// Access-record kinds.
const (
	recLoad uint8 = iota
	recStore
	recRemove // variable lifetime analysis: drop status of addr
	recMigOut // redistribution: extract and clear status of addr
	recMigIn  // redistribution: install migrated status of addr
)

// rec is one access record as buffered in chunks and queues.
type rec struct {
	addr uint64
	info uint64 // packed sink location/variable/thread
	ts   uint64
	op   int32
	ctx  int32
	kind uint8
	mig  *migration
}

// migration carries per-address signature state between workers when the
// load balancer reassigns a hot address (Section 2.3.3).
type migration struct {
	read, write sig.Entry
	done        chan struct{}
}

// packInfo packs an access's sink identity: file(10) | line(22) | var(16) |
// thread(8) | 0(8). The file field is always >= 1, so packed info is
// non-zero and a zero sig.Entry means "empty". The layout is owned by
// bytecode.PackSink so the compiler can bake the static half into per-pc
// operand tables; on the batched path rec.info arrives pre-packed and this
// function only runs for per-event (walker / legacy tracer) streams.
func packInfo(loc ir.Loc, varID int32, thread int32) uint64 {
	return bytecode.PackSink(loc, varID) | bytecode.SinkThread(thread)
}

func unpackLoc(info uint64) ir.Loc {
	return ir.Loc{File: int32(info >> 54), Line: int32((info >> 32) & 0x3FFFFF)}
}

func unpackVar(info uint64) int32    { return int32((info >> 16) & 0xFFFF) }
func unpackThread(info uint64) int16 { return int16((info >> 8) & 0xFF) }

// opSkip is the per-memory-operation state of the skipping optimization:
// lastAddr plus the lastStatusRead/lastStatusWrite accessInfo values
// (Section 2.4). The zero value is the "never profiled" initial state,
// because address 0 is never used by target programs.
//
// Beyond the paper's two conditions we also remember how the dependences
// the operation last built were classified w.r.t. loop carrying
// (lastRCarry/lastWCarry): our dependence identity includes the carrying
// loop, which the paper's 3-byte status slots cannot express, so skipping
// must additionally require that re-profiling would yield the same
// classification. In steady state the classification is stable, so skip
// rates are unaffected.
type opSkip struct {
	lastAddr   uint64
	lastR      int32
	lastW      int32
	lastRCarry int32
	lastWCarry int32
	// lastOrder records whether the read status predated the write status
	// (re.TS < we.TS): WAW dependences are built only for consecutive
	// writes, so their existence depends on this order, not just on which
	// operations the statuses name.
	lastOrder bool
}

// opLayout maps static memory-operation IDs — positive ref/parameter ops
// and the synthetic negative loop-header ops — into one dense index space:
// positive op o at index o, negative op -k at index nPosOps+k. It is the
// single source of truth for this layout, shared by the skip engine's
// per-op state and the profiler's line counters.
type opLayout struct {
	nPosOps int32
}

func newOpLayout(nOps int32) opLayout { return opLayout{nPosOps: nOps + 1} }

func (l opLayout) index(op int32) int32 {
	if op >= 0 {
		return op
	}
	return l.nPosOps + (-op)
}

// size returns the dense slice length covering nOps positive ops plus
// nRegionOps synthetic negative ops.
func (l opLayout) size(nRegionOps int32) int { return int(l.nPosOps) + int(nRegionOps) + 1 }

// storeOps constrains PS to "pointer to concrete store type S" with the
// per-access operations, so that a generic engine instantiated for S calls
// them directly.
type storeOps[S any] interface {
	*S
	Get(addr uint64) sig.Entry
	Put(addr uint64, e sig.Entry)
	GetSet(addr uint64, e sig.Entry) sig.Entry
	Remove(addr uint64)
	MemBytes() int64
}

// engineDump is the non-generic view of a finished engine that Result
// merges: the packed dependence table, the skip counters, and the store
// footprint.
type engineDump struct {
	deps  *depTable
	stats *SkipStats
	bytes int64
}

type engine[S any, PS storeOps[S]] struct {
	readS  S
	writeS S
	deps   depTable
	tab    *ctxTable
	mt     bool

	// cc memoizes carriedBy results per (sink ctx, source ctx) pair in a
	// small direct-mapped cache: consecutive accesses of a loop repeat the
	// same few context pairs, and the LCA climb is a pointer chase per
	// level. Context nodes are append-only and immutable, so entries never
	// go stale; the cache is engine-local, so no synchronization is needed.
	cc [carryCacheSize]carryMemo

	// Skip optimization (enabled when ops != nil), indexed via lay.
	ops   []opSkip
	lay   opLayout
	stats SkipStats
}

const carryCacheSize = 256

// carryMemo is one carriedBy cache entry. The zero value is safe: it only
// matches the query (0, 0), for which carried == false is the right answer
// (equal contexts are never loop-carried) and reg is then ignored.
type carryMemo struct {
	a, b, reg int32
	carried   bool
}

// carried is carriedBy through the engine's memo cache.
func (e *engine[S, PS]) carried(a, b int32) (int32, bool) {
	m := &e.cc[(uint32(a)*0x9E3779B9+uint32(b))&(carryCacheSize-1)]
	if m.a != a || m.b != b {
		reg, ok := e.tab.carriedBy(a, b)
		*m = carryMemo{a: a, b: b, reg: reg, carried: ok}
	}
	return m.reg, m.carried
}

func newEngine[S any, PS storeOps[S]](readS, writeS S, tab *ctxTable, mt bool, skipOps, skipRegions int32) *engine[S, PS] {
	e := &engine[S, PS]{
		readS:  readS,
		writeS: writeS,
		deps:   newDepTable(),
		tab:    tab,
		mt:     mt,
	}
	if skipOps > 0 || skipRegions > 0 {
		e.lay = newOpLayout(skipOps)
		e.ops = make([]opSkip, e.lay.size(skipRegions))
	}
	return e
}

func (e *engine[S, PS]) rd() PS { return PS(&e.readS) }
func (e *engine[S, PS]) wr() PS { return PS(&e.writeS) }

// dump exposes the engine's merge-time products.
func (e *engine[S, PS]) dump() engineDump {
	return engineDump{deps: &e.deps, stats: &e.stats,
		bytes: e.rd().MemBytes() + e.wr().MemBytes()}
}

// depsMap materializes the packed dependence table (tests and single-engine
// inspection).
func (e *engine[S, PS]) depsMap() map[Dep]int64 { return e.deps.materialize() }

func (e *engine[S, PS]) opIdx(op int32) int32 { return e.lay.index(op) }

func (e *engine[S, PS]) entry(r *rec) sig.Entry {
	return sig.Entry{Info: r.info, Ctx: r.ctx, Op: r.op, TS: r.ts}
}

// addDep builds and merges one dependence with sink taken from r and
// source from the signature entry src. The dependence's variable is the
// one accessed at the sink: the sink access knows its variable exactly,
// whereas the source's identity comes from the (possibly aliased)
// signature slot — attributing the variable from the sink is what keeps
// signature false positives bounded by line-pair combinations rather than
// by colliding address pairs (compare Figure 2.1: "1:65 NOM {WAR
// 1:67|temp2}" names temp2, the variable written at the 1:65 sink).
//
// The dependence identity is assembled directly from the packed access
// info words — the sink/source location halves are single shifts of
// r.info/src.Info — and merged into the packed accumulator; no Dep struct
// or map insert exists on this path.
func (e *engine[S, PS]) addDep(t DepType, r *rec, src sig.Entry) {
	hi := r.info &^ 0xFFFFFFFF // sink file|line in the upper half
	lo := uint64(t) << depTypeShift
	if t != INIT {
		hi |= src.Info >> 32 // source file|line in the lower half
		lo |= (r.info >> 16 & 0xFFFF) << depVarShift
		if e.mt {
			lo |= depHasThrBit |
				(r.info>>8&0xFF)<<depSinkThrShift |
				(src.Info>>8&0xFF)<<depSrcThrShift
		}
		if carriedRegion, carried := e.carried(r.ctx, src.Ctx); carried {
			lo |= depCarriedBit | uint64(uint32(carriedRegion+1))&depCarryMask
		}
		if r.ts < src.TS {
			// The sink was observed before its source: the accesses were
			// not mutually exclusive — a potential data race (§2.3.4).
			lo |= depReversedBit
		}
	}
	e.deps.add(hi, lo, 1)
}

// loadAcc is the scalar no-skip fast path of load: the access identity
// arrives in registers instead of through a rec, so the batched serial
// consumer pays no record round trip. Callers must ensure e.ops == nil
// (skip disabled); with skip state the rec-based load is required.
func (e *engine[S, PS]) loadAcc(addr, info, ts uint64, op, ctx int32) {
	e.stats.Reads++
	we := e.wr().Get(addr)
	if !we.Empty() {
		e.stats.DepReads++
		e.addDepAcc(RAW, info, ctx, ts, we)
	}
	e.rd().Put(addr, sig.Entry{Info: info, Ctx: ctx, Op: op, TS: ts})
}

// storeAcc is the scalar no-skip fast path of store (see loadAcc).
func (e *engine[S, PS]) storeAcc(addr, info, ts uint64, op, ctx int32) {
	e.stats.Writes++
	re := e.rd().Get(addr)
	we := e.wr().GetSet(addr, sig.Entry{Info: info, Ctx: ctx, Op: op, TS: ts})
	if we.Empty() {
		e.addDepAcc(INIT, info, ctx, ts, we)
		return
	}
	wouldWAR := !re.Empty()
	wouldWAW := re.Empty() || re.TS < we.TS
	e.stats.DepWrites++
	if wouldWAR {
		e.addDepAcc(WAR, info, ctx, ts, re)
	}
	if wouldWAW {
		e.addDepAcc(WAW, info, ctx, ts, we)
	}
}

// addDepAcc is addDep with the sink identity in scalars (see loadAcc).
func (e *engine[S, PS]) addDepAcc(t DepType, info uint64, ctx int32, ts uint64, src sig.Entry) {
	hi := info &^ 0xFFFFFFFF
	lo := uint64(t) << depTypeShift
	if t != INIT {
		hi |= src.Info >> 32
		lo |= (info >> 16 & 0xFFFF) << depVarShift
		if e.mt {
			lo |= depHasThrBit |
				(info>>8&0xFF)<<depSinkThrShift |
				(src.Info>>8&0xFF)<<depSrcThrShift
		}
		if carriedRegion, carried := e.carried(ctx, src.Ctx); carried {
			lo |= depCarriedBit | uint64(uint32(carriedRegion+1))&depCarryMask
		}
		if ts < src.TS {
			lo |= depReversedBit
		}
	}
	e.deps.add(hi, lo, 1)
}

// processBatch consumes one flushed chunk of access records in a tight
// loop: one call into the engine per chunk instead of one per access, with
// the signature pair and the dependence accumulator staying hot across
// iterations.
func (e *engine[S, PS]) processBatch(rs []rec) {
	for i := range rs {
		e.process(&rs[i])
	}
}

func (e *engine[S, PS]) process(r *rec) {
	switch r.kind {
	case recLoad:
		e.load(r)
	case recStore:
		e.store(r)
	case recRemove:
		e.rd().Remove(r.addr)
		e.wr().Remove(r.addr)
	case recMigOut:
		r.mig.read = e.rd().Get(r.addr)
		r.mig.write = e.wr().Get(r.addr)
		e.rd().Remove(r.addr)
		e.wr().Remove(r.addr)
		close(r.mig.done)
	case recMigIn:
		if !r.mig.read.Empty() {
			e.rd().Put(r.addr, r.mig.read)
		}
		if !r.mig.write.Empty() {
			e.wr().Put(r.addr, r.mig.write)
		}
	}
}

// load implements the read half of Algorithm 2 plus the skip conditions of
// Section 2.4: a read is skipped iff its operation's lastAddr matches and
// the shadow statusRead/statusWrite equal the operation's remembered
// lastStatusRead/lastStatusWrite.
func (e *engine[S, PS]) load(r *rec) {
	e.stats.Reads++
	we := e.wr().Get(r.addr)
	wouldRAW := !we.Empty()
	if wouldRAW {
		e.stats.DepReads++
	}
	if e.ops == nil {
		// No skip state: the read-status entry is consulted only by the
		// skip conditions, so the rd-side Get is dead and the round trip
		// collapses to the Put.
		if wouldRAW {
			e.addDep(RAW, r, we)
		}
		e.rd().Put(r.addr, e.entry(r))
		return
	}
	re := e.rd().Get(r.addr)
	st := &e.ops[e.opIdx(r.op)]
	wc := e.carryRegion(r.ctx, we.Ctx, !we.Empty())
	if st.lastAddr == r.addr && st.lastR == re.Op && st.lastW == we.Op &&
		st.lastWCarry == wc {
		e.stats.SkippedReads++
		if wouldRAW {
			e.stats.SkippedDepReads++
			e.stats.WouldRAW++
		}
		if re.Op == r.op && re.Ctx == r.ctx {
			// Special case (§2.4.3): the shadow update would be a
			// no-op re-recording of the same operation in the same
			// iteration context.
			e.stats.ShadowSkips++
			return
		}
		e.rd().Put(r.addr, e.entry(r))
		return
	}
	st.lastAddr = r.addr
	st.lastR = re.Op
	st.lastW = we.Op
	st.lastWCarry = wc
	if wouldRAW {
		e.addDep(RAW, r, we)
	}
	e.rd().Put(r.addr, e.entry(r))
}

// carryRegion returns the carrying-loop region of a would-be dependence
// between the current context and a status entry's context (-1 when not
// carried or the entry is empty, -2 sentinel never used).
func (e *engine[S, PS]) carryRegion(cur, src int32, present bool) int32 {
	if !present {
		return -1
	}
	reg, carried := e.carried(cur, src)
	if !carried {
		return -1
	}
	return reg
}

// store implements the write half of Algorithm 2. Following the evaluation
// setup (Section 2.5.2), a WAW dependence is built only for consecutive
// writes to the same address, i.e. when no read intervened.
func (e *engine[S, PS]) store(r *rec) {
	e.stats.Writes++
	re := e.rd().Get(r.addr)
	if e.ops == nil {
		// No skip state: the old write status is read and immediately
		// overwritten, so Get+Put fuse into one probe sequence.
		we := e.wr().GetSet(r.addr, e.entry(r))
		wouldWAR := !we.Empty() && !re.Empty()
		wouldWAW := !we.Empty() && (re.Empty() || re.TS < we.TS)
		if wouldWAR || wouldWAW {
			e.stats.DepWrites++
		}
		if we.Empty() {
			e.addDep(INIT, r, we)
		} else {
			if wouldWAR {
				e.addDep(WAR, r, re)
			}
			if wouldWAW {
				e.addDep(WAW, r, we)
			}
		}
		return
	}
	we := e.wr().Get(r.addr)
	wouldWAR := !we.Empty() && !re.Empty()
	wouldWAW := !we.Empty() && (re.Empty() || re.TS < we.TS)
	if wouldWAR || wouldWAW {
		e.stats.DepWrites++
	}
	st := &e.ops[e.opIdx(r.op)]
	rc := e.carryRegion(r.ctx, re.Ctx, !re.Empty())
	wc := e.carryRegion(r.ctx, we.Ctx, !we.Empty())
	order := re.TS < we.TS
	if st.lastAddr == r.addr && st.lastR == re.Op && st.lastW == we.Op &&
		st.lastRCarry == rc && st.lastWCarry == wc && st.lastOrder == order {
		e.stats.SkippedWrite++
		if wouldWAR || wouldWAW {
			e.stats.SkippedDepWrite++
		}
		if wouldWAR {
			e.stats.WouldWAR++
		}
		if wouldWAW {
			e.stats.WouldWAW++
		}
		if we.Op == r.op && we.Ctx == r.ctx {
			e.stats.ShadowSkips++
			return
		}
		e.wr().Put(r.addr, e.entry(r))
		return
	}
	st.lastAddr = r.addr
	st.lastR = re.Op
	st.lastW = we.Op
	st.lastRCarry = rc
	st.lastWCarry = wc
	st.lastOrder = order
	if we.Empty() {
		e.addDep(INIT, r, we)
	} else {
		if wouldWAR {
			e.addDep(WAR, r, re)
		}
		if wouldWAW {
			e.addDep(WAW, r, we)
		}
	}
	e.wr().Put(r.addr, e.entry(r))
}
