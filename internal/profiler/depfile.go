package profiler

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"discopop/internal/ir"
)

// This file implements reading the textual dependence format of Figures
// 2.1 and 2.3 back into structured form, so that downstream tools (the
// discovery phase, pattern detectors, external consumers) can work from a
// dependence file produced by an earlier profiling run — the way the
// paper's Phase 2 consumes the output of Phase 1 from disk.

// DepFile is a parsed dependence file.
type DepFile struct {
	// Deps holds the dependences; counts are 1 (the file stores merged
	// dependences without multiplicities).
	Deps map[Dep]int64
	// Vars maps the variable IDs used in Deps back to names.
	Vars []string
	// Loops records BGN/END loop markers: start location -> iterations.
	Loops map[ir.Loc]int64
	// LoopEnds records END marker locations keyed by iterations order.
	LoopEnds map[ir.Loc]int64
	// MT reports whether the file carried thread IDs.
	MT bool
}

// ParseDepFile parses the Figure 2.1 (sequential) or Figure 2.3
// (multi-threaded) format.
func ParseDepFile(text string) (*DepFile, error) {
	df := &DepFile{
		Deps:     map[Dep]int64{},
		Loops:    map[ir.Loc]int64{},
		LoopEnds: map[ir.Loc]int64{},
	}
	varID := map[string]int32{}
	intern := func(name string) int32 {
		if id, ok := varID[name]; ok {
			return id
		}
		id := int32(len(df.Vars))
		varID[name] = id
		df.Vars = append(df.Vars, name)
		return id
	}
	var openLoops []ir.Loc
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "===") {
			// Workload separator emitted by multi-workload dp-profile
			// runs ("=== name ==="); the dependences on either side parse
			// as one merged file.
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("depfile line %d: malformed: %q", lineNo, line)
		}
		sinkLoc, sinkThr, mt, err := parseLocThread(fields[0])
		if err != nil {
			return nil, fmt.Errorf("depfile line %d: %v", lineNo, err)
		}
		if mt {
			df.MT = true
		}
		switch fields[1] {
		case "BGN":
			openLoops = append(openLoops, sinkLoc)
			continue
		case "END":
			if len(fields) >= 4 {
				iters, err := strconv.ParseInt(fields[3], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("depfile line %d: bad iteration count", lineNo)
				}
				df.LoopEnds[sinkLoc] = iters
				if len(openLoops) > 0 {
					df.Loops[openLoops[len(openLoops)-1]] = iters
					openLoops = openLoops[:len(openLoops)-1]
				}
			}
			continue
		case "NOM":
		default:
			return nil, fmt.Errorf("depfile line %d: unknown marker %q", lineNo, fields[1])
		}
		// Parse the {TYPE loc|var} entries.
		rest := line[strings.Index(line, "NOM")+3:]
		for {
			open := strings.Index(rest, "{")
			if open < 0 {
				break
			}
			clos := strings.Index(rest, "}")
			if clos < open {
				return nil, fmt.Errorf("depfile line %d: unbalanced braces", lineNo)
			}
			entry := rest[open+1 : clos]
			rest = rest[clos+1:]
			reversed := strings.HasPrefix(rest, "!")
			d, err := parseEntry(entry, sinkLoc, sinkThr, intern)
			if err != nil {
				return nil, fmt.Errorf("depfile line %d: %v", lineNo, err)
			}
			d.Reversed = reversed
			df.Deps[d]++
		}
	}
	return df, sc.Err()
}

// parseLocThread parses "f:l" or "f:l|t".
func parseLocThread(s string) (ir.Loc, int16, bool, error) {
	thr := int16(-1)
	mt := false
	if i := strings.IndexByte(s, '|'); i >= 0 {
		t, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return ir.Loc{}, 0, false, fmt.Errorf("bad thread id in %q", s)
		}
		thr = int16(t)
		mt = true
		s = s[:i]
	}
	loc, err := parseLoc(s)
	return loc, thr, mt, err
}

func parseLoc(s string) (ir.Loc, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return ir.Loc{}, fmt.Errorf("bad location %q", s)
	}
	f, err1 := strconv.Atoi(s[:i])
	l, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return ir.Loc{}, fmt.Errorf("bad location %q", s)
	}
	return ir.Loc{File: int32(f), Line: int32(l)}, nil
}

// parseEntry parses "RAW 1:60|i", "WAR 4:77|2|iter" (MT), or "INIT *".
func parseEntry(entry string, sink ir.Loc, sinkThr int16,
	intern func(string) int32) (Dep, error) {
	d := Dep{Sink: sink, SinkThr: sinkThr, SrcThr: -1, Var: -1, CarriedBy: -1}
	fields := strings.Fields(entry)
	if len(fields) < 2 {
		return d, fmt.Errorf("bad entry %q", entry)
	}
	switch fields[0] {
	case "RAW":
		d.Type = RAW
	case "WAR":
		d.Type = WAR
	case "WAW":
		d.Type = WAW
	case "INIT":
		d.Type = INIT
		return d, nil
	default:
		return d, fmt.Errorf("unknown dependence type %q", fields[0])
	}
	parts := strings.Split(fields[1], "|")
	loc, err := parseLoc(parts[0])
	if err != nil {
		return d, err
	}
	d.Source = loc
	switch len(parts) {
	case 2: // loc|var
		d.Var = intern(parts[1])
	case 3: // loc|thread|var
		t, err := strconv.Atoi(parts[1])
		if err != nil {
			return d, fmt.Errorf("bad source thread in %q", fields[1])
		}
		d.SrcThr = int16(t)
		d.Var = intern(parts[2])
	default:
		return d, fmt.Errorf("bad source %q", fields[1])
	}
	return d, nil
}

// CoarseSet reduces a dependence map to the paper's <sink, type, source,
// varname> granularity, using the supplied variable-name resolver, so
// that in-memory results and parsed files can be compared.
func CoarseSet(deps map[Dep]int64, varName func(int32) string) map[string]bool {
	out := map[string]bool{}
	for d := range deps {
		if d.Type == INIT {
			out[fmt.Sprintf("%v INIT", d.Sink)] = true
			continue
		}
		out[fmt.Sprintf("%v %v %v %s", d.Sink, d.Type, d.Source, varName(d.Var))] = true
	}
	return out
}
