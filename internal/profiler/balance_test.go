package profiler

import (
	"math/rand"
	"sort"
	"testing"

	"discopop/internal/ir"
	"discopop/internal/sig"
)

// perfectPar is the concrete pipe type the tests below poke at; Profiler
// holds it behind the balancedPipe seam.
type perfectPar = parallelPipe[sig.Perfect, *sig.Perfect]

// newTestPipe builds a 4-worker parallel profiler over a trivial module
// and returns its concrete pipe.
func newTestPipe(t *testing.T) (*Profiler, *perfectPar) {
	t.Helper()
	b := ir.NewBuilder("bal")
	g := b.Global("g", ir.F64)
	fb := b.Func("main")
	fb.Set(g, ir.CF(1))
	m := b.Build(fb.Done())
	p := New(m, Options{Store: StorePerfect, Workers: 4, RebalanceInterval: 1})
	pp, ok := p.par.(*perfectPar)
	if !ok {
		t.Fatalf("parallel pipe has unexpected type %T", p.par)
	}
	return p, pp
}

// TestTopAddrsMatchesSortReference: the bounded-heap top-K selection must
// agree with a full sort of the sample map.
func TestTopAddrsMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 9, 10, 11, 500} {
		counts := map[uint64]int64{}
		for len(counts) < n {
			counts[uint64(rng.Intn(1<<20)+1)] = int64(rng.Intn(1000))
		}
		got := topAddrs(counts, rebalanceTopK)
		type ac = addrCount
		var all []ac
		for a, c := range counts {
			all = append(all, ac{a, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].addr < all[j].addr
		})
		if len(all) > rebalanceTopK {
			all = all[:rebalanceTopK]
		}
		// Equal counts below the cut line make membership ambiguous;
		// compare the count sequence (the ordering contract) and demand the
		// exact address set when counts are distinct.
		if len(got) != len(all) {
			t.Fatalf("n=%d: topAddrs returned %d entries, want %d", n, len(got), len(all))
		}
		for i := range got {
			if got[i].n != all[i].n {
				t.Fatalf("n=%d: rank %d count %d, want %d", n, i, got[i].n, all[i].n)
			}
		}
	}
	// Distinct counts: exact match including addresses.
	counts := map[uint64]int64{}
	for i := 1; i <= 100; i++ {
		counts[uint64(i)] = int64(i)
	}
	got := topAddrs(counts, rebalanceTopK)
	for i, ac := range got {
		wantAddr, wantN := uint64(100-i), int64(100-i)
		if ac.addr != wantAddr || ac.n != wantN {
			t.Fatalf("rank %d = {%d %d}, want {%d %d}", i, ac.addr, ac.n, wantAddr, wantN)
		}
	}
}

// TestRebalanceDecaysHeat is the regression test for the stale-heat bug:
// counts must be halved after every rebalance (and dropped at zero), so an
// address hot early in the run cannot pin the redistribution map forever.
func TestRebalanceDecaysHeat(t *testing.T) {
	p, pp := newTestPipe(t)
	defer p.Stop()
	pp.counts = map[uint64]int64{100: 1 << 10, 200: 3, 300: 1}
	pp.rebalance()
	if got := pp.counts[100]; got != 1<<9 {
		t.Errorf("counts[100] = %d after rebalance, want %d (halved)", got, 1<<9)
	}
	if got := pp.counts[200]; got != 1 {
		t.Errorf("counts[200] = %d after rebalance, want 1", got)
	}
	if _, ok := pp.counts[300]; ok {
		t.Error("counts[300] survived decay to zero; stale entries must be dropped")
	}
	// Ten more rebalances with no fresh samples: the early-hot address
	// must decay out entirely.
	for i := 0; i < 10; i++ {
		pp.rebalance()
	}
	if len(pp.counts) != 0 {
		t.Errorf("counts not empty after decay-only rebalances: %v", pp.counts)
	}
}

// TestRebalanceLateHotAddressTakesOver: with decay in place, an address
// that becomes hot late must displace the early leader in the top ranks.
func TestRebalanceLateHotAddressTakesOver(t *testing.T) {
	p, pp := newTestPipe(t)
	defer p.Stop()
	early, late := uint64(40), uint64(41)
	pp.counts = map[uint64]int64{early: 1 << 12}
	// Phase 1: several rebalances while early is the only hot address.
	for i := 0; i < 6; i++ {
		pp.rebalance()
	}
	// Phase 2: late becomes the hot address.
	pp.counts[late] += 1 << 10
	pp.rebalance()
	top := topAddrs(pp.counts, 1)
	if len(top) == 0 || top[0].addr != late {
		t.Fatalf("late-hot address not the top rank after decay: top=%v counts=%v",
			top, pp.counts)
	}
	// Without decay the early address would still hold 1<<12 > 1<<10 and
	// keep rank 0 forever; with halving it has decayed to 1<<6.
	if c := pp.counts[early]; c >= 1<<10 {
		t.Fatalf("early-hot count %d not decayed below the late-hot count", c)
	}
}

// TestRebalanceOnlyTouchesTopK: redistribution decisions are limited to
// the K heaviest addresses.
func TestRebalanceOnlyTouchesTopK(t *testing.T) {
	p, pp := newTestPipe(t)
	defer p.Stop()
	heavy := map[uint64]bool{}
	pp.counts = map[uint64]int64{}
	for i := 0; i < 50; i++ {
		a := uint64(1000 + i)
		n := int64(10 + i)
		pp.counts[a] = n
		if i >= 50-rebalanceTopK {
			heavy[a] = true
		}
	}
	pp.rebalance()
	for a := range pp.redist {
		if !heavy[a] {
			t.Errorf("address %d entered the redistribution map without being top-%d",
				a, rebalanceTopK)
		}
	}
}
