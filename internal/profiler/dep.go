// Package profiler implements the DiscoPoP data-dependence profiler of
// Chapter 2: signature-based memory tracking (Section 2.3.2), a lock-free
// parallel pipeline for sequential targets (Section 2.3.3), support for
// multi-threaded targets via MPSC queues and timestamp-based race flagging
// (Section 2.3.4), variable lifetime analysis and runtime dependence
// merging (Section 2.3.5), and the loop-skipping optimization (Section 2.4).
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"discopop/internal/ir"
)

// DepType is the kind of a data dependence (Section 1.2.1). INIT marks the
// first write to a memory address (Section 2.3.1).
type DepType uint8

// Dependence types.
const (
	RAW DepType = iota // read after write (flow/true dependence)
	WAR                // write after read (anti-dependence)
	WAW                // write after write (output dependence)
	INIT
)

func (t DepType) String() string {
	switch t {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	default:
		return "INIT"
	}
}

// Dep is one merged data dependence: <sink, type, source> plus the
// attributes of Section 2.3.5 (variable, thread IDs, inter-iteration tag).
// Two dependences are identical — and merged — iff every field matches.
type Dep struct {
	Sink   ir.Loc
	Type   DepType
	Source ir.Loc
	// Var is the ID of the variable accessed at the sink (-1 for INIT) —
	// the variable "causing" the dependence in the Figure 2.1 format.
	Var int32
	// SinkThr/SrcThr are thread IDs for multi-threaded targets, -1 when
	// profiling sequential programs.
	SinkThr int16
	SrcThr  int16
	// Carried reports that source and sink occurred in different
	// iterations of CarriedBy (the innermost common loop).
	Carried bool
	// CarriedBy is the region ID of the carrying loop (-1 if none).
	CarriedBy int32
	// Reversed marks a dependence whose accesses were observed out of
	// timestamp order, exposing a potential data race (Section 2.3.4).
	Reversed bool
}

// RegionExec aggregates the dynamic control-flow information of one region:
// entry count and, for loops, total iterations (Section 2.3.6).
type RegionExec struct {
	Region  *ir.Region
	Entries int64
	Iters   int64
	Instrs  int64 // inclusive executed leaf statements
}

// SkipStats aggregates the counters behind Table 2.7 and Figure 2.13.
type SkipStats struct {
	Reads        int64 // dynamic read instructions observed
	Writes       int64
	SkippedReads int64
	SkippedWrite int64
	// Dep-relevant instruction counts: instructions that would lead to at
	// least one data dependence.
	DepReads        int64
	DepWrites       int64
	SkippedDepReads int64
	SkippedDepWrite int64
	// Would-be dependence types of skipped instructions (Figure 2.13).
	WouldRAW int64
	WouldWAR int64
	WouldWAW int64
	// ShadowSkips counts the special case of Section 2.4.3 where even the
	// shadow-memory update is elided.
	ShadowSkips int64
}

// Result is the complete output of one profiling run.
type Result struct {
	Mod  *ir.Module
	Deps map[Dep]int64
	// Regions holds dynamic control information indexed by region ID.
	Regions map[int]*RegionExec
	// Lines counts dynamic memory accesses per source line, the per-line
	// work estimate used to weight CUs for ranking.
	Lines map[ir.Loc]int64
	// FuncInstrs is the inclusive executed-statement count per function.
	FuncInstrs map[*ir.Func]int64
	// TotalInstrs is the total number of executed statements — the
	// denominator of instruction coverage (Section 4.3.1).
	TotalInstrs int64
	Skip        SkipStats
	// Accesses is the number of dynamic memory instructions profiled.
	Accesses int64
	// StoreBytes is the memory footprint of the access-status store(s).
	StoreBytes int64
	// Races is the number of distinct dependences flagged Reversed.
	Races int
}

// DepList returns the merged dependences sorted by sink, type, source.
func (r *Result) DepList() []Dep {
	out := make([]Dep, 0, len(r.Deps))
	for d := range r.Deps {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Sink != b.Sink {
			if a.Sink.File != b.Sink.File {
				return a.Sink.File < b.Sink.File
			}
			return a.Sink.Line < b.Sink.Line
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Source != b.Source {
			if a.Source.File != b.Source.File {
				return a.Source.File < b.Source.File
			}
			return a.Source.Line < b.Source.Line
		}
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		return a.SinkThr < b.SinkThr
	})
	return out
}

// VarName resolves a dependence's variable name ("*" for INIT).
func (r *Result) VarName(id int32) string {
	if id < 0 || int(id) >= len(r.Mod.Vars) {
		return "*"
	}
	return r.Mod.Vars[id].Name
}

// CarriedRAWs returns the loop-carried RAW dependences carried by loop
// region id, excluding dependences on the loop's own iteration variable
// when it is not written in the body (Section 3.2.5).
func (r *Result) CarriedRAWs(regionID int) []Dep {
	var out []Dep
	for d := range r.Deps {
		if d.Type == RAW && d.Carried && d.CarriedBy == int32(regionID) {
			out = append(out, d)
		}
	}
	return out
}

// WriteDepFile renders the dependences in the textual format of Figures 2.1
// and 2.3: one aggregated line per sink with NOM entries, and BGN/END lines
// for control regions. Thread IDs are included iff mt is true.
func (r *Result) WriteDepFile(sb *strings.Builder, mt bool) {
	type sinkGroup struct {
		loc  ir.Loc
		thr  int16
		deps []Dep
	}
	groups := map[uint64]*sinkGroup{}
	key := func(l ir.Loc, thr int16) uint64 {
		k := l.Key()
		if mt {
			k = k<<8 | uint64(uint8(thr))
		}
		return k
	}
	for _, d := range r.DepList() {
		k := key(d.Sink, d.SinkThr)
		g := groups[k]
		if g == nil {
			g = &sinkGroup{loc: d.Sink, thr: d.SinkThr}
			groups[k] = g
		}
		g.deps = append(g.deps, d)
	}
	// Region begin/end markers.
	type marker struct {
		loc   ir.Loc
		begin bool
		kind  ir.RegionKind
		iters int64
	}
	var markers []marker
	for _, re := range r.Regions {
		if re.Region.Kind != ir.RLoop {
			continue
		}
		markers = append(markers, marker{loc: re.Region.Start, begin: true, kind: re.Region.Kind})
		markers = append(markers, marker{loc: re.Region.End, kind: re.Region.Kind, iters: re.Iters})
	}
	var lines []uint64
	for k := range groups {
		lines = append(lines, k)
	}
	seen := map[uint64]bool{}
	for _, m := range markers {
		k := key(m.loc, 0)
		if !seen[k] && groups[k] == nil {
			lines = append(lines, k)
			seen[k] = true
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lessKey(lines[i], lines[j], mt) })
	for _, k := range lines {
		g := groups[k]
		var loc ir.Loc
		var thr int16
		if g != nil {
			loc, thr = g.loc, g.thr
		} else {
			if mt {
				loc = ir.LocFromKey(k >> 8)
			} else {
				loc = ir.LocFromKey(k)
			}
		}
		for _, m := range markers {
			if m.loc == loc && m.begin {
				fmt.Fprintf(sb, "%s BGN loop\n", loc)
			}
		}
		if g != nil {
			sb.WriteString(loc.String())
			if mt {
				fmt.Fprintf(sb, "|%d", thr)
			}
			sb.WriteString(" NOM")
			for _, d := range g.deps {
				if d.Type == INIT {
					sb.WriteString(" {INIT *}")
					continue
				}
				if mt {
					fmt.Fprintf(sb, " {%s %s|%d|%s}", d.Type, d.Source, d.SrcThr, r.VarName(d.Var))
				} else {
					fmt.Fprintf(sb, " {%s %s|%s}", d.Type, d.Source, r.VarName(d.Var))
				}
				if d.Reversed {
					sb.WriteString("!")
				}
			}
			sb.WriteString("\n")
		}
		for _, m := range markers {
			if m.loc == loc && !m.begin {
				fmt.Fprintf(sb, "%s END loop %d\n", loc, m.iters)
			}
		}
	}
}

func lessKey(a, b uint64, mt bool) bool {
	if mt {
		a, b = a>>8, b>>8
	}
	la, lb := ir.LocFromKey(a), ir.LocFromKey(b)
	if la.File != lb.File {
		return la.File < lb.File
	}
	if la.Line != lb.Line {
		return la.Line < lb.Line
	}
	return a < b
}

// DiffDeps compares two dependence sets at full granularity (everything
// except race flags and counts), returning dependences present in got but
// not want (false positives) and in want but not got (false negatives).
func DiffDeps(got, want map[Dep]int64) (fp, fn []Dep) {
	return diff(got, want, func(d Dep) Dep {
		d.Reversed = false
		return d
	})
}

// DiffDepsCoarse compares at the paper's dependence granularity —
// <sink, type, source, variable> — ignoring the loop-carried attributes
// this implementation additionally tracks. Table 2.6's FPR/FNR rates are
// defined at this granularity: the paper's 3-byte signature slots encode
// no iteration information, so carried variants of one line-level
// dependence are not distinct dependences there.
func DiffDepsCoarse(got, want map[Dep]int64) (fp, fn []Dep) {
	return diff(got, want, func(d Dep) Dep {
		d.Reversed = false
		d.Carried = false
		d.CarriedBy = -1
		return d
	})
}

func diff(got, want map[Dep]int64, norm func(Dep) Dep) (fp, fn []Dep) {
	g := map[Dep]bool{}
	for d := range got {
		g[norm(d)] = true
	}
	w := map[Dep]bool{}
	for d := range want {
		w[norm(d)] = true
	}
	for d := range g {
		if !w[d] {
			fp = append(fp, d)
		}
	}
	for d := range w {
		if !g[d] {
			fn = append(fn, d)
		}
	}
	return fp, fn
}
