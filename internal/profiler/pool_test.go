package profiler

import (
	"reflect"
	"testing"

	"discopop/internal/interp"
	"discopop/internal/mem"
	"discopop/internal/workloads"
)

// TestPooledArenaDifferential: profiling on a recycled arena must produce
// byte-identical dependence tables to profiling on a freshly allocated one.
// The pool is seeded by a first pooled run, so the second pooled run is
// guaranteed to execute on a dirtied-then-Reset space.
func TestPooledArenaDifferential(t *testing.T) {
	opts := []Options{
		{Store: StorePerfect},
		{Store: StorePerfect, Skip: true},
		{Store: StoreSignature, Slots: 1 << 16},
	}
	for _, name := range []string{"CG", "histogram", "kmeans"} {
		for _, opt := range opts {
			pool := mem.NewPool()
			runPooled := func() *Result {
				m := workloads.MustBuild(name, 1).M
				p := New(m, opt)
				in := interp.New(m, p, interp.WithPool(pool))
				defer in.Release()
				in.Run()
				return p.Result()
			}
			runFresh := func() *Result {
				m := workloads.MustBuild(name, 1).M
				p := New(m, opt)
				interp.New(m, p).Run()
				return p.Result()
			}
			runPooled() // seed the pool with a dirtied space
			recycled := runPooled()
			fresh := runFresh()
			if fresh.Accesses != recycled.Accesses {
				t.Fatalf("%s/%+v: access counts diverged: %d vs %d",
					name, opt, fresh.Accesses, recycled.Accesses)
			}
			if !reflect.DeepEqual(fresh.Deps, recycled.Deps) {
				t.Fatalf("%s/%+v: dependence tables diverged between fresh and recycled arenas (%d vs %d deps)",
					name, opt, len(fresh.Deps), len(recycled.Deps))
			}
		}
	}
}
