package profiler

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"discopop/internal/queue"
)

// parallelPipe implements the producer/consumer architecture of Figure 2.2
// for sequential target programs: the main (event-producing) thread sorts
// memory accesses into per-worker chunks — a memory address is owned by
// exactly one worker so the temporal order per address is preserved — and
// pushes full chunks into lock-free SPSC queues. Workers run Algorithm 2 on
// their own signature pair and store dependences in thread-local maps that
// are merged at the end.

type chunk struct {
	recs []rec
}

type pworker struct {
	id      int
	q       *queue.SPSC[*chunk]
	lq      *queue.LockedQueue[*chunk] // lock-based baseline
	recycle *queue.SPSC[*chunk]
	eng     *engine
	done    atomic.Bool
}

func (w *pworker) pop() (*chunk, bool) {
	if w.lq != nil {
		return w.lq.TryPop()
	}
	return w.q.TryPop()
}

func (w *pworker) push(c *chunk) {
	if w.lq != nil {
		w.lq.Push(c)
		return
	}
	for !w.q.TryPush(c) {
		runtime.Gosched()
	}
}

type parallelPipe struct {
	p       *Profiler
	workers []*pworker
	cur     []*chunk
	wg      sync.WaitGroup

	// Load balancing (Section 2.3.3): sampled dynamic access statistics
	// and a redistribution map that overrides the modulo assignment. Only
	// 1 in 1<<sampleShift accesses is counted — the balancer needs the
	// relative ordering of the heaviest addresses, not exact counts, and a
	// per-access map write is a measurable hot-path cost. The sampling
	// decision comes from a (deterministically seeded) xorshift stream,
	// not a fixed stride, so periodic access patterns whose length shares
	// a factor with the sampling interval cannot systematically hide an
	// address from the balancer.
	counts       map[uint64]int64
	rng          uint64
	redist       map[uint64]int
	chunksPushed int
	// Rebalances counts performed redistributions (observability).
	rebalances int
}

// sampleShift sets the access-count sampling rate for load rebalancing:
// 1 in 2^6 = 64 accesses is counted.
const sampleShift = 6

func newParallelPipe(p *Profiler, nOps, nRegions int32) *parallelPipe {
	w := p.opt.Workers
	pp := &parallelPipe{
		p:      p,
		counts: make(map[uint64]int64),
		rng:    0x9E3779B97F4A7C15,
		redist: make(map[uint64]int),
	}
	for i := 0; i < w; i++ {
		pw := &pworker{
			id:      i,
			recycle: queue.NewSPSC[*chunk](64),
			eng:     p.newEngine(w, nOps, nRegions),
		}
		if p.opt.UseLocked {
			pw.lq = &queue.LockedQueue[*chunk]{}
		} else {
			pw.q = queue.NewSPSC[*chunk](64)
		}
		pp.workers = append(pp.workers, pw)
		pp.cur = append(pp.cur, &chunk{recs: make([]rec, 0, p.opt.ChunkSize)})
		pp.wg.Add(1)
		go pp.runWorker(pw)
	}
	return pp
}

func (pp *parallelPipe) runWorker(w *pworker) {
	defer pp.wg.Done()
	for {
		c, ok := w.pop()
		if !ok {
			if w.done.Load() {
				// Drain once more to avoid racing the final flush.
				if c, ok = w.pop(); !ok {
					return
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		for i := range c.recs {
			w.eng.process(&c.recs[i])
		}
		c.recs = c.recs[:0]
		w.recycle.TryPush(c) // recycled chunks are reused by the producer
	}
}

// owner applies the modulo distribution (Formula 2.1) unless overridden by
// the redistribution map.
func (pp *parallelPipe) owner(addr uint64) int {
	if len(pp.redist) > 0 {
		if w, ok := pp.redist[addr]; ok {
			return w
		}
	}
	return int(addr % uint64(len(pp.workers)))
}

func (pp *parallelPipe) produce(r rec) {
	if r.kind == recLoad || r.kind == recStore {
		pp.rng ^= pp.rng << 13
		pp.rng ^= pp.rng >> 7
		pp.rng ^= pp.rng << 17
		if pp.rng&(1<<sampleShift-1) == 0 {
			pp.counts[r.addr]++
		}
	}
	w := pp.owner(r.addr)
	c := pp.cur[w]
	c.recs = append(c.recs, r)
	if len(c.recs) == cap(c.recs) {
		pp.flush(w)
		if pp.p.opt.RebalanceInterval > 0 && pp.chunksPushed%pp.p.opt.RebalanceInterval == 0 {
			pp.rebalance()
		}
	}
}

func (pp *parallelPipe) flush(w int) {
	pw := pp.workers[w]
	pw.push(pp.cur[w])
	pp.chunksPushed++
	// Reuse a recycled chunk when available.
	if c, ok := pw.recycle.TryPop(); ok {
		pp.cur[w] = c
	} else {
		pp.cur[w] = &chunk{recs: make([]rec, 0, pp.p.opt.ChunkSize)}
	}
}

// rebalance checks whether the ten most heavily accessed addresses are
// evenly distributed over the workers, and migrates them (with their
// signature state) if not.
func (pp *parallelPipe) rebalance() {
	type ac struct {
		addr uint64
		n    int64
	}
	top := make([]ac, 0, 16)
	for a, n := range pp.counts {
		top = append(top, ac{a, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	if len(top) > 10 {
		top = top[:10]
	}
	w := len(pp.workers)
	for rank, t := range top {
		want := rank % w
		if pp.owner(t.addr) == want {
			continue
		}
		pp.migrate(t.addr, pp.owner(t.addr), want)
		pp.redist[t.addr] = want
		pp.rebalances++
	}
}

// migrate moves the signature state of addr from worker old to worker new,
// preserving the temporal order: all already-produced accesses are flushed
// to the old worker, the state is extracted after the old worker catches
// up, and only then is it installed at the new owner.
func (pp *parallelPipe) migrate(addr uint64, oldW, newW int) {
	if oldW == newW {
		return
	}
	pp.flush(oldW)
	pp.flush(newW)
	m := &migration{done: make(chan struct{})}
	pp.workers[oldW].push(&chunk{recs: []rec{{addr: addr, kind: recMigOut, mig: m}}})
	<-m.done
	pp.workers[newW].push(&chunk{recs: []rec{{addr: addr, kind: recMigIn, mig: m}}})
}

// finish flushes remaining chunks, stops the workers, and returns their
// engines for merging.
func (pp *parallelPipe) finish() []*engine {
	for w := range pp.workers {
		if len(pp.cur[w].recs) > 0 {
			pp.flush(w)
		}
	}
	for _, w := range pp.workers {
		w.done.Store(true)
	}
	pp.wg.Wait()
	engines := make([]*engine, len(pp.workers))
	for i, w := range pp.workers {
		engines[i] = w.eng
	}
	return engines
}
