package profiler

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"discopop/internal/queue"
)

// parallelPipe implements the producer/consumer architecture of Figure 2.2
// for sequential target programs: the main (event-producing) thread sorts
// memory accesses into per-worker chunks — a memory address is owned by
// exactly one worker so the temporal order per address is preserved — and
// pushes full chunks into lock-free SPSC queues. Workers run Algorithm 2 on
// their own signature pair and store dependences in thread-local packed
// tables that are merged at the end.
//
// The pipe is generic over the store type for the same reason the engine
// is: each instantiation owns engines whose hot loop is fully devirtualized.

type chunk struct {
	recs []rec
}

type pworker[S any, PS storeOps[S]] struct {
	id      int
	q       *queue.SPSC[*chunk]
	lq      *queue.LockedQueue[*chunk] // lock-based baseline
	recycle *queue.SPSC[*chunk]
	eng     *engine[S, PS]
	done    atomic.Bool
}

func (w *pworker[S, PS]) pop() (*chunk, bool) {
	if w.lq != nil {
		return w.lq.TryPop()
	}
	return w.q.TryPop()
}

func (w *pworker[S, PS]) push(c *chunk) {
	if w.lq != nil {
		w.lq.Push(c)
		return
	}
	for !w.q.TryPush(c) {
		runtime.Gosched()
	}
}

type parallelPipe[S any, PS storeOps[S]] struct {
	p       *Profiler
	workers []*pworker[S, PS]
	cur     []*chunk
	wg      sync.WaitGroup

	// Load balancing (Section 2.3.3): sampled dynamic access statistics
	// and a redistribution map that overrides the modulo assignment. Only
	// 1 in 1<<sampleShift accesses is counted — the balancer needs the
	// relative ordering of the heaviest addresses, not exact counts, and a
	// per-access map write is a measurable hot-path cost. The sampling
	// decision comes from a (deterministically seeded) xorshift stream,
	// not a fixed stride, so periodic access patterns whose length shares
	// a factor with the sampling interval cannot systematically hide an
	// address from the balancer.
	counts       map[uint64]int64
	rng          uint64
	redist       map[uint64]int
	chunksPushed int
	// Rebalances counts performed redistributions (observability).
	rebalances int
}

// sampleShift sets the access-count sampling rate for load rebalancing:
// 1 in 2^6 = 64 accesses is counted.
const sampleShift = 6

func newParallelPipe[S any, PS storeOps[S]](p *Profiler, mk func(nshares int) (S, S), nOps, nRegions int32) *parallelPipe[S, PS] {
	w := p.opt.Workers
	pp := &parallelPipe[S, PS]{
		p:      p,
		counts: make(map[uint64]int64),
		rng:    0x9E3779B97F4A7C15,
		redist: make(map[uint64]int),
	}
	for i := 0; i < w; i++ {
		rd, wr := mk(w)
		pw := &pworker[S, PS]{
			id:      i,
			recycle: queue.NewSPSC[*chunk](64),
			eng:     newEngine[S, PS](rd, wr, p.tab, p.opt.MT, p.skipOps(nOps), p.skipRegions(nRegions)),
		}
		if p.opt.UseLocked {
			pw.lq = &queue.LockedQueue[*chunk]{}
		} else {
			pw.q = queue.NewSPSC[*chunk](64)
		}
		pp.workers = append(pp.workers, pw)
		pp.cur = append(pp.cur, &chunk{recs: make([]rec, 0, p.opt.ChunkSize)})
		pp.wg.Add(1)
		go pp.runWorker(pw)
	}
	return pp
}

func (pp *parallelPipe[S, PS]) runWorker(w *pworker[S, PS]) {
	defer pp.wg.Done()
	for {
		c, ok := w.pop()
		if !ok {
			if w.done.Load() {
				// Drain once more to avoid racing the final flush.
				if c, ok = w.pop(); !ok {
					return
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		for i := range c.recs {
			w.eng.process(&c.recs[i])
		}
		c.recs = c.recs[:0]
		w.recycle.TryPush(c) // recycled chunks are reused by the producer
	}
}

// owner applies the modulo distribution (Formula 2.1) unless overridden by
// the redistribution map.
func (pp *parallelPipe[S, PS]) owner(addr uint64) int {
	if len(pp.redist) > 0 {
		if w, ok := pp.redist[addr]; ok {
			return w
		}
	}
	return int(addr % uint64(len(pp.workers)))
}

func (pp *parallelPipe[S, PS]) produce(r rec) {
	if r.kind == recLoad || r.kind == recStore {
		pp.rng ^= pp.rng << 13
		pp.rng ^= pp.rng >> 7
		pp.rng ^= pp.rng << 17
		if pp.rng&(1<<sampleShift-1) == 0 {
			pp.counts[r.addr]++
		}
	}
	w := pp.owner(r.addr)
	c := pp.cur[w]
	c.recs = append(c.recs, r)
	if len(c.recs) == cap(c.recs) {
		pp.flush(w)
		if pp.p.opt.RebalanceInterval > 0 && pp.chunksPushed%pp.p.opt.RebalanceInterval == 0 {
			pp.rebalance()
		}
	}
}

// produceBatch routes one flushed chunk of records. Routing is per-address,
// so the batch is walked record by record; the win over the per-event path
// is upstream (one pipeline call per chunk) and downstream (workers consume
// whole chunks), not here.
func (pp *parallelPipe[S, PS]) produceBatch(rs []rec) {
	for i := range rs {
		pp.produce(rs[i])
	}
}

func (pp *parallelPipe[S, PS]) flush(w int) {
	pw := pp.workers[w]
	pw.push(pp.cur[w])
	pp.chunksPushed++
	// Reuse a recycled chunk when available.
	if c, ok := pw.recycle.TryPop(); ok {
		pp.cur[w] = c
	} else {
		pp.cur[w] = &chunk{recs: make([]rec, 0, pp.p.opt.ChunkSize)}
	}
}

// rebalanceTopK is the number of heaviest addresses the balancer
// distributes round-robin across the workers at each rebalance.
const rebalanceTopK = 10

// topAddrs selects the k heaviest sampled addresses, ordered heaviest
// first, with a bounded min-heap: O(n log k) over the sample map instead of
// sorting every sampled address at every rebalance interval.
func topAddrs(counts map[uint64]int64, k int) []addrCount {
	top := make([]addrCount, 0, k)
	for a, n := range counts {
		if len(top) < k {
			top = append(top, addrCount{a, n})
			if len(top) == k {
				for i := k/2 - 1; i >= 0; i-- {
					siftDown(top, i)
				}
			}
			continue
		}
		if n > top[0].n {
			top[0] = addrCount{a, n}
			siftDown(top, 0)
		}
	}
	// Heaviest first for rank assignment (ties broken by address so the
	// order is deterministic across runs).
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].addr < top[j].addr
	})
	return top
}

type addrCount struct {
	addr uint64
	n    int64
}

// siftDown restores the min-heap property (ordered by count) at index i.
func siftDown(h []addrCount, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].n < h[min].n {
			min = l
		}
		if r < len(h) && h[r].n < h[min].n {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// rebalance checks whether the ten most heavily accessed addresses are
// evenly distributed over the workers, and migrates them (with their
// signature state) if not. Afterwards every sampled count is halved
// (dropping entries that reach zero): without decay, addresses hot early
// in the run would pin the redistribution map for the rest of the
// execution even after going cold, because later-phase addresses could
// never catch up with the all-time counters.
func (pp *parallelPipe[S, PS]) rebalance() {
	top := topAddrs(pp.counts, rebalanceTopK)
	w := len(pp.workers)
	for rank, t := range top {
		want := rank % w
		if pp.owner(t.addr) == want {
			continue
		}
		pp.migrate(t.addr, pp.owner(t.addr), want)
		pp.redist[t.addr] = want
		pp.rebalances++
	}
	for a, n := range pp.counts {
		if n >>= 1; n == 0 {
			delete(pp.counts, a)
		} else {
			pp.counts[a] = n
		}
	}
}

// migrate moves the signature state of addr from worker old to worker new,
// preserving the temporal order: all already-produced accesses are flushed
// to the old worker, the state is extracted after the old worker catches
// up, and only then is it installed at the new owner.
func (pp *parallelPipe[S, PS]) migrate(addr uint64, oldW, newW int) {
	if oldW == newW {
		return
	}
	pp.flush(oldW)
	pp.flush(newW)
	m := &migration{done: make(chan struct{})}
	pp.workers[oldW].push(&chunk{recs: []rec{{addr: addr, kind: recMigOut, mig: m}}})
	<-m.done
	pp.workers[newW].push(&chunk{recs: []rec{{addr: addr, kind: recMigIn, mig: m}}})
}

// finish flushes remaining chunks, stops the workers, and returns their
// engines' merge-time dumps.
func (pp *parallelPipe[S, PS]) finish() []engineDump {
	for w := range pp.workers {
		if len(pp.cur[w].recs) > 0 {
			pp.flush(w)
		}
	}
	for _, w := range pp.workers {
		w.done.Store(true)
	}
	pp.wg.Wait()
	dumps := make([]engineDump, len(pp.workers))
	for i, w := range pp.workers {
		dumps[i] = w.eng.dump()
	}
	return dumps
}

// rebalanceCount reports performed redistributions (observability).
func (pp *parallelPipe[S, PS]) rebalanceCount() int { return pp.rebalances }
