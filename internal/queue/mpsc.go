package queue

import "sync/atomic"

const segSize = 256

// mpscSeg is one array node of the MPSC queue's linked list (Figure 2.5).
// Producers reserve a slot with an atomic fetch-and-add on alloc, write the
// item, then publish it by setting ready. The consumer walks slots in
// order, waiting for ready before reading.
type mpscSeg[T any] struct {
	items [segSize]T
	ready [segSize]atomic.Bool
	alloc atomic.Int64
	next  atomic.Pointer[mpscSeg[T]]
}

// MPSC is an unbounded lock-free multiple-producer-single-consumer queue
// implemented as a linked list of arrays. Fetch-and-add slot reservation is
// supported directly by the hardware, so producer synchronization overhead
// is minimal (Section 2.3.4). Consumed segments are dropped and reclaimed
// by the garbage collector, standing in for the paper's explicit
// deallocation of drained nodes.
type MPSC[T any] struct {
	tail    atomic.Pointer[mpscSeg[T]] // producers' current segment
	_       pad
	head    *mpscSeg[T] // consumer-owned
	headIdx int
}

// NewMPSC returns an empty MPSC queue.
func NewMPSC[T any]() *MPSC[T] {
	s := new(mpscSeg[T])
	q := new(MPSC[T])
	q.tail.Store(s)
	q.head = s
	return q
}

// Push enqueues v. Safe for concurrent use by any number of producers.
func (q *MPSC[T]) Push(v T) {
	for {
		s := q.tail.Load()
		i := s.alloc.Add(1) - 1
		if i < segSize {
			s.items[i] = v
			s.ready[i].Store(true)
			return
		}
		// Segment full: install a fresh one and retry. Whichever producer
		// wins the CAS appends; everyone then advances the tail.
		if s.next.Load() == nil {
			s.next.CompareAndSwap(nil, new(mpscSeg[T]))
		}
		q.tail.CompareAndSwap(s, s.next.Load())
	}
}

// TryPop dequeues the next item in FIFO-per-slot order, reporting false if
// none is ready. Must be called from a single consumer goroutine.
func (q *MPSC[T]) TryPop() (T, bool) {
	var zero T
	for {
		s := q.head
		if q.headIdx < segSize {
			if !s.ready[q.headIdx].Load() {
				return zero, false
			}
			v := s.items[q.headIdx]
			s.items[q.headIdx] = zero
			q.headIdx++
			return v, true
		}
		next := s.next.Load()
		if next == nil {
			return zero, false
		}
		q.head = next
		q.headIdx = 0
	}
}

// LockedQueue is a conventional mutex-protected queue used as the
// lock-based baseline in the Figure 2.9 comparison.
type LockedQueue[T any] struct {
	mu    spinMutex
	items []T
	head  int
}

// Push enqueues v.
func (q *LockedQueue[T]) Push(v T) {
	q.mu.lock()
	q.items = append(q.items, v)
	q.mu.unlock()
}

// TryPop dequeues an item, reporting false if the queue is empty.
func (q *LockedQueue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.lock()
	if q.head == len(q.items) {
		q.mu.unlock()
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.mu.unlock()
	return v, true
}

// spinMutex is a test-and-set spin lock: the locking/unlocking cost it
// models is the contention the lock-free designs eliminate.
type spinMutex struct {
	v atomic.Bool
}

func (m *spinMutex) lock() {
	for !m.v.CompareAndSwap(false, true) {
	}
}

func (m *spinMutex) unlock() { m.v.Store(false) }
