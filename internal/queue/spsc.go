// Package queue provides the lock-free queues at the heart of the parallel
// profiler (Sections 2.3.3 and 2.3.4): a single-producer-single-consumer
// ring used between the main thread and each worker when profiling
// sequential targets, and a multiple-producer-single-consumer linked list
// of arrays (with fetch-and-add slot reservation, Figure 2.5) used when
// profiling multi-threaded targets. A conventional mutex-protected queue is
// included as the "lock-based" baseline of Figure 2.9.
package queue

import "sync/atomic"

type pad [64]byte

// SPSC is a bounded lock-free single-producer-single-consumer ring.
// Synchronization relies solely on the release/acquire ordering of the
// atomic head/tail indices, mirroring the C++11 memory-order-release /
// memory-order-acquire design of the paper's profiler.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad
	head atomic.Uint64 // next index to pop (consumer-owned)
	_    pad
	tail atomic.Uint64 // next index to push (producer-owned)
	_    pad
}

// NewSPSC returns an SPSC ring with capacity rounded up to a power of two.
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// TryPush enqueues v, reporting false if the ring is full. Must be called
// from a single producer goroutine.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() > q.mask {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1) // release: the consumer's acquire-load sees buf[t]
	return true
}

// TryPop dequeues an item, reporting false if the ring is empty. Must be
// called from a single consumer goroutine.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.tail.Load() {
		return zero, false
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero
	q.head.Store(h + 1)
	return v, true
}

// Len returns the number of buffered items (approximate under concurrency).
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }
