package queue

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// TestSPSCSequentialFIFO checks single-threaded FIFO semantics.
func TestSPSCSequentialFIFO(t *testing.T) {
	q := NewSPSC[int](8)
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed on non-full queue", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push succeeded on full queue")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from drained queue succeeded")
	}
}

// TestSPSCCapacityRounding checks the power-of-two rounding.
func TestSPSCCapacityRounding(t *testing.T) {
	for _, c := range []int{1, 3, 5, 17, 100} {
		q := NewSPSC[int](c)
		n := 0
		for q.TryPush(n) {
			n++
		}
		if n < c {
			t.Errorf("capacity(%d): only %d items fit", c, n)
		}
	}
}

// TestSPSCConcurrent streams a million items through a small ring and
// demands exact order and exactly-once delivery — the release/acquire
// correctness the paper's design relies on.
func TestSPSCConcurrent(t *testing.T) {
	const n = 1 << 20
	q := NewSPSC[int](64)
	done := make(chan error, 1)
	go func() {
		expect := 0
		for expect < n {
			v, ok := q.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != expect {
				done <- errf("out of order: got %d want %d", v, expect)
				return
			}
			expect++
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		for !q.TryPush(i) {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// TestMPSCSingleProducer checks FIFO order with one producer.
func TestMPSCSingleProducer(t *testing.T) {
	q := NewMPSC[int]()
	const n = 3 * segSize // cross several segments
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from drained MPSC succeeded")
	}
}

// TestMPSCMultiProducer checks exactly-once delivery with concurrent
// producers racing fetch-and-add slot reservation (Figure 2.5).
func TestMPSCMultiProducer(t *testing.T) {
	const producers = 8
	const perProducer = 50000
	q := NewMPSC[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	got := make([]bool, producers*perProducer)
	count := 0
	doneProducing := make(chan struct{})
	go func() { wg.Wait(); close(doneProducing) }()
	producing := true
	for count < len(got) {
		v, ok := q.TryPop()
		if !ok {
			if !producing {
				// After producers finish, one more sweep must drain all.
				if v2, ok2 := q.TryPop(); ok2 {
					v, ok = v2, true
				} else {
					break
				}
			} else {
				select {
				case <-doneProducing:
					producing = false
				default:
					runtime.Gosched()
				}
				continue
			}
		}
		if got[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		got[v] = true
		count++
	}
	if count != len(got) {
		t.Fatalf("delivered %d of %d items", count, len(got))
	}
	// Per-producer order must be preserved (same producer's items arrive
	// in order within the slot sequence): verified implicitly by the
	// exactly-once property plus the SPSC test; here we just check
	// completeness.
}

// TestLockedQueue checks the lock-based baseline.
func TestLockedQueue(t *testing.T) {
	q := &LockedQueue[string]{}
	q.Push("a")
	q.Push("b")
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if v, ok := q.TryPop(); !ok || v != "b" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty locked queue succeeded")
	}
}

// TestLockedQueueConcurrent hammers the locked queue from both sides.
func TestLockedQueueConcurrent(t *testing.T) {
	q := &LockedQueue[int]{}
	const n = 100000
	go func() {
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	expect := 0
	for expect < n {
		v, ok := q.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != expect {
			t.Fatalf("out of order: %d want %d", v, expect)
		}
		expect++
	}
}

// TestSPSCQuickFIFO is a property test: any push/pop interleaving behaves
// like a bounded FIFO.
func TestSPSCQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewSPSC[int](16)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				okQ := q.TryPush(next)
				okM := len(model) <= int(q.mask)
				if okQ != okM {
					return false
				}
				if okQ {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSC(b *testing.B) {
	q := NewSPSC[int](1024)
	for i := 0; i < b.N; i++ {
		q.TryPush(i)
		q.TryPop()
	}
}

func BenchmarkMPSCPush(b *testing.B) {
	q := NewMPSC[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.TryPop()
	}
}
