package rank

import (
	"testing"

	"discopop/internal/cu"
	"discopop/internal/discovery"
	"discopop/internal/ir"
	"discopop/internal/profiler"
	"discopop/internal/workloads"
)

func analyzeWorkload(t *testing.T, name string) *discovery.Analysis {
	t.Helper()
	prog := workloads.MustBuild(name, 1)
	res := profiler.Profile(prog.M, profiler.Options{Store: profiler.StorePerfect})
	sc := ir.AnalyzeScopes(prog.M)
	g := cu.Build(prog.M, sc, res)
	return discovery.Analyze(prog.M, sc, res, g)
}

func TestCoverageInUnitInterval(t *testing.T) {
	for _, name := range []string{"CG", "kmeans", "histogram", "gzip"} {
		a := analyzeWorkload(t, name)
		ranked := Rank(a, Options{})
		for _, s := range ranked {
			if s.Coverage < 0 || s.Coverage > 1 {
				t.Errorf("%s: coverage %f outside [0,1] for %v", name, s.Coverage, s)
			}
		}
	}
}

func TestLocalSpeedupBounds(t *testing.T) {
	a := analyzeWorkload(t, "c-ray")
	ranked := Rank(a, Options{Threads: 8})
	for _, s := range ranked {
		if s.LocalSpeedup < 1-1e-9 {
			t.Errorf("local speedup %f < 1 for %v", s.LocalSpeedup, s)
		}
		switch s.Kind {
		case discovery.DOALL, discovery.DOALLReduction, discovery.SPMDTask, discovery.MPMDTask:
			if s.LocalSpeedup > 8+1e-9 {
				t.Errorf("local speedup %f exceeds thread cap for %v", s.LocalSpeedup, s)
			}
		}
	}
}

func TestScoreOrdering(t *testing.T) {
	a := analyzeWorkload(t, "kmeans")
	ranked := Rank(a, Options{})
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("ranking not sorted: %f after %f", ranked[i].Score, ranked[i-1].Score)
		}
	}
}

func TestSequentialLoopsScoreZero(t *testing.T) {
	a := analyzeWorkload(t, "prefix-sum")
	ranked := Rank(a, Options{})
	for _, s := range ranked {
		if s.Kind == discovery.Sequential && s.Score != 0 {
			t.Errorf("sequential suggestion has score %f", s.Score)
		}
	}
}

func TestImbalanceZeroForEqualTasks(t *testing.T) {
	mkCU := func(w float64) *cu.CU { return &cu.CU{Weight: w} }
	s := &discovery.Suggestion{
		Kind: discovery.MPMDTask,
		Tasks: [][]*cu.CU{
			{mkCU(10)}, {mkCU(10)}, {mkCU(10)},
		},
	}
	imbalance(s)
	if s.Imbalance != 0 {
		t.Fatalf("equal tasks imbalance = %f, want 0", s.Imbalance)
	}
	skewed := &discovery.Suggestion{
		Kind: discovery.MPMDTask,
		Tasks: [][]*cu.CU{
			{mkCU(100)}, {mkCU(1)}, {mkCU(1)},
		},
	}
	imbalance(skewed)
	if skewed.Imbalance <= 0.5 {
		t.Fatalf("skewed tasks imbalance = %f, want > 0.5 (Figure 4.6)", skewed.Imbalance)
	}
}

func TestImbalancePenalizesScore(t *testing.T) {
	// Two otherwise identical suggestions: the balanced one must rank
	// higher.
	mkCU := func(w float64) *cu.CU { return &cu.CU{Weight: w} }
	balanced := &discovery.Suggestion{Kind: discovery.MPMDTask, Coverage: 0.5,
		LocalSpeedup: 2, Tasks: [][]*cu.CU{{mkCU(10)}, {mkCU(10)}}}
	skewed := &discovery.Suggestion{Kind: discovery.MPMDTask, Coverage: 0.5,
		LocalSpeedup: 2, Tasks: [][]*cu.CU{{mkCU(19)}, {mkCU(1)}}}
	imbalance(balanced)
	imbalance(skewed)
	sb := balanced.Coverage * balanced.LocalSpeedup / (1 + balanced.Imbalance)
	ss := skewed.Coverage * skewed.LocalSpeedup / (1 + skewed.Imbalance)
	if sb <= ss {
		t.Fatalf("balanced score %f not above skewed %f", sb, ss)
	}
}

func TestTopHotspots(t *testing.T) {
	a := analyzeWorkload(t, "CG")
	Rank(a, Options{})
	hot := TopHotspots(a, 3)
	if len(hot) == 0 {
		t.Fatal("no hotspots")
	}
	if len(hot) > 3 {
		t.Fatalf("requested 3 hotspots, got %d", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Weight > hot[i-1].Weight {
			t.Fatal("hotspots not sorted by weight")
		}
	}
}

func TestDefaultThreads(t *testing.T) {
	a := analyzeWorkload(t, "rgbyuv")
	ranked := Rank(a, Options{}) // default 16
	for _, s := range ranked {
		if s.Kind == discovery.DOALL && s.LocalSpeedup > 16+1e-9 {
			t.Fatalf("default thread cap not applied: %f", s.LocalSpeedup)
		}
	}
}
