// Package rank implements the ranking of parallelization targets
// (Section 4.3) with its three metrics: instruction coverage (4.3.1),
// local speedup (4.3.2), and CU imbalance (4.3.3).
package rank

import (
	"math"
	"sort"

	"discopop/internal/discovery"
	"discopop/internal/graph"
)

// Options configures ranking.
type Options struct {
	// Threads caps the local-speedup estimate (default 16).
	Threads int
}

// Rank fills the metric fields of every suggestion and returns them sorted
// by descending score. Suggestions classified Sequential keep score 0.
func Rank(a *discovery.Analysis, opt Options) []*discovery.Suggestion {
	if opt.Threads == 0 {
		opt.Threads = 16
	}
	total := float64(a.Res.TotalInstrs)
	for _, s := range a.Suggestions {
		coverage(s, a, total)
		localSpeedup(s, a, opt.Threads)
		imbalance(s)
		if s.Kind == discovery.Sequential {
			s.Score = 0
			continue
		}
		s.Score = s.Coverage * s.LocalSpeedup / (1 + s.Imbalance)
	}
	out := append([]*discovery.Suggestion{}, a.Suggestions...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// coverage computes the fraction of dynamic work spent inside the
// suggestion's construct, inclusive of callees (Section 4.3.1).
func coverage(s *discovery.Suggestion, a *discovery.Analysis, total float64) {
	if total == 0 {
		return
	}
	var w float64
	switch {
	case s.Region != nil:
		if re := a.Res.Regions[s.Region.ID]; re != nil {
			w = float64(re.Instrs)
		}
	case s.Func != nil:
		w = float64(a.Res.FuncInstrs[s.Func])
	}
	if w > total {
		w = total
	}
	s.Coverage = w / total
}

// localSpeedup estimates the speedup achievable inside the construct alone
// (Section 4.3.2): DOALL loops scale with min(threads, iterations);
// DOACROSS loops with the pipeline bound; task suggestions with
// work / critical-path of their CU graph.
func localSpeedup(s *discovery.Suggestion, a *discovery.Analysis, threads int) {
	p := float64(threads)
	switch s.Kind {
	case discovery.DOALL, discovery.DOALLReduction, discovery.SPMDTask:
		it := float64(s.Iters)
		if s.Region == nil || it == 0 {
			it = p
		}
		s.LocalSpeedup = math.Min(p, it)
	case discovery.DOACROSS:
		var seqW, parW float64
		for _, c := range s.SeqStage {
			seqW += c.Weight
		}
		for _, c := range s.ParStage {
			parW += c.Weight
		}
		if seqW+parW == 0 {
			s.LocalSpeedup = 1
			return
		}
		// Pipeline bound: the sequential stage runs at full length; the
		// parallel stage overlaps across threads (Amdahl on the body).
		frac := seqW / (seqW + parW)
		s.LocalSpeedup = 1 / (frac + (1-frac)/p)
	case discovery.MPMDTask:
		if s.LocalSpeedup == 0 {
			s.LocalSpeedup = cpSpeedup(s, p)
		}
		s.LocalSpeedup = math.Min(s.LocalSpeedup, p)
	default:
		s.LocalSpeedup = 1
	}
}

func cpSpeedup(s *discovery.Suggestion, p float64) float64 {
	n := len(s.Tasks)
	if n == 0 {
		return 1
	}
	g := graph.New(n)
	g.Weight = make([]float64, n)
	for i, grp := range s.Tasks {
		for _, c := range grp {
			g.Weight[i] += c.Weight + 1
		}
	}
	cp, total := g.CriticalPath()
	return math.Min(safe(total, cp), p)
}

// imbalance computes the CU imbalance metric of Section 4.3.3: how evenly
// the work of the suggestion's concurrent parts is distributed (Figure
// 4.6). We use the coefficient of variation of task weights: 0 for
// perfectly balanced tasks, growing as one task dominates.
func imbalance(s *discovery.Suggestion) {
	if len(s.Tasks) < 2 {
		s.Imbalance = 0
		return
	}
	ws := make([]float64, len(s.Tasks))
	var sum float64
	for i, grp := range s.Tasks {
		for _, c := range grp {
			ws[i] += c.Weight + 1
		}
		sum += ws[i]
	}
	mean := sum / float64(len(ws))
	if mean == 0 {
		return
	}
	var varsum float64
	for _, w := range ws {
		varsum += (w - mean) * (w - mean)
	}
	s.Imbalance = math.Sqrt(varsum/float64(len(ws))) / mean
}

func safe(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// TopHotspots returns the n highest-coverage loop suggestions regardless of
// classification — the "survey" view tools like Intel Advisor provide.
func TopHotspots(a *discovery.Analysis, n int) []*discovery.Suggestion {
	var loops []*discovery.Suggestion
	for _, s := range a.Suggestions {
		if s.Region != nil {
			loops = append(loops, s)
		}
	}
	sort.SliceStable(loops, func(i, j int) bool { return loops[i].Weight > loops[j].Weight })
	if len(loops) > n {
		loops = loops[:n]
	}
	return loops
}
