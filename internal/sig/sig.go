// Package sig implements the memory-access status stores of Section 2.3.2:
// the fixed-size signature (an approximate membership structure borrowed
// from transactional memory, here with a single hash function so that
// elements can be removed by the variable lifetime analysis) and the
// "perfect signature" — an exact per-address table used both as the
// 100%-accurate profiling mode and as the baseline for measuring the
// false-positive/false-negative rates of the approximate signature
// (Table 2.6).
package sig

import "math"

// Entry is the access status stored per slot: the packed identity of the
// most recent access (source location, variable, thread, static operation)
// plus the loop-context ID used to classify loop-carried dependences and
// the logical timestamp of the access. A zero Info means "empty".
type Entry struct {
	Info uint64 // packed by the profiler; 0 = empty
	Ctx  int32  // loop-context table index (-1 = none)
	Op   int32  // static memory-operation ID (statusRead/statusWrite of §2.4)
	TS   uint64 // logical timestamp of the access
}

// Empty reports whether the entry holds no access.
func (e Entry) Empty() bool { return e.Info == 0 }

// Store is the common interface of the approximate signature and the
// perfect signature. A Store keeps one Entry per tracked memory address
// (approximately, for the signature).
type Store interface {
	// Get returns the entry recorded for addr (a zero Entry if none).
	Get(addr uint64) Entry
	// Put records e as the latest access status of addr.
	Put(addr uint64, e Entry)
	// Remove deletes the status of addr (variable lifetime analysis).
	Remove(addr uint64)
	// Clear empties the store.
	Clear()
	// MemBytes returns the memory footprint of the store in bytes.
	MemBytes() int64
}

// Signature is the approximate store: a fixed-length array addressed by a
// single hash function. Hash collisions overwrite foreign state, producing
// the false positives and false negatives quantified in Section 2.5.1.
// Because there is only one hash function, removal is a single slot clear.
type Signature struct {
	slots []Entry
}

// NewSignature returns a signature with n slots.
func NewSignature(n int) *Signature {
	s := MakeSignature(n)
	return &s
}

// MakeSignature returns a signature with n slots by value, for embedding
// in generic engines.
func MakeSignature(n int) Signature {
	if n <= 0 {
		panic("sig: signature size must be positive")
	}
	return Signature{slots: make([]Entry, n)}
}

// Slots returns the number of slots.
func (s *Signature) Slots() int { return len(s.slots) }

func (s *Signature) idx(addr uint64) int {
	// Fibonacci multiplicative hashing followed by a modulo so that
	// arbitrary (non-power-of-two) slot counts such as 1e6/1e7/1e8 from
	// Table 2.6 are usable.
	h := addr * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(len(s.slots)))
}

// Get implements Store.
func (s *Signature) Get(addr uint64) Entry { return s.slots[s.idx(addr)] }

// Put implements Store.
func (s *Signature) Put(addr uint64, e Entry) { s.slots[s.idx(addr)] = e }

// GetSet records e as the latest status of addr and returns the previous
// entry — Get and Put in a single slot resolution.
func (s *Signature) GetSet(addr uint64, e Entry) Entry {
	i := s.idx(addr)
	old := s.slots[i]
	s.slots[i] = e
	return old
}

// Remove implements Store.
func (s *Signature) Remove(addr uint64) { s.slots[s.idx(addr)] = Entry{} }

// Clear implements Store.
func (s *Signature) Clear() {
	for i := range s.slots {
		s.slots[i] = Entry{}
	}
}

// MemBytes implements Store.
func (s *Signature) MemBytes() int64 { return int64(len(s.slots)) * 24 }

// Perfect is the exact store: a hash table with one entry per address, the
// "perfect signature" of Section 2.5.1 in which hash collisions are
// guaranteed not to happen. It is also the shadow-memory option offered
// for 100% accurate profiling (Section 2.3.7), trading memory for
// accuracy. The implementation is an open-addressing table with linear
// probing and tombstone-free deletion (backward-shift), keeping per-access
// cost close to the direct-indexed shadow memories of the paper.
type Perfect struct {
	keys    []uint64 // 0 = empty slot (address 0 is never used)
	entries []Entry
	n       int
}

const perfectInitCap = 1 << 10

// NewPerfect returns an empty perfect signature.
func NewPerfect() *Perfect {
	p := MakePerfect()
	return &p
}

// MakePerfect returns an empty perfect signature by value, for embedding
// in generic engines.
func MakePerfect() Perfect {
	return Perfect{keys: make([]uint64, perfectInitCap), entries: make([]Entry, perfectInitCap)}
}

func phash(addr uint64) uint64 {
	addr *= 0x9E3779B97F4A7C15
	return addr ^ (addr >> 29)
}

// Get implements Store.
func (p *Perfect) Get(addr uint64) Entry {
	mask := uint64(len(p.keys) - 1)
	for i := phash(addr) & mask; ; i = (i + 1) & mask {
		if p.keys[i] == addr {
			return p.entries[i]
		}
		if p.keys[i] == 0 {
			return Entry{}
		}
	}
}

// Put implements Store.
func (p *Perfect) Put(addr uint64, e Entry) {
	if p.n*4 >= len(p.keys)*3 {
		p.grow()
	}
	mask := uint64(len(p.keys) - 1)
	for i := phash(addr) & mask; ; i = (i + 1) & mask {
		if p.keys[i] == addr {
			p.entries[i] = e
			return
		}
		if p.keys[i] == 0 {
			p.keys[i] = addr
			p.entries[i] = e
			p.n++
			return
		}
	}
}

// GetSet records e as the latest status of addr and returns the previous
// entry (a zero Entry if none) — Get and Put in a single probe sequence,
// for engine paths that read and immediately overwrite the same address.
func (p *Perfect) GetSet(addr uint64, e Entry) Entry {
	if p.n*4 >= len(p.keys)*3 {
		p.grow()
	}
	mask := uint64(len(p.keys) - 1)
	for i := phash(addr) & mask; ; i = (i + 1) & mask {
		if p.keys[i] == addr {
			old := p.entries[i]
			p.entries[i] = e
			return old
		}
		if p.keys[i] == 0 {
			p.keys[i] = addr
			p.entries[i] = e
			p.n++
			return Entry{}
		}
	}
}

// Remove implements Store.
func (p *Perfect) Remove(addr uint64) {
	mask := uint64(len(p.keys) - 1)
	i := phash(addr) & mask
	for {
		if p.keys[i] == 0 {
			return
		}
		if p.keys[i] == addr {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift deletion keeps probe sequences intact.
	p.n--
	j := i
	for {
		p.keys[i] = 0
		p.entries[i] = Entry{}
		for {
			j = (j + 1) & mask
			if p.keys[j] == 0 {
				return
			}
			k := phash(p.keys[j]) & mask
			// Can slot j's element move into the hole at i?
			if (i <= j && (k <= i || k > j)) || (i > j && k <= i && k > j) {
				break
			}
		}
		p.keys[i] = p.keys[j]
		p.entries[i] = p.entries[j]
		i = j
	}
}

func (p *Perfect) grow() {
	oldK, oldE := p.keys, p.entries
	p.keys = make([]uint64, len(oldK)*2)
	p.entries = make([]Entry, len(oldE)*2)
	p.n = 0
	for i, k := range oldK {
		if k != 0 {
			p.Put(k, oldE[i])
		}
	}
}

// Clear implements Store.
func (p *Perfect) Clear() {
	clear(p.keys)
	clear(p.entries)
	p.n = 0
}

// MemBytes implements Store.
func (p *Perfect) MemBytes() int64 {
	return int64(len(p.keys)) * (8 + 32)
}

// Len returns the number of tracked addresses.
func (p *Perfect) Len() int { return p.n }

// EstimateFPR returns the estimated probability that a given slot is
// occupied after inserting n distinct elements into a signature with m
// slots: 1 - (1 - 1/m)^n (Formula 2.2).
func EstimateFPR(m, n int) float64 {
	if m <= 0 {
		return 1
	}
	return 1 - math.Pow(1-1/float64(m), float64(n))
}
