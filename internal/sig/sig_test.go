package sig

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPerfectMatchesMapReference drives the open-addressing table and a
// plain map with the same random operation sequence and demands identical
// observable behaviour — including the backward-shift deletion paths.
func TestPerfectMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPerfect()
	ref := map[uint64]Entry{}
	for op := 0; op < 200000; op++ {
		addr := uint64(rng.Intn(512) + 1) // small key space forces collisions
		switch rng.Intn(4) {
		case 0, 1: // put
			e := Entry{Info: uint64(rng.Int63()) | 1, Ctx: int32(op), Op: int32(op), TS: uint64(op)}
			p.Put(addr, e)
			ref[addr] = e
		case 2: // get
			if got, want := p.Get(addr), ref[addr]; got != want {
				t.Fatalf("op %d: Get(%d) = %+v, want %+v", op, addr, got, want)
			}
		case 3: // remove
			p.Remove(addr)
			delete(ref, addr)
		}
		if p.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, p.Len(), len(ref))
		}
	}
	for addr, want := range ref {
		if got := p.Get(addr); got != want {
			t.Fatalf("final: Get(%d) = %+v, want %+v", addr, got, want)
		}
	}
}

// TestPerfectGrowth checks growth across several doublings.
func TestPerfectGrowth(t *testing.T) {
	p := NewPerfect()
	n := uint64(100000)
	for a := uint64(1); a <= n; a++ {
		p.Put(a, Entry{Info: a, TS: a})
	}
	if p.Len() != int(n) {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	for a := uint64(1); a <= n; a++ {
		if e := p.Get(a); e.Info != a {
			t.Fatalf("Get(%d).Info = %d", a, e.Info)
		}
	}
	// Remove odd keys, verify even keys survive.
	for a := uint64(1); a <= n; a += 2 {
		p.Remove(a)
	}
	for a := uint64(1); a <= n; a++ {
		e := p.Get(a)
		if a%2 == 1 && !e.Empty() {
			t.Fatalf("removed key %d still present", a)
		}
		if a%2 == 0 && e.Info != a {
			t.Fatalf("surviving key %d lost (info=%d)", a, e.Info)
		}
	}
}

// TestSignatureBasics exercises the approximate signature's contract: a
// put is always observable at the same address until overwritten or
// removed (collisions may alias, but the slot semantics must hold).
func TestSignatureBasics(t *testing.T) {
	s := NewSignature(97)
	s.Put(12345, Entry{Info: 7, TS: 1})
	if e := s.Get(12345); e.Info != 7 {
		t.Fatalf("Get after Put = %+v", e)
	}
	s.Remove(12345)
	if e := s.Get(12345); !e.Empty() {
		t.Fatalf("Get after Remove = %+v", e)
	}
}

// TestSignatureCollisionProperty: two addresses either share a slot (both
// see each other's writes) or are fully independent — never a mix.
func TestSignatureCollisionProperty(t *testing.T) {
	f := func(a, b uint64, infoA, infoB uint64) bool {
		if a == 0 || b == 0 || a == b || infoA == 0 || infoB == 0 {
			return true
		}
		s := NewSignature(64)
		s.Put(a, Entry{Info: infoA})
		s.Put(b, Entry{Info: infoB})
		gotA, gotB := s.Get(a), s.Get(b)
		if gotB.Info != infoB {
			return false // own write must be visible
		}
		// Either collision (a sees b's write) or independence (a intact).
		return gotA.Info == infoB || gotA.Info == infoA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateFPR checks Formula 2.2 empirically: insert n random
// addresses into an m-slot signature and compare occupancy of a probe slot
// with the analytic estimate.
func TestEstimateFPR(t *testing.T) {
	m, n := 1024, 700
	est := EstimateFPR(m, n)
	rng := rand.New(rand.NewSource(7))
	trials, hits := 3000, 0
	for tr := 0; tr < trials; tr++ {
		s := NewSignature(m)
		for i := 0; i < n; i++ {
			s.Put(rng.Uint64()|1, Entry{Info: 1})
		}
		// Probe a fresh address: occupied slot = would-be false positive.
		if !s.Get(rng.Uint64() | 1).Empty() {
			hits++
		}
	}
	got := float64(hits) / float64(trials)
	if math.Abs(got-est) > 0.05 {
		t.Fatalf("empirical FPR %.3f vs estimate %.3f", got, est)
	}
}

// TestEstimateFPRMonotonic: more slots, lower estimated FPR.
func TestEstimateFPRMonotonic(t *testing.T) {
	prev := 1.1
	for _, m := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
		v := EstimateFPR(m, 10000)
		if v >= prev {
			t.Fatalf("FPR estimate not decreasing at m=%d: %f >= %f", m, v, prev)
		}
		prev = v
	}
}

func BenchmarkPerfectPutGet(b *testing.B) {
	p := NewPerfect()
	for i := 0; i < b.N; i++ {
		a := uint64(i%65536 + 1)
		p.Put(a, Entry{Info: a, TS: uint64(i)})
		_ = p.Get(a)
	}
}

func BenchmarkSignaturePutGet(b *testing.B) {
	s := NewSignature(1 << 16)
	for i := 0; i < b.N; i++ {
		a := uint64(i%65536 + 1)
		s.Put(a, Entry{Info: a, TS: uint64(i)})
		_ = s.Get(a)
	}
}

// TestPerfectRemoveBackwardShift stresses the backward-shift deletion with
// adversarially clustered keys: addresses are chosen so that many hash
// into the same probe neighbourhood (including wrap-around at the table
// end), then removed in random order interleaved with re-inserts and gets,
// differentially against a plain map. This is the removal pattern the
// variable lifetime analysis produces when a function's frame dies.
func TestPerfectRemoveBackwardShift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewPerfect()
	mask := uint64(1<<10 - 1) // initial capacity, before any growth
	// Collect addresses by home slot so clusters share probe chains.
	clusters := map[uint64][]uint64{}
	for a := uint64(1); len(clusters[mask]) < 8 || len(clusters[0]) < 8; a++ {
		h := phash(a) & mask
		if h == 0 || h == mask || h == 1 {
			clusters[h] = append(clusters[h], a)
		}
		if a > 1<<20 {
			break
		}
	}
	var addrs []uint64
	for _, c := range clusters {
		addrs = append(addrs, c...)
	}
	if len(addrs) < 12 {
		t.Fatalf("could not construct colliding clusters (got %d addrs)", len(addrs))
	}
	ref := map[uint64]Entry{}
	for round := 0; round < 5000; round++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(3) {
		case 0:
			e := Entry{Info: uint64(round)<<8 | 1, TS: uint64(round)}
			p.Put(a, e)
			ref[a] = e
		case 1:
			p.Remove(a)
			delete(ref, a)
		case 2:
			if got, want := p.Get(a), ref[a]; got != want {
				t.Fatalf("round %d: Get(%d) = %+v, want %+v", round, a, got, want)
			}
		}
	}
	// Drain the clusters completely, verifying every survivor after each
	// removal: a wrong backward shift strands or duplicates entries.
	for _, a := range addrs {
		p.Remove(a)
		delete(ref, a)
		for b, want := range ref {
			if got := p.Get(b); got != want {
				t.Fatalf("after Remove(%d): Get(%d) = %+v, want %+v", a, b, got, want)
			}
		}
	}
	if p.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", p.Len(), len(ref))
	}
}
