package ir

import "sort"

// This file implements the static analyses of Section 3.2.1: determining,
// for every control region, which variables are global to it, and producing
// the ordered sequence of accesses to those variables that the top-down CU
// construction algorithm (Algorithm 3) consumes. Function side effects are
// summarized interprocedurally so that a call statement contributes the
// reads and writes of its callee.

// Effects summarizes the variables a function may read or write: module
// globals (and outer-scope captures) directly, and parameters positionally
// so that by-reference arguments can be mapped through call sites.
type Effects struct {
	ReadG  map[*Var]bool
	WriteG map[*Var]bool
	ReadP  []bool
	WriteP []bool
}

func newEffects(f *Func) *Effects {
	return &Effects{
		ReadG:  map[*Var]bool{},
		WriteG: map[*Var]bool{},
		ReadP:  make([]bool, len(f.Params)),
		WriteP: make([]bool, len(f.Params)),
	}
}

// ComputeEffects returns the side-effect summary of every function in the
// module, iterating to a fixpoint to handle recursion.
func ComputeEffects(m *Module) map[*Func]*Effects {
	eff := make(map[*Func]*Effects, len(m.Funcs))
	for _, f := range m.Funcs {
		eff[f] = newEffects(f)
	}
	paramIdx := func(f *Func, v *Var) int {
		for i, p := range f.Params {
			if p == v {
				return i
			}
		}
		return -1
	}
	changed := true
	for changed {
		changed = false
		for _, f := range m.Funcs {
			e := eff[f]
			record := func(v *Var, write bool) {
				if v.Kind == KGlobal {
					set := e.ReadG
					if write {
						set = e.WriteG
					}
					if !set[v] {
						set[v] = true
						changed = true
					}
					return
				}
				if i := paramIdx(f, v); i >= 0 {
					// By-value params are copies: writes stay local.
					if write && v.ByValue {
						return
					}
					set := e.ReadP
					if write {
						set = e.WriteP
					}
					if !set[i] {
						set[i] = true
						changed = true
					}
				}
			}
			var visitExpr func(x Expr)
			visitCall := func(c *CallExpr) {
				ce := eff[c.Callee]
				if ce == nil {
					return
				}
				for v := range ce.ReadG {
					record(v, false)
				}
				for v := range ce.WriteG {
					record(v, true)
				}
				for i, a := range c.Args {
					if i >= len(ce.ReadP) {
						break
					}
					if r, ok := a.(*Ref); ok && r.Index == nil {
						// Whole-variable argument: reads/writes flow to it.
						if ce.ReadP[i] {
							record(r.Var, false)
						}
						if ce.WriteP[i] && !c.Callee.Params[i].ByValue {
							record(r.Var, true)
						}
					} else {
						visitExpr(a)
					}
					if ce.ReadP[i] || c.Callee.Params[i].ByValue {
						visitExpr(a)
					}
				}
			}
			visitExpr = func(x Expr) {
				WalkExprs(x, func(e2 Expr) {
					switch n := e2.(type) {
					case *Ref:
						record(n.Var, false)
					case *CallExpr:
						visitCall(n)
					}
				})
			}
			Walk(f.Body, func(s Stmt) {
				switch n := s.(type) {
				case *Assign:
					record(n.Dst.Var, true)
				case *Free:
					record(n.Var, true)
				}
				StmtExprs(s, visitExpr)
			})
		}
	}
	return eff
}

// Scope is the result of the module-wide scope analysis.
type Scope struct {
	Module  *Module
	Effects map[*Func]*Effects
	regions map[*Region]*RegionScope
}

// RegionScope holds scope facts for one region.
type RegionScope struct {
	Region *Region
	// GlobalVars are the variables global to the region (declared outside
	// it), in Var.ID order — the GV_c set of Equation 3.1.
	GlobalVars []*Var
	// Uses is every variable referenced anywhere in the region's subtree.
	Uses map[*Var]bool
	// IndVarWritten reports, for loop regions, whether the iteration
	// variable is assigned inside the body (Section 3.2.5).
	IndVarWritten bool
}

// AnalyzeScopes computes global/local variable classification for every
// region in the module.
func AnalyzeScopes(m *Module) *Scope {
	sc := &Scope{Module: m, Effects: ComputeEffects(m), regions: map[*Region]*RegionScope{}}
	for _, r := range m.Regions {
		sc.regions[r] = sc.analyzeRegion(r)
	}
	return sc
}

// Of returns the scope facts for region r.
func (sc *Scope) Of(r *Region) *RegionScope { return sc.regions[r] }

// regionBody returns the statements forming the region's body.
func regionBody(r *Region) []Stmt {
	switch n := r.Stmt.(type) {
	case nil:
		return r.Func.Body.List
	case *For:
		return n.Body.List
	case *While:
		return n.Body.List
	case *If:
		out := append([]Stmt{}, n.Then.List...)
		if n.Else != nil {
			out = append(out, n.Else.List...)
		}
		return out
	}
	return nil
}

func (sc *Scope) analyzeRegion(r *Region) *RegionScope {
	rs := &RegionScope{Region: r, Uses: map[*Var]bool{}}
	var record func(v *Var)
	record = func(v *Var) { rs.Uses[v] = true }
	var visitExpr func(x Expr)
	visitExpr = func(x Expr) {
		WalkExprs(x, func(e Expr) {
			switch n := e.(type) {
			case *Ref:
				record(n.Var)
			case *CallExpr:
				ce := sc.Effects[n.Callee]
				if ce == nil {
					return
				}
				for v := range ce.ReadG {
					record(v)
				}
				for v := range ce.WriteG {
					record(v)
				}
			}
		})
	}
	var iv *Var
	if f, ok := r.Stmt.(*For); ok {
		iv = f.IndVar
		record(iv)
	}
	for _, s := range regionBody(r) {
		Walk(s, func(st Stmt) {
			if a, ok := st.(*Assign); ok {
				record(a.Dst.Var)
				if iv != nil && a.Dst.Var == iv {
					rs.IndVarWritten = true
				}
			}
			if fr, ok := st.(*Free); ok {
				record(fr.Var)
			}
			StmtExprs(st, visitExpr)
		})
	}
	for v := range rs.Uses {
		if sc.globalTo(v, r, rs) {
			rs.GlobalVars = append(rs.GlobalVars, v)
		}
	}
	sort.Slice(rs.GlobalVars, func(i, j int) bool {
		return rs.GlobalVars[i].ID < rs.GlobalVars[j].ID
	})
	return rs
}

// globalTo reports whether v is global to region r under the rules of
// Sections 3.2.1 and 3.2.5.
func (sc *Scope) globalTo(v *Var, r *Region, rs *RegionScope) bool {
	if v.Kind == KGlobal {
		return true
	}
	// The loop's own iteration variable is local to the loop by default,
	// global only if written in the body.
	if f, ok := r.Stmt.(*For); ok && f.IndVar == v {
		return rs.IndVarWritten
	}
	// Parameters are global to every region of their function: they are in
	// the function's read set.
	if v.Kind == KParam {
		return true
	}
	// A local is global to r if declared outside r's subtree.
	if v.DeclRegion == nil {
		return true
	}
	return !r.Encloses(v.DeclRegion)
}

// ---------------------------------------------------------------------------
// Ordered access sequences for CU construction.

// VarAccess is one static read or write of a variable at a source location.
type VarAccess struct {
	Loc   Loc
	Var   *Var
	Write bool
}

// SeqItem is one element of a region's body sequence: either a leaf
// statement with its ordered variable accesses, or a nested child region
// (which CU sections may not cross).
type SeqItem struct {
	Child *Region // non-nil for nested regions
	Stmt  Stmt
	Loc   Loc
	Accs  []VarAccess // for leaf statements: reads first, then writes
}

// Sequence returns the ordered body sequence of region r. Leaf statements
// contribute their reads (in evaluation order) followed by their writes;
// calls contribute the callee's summarized effects at the call line.
func (sc *Scope) Sequence(r *Region) []SeqItem {
	var out []SeqItem
	for _, s := range regionBody(r) {
		out = append(out, sc.seqOf(s)...)
	}
	return out
}

func (sc *Scope) seqOf(s Stmt) []SeqItem {
	switch n := s.(type) {
	case *For:
		return []SeqItem{{Child: n.Region, Stmt: s, Loc: n.Loc}}
	case *While:
		return []SeqItem{{Child: n.Region, Stmt: s, Loc: n.Loc}}
	case *If:
		return []SeqItem{{Child: n.Region, Stmt: s, Loc: n.Loc}}
	case *BlockStmt:
		var out []SeqItem
		for _, c := range n.List {
			out = append(out, sc.seqOf(c)...)
		}
		return out
	case *LockRegion:
		var out []SeqItem
		for _, c := range n.Body.List {
			out = append(out, sc.seqOf(c)...)
		}
		return out
	}
	item := SeqItem{Stmt: s, Loc: s.Location()}
	addRead := func(v *Var, loc Loc) {
		item.Accs = append(item.Accs, VarAccess{Loc: loc, Var: v, Write: false})
	}
	addWrite := func(v *Var, loc Loc) {
		item.Accs = append(item.Accs, VarAccess{Loc: loc, Var: v, Write: true})
	}
	var visitExpr func(x Expr, loc Loc)
	visitExpr = func(x Expr, loc Loc) {
		WalkExprs(x, func(e Expr) {
			switch en := e.(type) {
			case *Ref:
				addRead(en.Var, loc)
			case *CallExpr:
				ce := sc.Effects[en.Callee]
				if ce == nil {
					return
				}
				for _, v := range sortedVars(ce.ReadG) {
					addRead(v, loc)
				}
				for i, a := range en.Args {
					if r, ok := a.(*Ref); ok && r.Index == nil && i < len(ce.WriteP) &&
						ce.WriteP[i] && !en.Callee.Params[i].ByValue {
						addWrite(r.Var, loc)
					}
				}
				for _, v := range sortedVars(ce.WriteG) {
					addWrite(v, loc)
				}
			}
		})
	}
	loc := s.Location()
	switch n := s.(type) {
	case *Assign:
		if n.Dst.Index != nil {
			visitExpr(n.Dst.Index, loc)
		}
		visitExpr(n.Src, loc)
		addWrite(n.Dst.Var, loc)
	case *CallStmt:
		visitExpr(n.Call, loc)
	case *Spawn:
		visitExpr(n.Call, loc)
	case *Return:
		if n.Val != nil {
			visitExpr(n.Val, loc)
		}
	case *Free:
		addWrite(n.Var, loc)
	}
	return []SeqItem{item}
}

func sortedVars(set map[*Var]bool) []*Var {
	out := make([]*Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
