package ir

import (
	"strings"
	"testing"
)

func buildNested() (*Module, map[string]*Region) {
	regions := map[string]*Region{}
	b := NewBuilder("nested")
	g := b.Global("g", F64)
	fb := b.Func("main")
	x := fb.Local("x", F64)
	fb.Set(x, CF(1))
	regions["outer"] = fb.For("i", CI(0), CI(3), CI(1), func(i *Var) {
		y := fb.Local("y", F64)
		fb.Set(y, V(i))
		regions["inner"] = fb.For("j", CI(0), CI(2), CI(1), func(j *Var) {
			fb.Set(g, Add(V(g), Mul(V(y), V(j))))
		})
		fb.IfElse(Gt(V(y), CF(1)), func() {
			fb.Set(x, V(y))
		}, func() {
			fb.Set(x, CF(0))
		})
	})
	m := b.Build(fb.Done())
	return m, regions
}

func TestBuilderRegionNesting(t *testing.T) {
	m, regions := buildNested()
	outer, inner := regions["outer"], regions["inner"]
	if !outer.Encloses(inner) {
		t.Error("outer does not enclose inner")
	}
	if inner.Encloses(outer) {
		t.Error("inner encloses outer")
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if outer.Depth() != 1 || inner.Depth() != 2 {
		t.Errorf("depths = %d, %d, want 1, 2", outer.Depth(), inner.Depth())
	}
	if m.Main.Region.Depth() != 0 {
		t.Errorf("function region depth = %d", m.Main.Region.Depth())
	}
	// Exactly: function, outer loop, inner loop, branch.
	if len(m.Regions) != 4 {
		t.Errorf("region count = %d, want 4", len(m.Regions))
	}
}

func TestBuilderLineMonotonicity(t *testing.T) {
	m, _ := buildNested()
	var last int32
	Walk(m.Main.Body, func(s Stmt) {
		l := s.Location().Line
		if l < last && l != 0 {
			// Lines of nested statements always increase in emission
			// order within a file.
			t.Errorf("line %d after %d", l, last)
		}
		if l > last {
			last = l
		}
	})
	if last == 0 {
		t.Fatal("no lines assigned")
	}
}

func TestRegionAt(t *testing.T) {
	m, regions := buildNested()
	inner := regions["inner"]
	body := inner.Stmt.(*For).Body.List[0].Location()
	got := m.RegionAt(body)
	if got != inner {
		t.Errorf("RegionAt(%v) = %v, want inner", body, got)
	}
}

func TestLocKeyRoundTrip(t *testing.T) {
	for _, l := range []Loc{{1, 1}, {2, 9999}, {1023, 1 << 20}} {
		if got := LocFromKey(l.Key()); got != l {
			t.Errorf("round trip %v -> %v", l, got)
		}
	}
}

func TestScopeGlobalVars(t *testing.T) {
	m, regions := buildNested()
	sc := AnalyzeScopes(m)
	inner := sc.Of(regions["inner"])
	// Inner loop uses: g (module global), y (declared in outer body), j
	// (own index, unwritten -> local).
	names := map[string]bool{}
	for _, v := range inner.GlobalVars {
		names[v.Name] = true
	}
	if !names["g"] || !names["y"] {
		t.Errorf("inner globalVars = %v, want g and y", names)
	}
	if names["j"] {
		t.Error("unwritten loop index j must be local to its loop (§3.2.5)")
	}
	outer := sc.Of(regions["outer"])
	onames := map[string]bool{}
	for _, v := range outer.GlobalVars {
		onames[v.Name] = true
	}
	if onames["y"] {
		t.Error("y is declared inside outer's body: local to outer")
	}
	if !onames["x"] || !onames["g"] {
		t.Errorf("outer globalVars = %v, want x and g", onames)
	}
}

func TestScopeIndVarWritten(t *testing.T) {
	b := NewBuilder("ivw")
	fb := b.Func("main")
	var loop *Region
	loop = fb.While(CF(0), func() {}) // placeholder to silence unused
	_ = loop
	r := fb.For("i", CI(0), CI(10), CI(1), func(i *Var) {
		// Writing the index inside the body makes it global (§3.2.5).
		fb.Set(i, Add(V(i), CI(1)))
	})
	m := b.Build(fb.Done())
	sc := AnalyzeScopes(m)
	if !sc.Of(r).IndVarWritten {
		t.Fatal("IndVarWritten not detected")
	}
	found := false
	for _, v := range sc.Of(r).GlobalVars {
		if v.Name == "i" {
			found = true
		}
	}
	if !found {
		t.Fatal("written index variable must be global to the loop")
	}
}

func TestEffectsByRefParams(t *testing.T) {
	b := NewBuilder("fx")
	g := b.Global("g", F64)
	callee := b.FuncRet("inc")
	arr := callee.RefParam("arr", F64, 4)
	byval := callee.Param("v", F64)
	callee.SetAt(arr, CI(0), Add(At(arr, CI(0)), V(byval)))
	callee.Set(g, CF(1))
	callee.Return(At(arr, CI(0)))
	calleeF := callee.Done()

	fb := b.Func("main")
	local := fb.Array("local", F64, 4)
	dst := fb.Local("dst", F64)
	fb.CallInto(V(dst), calleeF, V(local), CF(2))
	m := b.Build(fb.Done())

	eff := ComputeEffects(m)
	ce := eff[calleeF]
	if !ce.WriteG[g] {
		t.Error("callee's global write not summarized")
	}
	if !ce.ReadP[0] || !ce.WriteP[0] {
		t.Error("by-ref param reads/writes not summarized")
	}
	if ce.WriteP[1] {
		t.Error("by-value param marked written")
	}
	// The caller's effect summary must include the flow through the
	// by-ref argument... main has no callers, but the Sequence of main's
	// body must attribute a write to `local` at the call line.
	sc := AnalyzeScopes(m)
	seq := sc.Sequence(m.Main.Region)
	foundWrite := false
	for _, item := range seq {
		for _, a := range item.Accs {
			if a.Var == local && a.Write {
				foundWrite = true
			}
		}
	}
	if !foundWrite {
		t.Error("call does not propagate by-ref write to argument variable")
	}
}

func TestEffectsRecursion(t *testing.T) {
	b := NewBuilder("rec")
	g := b.Global("acc", F64)
	f := b.Forward("down", false)
	fb := b.DefineForward(f)
	n := fb.Param("n", F64)
	fb.If(Gt(V(n), CI(0)), func() {
		fb.Set(g, Add(V(g), V(n)))
		fb.Call(f, Sub(V(n), CI(1)))
	})
	fb.Done()
	mb := b.Func("main")
	mb.Call(f, CI(3))
	m := b.Build(mb.Done())
	eff := ComputeEffects(m)
	if !eff[f].WriteG[g] || !eff[f].ReadG[g] {
		t.Fatalf("recursive effects missing: %+v", eff[f])
	}
}

func TestPrintRendersProgram(t *testing.T) {
	m, _ := buildNested()
	out := Print(m)
	for _, frag := range []string{"module nested", "func main", "for i", "for j", "if", "global f64 g[1]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("print output missing %q:\n%s", frag, out)
		}
	}
}

func TestExprString(t *testing.T) {
	b := NewBuilder("es")
	fb := b.Func("main")
	x := fb.Local("x", F64)
	_ = fb
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(V(x), CI(1)), "(x + 1)"},
		{At(x, CI(0)), "x[0]"},
		{Sqrt(V(x)), "sqrt(x)"},
		{Rnd(), "rand()"},
		{Min(CF(1.5), V(x)), "(1.5 min x)"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestBinOpCommutative(t *testing.T) {
	comm := []BinOp{OpAdd, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax}
	nonComm := []BinOp{OpSub, OpDiv, OpMod, OpShl, OpShr, OpLt, OpEq}
	for _, op := range comm {
		if !op.Commutative() {
			t.Errorf("%v should be commutative", op)
		}
	}
	for _, op := range nonComm {
		if op.Commutative() {
			t.Errorf("%v should not be commutative", op)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	m, _ := buildNested()
	count := 0
	Walk(m.Main.Body, func(Stmt) { count++ })
	// block + set + for + block + set + for + block + set + if + 2 blocks
	// + 2 sets = 13.
	if count < 10 {
		t.Errorf("Walk visited only %d statements", count)
	}
}

func TestCFGBranchAndLoopKinds(t *testing.T) {
	m, _ := buildNested()
	cfg := BuildCFG(m.Main)
	var loops, branches int
	for _, bb := range cfg.Blocks {
		switch bb.Kind {
		case BBLoopHead:
			loops++
		case BBBranch:
			branches++
		}
	}
	if loops != 2 || branches != 1 {
		t.Errorf("loops=%d branches=%d, want 2 and 1", loops, branches)
	}
}
