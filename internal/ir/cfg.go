package ir

// This file lowers the structured AST to a basic-block control-flow graph.
// The CFG is the input of the control-dependence analyses of Section 3.2.2:
// finding re-convergence points of branches and loops via post-dominators,
// and the dynamic look-ahead variant that simulates the paper's
// binary-level analysis.

// BBKind classifies basic blocks.
type BBKind uint8

const (
	// BBPlain is a straight-line block.
	BBPlain BBKind = iota
	// BBBranch ends in a two-way conditional branch (if).
	BBBranch
	// BBLoopHead is a loop header testing the loop condition.
	BBLoopHead
	// BBEntry is the function entry block.
	BBEntry
	// BBExit is the unique function exit block.
	BBExit
)

// BB is a basic block of the lowered CFG.
type BB struct {
	ID    int
	Kind  BBKind
	Loc   Loc
	Stmts []Stmt
	Succs []*BB
	Preds []*BB
	// Region is the innermost region the block belongs to.
	Region *Region
}

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn     *Func
	Blocks []*BB
	Entry  *BB
	Exit   *BB
}

type cfgBuilder struct {
	cfg *CFG
}

func (cb *cfgBuilder) newBB(kind BBKind, loc Loc, region *Region) *BB {
	b := &BB{ID: len(cb.cfg.Blocks), Kind: kind, Loc: loc, Region: region}
	cb.cfg.Blocks = append(cb.cfg.Blocks, b)
	return b
}

func link(from, to *BB) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// BuildCFG lowers function f to a CFG. Every path reaches the unique exit
// block; Return statements branch to it directly.
func BuildCFG(f *Func) *CFG {
	cb := &cfgBuilder{cfg: &CFG{Fn: f}}
	entry := cb.newBB(BBEntry, f.Loc, f.Region)
	exit := cb.newBB(BBExit, f.EndLoc, f.Region)
	cb.cfg.Entry = entry
	cb.cfg.Exit = exit
	last := cb.lowerBlock(f.Body, entry, exit, f.Region)
	if last != nil {
		link(last, exit)
	}
	return cb.cfg
}

// lowerBlock lowers the statements of blk starting in cur. It returns the
// block control falls out of, or nil if the tail is unreachable (ends in
// return).
func (cb *cfgBuilder) lowerBlock(blk *BlockStmt, cur, exit *BB, region *Region) *BB {
	for _, s := range blk.List {
		if cur == nil {
			return nil
		}
		switch n := s.(type) {
		case *If:
			head := cur
			head.Stmts = append(head.Stmts, s)
			head.Kind = BBBranch
			join := cb.newBB(BBPlain, n.Region.End, region)
			thenEntry := cb.newBB(BBPlain, n.Then.Loc, n.Region)
			link(head, thenEntry)
			if thenLast := cb.lowerBlock(n.Then, thenEntry, exit, n.Region); thenLast != nil {
				link(thenLast, join)
			}
			if n.Else != nil {
				elseEntry := cb.newBB(BBPlain, n.Else.Loc, n.Region)
				link(head, elseEntry)
				if elseLast := cb.lowerBlock(n.Else, elseEntry, exit, n.Region); elseLast != nil {
					link(elseLast, join)
				}
			} else {
				link(head, join)
			}
			cur = join
		case *For:
			cur = cb.lowerLoop(s, n.Region, n.Body, cur, exit, region, n.Loc, n.EndLoc)
		case *While:
			cur = cb.lowerLoop(s, n.Region, n.Body, cur, exit, region, n.Loc, n.EndLoc)
		case *Return:
			cur.Stmts = append(cur.Stmts, s)
			link(cur, exit)
			cur = nil
		case *LockRegion:
			cur.Stmts = append(cur.Stmts, s)
			cur = cb.lowerBlock(n.Body, cur, exit, region)
		case *BlockStmt:
			cur = cb.lowerBlock(n, cur, exit, region)
		default:
			cur.Stmts = append(cur.Stmts, s)
		}
	}
	return cur
}

func (cb *cfgBuilder) lowerLoop(s Stmt, reg *Region, body *BlockStmt, cur, exit *BB,
	outer *Region, loc, endLoc Loc) *BB {
	head := cb.newBB(BBLoopHead, loc, outer)
	head.Stmts = append(head.Stmts, s)
	link(cur, head)
	bodyEntry := cb.newBB(BBPlain, body.Loc, reg)
	follow := cb.newBB(BBPlain, endLoc, outer)
	link(head, bodyEntry)
	link(head, follow)
	if bodyLast := cb.lowerBlock(body, bodyEntry, exit, reg); bodyLast != nil {
		link(bodyLast, head)
	}
	return follow
}
