// Package ir defines the intermediate representation used by the DiscoPoP-Go
// framework. It plays the role LLVM IR plays in the paper: workloads are
// constructed as modules of functions over scalar and array variables, every
// statement carries a source location (fileID:line), and control constructs
// (functions, loops, branches) define the control regions that the profiler,
// the computational-unit builder, and the discovery algorithms reason about.
//
// The representation is a structured three-address-style AST rather than a
// textual IR; a lowering pass (see cfg.go) produces a basic-block CFG for the
// control-dependence analyses of Chapter 3.
package ir

import (
	"fmt"
	"sync"
)

// Type is the scalar type of a variable. The runtime representation is
// uniformly float64 (exact for integers below 2^53); the declared type is
// retained for printing and for the feature extraction of Chapter 5.
type Type uint8

const (
	// I64 is a 64-bit integer variable.
	I64 Type = iota
	// F64 is a double-precision floating-point variable.
	F64
)

func (t Type) String() string {
	if t == I64 {
		return "i64"
	}
	return "f64"
}

// Loc is a source-code location, the <fileID:lineID> pair of the paper's
// dependence representation (Section 2.3.1).
type Loc struct {
	File int32
	Line int32
}

func (l Loc) String() string { return fmt.Sprintf("%d:%d", l.File, l.Line) }

// Key packs a Loc into a comparable 64-bit key.
func (l Loc) Key() uint64 { return uint64(uint32(l.File))<<32 | uint64(uint32(l.Line)) }

// LocFromKey unpacks a key produced by Loc.Key.
func LocFromKey(k uint64) Loc {
	return Loc{File: int32(k >> 32), Line: int32(uint32(k))}
}

// VarKind classifies where a variable is declared. The distinction between
// variables global and local to a region drives CU construction (Section 3.2.1).
type VarKind uint8

const (
	// KGlobal is a module-level variable, global to every region.
	KGlobal VarKind = iota
	// KParam is a function parameter.
	KParam
	// KLocal is a variable declared inside a function or a nested block.
	KLocal
)

func (k VarKind) String() string {
	switch k {
	case KGlobal:
		return "global"
	case KParam:
		return "param"
	default:
		return "local"
	}
}

// Var is a named storage location: a scalar (Elems == 1) or a contiguous
// array of Elems scalars. Vars are the unit of the paper's variable lifetime
// analysis and of the globalVars sets used in Algorithm 3.
type Var struct {
	ID      int // module-unique
	Name    string
	Kind    VarKind
	Type    Type
	Elems   int  // number of scalar elements; 1 for scalars
	ByValue bool // for params: passed by value (copied) vs by reference
	Heap    bool // allocated on the simulated heap (explicit Free possible)
	Decl    Loc
	// DeclRegion is the region in whose body the variable is declared
	// (nil for module globals).
	DeclRegion *Region
	// Func is the function owning the variable (nil for module globals).
	Func *Func
	// ParamOp is the static memory-operation ID of the parameter-binding
	// store for by-value parameters, assigned by interp.PrepareOps; 0
	// otherwise. Without it every parameter store in the module would
	// share one operation identity, aliasing the per-operation state of
	// the skip optimization and the profiler's line counters.
	ParamOp int32
}

func (v *Var) String() string { return v.Name }

// IsArray reports whether v has more than one element.
func (v *Var) IsArray() bool { return v.Elems > 1 }

// RegionKind classifies control regions (Section 2.3.6).
type RegionKind uint8

const (
	// RFunc is a function body region.
	RFunc RegionKind = iota
	// RLoop is a loop body region (for or while).
	RLoop
	// RBranch is an if/else region.
	RBranch
)

func (k RegionKind) String() string {
	switch k {
	case RFunc:
		return "function"
	case RLoop:
		return "loop"
	default:
		return "branch"
	}
}

// Region is a single-entry control region: a function body, a loop, or a
// branch. Regions nest; CUs never cross region boundaries (Section 3.1).
type Region struct {
	ID       int
	Kind     RegionKind
	Start    Loc
	End      Loc
	Parent   *Region
	Children []*Region
	Func     *Func
	// Stmt is the defining statement: *For or *While for RLoop, *If for
	// RBranch, nil for RFunc.
	Stmt Stmt
}

func (r *Region) String() string {
	return fmt.Sprintf("%s %s-%s", r.Kind, r.Start, r.End)
}

// Encloses reports whether r (strictly or not) encloses s.
func (r *Region) Encloses(s *Region) bool {
	for ; s != nil; s = s.Parent {
		if s == r {
			return true
		}
	}
	return false
}

// Depth returns the nesting depth of the region (function body = 0).
func (r *Region) Depth() int {
	d := 0
	for p := r.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Func is a function definition.
type Func struct {
	ID     int
	Name   string
	Params []*Var
	HasRet bool
	RetTyp Type
	Body   *BlockStmt
	Loc    Loc
	EndLoc Loc
	Region *Region
	Module *Module
	// Locals lists every local declared anywhere in the function, in
	// declaration order, for frame allocation by the interpreter.
	Locals []*Var
}

func (f *Func) String() string { return f.Name }

// Module is the top-level IR container, mirroring an LLVM module.
type Module struct {
	Name    string
	Files   []string
	Funcs   []*Func
	Globals []*Var
	Regions []*Region // all regions, indexed by Region.ID
	Vars    []*Var    // all vars, indexed by Var.ID
	// Main is the entry function.
	Main *Func

	// opsOnce guards the one-time static memory-operation numbering (see
	// NumberOps). Numbering is deterministic, so recording it once lets
	// every later request read instead of re-writing Ref.Op fields that
	// concurrent analyses of the same module may be reading.
	opsOnce sync.Once
	numOps  int32

	// hashOnce guards the one-time structural content hash (see
	// ContentHash). The hash keys the bytecode compile cache: two module
	// instances built from the same workload spec hash identically, so a
	// program compiled for one replays on the other.
	hashOnce sync.Once
	hash     [32]byte
}

// NumberOps runs the static memory-operation numbering exactly once per
// module (synchronized) and returns the recorded operation count on every
// call. The numbering function must be deterministic; interp.PrepareOps is
// the canonical caller.
func (m *Module) NumberOps(number func(*Module) int32) int32 {
	m.opsOnce.Do(func() { m.numOps = number(m) })
	return m.numOps
}

// ContentHash computes the module's structural content hash exactly once
// per instance (synchronized) and returns the recorded digest on every
// call. The hash function must be deterministic and must cover everything
// that affects execution; bytecode.ModuleHash is the canonical caller.
func (m *Module) ContentHash(hash func(*Module) [32]byte) [32]byte {
	m.hashOnce.Do(func() { m.hash = hash(m) })
	return m.hash
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Loops returns every loop region of the module, in region-ID order.
func (m *Module) Loops() []*Region {
	var out []*Region
	for _, r := range m.Regions {
		if r.Kind == RLoop {
			out = append(out, r)
		}
	}
	return out
}

// RegionAt returns the innermost region whose [Start,End] line span of the
// same file contains loc, or nil.
func (m *Module) RegionAt(loc Loc) *Region {
	var best *Region
	for _, r := range m.Regions {
		if r.Start.File != loc.File {
			continue
		}
		if r.Start.Line <= loc.Line && loc.Line <= r.End.Line {
			if best == nil || best.Encloses(r) {
				best = r
			}
		}
	}
	return best
}
