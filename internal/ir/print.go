package ir

import (
	"fmt"
	"strings"
)

// Print renders the module in a human-readable pseudo-C form, one statement
// per line, annotated with <fileID:lineID> locations. It is the equivalent
// of an LLVM assembly dump for this IR.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s %s[%d]\n", g.Type, g.Name, g.Elems)
	}
	for _, f := range m.Funcs {
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Func) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		mode := "byref"
		if p.ByValue {
			mode = "byval"
		}
		params[i] = fmt.Sprintf("%s %s %s", p.Type, mode, p.Name)
	}
	fmt.Fprintf(sb, "\n%s func %s(%s) {\n", f.Loc, f.Name, strings.Join(params, ", "))
	printBlock(sb, f.Body, 1)
	fmt.Fprintf(sb, "%s }\n", f.EndLoc)
}

func printBlock(sb *strings.Builder, b *BlockStmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, v := range b.Decls {
		kind := ""
		if v.Heap {
			kind = " heap"
		}
		fmt.Fprintf(sb, "%s %svar%s %s %s[%d]\n", v.Decl, ind, kind, v.Type, v.Name, v.Elems)
	}
	for _, s := range b.List {
		printStmt(sb, s, depth)
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch n := s.(type) {
	case *Assign:
		fmt.Fprintf(sb, "%s %s%s = %s\n", n.Loc, ind, ExprString(n.Dst), ExprString(n.Src))
	case *If:
		fmt.Fprintf(sb, "%s %sif %s {\n", n.Loc, ind, ExprString(n.Cond))
		printBlock(sb, n.Then, depth+1)
		if n.Else != nil {
			fmt.Fprintf(sb, "%s %s} else {\n", n.Else.Loc, ind)
			printBlock(sb, n.Else, depth+1)
		}
		fmt.Fprintf(sb, "%s %s}\n", n.Region.End, ind)
	case *For:
		fmt.Fprintf(sb, "%s %sfor %s = %s; %s < %s; %s += %s {\n", n.Loc, ind,
			n.IndVar.Name, ExprString(n.From), n.IndVar.Name, ExprString(n.To),
			n.IndVar.Name, ExprString(n.Step))
		printBlock(sb, n.Body, depth+1)
		fmt.Fprintf(sb, "%s %s}\n", n.EndLoc, ind)
	case *While:
		fmt.Fprintf(sb, "%s %swhile %s {\n", n.Loc, ind, ExprString(n.Cond))
		printBlock(sb, n.Body, depth+1)
		fmt.Fprintf(sb, "%s %s}\n", n.EndLoc, ind)
	case *CallStmt:
		fmt.Fprintf(sb, "%s %s%s\n", n.Loc, ind, ExprString(n.Call))
	case *Return:
		if n.Val != nil {
			fmt.Fprintf(sb, "%s %sreturn %s\n", n.Loc, ind, ExprString(n.Val))
		} else {
			fmt.Fprintf(sb, "%s %sreturn\n", n.Loc, ind)
		}
	case *Spawn:
		fmt.Fprintf(sb, "%s %sspawn %s\n", n.Loc, ind, ExprString(n.Call))
	case *Sync:
		fmt.Fprintf(sb, "%s %ssync\n", n.Loc, ind)
	case *LockRegion:
		fmt.Fprintf(sb, "%s %slock(%d) {\n", n.Loc, ind, n.MutexID)
		printBlock(sb, n.Body, depth+1)
		fmt.Fprintf(sb, "%s %s}\n", n.Loc, ind)
	case *Free:
		fmt.Fprintf(sb, "%s %sfree(%s)\n", n.Loc, ind, n.Var.Name)
	case *BlockStmt:
		printBlock(sb, n, depth)
	}
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch n := e.(type) {
	case *Const:
		if n.Typ == I64 {
			return fmt.Sprintf("%d", int64(n.Val))
		}
		return fmt.Sprintf("%g", n.Val)
	case *Ref:
		if n.Index == nil {
			return n.Var.Name
		}
		return fmt.Sprintf("%s[%s]", n.Var.Name, ExprString(n.Index))
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", ExprString(n.L), n.Op, ExprString(n.R))
	case *Un:
		return fmt.Sprintf("%s(%s)", n.Op, ExprString(n.X))
	case *Rand:
		return "rand()"
	case *CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", n.Callee.Name, strings.Join(args, ", "))
	}
	return "?"
}
