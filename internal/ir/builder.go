package ir

import "fmt"

// Builder constructs a Module. It assigns monotonically increasing source
// lines to emitted statements so that profiled dependences refer to
// realistic, distinct <fileID:lineID> locations, and it maintains the region
// tree as control constructs are opened and closed.
type Builder struct {
	m        *Module
	file     int32
	lines    map[int32]int32 // next free line per file
	nextVar  int
	nextReg  int
	nextFunc int
}

// NewBuilder returns a Builder for a module with the given name. The module
// starts with a single source file (fileID 1) named after the module.
func NewBuilder(name string) *Builder {
	b := &Builder{
		m:     &Module{Name: name, Files: []string{"", name + ".c"}},
		file:  1,
		lines: map[int32]int32{1: 1},
	}
	return b
}

// File adds a new source file to the module and makes it current. Subsequent
// statements are attributed to it. Returns the file ID.
func (b *Builder) File(name string) int32 {
	b.m.Files = append(b.m.Files, name)
	b.file = int32(len(b.m.Files) - 1)
	if _, ok := b.lines[b.file]; !ok {
		b.lines[b.file] = 1
	}
	return b.file
}

func (b *Builder) nextLoc() Loc {
	l := Loc{File: b.file, Line: b.lines[b.file]}
	b.lines[b.file]++
	return l
}

func (b *Builder) newVar(name string, kind VarKind, t Type, elems int, loc Loc) *Var {
	v := &Var{ID: b.nextVar, Name: name, Kind: kind, Type: t, Elems: elems, Decl: loc}
	b.nextVar++
	b.m.Vars = append(b.m.Vars, v)
	return v
}

// Global declares a module-level scalar variable.
func (b *Builder) Global(name string, t Type) *Var {
	v := b.newVar(name, KGlobal, t, 1, b.nextLoc())
	b.m.Globals = append(b.m.Globals, v)
	return v
}

// GlobalArray declares a module-level array of elems scalars.
func (b *Builder) GlobalArray(name string, t Type, elems int) *Var {
	v := b.newVar(name, KGlobal, t, elems, b.nextLoc())
	b.m.Globals = append(b.m.Globals, v)
	return v
}

// Forward declares a function so that it can be called before being defined
// (mutual recursion). Define it later with DefineForward.
func (b *Builder) Forward(name string, hasRet bool) *Func {
	f := &Func{ID: b.nextFunc, Name: name, HasRet: hasRet, RetTyp: F64, Module: b.m}
	b.nextFunc++
	b.m.Funcs = append(b.m.Funcs, f)
	return f
}

// Func opens a new function definition.
func (b *Builder) Func(name string) *FuncBuilder {
	return b.DefineForward(b.Forward(name, false))
}

// FuncRet opens a new function definition that returns a value.
func (b *Builder) FuncRet(name string) *FuncBuilder {
	return b.DefineForward(b.Forward(name, true))
}

// DefineForward opens the body of a previously forward-declared function.
func (b *Builder) DefineForward(f *Func) *FuncBuilder {
	loc := b.nextLoc()
	f.Loc = loc
	reg := &Region{ID: b.nextReg, Kind: RFunc, Start: loc, Func: f}
	b.nextReg++
	b.m.Regions = append(b.m.Regions, reg)
	f.Region = reg
	body := &BlockStmt{Loc: loc}
	f.Body = body
	fb := &FuncBuilder{b: b, f: f}
	fb.blocks = []*BlockStmt{body}
	fb.regions = []*Region{reg}
	return fb
}

// Build finalizes the module with main as the entry function.
func (b *Builder) Build(main *Func) *Module {
	b.m.Main = main
	return b.m
}

// Module returns the module under construction.
func (b *Builder) Module() *Module { return b.m }

// FuncBuilder emits statements into a function body. Control constructs
// take closures that populate the nested block.
type FuncBuilder struct {
	b       *Builder
	f       *Func
	blocks  []*BlockStmt
	regions []*Region
}

// F returns the function being built (usable for recursive calls).
func (fb *FuncBuilder) F() *Func { return fb.f }

func (fb *FuncBuilder) cur() *BlockStmt    { return fb.blocks[len(fb.blocks)-1] }
func (fb *FuncBuilder) curRegion() *Region { return fb.regions[len(fb.regions)-1] }

func (fb *FuncBuilder) emit(s Stmt) { fb.cur().List = append(fb.cur().List, s) }

func (fb *FuncBuilder) pushRegion(kind RegionKind, loc Loc, s Stmt) *Region {
	parent := fb.curRegion()
	reg := &Region{ID: fb.b.nextReg, Kind: kind, Start: loc, Parent: parent, Func: fb.f, Stmt: s}
	fb.b.nextReg++
	fb.b.m.Regions = append(fb.b.m.Regions, reg)
	parent.Children = append(parent.Children, reg)
	fb.regions = append(fb.regions, reg)
	return reg
}

func (fb *FuncBuilder) popRegion(end Loc) {
	fb.curRegion().End = end
	fb.regions = fb.regions[:len(fb.regions)-1]
}

// Param declares a by-value scalar parameter.
func (fb *FuncBuilder) Param(name string, t Type) *Var {
	v := fb.b.newVar(name, KParam, t, 1, fb.f.Loc)
	v.ByValue = true
	v.Func = fb.f
	v.DeclRegion = fb.f.Region
	fb.f.Params = append(fb.f.Params, v)
	return v
}

// RefParam declares a by-reference parameter aliasing elems scalars of the
// caller's argument (the way arrays are passed in C).
func (fb *FuncBuilder) RefParam(name string, t Type, elems int) *Var {
	v := fb.b.newVar(name, KParam, t, elems, fb.f.Loc)
	v.ByValue = false
	v.Func = fb.f
	v.DeclRegion = fb.f.Region
	fb.f.Params = append(fb.f.Params, v)
	return v
}

func (fb *FuncBuilder) declare(name string, t Type, elems int, heap bool) *Var {
	loc := fb.b.nextLoc()
	v := fb.b.newVar(name, KLocal, t, elems, loc)
	v.Heap = heap
	v.Func = fb.f
	v.DeclRegion = fb.curRegion()
	fb.cur().Decls = append(fb.cur().Decls, v)
	fb.f.Locals = append(fb.f.Locals, v)
	return v
}

// Local declares a scalar local variable in the current block.
func (fb *FuncBuilder) Local(name string, t Type) *Var {
	return fb.declare(name, t, 1, false)
}

// Array declares a stack array local to the current block.
func (fb *FuncBuilder) Array(name string, t Type, elems int) *Var {
	return fb.declare(name, t, elems, false)
}

// HeapArray declares a heap array (malloc-like); it may be freed explicitly
// with Free, exercising the variable lifetime analysis.
func (fb *FuncBuilder) HeapArray(name string, t Type, elems int) *Var {
	return fb.declare(name, t, elems, true)
}

// Assign emits dst = src.
func (fb *FuncBuilder) Assign(dst *Ref, src Expr) {
	loc := fb.b.nextLoc()
	fb.emit(&Assign{Loc: loc, Dst: dst, Src: src})
}

// Set emits scalar assignment v = src.
func (fb *FuncBuilder) Set(v *Var, src Expr) { fb.Assign(&Ref{Var: v}, src) }

// SetAt emits array assignment v[idx] = src.
func (fb *FuncBuilder) SetAt(v *Var, idx Expr, src Expr) {
	fb.Assign(&Ref{Var: v, Index: idx}, src)
}

// For emits a counted loop "for name = from; name < to; name += step" and
// runs body to populate it. The iteration variable is passed to body.
func (fb *FuncBuilder) For(name string, from, to, step Expr, body func(i *Var)) *Region {
	loc := fb.b.nextLoc()
	iv := fb.b.newVar(name, KLocal, I64, 1, loc)
	iv.Func = fb.f
	n := &For{Loc: loc, IndVar: iv, From: from, To: to, Step: step,
		Body: &BlockStmt{Loc: loc}}
	reg := fb.pushRegion(RLoop, loc, n)
	n.Region = reg
	iv.DeclRegion = reg
	fb.f.Locals = append(fb.f.Locals, iv)
	fb.emit(n)
	fb.blocks = append(fb.blocks, n.Body)
	body(iv)
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
	end := fb.b.nextLoc()
	n.EndLoc = end
	fb.popRegion(end)
	return reg
}

// While emits a condition-controlled loop.
func (fb *FuncBuilder) While(cond Expr, body func()) *Region {
	loc := fb.b.nextLoc()
	n := &While{Loc: loc, Cond: cond, Body: &BlockStmt{Loc: loc}}
	reg := fb.pushRegion(RLoop, loc, n)
	n.Region = reg
	fb.emit(n)
	fb.blocks = append(fb.blocks, n.Body)
	body()
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
	end := fb.b.nextLoc()
	n.EndLoc = end
	fb.popRegion(end)
	return reg
}

// If emits a one-armed branch.
func (fb *FuncBuilder) If(cond Expr, then func()) { fb.IfElse(cond, then, nil) }

// IfElse emits a two-armed branch. els may be nil.
func (fb *FuncBuilder) IfElse(cond Expr, then, els func()) {
	loc := fb.b.nextLoc()
	n := &If{Loc: loc, Cond: cond, Then: &BlockStmt{Loc: loc}}
	reg := fb.pushRegion(RBranch, loc, n)
	n.Region = reg
	fb.emit(n)
	fb.blocks = append(fb.blocks, n.Then)
	then()
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
	if els != nil {
		n.Else = &BlockStmt{Loc: fb.b.nextLoc()}
		fb.blocks = append(fb.blocks, n.Else)
		els()
		fb.blocks = fb.blocks[:len(fb.blocks)-1]
	}
	fb.popRegion(fb.b.nextLoc())
}

// Call emits a call for effect.
func (fb *FuncBuilder) Call(f *Func, args ...Expr) {
	loc := fb.b.nextLoc()
	fb.emit(&CallStmt{Loc: loc, Call: &CallExpr{Loc: loc, Callee: f, Args: args}})
}

// CallInto emits dst = f(args...).
func (fb *FuncBuilder) CallInto(dst *Ref, f *Func, args ...Expr) {
	if !f.HasRet {
		panic(fmt.Sprintf("ir: function %s has no return value", f.Name))
	}
	loc := fb.b.nextLoc()
	fb.emit(&Assign{Loc: loc, Dst: dst, Src: &CallExpr{Loc: loc, Callee: f, Args: args}})
}

// Return emits a return statement. val may be nil.
func (fb *FuncBuilder) Return(val Expr) {
	fb.emit(&Return{Loc: fb.b.nextLoc(), Val: val})
}

// Spawn emits a simulated thread creation running f(args...).
func (fb *FuncBuilder) Spawn(f *Func, args ...Expr) {
	loc := fb.b.nextLoc()
	fb.emit(&Spawn{Loc: loc, Call: &CallExpr{Loc: loc, Callee: f, Args: args}})
}

// Sync emits a join of all threads spawned by the current thread.
func (fb *FuncBuilder) Sync() { fb.emit(&Sync{Loc: fb.b.nextLoc()}) }

// Locked emits a critical section protected by mutex id.
func (fb *FuncBuilder) Locked(id int, body func()) {
	loc := fb.b.nextLoc()
	n := &LockRegion{Loc: loc, MutexID: id, Body: &BlockStmt{Loc: loc}}
	fb.emit(n)
	fb.blocks = append(fb.blocks, n.Body)
	body()
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
}

// Free emits an explicit deallocation of a heap variable.
func (fb *FuncBuilder) Free(v *Var) {
	fb.emit(&Free{Loc: fb.b.nextLoc(), Var: v})
}

// Done closes the function body and returns the finished function.
func (fb *FuncBuilder) Done() *Func {
	end := fb.b.nextLoc()
	fb.f.EndLoc = end
	fb.f.Region.End = end
	return fb.f
}

// ---------------------------------------------------------------------------
// Expression constructors. Expressions inherit the location of the statement
// that contains them; dependences are aggregated per source line, as in the
// paper, so expression-level locations are unnecessary.

// V reads scalar variable v.
func V(v *Var) *Ref { return &Ref{Var: v} }

// At reads array element v[idx].
func At(v *Var, idx Expr) *Ref { return &Ref{Var: v, Index: idx} }

// CI is an integer constant.
func CI(v int64) *Const { return &Const{Val: float64(v), Typ: I64} }

// CF is a floating-point constant.
func CF(v float64) *Const { return &Const{Val: v, Typ: F64} }

func bin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) *Bin { return bin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) *Bin { return bin(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) *Bin { return bin(OpMul, l, r) }

// Div returns l / r.
func Div(l, r Expr) *Bin { return bin(OpDiv, l, r) }

// Mod returns l % r on int64-converted operands.
func Mod(l, r Expr) *Bin { return bin(OpMod, l, r) }

// Xor returns l ^ r on int64-converted operands.
func Xor(l, r Expr) *Bin { return bin(OpXor, l, r) }

// AndB returns l & r on int64-converted operands.
func AndB(l, r Expr) *Bin { return bin(OpAnd, l, r) }

// OrB returns l | r on int64-converted operands.
func OrB(l, r Expr) *Bin { return bin(OpOr, l, r) }

// Shl returns l << r on int64-converted operands.
func Shl(l, r Expr) *Bin { return bin(OpShl, l, r) }

// Shr returns l >> r on int64-converted operands.
func Shr(l, r Expr) *Bin { return bin(OpShr, l, r) }

// Lt returns l < r (1 or 0).
func Lt(l, r Expr) *Bin { return bin(OpLt, l, r) }

// Le returns l <= r (1 or 0).
func Le(l, r Expr) *Bin { return bin(OpLe, l, r) }

// Gt returns l > r (1 or 0).
func Gt(l, r Expr) *Bin { return bin(OpGt, l, r) }

// Ge returns l >= r (1 or 0).
func Ge(l, r Expr) *Bin { return bin(OpGe, l, r) }

// Eq returns l == r (1 or 0).
func Eq(l, r Expr) *Bin { return bin(OpEq, l, r) }

// Ne returns l != r (1 or 0).
func Ne(l, r Expr) *Bin { return bin(OpNe, l, r) }

// LAnd returns l && r (1 or 0).
func LAnd(l, r Expr) *Bin { return bin(OpLAnd, l, r) }

// Min returns min(l, r).
func Min(l, r Expr) *Bin { return bin(OpMin, l, r) }

// Max returns max(l, r).
func Max(l, r Expr) *Bin { return bin(OpMax, l, r) }

// Neg returns -x.
func Neg(x Expr) *Un { return &Un{Op: OpNeg, X: x} }

// Sqrt returns sqrt(x).
func Sqrt(x Expr) *Un { return &Un{Op: OpSqrt, X: x} }

// Sin returns sin(x).
func Sin(x Expr) *Un { return &Un{Op: OpSin, X: x} }

// Cos returns cos(x).
func Cos(x Expr) *Un { return &Un{Op: OpCos, X: x} }

// Exp returns e**x.
func Exp(x Expr) *Un { return &Un{Op: OpExp, X: x} }

// Log returns ln(x).
func Log(x Expr) *Un { return &Un{Op: OpLog, X: x} }

// Abs returns |x|.
func Abs(x Expr) *Un { return &Un{Op: OpAbs, X: x} }

// Floor returns floor(x).
func Floor(x Expr) *Un { return &Un{Op: OpFloor, X: x} }

// Rnd returns a pseudo-random value in [0,1).
func Rnd() *Rand { return &Rand{} }

// CallV returns the expression f(args...), usable inside larger expressions.
func CallV(f *Func, args ...Expr) *CallExpr {
	return &CallExpr{Callee: f, Args: args}
}
